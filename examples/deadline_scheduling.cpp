// Deadline-constrained bulk transfers: compares Owan (EDF ordering inside
// the annealing energy) against the Amoeba baseline on a synthetic
// deadline workload over the Internet2 topology.

#include <cstdio>
#include <vector>

#include "core/owan.h"
#include "sim/simulator.h"
#include "te/amoeba.h"
#include "topo/topologies.h"
#include "workload/workload.h"

using namespace owan;

int main() {
  topo::Wan wan = topo::MakeInternet2();

  workload::WorkloadParams wp;
  wp.duration_s = 3600.0;
  wp.mean_size = 2000.0;       // 250 GB
  wp.load_factor = 1.0;
  wp.deadline_factor = 12.0;   // deadlines uniform in [T, 12T]
  wp.seed = 21;
  const std::vector<core::Request> reqs =
      workload::GenerateWorkload(wan, wp);
  std::printf("workload: %zu deadline transfers over 1h\n", reqs.size());

  // Owan with earliest-deadline-first ordering.
  core::OwanOptions opt;
  opt.anneal.routing.policy.policy =
      core::SchedulingPolicy::kEarliestDeadlineFirst;
  opt.anneal.max_iterations = 200;
  core::OwanTe owan_te(opt);
  auto owan_res = sim::RunSimulation(wan, reqs, owan_te);

  // Amoeba: admission control + future-slot reservations, fixed topology.
  te::AmoebaTe amoeba(
      wan.default_topology.ToGraph(wan.optical.wavelength_capacity()),
      300.0);
  auto amoeba_res = sim::RunSimulation(wan, reqs, amoeba);

  std::printf("\n%-8s %22s %22s\n", "scheme", "% transfers meet ddl",
              "% bytes by deadline");
  std::printf("%-8s %21.1f%% %21.1f%%\n", "Owan",
              100.0 * owan_res.FractionMeetingDeadline(),
              100.0 * owan_res.FractionBytesByDeadline());
  std::printf("%-8s %21.1f%% %21.1f%%\n", "Amoeba",
              100.0 * amoeba_res.FractionMeetingDeadline(),
              100.0 * amoeba_res.FractionBytesByDeadline());
  std::printf("\nAmoeba admitted %d / rejected %d requests\n",
              amoeba.admitted(), amoeba.rejected());
  return 0;
}
