// Failure handling (§3.4): a fiber cut tears down the circuits crossing
// it; the controller recomputes the network state around the failure at the
// next slot, and a controller crash is survived via checkpoint/restore.

#include <cstdio>
#include <memory>

#include "control/controller.h"
#include "core/owan.h"
#include "topo/topologies.h"
#include "util/units.h"

using namespace owan;

namespace {

std::unique_ptr<core::OwanTe> MakeScheme() {
  core::OwanOptions opt;
  opt.anneal.max_iterations = 250;
  return std::make_unique<core::OwanTe>(opt);
}

}  // namespace

int main() {
  topo::Wan wan = topo::MakeInternet2();
  control::Controller controller(&wan, MakeScheme());

  const int sea = wan.SiteByName("SEA");
  const int nyc = wan.SiteByName("NYC");
  controller.Submit(sea, nyc, util::GB(4000));
  controller.Tick();
  std::printf("t=%4.0fs  links=%2d units=%2d  (steady state)\n",
              controller.now(), controller.topology().NumLinks(),
              controller.topology().TotalUnits());

  // Cut the SEA-SLC fiber (fiber id 0 in the Internet2 build).
  controller.ReportFiberFailure(0);
  std::printf("fiber SEA-SLC cut: topology now %d units\n",
              controller.topology().TotalUnits());

  controller.Tick();
  std::printf("t=%4.0fs  links=%2d units=%2d  (recomputed around failure)\n",
              controller.now(), controller.topology().NumLinks(),
              controller.topology().TotalUnits());

  // Controller failover: checkpoint, "crash", restore, keep scheduling.
  const std::string snapshot = controller.Checkpoint();
  control::Controller restored =
      control::Controller::Restore(&wan, MakeScheme(), snapshot);
  std::printf("restored controller at t=%.0fs with %d active transfers\n",
              restored.now(), restored.ActiveTransfers());

  int guard = 0;
  while (restored.ActiveTransfers() > 0 && guard++ < 100) restored.Tick();
  for (const auto& [id, t] : restored.transfers()) {
    std::printf("transfer %d %s at t=%.0fs\n", id,
                t.completed ? "completed" : "STILL PENDING", t.completed_at);
  }
  return 0;
}
