// Failure handling (§3.4): a fiber cut tears down the circuits crossing
// it; the controller recomputes the network state around the failure at the
// next slot, and a controller crash is survived via checkpoint/restore.
// The second half drives the unified fault subsystem end to end: a scripted
// incident schedule with sub-slot timestamps, a seeded stochastic
// MTBF/MTTR schedule, and the availability metrics the simulator reports.

#include <cstdio>
#include <memory>

#include "control/controller.h"
#include "core/owan.h"
#include "fault/fault_generator.h"
#include "fault/schedule_io.h"
#include "sim/simulator.h"
#include "topo/topologies.h"
#include "util/units.h"

using namespace owan;

namespace {

std::unique_ptr<core::OwanTe> MakeScheme() {
  core::OwanOptions opt;
  opt.anneal.max_iterations = 250;
  // Slot-seeded: scheme decisions depend only on (seed, slot time), so a
  // restored standby agrees with the crashed primary without RNG history.
  opt.slot_seeded = true;
  return std::make_unique<core::OwanTe>(opt);
}

void PrintAvailability(const char* what, const sim::SimResult& res) {
  double stall = 0.0;
  for (const auto& t : res.transfers) stall += t.stalled_s;
  std::printf(
      "%s: %d fault events, %zu recovery episodes (MTTR %.0fs), "
      "%.0f Gb invalidated, %.0fs stalled, %zu invariant violations\n",
      what, res.fault_events, res.recovery_seconds.size(),
      res.MeanTimeToRecover(), res.gigabits_lost_to_faults, stall,
      res.invariant_violations.size());
}

}  // namespace

int main() {
  topo::Wan wan = topo::MakeInternet2();
  control::Controller controller(&wan, MakeScheme());

  const int sea = wan.SiteByName("SEA");
  const int nyc = wan.SiteByName("NYC");
  controller.Submit(sea, nyc, util::GB(4000));
  controller.Tick();
  std::printf("t=%4.0fs  links=%2d units=%2d  (steady state)\n",
              controller.now(), controller.topology().NumLinks(),
              controller.topology().TotalUnits());

  // Cut the SEA-SLC fiber (fiber id 0 in the Internet2 build).
  controller.ReportFiberFailure(0);
  std::printf("fiber SEA-SLC cut: topology now %d units\n",
              controller.topology().TotalUnits());

  controller.Tick();
  std::printf("t=%4.0fs  links=%2d units=%2d  (recomputed around failure)\n",
              controller.now(), controller.topology().NumLinks(),
              controller.topology().TotalUnits());

  // Controller failover: checkpoint, "crash", restore, keep scheduling.
  // The v2 checkpoint carries the plant failure state, so the standby
  // sees the same degraded plant the primary saw.
  const std::string snapshot = controller.Checkpoint();
  control::Controller restored =
      control::Controller::Restore(&wan, MakeScheme(), snapshot);
  std::printf(
      "restored controller at t=%.0fs with %d active transfers "
      "(SEA-SLC still cut: %s)\n",
      restored.now(), restored.ActiveTransfers(),
      restored.plant().FiberCut(0) ? "yes" : "no");

  int guard = 0;
  while (restored.ActiveTransfers() > 0 && guard++ < 100) restored.Tick();
  for (const auto& [id, t] : restored.transfers()) {
    std::printf("transfer %d %s at t=%.0fs\n", id,
                t.completed ? "completed" : "STILL PENDING", t.completed_at);
  }

  // ---- Scripted incident in the simulator ----
  // Schedules are plain text (one "<time> <kind> <args>" line each) and
  // carry sub-slot timestamps: the 450s cut interrupts the slot that
  // started at 300s, delivered bytes are pro-rated, and the control loop
  // recomputes immediately instead of waiting for the slot boundary.
  const fault::FaultSchedule scripted = fault::ParseFaultSchedule(
      "450  fiber-cut 0\n"
      "600  controller-crash\n"
      "1500 controller-recover\n"
      "2250 fiber-repair 0\n");
  std::printf("\nscripted incident:\n%s",
              fault::FormatFaultSchedule(scripted).c_str());

  std::vector<core::Request> reqs;
  for (int i = 0; i < 4; ++i) {
    core::Request r;
    r.id = i;
    r.src = (i % 2) ? wan.SiteByName("LAX") : sea;
    r.dst = (i % 2) ? wan.SiteByName("CHI") : nyc;
    r.size = util::GB(1500);
    r.arrival = 300.0 * i;
    reqs.push_back(r);
  }

  sim::SimOptions opt;
  opt.faults = scripted;
  core::OwanTe te({});
  sim::SimResult res = sim::RunSimulation(wan, reqs, te, opt);
  PrintAvailability("scripted run", res);

  // ---- Seeded stochastic faults ----
  // Per-component MTBF/MTTR renewal processes; the same seed always yields
  // the same schedule, so "chaos" runs are replayable bit-for-bit.
  fault::FaultGeneratorOptions fg;
  fg.seed = 7;
  fg.horizon_s = 4.0 * 3600.0;
  fg.fiber = {/*mtbf_s=*/2.0 * 3600.0, /*mttr_s=*/1200.0};
  fg.controller = {/*mtbf_s=*/6.0 * 3600.0, /*mttr_s=*/300.0};
  sim::SimOptions chaos;
  chaos.max_time_s = 8.0 * 3600.0;
  chaos.faults = fault::GenerateFaultSchedule(wan.optical, fg);
  std::printf("\ngenerated %zu stochastic fault events (seed %llu)\n",
              chaos.faults.size(), (unsigned long long)fg.seed);

  core::OwanTe te2({});
  PrintAvailability("stochastic run", sim::RunSimulation(wan, reqs, te2, chaos));
  return 0;
}
