// Quickstart: submit bulk transfers to the Owan controller and watch it
// jointly reconfigure the optical layer and route traffic, slot by slot.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "control/controller.h"
#include "core/owan.h"
#include "topo/topologies.h"
#include "util/units.h"

int main() {
  using namespace owan;

  // The 9-site Internet2 WAN from the paper's testbed (Fig. 1).
  topo::Wan wan = topo::MakeInternet2();

  // The Owan TE scheme: simulated-annealing topology search + SJF routing.
  core::OwanOptions opt;
  opt.anneal.max_iterations = 300;
  auto scheme = std::make_unique<core::OwanTe>(opt);

  control::Controller controller(&wan, std::move(scheme));

  // Submit a few bulk transfers (sizes in gigabits; 500 GB = 4000 Gb).
  const int sea = wan.SiteByName("SEA");
  const int nyc = wan.SiteByName("NYC");
  const int lax = wan.SiteByName("LAX");
  const int chi = wan.SiteByName("CHI");
  controller.Submit(sea, nyc, util::GB(500));
  controller.Submit(lax, chi, util::GB(750));
  controller.Submit(sea, nyc, util::GB(250), /*deadline=*/util::Minutes(30));

  std::printf("site count: %d, default links: %d\n", wan.optical.NumSites(),
              wan.default_topology.NumLinks());

  int slot = 0;
  while (controller.ActiveTransfers() > 0 && slot < 50) {
    controller.Tick();
    ++slot;
    std::printf("slot %2d | t=%6.0fs | active=%d | topology links=%d | "
                "update ops=%zu (makespan %.2fs)\n",
                slot, controller.now(), controller.ActiveTransfers(),
                controller.topology().NumLinks(),
                controller.last_update_plan().ops.size(),
                controller.last_update_schedule().makespan);
  }

  std::printf("\ntransfer completions:\n");
  for (const auto& [id, t] : controller.transfers()) {
    std::printf("  transfer %d: %s in %.0fs (size %.0f Gb)\n", id,
                t.completed ? "done" : "unfinished",
                t.completed ? t.completed_at - t.request.arrival : -1.0,
                t.request.size);
  }
  return 0;
}
