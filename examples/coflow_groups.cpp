// Group transfers (§3.4): an application pushes content to several sites
// and only the LAST copy's completion matters. Compares treating members
// as independent SJF transfers vs Smallest-Effective-Bottleneck-First
// (SEBF) group scheduling.
//
// Scenario (4-router WAN, fixed topology, direct paths): group A has a
// small copy on the contended R0-R1 link and a huge copy on R2-R3; group B
// has one medium copy on R0-R1. A is gated by its huge copy no matter
// what, so SJF letting A's small copy go first on R0-R1 only delays B.
// SEBF keys A's members by the group bottleneck, so B goes first and
// finishes a slot earlier while A is unaffected.

#include <cstdio>

#include "core/coflow.h"
#include "core/owan.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "topo/topologies.h"

using namespace owan;

int main() {
  topo::Wan wan = topo::MakeMotivatingExample();
  core::CoflowRegistry registry;
  std::vector<core::Request> reqs;

  auto add = [&](int id, int src, int dst, double gigabits, int group) {
    core::Request r;
    r.id = id;
    r.src = src;
    r.dst = dst;
    r.size = gigabits;
    r.arrival = 0.0;
    reqs.push_back(r);
    registry.AddMember(group, r.id);
  };
  add(0, 0, 1, 300.0, /*group A*/ 0);    // small copy, contended link
  add(1, 2, 3, 6000.0, /*group A*/ 0);   // huge copy, A's real bottleneck
  add(2, 0, 1, 3000.0, /*group B*/ 1);   // medium copy, contended link

  auto run = [&](const core::CoflowRegistry* coflows, const char* label) {
    core::OwanOptions opt;
    opt.control = core::ControlLevel::kRateAndRouting;  // fixed topology
    opt.anneal.routing.max_hops = 1;                    // direct paths only
    opt.coflows = coflows;
    core::OwanTe te(opt);
    auto res = sim::RunSimulation(wan, reqs, te);
    std::vector<int> ids;
    std::vector<double> arrivals, completions;
    for (const auto& t : res.transfers) {
      ids.push_back(t.request.id);
      arrivals.push_back(t.request.arrival);
      completions.push_back(t.completed_at);
    }
    std::printf("%s:\n", label);
    double total = 0.0;
    int n = 0;
    for (const auto& g :
         core::GroupCompletions(registry, ids, arrivals, completions)) {
      std::printf("  group %s: done after %5.0fs%s\n",
                  g.group_id == 0 ? "A (small+huge)" : "B (medium)    ",
                  g.completion_time, g.complete ? "" : " (incomplete)");
      total += g.completion_time;
      ++n;
    }
    std::printf("  average group completion: %.0fs\n\n", total / n);
    return total / n;
  };

  const double sjf = run(nullptr, "Independent SJF members");
  const double sebf = run(&registry, "SEBF group scheduling");
  std::printf("SEBF improves average group completion by %.2fx\n",
              sjf / sebf);
  return 0;
}
