// Reproduces the paper's motivating example (Fig. 3): two transfers
// (F0: R0->R1, F1: R2->R3, 10 units each) on a four-router square,
// scheduled three ways:
//
//   Plan A  routing only                       -> avg completion 1.0 units
//   Plan B  + rate control (strict SJF)        -> avg completion 0.75
//   Plan C  + topology reconfiguration (Owan)  -> avg completion 0.5
//
// One "time unit" is 300 s; the simulator runs 75 s slots so that sub-unit
// completions are visible.

#include <cstdio>

#include "core/owan.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "topo/topologies.h"

using namespace owan;

namespace {

core::Request Req(int id, int src, int dst, double size) {
  core::Request r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.size = size;
  r.arrival = 0.0;
  return r;
}

double RunPlan(const topo::Wan& wan, core::ControlLevel level,
               bool strict_priority) {
  core::OwanOptions opt;
  opt.control = level;
  opt.anneal.max_iterations = 250;
  opt.anneal.routing.strict_priority = strict_priority;
  core::OwanTe scheme(opt);
  sim::SimOptions so;
  so.slot_seconds = 75.0;
  so.reconfig_penalty_s = 0.0;  // the paper's example is idealized
  auto res = sim::RunSimulation(
      wan, {Req(0, 0, 1, 3000.0), Req(1, 2, 3, 3000.0)}, scheme, so);
  return sim::CompletionTimes(res).Mean();
}

}  // namespace

int main() {
  topo::Wan wan = topo::MakeMotivatingExample();

  const double a = RunPlan(wan, core::ControlLevel::kRateOnly, false);
  const double b = RunPlan(wan, core::ControlLevel::kRateAndRouting, true);
  const double c = RunPlan(wan, core::ControlLevel::kFull, false);

  std::printf("Plan A (routing only):           avg completion %6.0f s"
              "  (%.2f units)\n", a, a / 300.0);
  std::printf("Plan B (+ rates, strict SJF):    avg completion %6.0f s"
              "  (%.2f units)\n", b, b / 300.0);
  std::printf("Plan C (+ topology, Owan):       avg completion %6.0f s"
              "  (%.2f units)\n", c, c / 300.0);
  std::printf("\nPlan C speedup vs A: %.2fx, vs B: %.2fx\n", a / c, b / c);
  return 0;
}
