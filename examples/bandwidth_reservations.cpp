// Bandwidth reservations (§6 future work): clients book guaranteed rates
// between sites over time windows. Admission checks a per-slot capacity
// ledger over the network-layer topology; when the packet layer is full
// but a router port and optical resources are spare, the service lights an
// extra circuit for the window — reconfigurability improving reservations,
// as the paper suggests exploring.

#include <cstdio>

#include "control/reservation.h"
#include "topo/topologies.h"

using namespace owan;

namespace {

void Show(const char* what,
          const std::optional<control::Reservation>& r) {
  if (r) {
    std::printf("  %-34s ADMITTED (%zu paths%s)\n", what, r->paths.size(),
                r->used_extra_circuit ? ", lit extra circuit" : "");
  } else {
    std::printf("  %-34s rejected\n", what);
  }
}

}  // namespace

int main() {
  topo::Wan wan = topo::MakeInternet2();
  control::ReservationService svc(wan.default_topology, wan.optical, {});

  const int sea = wan.SiteByName("SEA");
  const int nyc = wan.SiteByName("NYC");
  const int lax = wan.SiteByName("LAX");
  const int chi = wan.SiteByName("CHI");

  std::printf("available SEA->NYC over [0, 30min): %.0f Gbps\n",
              svc.AvailableRate(sea, nyc, 0.0, 1800.0));

  auto r1 = svc.Request(sea, nyc, 10.0, 0.0, 1800.0);
  Show("SEA->NYC 10G for 30 min", r1);
  auto r2 = svc.Request(sea, nyc, 10.0, 0.0, 1800.0);
  Show("SEA->NYC another 10G, same window", r2);
  auto r3 = svc.Request(sea, nyc, 10.0, 0.0, 1800.0);
  Show("SEA->NYC a third 10G, same window", r3);
  auto r4 = svc.Request(sea, nyc, 10.0, 1800.0, 3600.0);
  Show("SEA->NYC 10G, NEXT half hour", r4);
  auto r5 = svc.Request(lax, chi, 15.0, 0.0, 1800.0);
  Show("LAX->CHI 15G for 30 min", r5);

  std::printf("\nledger after admissions: SEA->NYC available %.0f Gbps, "
              "LAX->CHI available %.0f Gbps\n",
              svc.AvailableRate(sea, nyc, 0.0, 1800.0),
              svc.AvailableRate(lax, chi, 0.0, 1800.0));

  if (r1) {
    svc.Release(r1->id);
    std::printf("released the first reservation; SEA->NYC available "
                "%.0f Gbps again\n",
                svc.AvailableRate(sea, nyc, 0.0, 1800.0));
  }
  std::printf("extra circuits lit by admission control: %d\n",
              svc.BoostCircuits());
  return 0;
}
