// owan_cli — command-line experiment runner.
//
//   owan_cli [--topology internet2|isp|interdc] [--scheme NAME]
//            [--load F] [--sigma F] [--seed N] [--duration S]
//            [--slot S] [--anneal N] [--chains K] [--threads T]
//            [--batch B] [--tsv]
//
// Schemes: owan, owan-rate, owan-routing, maxflow, maxminfract, swan,
// tempus, amoeba, greedy. With --tsv the completion-time CDF is printed as
// tab-separated rows for plotting.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/owan.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "te/amoeba.h"
#include "te/greedy.h"
#include "te/lp_baselines.h"
#include "topo/topologies.h"
#include "workload/workload.h"

using namespace owan;

namespace {

struct Args {
  std::string topology = "internet2";
  std::string scheme = "owan";
  double load = 1.0;
  double sigma = 0.0;
  uint64_t seed = 17;
  double duration = 3600.0;
  double slot = 300.0;
  int anneal = 300;
  int chains = 1;
  int threads = 1;
  int batch = 1;
  bool tsv = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: owan_cli [--topology internet2|isp|interdc]\n"
      "                [--scheme owan|owan-rate|owan-routing|maxflow|\n"
      "                 maxminfract|swan|tempus|amoeba|greedy]\n"
      "                [--load F] [--sigma F] [--seed N] [--duration S]\n"
      "                [--slot S] [--anneal N] [--chains K] [--threads T]\n"
      "                [--batch B] [--tsv]\n");
  return 2;
}

std::unique_ptr<core::TeScheme> MakeScheme(const Args& args,
                                           const topo::Wan& wan) {
  core::OwanOptions opt;
  opt.anneal.max_iterations = args.anneal;
  opt.anneal.num_chains = args.chains;
  opt.anneal.num_threads = args.threads;
  opt.anneal.batch_size = args.batch;
  opt.seed = args.seed;
  if (args.sigma > 1.0) {
    opt.anneal.routing.policy.policy =
        core::SchedulingPolicy::kEarliestDeadlineFirst;
  }
  if (args.scheme == "owan") return std::make_unique<core::OwanTe>(opt);
  if (args.scheme == "owan-rate") {
    opt.control = core::ControlLevel::kRateOnly;
    return std::make_unique<core::OwanTe>(opt);
  }
  if (args.scheme == "owan-routing") {
    opt.control = core::ControlLevel::kRateAndRouting;
    return std::make_unique<core::OwanTe>(opt);
  }
  if (args.scheme == "maxflow") return std::make_unique<te::MaxFlowTe>();
  if (args.scheme == "maxminfract") {
    return std::make_unique<te::MaxMinFractTe>();
  }
  if (args.scheme == "swan") return std::make_unique<te::SwanTe>();
  if (args.scheme == "tempus") return std::make_unique<te::TempusTe>();
  if (args.scheme == "amoeba") {
    return std::make_unique<te::AmoebaTe>(
        wan.default_topology.ToGraph(wan.optical.wavelength_capacity()),
        args.slot);
  }
  if (args.scheme == "greedy") return std::make_unique<te::GreedyOwanTe>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return true;
    };
    if (!std::strcmp(argv[i], "--topology") && i + 1 < argc) {
      args.topology = argv[++i];
    } else if (!std::strcmp(argv[i], "--scheme") && i + 1 < argc) {
      args.scheme = argv[++i];
    } else if (!std::strcmp(argv[i], "--load")) {
      if (!next(args.load)) return Usage();
    } else if (!std::strcmp(argv[i], "--sigma")) {
      if (!next(args.sigma)) return Usage();
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--duration")) {
      if (!next(args.duration)) return Usage();
    } else if (!std::strcmp(argv[i], "--slot")) {
      if (!next(args.slot)) return Usage();
    } else if (!std::strcmp(argv[i], "--anneal") && i + 1 < argc) {
      args.anneal = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--chains") && i + 1 < argc) {
      args.chains = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--batch") && i + 1 < argc) {
      args.batch = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--tsv")) {
      args.tsv = true;
    } else {
      return Usage();
    }
  }

  topo::Wan wan = args.topology == "isp"       ? topo::MakeIspBackbone()
                  : args.topology == "interdc" ? topo::MakeInterDc()
                  : args.topology == "internet2"
                      ? topo::MakeInternet2()
                      : topo::Wan{"", topo::MakeInternet2().optical, {}, {}};
  if (wan.name.empty()) return Usage();

  auto scheme = MakeScheme(args, wan);
  if (!scheme) return Usage();

  workload::WorkloadParams wp;
  wp.duration_s = args.duration;
  wp.mean_size = wan.name == "internet2" ? 4000.0 : 40000.0;
  wp.load_factor = args.load;
  wp.deadline_factor = args.sigma;
  wp.slot_seconds = args.slot;
  wp.seed = args.seed;
  wp.hotspots = wan.name == "interdc";
  const auto reqs = workload::GenerateWorkload(wan, wp);

  sim::SimOptions so;
  so.slot_seconds = args.slot;
  const auto res = sim::RunSimulation(wan, reqs, *scheme, so);
  const auto ct = sim::CompletionTimes(res);

  std::printf("# topology=%s scheme=%s load=%.2f sigma=%.1f seed=%llu "
              "transfers=%zu\n",
              wan.name.c_str(), scheme->name().c_str(), args.load,
              args.sigma, static_cast<unsigned long long>(args.seed),
              reqs.size());
  std::printf("avg_completion_s\t%.1f\n", ct.Mean());
  std::printf("p50_completion_s\t%.1f\n", ct.Median());
  std::printf("p95_completion_s\t%.1f\n", ct.Percentile(95));
  std::printf("makespan_s\t%.1f\n", res.makespan);
  std::printf("topology_changes\t%d\n", res.topology_changes);
  if (args.sigma > 1.0) {
    std::printf("pct_deadlines_met\t%.1f\n",
                100.0 * res.FractionMeetingDeadline());
    std::printf("pct_bytes_by_deadline\t%.1f\n",
                100.0 * res.FractionBytesByDeadline());
  }
  if (args.tsv) {
    std::printf("# CDF: completion_s\tfraction\n");
    std::printf("%s", sim::CdfToTsv(ct, 50).c_str());
  }
  return 0;
}
