// Recovery-time benchmark for the fault-injection subsystem (§3.4): how
// fast the control loop restores delivered throughput after fiber cuts,
// site outages, transceiver failures, and controller crashes, and what each
// incident costs in invalidated bytes. Emits one JSON record per scenario
// with --json so CI can archive the trend; numbers are wall-clock-free
// except the compute-time column, so the scenario metrics are stable.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault_generator.h"
#include "harness.h"

using namespace owan;
using Clock = std::chrono::steady_clock;

namespace {

struct Scenario {
  std::string name;
  fault::FaultSchedule faults;
};

std::vector<core::Request> FixedRequests(const topo::Wan& wan) {
  // A steady mix spanning the backbone: enough load that every incident
  // lands on active transfers, small enough that runs finish quickly.
  std::vector<core::Request> reqs;
  const int pairs[][2] = {{0, 8}, {1, 5}, {3, 7}, {2, 6}, {0, 6}, {4, 8}};
  int id = 0;
  for (const auto& p : pairs) {
    core::Request r;
    r.id = id;
    r.src = p[0];
    r.dst = p[1];
    r.size = 18000.0 + 3000.0 * (id % 3);
    r.arrival = 300.0 * id;
    reqs.push_back(r);
    ++id;
  }
  return reqs;
}

std::vector<Scenario> MakeScenarios(const topo::Wan& wan) {
  std::vector<Scenario> out;
  out.push_back({"baseline-no-faults", {}});

  Scenario cut{"fiber-cut-and-repair", {}};
  cut.faults.Add(fault::FaultEvent::FiberCut(750.0, 0));  // SEA-SLC, mid-slot
  cut.faults.Add(fault::FaultEvent::FiberRepair(2250.0, 0));
  out.push_back(cut);

  Scenario site{"site-outage", {}};
  site.faults.Add(fault::FaultEvent::SiteFail(750.0, 2));  // SLC
  site.faults.Add(fault::FaultEvent::SiteRepair(2850.0, 2));
  out.push_back(site);

  Scenario xcvr{"transceiver-failure", {}};
  xcvr.faults.Add(fault::FaultEvent::TransceiverFail(600.0, 4, 1, 2));
  xcvr.faults.Add(fault::FaultEvent::TransceiverRepair(2400.0, 4, 1, 2));
  out.push_back(xcvr);

  Scenario crash{"controller-crash", {}};
  crash.faults.Add(fault::FaultEvent::ControllerCrash(600.0));
  crash.faults.Add(fault::FaultEvent::ControllerRecover(1500.0));
  out.push_back(crash);

  Scenario soup{"stochastic-soup", {}};
  fault::FaultGeneratorOptions fg;
  fg.seed = 13;
  fg.horizon_s = 4.0 * 3600.0;
  fg.fiber = {2.0 * 3600.0, 1200.0};
  fg.transceiver = {4.0 * 3600.0, 900.0};
  fg.controller = {6.0 * 3600.0, 300.0};
  soup.faults = fault::GenerateFaultSchedule(wan.optical, fg);
  out.push_back(soup);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInternet2();
  const auto reqs = FixedRequests(wan);

  bench::PrintHeader("fault recovery — time-to-recover and bytes at risk");
  std::printf("%-22s %7s %10s %11s %10s %9s %11s\n", "scenario", "faults",
              "MTTR (s)", "lost (Gb)", "stall (s)", "wall ms", "violations");

  for (const Scenario& sc : MakeScenarios(wan)) {
    auto scheme = bench::MakeOwan();
    auto te = scheme.make(wan);
    sim::SimOptions opt;
    opt.max_time_s = 24.0 * 3600.0;
    opt.faults = sc.faults;

    const auto t0 = Clock::now();
    sim::SimResult res = sim::RunSimulation(wan, reqs, *te, opt);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    double stall = 0.0;
    for (const auto& t : res.transfers) stall += t.stalled_s;
    std::printf("%-22s %7d %10.1f %11.1f %10.1f %9.1f %11zu\n",
                sc.name.c_str(), res.fault_events, res.MeanTimeToRecover(),
                res.gigabits_lost_to_faults, stall,
                wall_ms, res.invariant_violations.size());
    for (const std::string& v : res.invariant_violations) {
      std::printf("  INVARIANT: %s\n", v.c_str());
    }

    bench::JsonRecord(
        "fault_recovery", sc.name,
        {{"fault_events", static_cast<double>(res.fault_events)},
         {"mttr_s", res.MeanTimeToRecover()},
         {"recovery_episodes", static_cast<double>(res.recovery_seconds.size())},
         {"gigabits_lost", res.gigabits_lost_to_faults},
         {"stall_s", stall},
         {"slots", static_cast<double>(res.slots)},
         {"wall_ms", wall_ms},
         {"invariant_violations",
          static_cast<double>(res.invariant_violations.size())}});
  }
  bench::FlushJson();
  return 0;
}
