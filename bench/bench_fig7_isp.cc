// Reproduces Fig. 7(d-f): completion-time results on the ~40-site ISP
// backbone topology.
#include "experiments.h"

int main() {
  owan::bench::RunFig7(owan::topo::MakeIspBackbone());
  return 0;
}
