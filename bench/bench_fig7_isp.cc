// Reproduces Fig. 7(d-f): completion-time results on the ~40-site ISP
// backbone topology.
#include "experiments.h"

int main(int argc, char** argv) {
  owan::bench::InitJsonFromArgs(argc, argv);
  owan::bench::RunFig7(owan::topo::MakeIspBackbone());
  return 0;
}
