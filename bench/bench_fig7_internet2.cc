// Reproduces Fig. 7(a-c): completion-time results on the Internet2
// topology (the paper's hardware testbed, here driven by the flow-based
// simulator that the paper validates within 10% of the testbed).
#include "experiments.h"

int main(int argc, char** argv) {
  owan::bench::InitJsonFromArgs(argc, argv);
  owan::bench::RunFig7(owan::topo::MakeInternet2());
  return 0;
}
