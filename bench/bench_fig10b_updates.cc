// Reproduces Fig. 10(b): network throughput during a reconfiguration with
// the consistent cross-layer update scheduler vs a one-shot update that
// fires every operation at once.
//
// Scenario: a warm inter-DC network carrying long-lived bulk transfers.
// The traffic mix then shifts (a hotspot moves), Owan adopts a new
// topology, and the resulting transition is replayed through both
// schedulers while the delivered throughput is traced.
#include <cstdio>
#include <map>

#include "core/annealing.h"
#include "core/owan.h"
#include "core/provisioned_state.h"
#include "harness.h"
#include "update/scheduler.h"

using namespace owan;

namespace {

core::TransferDemand Backlogged(int id, int src, int dst) {
  core::TransferDemand d;
  d.id = id;
  d.src = src;
  d.dst = dst;
  d.remaining = 1e9;   // far more than one slot can drain
  d.rate_cap = 60.0;   // rate-limited: the network keeps ~30% headroom,
                       // like the paper's testbed during the update test
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInterDc();
  util::Rng rng(23);
  const int n = wan.optical.NumSites();

  // Steady traffic: 24 long-lived transfers between random site pairs.
  std::vector<core::TransferDemand> demands;
  for (int i = 0; i < 24; ++i) {
    int src = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    int dst = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    if (src == dst) dst = (dst + 1) % n;
    demands.push_back(Backlogged(i, src, dst));
  }

  core::OwanOptions opt;
  opt.anneal.max_iterations = 400;
  core::OwanTe te(opt);

  core::TeInput in;
  in.topology = &wan.default_topology;
  in.optical = &wan.optical;
  in.slot_seconds = 300.0;
  in.demands = demands;
  core::TeOutput slot1 = te.Compute(in);
  const core::Topology t1 = slot1.new_topology.value_or(wan.default_topology);

  // The hotspot moves: a quarter of the transfers re-point at one busy
  // site, a moderate demand shift like the paper's testbed update.
  const int hotspot = 2;
  for (size_t i = 0; i < demands.size(); i += 4) {
    demands[i].src = hotspot;
    if (demands[i].dst == hotspot) demands[i].dst = (hotspot + 1) % n;
    demands[i].rate_cap = 100.0;  // the hotspot bursts hard
  }
  // The reconfiguration itself: a handful of Algorithm-2 moves (the shape
  // of any routine Owan adaptation — this figure evaluates the update
  // mechanism, not the search). Provision the new topology and compute the
  // post-update allocation with the same routing routine Owan uses.
  core::Topology t2 = t1;
  {
    util::Rng move_rng(5);
    for (int m = 0; m < 3; ++m) {
      auto nb = core::ComputeNeighbor(t2, move_rng);
      if (nb) t2 = std::move(*nb);
    }
  }
  core::ProvisionedState ps(wan.optical);
  ps.SyncTo(t2);
  core::RoutingOutcome r2 =
      core::AssignRoutesAndRates(ps.CapacityGraph(), demands, {});
  core::TeOutput slot2;
  slot2.allocations = std::move(r2.allocations);

  const double theta = wan.optical.wavelength_capacity();
  const update::UpdatePlan plan =
      update::BuildUpdatePlan(t1, t2, slot1.allocations, slot2.allocations);
  const update::Schedule consistent = update::ScheduleConsistent(plan);
  const update::Schedule one_shot = update::ScheduleOneShot(plan);
  const auto trace_c =
      update::TraceThroughput(t1, theta, plan, consistent, slot1.allocations,
                              slot2.allocations, /*adaptive_reroute=*/true);
  const auto trace_o =
      update::TraceThroughput(t1, theta, plan, one_shot, slot1.allocations,
                              slot2.allocations, /*adaptive_reroute=*/false);

  bench::PrintHeader("Fig. 10b — consistent vs one-shot updates");
  std::printf("topology delta: %d circuit changes; plan: %d remove-circuit, "
              "%d add-circuit, %d route ops; consistent makespan %.2fs\n",
              t1.DistanceTo(t2),
              plan.CountType(update::OpType::kRemoveCircuit),
              plan.CountType(update::OpType::kAddCircuit),
              plan.CountType(update::OpType::kRemoveRoute) +
                  plan.CountType(update::OpType::kAddRoute),
              consistent.makespan);

  double before = 0.0;
  for (const auto& a : slot1.allocations) before += a.TotalRate();
  std::printf("steady throughput before the update: %.1f Gbps\n", before);

  auto summarize = [before, &plan, &consistent](
                       const char* name,
                       const std::vector<update::TraceSample>& trace) {
    double min = 1e18;
    for (const auto& s : trace) min = std::min(min, s.gbps);
    const double baseline = std::min(before, trace.back().gbps);
    std::printf("%-12s minimum during update %.1f Gbps (%.1f%% drop vs "
                "steady), final %.1f Gbps\n",
                name, min,
                baseline > 0 ? 100.0 * (1.0 - min / baseline) : 0.0,
                trace.back().gbps);
    bench::JsonRecord(
        "fig10b", name,
        {{"min_gbps", min},
         {"final_gbps", trace.back().gbps},
         {"steady_gbps", before},
         {"drop_pct",
          baseline > 0 ? 100.0 * (1.0 - min / baseline) : 0.0},
         {"plan_ops", static_cast<double>(plan.ops.size())},
         {"remove_circuit", static_cast<double>(
                                plan.CountType(update::OpType::kRemoveCircuit))},
         {"add_circuit", static_cast<double>(
                             plan.CountType(update::OpType::kAddCircuit))},
         {"consistent_makespan_s", consistent.makespan}});
    std::printf("  trace:");
    int printed = 0;
    for (const auto& s : trace) {
      if (printed++ > 24) break;
      std::printf(" (%.2fs, %.1f)", s.t, s.gbps);
    }
    std::printf("\n");
  };
  summarize("consistent", trace_c);
  summarize("one-shot", trace_o);
  return 0;
}
