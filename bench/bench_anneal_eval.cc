// Microbenchmark for the incremental energy evaluator: drives the identical
// Metropolis walk (same seed, same neighbor sequence, same accept rule)
// through the old copy-everything evaluation and through an EnergyEvaluator.
// Reports per-candidate cost, the speedup, and the evaluator's cache
// statistics — and fails (exit 1) unless the two modes produce identical
// energies, so a perf run doubles as a differential check.
//
// Runs the 40-site ISP backbone by default; --topo NAME picks any WAN from
// the topo registry (unknown names are an error, not a skip), and --sweep
// runs the scale ladder isp40 -> isp100 -> tiered400 used by the perf CI
// gate and the nightly trend job.
//
// Flags: --quick (short budget, for CI smoke), --iters N, --seed S,
//        --topo NAME, --sweep, --json <path> (machine-readable records).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/annealing.h"
#include "core/energy_evaluator.h"
#include "harness.h"
#include "util/rng.h"

using namespace owan;
using Clock = std::chrono::steady_clock;

namespace {

double Secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<core::TransferDemand> RandomDemands(const topo::Wan& wan,
                                                int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::TransferDemand> demands;
  demands.reserve(static_cast<size_t>(count));
  const int n = wan.default_topology.NumSites();
  for (int i = 0; i < count; ++i) {
    core::TransferDemand d;
    d.id = i;
    d.src = rng.UniformInt(0, n - 1);
    do {
      d.dst = rng.UniformInt(0, n - 1);
    } while (d.dst == d.src);
    d.rate_cap = rng.Uniform(20.0, 80.0);
    d.remaining = d.rate_cap * 300.0;
    demands.push_back(d);
  }
  return demands;
}

struct WalkResult {
  std::vector<double> energies;
  double eval_seconds = 0.0;  // time inside candidate evaluation only
};

// The pre-evaluator per-candidate pattern: clone the provisioned state,
// sync it to the neighbor, route from scratch.
WalkResult WalkFresh(const topo::Wan& wan, const core::Topology& start,
                     const std::vector<core::TransferDemand>& demands,
                     const core::RoutingOptions& ropt, int iters,
                     uint64_t seed) {
  WalkResult out;
  util::Rng rng(seed);
  core::ProvisionedState cur{wan.optical};
  cur.SyncTo(start);
  double cur_energy =
      core::AssignRoutesAndRates(cur.CapacityGraph(), demands, ropt)
          .throughput;
  core::Topology cur_topo = start;
  double temperature = cur_energy > 0.0 ? cur_energy : 1.0;
  for (int i = 0; i < iters; ++i) {
    auto nb = core::ComputeNeighbor(cur_topo, rng);
    if (!nb) break;
    const auto t0 = Clock::now();
    core::ProvisionedState nb_state = cur;
    nb_state.SyncTo(*nb);
    const double energy =
        core::AssignRoutesAndRates(nb_state.CapacityGraph(), demands, ropt)
            .throughput;
    out.eval_seconds += Secs(t0, Clock::now());
    out.energies.push_back(energy);
    bool accept = energy >= cur_energy;
    if (!accept) {
      accept = rng.Uniform() < std::exp((energy - cur_energy) / temperature);
    }
    if (accept) {
      cur_topo = std::move(*nb);
      cur = std::move(nb_state);
      cur_energy = energy;
    }
    temperature *= 0.95;
  }
  return out;
}

WalkResult WalkIncremental(const topo::Wan& wan, const core::Topology& start,
                           const std::vector<core::TransferDemand>& demands,
                           const std::vector<size_t>& starved,
                           const core::RoutingOptions& ropt, int iters,
                           uint64_t seed, core::EnergyEvaluator& eval) {
  WalkResult out;
  util::Rng rng(seed);
  double cur_energy =
      eval.Reset(wan.optical, start, demands, starved, ropt).energy;
  core::Topology cur_topo = start;
  double temperature = cur_energy > 0.0 ? cur_energy : 1.0;
  for (int i = 0; i < iters; ++i) {
    auto nb = core::ComputeNeighbor(cur_topo, rng);
    if (!nb) break;
    const auto t0 = Clock::now();
    const core::EnergyEvaluator::Eval ev = eval.Apply(*nb);
    bool accept = ev.energy >= cur_energy;
    if (!accept) {
      accept =
          rng.Uniform() < std::exp((ev.energy - cur_energy) / temperature);
    }
    if (accept) {
      eval.Accept();
    } else {
      eval.Reject();
    }
    out.eval_seconds += Secs(t0, Clock::now());
    out.energies.push_back(ev.energy);
    if (accept) {
      cur_topo = std::move(*nb);
      cur_energy = ev.energy;
    }
    temperature *= 0.95;
  }
  return out;
}

// One sweep point: topo name plus the walk budget at that scale. Demand
// counts grow with the site count; iteration budgets shrink so the fresh
// reference walk stays affordable at 400 sites. The gate topology (isp40)
// gets a long walk on purpose: the one-time cache fill (~3k pair
// enumerations) must amortize away so the gated number is the steady-state
// hot-loop cost, not setup.
struct SweepPoint {
  const char* topo;
  int demands;
  int iters;        // full budget
  int quick_iters;  // --quick budget
};

constexpr SweepPoint kSweep[] = {
    {"isp40", 64, 2000, 120},
    {"isp100", 160, 200, 60},
    {"tiered400", 640, 60, 24},
};

// Runs fresh-vs-incremental on one topology; returns false on divergence.
bool RunPoint(const std::string& topo_name, int demand_count, int iters,
              uint64_t seed) {
  topo::Wan wan = topo::MakeByName(topo_name);
  const auto demands = RandomDemands(wan, demand_count, 4242);
  const std::vector<size_t> starved;  // no transfer is starved at slot start
  const core::RoutingOptions ropt;
  const core::Topology start = wan.default_topology;

  const WalkResult fresh = WalkFresh(wan, start, demands, ropt, iters, seed);
  core::EnergyEvaluator eval;
  const WalkResult incr =
      WalkIncremental(wan, start, demands, starved, ropt, iters, seed, eval);

  // Differential check: the walks must agree candidate-for-candidate.
  if (fresh.energies.size() != incr.energies.size()) {
    std::printf("FAIL: %s candidate counts diverge (%zu vs %zu)\n",
                topo_name.c_str(), fresh.energies.size(),
                incr.energies.size());
    return false;
  }
  double max_diff = 0.0;
  for (size_t i = 0; i < fresh.energies.size(); ++i) {
    max_diff =
        std::max(max_diff, std::fabs(fresh.energies[i] - incr.energies[i]));
  }
  if (max_diff > 1e-9) {
    std::printf("FAIL: %s energies diverge (max |diff| = %.3g)\n",
                topo_name.c_str(), max_diff);
    return false;
  }

  const double n = static_cast<double>(fresh.energies.size());
  const double fresh_us = 1e6 * fresh.eval_seconds / n;
  const double incr_us = 1e6 * incr.eval_seconds / n;
  const double speedup = fresh_us / incr_us;
  const auto& st = eval.stats();
  std::printf("  %s: %d sites, %d transfers, %d candidates, seed %llu\n",
              topo_name.c_str(), wan.default_topology.NumSites(),
              demand_count, static_cast<int>(n),
              static_cast<unsigned long long>(seed));
  std::printf("  fresh        %8.1f us/candidate  (%.3fs total)\n", fresh_us,
              fresh.eval_seconds);
  std::printf("  incremental  %8.1f us/candidate  (%.3fs total)\n", incr_us,
              incr.eval_seconds);
  std::printf("  speedup      %8.2fx   max |energy diff| %.3g\n", speedup,
              max_diff);
  std::printf(
      "  evaluator: %lld evals, %lld memo hits, %lld routing runs,\n"
      "             %lld pairs enumerated, %lld reused, %lld graph "
      "rebuilds\n\n",
      static_cast<long long>(st.evaluations),
      static_cast<long long>(st.memo_hits),
      static_cast<long long>(st.routing_runs),
      static_cast<long long>(st.pairs_enumerated),
      static_cast<long long>(st.pairs_reused),
      static_cast<long long>(st.graph_rebuilds));

  const double sites = static_cast<double>(wan.default_topology.NumSites());
  bench::JsonRecord("anneal_eval", "fresh@" + topo_name,
                    {{"sites", sites},
                     {"candidates", n},
                     {"seconds", fresh.eval_seconds},
                     {"us_per_candidate", fresh_us}});
  bench::JsonRecord("anneal_eval", "incremental@" + topo_name,
                    {{"sites", sites},
                     {"candidates", n},
                     {"seconds", incr.eval_seconds},
                     {"us_per_candidate", incr_us},
                     {"memo_hits", static_cast<double>(st.memo_hits)},
                     {"routing_runs", static_cast<double>(st.routing_runs)},
                     {"pairs_enumerated",
                      static_cast<double>(st.pairs_enumerated)},
                     {"pairs_reused", static_cast<double>(st.pairs_reused)},
                     {"graph_rebuilds",
                      static_cast<double>(st.graph_rebuilds)}});
  bench::JsonRecord("anneal_eval", "summary@" + topo_name,
                    {{"sites", sites},
                     {"speedup", speedup},
                     {"max_energy_diff", max_diff},
                     // Provenance for the perf gate: the baseline is a
                     // legacy-reach run, so the gate must prove QoT was off.
                     {"qot_enabled",
                      wan.optical.qot().enabled ? 1.0 : 0.0}});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  bool quick = false;
  bool sweep = false;
  int iters_override = 0;
  uint64_t seed = 7;
  std::string topo_name = "isp40";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters_override = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--topo") == 0 && i + 1 < argc) {
      topo_name = argv[++i];
    }
  }

  bench::PrintHeader("anneal eval — fresh vs incremental per-candidate cost");
  bool ok = true;
  try {
    if (sweep) {
      for (const SweepPoint& p : kSweep) {
        const int iters = iters_override > 0
                              ? iters_override
                              : (quick ? p.quick_iters : p.iters);
        ok = RunPoint(p.topo, p.demands, iters, seed) && ok;
      }
    } else {
      // Single-topology mode: budgets follow the sweep table when the name
      // is in it, else scale off the isp40 defaults.
      int demand_count = 64;
      int iters = quick ? 120 : 400;
      for (const SweepPoint& p : kSweep) {
        if (topo_name == p.topo) {
          demand_count = p.demands;
          iters = quick ? p.quick_iters : p.iters;
          break;
        }
      }
      ok = RunPoint(topo_name, demand_count,
                    iters_override > 0 ? iters_override : iters, seed);
    }
  } catch (const std::invalid_argument& e) {
    // Unknown topology names must fail the run loudly: a CI sweep that
    // silently skipped a misspelled point would gate on nothing.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return ok ? 0 : 1;
}
