// Microbenchmark for the incremental energy evaluator: drives the identical
// Metropolis walk (same seed, same neighbor sequence, same accept rule)
// through the old copy-everything evaluation and through an EnergyEvaluator,
// on the 40-site ISP backbone. Reports per-candidate cost, the speedup, and
// the evaluator's cache statistics — and fails (exit 1) unless the two modes
// produce identical energies, so a perf run doubles as a differential check.
//
// Flags: --quick (short budget, for CI smoke), --iters N, --seed S,
//        --json <path> (machine-readable records).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/annealing.h"
#include "core/energy_evaluator.h"
#include "harness.h"
#include "util/rng.h"

using namespace owan;
using Clock = std::chrono::steady_clock;

namespace {

double Secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<core::TransferDemand> RandomDemands(const topo::Wan& wan,
                                                int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::TransferDemand> demands;
  demands.reserve(static_cast<size_t>(count));
  const int n = wan.default_topology.NumSites();
  for (int i = 0; i < count; ++i) {
    core::TransferDemand d;
    d.id = i;
    d.src = rng.UniformInt(0, n - 1);
    do {
      d.dst = rng.UniformInt(0, n - 1);
    } while (d.dst == d.src);
    d.rate_cap = rng.Uniform(20.0, 80.0);
    d.remaining = d.rate_cap * 300.0;
    demands.push_back(d);
  }
  return demands;
}

struct WalkResult {
  std::vector<double> energies;
  double eval_seconds = 0.0;  // time inside candidate evaluation only
};

// The pre-evaluator per-candidate pattern: clone the provisioned state,
// sync it to the neighbor, route from scratch.
WalkResult WalkFresh(const topo::Wan& wan, const core::Topology& start,
                     const std::vector<core::TransferDemand>& demands,
                     const core::RoutingOptions& ropt, int iters,
                     uint64_t seed) {
  WalkResult out;
  util::Rng rng(seed);
  core::ProvisionedState cur{wan.optical};
  cur.SyncTo(start);
  double cur_energy =
      core::AssignRoutesAndRates(cur.CapacityGraph(), demands, ropt)
          .throughput;
  core::Topology cur_topo = start;
  double temperature = cur_energy > 0.0 ? cur_energy : 1.0;
  for (int i = 0; i < iters; ++i) {
    auto nb = core::ComputeNeighbor(cur_topo, rng);
    if (!nb) break;
    const auto t0 = Clock::now();
    core::ProvisionedState nb_state = cur;
    nb_state.SyncTo(*nb);
    const double energy =
        core::AssignRoutesAndRates(nb_state.CapacityGraph(), demands, ropt)
            .throughput;
    out.eval_seconds += Secs(t0, Clock::now());
    out.energies.push_back(energy);
    bool accept = energy >= cur_energy;
    if (!accept) {
      accept = rng.Uniform() < std::exp((energy - cur_energy) / temperature);
    }
    if (accept) {
      cur_topo = std::move(*nb);
      cur = std::move(nb_state);
      cur_energy = energy;
    }
    temperature *= 0.95;
  }
  return out;
}

WalkResult WalkIncremental(const topo::Wan& wan, const core::Topology& start,
                           const std::vector<core::TransferDemand>& demands,
                           const std::vector<size_t>& starved,
                           const core::RoutingOptions& ropt, int iters,
                           uint64_t seed, core::EnergyEvaluator& eval) {
  WalkResult out;
  util::Rng rng(seed);
  double cur_energy =
      eval.Reset(wan.optical, start, demands, starved, ropt).energy;
  core::Topology cur_topo = start;
  double temperature = cur_energy > 0.0 ? cur_energy : 1.0;
  for (int i = 0; i < iters; ++i) {
    auto nb = core::ComputeNeighbor(cur_topo, rng);
    if (!nb) break;
    const auto t0 = Clock::now();
    const core::EnergyEvaluator::Eval ev = eval.Apply(*nb);
    bool accept = ev.energy >= cur_energy;
    if (!accept) {
      accept =
          rng.Uniform() < std::exp((ev.energy - cur_energy) / temperature);
    }
    if (accept) {
      eval.Accept();
    } else {
      eval.Reject();
    }
    out.eval_seconds += Secs(t0, Clock::now());
    out.energies.push_back(ev.energy);
    if (accept) {
      cur_topo = std::move(*nb);
      cur_energy = ev.energy;
    }
    temperature *= 0.95;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  int iters = 400;
  uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      iters = 120;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    }
  }

  bench::PrintHeader("anneal eval — fresh vs incremental per-candidate cost");
  topo::Wan wan = topo::MakeIspBackbone();
  const auto demands = RandomDemands(wan, 64, 4242);
  const std::vector<size_t> starved;  // no transfer is starved at slot start
  const core::RoutingOptions ropt;
  const core::Topology start = wan.default_topology;

  const WalkResult fresh = WalkFresh(wan, start, demands, ropt, iters, seed);
  core::EnergyEvaluator eval;
  const WalkResult incr =
      WalkIncremental(wan, start, demands, starved, ropt, iters, seed, eval);

  // Differential check: the walks must agree candidate-for-candidate.
  if (fresh.energies.size() != incr.energies.size()) {
    std::printf("FAIL: candidate counts diverge (%zu vs %zu)\n",
                fresh.energies.size(), incr.energies.size());
    return 1;
  }
  double max_diff = 0.0;
  for (size_t i = 0; i < fresh.energies.size(); ++i) {
    max_diff =
        std::max(max_diff, std::fabs(fresh.energies[i] - incr.energies[i]));
  }
  if (max_diff > 1e-9) {
    std::printf("FAIL: energies diverge (max |diff| = %.3g)\n", max_diff);
    return 1;
  }

  const double n = static_cast<double>(fresh.energies.size());
  const double fresh_us = 1e6 * fresh.eval_seconds / n;
  const double incr_us = 1e6 * incr.eval_seconds / n;
  const double speedup = fresh_us / incr_us;
  const auto& st = eval.stats();
  std::printf("  ISP-40, 64 transfers, %d candidates, seed %llu\n",
              static_cast<int>(n), static_cast<unsigned long long>(seed));
  std::printf("  fresh        %8.1f us/candidate  (%.3fs total)\n", fresh_us,
              fresh.eval_seconds);
  std::printf("  incremental  %8.1f us/candidate  (%.3fs total)\n", incr_us,
              incr.eval_seconds);
  std::printf("  speedup      %8.2fx   max |energy diff| %.3g\n", speedup,
              max_diff);
  std::printf(
      "  evaluator: %lld evals, %lld memo hits, %lld routing runs,\n"
      "             %lld pairs enumerated, %lld reused, %lld graph "
      "rebuilds\n",
      static_cast<long long>(st.evaluations),
      static_cast<long long>(st.memo_hits),
      static_cast<long long>(st.routing_runs),
      static_cast<long long>(st.pairs_enumerated),
      static_cast<long long>(st.pairs_reused),
      static_cast<long long>(st.graph_rebuilds));

  bench::JsonRecord("anneal_eval", "fresh",
                    {{"candidates", n},
                     {"seconds", fresh.eval_seconds},
                     {"us_per_candidate", fresh_us}});
  bench::JsonRecord("anneal_eval", "incremental",
                    {{"candidates", n},
                     {"seconds", incr.eval_seconds},
                     {"us_per_candidate", incr_us},
                     {"memo_hits", static_cast<double>(st.memo_hits)},
                     {"routing_runs", static_cast<double>(st.routing_runs)},
                     {"pairs_enumerated",
                      static_cast<double>(st.pairs_enumerated)},
                     {"pairs_reused", static_cast<double>(st.pairs_reused)},
                     {"graph_rebuilds",
                      static_cast<double>(st.graph_rebuilds)}});
  bench::JsonRecord("anneal_eval", "summary",
                    {{"speedup", speedup}, {"max_energy_diff", max_diff}});
  return 0;
}
