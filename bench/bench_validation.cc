// Reproduces the §5.1 performance validation. The paper validates its
// flow-based simulator against the hardware testbed (metrics within 10%).
// Without the testbed, the closest equivalent is two independent execution
// paths over the same controller logic: the flow-based simulator
// (sim::RunSimulation) vs the online Controller (control::Controller, which
// additionally schedules consistent cross-layer updates). Their completion
// metrics should agree within the same 10% band.
#include <cstdio>
#include <memory>

#include "control/controller.h"
#include "harness.h"

using namespace owan;

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInternet2();
  const auto reqs =
      workload::GenerateWorkload(wan, bench::ParamsFor(wan, 1.0));

  // Path 1: the flow-based simulator.
  const bench::RunStats simulated =
      bench::RunOne(wan, reqs, bench::MakeOwan(), 1.0);

  // Path 2: the online controller executing slot by slot.
  core::OwanOptions opt;
  opt.anneal.max_iterations = 300;
  control::Controller controller(&wan,
                                 std::make_unique<core::OwanTe>(opt));
  size_t next = 0;
  util::Summary controller_ct;
  int guard = 0;
  while ((next < reqs.size() || controller.ActiveTransfers() > 0) &&
         guard++ < 2000) {
    while (next < reqs.size() &&
           reqs[next].arrival <= controller.now() + 1e-9) {
      controller.Submit(reqs[next].src, reqs[next].dst, reqs[next].size);
      ++next;
    }
    controller.Tick();
  }
  // Ids are assigned in submission order, which follows the arrival-sorted
  // request stream; completion time is measured from the ORIGINAL arrival
  // (what the simulator also uses), not from the slot-aligned submission.
  for (const auto& [id, t] : controller.transfers()) {
    if (t.completed) {
      controller_ct.Add(t.completed_at - reqs[static_cast<size_t>(id)].arrival);
    }
  }

  bench::PrintHeader("§5.1 validation — simulator vs controller execution");
  auto row = [](const char* what, double a, double b) {
    const double diff = a > 0 ? 100.0 * std::abs(a - b) / a : 0.0;
    std::printf("  %-18s simulator %8.0fs   controller %8.0fs   "
                "difference %.1f%% %s\n",
                what, a, b, diff, diff <= 10.0 ? "(within 10%)" : "(!)");
  };
  row("avg completion", simulated.completion.Mean(), controller_ct.Mean());
  row("median completion", simulated.completion.Median(),
      controller_ct.Median());
  row("95p completion", simulated.completion.Percentile(95),
      controller_ct.Percentile(95));
  std::printf("  transfers completed: simulator %zu, controller %zu\n",
              simulated.completion.count(), controller_ct.count());
  return 0;
}
