#include "experiments.h"

#include <cstdio>

namespace owan::bench {

namespace {
const double kLoads[] = {0.5, 1.0, 1.5, 2.0};
const double kDeadlineFactors[] = {5.0, 10.0, 20.0, 35.0, 50.0};
}  // namespace

void RunFig7(const topo::Wan& wan) {
  PrintHeader("Fig. 7 — transfer completion time, " + wan.name +
              " (no deadlines)");
  const NamedScheme owan_scheme = MakeOwan();
  const NamedScheme baselines[] = {MakeMaxFlow(), MakeMaxMinFract(),
                                   MakeSwan()};

  RunStats owan_at_load1;
  std::vector<RunStats> base_at_load1;

  std::printf("(a/d/g) factor of improvement vs traffic load:\n");
  for (double load : kLoads) {
    const auto reqs =
        workload::GenerateWorkload(wan, ParamsFor(wan, load));
    const RunStats owan_stats = RunOne(wan, reqs, owan_scheme, load);
    for (const NamedScheme& b : baselines) {
      const RunStats bs = RunOne(wan, reqs, b, load);
      PrintImprovementRow(owan_stats, bs);
      if (load == 1.0) base_at_load1.push_back(bs);
    }
    if (load == 1.0) owan_at_load1 = owan_stats;
  }

  std::printf("(b/e/h) improvement by transfer-size bin (load 1.0):\n");
  for (const RunStats& bs : base_at_load1) {
    PrintBinImprovementRows(owan_at_load1, bs);
  }

  std::printf("(c/f/i) completion-time CDF (load 1.0):\n");
  PrintCdf(owan_at_load1);
  for (const RunStats& bs : base_at_load1) PrintCdf(bs);
}

void RunFig8(const topo::Wan& wan) {
  PrintHeader("Fig. 8 — makespan improvement, " + wan.name);
  const NamedScheme owan_scheme = MakeOwan();
  const NamedScheme baselines[] = {MakeMaxFlow(), MakeMaxMinFract(),
                                   MakeSwan()};
  for (double load : kLoads) {
    const auto reqs =
        workload::GenerateWorkload(wan, ParamsFor(wan, load));
    const RunStats owan_stats = RunOne(wan, reqs, owan_scheme, load);
    for (const NamedScheme& b : baselines) {
      const RunStats bs = RunOne(wan, reqs, b, load);
      std::printf(
          "  load %.1f  w.r.t %-12s  makespan %5.2fx  (%.0fs vs %.0fs)\n",
          load, bs.scheme.c_str(),
          sim::ImprovementFactor(bs.makespan, owan_stats.makespan),
          owan_stats.makespan, bs.makespan);
    }
  }
}

void RunFig9(const topo::Wan& wan) {
  PrintHeader("Fig. 9 — deadline-constrained traffic, " + wan.name);
  const NamedScheme schemes[] = {
      MakeOwan(core::SchedulingPolicy::kEarliestDeadlineFirst),
      MakeMaxFlow(),
      MakeMaxMinFract(),
      MakeSwan(),
      MakeTempus(),
      MakeAmoeba()};

  std::printf("(a/d/g) %% transfers meeting deadlines vs deadline factor\n");
  std::printf("(b/e/h) %% bytes finished by deadline vs deadline factor\n");
  std::printf("%-12s", "scheme");
  for (double sigma : kDeadlineFactors) std::printf("  sig=%-4.0f", sigma);
  std::printf("\n");

  std::vector<std::vector<RunStats>> all(std::size(schemes));
  for (size_t si = 0; si < std::size(schemes); ++si) {
    for (double sigma : kDeadlineFactors) {
      const auto reqs = workload::GenerateWorkload(
          wan, ParamsFor(wan, 1.0, sigma));
      all[si].push_back(RunOne(wan, reqs, schemes[si], 1.0));
    }
  }
  for (size_t si = 0; si < std::size(schemes); ++si) {
    std::printf("%-12s", all[si][0].scheme.c_str());
    for (const RunStats& s : all[si]) {
      std::printf("  %5.1f%%  ", s.pct_deadline_met);
    }
    std::printf("   <- %% transfers\n");
  }
  for (size_t si = 0; si < std::size(schemes); ++si) {
    std::printf("%-12s", all[si][0].scheme.c_str());
    for (const RunStats& s : all[si]) {
      std::printf("  %5.1f%%  ", s.pct_bytes_by_deadline);
    }
    std::printf("   <- %% bytes\n");
  }

  std::printf("(c/f/i) %% transfers meeting deadlines by size bin "
              "(deadline factor 20):\n");
  static const char* kBinNames[] = {"small", "middle", "large"};
  std::printf("%-12s  %8s %8s %8s\n", "scheme", kBinNames[0], kBinNames[1],
              kBinNames[2]);
  for (size_t si = 0; si < std::size(schemes); ++si) {
    const RunStats& s = all[si][2];  // sigma = 20
    std::printf("%-12s  %7.1f%% %7.1f%% %7.1f%%\n", s.scheme.c_str(),
                s.deadline_by_bin[0], s.deadline_by_bin[1],
                s.deadline_by_bin[2]);
  }
}

}  // namespace owan::bench
