#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace owan::bench {

namespace {

// Process-global collector for every machine-readable output a bench can
// emit: result records and a metrics snapshot (--json), a Chrome trace
// (--trace / OWAN_TRACE) and a JSONL event log (--events). One writer, one
// exit hook — bench binaries never hand-roll their own emission.
struct JsonSink {
  std::string path;
  std::string trace_path;
  std::string events_path;
  std::string bench;  // argv[0] basename, the default record label
  std::vector<std::string> records;
  bool flushed = false;
};

JsonSink& Sink() {
  static JsonSink sink;
  return sink;
}

std::string JsonEscape(const std::string& s) {
  return obs::json::Escape(s);
}

std::string RenderRecord(
    const std::string& bench, const std::string& scheme,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::string rec = "{\"bench\": \"" + JsonEscape(bench) +
                    "\", \"scheme\": \"" + JsonEscape(scheme) + "\"";
  char buf[64];
  for (const auto& [key, value] : fields) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    rec += ", \"" + JsonEscape(key) + "\": " + buf;
  }
  rec += "}";
  return rec;
}

}  // namespace

void InitJsonFromArgs(int argc, char** argv) {
  JsonSink& sink = Sink();
  if (argc > 0) {
    const char* base = std::strrchr(argv[0], '/');
    sink.bench = base ? base + 1 : argv[0];
  }
  int trace_detail = 1;
  auto flag = [&](int i, const char* name, std::string* out) {
    const size_t len = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      *out = argv[i + 1];
      return true;
    }
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      *out = argv[i] + len + 1;
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    std::string detail;
    if (flag(i, "--json", &sink.path)) continue;
    if (flag(i, "--trace", &sink.trace_path)) continue;
    if (flag(i, "--events", &sink.events_path)) continue;
    if (flag(i, "--trace-detail", &detail)) {
      trace_detail = std::atoi(detail.c_str());
      continue;
    }
  }
  if (sink.trace_path.empty()) {
    if (const char* env = std::getenv("OWAN_TRACE"); env && *env != '\0') {
      sink.trace_path = env;
    }
  }
  if (!sink.trace_path.empty() || !sink.events_path.empty()) {
    obs::Tracer::Global().Start(trace_detail);
  }
  if (!sink.path.empty() || !sink.trace_path.empty() ||
      !sink.events_path.empty()) {
    std::atexit(FlushJson);
  }
}

bool JsonEnabled() { return !Sink().path.empty(); }

void JsonRecord(const std::string& bench, const std::string& scheme,
                const std::vector<std::pair<std::string, double>>& fields) {
  if (!JsonEnabled()) return;
  Sink().records.push_back(RenderRecord(bench, scheme, fields));
}

void FlushJson() {
  JsonSink& sink = Sink();
  if (sink.flushed) return;
  sink.flushed = true;
  if (!sink.trace_path.empty()) {
    if (!obs::Tracer::Global().ExportChromeTrace(sink.trace_path)) {
      std::fprintf(stderr, "bench: cannot write %s\n",
                   sink.trace_path.c_str());
    }
  }
  if (!sink.events_path.empty()) {
    if (!obs::Tracer::Global().ExportJsonl(sink.events_path)) {
      std::fprintf(stderr, "bench: cannot write %s\n",
                   sink.events_path.c_str());
    }
  }
  if (sink.path.empty()) return;
  std::FILE* f = std::fopen(sink.path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench: cannot write %s\n", sink.path.c_str());
    return;
  }
  std::fprintf(f, "{\n\"bench\": \"%s\",\n\"records\": [\n",
               JsonEscape(sink.bench).c_str());
  for (size_t i = 0; i < sink.records.size(); ++i) {
    std::fprintf(f, "  %s%s\n", sink.records[i].c_str(),
                 i + 1 < sink.records.size() ? "," : "");
  }
  const std::string metrics =
      obs::MetricsRegistry::Global().Snapshot().ToJson();
  std::fprintf(f, "],\n\"metrics\": %s\n}\n", metrics.c_str());
  std::fclose(f);
}

NamedScheme MakeOwan(core::SchedulingPolicy policy, int anneal_iterations,
                     int num_chains, int num_threads, int batch_size) {
  return NamedScheme{
      "Owan", [policy, anneal_iterations, num_chains, num_threads,
               batch_size](const topo::Wan&) {
        core::OwanOptions opt;
        opt.anneal.max_iterations = anneal_iterations;
        opt.anneal.routing.policy.policy = policy;
        opt.anneal.num_chains = num_chains;
        opt.anneal.num_threads = num_threads;
        opt.anneal.batch_size = batch_size;
        return std::make_unique<core::OwanTe>(opt);
      }};
}

NamedScheme MakeOwanLevel(core::ControlLevel level, const char* name) {
  return NamedScheme{name, [level](const topo::Wan&) {
                       core::OwanOptions opt;
                       opt.control = level;
                       opt.anneal.max_iterations = 300;
                       return std::make_unique<core::OwanTe>(opt);
                     }};
}

NamedScheme MakeMaxFlow() {
  return NamedScheme{"MaxFlow", [](const topo::Wan&) {
                       return std::make_unique<te::MaxFlowTe>();
                     }};
}

NamedScheme MakeMaxMinFract() {
  return NamedScheme{"MaxMinFract", [](const topo::Wan&) {
                       return std::make_unique<te::MaxMinFractTe>();
                     }};
}

NamedScheme MakeSwan() {
  return NamedScheme{"SWAN", [](const topo::Wan&) {
                       return std::make_unique<te::SwanTe>();
                     }};
}

NamedScheme MakeTempus() {
  return NamedScheme{"Tempus", [](const topo::Wan&) {
                       return std::make_unique<te::TempusTe>();
                     }};
}

NamedScheme MakeAmoeba(double slot_seconds) {
  return NamedScheme{"Amoeba", [slot_seconds](const topo::Wan& wan) {
                       return std::make_unique<te::AmoebaTe>(
                           wan.default_topology.ToGraph(
                               wan.optical.wavelength_capacity()),
                           slot_seconds);
                     }};
}

NamedScheme MakeGreedy() {
  return NamedScheme{"Greedy", [](const topo::Wan&) {
                       return std::make_unique<te::GreedyOwanTe>();
                     }};
}

RunStats RunOne(const topo::Wan& wan, const std::vector<core::Request>& reqs,
                const NamedScheme& scheme, double load,
                const sim::SimOptions& options) {
  auto te = scheme.make(wan);
  RunStats stats;
  stats.scheme = scheme.name;
  stats.load = load;
  sim::SimOptions capped = options;
  // A day of simulated time bounds the worst baselines' backlogged tails
  // (unfinished transfers count as completing at the cap, identically for
  // every scheme).
  capped.max_time_s = std::min(capped.max_time_s, 24.0 * 3600.0);
  stats.raw = sim::RunSimulation(wan, reqs, *te, capped);
  stats.completion = sim::CompletionTimes(stats.raw);
  stats.by_bin = sim::CompletionTimesBySizeBin(stats.raw);
  stats.makespan = stats.raw.makespan;
  stats.pct_deadline_met = 100.0 * stats.raw.FractionMeetingDeadline();
  stats.pct_bytes_by_deadline = 100.0 * stats.raw.FractionBytesByDeadline();
  auto bins = sim::DeadlineMetBySizeBin(stats.raw);
  for (size_t b = 0; b < 3; ++b) stats.deadline_by_bin[b] = 100.0 * bins[b];

  if (JsonEnabled()) {
    double delivered = 0.0;  // gigabits over the whole run
    for (const auto& t : stats.raw.transfers) delivered += t.delivered;
    const double throughput =
        stats.raw.makespan > 0.0 ? delivered / stats.raw.makespan : 0.0;
    JsonRecord(Sink().bench, stats.scheme,
               {{"load", stats.load},
                {"throughput_gbps", throughput},
                {"avg_completion_s", stats.completion.Mean()},
                {"p95_completion_s", stats.completion.Percentile(95)},
                {"makespan_s", stats.makespan},
                {"compute_seconds", stats.raw.compute_seconds},
                {"slots", static_cast<double>(stats.raw.slots)}});
  }
  return stats;
}

workload::WorkloadParams ParamsFor(const topo::Wan& wan, double load,
                                   double deadline_factor, uint64_t seed) {
  workload::WorkloadParams wp;
  wp.load_factor = load;
  wp.deadline_factor = deadline_factor;
  wp.seed = seed;
  if (wan.name == "internet2") {
    wp.duration_s = 7200.0;     // the paper's two hours
    wp.mean_size = 4000.0;      // 500 GB (testbed-scale transfers)
  } else {
    wp.duration_s = 900.0;      // keep LP baselines tractable on one core
    wp.mean_size = 40000.0;     // 5 TB (simulation-scale transfers)
    wp.hotspots = wan.name == "interdc";
  }
  return wp;
}

void PrintHeader(const std::string& title) {
  // Benches often run redirected to files; keep progress visible.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("\n==== %s ====\n", title.c_str());
}

void PrintImprovementRow(const RunStats& owan, const RunStats& baseline) {
  std::printf(
      "  load %.1f  w.r.t %-12s  avg %6.2fx  (owan %7.0fs vs %8.0fs)   "
      "95p %6.2fx  (owan %7.0fs vs %8.0fs)\n",
      owan.load, baseline.scheme.c_str(),
      sim::ImprovementFactor(baseline.completion.Mean(),
                             owan.completion.Mean()),
      owan.completion.Mean(), baseline.completion.Mean(),
      sim::ImprovementFactor(baseline.completion.Percentile(95),
                             owan.completion.Percentile(95)),
      owan.completion.Percentile(95), baseline.completion.Percentile(95));
}

void PrintBinImprovementRows(const RunStats& owan, const RunStats& baseline) {
  static const char* kBinNames[] = {"small", "middle", "large"};
  for (size_t b = 0; b < 3; ++b) {
    if (owan.by_bin[b].empty() || baseline.by_bin[b].empty()) continue;
    std::printf("  bin %-6s  w.r.t %-12s  avg %6.2fx   95p %6.2fx\n",
                kBinNames[b], baseline.scheme.c_str(),
                sim::ImprovementFactor(baseline.by_bin[b].Mean(),
                                       owan.by_bin[b].Mean()),
                sim::ImprovementFactor(baseline.by_bin[b].Percentile(95),
                                       owan.by_bin[b].Percentile(95)));
  }
}

void PrintCdf(const RunStats& stats, size_t points) {
  std::printf("  CDF %-12s:", stats.scheme.c_str());
  for (const auto& [value, frac] : stats.completion.Cdf(points)) {
    std::printf(" %.0fs@%.0f%%", value, frac * 100.0);
  }
  std::printf("\n");
}

}  // namespace owan::bench
