// Update-execution benchmark: convergence time and retry/abort behaviour
// of the resilient update engine as per-op actuation failure rates climb
// (§4 under an imperfect plant). Each row runs the full control loop on
// Internet2 with SimOptions::execute_updates and a seeded actuation model,
// so the numbers include plan repair, forced ops, and safe-aborts — not
// just the happy path. Rate 0 is the nominal plant and must execute every
// update with zero retries. Emits one JSON record per rate with --json;
// everything except the wall-clock column is deterministic per seed, so
// CI can archive and diff the trend.
#include <chrono>
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace owan;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<core::Request> FixedRequests() {
  // Cross-backbone mix sized so every slot recomputation moves circuits.
  std::vector<core::Request> reqs;
  const int pairs[][2] = {{0, 8}, {1, 5}, {3, 7}, {2, 6}, {0, 6}, {4, 8}};
  int id = 0;
  for (const auto& p : pairs) {
    core::Request r;
    r.id = id;
    r.src = p[0];
    r.dst = p[1];
    r.size = 18000.0 + 3000.0 * (id % 3);
    r.arrival = 300.0 * id;
    reqs.push_back(r);
    ++id;
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInternet2();
  const auto reqs = FixedRequests();
  const double rates[] = {0.0, 0.05, 0.1, 0.2, 0.3};

  bench::PrintHeader(
      "update execution — convergence vs actuation failure rate");
  std::printf("%-6s %8s %7s %8s %7s %8s %11s %8s %11s\n", "rate", "updates",
              "aborts", "retries", "forced", "exec s", "mean conv s",
              "wall ms", "violations");

  for (const double rate : rates) {
    auto scheme = bench::MakeOwan();
    auto te = scheme.make(wan);
    sim::SimOptions opt;
    opt.max_time_s = 24.0 * 3600.0;
    opt.execute_updates = true;
    opt.actuation.seed = 97;
    opt.actuation.circuit_failure_prob = rate;
    opt.actuation.route_failure_prob = rate / 4.0;
    opt.actuation.latency_cv = rate > 0.0 ? 0.3 : 0.0;
    opt.actuation.straggler_prob = rate > 0.0 ? 0.05 : 0.0;

    const auto t0 = Clock::now();
    sim::SimResult res = sim::RunSimulation(wan, reqs, *te, opt);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    const int converged = res.updates_executed - res.update_aborts;
    const double mean_conv =
        converged > 0 ? res.update_exec_seconds / converged : 0.0;
    std::printf("%-6.2f %8d %7d %8d %7d %8.1f %11.2f %8.1f %11zu\n", rate,
                res.updates_executed, res.update_aborts, res.update_retries,
                res.update_forced_ops, res.update_exec_seconds, mean_conv,
                wall_ms, res.invariant_violations.size());
    for (const std::string& v : res.invariant_violations) {
      std::printf("  INVARIANT: %s\n", v.c_str());
    }

    bench::JsonRecord(
        "update_exec", "fail-" + std::to_string(rate),
        {{"failure_rate", rate},
         {"updates_executed", static_cast<double>(res.updates_executed)},
         {"update_aborts", static_cast<double>(res.update_aborts)},
         {"update_retries", static_cast<double>(res.update_retries)},
         {"update_forced_ops", static_cast<double>(res.update_forced_ops)},
         {"update_exec_seconds", res.update_exec_seconds},
         {"mean_convergence_s", mean_conv},
         {"slots", static_cast<double>(res.slots)},
         {"wall_ms", wall_ms},
         {"invariant_violations",
          static_cast<double>(res.invariant_violations.size())}});
  }
  bench::FlushJson();
  return 0;
}
