// Reproduces Fig. 10(a): total throughput over time under joint
// optical/network optimization (simulated annealing) vs the decoupled
// greedy algorithm, on the inter-DC topology at load 2 (capacity-bound).
#include <cstdio>

#include "harness.h"

using namespace owan;

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInterDc();
  // A deeper backlog than the fig7 runs so the network stays
  // capacity-bound long enough for the throughput series to separate (no
  // LP baselines here, so the bigger workload stays cheap).
  workload::WorkloadParams wp = bench::ParamsFor(wan, 2.0);
  wp.duration_s = 3600.0;
  const auto reqs = workload::GenerateWorkload(wan, wp);

  const bench::RunStats sa =
      bench::RunOne(wan, reqs, bench::MakeOwan(), 2.0);
  const bench::RunStats greedy =
      bench::RunOne(wan, reqs, bench::MakeGreedy(), 2.0);

  bench::PrintHeader("Fig. 10a — simulated annealing vs greedy decoupling");
  std::printf("%8s  %14s  %14s\n", "time(s)", "SA Gbps", "Greedy Gbps");
  const size_t n = std::max(sa.raw.slot_throughput.size(),
                            greedy.raw.slot_throughput.size());
  // Both schemes eventually move the same total volume, so the figure's
  // signal is how FAST the joint optimizer moves it: compare throughput
  // over the window where the queue is still deep (the first quarter of
  // the longer run), like the paper's time series.
  const size_t window = std::max<size_t>(4, n / 4);
  double sa_sum = 0.0, greedy_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double t = 300.0 * static_cast<double>(i);
    const double a = i < sa.raw.slot_throughput.size()
                         ? sa.raw.slot_throughput[i].second
                         : 0.0;
    const double g = i < greedy.raw.slot_throughput.size()
                         ? greedy.raw.slot_throughput[i].second
                         : 0.0;
    if (i < 30) std::printf("%8.0f  %14.1f  %14.1f\n", t, a, g);
    if (i < window) {
      sa_sum += a;
      greedy_sum += g;
    }
  }
  const double sa_avg = sa_sum / static_cast<double>(window);
  const double greedy_avg = greedy_sum / static_cast<double>(window);
  std::printf("\nbacklogged-window average (%zu slots): SA %.1f Gbps vs "
              "Greedy %.1f Gbps (greedy %.0f%% below joint optimization)\n",
              window, sa_avg, greedy_avg,
              100.0 * (1.0 - greedy_avg / sa_avg));
  std::printf("avg completion: SA %.0fs vs Greedy %.0fs (%.2fx); makespan "
              "SA %.0fs vs Greedy %.0fs\n",
              sa.completion.Mean(), greedy.completion.Mean(),
              greedy.completion.Mean() / sa.completion.Mean(),
              sa.makespan, greedy.makespan);
  return 0;
}
