// Google-benchmark microbenchmarks for the hot primitives: one annealing
// step (provision + route), the energy function, circuit provisioning, the
// regenerator graph, Yen's k-shortest paths, blossom matching, and the
// simplex solver. These bound the controller's per-slot latency (the paper
// reports ~320 ms of annealing is enough — see bench_fig10d).
#include <benchmark/benchmark.h>

#include "core/annealing.h"
#include "core/provisioned_state.h"
#include "core/routing.h"
#include "lp/mcf.h"
#include "lp/simplex.h"
#include "net/matching.h"
#include "net/shortest_path.h"
#include "optical/regen_graph.h"
#include "topo/topologies.h"
#include "util/rng.h"
#include "workload/workload.h"

using namespace owan;

namespace {

std::vector<core::TransferDemand> DemandsFor(const topo::Wan& wan, int n) {
  util::Rng rng(5);
  std::vector<core::TransferDemand> out;
  for (int i = 0; i < n; ++i) {
    core::TransferDemand d;
    d.id = i;
    d.src = static_cast<int>(rng.Index(
        static_cast<size_t>(wan.optical.NumSites())));
    do {
      d.dst = static_cast<int>(rng.Index(
          static_cast<size_t>(wan.optical.NumSites())));
    } while (d.dst == d.src);
    d.rate_cap = rng.Uniform(1.0, 50.0);
    d.remaining = d.rate_cap * 300.0;
    out.push_back(d);
  }
  return out;
}

void BM_EnergyEvaluation(benchmark::State& state) {
  topo::Wan wan = topo::MakeInterDc();
  auto demands = DemandsFor(wan, static_cast<int>(state.range(0)));
  core::ProvisionedState ps(wan.optical);
  ps.SyncTo(wan.default_topology);
  const net::Graph g = ps.CapacityGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeThroughput(g, demands, {}));
  }
}
BENCHMARK(BM_EnergyEvaluation)->Arg(16)->Arg(64)->Arg(128);

void BM_AnnealingIteration(benchmark::State& state) {
  topo::Wan wan = topo::MakeInterDc();
  auto demands = DemandsFor(wan, 64);
  util::Rng rng(7);
  core::AnnealOptions opt;
  opt.max_iterations = static_cast<int>(state.range(0));
  opt.epsilon_ratio = 1e-12;  // let the iteration cap bind
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeNetworkState(
        wan.default_topology, wan.optical, demands, opt, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnnealingIteration)->Arg(10)->Arg(50)->Arg(200);

void BM_CircuitProvisioning(benchmark::State& state) {
  topo::Wan wan = topo::MakeIspBackbone();
  util::Rng rng(9);
  for (auto _ : state) {
    optical::OpticalNetwork on = wan.optical;
    const int a = static_cast<int>(rng.Index(40));
    int b = static_cast<int>(rng.Index(40));
    if (b == a) b = (b + 1) % 40;
    benchmark::DoNotOptimize(on.ProvisionCircuit(a, b));
  }
}
BENCHMARK(BM_CircuitProvisioning);

void BM_RegenGraphBuild(benchmark::State& state) {
  topo::Wan wan = topo::MakeIspBackbone();
  for (auto _ : state) {
    optical::RegenGraph rg(wan.optical, 0, 39);
    benchmark::DoNotOptimize(rg.CandidateSequences(4));
  }
}
BENCHMARK(BM_RegenGraphBuild);

void BM_YenKShortest(benchmark::State& state) {
  topo::Wan wan = topo::MakeIspBackbone();
  const net::Graph g = wan.default_topology.ToGraph(100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::KShortestPaths(g, 0, g.NumNodes() - 1,
                            static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_YenKShortest)->Arg(1)->Arg(4)->Arg(16);

void BM_BlossomMatching(benchmark::State& state) {
  util::Rng rng(11);
  const int n = static_cast<int>(state.range(0));
  net::Graph g(n);
  for (int i = 0; i < 4 * n; ++i) {
    const int u = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    const int v = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    if (u != v && g.FindEdge(u, v) == net::kInvalidEdge) g.AddEdge(u, v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::MaximumMatching(g));
  }
}
BENCHMARK(BM_BlossomMatching)->Arg(16)->Arg(64);

void BM_SimplexMcf(benchmark::State& state) {
  topo::Wan wan = topo::MakeIspBackbone();
  const net::Graph g = wan.default_topology.ToGraph(100.0);
  auto demands = DemandsFor(wan, static_cast<int>(state.range(0)));
  std::vector<lp::Commodity> commodities;
  for (const auto& d : demands) {
    commodities.push_back(lp::Commodity{d.src, d.dst, d.rate_cap});
  }
  for (auto _ : state) {
    lp::McfBuilder mcf(g, commodities, 3);
    mcf.ObjectiveMaxThroughput();
    benchmark::DoNotOptimize(lp::Solve(mcf.lp()));
  }
}
BENCHMARK(BM_SimplexMcf)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
