// Ablation of the §3.4 group-transfer heuristic: Smallest-Effective-
// Bottleneck-First (SEBF) vs treating group members as independent SJF
// transfers. Metric: average group completion time (a group finishes when
// its LAST member does).
#include <cstdio>

#include "core/coflow.h"
#include "harness.h"

using namespace owan;

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInterDc();
  util::Rng rng(31);
  const int n = wan.optical.NumSites();

  // 12 groups of 2-4 members each: one source pushing the same content to
  // several destinations (the paper's video-distribution motivation).
  std::vector<core::Request> reqs;
  core::CoflowRegistry registry;
  int next_id = 0;
  for (int g = 0; g < 12; ++g) {
    const int src = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    const int members = 2 + static_cast<int>(rng.Index(3));
    const double base = rng.Uniform(5000.0, 60000.0);
    for (int m = 0; m < members; ++m) {
      int dst = static_cast<int>(rng.Index(static_cast<size_t>(n)));
      if (dst == src) dst = (dst + 1) % n;
      core::Request r;
      r.id = next_id++;
      r.src = src;
      r.dst = dst;
      r.size = base * rng.Uniform(0.3, 1.7);  // skewed member sizes
      r.arrival = rng.Uniform(0.0, 1800.0);
      reqs.push_back(r);
      registry.AddMember(g, r.id);
    }
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const core::Request& a, const core::Request& b) {
              return a.arrival < b.arrival;
            });

  auto run = [&](const core::CoflowRegistry* coflows) {
    core::OwanOptions opt;
    opt.anneal.max_iterations = 250;
    opt.coflows = coflows;
    core::OwanTe te(opt);
    auto res = sim::RunSimulation(wan, reqs, te);
    std::vector<int> ids;
    std::vector<double> arrivals, completions;
    for (const auto& t : res.transfers) {
      ids.push_back(t.request.id);
      arrivals.push_back(t.request.arrival);
      completions.push_back(t.completed_at);
    }
    util::Summary s;
    for (const auto& g :
         core::GroupCompletions(registry, ids, arrivals, completions)) {
      s.Add(g.completion_time);
    }
    return s;
  };

  bench::PrintHeader("Ablation — group transfers: SEBF vs independent SJF");
  const util::Summary sjf = run(nullptr);
  const util::Summary sebf = run(&registry);
  std::printf("  independent SJF: avg group completion %7.0fs (95p %7.0fs)\n",
              sjf.Mean(), sjf.Percentile(95));
  std::printf("  SEBF grouping:   avg group completion %7.0fs (95p %7.0fs)\n",
              sebf.Mean(), sebf.Percentile(95));
  std::printf("  SEBF improvement: %.2fx\n", sjf.Mean() / sebf.Mean());
  return 0;
}
