#ifndef OWAN_BENCH_EXPERIMENTS_H_
#define OWAN_BENCH_EXPERIMENTS_H_

#include "harness.h"

namespace owan::bench {

// Fig. 7 (a-c / d-f / g-i): deadline-unconstrained completion time on one
// topology — improvement vs load, per-size-bin improvement at load 1, and
// the completion-time CDF at load 1.
void RunFig7(const topo::Wan& wan);

// Fig. 8 (a/b/c): makespan improvement vs load on one topology.
void RunFig8(const topo::Wan& wan);

// Fig. 9 (a-c / d-f / g-i): deadline-constrained traffic on one topology —
// % transfers meeting deadlines and % bytes by deadline vs the deadline
// factor sigma, plus the per-size-bin breakdown at sigma = 20.
void RunFig9(const topo::Wan& wan);

}  // namespace owan::bench

#endif  // OWAN_BENCH_EXPERIMENTS_H_
