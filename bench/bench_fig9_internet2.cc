// Reproduces Fig. 9(a-c): deadline-constrained traffic on Internet2.
#include "experiments.h"

int main(int argc, char** argv) {
  owan::bench::InitJsonFromArgs(argc, argv);
  owan::bench::RunFig9(owan::topo::MakeInternet2());
  return 0;
}
