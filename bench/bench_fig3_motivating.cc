// Reproduces Fig. 3: the motivating example. Plans A/B/C on the 4-router
// square; expected completion times 1.0 / 0.75 / 0.5 time units.
#include <cstdio>

#include "harness.h"

using namespace owan;

namespace {

core::Request Req(int id, int src, int dst, double size) {
  core::Request r;
  r.id = id;
  r.src = src;
  r.dst = dst;
  r.size = size;
  r.arrival = 0.0;
  return r;
}

double Run(const topo::Wan& wan, core::ControlLevel level, bool strict) {
  core::OwanOptions opt;
  opt.control = level;
  opt.anneal.max_iterations = 250;
  opt.anneal.routing.strict_priority = strict;
  core::OwanTe te(opt);
  sim::SimOptions so;
  so.slot_seconds = 75.0;
  auto res = sim::RunSimulation(
      wan, {Req(0, 0, 1, 3000.0), Req(1, 2, 3, 3000.0)}, te, so);
  return sim::CompletionTimes(res).Mean() / 300.0;  // in paper time units
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeMotivatingExample();
  bench::PrintHeader("Fig. 3 — motivating example (avg completion, units)");
  std::printf("  Plan A (routing only):      %.2f  (paper: 1.00)\n",
              Run(wan, core::ControlLevel::kRateOnly, false));
  std::printf("  Plan B (+ rates, SJF):      %.2f  (paper: 0.75)\n",
              Run(wan, core::ControlLevel::kRateAndRouting, true));
  std::printf("  Plan C (+ topology):        %.2f  (paper: 0.50)\n",
              Run(wan, core::ControlLevel::kFull, false));
  return 0;
}
