// bench_admission — throughput and staleness economics of the streaming
// controller service: how fast online admission decides, and how many TE
// recomputes a request stream actually costs once the bounded-staleness
// batching coalesces arrivals (the whole point of the service vs. the
// per-slot batch simulator).
//
// Prints one row per (mode, stream size): decisions/sec, recomputes vs.
// requests (the batching ratio), coast fraction, accept rate. With --json
// the same rows land in the perf artifact for tools/check_perf.py.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "harness.h"
#include "service/service.h"
#include "te/greedy.h"
#include "workload/stream.h"

using namespace owan;

namespace {

struct Row {
  const char* mode;
  uint64_t requests;
  service::ServiceStats stats;
  double wall_s;
  uint64_t fingerprint;
};

Row RunOnce(const topo::Wan& wan, const char* mode_name,
            service::ServiceMode mode, uint64_t requests, uint64_t seed) {
  service::ServiceOptions opt;
  opt.mode = mode;
  opt.retain_records = false;
  workload::StreamParams params;
  params.seed = seed;
  // ~60 arrivals per 300 s slot: enough concurrency that batching matters.
  params.arrivals_per_s = 0.2;
  params.slot_seconds = opt.slot_seconds;
  // The default 72 h clock cap bounds stragglers the scheme starves; the
  // stream itself ends well before it at this arrival rate.

  service::ControllerService svc(
      &wan, std::make_unique<te::GreedyOwanTe>(), opt);
  svc.AttachStream(params, requests);
  const auto t0 = std::chrono::steady_clock::now();
  svc.Run();
  Row row;
  row.mode = mode_name;
  row.requests = requests;
  row.stats = svc.stats();
  row.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  row.fingerprint = svc.Fingerprint();
  return row;
}

void Print(const Row& r) {
  const auto& s = r.stats;
  const double decided = static_cast<double>(s.admitted + s.rejected);
  std::printf(
      "%-12s %8llu req  %7.0f dec/s  %6llu recomputes (%5.1fx batched)  "
      "%4.0f%% coast  %5.1f%% accept  fp %016llx\n",
      r.mode, (unsigned long long)r.requests,
      r.wall_s > 0 ? decided / r.wall_s : 0.0,
      (unsigned long long)s.recomputes,
      s.recomputes > 0
          ? static_cast<double>(r.requests) / static_cast<double>(s.recomputes)
          : 0.0,
      s.slots > 0
          ? 100.0 * static_cast<double>(s.coasts) / static_cast<double>(s.slots)
          : 0.0,
      decided > 0 ? 100.0 * static_cast<double>(s.admitted) / decided : 0.0,
      (unsigned long long)r.fingerprint);
  bench::JsonRecord(
      "admission", r.mode,
      {{"requests", static_cast<double>(r.requests)},
       {"admitted", static_cast<double>(s.admitted)},
       {"rejected", static_cast<double>(s.rejected)},
       {"pending_enqueued", static_cast<double>(s.pending_enqueued)},
       {"pending_admitted", static_cast<double>(s.pending_admitted)},
       {"slots", static_cast<double>(s.slots)},
       {"recomputes", static_cast<double>(s.recomputes)},
       {"coasts", static_cast<double>(s.coasts)},
       {"compute_seconds", s.compute_seconds},
       {"delivered_gigabits", s.delivered_gigabits},
       {"wall_seconds", r.wall_s},
       {"decisions_per_second", r.wall_s > 0 ? decided / r.wall_s : 0.0}});
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  uint64_t requests = 20000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--requests") && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  const topo::Wan wan = topo::MakeInternet2();
  bench::PrintHeader(
      "Streaming admission: decision throughput and recompute batching");

  // Passthrough recomputes every slot (the batch-simulator cost model);
  // online coalesces. The recompute column is the tentpole claim: far
  // fewer TE solves than requests, and far fewer than passthrough slots.
  Print(RunOnce(wan, "passthrough", service::ServiceMode::kPassthrough,
                requests / 4, 29));
  Print(RunOnce(wan, "online", service::ServiceMode::kOnline, requests / 4,
                29));
  Print(RunOnce(wan, "online", service::ServiceMode::kOnline, requests, 31));

  bench::FlushJson();
  return 0;
}
