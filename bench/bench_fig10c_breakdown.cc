// Reproduces Fig. 10(c): breakdown of gains — average completion time when
// the controller manages (1) rates only, (2) rates + routing, (3) rates +
// routing + topology, on the inter-DC topology. Times are normalized by
// the full system at load 0.5, exactly as in the paper.
#include <cstdio>

#include "harness.h"

using namespace owan;

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInterDc();
  const bench::NamedScheme levels[] = {
      bench::MakeOwanLevel(core::ControlLevel::kRateOnly, "rate"),
      bench::MakeOwanLevel(core::ControlLevel::kRateAndRouting, "+rout."),
      bench::MakeOwanLevel(core::ControlLevel::kFull, "+topo."),
  };
  const double loads[] = {0.5, 1.0, 1.5, 2.0};

  double norm = 0.0;
  double mean[3][4] = {};
  for (size_t li = 0; li < 4; ++li) {
    const auto reqs =
        workload::GenerateWorkload(wan, bench::ParamsFor(wan, loads[li]));
    for (size_t si = 0; si < 3; ++si) {
      const bench::RunStats s =
          bench::RunOne(wan, reqs, levels[si], loads[li]);
      mean[si][li] = s.completion.Mean();
      if (si == 2 && li == 0) norm = s.completion.Mean();
    }
  }

  bench::PrintHeader("Fig. 10c — breakdown of gains (inter-DC)");
  std::printf("normalized avg completion time (1.0 = full control at "
              "load 0.5)\n%-8s", "scheme");
  for (double l : loads) std::printf("  load=%-4.1f", l);
  std::printf("\n");
  for (size_t si = 0; si < 3; ++si) {
    std::printf("%-8s", levels[si].name.c_str());
    for (size_t li = 0; li < 4; ++li) {
      std::printf("  %8.2f ", mean[si][li] / norm);
    }
    std::printf("\n");
  }
  return 0;
}
