// Reproduces Fig. 9(d-f): deadline-constrained traffic on the ISP
// backbone.
#include "experiments.h"

int main(int argc, char** argv) {
  owan::bench::InitJsonFromArgs(argc, argv);
  owan::bench::RunFig9(owan::topo::MakeIspBackbone());
  return 0;
}
