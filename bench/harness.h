#ifndef OWAN_BENCH_HARNESS_H_
#define OWAN_BENCH_HARNESS_H_

// Shared machinery for the experiment-reproduction binaries (one per paper
// table/figure). Each binary prints the same rows/series the paper reports;
// absolute numbers differ from the authors' testbed, but the shape (who
// wins, by what factor, where crossovers fall) is the reproduction target.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/owan.h"
#include "core/te_scheme.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "te/amoeba.h"
#include "te/greedy.h"
#include "te/lp_baselines.h"
#include "topo/topologies.h"
#include "workload/workload.h"

namespace owan::bench {

// Factory so each run gets a fresh scheme (schemes are stateful).
using SchemeFactory =
    std::function<std::unique_ptr<core::TeScheme>(const topo::Wan&)>;

struct NamedScheme {
  std::string name;
  SchemeFactory make;
};

// The paper's §5.1 lineup. num_chains/num_threads/batch_size select the
// parallel multi-chain search (defaults keep the paper's single-chain
// semantics).
NamedScheme MakeOwan(core::SchedulingPolicy policy =
                         core::SchedulingPolicy::kShortestJobFirst,
                     int anneal_iterations = 300, int num_chains = 1,
                     int num_threads = 1, int batch_size = 1);
NamedScheme MakeOwanLevel(core::ControlLevel level, const char* name);
NamedScheme MakeMaxFlow();
NamedScheme MakeMaxMinFract();
NamedScheme MakeSwan();
NamedScheme MakeTempus();
NamedScheme MakeAmoeba(double slot_seconds = 300.0);
NamedScheme MakeGreedy();

struct RunStats {
  std::string scheme;
  double load = 0.0;
  util::Summary completion;              // seconds
  std::array<util::Summary, 3> by_bin;   // small / middle / large
  double makespan = 0.0;
  double pct_deadline_met = 0.0;
  double pct_bytes_by_deadline = 0.0;
  std::array<double, 3> deadline_by_bin{0.0, 0.0, 0.0};
  sim::SimResult raw;
};

RunStats RunOne(const topo::Wan& wan, const std::vector<core::Request>& reqs,
                const NamedScheme& scheme, double load,
                const sim::SimOptions& options = {});

// Workload for a topology at a given load factor; deadline_factor <= 1 for
// the completion-time experiments.
workload::WorkloadParams ParamsFor(const topo::Wan& wan, double load,
                                   double deadline_factor = 0.0,
                                   uint64_t seed = 17);

// Printing helpers.
void PrintHeader(const std::string& title);
void PrintImprovementRow(const RunStats& owan, const RunStats& baseline);
void PrintBinImprovementRows(const RunStats& owan, const RunStats& baseline);
void PrintCdf(const RunStats& stats, size_t points = 10);

// ---- machine-readable results and telemetry ----
//
// Call InitJsonFromArgs at the top of a bench main. It understands:
//   --json <path>     write one JSON object {"bench", "records", "metrics"}
//                     at process exit: every RunOne result (plus free-form
//                     JsonRecord rows) under "records", and the run's
//                     obs::MetricsRegistry snapshot under "metrics".
//   --trace <path>    start obs::Tracer and export a Chrome-tracing JSON
//                     file at exit (loads in Perfetto / chrome://tracing).
//   --events <path>   same session, exported as a JSONL event log.
//   --trace-detail N  tracer detail level (default 1; 2 = fine-grained).
// Without the flags all of these are no-ops, so printed output never
// changes. The OWAN_TRACE environment variable is an alternative spelling
// of --trace for binaries invoked through scripts.
void InitJsonFromArgs(int argc, char** argv);
bool JsonEnabled();
// One record: which experiment, which scheme/mode, plus numeric fields.
void JsonRecord(const std::string& bench, const std::string& scheme,
                const std::vector<std::pair<std::string, double>>& fields);
void FlushJson();

}  // namespace owan::bench

#endif  // OWAN_BENCH_HARNESS_H_
