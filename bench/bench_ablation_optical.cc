// Ablations of the optical-layer design choices called out in DESIGN.md:
//   (1) wavelength-assignment policy (first-fit / most-used / least-used)
//       under circuit churn with scarce wavelengths;
//   (2) regenerator balancing (inverse-remaining node weights, Fig. 5) vs
//       ignoring remaining counts.
// Metric: blocking rate — the fraction of circuit requests that could not
// be provisioned.
#include <cstdio>

#include "harness.h"
#include "optical/optical_network.h"

using namespace owan;

namespace {

// Packing fill: provision random circuits (with light churn) until 25
// consecutive requests block; returns how many circuits are live at that
// point — a direct measure of how well the policy packs the plant.
int FillCapacity(optical::OpticalNetwork on, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<optical::CircuitId> live;
  const int n = on.NumSites();
  int consecutive_blocked = 0;
  while (consecutive_blocked < 25) {
    if (!live.empty() && rng.Chance(0.15)) {
      const size_t k = rng.Index(live.size());
      on.ReleaseCircuit(live[k]);
      live.erase(live.begin() + static_cast<long>(k));
      continue;
    }
    const int a = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    int b = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    if (b == a) b = (b + 1) % n;
    auto id = on.ProvisionCircuit(a, b);
    if (id) {
      live.push_back(*id);
      consecutive_blocked = 0;
    } else {
      ++consecutive_blocked;
    }
  }
  return static_cast<int>(live.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  bench::PrintHeader("Ablation — wavelength assignment policy");
  {
    // Scarce wavelengths stress continuity: 4 lambdas per fiber.
    topo::WanParams p;
    p.wavelengths_per_fiber = 4;
    p.wavelength_gbps = 100.0;
    const char* names[] = {"first-fit", "most-used", "least-used"};
    const optical::WavelengthPolicy policies[] = {
        optical::WavelengthPolicy::kFirstFit,
        optical::WavelengthPolicy::kMostUsed,
        optical::WavelengthPolicy::kLeastUsed};
    for (int pi = 0; pi < 3; ++pi) {
      double total = 0.0;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        topo::Wan wan = topo::MakeIspBackbone(7, 40, p);
        wan.optical.set_wavelength_policy(policies[pi]);
        total += FillCapacity(wan.optical, seed);
      }
      std::printf("  %-10s circuits packed before blocking: %.1f\n",
                  names[pi], total / 8.0);
    }
  }

  bench::PrintHeader("Ablation — regenerator balancing (Fig. 5 weights)");
  {
    // Make regenerators the scarce resource: tight reach, few regens.
    topo::WanParams p;
    p.reach_km = 900.0;
    for (bool balance : {true, false}) {
      double total = 0.0;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        topo::Wan wan = topo::MakeIspBackbone(7, 40, p);
        wan.optical.set_balance_regens(balance);
        total += FillCapacity(wan.optical, seed);
      }
      std::printf("  %-12s circuits packed before blocking: %.1f\n",
                  balance ? "balanced" : "unbalanced", total / 8.0);
    }
  }
  return 0;
}
