// Ablations of the optical-layer design choices called out in DESIGN.md:
//   (1) wavelength-assignment policy (first-fit / most-used / least-used)
//       under circuit churn with scarce wavelengths;
//   (2) regenerator balancing (inverse-remaining node weights, Fig. 5) vs
//       ignoring remaining counts;
//   (3) boolean reach vs QoT-graded capacity: what the hard-reach model
//       promises vs what distance-adaptive modulation actually delivers.
// Metric for (1)/(2): blocking rate — the fraction of circuit requests
// that could not be provisioned. For (3): installed Gbps and routed
// throughput on the same plant geometry and demand set.
#include <cstdio>

#include "core/provisioned_state.h"
#include "core/routing.h"
#include "harness.h"
#include "optical/optical_network.h"

using namespace owan;

namespace {

// Packing fill: provision random circuits (with light churn) until 25
// consecutive requests block; returns how many circuits are live at that
// point — a direct measure of how well the policy packs the plant.
int FillCapacity(optical::OpticalNetwork on, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<optical::CircuitId> live;
  const int n = on.NumSites();
  int consecutive_blocked = 0;
  while (consecutive_blocked < 25) {
    if (!live.empty() && rng.Chance(0.15)) {
      const size_t k = rng.Index(live.size());
      on.ReleaseCircuit(live[k]);
      live.erase(live.begin() + static_cast<long>(k));
      continue;
    }
    const int a = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    int b = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    if (b == a) b = (b + 1) % n;
    auto id = on.ProvisionCircuit(a, b);
    if (id) {
      live.push_back(*id);
      consecutive_blocked = 0;
    } else {
      ++consecutive_blocked;
    }
  }
  return static_cast<int>(live.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  bench::PrintHeader("Ablation — wavelength assignment policy");
  {
    // Scarce wavelengths stress continuity: 4 lambdas per fiber.
    topo::WanParams p;
    p.wavelengths_per_fiber = 4;
    p.wavelength_gbps = 100.0;
    const char* names[] = {"first-fit", "most-used", "least-used"};
    const optical::WavelengthPolicy policies[] = {
        optical::WavelengthPolicy::kFirstFit,
        optical::WavelengthPolicy::kMostUsed,
        optical::WavelengthPolicy::kLeastUsed};
    for (int pi = 0; pi < 3; ++pi) {
      double total = 0.0;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        topo::Wan wan = topo::MakeIspBackbone(7, 40, p);
        wan.optical.set_wavelength_policy(policies[pi]);
        total += FillCapacity(wan.optical, seed);
      }
      std::printf("  %-10s circuits packed before blocking: %.1f\n",
                  names[pi], total / 8.0);
    }
  }

  bench::PrintHeader("Ablation — regenerator balancing (Fig. 5 weights)");
  {
    // Make regenerators the scarce resource: tight reach, few regens.
    topo::WanParams p;
    p.reach_km = 900.0;
    for (bool balance : {true, false}) {
      double total = 0.0;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        topo::Wan wan = topo::MakeIspBackbone(7, 40, p);
        wan.optical.set_balance_regens(balance);
        total += FillCapacity(wan.optical, seed);
      }
      std::printf("  %-12s circuits packed before blocking: %.1f\n",
                  balance ? "balanced" : "unbalanced", total / 8.0);
    }
  }

  bench::PrintHeader("Ablation — boolean reach vs QoT-graded capacity (ISP-40)");
  {
    // Same 40-site plant geometry and demand set under both physical-layer
    // models. The boolean model credits every wavelength with the full
    // line rate anywhere inside its hard reach; the QoT twin grades each
    // circuit by accumulated OSNR, so long links earn lower tiers (or none)
    // and the gap measures how much the boolean abstraction overstates
    // deliverable capacity.
    topo::WanParams boolean_reach;
    boolean_reach.wavelength_gbps = 200.0;
    boolean_reach.reach_km = 5000.0;  // ~ the QoT 50G feasibility edge
    topo::WanParams graded = boolean_reach;
    graded.qot.enabled = true;
    const char* names[] = {"boolean-reach", "qot-graded"};
    const topo::WanParams* params[] = {&boolean_reach, &graded};
    for (int mi = 0; mi < 2; ++mi) {
      double cap_sum = 0.0, tput_sum = 0.0;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        topo::Wan wan = topo::MakeIspBackbone(7, 40, *params[mi]);
        core::ProvisionedState st(wan.optical);
        st.SyncTo(wan.default_topology);
        double cap = 0.0;
        for (const core::Link& l : st.realized().Links()) {
          cap += st.RealizedCapacityGbps(l.u, l.v);
        }
        // A fixed elephant-flow mix, identical across both models.
        util::Rng rng(seed * 977 + 11);
        std::vector<core::TransferDemand> demands(64);
        const int n = wan.default_topology.NumSites();
        for (size_t i = 0; i < demands.size(); ++i) {
          core::TransferDemand& d = demands[i];
          d.id = static_cast<int>(i);
          d.src = static_cast<int>(rng.Index(static_cast<size_t>(n)));
          d.dst = static_cast<int>(rng.Index(static_cast<size_t>(n)));
          if (d.dst == d.src) d.dst = (d.dst + 1) % n;
          d.rate_cap = rng.Uniform(50.0, 400.0);
          d.remaining = d.rate_cap * 300.0;
        }
        const core::RoutingOutcome ro = core::AssignRoutesAndRates(
            st.CapacityGraph(), demands, core::RoutingOptions{});
        cap_sum += cap;
        tput_sum += ro.throughput;
      }
      std::printf(
          "  %-14s installed %8.0f Gbps   routed throughput %8.0f Gbps\n",
          names[mi], cap_sum / 8.0, tput_sum / 8.0);
      bench::JsonRecord("ablation_optical", std::string(names[mi]) + "@isp40",
                        {{"installed_gbps", cap_sum / 8.0},
                         {"routed_gbps", tput_sum / 8.0}});
    }
  }
  return 0;
}
