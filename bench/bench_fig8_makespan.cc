// Reproduces Fig. 8(a-c): makespan improvement of Owan over the
// network-layer-only baselines, on all three topologies.
#include "experiments.h"

int main(int argc, char** argv) {
  owan::bench::InitJsonFromArgs(argc, argv);
  owan::bench::RunFig8(owan::topo::MakeInternet2());
  owan::bench::RunFig8(owan::topo::MakeIspBackbone());
  owan::bench::RunFig8(owan::topo::MakeInterDc());
  return 0;
}
