// Reproduces Fig. 7(g-i): completion-time results on the ~25-site
// inter-DC topology (super-core ring + leaves, moving hotspots).
#include "experiments.h"

int main(int argc, char** argv) {
  owan::bench::InitJsonFromArgs(argc, argv);
  owan::bench::RunFig7(owan::topo::MakeInterDc());
  return 0;
}
