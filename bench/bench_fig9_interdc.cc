// Reproduces Fig. 9(g-i): deadline-constrained traffic on the inter-DC
// topology.
#include "experiments.h"

int main(int argc, char** argv) {
  owan::bench::InitJsonFromArgs(argc, argv);
  owan::bench::RunFig9(owan::topo::MakeInterDc());
  return 0;
}
