// Reproduces Fig. 10(d): impact of the simulated-annealing running time on
// average transfer completion time. The paper caps SA wall time; here the
// knob is the iteration budget, and the measured per-slot compute time is
// reported alongside so the two axes can be compared directly.
//
// Also sweeps the parallel multi-chain search (this repo's extension):
// the same total iteration budget spread over 8 chains, run with 1..8
// threads, reporting speedup and best-energy parity against the classic
// single-chain search on the same seed.
#include <chrono>
#include <cstdio>

#include "harness.h"

using namespace owan;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<core::TransferDemand> RandomDemands(const topo::Wan& wan,
                                                int count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::TransferDemand> demands;
  demands.reserve(static_cast<size_t>(count));
  const int n = wan.default_topology.NumSites();
  for (int i = 0; i < count; ++i) {
    core::TransferDemand d;
    d.id = i;
    d.src = rng.UniformInt(0, n - 1);
    do {
      d.dst = rng.UniformInt(0, n - 1);
    } while (d.dst == d.src);
    d.rate_cap = rng.Uniform(20.0, 80.0);
    d.remaining = d.rate_cap * 300.0;
    demands.push_back(d);
  }
  return demands;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitJsonFromArgs(argc, argv);
  topo::Wan wan = topo::MakeInterDc();
  const auto reqs =
      workload::GenerateWorkload(wan, bench::ParamsFor(wan, 1.0));

  bench::PrintHeader("Fig. 10d — annealing budget vs completion time");
  std::printf("%10s  %14s  %16s  %12s\n", "SA iters", "compute ms/slot",
              "avg completion", "vs best");

  struct Row {
    int iters;
    double ms_per_slot;
    double avg_ct;
  };
  std::vector<Row> rows;
  for (int iters : {5, 20, 80, 150, 300, 600, 1200}) {
    auto scheme = bench::MakeOwan(core::SchedulingPolicy::kShortestJobFirst,
                                  iters);
    auto te = scheme.make(wan);
    sim::SimResult res = sim::RunSimulation(wan, reqs, *te);
    rows.push_back(Row{iters,
                       1000.0 * res.compute_seconds / std::max(1, res.slots),
                       sim::CompletionTimes(res).Mean()});
  }
  double best = 1e18;
  for (const Row& r : rows) best = std::min(best, r.avg_ct);
  for (const Row& r : rows) {
    std::printf("%10d  %14.1f  %15.0fs  %11.2fx\n", r.iters, r.ms_per_slot,
                r.avg_ct, r.avg_ct / best);
  }

  // Warm vs cold start ablation at a fixed budget (DESIGN.md §4).
  std::printf("\nwarm-start ablation (300 iterations):\n");
  for (bool warm : {true, false}) {
    core::OwanOptions opt;
    opt.anneal.max_iterations = 300;
    opt.anneal.warm_start = warm;
    core::OwanTe te(opt);
    sim::SimResult res = sim::RunSimulation(wan, reqs, te);
    std::printf("  %-10s avg completion %.0fs, circuit changes %d\n",
                warm ? "warm" : "cold", sim::CompletionTimes(res).Mean(),
                res.topology_changes);
  }

  // Parallel multi-chain sweep on the 40-site ISP backbone. Every row
  // executes the identical iteration budget (8 chains x 300 evaluations)
  // from the identical seed; only the thread count varies, so wall-time
  // ratios are pure parallel speedup and the energy column must not move.
  std::printf(
      "\nparallel annealing sweep (ISP-40, 8 chains x 300 iters, "
      "seed 99):\n");
  topo::Wan isp = topo::MakeIspBackbone();
  const auto demands = RandomDemands(isp, 64, 4242);
  constexpr int kChains = 8;
  constexpr int kIters = 300;
  constexpr uint64_t kSeed = 99;

  core::AnnealOptions base;
  base.max_iterations = kIters;
  base.epsilon_ratio = 1e-12;  // let the iteration budget bind

  util::Rng srng(kSeed);
  const auto st0 = Clock::now();
  core::AnnealResult single = core::ComputeNetworkState(
      isp.default_topology, isp.optical, demands, base, srng);
  const double single_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - st0).count();
  std::printf("  %-22s %10.0f ms   energy %.2f\n",
              "single chain (1 thread)", single_ms, single.best_energy);

  std::printf("  %8s  %10s  %9s  %12s  %14s\n", "threads", "wall ms",
              "speedup", "best energy", "vs single");
  double one_thread_ms = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    core::AnnealOptions opt = base;
    opt.num_chains = kChains;
    opt.num_threads = threads;
    util::Rng rng(kSeed);
    const auto t0 = Clock::now();
    core::AnnealResult res = core::ComputeNetworkState(
        isp.default_topology, isp.optical, demands, opt, rng);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    if (threads == 1) one_thread_ms = ms;
    std::printf("  %8d  %10.0f  %8.2fx  %12.2f  %13s\n", threads, ms,
                one_thread_ms / ms, res.best_energy,
                res.best_energy >= single.best_energy - 1e-9 ? "ok (>=)"
                                                             : "REGRESSED");
  }
  return 0;
}
