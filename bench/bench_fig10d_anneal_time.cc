// Reproduces Fig. 10(d): impact of the simulated-annealing running time on
// average transfer completion time. The paper caps SA wall time; here the
// knob is the iteration budget, and the measured per-slot wall time is
// reported alongside so the two axes can be compared directly.
#include <chrono>
#include <cstdio>

#include "harness.h"

using namespace owan;
using Clock = std::chrono::steady_clock;

int main() {
  topo::Wan wan = topo::MakeInterDc();
  const auto reqs =
      workload::GenerateWorkload(wan, bench::ParamsFor(wan, 1.0));

  bench::PrintHeader("Fig. 10d — annealing budget vs completion time");
  std::printf("%10s  %14s  %16s  %12s\n", "SA iters", "wall ms/slot",
              "avg completion", "vs best");

  struct Row {
    int iters;
    double ms_per_slot;
    double avg_ct;
  };
  std::vector<Row> rows;
  for (int iters : {5, 20, 80, 150, 300, 600, 1200}) {
    auto scheme = bench::MakeOwan(core::SchedulingPolicy::kShortestJobFirst,
                                  iters);
    auto te = scheme.make(wan);
    const auto t0 = Clock::now();
    sim::SimResult res = sim::RunSimulation(wan, reqs, *te);
    const double wall =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    rows.push_back(Row{iters, wall / std::max(1, res.slots),
                       sim::CompletionTimes(res).Mean()});
  }
  double best = 1e18;
  for (const Row& r : rows) best = std::min(best, r.avg_ct);
  for (const Row& r : rows) {
    std::printf("%10d  %14.1f  %15.0fs  %11.2fx\n", r.iters, r.ms_per_slot,
                r.avg_ct, r.avg_ct / best);
  }

  // Warm vs cold start ablation at a fixed budget (DESIGN.md §4).
  std::printf("\nwarm-start ablation (300 iterations):\n");
  for (bool warm : {true, false}) {
    core::OwanOptions opt;
    opt.anneal.max_iterations = 300;
    opt.anneal.warm_start = warm;
    core::OwanTe te(opt);
    sim::SimResult res = sim::RunSimulation(wan, reqs, te);
    std::printf("  %-10s avg completion %.0fs, circuit changes %d\n",
                warm ? "warm" : "cold", sim::CompletionTimes(res).Mean(),
                res.topology_changes);
  }
  return 0;
}
