#include "topo/serialization.h"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace owan::topo {

namespace {

[[noreturn]] void Fail(int line, const std::string& msg) {
  throw std::invalid_argument("wan parse error at line " +
                              std::to_string(line) + ": " + msg);
}

}  // namespace

void Serialize(const Wan& wan, std::ostream& os) {
  os << "# owan WAN description\n";
  os << "wan " << wan.name << " reach_km " << wan.optical.reach_km()
     << " wavelength_gbps " << wan.optical.wavelength_capacity() << "\n";
  for (int v = 0; v < wan.optical.NumSites(); ++v) {
    const optical::SiteInfo& s = wan.optical.site(v);
    os << "site " << s.name << " ports " << s.router_ports << " regens "
       << s.regenerators << "\n";
  }
  const net::Graph& g = wan.optical.fiber_graph();
  for (net::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const net::Edge& edge = g.edge(e);
    os << "fiber " << wan.site_names[static_cast<size_t>(edge.u)] << " "
       << wan.site_names[static_cast<size_t>(edge.v)] << " km "
       << wan.optical.fiber(e).length_km << " wavelengths "
       << wan.optical.fiber(e).num_wavelengths << "\n";
  }
  for (const core::Link& l : wan.default_topology.Links()) {
    os << "link " << wan.site_names[static_cast<size_t>(l.u)] << " "
       << wan.site_names[static_cast<size_t>(l.v)] << " units " << l.units
       << "\n";
  }
}

std::string Serialize(const Wan& wan) {
  std::ostringstream os;
  Serialize(wan, os);
  return os.str();
}

Wan Parse(std::istream& is) {
  std::string name = "unnamed";
  double reach = 0.0;
  double theta = 0.0;
  struct SiteLine {
    std::string name;
    int ports;
    int regens;
  };
  struct FiberLine {
    std::string a, b;
    double km;
    int wavelengths;
  };
  struct LinkLine {
    std::string a, b;
    int units;
  };
  std::vector<SiteLine> sites;
  std::vector<FiberLine> fibers;
  std::vector<LinkLine> links;
  bool saw_wan = false;

  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // blank
    if (tag == "wan") {
      std::string k1, k2;
      if (!(ls >> name >> k1 >> reach >> k2 >> theta) || k1 != "reach_km" ||
          k2 != "wavelength_gbps") {
        Fail(lineno, "expected: wan <name> reach_km <x> wavelength_gbps <y>");
      }
      saw_wan = true;
    } else if (tag == "site") {
      SiteLine s;
      std::string k1, k2;
      if (!(ls >> s.name >> k1 >> s.ports >> k2 >> s.regens) ||
          k1 != "ports" || k2 != "regens") {
        Fail(lineno, "expected: site <name> ports <n> regens <n>");
      }
      sites.push_back(s);
    } else if (tag == "fiber") {
      FiberLine f;
      std::string k1, k2;
      if (!(ls >> f.a >> f.b >> k1 >> f.km >> k2 >> f.wavelengths) ||
          k1 != "km" || k2 != "wavelengths") {
        Fail(lineno, "expected: fiber <a> <b> km <x> wavelengths <n>");
      }
      fibers.push_back(f);
    } else if (tag == "link") {
      LinkLine l;
      std::string k1;
      if (!(ls >> l.a >> l.b >> k1 >> l.units) || k1 != "units") {
        Fail(lineno, "expected: link <a> <b> units <n>");
      }
      links.push_back(l);
    } else {
      Fail(lineno, "unknown directive '" + tag + "'");
    }
  }
  if (!saw_wan) Fail(0, "missing 'wan' header line");
  if (sites.empty()) Fail(0, "no sites declared");

  std::map<std::string, int> index;
  std::vector<optical::SiteInfo> site_infos;
  std::vector<std::string> site_names;
  for (const SiteLine& s : sites) {
    if (index.count(s.name)) Fail(0, "duplicate site '" + s.name + "'");
    index[s.name] = static_cast<int>(site_infos.size());
    site_infos.push_back(optical::SiteInfo{s.name, s.ports, s.regens, true});
    site_names.push_back(s.name);
  }
  auto site_id = [&index](const std::string& n) {
    auto it = index.find(n);
    if (it == index.end()) Fail(0, "unknown site '" + n + "'");
    return it->second;
  };

  optical::OpticalNetwork on(std::move(site_infos), reach, theta);
  for (const FiberLine& f : fibers) {
    on.AddFiber(site_id(f.a), site_id(f.b), f.km, f.wavelengths);
  }
  core::Topology topo(on.NumSites());
  for (const LinkLine& l : links) {
    topo.AddUnits(site_id(l.a), site_id(l.b), l.units);
  }
  return Wan{name, std::move(on), std::move(topo), std::move(site_names)};
}

Wan Parse(const std::string& text) {
  std::istringstream is(text);
  return Parse(is);
}

}  // namespace owan::topo
