#ifndef OWAN_TOPO_TOPOLOGIES_H_
#define OWAN_TOPO_TOPOLOGIES_H_

#include <string>
#include <vector>

#include "core/topology.h"
#include "optical/optical_network.h"

namespace owan::topo {

// A complete WAN description: the optical plant plus the default
// network-layer topology (what a fixed-topology baseline runs on, and what
// Owan starts from). The default topology uses every WAN-facing router
// port, matching the paper's port-conservation invariant.
struct Wan {
  std::string name;
  optical::OpticalNetwork optical;
  core::Topology default_topology;
  std::vector<std::string> site_names;

  net::NodeId SiteByName(const std::string& n) const;
};

struct WanParams {
  double wavelength_gbps = 10.0;   // theta
  int wavelengths_per_fiber = 40;  // phi
  double reach_km = 2000.0;        // eta
  // Physical-layer model. Disabled by default: the hard reach_km bound and
  // fixed theta above govern, bit-for-bit as before. When enabled, per-span
  // OSNR accumulation and the modulation table decide feasibility and
  // per-wavelength capacity (theta stays the line-rate ceiling).
  optical::QotOptions qot;
};

// The 9-site Internet2 network the testbed emulates (paper Fig. 1).
Wan MakeInternet2(const WanParams& params = {});

// A ~40-site ISP backbone: irregular mesh, as described in §5.1.
// Deterministic for a given seed.
Wan MakeIspBackbone(uint64_t seed = 7, int num_sites = 40,
                    const WanParams& params = {.wavelength_gbps = 100.0});

// A ~25-site inter-DC WAN: ring-connected super cores with leaf sites.
Wan MakeInterDc(uint64_t seed = 11, int num_sites = 25,
                const WanParams& params = {.wavelength_gbps = 100.0});

// The 4-router square used by the paper's motivating example (Fig. 2/3):
// every router has two WAN ports, every wavelength carries 10 units.
Wan MakeMotivatingExample();

// A large tiered backbone for scale sweeps: ~num_sites/20 ring-connected
// core sites (plus shortcut chords), with every remaining site dual-homed
// to its two nearest cores. Deterministic for a given seed; the default
// (13, 400) is the 400-site point of the annealing size sweep.
Wan MakeTieredBackbone(uint64_t seed = 13, int num_sites = 400,
                       const WanParams& params = {.wavelength_gbps = 100.0});

// Registry for benchmarks and CI sweeps: builds a WAN from a short name.
//   internet2 | motivating | isp40 | isp100 | interdc25 | tiered400
// Throws std::invalid_argument (listing the known names) on anything else —
// a misspelled topology in a CI sweep must fail loudly, not silently skip.
Wan MakeByName(const std::string& name);

// The names MakeByName accepts, in sweep order.
std::vector<std::string> KnownWanNames();

}  // namespace owan::topo

#endif  // OWAN_TOPO_TOPOLOGIES_H_
