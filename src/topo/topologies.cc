#include "topo/topologies.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/union_find.h"
#include "util/rng.h"

namespace owan::topo {

namespace {

struct FiberSpec {
  int u;
  int v;
  double km;
};

Wan Assemble(std::string name, std::vector<optical::SiteInfo> sites,
             const std::vector<FiberSpec>& fibers, const WanParams& p) {
  // Port count per site = degree in the fiber mesh: the default IP topology
  // mirrors the fiber plant with one wavelength per adjacency, so every
  // WAN-facing port starts out in use.
  std::vector<int> degree(sites.size(), 0);
  for (const FiberSpec& f : fibers) {
    ++degree[static_cast<size_t>(f.u)];
    ++degree[static_cast<size_t>(f.v)];
  }
  for (size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].router_ports == 0) sites[i].router_ports = degree[i];
  }

  std::vector<std::string> site_names;
  site_names.reserve(sites.size());
  for (const optical::SiteInfo& s : sites) site_names.push_back(s.name);

  optical::OpticalNetwork on(std::move(sites), p.reach_km, p.wavelength_gbps);
  if (p.qot.enabled) on.set_qot(p.qot);
  core::Topology topo(on.NumSites());
  for (const FiberSpec& f : fibers) {
    on.AddFiber(f.u, f.v, f.km, p.wavelengths_per_fiber);
    topo.AddUnits(f.u, f.v, 1);
  }
  return Wan{std::move(name), std::move(on), std::move(topo),
             std::move(site_names)};
}

}  // namespace

net::NodeId Wan::SiteByName(const std::string& n) const {
  for (size_t i = 0; i < site_names.size(); ++i) {
    if (site_names[i] == n) return static_cast<net::NodeId>(i);
  }
  return net::kInvalidNode;
}

Wan MakeInternet2(const WanParams& params) {
  // Sites in Fig. 1, west to east. Regenerators are pre-deployed at the
  // interior concentration sites (§2.1).
  std::vector<optical::SiteInfo> sites = {
      {"SEA", 0, 0},  {"LAX", 0, 4},  {"SLC", 0, 6}, {"HOU", 0, 6},
      {"KAN", 0, 6},  {"CHI", 0, 6},  {"ATL", 0, 6}, {"WAS", 0, 4},
      {"NYC", 0, 0},
  };
  enum { SEA, LAX, SLC, HOU, KAN, CHI, ATL, WAS, NYC };
  const std::vector<FiberSpec> fibers = {
      {SEA, SLC, 1300}, {SEA, LAX, 1800}, {LAX, SLC, 1100},
      {LAX, HOU, 1950}, {SLC, KAN, 1500}, {KAN, HOU, 1200},
      {KAN, CHI, 800},  {HOU, ATL, 1300}, {ATL, WAS, 1000},
      {CHI, WAS, 1100}, {CHI, NYC, 1300}, {WAS, NYC, 400},
  };
  return Assemble("internet2", std::move(sites), fibers, params);
}

namespace {

double Dist(const std::pair<double, double>& a,
            const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Wan MakeIspBackbone(uint64_t seed, int num_sites, const WanParams& params) {
  if (num_sites < 4) throw std::invalid_argument("need >= 4 sites");
  util::Rng rng(seed);

  // Scatter sites over a continental footprint, then grow a connected
  // irregular mesh: spanning tree by nearest-neighbor attachment plus extra
  // short edges until the average degree reaches ~3.2 (ISP-like).
  std::vector<std::pair<double, double>> pos;
  pos.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    pos.emplace_back(rng.Uniform(0.0, 4500.0), rng.Uniform(0.0, 2500.0));
  }

  const double kFiberFactor = 1.25;  // fibers do not run straight lines
  std::vector<FiberSpec> fibers;
  auto has_edge = [&fibers](int a, int b) {
    for (const FiberSpec& f : fibers) {
      if ((f.u == a && f.v == b) || (f.u == b && f.v == a)) return true;
    }
    return false;
  };
  std::vector<int> degree(static_cast<size_t>(num_sites), 0);
  auto add_edge = [&](int a, int b) {
    const double km =
        std::min(Dist(pos[static_cast<size_t>(a)],
                      pos[static_cast<size_t>(b)]) * kFiberFactor,
                 params.reach_km * 0.95);
    fibers.push_back(FiberSpec{a, b, std::max(km, 50.0)});
    ++degree[static_cast<size_t>(a)];
    ++degree[static_cast<size_t>(b)];
  };

  // Spanning tree: attach each site to its nearest already-placed site.
  for (int i = 1; i < num_sites; ++i) {
    int best = 0;
    double best_d = Dist(pos[static_cast<size_t>(i)], pos[0]);
    for (int j = 1; j < i; ++j) {
      const double d =
          Dist(pos[static_cast<size_t>(i)], pos[static_cast<size_t>(j)]);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    add_edge(i, best);
  }

  // Extra edges: candidate pairs sorted by distance, accepted while under
  // the degree caps; sprinkle a little randomness for irregularity.
  struct Cand {
    double d;
    int a, b;
  };
  std::vector<Cand> cands;
  for (int a = 0; a < num_sites; ++a) {
    for (int b = a + 1; b < num_sites; ++b) {
      const double d =
          Dist(pos[static_cast<size_t>(a)], pos[static_cast<size_t>(b)]);
      if (d * kFiberFactor < params.reach_km * 0.9) {
        cands.push_back(Cand{d, a, b});
      }
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.d < y.d; });
  const int target_edges = static_cast<int>(num_sites * 1.6);
  const int max_degree = 5;
  for (const Cand& c : cands) {
    if (static_cast<int>(fibers.size()) >= target_edges) break;
    if (has_edge(c.a, c.b)) continue;
    if (degree[static_cast<size_t>(c.a)] >= max_degree ||
        degree[static_cast<size_t>(c.b)] >= max_degree) {
      continue;
    }
    if (rng.Chance(0.25)) continue;  // keep the mesh irregular
    add_edge(c.a, c.b);
  }

  // Regenerators at the highest-degree concentration sites.
  std::vector<int> by_degree(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) by_degree[static_cast<size_t>(i)] = i;
  std::sort(by_degree.begin(), by_degree.end(), [&degree](int a, int b) {
    if (degree[static_cast<size_t>(a)] != degree[static_cast<size_t>(b)]) {
      return degree[static_cast<size_t>(a)] > degree[static_cast<size_t>(b)];
    }
    return a < b;
  });
  std::vector<optical::SiteInfo> sites(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    sites[static_cast<size_t>(i)].name = "S" + std::to_string(i);
  }
  const int num_concentration = std::max(4, num_sites / 5);
  for (int i = 0; i < num_concentration; ++i) {
    sites[static_cast<size_t>(by_degree[static_cast<size_t>(i)])]
        .regenerators = 10;
  }

  return Assemble("isp", std::move(sites), fibers, params);
}

Wan MakeInterDc(uint64_t seed, int num_sites, const WanParams& params) {
  if (num_sites < 8) throw std::invalid_argument("need >= 8 sites");
  util::Rng rng(seed);
  const int kSuperCores = 4;
  const int leaves = num_sites - kSuperCores;

  // Super cores sit at the corners of the footprint, leaves scatter around
  // them (§5.1: "super cores connected to many smaller sites, connected in
  // a ring").
  std::vector<std::pair<double, double>> pos;
  pos.reserve(static_cast<size_t>(num_sites));
  pos.emplace_back(800.0, 600.0);
  pos.emplace_back(3700.0, 600.0);
  pos.emplace_back(3700.0, 1900.0);
  pos.emplace_back(800.0, 1900.0);
  for (int i = 0; i < leaves; ++i) {
    pos.emplace_back(rng.Uniform(200.0, 4300.0), rng.Uniform(200.0, 2300.0));
  }

  std::vector<FiberSpec> fibers;
  const double kFiberFactor = 1.25;
  auto add_edge = [&](int a, int b) {
    const double km =
        std::min(Dist(pos[static_cast<size_t>(a)],
                      pos[static_cast<size_t>(b)]) * kFiberFactor,
                 params.reach_km * 0.95);
    fibers.push_back(FiberSpec{a, b, std::max(km, 50.0)});
  };

  // Super-core ring plus one chord.
  add_edge(0, 1);
  add_edge(1, 2);
  add_edge(2, 3);
  add_edge(3, 0);
  add_edge(0, 2);

  // Each leaf dual-homes to its two nearest super cores.
  for (int l = kSuperCores; l < num_sites; ++l) {
    std::vector<std::pair<double, int>> dist;
    for (int sc = 0; sc < kSuperCores; ++sc) {
      dist.emplace_back(
          Dist(pos[static_cast<size_t>(l)], pos[static_cast<size_t>(sc)]),
          sc);
    }
    std::sort(dist.begin(), dist.end());
    add_edge(l, dist[0].second);
    add_edge(l, dist[1].second);
  }

  std::vector<optical::SiteInfo> sites(static_cast<size_t>(num_sites));
  for (int i = 0; i < kSuperCores; ++i) {
    sites[static_cast<size_t>(i)].name = "SC" + std::to_string(i);
    sites[static_cast<size_t>(i)].regenerators = 12;
  }
  for (int i = kSuperCores; i < num_sites; ++i) {
    sites[static_cast<size_t>(i)].name = "DC" + std::to_string(i);
  }

  return Assemble("interdc", std::move(sites), fibers, params);
}

Wan MakeTieredBackbone(uint64_t seed, int num_sites, const WanParams& params) {
  if (num_sites < 40) throw std::invalid_argument("need >= 40 sites");
  util::Rng rng(seed);
  const int cores = std::max(4, num_sites / 20);
  const int leaves = num_sites - cores;

  // Cores sit on an ellipse spanning the footprint; leaves scatter inside
  // it. The ring keeps the core connected with bounded-length fibers even
  // at 400 sites, where a random mesh would exceed optical reach.
  std::vector<std::pair<double, double>> pos;
  pos.reserve(static_cast<size_t>(num_sites));
  const double kPi = 3.14159265358979323846;
  for (int c = 0; c < cores; ++c) {
    const double a = 2.0 * kPi * c / cores;
    pos.emplace_back(2250.0 + 1900.0 * std::cos(a),
                     1250.0 + 950.0 * std::sin(a));
  }
  for (int i = 0; i < leaves; ++i) {
    pos.emplace_back(rng.Uniform(150.0, 4350.0), rng.Uniform(150.0, 2350.0));
  }

  std::vector<FiberSpec> fibers;
  const double kFiberFactor = 1.25;
  auto add_edge = [&](int a, int b) {
    const double km =
        std::min(Dist(pos[static_cast<size_t>(a)],
                      pos[static_cast<size_t>(b)]) * kFiberFactor,
                 params.reach_km * 0.95);
    fibers.push_back(FiberSpec{a, b, std::max(km, 50.0)});
  };

  // Core ring plus shortcut chords every quarter turn, so core-to-core
  // distances stay logarithmic-ish instead of O(cores).
  for (int c = 0; c < cores; ++c) add_edge(c, (c + 1) % cores);
  if (cores >= 8) {
    const int stride = cores / 4;
    for (int c = 0; c < cores; c += stride) {
      add_edge(c, (c + stride * 2) % cores);
    }
  }

  // Each leaf dual-homes to its two nearest cores.
  for (int l = cores; l < num_sites; ++l) {
    int best = 0, second = 1;
    double bd = Dist(pos[static_cast<size_t>(l)], pos[0]);
    double sd = Dist(pos[static_cast<size_t>(l)], pos[1]);
    if (sd < bd) {
      std::swap(best, second);
      std::swap(bd, sd);
    }
    for (int c = 2; c < cores; ++c) {
      const double d =
          Dist(pos[static_cast<size_t>(l)], pos[static_cast<size_t>(c)]);
      if (d < bd) {
        second = best;
        sd = bd;
        best = c;
        bd = d;
      } else if (d < sd) {
        second = c;
        sd = d;
      }
    }
    add_edge(l, best);
    add_edge(l, second);
  }

  std::vector<optical::SiteInfo> sites(static_cast<size_t>(num_sites));
  for (int c = 0; c < cores; ++c) {
    sites[static_cast<size_t>(c)].name = "C" + std::to_string(c);
    sites[static_cast<size_t>(c)].regenerators = 12;
  }
  for (int i = cores; i < num_sites; ++i) {
    sites[static_cast<size_t>(i)].name = "L" + std::to_string(i);
  }

  return Assemble("tiered", std::move(sites), fibers, params);
}

Wan MakeByName(const std::string& name) {
  if (name == "internet2") return MakeInternet2();
  if (name == "motivating") return MakeMotivatingExample();
  if (name == "isp40") return MakeIspBackbone(7, 40);
  if (name == "isp100") return MakeIspBackbone(7, 100);
  if (name == "interdc25") return MakeInterDc(11, 25);
  if (name == "tiered400") return MakeTieredBackbone(13, 400);
  std::string known;
  for (const std::string& k : KnownWanNames()) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  throw std::invalid_argument("unknown topology '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> KnownWanNames() {
  return {"internet2", "motivating", "isp40",
          "isp100",    "interdc25",  "tiered400"};
}

Wan MakeMotivatingExample() {
  WanParams p;
  p.wavelength_gbps = 10.0;
  p.wavelengths_per_fiber = 2;
  p.reach_km = 10000.0;
  std::vector<optical::SiteInfo> sites = {
      {"R0", 0, 0}, {"R1", 0, 0}, {"R2", 0, 0}, {"R3", 0, 0}};
  const std::vector<FiberSpec> fibers = {
      {0, 1, 500}, {0, 2, 500}, {1, 3, 500}, {2, 3, 500}};
  return Assemble("motivating", std::move(sites), fibers, p);
}

}  // namespace owan::topo
