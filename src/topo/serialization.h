#ifndef OWAN_TOPO_SERIALIZATION_H_
#define OWAN_TOPO_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "topo/topologies.h"

namespace owan::topo {

// Text format for WAN descriptions so deployments can load their own
// plants instead of the built-in generators. Line-oriented, '#' comments:
//
//   wan <name> reach_km <eta> wavelength_gbps <theta>
//   site <name> ports <fp> regens <rg>
//   fiber <siteA> <siteB> km <length> wavelengths <phi>
//   link <siteA> <siteB> units <n>          # default network-layer link
//
// Sites must be declared before fibers/links referencing them.

// Serializes a Wan (plant + default topology) to the text format.
std::string Serialize(const Wan& wan);
void Serialize(const Wan& wan, std::ostream& os);

// Parses the text format. Throws std::invalid_argument with a line number
// on malformed input.
Wan Parse(const std::string& text);
Wan Parse(std::istream& is);

}  // namespace owan::topo

#endif  // OWAN_TOPO_SERIALIZATION_H_
