#ifndef OWAN_LP_LP_PROBLEM_H_
#define OWAN_LP_LP_PROBLEM_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace owan::lp {

inline constexpr double kLpInf = std::numeric_limits<double>::infinity();

enum class Relation { kLe, kGe, kEq };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

// One linear constraint: sum(coef_i * x_i) REL rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Relation rel = Relation::kLe;
  double rhs = 0.0;
  std::string name;
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // one per variable, in AddVariable order

  bool ok() const { return status == LpStatus::kOptimal; }
};

// Declarative LP builder: continuous variables with bounds, linear
// constraints, and a linear objective. Solved by the bundled dense
// two-phase simplex (`Solve` in simplex.h).
//
// The baseline traffic-engineering schemes the paper compares against
// (MaxFlow, MaxMinFract, SWAN, Tempus) are all expressed through this class
// using a path-based multi-commodity-flow formulation (see mcf.h).
class LpProblem {
 public:
  // Returns the variable index. Bounds may be infinite; lower defaults to 0.
  int AddVariable(double lower = 0.0, double upper = kLpInf,
                  double objective = 0.0, std::string name = {});

  void SetObjectiveCoef(int var, double coef);
  double ObjectiveCoef(int var) const { return objective_[var]; }

  void AddConstraint(std::vector<std::pair<int, double>> terms, Relation rel,
                     double rhs, std::string name = {});

  // true = maximize (default), false = minimize.
  void SetMaximize(bool maximize) { maximize_ = maximize; }
  bool maximize() const { return maximize_; }

  int NumVariables() const { return static_cast<int>(objective_.size()); }
  int NumConstraints() const { return static_cast<int>(constraints_.size()); }

  const std::vector<Constraint>& constraints() const { return constraints_; }
  double lower(int v) const { return lower_[v]; }
  double upper(int v) const { return upper_[v]; }
  const std::string& VarName(int v) const { return names_[v]; }

  // Evaluates the objective at a point (no feasibility check).
  double Evaluate(const std::vector<double>& x) const;

  // Verifies that `x` satisfies all constraints and bounds within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
  bool maximize_ = true;
};

}  // namespace owan::lp

#endif  // OWAN_LP_LP_PROBLEM_H_
