#include "lp/mcf.h"

#include <string>
#include <utility>

namespace owan::lp {

McfBuilder::McfBuilder(const net::Graph& topo,
                       std::vector<Commodity> commodities, int k_paths)
    : topo_(topo), commodities_(std::move(commodities)) {
  const int nc = NumCommodities();
  paths_.resize(nc);
  rate_vars_.resize(nc);

  for (int i = 0; i < nc; ++i) {
    const Commodity& c = commodities_[i];
    if (c.src == c.dst || c.demand <= 0.0) continue;
    paths_[i] = net::KShortestPaths(topo_, c.src, c.dst, k_paths);
    rate_vars_[i].reserve(paths_[i].size());
    for (size_t j = 0; j < paths_[i].size(); ++j) {
      rate_vars_[i].push_back(lp_.AddVariable(
          0.0, kLpInf, 0.0,
          "r_" + std::to_string(i) + "_" + std::to_string(j)));
    }
    // Demand row: a commodity never receives more rate than it can use
    // within the slot.
    std::vector<std::pair<int, double>> dterms;
    for (int v : rate_vars_[i]) dterms.emplace_back(v, 1.0);
    if (!dterms.empty()) {
      lp_.AddConstraint(std::move(dterms), Relation::kLe, c.demand,
                        "demand_" + std::to_string(i));
    }
  }

  // Capacity rows, one per edge that any path crosses.
  std::vector<std::vector<std::pair<int, double>>> edge_terms(
      static_cast<size_t>(topo_.NumEdges()));
  for (int i = 0; i < nc; ++i) {
    for (size_t j = 0; j < paths_[i].size(); ++j) {
      for (net::EdgeId e : paths_[i][j].edges) {
        edge_terms[static_cast<size_t>(e)].emplace_back(rate_vars_[i][j], 1.0);
      }
    }
  }
  for (net::EdgeId e = 0; e < topo_.NumEdges(); ++e) {
    auto& terms = edge_terms[static_cast<size_t>(e)];
    if (terms.empty()) continue;
    lp_.AddConstraint(std::move(terms), Relation::kLe, topo_.edge(e).capacity,
                      "cap_" + std::to_string(e));
  }
}

double McfBuilder::TotalRate(int i, const LpSolution& sol) const {
  double total = 0.0;
  for (int v : rate_vars_[i]) total += sol.values[static_cast<size_t>(v)];
  return total;
}

std::vector<double> McfBuilder::PathRates(int i, const LpSolution& sol) const {
  std::vector<double> out;
  out.reserve(rate_vars_[i].size());
  for (int v : rate_vars_[i]) out.push_back(sol.values[static_cast<size_t>(v)]);
  return out;
}

void McfBuilder::ObjectiveMaxThroughput() {
  lp_.SetMaximize(true);
  for (int i = 0; i < NumCommodities(); ++i) {
    for (int v : rate_vars_[i]) lp_.SetObjectiveCoef(v, 1.0);
  }
}

}  // namespace owan::lp
