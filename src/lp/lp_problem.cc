#include "lp/lp_problem.h"

#include <cmath>
#include <stdexcept>

namespace owan::lp {

int LpProblem::AddVariable(double lower, double upper, double objective,
                           std::string name) {
  if (lower > upper) {
    throw std::invalid_argument("LpProblem::AddVariable: lower > upper");
  }
  objective_.push_back(objective);
  lower_.push_back(lower);
  upper_.push_back(upper);
  names_.push_back(std::move(name));
  return NumVariables() - 1;
}

void LpProblem::SetObjectiveCoef(int var, double coef) {
  objective_.at(static_cast<size_t>(var)) = coef;
}

void LpProblem::AddConstraint(std::vector<std::pair<int, double>> terms,
                              Relation rel, double rhs, std::string name) {
  for (const auto& [v, c] : terms) {
    if (v < 0 || v >= NumVariables()) {
      throw std::out_of_range("LpProblem::AddConstraint: bad variable");
    }
    (void)c;
  }
  constraints_.push_back(Constraint{std::move(terms), rel, rhs,
                                    std::move(name)});
}

double LpProblem::Evaluate(const std::vector<double>& x) const {
  double obj = 0.0;
  for (int v = 0; v < NumVariables(); ++v) {
    obj += objective_[static_cast<size_t>(v)] * x[static_cast<size_t>(v)];
  }
  return obj;
}

bool LpProblem::IsFeasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != NumVariables()) return false;
  for (int v = 0; v < NumVariables(); ++v) {
    const double xv = x[static_cast<size_t>(v)];
    if (xv < lower_[static_cast<size_t>(v)] - tol) return false;
    if (xv > upper_[static_cast<size_t>(v)] + tol) return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [v, coef] : c.terms) lhs += coef * x[static_cast<size_t>(v)];
    switch (c.rel) {
      case Relation::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Relation::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Relation::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace owan::lp
