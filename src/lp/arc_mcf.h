#ifndef OWAN_LP_ARC_MCF_H_
#define OWAN_LP_ARC_MCF_H_

#include <vector>

#include "lp/mcf.h"
#include "lp/simplex.h"
#include "net/graph.h"

namespace owan::lp {

struct ArcMcfResult {
  LpStatus status = LpStatus::kInfeasible;
  double throughput = 0.0;  // optimal total rate across all commodities
};

// Exact (fractional) maximum multi-commodity throughput on an undirected
// capacitated graph, via the node-arc LP formulation: per commodity, one
// flow variable per arc direction of every edge, flow conservation at every
// node, and per-edge capacity rows shared across commodities and directions.
//
// Unlike McfBuilder (path-based, limited to the k paths Yen enumerates) the
// optimum here ranges over *all* routings, so the value is a sound upper
// bound on what any feasible allocation — Owan's greedy included — can
// deliver in one slot. That is exactly what the testkit's LP oracle needs:
// a bound that can never be undercut by a path set the enumerator missed.
//
// Commodities with src == dst, demand <= 0, or out-of-range endpoints
// contribute zero and are skipped. The LP is always feasible (zero flow)
// and bounded (throughput <= sum of demands), so a non-kOptimal status
// indicates an iteration-limit blowup, not a property of the instance.
ArcMcfResult ArcMcfMaxThroughput(const net::Graph& topo,
                                 const std::vector<Commodity>& commodities,
                                 const SimplexOptions& options = {});

}  // namespace owan::lp

#endif  // OWAN_LP_ARC_MCF_H_
