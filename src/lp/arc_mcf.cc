#include "lp/arc_mcf.h"

#include <string>
#include <utility>

namespace owan::lp {

ArcMcfResult ArcMcfMaxThroughput(const net::Graph& topo,
                                 const std::vector<Commodity>& commodities,
                                 const SimplexOptions& options) {
  const int num_nodes = topo.NumNodes();
  const int num_edges = topo.NumEdges();

  std::vector<const Commodity*> active;
  for (const Commodity& c : commodities) {
    if (c.demand <= 0.0 || c.src == c.dst) continue;
    if (c.src < 0 || c.src >= num_nodes || c.dst < 0 || c.dst >= num_nodes) {
      continue;
    }
    active.push_back(&c);
  }
  if (active.empty() || num_edges == 0) {
    return {LpStatus::kOptimal, 0.0};
  }

  LpProblem lp;
  lp.SetMaximize(true);

  // Flow variables: flow[i][e][0] carries u->v, flow[i][e][1] carries v->u.
  // No per-variable upper bound — the shared capacity row dominates any
  // single-arc bound, and leaving the bound open keeps the tableau small.
  const int num_comms = static_cast<int>(active.size());
  std::vector<int> flow(static_cast<size_t>(num_comms) *
                        static_cast<size_t>(num_edges) * 2);
  auto var = [&](int i, int e, int dir) -> int& {
    return flow[(static_cast<size_t>(i) * static_cast<size_t>(num_edges) +
                 static_cast<size_t>(e)) *
                    2 +
                static_cast<size_t>(dir)];
  };
  for (int i = 0; i < num_comms; ++i) {
    for (int e = 0; e < num_edges; ++e) {
      var(i, e, 0) = lp.AddVariable(0.0, kLpInf, 0.0);
      var(i, e, 1) = lp.AddVariable(0.0, kLpInf, 0.0);
    }
  }
  // Throughput variables, capped by demand; the objective maximizes their
  // sum.
  std::vector<int> rate(static_cast<size_t>(num_comms));
  for (int i = 0; i < num_comms; ++i) {
    rate[static_cast<size_t>(i)] = lp.AddVariable(0.0, active[i]->demand, 1.0);
  }

  // Conservation: at every node, inflow - outflow equals +rate at the
  // destination, -rate at the source, 0 elsewhere.
  for (int i = 0; i < num_comms; ++i) {
    for (int v = 0; v < num_nodes; ++v) {
      std::vector<std::pair<int, double>> terms;
      for (net::EdgeId e : topo.Incident(v)) {
        const net::Edge& ed = topo.edge(e);
        if (ed.u == ed.v) continue;  // self-loop carries nothing useful
        // dir 0 flows u->v: into `v` iff v == ed.v.
        if (v == ed.v) {
          terms.emplace_back(var(i, e, 0), 1.0);
          terms.emplace_back(var(i, e, 1), -1.0);
        } else {
          terms.emplace_back(var(i, e, 1), 1.0);
          terms.emplace_back(var(i, e, 0), -1.0);
        }
      }
      if (v == active[i]->dst) {
        terms.emplace_back(rate[static_cast<size_t>(i)], -1.0);
      } else if (v == active[i]->src) {
        terms.emplace_back(rate[static_cast<size_t>(i)], 1.0);
      }
      if (terms.empty()) continue;
      lp.AddConstraint(std::move(terms), Relation::kEq, 0.0,
                       "cons_c" + std::to_string(i) + "_n" +
                           std::to_string(v));
    }
  }

  // Shared capacity: both directions of every commodity compete for the
  // undirected edge capacity.
  for (int e = 0; e < num_edges; ++e) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < num_comms; ++i) {
      terms.emplace_back(var(i, e, 0), 1.0);
      terms.emplace_back(var(i, e, 1), 1.0);
    }
    lp.AddConstraint(std::move(terms), Relation::kLe, topo.edge(e).capacity,
                     "cap_e" + std::to_string(e));
  }

  const LpSolution sol = Solve(lp, options);
  return {sol.status, sol.status == LpStatus::kOptimal ? sol.objective : 0.0};
}

}  // namespace owan::lp
