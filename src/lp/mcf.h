#ifndef OWAN_LP_MCF_H_
#define OWAN_LP_MCF_H_

#include <vector>

#include "lp/lp_problem.h"
#include "net/graph.h"
#include "net/shortest_path.h"

namespace owan::lp {

// One commodity of a multi-commodity flow: demand units of flow from src to
// dst (in rate units, e.g. Gbps for a single time slot).
struct Commodity {
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  double demand = 0.0;
};

// Path-based multi-commodity-flow LP builder.
//
// For each commodity it enumerates up to `k_paths` loopless shortest paths
// (Yen) over the given network-layer topology, introduces one rate variable
// per (commodity, path), and adds
//   * per-edge capacity rows:  sum of rates crossing the edge <= capacity
//   * per-commodity demand rows: sum of the commodity's path rates <= demand
// Baselines then attach their own objectives / extra rows (fairness
// fractions etc.) before solving.
class McfBuilder {
 public:
  McfBuilder(const net::Graph& topo, std::vector<Commodity> commodities,
             int k_paths);

  LpProblem& lp() { return lp_; }
  const LpProblem& lp() const { return lp_; }

  int NumCommodities() const { return static_cast<int>(commodities_.size()); }
  const Commodity& commodity(int i) const { return commodities_[i]; }

  // Paths enumerated for commodity i (may be empty if disconnected).
  const std::vector<net::Path>& PathsFor(int i) const { return paths_[i]; }

  // LP variable index for (commodity i, path j).
  int RateVar(int i, int j) const { return rate_vars_[i][j]; }

  // Total rate allocated to commodity i in a solution.
  double TotalRate(int i, const LpSolution& sol) const;

  // Per-path rates for commodity i in a solution.
  std::vector<double> PathRates(int i, const LpSolution& sol) const;

  // Sets the objective to "maximize total throughput" (sum of all rates).
  void ObjectiveMaxThroughput();

 private:
  const net::Graph& topo_;
  std::vector<Commodity> commodities_;
  std::vector<std::vector<net::Path>> paths_;
  std::vector<std::vector<int>> rate_vars_;
  LpProblem lp_;
};

}  // namespace owan::lp

#endif  // OWAN_LP_MCF_H_
