#ifndef OWAN_LP_SIMPLEX_H_
#define OWAN_LP_SIMPLEX_H_

#include "lp/lp_problem.h"

namespace owan::lp {

struct SimplexOptions {
  double eps = 1e-9;
  // Hard cap on pivots per phase; generous for the problem sizes here.
  int max_iterations = 200000;
  // After this many pivots with Dantzig's rule, fall back to Bland's rule to
  // guarantee termination under degeneracy.
  int bland_after = 20000;
};

// Solves `problem` with a dense two-phase primal simplex.
//
// General bounded variables are handled by shifting each variable to a
// non-negative range and adding explicit upper-bound rows; >= and =
// constraints get artificial variables eliminated in phase 1.
LpSolution Solve(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace owan::lp

#endif  // OWAN_LP_SIMPLEX_H_
