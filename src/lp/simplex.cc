#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace owan::lp {

namespace {

// Dense tableau simplex operating on the standard form
//   minimize c^T x   s.t.  A x = b,  x >= 0,  b >= 0.
// Rows of A already include slack/surplus columns; artificial columns are
// appended internally for phase 1.
class Tableau {
 public:
  Tableau(std::vector<std::vector<double>> a, std::vector<double> b,
          std::vector<double> c, int cols, const SimplexOptions& opt)
      : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)), opt_(opt) {
    rows_ = static_cast<int>(a_.size());
    cols_ = cols;
  }

  // Runs both phases. Returns status; on optimal, `x` holds all structural +
  // slack values and `obj` the phase-2 objective.
  LpStatus Run(std::vector<double>& x, double& obj) {
    // Phase 1: add one artificial per row, basis = artificials.
    const int art0 = cols_;
    basis_.resize(rows_);
    for (int r = 0; r < rows_; ++r) {
      for (auto& row : a_) row.push_back(0.0);
      a_[r][art0 + r] = 1.0;
      basis_[r] = art0 + r;
    }
    const int total = art0 + rows_;

    // Phase-1 cost: sum of artificials.
    std::vector<double> c1(total, 0.0);
    for (int r = 0; r < rows_; ++r) c1[art0 + r] = 1.0;
    double obj1 = 0.0;
    LpStatus st = Optimize(c1, obj1, /*restrict_cols=*/total);
    if (st != LpStatus::kOptimal) return st;
    if (obj1 > 1e-7) return LpStatus::kInfeasible;

    // Drive any remaining artificial variables out of the basis.
    for (int r = 0; r < rows_; ++r) {
      if (basis_[r] < art0) continue;
      int pivot_col = -1;
      for (int j = 0; j < art0; ++j) {
        if (std::abs(a_[r][j]) > opt_.eps) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) {
        Pivot(r, pivot_col);
      }
      // If the whole row is zero the constraint was redundant; the
      // artificial stays basic at value zero and is harmless.
    }

    // Phase 2: original costs, artificials forbidden.
    std::vector<double> c2(total, 0.0);
    for (int j = 0; j < cols_; ++j) c2[j] = c_[j];
    double obj2 = 0.0;
    st = Optimize(c2, obj2, /*restrict_cols=*/art0);
    if (st != LpStatus::kOptimal) return st;

    x.assign(cols_, 0.0);
    for (int r = 0; r < rows_; ++r) {
      if (basis_[r] < cols_) x[basis_[r]] = b_[r];
    }
    obj = obj2;
    return LpStatus::kOptimal;
  }

 private:
  void Pivot(int pr, int pc) {
    const double pv = a_[pr][pc];
    const double inv = 1.0 / pv;
    for (double& v : a_[pr]) v *= inv;
    b_[pr] *= inv;
    a_[pr][pc] = 1.0;  // kill round-off
    for (int r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = a_[r][pc];
      if (std::abs(f) <= opt_.eps) {
        a_[r][pc] = 0.0;
        continue;
      }
      const size_t width = a_[r].size();
      for (size_t j = 0; j < width; ++j) a_[r][j] -= f * a_[pr][j];
      a_[r][pc] = 0.0;
      b_[r] -= f * b_[pr];
    }
    basis_[pr] = pc;
  }

  // Minimizes cost over columns [0, restrict_cols). Maintains the reduced
  // cost row incrementally so pricing is O(width) per pivot instead of
  // O(rows * width).
  LpStatus Optimize(const std::vector<double>& cost, double& obj,
                    int restrict_cols) {
    const size_t width = a_.empty() ? cost.size() : a_[0].size();
    std::vector<double> z(cost.begin(), cost.begin() + static_cast<long>(width));
    double zobj = 0.0;
    for (int r = 0; r < rows_; ++r) {
      const double cb = cost[basis_[r]];
      if (cb == 0.0) continue;
      const std::vector<double>& row = a_[static_cast<size_t>(r)];
      for (size_t j = 0; j < width; ++j) z[j] -= cb * row[j];
      zobj += cb * b_[static_cast<size_t>(r)];
    }

    for (int iter = 0; iter < opt_.max_iterations; ++iter) {
      const bool bland = iter >= opt_.bland_after;
      int enter = -1;
      double best = -opt_.eps * 10;
      for (int j = 0; j < restrict_cols; ++j) {
        const double rc = z[static_cast<size_t>(j)];
        if (rc < -1e-9) {
          if (bland) {
            enter = j;
            break;
          }
          if (rc < best) {
            best = rc;
            enter = j;
          }
        }
      }
      if (enter < 0) {
        obj = zobj;
        return LpStatus::kOptimal;
      }

      // Ratio test.
      int leave = -1;
      double best_ratio = 0.0;
      for (int r = 0; r < rows_; ++r) {
        if (a_[r][enter] > opt_.eps) {
          const double ratio = b_[r] / a_[r][enter];
          if (leave < 0 || ratio < best_ratio - opt_.eps ||
              (std::abs(ratio - best_ratio) <= opt_.eps &&
               basis_[r] < basis_[leave])) {
            leave = r;
            best_ratio = ratio;
          }
        }
      }
      if (leave < 0) return LpStatus::kUnbounded;
      Pivot(leave, enter);
      const double f = z[static_cast<size_t>(enter)];
      if (f != 0.0) {
        const std::vector<double>& prow = a_[static_cast<size_t>(leave)];
        for (size_t j = 0; j < width; ++j) z[j] -= f * prow[j];
        z[static_cast<size_t>(enter)] = 0.0;
        zobj += f * b_[static_cast<size_t>(leave)];
      }
    }
    return LpStatus::kIterationLimit;
  }

  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<double> c_;
  std::vector<int> basis_;
  SimplexOptions opt_;
  int rows_ = 0;
  int cols_ = 0;
};

}  // namespace

LpSolution Solve(const LpProblem& p, const SimplexOptions& opt) {
  LpSolution sol;
  const int n = p.NumVariables();

  // Shift variables so each has lower bound 0; variables with an infinite
  // lower bound are split into a difference of two non-negatives.
  // shifted x_j = pos_j (- neg_j) + lb_j.
  std::vector<int> pos_col(n), neg_col(n, -1);
  std::vector<double> shift(n, 0.0);
  int cols = 0;
  for (int v = 0; v < n; ++v) {
    pos_col[v] = cols++;
    if (p.lower(v) == -kLpInf) {
      neg_col[v] = cols++;
    } else {
      shift[v] = p.lower(v);
    }
  }

  struct Row {
    std::vector<std::pair<int, double>> terms;  // (column, coef)
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;

  auto add_row = [&rows](std::vector<std::pair<int, double>> terms,
                         Relation rel, double rhs) {
    rows.push_back(Row{std::move(terms), rel, rhs});
  };

  // Original constraints, rewritten over shifted columns.
  for (const Constraint& c : p.constraints()) {
    std::vector<std::pair<int, double>> terms;
    double rhs = c.rhs;
    for (const auto& [v, coef] : c.terms) {
      terms.emplace_back(pos_col[v], coef);
      if (neg_col[v] >= 0) terms.emplace_back(neg_col[v], -coef);
      rhs -= coef * shift[v];
    }
    add_row(std::move(terms), c.rel, rhs);
  }

  // Upper bounds become rows (shifted).
  for (int v = 0; v < n; ++v) {
    if (p.upper(v) == kLpInf) continue;
    std::vector<std::pair<int, double>> terms{{pos_col[v], 1.0}};
    if (neg_col[v] >= 0) terms.emplace_back(neg_col[v], -1.0);
    add_row(std::move(terms), Relation::kLe, p.upper(v) - shift[v]);
  }

  // Attach slack/surplus columns and normalise to Ax = b with b >= 0.
  const int m = static_cast<int>(rows.size());
  int slack_cols = 0;
  for (const Row& r : rows) {
    if (r.rel != Relation::kEq) ++slack_cols;
  }
  const int width = cols + slack_cols;
  std::vector<std::vector<double>> a(m, std::vector<double>(width, 0.0));
  std::vector<double> b(m, 0.0);
  int next_slack = cols;
  for (int i = 0; i < m; ++i) {
    Row& r = rows[static_cast<size_t>(i)];
    double sign = 1.0;
    Relation rel = r.rel;
    if (r.rhs < 0.0) {
      sign = -1.0;
      r.rhs = -r.rhs;
      if (rel == Relation::kLe) {
        rel = Relation::kGe;
      } else if (rel == Relation::kGe) {
        rel = Relation::kLe;
      }
    }
    for (const auto& [col, coef] : r.terms) a[i][col] += sign * coef;
    b[i] = r.rhs;
    if (rel == Relation::kLe) {
      a[i][next_slack++] = 1.0;
    } else if (rel == Relation::kGe) {
      a[i][next_slack++] = -1.0;
    }
  }

  // Phase-2 cost vector: minimize, so negate if maximizing.
  std::vector<double> c(width, 0.0);
  double const_term = 0.0;
  for (int v = 0; v < n; ++v) {
    const double coef = p.ObjectiveCoef(v);
    const double mc = p.maximize() ? -coef : coef;
    c[pos_col[v]] += mc;
    if (neg_col[v] >= 0) c[neg_col[v]] -= mc;
    const_term += coef * shift[v];
  }

  Tableau t(std::move(a), std::move(b), std::move(c), width, opt);
  std::vector<double> x;
  double obj = 0.0;
  sol.status = t.Run(x, obj);
  if (sol.status != LpStatus::kOptimal) return sol;

  sol.values.assign(n, 0.0);
  for (int v = 0; v < n; ++v) {
    double val = x[pos_col[v]];
    if (neg_col[v] >= 0) val -= x[neg_col[v]];
    sol.values[v] = val + shift[v];
  }
  sol.objective = (p.maximize() ? -obj : obj) + const_term;
  return sol;
}

}  // namespace owan::lp
