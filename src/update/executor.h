#ifndef OWAN_UPDATE_EXECUTOR_H_
#define OWAN_UPDATE_EXECUTOR_H_

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/topology.h"
#include "core/transfer.h"
#include "fault/actuation.h"
#include "update/intent_log.h"
#include "update/scheduler.h"
#include "update/update_plan.h"

namespace owan::update {

// Bounded exponential-backoff retry policy for actuation attempts.
struct RetryPolicy {
  int max_attempts = 3;  // forward-phase attempts per op (>= 1)
  // Attempt timeout = timeout_factor * nominal duration (0 = no timeout).
  // A timed-out attempt counts as failed and is retried.
  double timeout_factor = 4.0;
  double backoff_base_s = 0.5;  // wait before attempt 2
  double backoff_factor = 2.0;  // multiplier per further attempt
  double backoff_max_s = 30.0;

  // Wait after `attempt` attempts have failed.
  double BackoffAfter(int attempt) const;
};

struct ExecutorOptions {
  // Default-constructed model = nominal plant: every op succeeds in exactly
  // its planned duration and the executor reproduces ScheduleConsistent
  // bit-for-bit (same makespan, same op timeline).
  fault::ActuationModel actuation;
  RetryPolicy retry;
  int wave_size = 4;
  // Wavelength capacity (Gbps) for mid-update rate clamping + stage checks.
  double theta = 10.0;
  // Run fault::InvariantChecker::CheckUpdateStage at every stage boundary.
  bool check_stage_invariants = true;
  // Safe-abort once more than this many ops permanently fail (< 0 = no
  // cap; loss of all connectivity for a live transfer still aborts).
  int max_failed_ops = -1;
};

struct ExecutorInput {
  core::Topology from;
  UpdatePlan plan;
  // Routes indexed exactly as the plan's route ops index them.
  std::vector<core::TransferAllocation> old_routes;
  std::vector<core::TransferAllocation> new_routes;
  // Per-site router ports physically unoccupied when the update starts
  // (plant usable ports minus what `from` consumes). Empty = planner
  // semantics: the port ledger assumes every port is busy and stalls are
  // always broken by forcing, which keeps the executor bit-identical to
  // ScheduleConsistent. When provided, a stalled AddCircuit whose ports
  // can never materialize — the teardowns that would free them failed
  // permanently and the site has no physical spares left — is cancelled
  // (plan repair) instead of forced, so the realized topology never
  // overshoots the plant's port budget. Nominal runs are unaffected: a
  // feasible target always leaves enough spares for the forced ops.
  std::vector<int> spare_ports;
};

enum class ExecOutcome { kConverged, kAborted };

struct ExecStats {
  int attempts = 0;
  int retries = 0;
  int timeouts = 0;
  int stragglers = 0;
  int forced_ops = 0;
  int failed_ops = 0;       // permanent (retries exhausted)
  int cancelled_ops = 0;    // plan repair (not abort cleanup)
  int alternate_circuits = 0;
  int kept_old_routes = 0;  // cleanup removes cancelled to preserve traffic
  int stage_checks = 0;
  int rollback_ops = 0;

  bool operator==(const ExecStats&) const = default;
};

struct ExecResult {
  ExecOutcome outcome = ExecOutcome::kConverged;
  double makespan = 0.0;  // realized convergence (or abort-complete) time
  // The plant state the run ended on. Converged: the target topology as
  // actually reached (a stuck teardown or a dead circuit shows up here)
  // with the routes that survive, rates clamped to lit capacity. Aborted:
  // exactly the pre-update (from, old_routes) pair.
  core::Topology final_topology;
  std::vector<core::TransferAllocation> final_routes;
  Schedule schedule;  // realized timeline of every op that ran
  ExecStats stats;
  std::vector<std::string> invariant_violations;
  IntentLog log;
};

// Event-driven execution of an UpdatePlan against the simulated plant: the
// dependency-aware state machine behind §4's consistent updates once
// actuations can be slow, straggle, or fail.
//
//   * Ready ops start under exactly ScheduleConsistent's gating rules
//     (wave staging, draining routes, make-before-break cleanup, per-site
//     port ledger, Dionysus stall breaking via PickStallVictim).
//   * Each attempt draws (latency, failure) from the seeded actuation
//     model; timeouts and failures retry with bounded exponential backoff.
//   * Permanent failures trigger plan repair: a failed circuit bring-up
//     falls back to one alternate circuit (fresh op, fresh substream); a
//     failed route removal is drained by rate-limiting it to zero; a
//     cleanup remove whose replacement routes carry nothing is cancelled
//     so the transfer keeps its old path.
//   * If a live transfer would still end with zero capacity — or too many
//     ops fail, or RequestAbort is called — the run safe-aborts: completed
//     ops are undone in reverse completion order (which preserves
//     make-before-break automatically), with unlimited retries, until the
//     plant is bit-identical to (from, old_routes).
//   * Every stage boundary recomputes clamped rates and (optionally) runs
//     fault::InvariantChecker::CheckUpdateStage.
//
// Every decision is appended to a write-ahead IntentLog before it takes
// effect; Replay() of any log prefix through the same transition code
// reconstructs the exact mid-update state, so a crash between any two
// records resumes bit-identically to the uninterrupted run.
class UpdateExecutor {
 public:
  UpdateExecutor(ExecutorInput input, ExecutorOptions options);

  // Crash recovery: applies a previously persisted log prefix. Must be
  // called before any Step().
  void Replay(const IntentLog& log);

  // Advances by one decision or event batch. Returns false once the run
  // is terminal.
  bool Step();
  // Processes every event with time <= t_limit; returns done().
  bool StepUntil(double t_limit);
  bool done() const { return terminal_; }
  double now() const { return now_; }
  const IntentLog& log() const { return log_; }
  // Ask for a safe-abort (e.g. the physical plant changed under the
  // update); takes effect at the next event boundary.
  void RequestAbort() { abort_requested_ = true; }

  // Runs to completion if not already terminal, then builds the result.
  ExecResult Finish();

  // One-call convenience: construct, run, finish.
  static ExecResult ExecutePlan(ExecutorInput input,
                                const ExecutorOptions& options);

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  enum class OpState {
    kPending,
    kRunning,
    kBackoff,
    kDone,
    kFailed,
    kCancelled
  };

  struct OpRun {
    OpState state = OpState::kPending;
    int attempts = 0;  // attempts started
    double first_start = -1.0;
    double resolve_time = -1.0;
    double event_time = std::numeric_limits<double>::infinity();
    fault::ActuationSample sample;  // current attempt's draw
    bool timed_out = false;         // current attempt exceeds its timeout
    double attempt_end = 0.0;
    bool forced = false;
    bool alternate = false;        // spawned replacement AddCircuit
    bool spawned_alternate = false;
    bool holds_ports = false;      // AddCircuit currently owns its two ports
  };

  bool resolved(int op) const {
    const OpState s = ops_[static_cast<size_t>(op)].state;
    return s == OpState::kDone || s == OpState::kFailed ||
           s == OpState::kCancelled;
  }
  bool IsCircuitOp(const UpdateOp& op) const {
    return op.type == OpType::kAddCircuit || op.type == OpType::kRemoveCircuit;
  }
  int MaxAttempts() const { return retry_.max_attempts < 1 ? 1 : retry_.max_attempts; }

  // ---- live-only decision points (append records, then apply) ----
  bool StepOnce(double t_limit);
  void StartReady();
  void StartOp(int op);
  void StallBreak();
  void EmitStage();
  void ProcessEventsAt(double t);
  void ProcessAttemptEnd(int op);
  void EvaluateCompletion();
  void BeginAbort();
  void StartUndo(double t);
  void ProcessUndoEnd();
  void FinishAbort();

  // ---- state transitions shared by live execution and Replay ----
  void ApplyForced(int op, double t);
  void ApplyAttemptStart(int op, int attempt, double t);
  void ApplyOpDone(int op, double t);
  void ApplyOpFailed(int op, double t);
  void ApplyOpCancelled(int op, double t);
  void ApplyStage(double t);
  void ApplyAbortBegin(double t);
  void ApplyUndoStart(int op, int attempt, double t);
  void ApplyUndoDone(int op, double t);
  void ApplyCommit(double t);
  void ApplyAbortDone(double t);
  void AccountAttemptFailure(int op);
  void AccountUndoFailure();

  void SpawnAlternate(int orig);
  void ReleaseCircuitPorts(net::NodeId u, net::NodeId v);
  void RecomputeEffectiveRates();
  bool CleanupGateOpen(const UpdateOp& op, bool* cancel) const;
  bool DepsResolved(const UpdateOp& op) const;
  bool PortsAvailable(const UpdateOp& op) const;
  bool AddCircuitPortsHopeless(const UpdateOp& op) const;
  bool ShouldAbort() const;
  std::vector<core::TransferAllocation> InstalledAllocations() const;
  double NextEventTime() const;

  ExecutorOptions options_;
  RetryPolicy retry_;
  core::Topology from_;
  std::vector<core::TransferAllocation> old_routes_, new_routes_;
  StagedPlan staged_;  // staged_.plan.ops grows when alternates spawn
  std::vector<OpRun> ops_;

  core::Topology lit_;                  // currently lit units per link
  std::map<net::NodeId, int> free_ports_;
  std::vector<int> spare_ports_;             // physical spares (may be empty)
  std::map<net::NodeId, int> borrowed_ports_;  // spares taken by forced adds
  std::vector<std::vector<bool>> old_installed_, new_installed_;
  std::vector<std::vector<bool>> old_force_zero_;  // failed removes, drained
  std::vector<std::vector<double>> eff_old_, eff_new_;  // clamped rates
  std::vector<int> completion_order_;

  double now_ = 0.0;
  int unresolved_ = 0;
  bool dirty_ = false;  // plant/route state changed since last stage check
  bool terminal_ = false;
  bool abort_requested_ = false;
  bool aborting_ = false;
  ExecOutcome outcome_ = ExecOutcome::kConverged;

  // Rollback cursor (valid while aborting_).
  std::vector<int> undo_queue_;
  size_t undo_pos_ = 0;
  int undo_attempt_ = 0;
  bool undo_running_ = false;
  double undo_event_ = std::numeric_limits<double>::infinity();
  fault::ActuationSample undo_sample_;
  bool undo_timed_out_ = false;

  ExecStats stats_;
  std::vector<std::string> violations_;
  IntentLog log_;
};

}  // namespace owan::update

#endif  // OWAN_UPDATE_EXECUTOR_H_
