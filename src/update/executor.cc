#include "update/executor.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "fault/invariant_checker.h"
#include "obs/obs.h"

namespace owan::update {

namespace {

constexpr double kEps = 1e-9;

using LinkKey = std::pair<net::NodeId, net::NodeId>;

LinkKey Key(net::NodeId a, net::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

double RetryPolicy::BackoffAfter(int attempt) const {
  double b = backoff_base_s;
  for (int i = 1; i < attempt; ++i) b *= backoff_factor;
  return std::min(b, backoff_max_s);
}

UpdateExecutor::UpdateExecutor(ExecutorInput input, ExecutorOptions options)
    : options_(options),
      retry_(options.retry),
      from_(std::move(input.from)),
      old_routes_(std::move(input.old_routes)),
      new_routes_(std::move(input.new_routes)),
      staged_(BuildStagedPlan(input.plan, options.wave_size)),
      lit_(from_),
      spare_ports_(std::move(input.spare_ports)) {
  const size_t n = staged_.plan.ops.size();
  ops_.resize(n);
  unresolved_ = static_cast<int>(n);
  old_installed_.resize(old_routes_.size());
  old_force_zero_.resize(old_routes_.size());
  for (size_t ti = 0; ti < old_routes_.size(); ++ti) {
    old_installed_[ti].assign(old_routes_[ti].paths.size(), true);
    old_force_zero_[ti].assign(old_routes_[ti].paths.size(), false);
  }
  new_installed_.resize(new_routes_.size());
  for (size_t ti = 0; ti < new_routes_.size(); ++ti) {
    new_installed_[ti].assign(new_routes_[ti].paths.size(), false);
  }
  RecomputeEffectiveRates();
  if (n == 0) {
    log_.records.push_back({IntentKind::kCommit, -1, 0, 0.0});
    ApplyCommit(0.0);
  }
}

void UpdateExecutor::Replay(const IntentLog& log) {
  for (const IntentRecord& r : log.records) {
    switch (r.kind) {
      case IntentKind::kAttemptStart: {
        if (r.op >= 0 && r.op < static_cast<int>(ops_.size())) {
          const OpRun& prev = ops_[static_cast<size_t>(r.op)];
          // A retry start implies the previous attempt failed; the outcome
          // is a pure function of the seed, so re-derive its accounting.
          if (prev.state == OpState::kRunning &&
              prev.attempts == r.attempt - 1) {
            AccountAttemptFailure(r.op);
          }
          ApplyAttemptStart(r.op, r.attempt, r.t);
        }
        break;
      }
      case IntentKind::kOpDone:
        ApplyOpDone(r.op, r.t);
        break;
      case IntentKind::kOpFailed:
        AccountAttemptFailure(r.op);
        ApplyOpFailed(r.op, r.t);
        break;
      case IntentKind::kOpCancelled:
        ApplyOpCancelled(r.op, r.t);
        break;
      case IntentKind::kForced:
        ApplyForced(r.op, r.t);
        break;
      case IntentKind::kStage:
        ApplyStage(r.t);
        break;
      case IntentKind::kAbortBegin:
        ApplyAbortBegin(r.t);
        break;
      case IntentKind::kUndoStart:
        if (undo_running_ && undo_attempt_ == r.attempt - 1) {
          AccountUndoFailure();
        }
        ApplyUndoStart(r.op, r.attempt, r.t);
        break;
      case IntentKind::kUndoDone:
        ApplyUndoDone(r.op, r.t);
        break;
      case IntentKind::kCommit:
        ApplyCommit(r.t);
        break;
      case IntentKind::kAbortDone:
        ApplyAbortDone(r.t);
        break;
    }
    now_ = std::max(now_, r.t);
    log_.records.push_back(r);
  }
}

bool UpdateExecutor::Step() {
  if (terminal_) return false;
  StepOnce(kInf);
  return !terminal_;
}

bool UpdateExecutor::StepUntil(double t_limit) {
  while (!terminal_) {
    if (!StepOnce(t_limit)) break;  // next action lies beyond t_limit
  }
  return terminal_;
}

// One decision or event batch. The order of checks is load-bearing: it
// makes the loop a pure function of the (replayable) executor state, so a
// run resumed from any intent-log prefix emits exactly the records the
// uninterrupted run would have emitted next.
bool UpdateExecutor::StepOnce(double t_limit) {
  if (!aborting_) {
    // Events already due at now_ complete before anything else starts: a
    // crash that cut a same-time completion batch resumes mid-batch.
    bool due = false;
    for (const OpRun& r : ops_) {
      if ((r.state == OpState::kRunning || r.state == OpState::kBackoff) &&
          r.event_time <= now_) {
        due = true;
        break;
      }
    }
    if (due) {
      ProcessEventsAt(now_);
      return true;
    }
    StartReady();
    if (dirty_) {
      EmitStage();  // teardown starts darken circuits, completions light them
      return true;
    }
    if (abort_requested_) {
      BeginAbort();
      return true;
    }
    if (unresolved_ == 0) {
      EvaluateCompletion();
      return true;
    }
    const double next = NextEventTime();
    if (next == kInf) {
      StallBreak();
      return true;
    }
    if (next > t_limit) return false;
    now_ = next;
    return true;
  }
  // Rollback: undo completed ops one at a time, unlimited retries.
  if (dirty_) {
    EmitStage();
    return true;
  }
  if (undo_pos_ >= undo_queue_.size()) {
    FinishAbort();
    return true;
  }
  if (undo_running_) {
    if (undo_event_ > t_limit) return false;
    now_ = undo_event_;
    ProcessUndoEnd();
    return true;
  }
  const double t = undo_event_ == kInf ? now_ : std::max(now_, undo_event_);
  if (t > t_limit) return false;
  now_ = t;
  StartUndo(now_);
  return true;
}

double UpdateExecutor::NextEventTime() const {
  double next = kInf;
  for (const OpRun& r : ops_) {
    if (r.state == OpState::kRunning || r.state == OpState::kBackoff) {
      next = std::min(next, r.event_time);
    }
  }
  return next;
}

bool UpdateExecutor::DepsResolved(const UpdateOp& op) const {
  for (int d : op.deps) {
    if (!resolved(d)) return false;
  }
  return true;
}

bool UpdateExecutor::PortsAvailable(const UpdateOp& op) const {
  if (op.type != OpType::kAddCircuit) return true;
  if (ops_[static_cast<size_t>(op.id)].holds_ports) return true;
  auto it_u = free_ports_.find(op.u);
  auto it_v = free_ports_.find(op.v);
  return it_u != free_ports_.end() && it_u->second > 0 &&
         it_v != free_ports_.end() && it_v->second > 0;
}

bool UpdateExecutor::CleanupGateOpen(const UpdateOp& op, bool* cancel) const {
  *cancel = false;
  if (op.type != OpType::kRemoveRoute || staged_.draining.count(op.id)) {
    return true;
  }
  auto it = staged_.transfer_add_routes.find(op.transfer_index);
  if (it == staged_.transfer_add_routes.end()) return true;
  bool all_done = true;
  for (int a : it->second) {
    if (!resolved(a)) return false;  // keep waiting
    if (ops_[static_cast<size_t>(a)].state != OpState::kDone) {
      all_done = false;
    }
  }
  // Make-before-break under faults: only break the old path if the new
  // ones actually carry traffic. A transfer whose replacement routes all
  // failed or ride dark circuits keeps its old path (plan repair).
  double nominal = 0.0, effective = 0.0;
  const size_t ti = static_cast<size_t>(op.transfer_index);
  if (ti < new_routes_.size()) {
    for (size_t pi = 0; pi < new_routes_[ti].paths.size(); ++pi) {
      nominal += new_routes_[ti].paths[pi].rate;
      if (new_installed_[ti][pi]) effective += eff_new_[ti][pi];
    }
  }
  if (!all_done || (nominal > kEps && effective <= kEps)) {
    *cancel = true;
  }
  return true;
}

void UpdateExecutor::StartReady() {
  // The cleanup gate reads clamped rates; refresh them if plant or route
  // state changed since the last stage boundary. Derived state only —
  // recomputing is replay-safe and keeps live/resumed decisions identical.
  if (dirty_) RecomputeEffectiveRates();
  bool started = true;
  while (started) {
    started = false;
    for (size_t i = 0; i < staged_.plan.ops.size(); ++i) {
      if (ops_[i].state != OpState::kPending) continue;
      const UpdateOp op = staged_.plan.ops[i];  // copy: ops may grow
      if (!DepsResolved(op)) continue;
      bool cancel = false;
      if (!CleanupGateOpen(op, &cancel)) continue;
      if (cancel) {
        log_.records.push_back({IntentKind::kOpCancelled, op.id, 0, now_});
        ApplyOpCancelled(op.id, now_);
        started = true;
        continue;
      }
      if (op.type == OpType::kAddRoute && op.transfer_index >= 0 &&
          static_cast<size_t>(op.transfer_index) < new_routes_.size() &&
          op.path_index >= 0 &&
          static_cast<size_t>(op.path_index) <
              new_routes_[static_cast<size_t>(op.transfer_index)]
                  .paths.size()) {
        // A link that is dark with every bring-up on it resolved will
        // never light; installing the route would just blackhole.
        const auto& nodes = new_routes_[static_cast<size_t>(op.transfer_index)]
                                .paths[static_cast<size_t>(op.path_index)]
                                .path.nodes;
        bool hopeless = false;
        for (size_t k = 0; k + 1 < nodes.size(); ++k) {
          if (lit_.Units(nodes[k], nodes[k + 1]) > 0) continue;
          bool hope = false;
          for (size_t j = 0; j < staged_.plan.ops.size(); ++j) {
            const UpdateOp& cj = staged_.plan.ops[j];
            if (cj.type == OpType::kAddCircuit &&
                Key(cj.u, cj.v) == Key(nodes[k], nodes[k + 1]) &&
                !resolved(cj.id)) {
              hope = true;
              break;
            }
          }
          if (!hope) {
            hopeless = true;
            break;
          }
        }
        if (hopeless) {
          log_.records.push_back({IntentKind::kOpCancelled, op.id, 0, now_});
          ApplyOpCancelled(op.id, now_);
          started = true;
          continue;
        }
      }
      if (!PortsAvailable(op)) continue;
      StartOp(op.id);
      // A zero-duration op is due immediately; yield so the completion is
      // processed before further starts (keeps resume order canonical).
      if (ops_[i].event_time <= now_) return;
      started = true;
    }
  }
}

void UpdateExecutor::StartOp(int op) {
  const int attempt = ops_[static_cast<size_t>(op)].attempts + 1;
  log_.records.push_back({IntentKind::kAttemptStart, op, attempt, now_});
  ApplyAttemptStart(op, attempt, now_);
}

void UpdateExecutor::StallBreak() {
  const size_t n = ops_.size();
  // A crash between a kForced record and its kAttemptStart leaves the
  // victim marked but unstarted; resume by starting it, not re-forcing.
  for (size_t i = 0; i < n; ++i) {
    if (ops_[i].state == OpState::kPending && ops_[i].forced) {
      StartOp(static_cast<int>(i));
      return;
    }
  }
  std::vector<bool> pending(n), done_mask(n);
  for (size_t i = 0; i < n; ++i) {
    pending[i] = ops_[i].state == OpState::kPending;
    done_mask[i] = resolved(static_cast<int>(i));
  }
  const int victim = PickStallVictim(staged_.plan, pending, done_mask);
  if (victim < 0) {
    // Defensive: unreachable while unresolved_ > 0. Fail safe.
    BeginAbort();
    return;
  }
  const UpdateOp& vop = staged_.plan.ops[static_cast<size_t>(victim)];
  if (!spare_ports_.empty() && vop.type == OpType::kAddCircuit &&
      !ops_[static_cast<size_t>(victim)].holds_ports &&
      AddCircuitPortsHopeless(vop)) {
    // The ports this bring-up needs can never materialize: every teardown
    // that would free one has permanently failed and the site has no
    // physical spares left. Forcing it would overshoot the plant's port
    // budget, so repair the plan by cancelling it — dependent route ops
    // resolve as hopeless and the cleanup gate keeps old traffic alive.
    log_.records.push_back({IntentKind::kOpCancelled, victim, 0, now_});
    ApplyOpCancelled(victim, now_);
    return;
  }
  log_.records.push_back({IntentKind::kForced, victim, 0, now_});
  ApplyForced(victim, now_);
  StartOp(victim);
}

bool UpdateExecutor::AddCircuitPortsHopeless(const UpdateOp& op) const {
  for (net::NodeId s : {op.u, op.v}) {
    auto it = free_ports_.find(s);
    if (it != free_ports_.end() && it->second > 0) continue;
    bool freeable = false;
    for (size_t i = 0; i < staged_.plan.ops.size() && !freeable; ++i) {
      const UpdateOp& other = staged_.plan.ops[i];
      freeable = other.type == OpType::kRemoveCircuit &&
                 !resolved(static_cast<int>(i)) &&
                 (other.u == s || other.v == s);
    }
    if (freeable) continue;
    const int spare = s >= 0 && static_cast<size_t>(s) < spare_ports_.size()
                          ? spare_ports_[static_cast<size_t>(s)]
                          : 0;
    const auto bit = borrowed_ports_.find(s);
    const int borrowed = bit == borrowed_ports_.end() ? 0 : bit->second;
    if (spare - borrowed <= 0) return true;
  }
  return false;
}

void UpdateExecutor::EmitStage() {
  log_.records.push_back({IntentKind::kStage, -1, 0, now_});
  ApplyStage(now_);
}

void UpdateExecutor::ProcessEventsAt(double t) {
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].event_time > t) continue;
    if (ops_[i].state == OpState::kRunning) {
      ProcessAttemptEnd(static_cast<int>(i));
    } else if (ops_[i].state == OpState::kBackoff) {
      StartOp(static_cast<int>(i));
    }
  }
}

void UpdateExecutor::ProcessAttemptEnd(int op) {
  OpRun& r = ops_[static_cast<size_t>(op)];
  const double t = r.attempt_end;
  if (!r.sample.fails && !r.timed_out) {
    log_.records.push_back({IntentKind::kOpDone, op, r.attempts, t});
    ApplyOpDone(op, t);
    return;
  }
  AccountAttemptFailure(op);
  if (r.attempts >= MaxAttempts()) {
    log_.records.push_back({IntentKind::kOpFailed, op, r.attempts, t});
    ApplyOpFailed(op, t);
    return;
  }
  r.state = OpState::kBackoff;
  r.event_time = t + retry_.BackoffAfter(r.attempts);
}

void UpdateExecutor::EvaluateCompletion() {
  RecomputeEffectiveRates();
  if (ShouldAbort()) {
    BeginAbort();
    return;
  }
  log_.records.push_back({IntentKind::kCommit, -1, 0, now_});
  ApplyCommit(now_);
}

void UpdateExecutor::BeginAbort() {
  log_.records.push_back({IntentKind::kAbortBegin, -1, 0, now_});
  ApplyAbortBegin(now_);
}

void UpdateExecutor::StartUndo(double t) {
  const int op = undo_queue_[undo_pos_];
  const int attempt = undo_attempt_ + 1;
  log_.records.push_back({IntentKind::kUndoStart, op, attempt, t});
  ApplyUndoStart(op, attempt, t);
}

void UpdateExecutor::ProcessUndoEnd() {
  const int op = undo_queue_[undo_pos_];
  if (!undo_sample_.fails && !undo_timed_out_) {
    log_.records.push_back({IntentKind::kUndoDone, op, undo_attempt_, now_});
    ApplyUndoDone(op, now_);
    return;
  }
  AccountUndoFailure();
  // Rollback must land: retry forever with capped backoff.
  undo_running_ = false;
  undo_event_ = now_ + retry_.BackoffAfter(undo_attempt_);
}

void UpdateExecutor::FinishAbort() {
  log_.records.push_back({IntentKind::kAbortDone, -1, 0, now_});
  ApplyAbortDone(now_);
}

// ---- shared transitions ----

void UpdateExecutor::ApplyForced(int op, double t) {
  (void)t;
  const UpdateOp& o = staged_.plan.ops[static_cast<size_t>(op)];
  OpRun& r = ops_[static_cast<size_t>(op)];
  r.forced = true;
  // A forced bring-up takes no ledger port — it rides a physical spare.
  if (o.type == OpType::kAddCircuit && !r.holds_ports) {
    ++borrowed_ports_[o.u];
    ++borrowed_ports_[o.v];
  }
  stats_.forced_ops++;
  OWAN_COUNT("update.exec.forced_ops");
}

void UpdateExecutor::ApplyAttemptStart(int op, int attempt, double t) {
  const UpdateOp o = staged_.plan.ops[static_cast<size_t>(op)];
  OpRun& r = ops_[static_cast<size_t>(op)];
  r.attempts = attempt;
  r.state = OpState::kRunning;
  if (r.first_start < 0) r.first_start = t;
  r.sample = fault::SampleActuation(options_.actuation, op, attempt,
                                    IsCircuitOp(o), o.duration_s,
                                    fault::ActuationPhase::kForward);
  const double timeout = retry_.timeout_factor > 0
                             ? retry_.timeout_factor * o.duration_s
                             : kInf;
  r.timed_out = r.sample.latency_s > timeout;
  r.attempt_end = t + std::min(r.sample.latency_s, timeout);
  r.event_time = r.attempt_end;
  stats_.attempts++;
  if (attempt == 1) {
    if (o.type == OpType::kRemoveCircuit) {
      // Dark from the moment teardown starts.
      if (lit_.Units(o.u, o.v) > 0) lit_.AddUnits(o.u, o.v, -1);
      dirty_ = true;
    } else if (o.type == OpType::kAddCircuit && !r.forced && !r.holds_ports) {
      --free_ports_[o.u];
      --free_ports_[o.v];
      r.holds_ports = true;
    }
  }
}

void UpdateExecutor::ApplyOpDone(int op, double t) {
  const UpdateOp o = staged_.plan.ops[static_cast<size_t>(op)];
  OpRun& r = ops_[static_cast<size_t>(op)];
  if (r.sample.straggler) stats_.stragglers++;
  r.state = OpState::kDone;
  r.resolve_time = t;
  r.event_time = kInf;
  --unresolved_;
  completion_order_.push_back(op);
  switch (o.type) {
    case OpType::kRemoveCircuit:
      ++free_ports_[o.u];
      ++free_ports_[o.v];
      break;
    case OpType::kAddCircuit:
      lit_.AddUnits(o.u, o.v, 1);
      dirty_ = true;
      break;
    case OpType::kRemoveRoute:
      if (o.transfer_index >= 0 &&
          static_cast<size_t>(o.transfer_index) < old_installed_.size() &&
          o.path_index >= 0 &&
          static_cast<size_t>(o.path_index) <
              old_installed_[static_cast<size_t>(o.transfer_index)].size()) {
        old_installed_[static_cast<size_t>(o.transfer_index)]
                      [static_cast<size_t>(o.path_index)] = false;
        dirty_ = true;
      }
      break;
    case OpType::kAddRoute:
      if (o.transfer_index >= 0 &&
          static_cast<size_t>(o.transfer_index) < new_installed_.size() &&
          o.path_index >= 0 &&
          static_cast<size_t>(o.path_index) <
              new_installed_[static_cast<size_t>(o.transfer_index)].size()) {
        new_installed_[static_cast<size_t>(o.transfer_index)]
                      [static_cast<size_t>(o.path_index)] = true;
        dirty_ = true;
      }
      break;
  }
}

void UpdateExecutor::ApplyOpFailed(int op, double t) {
  const UpdateOp o = staged_.plan.ops[static_cast<size_t>(op)];
  {
    OpRun& r = ops_[static_cast<size_t>(op)];
    r.state = OpState::kFailed;
    r.resolve_time = t;
    r.event_time = kInf;
  }
  --unresolved_;
  stats_.failed_ops++;
  OWAN_COUNT("update.exec.failed_ops");
  switch (o.type) {
    case OpType::kRemoveCircuit:
      // The ROADM refused the teardown: the cross-connect persists, lit,
      // ports still consumed. The realized topology keeps the circuit.
      lit_.AddUnits(o.u, o.v, 1);
      dirty_ = true;
      // Bring-ups forced into service borrowed against this teardown's
      // ports. If, with the ports now stuck, either endpoint's locked-in
      // usage exceeds the plant's budget even counting every teardown
      // still in flight, no repair can reconcile the plan — safe-abort.
      if (!spare_ports_.empty()) {
        for (net::NodeId s : {o.u, o.v}) {
          int avail = s >= 0 && static_cast<size_t>(s) < spare_ports_.size()
                          ? spare_ports_[static_cast<size_t>(s)]
                          : 0;
          const auto bit = borrowed_ports_.find(s);
          avail -= bit == borrowed_ports_.end() ? 0 : bit->second;
          const auto fit = free_ports_.find(s);
          avail += fit == free_ports_.end() ? 0 : fit->second;
          for (size_t i = 0; i < staged_.plan.ops.size(); ++i) {
            const UpdateOp& other = staged_.plan.ops[i];
            if (other.type == OpType::kRemoveCircuit &&
                !resolved(static_cast<int>(i)) &&
                (other.u == s || other.v == s)) {
              ++avail;
            }
          }
          if (avail < 0) abort_requested_ = true;
        }
      }
      break;
    case OpType::kAddCircuit: {
      if (ops_[static_cast<size_t>(op)].forced &&
          !ops_[static_cast<size_t>(op)].holds_ports) {
        // A failed forced bring-up never lights: return its borrowed spares.
        --borrowed_ports_[o.u];
        --borrowed_ports_[o.v];
      }
      const bool spawn = !ops_[static_cast<size_t>(op)].alternate &&
                         !ops_[static_cast<size_t>(op)].spawned_alternate;
      if (spawn) {
        SpawnAlternate(op);
      } else if (ops_[static_cast<size_t>(op)].holds_ports) {
        ReleaseCircuitPorts(o.u, o.v);
        ops_[static_cast<size_t>(op)].holds_ports = false;
      }
      break;
    }
    case OpType::kRemoveRoute:
      // The router won't drop the rule; drain it by rate-limiting to zero
      // so a dependent circuit teardown never blackholes live traffic.
      if (o.transfer_index >= 0 &&
          static_cast<size_t>(o.transfer_index) < old_force_zero_.size() &&
          o.path_index >= 0 &&
          static_cast<size_t>(o.path_index) <
              old_force_zero_[static_cast<size_t>(o.transfer_index)].size()) {
        old_force_zero_[static_cast<size_t>(o.transfer_index)]
                       [static_cast<size_t>(o.path_index)] = true;
        dirty_ = true;
      }
      break;
    case OpType::kAddRoute:
      break;  // never installed; cleanup gating keeps the old path
  }
  if (options_.max_failed_ops >= 0 &&
      stats_.failed_ops > options_.max_failed_ops) {
    abort_requested_ = true;
  }
}

void UpdateExecutor::ApplyOpCancelled(int op, double t) {
  const UpdateOp o = staged_.plan.ops[static_cast<size_t>(op)];
  OpRun& r = ops_[static_cast<size_t>(op)];
  r.state = OpState::kCancelled;
  r.resolve_time = t;
  r.event_time = kInf;
  --unresolved_;
  stats_.cancelled_ops++;
  if (o.type == OpType::kAddCircuit && r.holds_ports) {
    ReleaseCircuitPorts(o.u, o.v);
    r.holds_ports = false;
  }
  if (o.type == OpType::kRemoveRoute && !staged_.draining.count(o.id)) {
    stats_.kept_old_routes++;
    OWAN_COUNT("update.exec.kept_old_routes");
  }
}

void UpdateExecutor::ApplyStage(double t) {
  RecomputeEffectiveRates();
  stats_.stage_checks++;
  if (options_.check_stage_invariants) {
    for (std::string& v : fault::InvariantChecker::CheckUpdateStage(
             lit_, options_.theta, InstalledAllocations(),
             /*check_capacity=*/true)) {
      std::ostringstream os;
      os << "t=" << t << ": " << v;
      violations_.push_back(os.str());
    }
  }
  dirty_ = false;
}

void UpdateExecutor::ApplyAbortBegin(double t) {
  aborting_ = true;
  // Discard everything still in flight, undoing partial start effects:
  // a half-finished teardown is cancelled (the circuit relights), a
  // half-finished bring-up releases its ports.
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (resolved(static_cast<int>(i))) continue;
    const UpdateOp o = staged_.plan.ops[i];
    OpRun& r = ops_[i];
    if (r.attempts > 0) {
      if (o.type == OpType::kRemoveCircuit) {
        lit_.AddUnits(o.u, o.v, 1);
        dirty_ = true;
      } else if (o.type == OpType::kAddCircuit && r.holds_ports) {
        ReleaseCircuitPorts(o.u, o.v);
        r.holds_ports = false;
      }
    }
    r.state = OpState::kCancelled;
    r.resolve_time = t;
    r.event_time = kInf;
    --unresolved_;
  }
  // Undo completed ops newest-first: forward execution respected
  // make-before-break, so its exact reversal does too.
  undo_queue_.assign(completion_order_.rbegin(), completion_order_.rend());
  undo_pos_ = 0;
  undo_attempt_ = 0;
  undo_running_ = false;
  undo_event_ = kInf;
  OWAN_COUNT("update.exec.aborts");
}

void UpdateExecutor::ApplyUndoStart(int op, int attempt, double t) {
  const UpdateOp o = staged_.plan.ops[static_cast<size_t>(op)];
  undo_running_ = true;
  undo_attempt_ = attempt;
  undo_sample_ = fault::SampleActuation(options_.actuation, op, attempt,
                                        IsCircuitOp(o), o.duration_s,
                                        fault::ActuationPhase::kRollback);
  const double timeout = retry_.timeout_factor > 0
                             ? retry_.timeout_factor * o.duration_s
                             : kInf;
  undo_timed_out_ = undo_sample_.latency_s > timeout;
  undo_event_ = t + std::min(undo_sample_.latency_s, timeout);
  stats_.attempts++;
  if (attempt == 1) {
    if (o.type == OpType::kAddCircuit) {
      // Undoing a bring-up is a teardown: dark from undo start.
      if (lit_.Units(o.u, o.v) > 0) lit_.AddUnits(o.u, o.v, -1);
      dirty_ = true;
    } else if (o.type == OpType::kRemoveCircuit) {
      --free_ports_[o.u];
      --free_ports_[o.v];
    }
  }
}

void UpdateExecutor::ApplyUndoDone(int op, double t) {
  const UpdateOp o = staged_.plan.ops[static_cast<size_t>(op)];
  switch (o.type) {
    case OpType::kAddCircuit:
      ++free_ports_[o.u];
      ++free_ports_[o.v];
      break;
    case OpType::kRemoveCircuit:
      lit_.AddUnits(o.u, o.v, 1);
      dirty_ = true;
      break;
    case OpType::kRemoveRoute:
      if (o.transfer_index >= 0 &&
          static_cast<size_t>(o.transfer_index) < old_installed_.size() &&
          o.path_index >= 0 &&
          static_cast<size_t>(o.path_index) <
              old_installed_[static_cast<size_t>(o.transfer_index)].size()) {
        old_installed_[static_cast<size_t>(o.transfer_index)]
                      [static_cast<size_t>(o.path_index)] = true;
        dirty_ = true;
      }
      break;
    case OpType::kAddRoute:
      if (o.transfer_index >= 0 &&
          static_cast<size_t>(o.transfer_index) < new_installed_.size() &&
          o.path_index >= 0 &&
          static_cast<size_t>(o.path_index) <
              new_installed_[static_cast<size_t>(o.transfer_index)].size()) {
        new_installed_[static_cast<size_t>(o.transfer_index)]
                      [static_cast<size_t>(o.path_index)] = false;
        dirty_ = true;
      }
      break;
  }
  if (undo_sample_.straggler) stats_.stragglers++;
  stats_.rollback_ops++;
  (void)t;
  ++undo_pos_;
  undo_attempt_ = 0;
  undo_running_ = false;
  undo_event_ = kInf;
}

void UpdateExecutor::ApplyCommit(double t) {
  now_ = std::max(now_, t);
  terminal_ = true;
  outcome_ = ExecOutcome::kConverged;
}

void UpdateExecutor::ApplyAbortDone(double t) {
  RecomputeEffectiveRates();
  if (!(lit_ == from_)) {
    violations_.push_back(
        "rollback did not restore the pre-update topology");
  }
  now_ = std::max(now_, t);
  terminal_ = true;
  outcome_ = ExecOutcome::kAborted;
}

void UpdateExecutor::AccountAttemptFailure(int op) {
  const OpRun& r = ops_[static_cast<size_t>(op)];
  stats_.retries++;
  OWAN_COUNT("update.exec.retries");
  if (r.timed_out) {
    stats_.timeouts++;
    OWAN_COUNT("update.exec.timeouts");
  }
  if (r.sample.straggler) stats_.stragglers++;
}

void UpdateExecutor::AccountUndoFailure() {
  stats_.retries++;
  OWAN_COUNT("update.exec.retries");
  if (undo_timed_out_) {
    stats_.timeouts++;
    OWAN_COUNT("update.exec.timeouts");
  }
  if (undo_sample_.straggler) stats_.stragglers++;
}

void UpdateExecutor::SpawnAlternate(int orig) {
  const UpdateOp o = staged_.plan.ops[static_cast<size_t>(orig)];
  UpdateOp alt;
  alt.id = static_cast<int>(staged_.plan.ops.size());
  alt.type = OpType::kAddCircuit;
  alt.u = o.u;
  alt.v = o.v;
  alt.duration_s = o.duration_s;
  staged_.plan.ops.push_back(alt);
  OpRun run;
  run.alternate = true;
  // A fresh op id means a fresh actuation substream: the alternate is a
  // different wavelength/port assignment, not a retry of the same one.
  run.holds_ports = ops_[static_cast<size_t>(orig)].holds_ports;
  ops_[static_cast<size_t>(orig)].holds_ports = false;
  ops_.push_back(run);
  ++unresolved_;
  stats_.alternate_circuits++;
  OWAN_COUNT("update.exec.alternate_circuits");
}

void UpdateExecutor::ReleaseCircuitPorts(net::NodeId u, net::NodeId v) {
  ++free_ports_[u];
  ++free_ports_[v];
}

void UpdateExecutor::RecomputeEffectiveRates() {
  eff_old_.resize(old_routes_.size());
  eff_new_.resize(new_routes_.size());
  std::map<LinkKey, double> agg;
  auto accumulate = [&](const core::PathAllocation& pa, double n) {
    if (n <= kEps) return;
    for (size_t k = 0; k + 1 < pa.path.nodes.size(); ++k) {
      agg[Key(pa.path.nodes[k], pa.path.nodes[k + 1])] += n;
    }
  };
  for (size_t ti = 0; ti < old_routes_.size(); ++ti) {
    eff_old_[ti].assign(old_routes_[ti].paths.size(), 0.0);
    for (size_t pi = 0; pi < old_routes_[ti].paths.size(); ++pi) {
      if (!old_installed_[ti][pi] || old_force_zero_[ti][pi]) continue;
      accumulate(old_routes_[ti].paths[pi], old_routes_[ti].paths[pi].rate);
    }
  }
  for (size_t ti = 0; ti < new_routes_.size(); ++ti) {
    eff_new_[ti].assign(new_routes_[ti].paths.size(), 0.0);
    for (size_t pi = 0; pi < new_routes_[ti].paths.size(); ++pi) {
      if (!new_installed_[ti][pi]) continue;
      accumulate(new_routes_[ti].paths[pi], new_routes_[ti].paths[pi].rate);
    }
  }
  // Worst-link proportional share: each route is clamped by the most
  // oversubscribed link it crosses, so no lit link ever overshoots and a
  // dark link carries exactly zero (the no-blackhole guarantee).
  auto clamp = [&](const core::PathAllocation& pa, double n) {
    if (n <= kEps) return 0.0;
    double ratio = 1.0;
    for (size_t k = 0; k + 1 < pa.path.nodes.size(); ++k) {
      const LinkKey lk = Key(pa.path.nodes[k], pa.path.nodes[k + 1]);
      const int units = lit_.Units(lk.first, lk.second);
      const double cap = units > 0 ? units * options_.theta : 0.0;
      const double a = agg[lk];
      if (a > cap) ratio = std::min(ratio, cap > 0.0 ? cap / a : 0.0);
    }
    return ratio >= 1.0 ? n : n * ratio;
  };
  for (size_t ti = 0; ti < old_routes_.size(); ++ti) {
    for (size_t pi = 0; pi < old_routes_[ti].paths.size(); ++pi) {
      if (!old_installed_[ti][pi] || old_force_zero_[ti][pi]) continue;
      eff_old_[ti][pi] =
          clamp(old_routes_[ti].paths[pi], old_routes_[ti].paths[pi].rate);
    }
  }
  for (size_t ti = 0; ti < new_routes_.size(); ++ti) {
    for (size_t pi = 0; pi < new_routes_[ti].paths.size(); ++pi) {
      if (!new_installed_[ti][pi]) continue;
      eff_new_[ti][pi] =
          clamp(new_routes_[ti].paths[pi], new_routes_[ti].paths[pi].rate);
    }
  }
}

std::vector<core::TransferAllocation> UpdateExecutor::InstalledAllocations()
    const {
  std::vector<core::TransferAllocation> out;
  for (size_t ti = 0; ti < old_routes_.size(); ++ti) {
    core::TransferAllocation a;
    a.id = old_routes_[ti].id;
    for (size_t pi = 0; pi < old_routes_[ti].paths.size(); ++pi) {
      if (!old_installed_[ti][pi]) continue;
      core::PathAllocation pa = old_routes_[ti].paths[pi];
      pa.rate = old_force_zero_[ti][pi] ? 0.0 : eff_old_[ti][pi];
      a.paths.push_back(std::move(pa));
    }
    if (!a.paths.empty()) out.push_back(std::move(a));
  }
  for (size_t ti = 0; ti < new_routes_.size(); ++ti) {
    core::TransferAllocation a;
    a.id = new_routes_[ti].id;
    for (size_t pi = 0; pi < new_routes_[ti].paths.size(); ++pi) {
      if (!new_installed_[ti][pi]) continue;
      core::PathAllocation pa = new_routes_[ti].paths[pi];
      pa.rate = eff_new_[ti][pi];
      a.paths.push_back(std::move(pa));
    }
    if (!a.paths.empty()) out.push_back(std::move(a));
  }
  return out;
}

bool UpdateExecutor::ShouldAbort() const {
  for (size_t ti = 0; ti < new_routes_.size(); ++ti) {
    double new_nominal = 0.0;
    for (const core::PathAllocation& pa : new_routes_[ti].paths) {
      new_nominal += pa.rate;
    }
    if (new_nominal <= kEps) continue;
    double old_nominal = 0.0;
    if (ti < old_routes_.size()) {
      for (const core::PathAllocation& pa : old_routes_[ti].paths) {
        old_nominal += pa.rate;
      }
    }
    if (old_nominal <= kEps) continue;  // brand-new transfer: nothing broken
    double effective = 0.0;
    for (size_t pi = 0; pi < new_routes_[ti].paths.size(); ++pi) {
      if (new_installed_[ti][pi]) effective += eff_new_[ti][pi];
    }
    if (ti < old_routes_.size()) {
      for (size_t pi = 0; pi < old_routes_[ti].paths.size(); ++pi) {
        if (old_installed_[ti][pi] && !old_force_zero_[ti][pi]) {
          effective += eff_old_[ti][pi];
        }
      }
    }
    // The update disconnected a transfer that had working routes before:
    // converging here would strand it until the next slot. Safe-abort.
    if (effective <= kEps) return true;
  }
  return false;
}

ExecResult UpdateExecutor::Finish() {
  OWAN_SPAN(exec_span, "update", "update.execute");
  while (!terminal_) Step();
  ExecResult res;
  res.outcome = outcome_;
  res.makespan = now_;
  res.stats = stats_;
  res.invariant_violations = violations_;
  res.log = log_;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const OpRun& r = ops_[i];
    if (r.first_start < 0) continue;
    res.schedule.items.push_back(ScheduledOp{
        static_cast<int>(i), r.first_start,
        r.resolve_time >= 0 ? r.resolve_time : now_, r.forced});
  }
  std::sort(res.schedule.items.begin(), res.schedule.items.end(),
            [](const ScheduledOp& a, const ScheduledOp& b) {
              return a.start != b.start ? a.start < b.start
                                        : a.op_id < b.op_id;
            });
  res.schedule.makespan = now_;
  if (outcome_ == ExecOutcome::kConverged) {
    res.final_topology = lit_;
    RecomputeEffectiveRates();
    for (size_t ti = 0; ti < new_routes_.size(); ++ti) {
      core::TransferAllocation a;
      a.id = new_routes_[ti].id;
      for (size_t pi = 0; pi < new_routes_[ti].paths.size(); ++pi) {
        if (!new_installed_[ti][pi]) continue;
        core::PathAllocation pa = new_routes_[ti].paths[pi];
        pa.rate = eff_new_[ti][pi];
        a.paths.push_back(std::move(pa));
      }
      // Old paths the repair kept alive (cancelled cleanups) ride along.
      if (ti < old_routes_.size()) {
        for (size_t pi = 0; pi < old_routes_[ti].paths.size(); ++pi) {
          if (!old_installed_[ti][pi] || old_force_zero_[ti][pi]) continue;
          core::PathAllocation pa = old_routes_[ti].paths[pi];
          pa.rate = eff_old_[ti][pi];
          a.paths.push_back(std::move(pa));
        }
      }
      res.final_routes.push_back(std::move(a));
    }
  } else {
    res.final_topology = from_;
    res.final_routes = old_routes_;
  }
  OWAN_COUNT("update.exec.plans");
  OWAN_HISTO("update.exec.convergence_s", ::owan::obs::Unit::kSimSeconds,
             res.makespan);
  exec_span.AddArg("makespan_s", res.makespan);
  exec_span.AddArg("ops", static_cast<double>(ops_.size()));
  return res;
}

ExecResult UpdateExecutor::ExecutePlan(ExecutorInput input,
                                       const ExecutorOptions& options) {
  UpdateExecutor ex(std::move(input), options);
  return ex.Finish();
}

}  // namespace owan::update
