#ifndef OWAN_UPDATE_UPDATE_PLAN_H_
#define OWAN_UPDATE_UPDATE_PLAN_H_

#include <string>
#include <vector>

#include "core/topology.h"
#include "core/transfer.h"

namespace owan::update {

// One update operation in the cross-layer dependency graph (§3.3). Route
// operations touch only routers (milliseconds); circuit operations
// reconfigure ROADMs along a path and take seconds, during which the
// circuit is dark.
enum class OpType {
  kRemoveRoute,
  kAddRoute,
  kRemoveCircuit,
  kAddCircuit,
};

std::string ToString(OpType t);

struct UpdateOp {
  int id = -1;
  OpType type = OpType::kAddRoute;
  // For circuit ops: the network-layer link whose unit count changes.
  net::NodeId u = net::kInvalidNode;
  net::NodeId v = net::kInvalidNode;
  // For route ops: which allocation (transfer index, path index) moves.
  int transfer_index = -1;
  int path_index = -1;
  double duration_s = 0.0;
  // Ops that must complete before this one may start (dependency-graph
  // edges; resource constraints are handled by the scheduler).
  std::vector<int> deps;
};

struct UpdateDurations {
  double route_s = 0.01;     // router rule install
  double circuit_s = 3.0;    // ROADM circuit (re)provisioning, §5.4
};

// The full plan for moving the network from state A to state B.
struct UpdatePlan {
  std::vector<UpdateOp> ops;

  int CountType(OpType t) const {
    int n = 0;
    for (const UpdateOp& op : ops) {
      if (op.type == t) ++n;
    }
    return n;
  }
};

// Builds the cross-layer dependency graph:
//   * RemoveRoute ops for old paths that don't survive into the new config,
//   * RemoveCircuit / AddCircuit ops from the topology diff,
//   * AddRoute ops for new paths,
// with edges RemoveRoute -> RemoveCircuit (a circuit drains before it is
// torn down) and AddCircuit -> AddRoute (a path activates only after all of
// its links' new circuits are lit). Port contention (an added circuit needs
// the router ports a removed circuit frees) is expressed by the scheduler's
// per-site port ledger rather than explicit edges.
UpdatePlan BuildUpdatePlan(const core::Topology& from,
                           const core::Topology& to,
                           const std::vector<core::TransferAllocation>& old_routes,
                           const std::vector<core::TransferAllocation>& new_routes,
                           const UpdateDurations& durations = {});

}  // namespace owan::update

#endif  // OWAN_UPDATE_UPDATE_PLAN_H_
