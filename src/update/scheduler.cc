#include "update/scheduler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "fault/invariant_checker.h"
#include "net/shortest_path.h"
#include "obs/obs.h"

namespace owan::update {

namespace {

using LinkKey = std::pair<net::NodeId, net::NodeId>;

LinkKey Key(net::NodeId a, net::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

const ScheduledOp* Schedule::Find(int op_id) const {
  for (const ScheduledOp& s : items) {
    if (s.op_id == op_id) return &s;
  }
  return nullptr;
}

Schedule ScheduleOneShot(const UpdatePlan& plan) {
  Schedule s;
  for (const UpdateOp& op : plan.ops) {
    s.items.push_back(ScheduledOp{op.id, 0.0, op.duration_s, false});
    s.makespan = std::max(s.makespan, op.duration_s);
  }
  return s;
}

StagedPlan BuildStagedPlan(const UpdatePlan& input_plan, int wave_size) {
  if (wave_size < 1) wave_size = 1;
  StagedPlan staged;
  // Stage circuit ops into waves: RemoveCircuits of wave w wait for the
  // AddCircuits of wave w-1; AddCircuits of wave w wait for the
  // RemoveCircuits of wave w (whose completions free their ports); a
  // draining RemoveRoute fires with the earliest wave that needs it gone.
  UpdatePlan& plan = staged.plan;
  plan = input_plan;
  std::vector<int> remove_ids, add_ids;
  for (const UpdateOp& op : plan.ops) {
    if (op.type == OpType::kRemoveCircuit) remove_ids.push_back(op.id);
    if (op.type == OpType::kAddCircuit) add_ids.push_back(op.id);
  }
  auto wave_of = [wave_size](size_t idx) {
    return static_cast<int>(idx) / wave_size;
  };
  std::map<int, int> op_wave;  // circuit op id -> wave
  for (size_t i = 0; i < remove_ids.size(); ++i) {
    op_wave[remove_ids[i]] = wave_of(i);
  }
  for (size_t i = 0; i < add_ids.size(); ++i) {
    op_wave[add_ids[i]] = wave_of(i);
  }
  for (size_t i = 0; i < remove_ids.size(); ++i) {
    const int w = wave_of(i);
    if (w == 0) continue;
    for (size_t j = 0; j < add_ids.size(); ++j) {
      if (wave_of(j) == w - 1) {
        plan.ops[static_cast<size_t>(remove_ids[i])].deps.push_back(
            add_ids[j]);
      }
    }
  }
  for (size_t j = 0; j < add_ids.size(); ++j) {
    const int w = wave_of(j);
    for (size_t i = 0; i < remove_ids.size(); ++i) {
      if (wave_of(i) == w) {
        plan.ops[static_cast<size_t>(add_ids[j])].deps.push_back(
            remove_ids[i]);
      }
    }
  }
  // A draining route keeps carrying traffic until the EARLIEST wave that
  // needs it gone; gate it on the adds of the wave before that one.
  std::map<int, int> route_min_wave;
  for (const UpdateOp& op : input_plan.ops) {
    if (op.type != OpType::kRemoveCircuit) continue;
    for (int route_id : op.deps) {
      auto it = route_min_wave.find(route_id);
      const int w = op_wave[op.id];
      if (it == route_min_wave.end() || w < it->second) {
        route_min_wave[route_id] = w;
      }
    }
  }
  for (const auto& [route_id, w] : route_min_wave) {
    if (w == 0) continue;
    for (size_t j = 0; j < add_ids.size(); ++j) {
      if (wave_of(j) == w - 1) {
        plan.ops[static_cast<size_t>(route_id)].deps.push_back(add_ids[j]);
      }
    }
  }

  // Draining RemoveRoutes are those some RemoveCircuit depends on.
  for (const UpdateOp& op : plan.ops) {
    if (op.type == OpType::kRemoveCircuit) {
      for (int d : op.deps) staged.draining.insert(d);
    }
  }
  // Cleanup RemoveRoutes wait for the same transfer's AddRoutes.
  for (const UpdateOp& op : plan.ops) {
    if (op.type == OpType::kAddRoute) {
      staged.transfer_add_routes[op.transfer_index].push_back(op.id);
    }
  }
  return staged;
}

int PickStallVictim(const UpdatePlan& plan, const std::vector<bool>& pending,
                    const std::vector<bool>& resolved) {
  int victim = -1;
  size_t best_unmet = std::numeric_limits<size_t>::max();
  for (const UpdateOp& op : plan.ops) {
    if (!pending[static_cast<size_t>(op.id)]) continue;
    size_t unmet = 0;
    for (int d : op.deps) {
      if (!resolved[static_cast<size_t>(d)]) ++unmet;
    }
    if (unmet < best_unmet) {
      best_unmet = unmet;
      victim = op.id;
    }
  }
  if (victim < 0) return -1;
  // Forcing an op past an unfinished RemoveRoute dep would route live
  // traffic into a dark circuit; drain first, force the circuit op on a
  // later stall round if the deadlock persists.
  for (int d : plan.ops[static_cast<size_t>(victim)].deps) {
    const UpdateOp& dep = plan.ops[static_cast<size_t>(d)];
    if (!resolved[static_cast<size_t>(d)] &&
        pending[static_cast<size_t>(d)] &&
        dep.type == OpType::kRemoveRoute) {
      OWAN_COUNT("update.forced_route_drains");
      return d;
    }
  }
  return victim;
}

Schedule ScheduleConsistent(const UpdatePlan& input_plan, int wave_size) {
  Schedule out;
  const size_t n = input_plan.ops.size();
  if (n == 0) return out;
  OWAN_SPAN(sched_span, "update", "update.schedule");
  sched_span.AddArg("ops", static_cast<double>(n));
  OWAN_COUNT("update.plans");
  OWAN_COUNT_N("update.ops", ::owan::obs::Unit::kOps, n);
  OWAN_COUNT_N("update.ops_add_circuit", ::owan::obs::Unit::kOps,
               input_plan.CountType(OpType::kAddCircuit));
  OWAN_COUNT_N("update.ops_remove_circuit", ::owan::obs::Unit::kOps,
               input_plan.CountType(OpType::kRemoveCircuit));
  OWAN_COUNT_N("update.ops_add_route", ::owan::obs::Unit::kOps,
               input_plan.CountType(OpType::kAddRoute));
  OWAN_COUNT_N("update.ops_remove_route", ::owan::obs::Unit::kOps,
               input_plan.CountType(OpType::kRemoveRoute));

  StagedPlan staged = BuildStagedPlan(input_plan, wave_size);
  const UpdatePlan& plan = staged.plan;
  const std::set<int>& draining = staged.draining;
  const std::map<int, std::vector<int>>& transfer_add_routes =
      staged.transfer_add_routes;

  enum class St { kPending, kRunning, kDone };
  std::vector<St> state(n, St::kPending);
  std::vector<double> end_time(n, 0.0);

  // Port ledger: every port starts busy; RemoveCircuit completions free
  // one port at each endpoint, AddCircuit starts consume them.
  std::map<net::NodeId, int> free_ports;

  auto deps_done = [&](const UpdateOp& op) {
    for (int d : op.deps) {
      if (state[static_cast<size_t>(d)] != St::kDone) return false;
    }
    if (op.type == OpType::kRemoveRoute && !draining.count(op.id)) {
      auto it = transfer_add_routes.find(op.transfer_index);
      if (it != transfer_add_routes.end()) {
        for (int a : it->second) {
          if (state[static_cast<size_t>(a)] != St::kDone) return false;
        }
      }
    }
    return true;
  };
  auto ports_available = [&](const UpdateOp& op) {
    if (op.type != OpType::kAddCircuit) return true;
    return free_ports[op.u] > 0 && free_ports[op.v] > 0;
  };

  double now = 0.0;
  size_t remaining = n;
  while (remaining > 0) {
    // Start everything that is ready at `now`.
    bool started = true;
    while (started) {
      started = false;
      for (const UpdateOp& op : plan.ops) {
        if (state[static_cast<size_t>(op.id)] != St::kPending) continue;
        if (!deps_done(op) || !ports_available(op)) continue;
        if (op.type == OpType::kAddCircuit) {
          --free_ports[op.u];
          --free_ports[op.v];
        }
        state[static_cast<size_t>(op.id)] = St::kRunning;
        end_time[static_cast<size_t>(op.id)] = now + op.duration_s;
        out.items.push_back(
            ScheduledOp{op.id, now, now + op.duration_s, false});
        started = true;
      }
    }

    // Advance to the next completion.
    double next = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (state[i] == St::kRunning) next = std::min(next, end_time[i]);
    }
    if (next == std::numeric_limits<double>::infinity()) {
      // Stall: force the pending op with the fewest unmet dependencies
      // (draining routes first — see PickStallVictim).
      std::vector<bool> pending(n), resolved(n);
      for (size_t i = 0; i < n; ++i) {
        pending[i] = state[i] == St::kPending;
        resolved[i] = state[i] == St::kDone;
      }
      const int victim = PickStallVictim(plan, pending, resolved);
      if (victim < 0) break;  // defensive; cannot happen with remaining > 0
      OWAN_COUNT("update.forced_ops");
      const UpdateOp& op = plan.ops[static_cast<size_t>(victim)];
      state[static_cast<size_t>(victim)] = St::kRunning;
      end_time[static_cast<size_t>(victim)] = now + op.duration_s;
      out.items.push_back(
          ScheduledOp{victim, now, now + op.duration_s, true});
      continue;
    }

    now = next;
    for (size_t i = 0; i < n; ++i) {
      if (state[i] == St::kRunning && end_time[i] <= now) {
        state[i] = St::kDone;
        --remaining;
        const UpdateOp& op = plan.ops[i];
        if (op.type == OpType::kRemoveCircuit) {
          ++free_ports[op.u];
          ++free_ports[op.v];
        }
      }
    }
  }
  out.makespan = now;
  OWAN_HISTO("update.makespan_s", ::owan::obs::Unit::kSimSeconds,
             out.makespan);
  sched_span.AddArg("makespan_s", out.makespan);
  return out;
}

std::vector<std::string> ValidateScheduleStages(
    const core::Topology& from, double theta, const UpdatePlan& plan,
    const Schedule& schedule,
    const std::vector<core::TransferAllocation>& old_routes,
    const std::vector<core::TransferAllocation>& new_routes) {
  std::vector<std::string> violations;
  std::set<double> times{0.0};
  for (const ScheduledOp& s : schedule.items) {
    times.insert(s.start);
    times.insert(s.end);
  }
  for (double t : times) {
    core::Topology lit = from;
    std::set<std::pair<int, int>> old_removed, new_added;
    for (const ScheduledOp& s : schedule.items) {
      const UpdateOp& op = plan.ops[static_cast<size_t>(s.op_id)];
      switch (op.type) {
        case OpType::kRemoveCircuit:
          // Dark from the moment teardown starts.
          if (s.start <= t) lit.AddUnits(op.u, op.v, -1);
          break;
        case OpType::kAddCircuit:
          if (s.end <= t) lit.AddUnits(op.u, op.v, 1);
          break;
        case OpType::kRemoveRoute:
          if (s.end <= t) old_removed.insert({op.transfer_index, op.path_index});
          break;
        case OpType::kAddRoute:
          if (s.end <= t) new_added.insert({op.transfer_index, op.path_index});
          break;
      }
    }
    std::vector<core::TransferAllocation> installed;
    for (size_t ti = 0; ti < old_routes.size(); ++ti) {
      core::TransferAllocation a;
      a.id = old_routes[ti].id;
      for (size_t pi = 0; pi < old_routes[ti].paths.size(); ++pi) {
        if (!old_removed.count({static_cast<int>(ti), static_cast<int>(pi)})) {
          a.paths.push_back(old_routes[ti].paths[pi]);
        }
      }
      if (!a.paths.empty()) installed.push_back(std::move(a));
    }
    for (size_t ti = 0; ti < new_routes.size(); ++ti) {
      core::TransferAllocation a;
      a.id = new_routes[ti].id;
      for (size_t pi = 0; pi < new_routes[ti].paths.size(); ++pi) {
        if (new_added.count({static_cast<int>(ti), static_cast<int>(pi)})) {
          a.paths.push_back(new_routes[ti].paths[pi]);
        }
      }
      if (!a.paths.empty()) installed.push_back(std::move(a));
    }
    for (std::string& v : fault::InvariantChecker::CheckUpdateStage(
             lit, theta, installed, /*check_capacity=*/false)) {
      std::ostringstream os;
      os << "t=" << t << ": " << v;
      violations.push_back(os.str());
    }
  }
  return violations;
}

std::vector<TraceSample> TraceThroughput(
    const core::Topology& from, double theta, const UpdatePlan& plan,
    const Schedule& schedule,
    const std::vector<core::TransferAllocation>& old_routes,
    const std::vector<core::TransferAllocation>& new_routes,
    bool adaptive_reroute) {
  // Event times: every op start/end, plus 0 and makespan + margin.
  std::set<double> times{0.0};
  for (const ScheduledOp& s : schedule.items) {
    times.insert(s.start);
    times.insert(s.end);
  }
  times.insert(schedule.makespan + 1.0);

  auto capacity_at = [&](double t) {
    std::map<LinkKey, double> cap;
    for (const core::Link& l : from.Links()) {
      cap[Key(l.u, l.v)] = l.units * theta;
    }
    for (const ScheduledOp& s : schedule.items) {
      const UpdateOp& op = plan.ops[static_cast<size_t>(s.op_id)];
      // A removed circuit is dark from the moment its teardown starts; an
      // added circuit lights up when provisioning completes.
      if (op.type == OpType::kRemoveCircuit && s.start <= t) {
        cap[Key(op.u, op.v)] -= theta;
      } else if (op.type == OpType::kAddCircuit && s.end <= t) {
        cap[Key(op.u, op.v)] += theta;
      }
    }
    return cap;
  };

  // Which route ops have executed by time t.
  auto route_state_at = [&](double t) {
    std::map<std::pair<int, int>, bool> old_removed;
    std::map<std::pair<int, int>, bool> new_added;
    for (const ScheduledOp& s : schedule.items) {
      const UpdateOp& op = plan.ops[static_cast<size_t>(s.op_id)];
      // Route changes take effect when the router finishes applying them.
      if (op.type == OpType::kRemoveRoute && s.end <= t) {
        old_removed[{op.transfer_index, op.path_index}] = true;
      } else if (op.type == OpType::kAddRoute && s.end <= t) {
        new_added[{op.transfer_index, op.path_index}] = true;
      }
    }
    return std::make_pair(old_removed, new_added);
  };

  std::vector<TraceSample> trace;
  for (double t : times) {
    auto cap = capacity_at(t);
    auto [old_removed, new_added] = route_state_at(t);

    double total = 0.0;
    const size_t num_transfers =
        std::max(old_routes.size(), new_routes.size());
    for (size_t ti = 0; ti < num_transfers; ++ti) {
      // Paths currently installed for this transfer.
      std::vector<const core::PathAllocation*> installed;
      double old_rate = 0.0;
      double new_rate = 0.0;
      bool any_old = false, any_new = false;
      if (ti < old_routes.size()) {
        for (size_t pi = 0; pi < old_routes[ti].paths.size(); ++pi) {
          old_rate += old_routes[ti].paths[pi].rate;
          if (!old_removed.count({static_cast<int>(ti),
                                  static_cast<int>(pi)})) {
            installed.push_back(&old_routes[ti].paths[pi]);
            any_old = true;
          }
        }
      }
      if (ti < new_routes.size()) {
        for (size_t pi = 0; pi < new_routes[ti].paths.size(); ++pi) {
          new_rate += new_routes[ti].paths[pi].rate;
          if (new_added.count(
                  {static_cast<int>(ti), static_cast<int>(pi)})) {
            installed.push_back(&new_routes[ti].paths[pi]);
            any_new = true;
          }
        }
      }
      // What the transfer tries to send: the larger of its installed
      // allocations; mid-transition (nothing installed) it keeps pushing
      // toward its upcoming allocation, unless the new state drops it.
      double want;
      if (any_old && any_new) {
        want = std::max(old_rate, new_rate);
      } else if (any_new) {
        want = new_rate;
      } else if (any_old) {
        want = old_rate;
      } else {
        want = new_rate > 0.0 ? std::max(old_rate, new_rate) : 0.0;
      }
      net::NodeId src = net::kInvalidNode, dst = net::kInvalidNode;
      for (const core::PathAllocation* pa : installed) {
        if (want <= 0.0) break;
        // Each installed path carries at most its allocated rate (rate
        // limits stay enforced); drained traffic falls to the adaptive
        // detour below instead of stealing other transfers' shares.
        double avail = std::min(want, pa->rate);
        for (size_t i = 0; i + 1 < pa->path.nodes.size(); ++i) {
          const LinkKey lk = Key(pa->path.nodes[i], pa->path.nodes[i + 1]);
          auto it = cap.find(lk);
          avail = std::min(avail, it == cap.end() ? 0.0 : it->second);
        }
        avail = std::max(0.0, avail);
        for (size_t i = 0; i + 1 < pa->path.nodes.size(); ++i) {
          const LinkKey lk = Key(pa->path.nodes[i], pa->path.nodes[i + 1]);
          auto it = cap.find(lk);
          if (it != cap.end()) it->second -= avail;
        }
        want -= avail;
        total += avail;
      }
      // Endpoints for the adaptive detour come from any known path.
      if (ti < old_routes.size() && !old_routes[ti].paths.empty()) {
        src = old_routes[ti].paths[0].path.src();
        dst = old_routes[ti].paths[0].path.dst();
      } else if (ti < new_routes.size() && !new_routes[ti].paths.empty()) {
        src = new_routes[ti].paths[0].path.src();
        dst = new_routes[ti].paths[0].path.dst();
      }
      if (adaptive_reroute && want > 1e-9 && src != net::kInvalidNode) {
        // The controller migrates the leftover rate over whatever lit
        // capacity remains (greedy shortest detours, up to 3 attempts).
        for (int attempt = 0; attempt < 3 && want > 1e-9; ++attempt) {
          net::Graph g(from.NumSites());
          for (const auto& [lk, c] : cap) {
            if (c > 1e-9) g.AddEdge(lk.first, lk.second, 1.0, c);
          }
          auto path = net::ShortestPath(g, src, dst);
          if (!path || path->edges.empty()) break;
          double avail = want;
          for (net::EdgeId e : path->edges) {
            avail = std::min(avail, g.edge(e).capacity);
          }
          if (avail <= 1e-9) break;
          for (size_t i = 0; i + 1 < path->nodes.size(); ++i) {
            cap[Key(path->nodes[i], path->nodes[i + 1])] -= avail;
          }
          want -= avail;
          total += avail;
        }
      }
    }
    trace.push_back(TraceSample{t, total});
  }
  return trace;
}

}  // namespace owan::update
