#include "update/update_plan.h"

#include <map>
#include <set>

namespace owan::update {

namespace {

using LinkKey = std::pair<net::NodeId, net::NodeId>;

LinkKey Key(net::NodeId a, net::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

// Links crossed by a path, as canonical keys.
std::vector<LinkKey> PathLinks(const net::Path& p) {
  std::vector<LinkKey> out;
  for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
    out.push_back(Key(p.nodes[i], p.nodes[i + 1]));
  }
  return out;
}

}  // namespace

std::string ToString(OpType t) {
  switch (t) {
    case OpType::kRemoveRoute:
      return "remove-route";
    case OpType::kAddRoute:
      return "add-route";
    case OpType::kRemoveCircuit:
      return "remove-circuit";
    case OpType::kAddCircuit:
      return "add-circuit";
  }
  return "?";
}

UpdatePlan BuildUpdatePlan(
    const core::Topology& from, const core::Topology& to,
    const std::vector<core::TransferAllocation>& old_routes,
    const std::vector<core::TransferAllocation>& new_routes,
    const UpdateDurations& durations) {
  UpdatePlan plan;
  auto add_op = [&plan](UpdateOp op) {
    op.id = static_cast<int>(plan.ops.size());
    plan.ops.push_back(std::move(op));
    return plan.ops.back().id;
  };

  const auto [to_add, to_remove] = to.Diff(from);

  // Circuit ops, one per unit.
  std::map<LinkKey, std::vector<int>> remove_circuit_ops;
  for (const core::Link& l : to_remove) {
    for (int i = 0; i < l.units; ++i) {
      UpdateOp op;
      op.type = OpType::kRemoveCircuit;
      op.u = l.u;
      op.v = l.v;
      op.duration_s = durations.circuit_s;
      remove_circuit_ops[Key(l.u, l.v)].push_back(add_op(op));
    }
  }
  std::map<LinkKey, std::vector<int>> add_circuit_ops;
  for (const core::Link& l : to_add) {
    for (int i = 0; i < l.units; ++i) {
      UpdateOp op;
      op.type = OpType::kAddCircuit;
      op.u = l.u;
      op.v = l.v;
      op.duration_s = durations.circuit_s;
      add_circuit_ops[Key(l.u, l.v)].push_back(add_op(op));
    }
  }

  // Old routes that cross a shrinking link must drain first; they become
  // RemoveRoute ops that the link's RemoveCircuit ops depend on.
  for (size_t ti = 0; ti < old_routes.size(); ++ti) {
    for (size_t pi = 0; pi < old_routes[ti].paths.size(); ++pi) {
      const auto links = PathLinks(old_routes[ti].paths[pi].path);
      bool crosses_shrinking = false;
      for (const LinkKey& lk : links) {
        if (remove_circuit_ops.count(lk)) {
          crosses_shrinking = true;
          break;
        }
      }
      UpdateOp op;
      op.type = OpType::kRemoveRoute;
      op.transfer_index = static_cast<int>(ti);
      op.path_index = static_cast<int>(pi);
      op.duration_s = durations.route_s;
      const int op_id = add_op(op);
      if (crosses_shrinking) {
        for (const LinkKey& lk : links) {
          auto it = remove_circuit_ops.find(lk);
          if (it == remove_circuit_ops.end()) continue;
          for (int cid : it->second) {
            plan.ops[static_cast<size_t>(cid)].deps.push_back(op_id);
          }
        }
      }
    }
  }

  // New routes wait for every new circuit on their links.
  for (size_t ti = 0; ti < new_routes.size(); ++ti) {
    for (size_t pi = 0; pi < new_routes[ti].paths.size(); ++pi) {
      UpdateOp op;
      op.type = OpType::kAddRoute;
      op.transfer_index = static_cast<int>(ti);
      op.path_index = static_cast<int>(pi);
      op.duration_s = durations.route_s;
      for (const LinkKey& lk :
           PathLinks(new_routes[ti].paths[pi].path)) {
        auto it = add_circuit_ops.find(lk);
        if (it == add_circuit_ops.end()) continue;
        for (int cid : it->second) op.deps.push_back(cid);
      }
      add_op(op);
    }
  }

  return plan;
}

}  // namespace owan::update
