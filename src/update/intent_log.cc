#include "update/intent_log.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace owan::update {

namespace {

int g_drop_every_nth = 0;

constexpr const char* kKindNames[] = {
    "attempt",  "done",       "failed", "cancelled", "forced", "stage",
    "abort-begin", "undo-start", "undo-done", "commit", "abort-done",
};
constexpr int kNumKinds = 11;

}  // namespace

std::string ToString(IntentKind k) {
  return kKindNames[static_cast<int>(k)];
}

std::string IntentLog::RecordToString(const IntentRecord& r) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << ToString(r.kind) << " " << r.op << " " << r.attempt << " " << r.t;
  return os.str();
}

IntentRecord IntentLog::RecordFromString(const std::string& line) {
  std::istringstream is(line);
  std::string kind;
  IntentRecord r;
  if (!(is >> kind >> r.op >> r.attempt >> r.t)) {
    throw std::runtime_error("corrupt intent-log record: " + line);
  }
  int k = 0;
  for (; k < kNumKinds; ++k) {
    if (kind == kKindNames[k]) break;
  }
  if (k == kNumKinds) {
    throw std::runtime_error("unknown intent-log record kind: " + kind);
  }
  r.kind = static_cast<IntentKind>(k);
  return r;
}

std::string IntentLog::Serialize() const {
  std::ostringstream os;
  int i = 0;
  for (const IntentRecord& r : records) {
    ++i;
    if (g_drop_every_nth > 0 && i % g_drop_every_nth == 0) continue;
    os << RecordToString(r) << "\n";
  }
  return os.str();
}

IntentLog IntentLog::Parse(const std::string& text) {
  IntentLog log;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    log.records.push_back(RecordFromString(line));
  }
  return log;
}

void IntentLog::TestOnlySetDropEveryNth(int n) { g_drop_every_nth = n; }

}  // namespace owan::update
