#ifndef OWAN_UPDATE_SCHEDULER_H_
#define OWAN_UPDATE_SCHEDULER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "update/update_plan.h"

namespace owan::update {

struct ScheduledOp {
  int op_id = -1;
  double start = 0.0;
  double end = 0.0;
  bool forced = false;  // started despite unmet deps (stall breaking)
};

struct Schedule {
  std::vector<ScheduledOp> items;
  double makespan = 0.0;

  const ScheduledOp* Find(int op_id) const;
};

// The wave-staged dependency structure shared by ScheduleConsistent and
// the update executor: the input plan with wave-staging edges added, plus
// the derived sets the ready/gating rules consult. Staging circuit changes
// into waves of at most `wave_size` keeps only a small slice of capacity
// dark at once; draining routes fire with the earliest wave that needs
// them gone.
struct StagedPlan {
  UpdatePlan plan;  // deps augmented with wave-staging edges
  // RemoveRoute ids some RemoveCircuit waits on (they drain live traffic
  // off a circuit about to go dark). All other RemoveRoutes are cleanup.
  std::set<int> draining;
  // transfer_index -> its AddRoute op ids; a cleanup RemoveRoute waits for
  // all of them (make-before-break).
  std::map<int, std::vector<int>> transfer_add_routes;
};

StagedPlan BuildStagedPlan(const UpdatePlan& plan, int wave_size);

// Dionysus deadlock breaking, shared by the scheduler and the executor:
// when no op can start and none is running, the pending op with the fewest
// unmet deps is forced (op-id tie-break). Exception: if that victim still
// waits on an unfinished RemoveRoute, forcing it would push live traffic
// into a dark circuit — descend and force the drain itself first (counted
// as update.forced_route_drains), so a blackhole never opens. `pending`
// and `resolved` are per-op-id masks; returns -1 if nothing is pending.
int PickStallVictim(const UpdatePlan& plan, const std::vector<bool>& pending,
                    const std::vector<bool>& resolved);

// One-shot update: every operation fires at t=0 (the paper's comparison
// point in Fig. 10b). Circuits go dark for their whole duration while
// routes already point at them.
Schedule ScheduleOneShot(const UpdatePlan& plan);

// Dionysus-style consistent scheduling extended with circuit nodes:
//   * draining RemoveRoute ops run just before their circuit's wave,
//   * a RemoveCircuit starts once the routes over it are gone,
//   * an AddCircuit starts once its router ports are free (each endpoint
//     port is freed by a RemoveCircuit completion),
//   * AddRoute ops wait for all their new circuits to light up,
//   * cleanup RemoveRoute ops (pure route swaps) run after the transfer's
//     new routes are installed (make-before-break).
//
// Circuit changes are additionally staged into waves of at most `wave_size`
// circuits: only a small slice of capacity is ever dark at once, so live
// traffic keeps flowing on the rest (this is what makes the update hitless
// in Fig. 10b, at the cost of a longer update makespan).
// If the dependency graph stalls (cyclic resource waits), the op with the
// fewest unmet dependencies is forced, mirroring Dionysus' deadlock
// breaking.
Schedule ScheduleConsistent(const UpdatePlan& plan, int wave_size = 4);

// Total throughput (Gbps) over time while the schedule executes: transfers
// keep sending on every installed-and-lit path, redistributing up to the
// capacity that is currently lit. Samples are emitted at every event edge
// plus a final steady-state sample.
//
// With `adaptive_reroute` (the consistent scheduler's behaviour: the
// controller keeps migrating rates Dionysus-style while the update runs),
// a transfer whose paths are being drained is temporarily detoured over
// whatever lit capacity remains. A one-shot update pushes all state at once
// and walks away, so its traffic is stuck on whatever the new routes say.
struct TraceSample {
  double t = 0.0;
  double gbps = 0.0;
};

// Replays a schedule's event edges against the lit-capacity model (removed
// circuits dark from teardown start, added circuits lit at completion,
// route ops effective at completion) and runs the mid-update invariant
// check at every edge: no installed positive-rate route may cross a dark
// link. Capacity overshoot is not flagged here — a precomputed schedule
// relies on the data plane rate-adapting (TraceThroughput); the executor,
// which clamps rates itself, checks overshoot too. Returns all violations
// across all stages (empty = clean).
std::vector<std::string> ValidateScheduleStages(
    const core::Topology& from, double theta, const UpdatePlan& plan,
    const Schedule& schedule,
    const std::vector<core::TransferAllocation>& old_routes,
    const std::vector<core::TransferAllocation>& new_routes);

std::vector<TraceSample> TraceThroughput(
    const core::Topology& from, double theta, const UpdatePlan& plan,
    const Schedule& schedule,
    const std::vector<core::TransferAllocation>& old_routes,
    const std::vector<core::TransferAllocation>& new_routes,
    bool adaptive_reroute = false);

}  // namespace owan::update

#endif  // OWAN_UPDATE_SCHEDULER_H_
