#ifndef OWAN_UPDATE_INTENT_LOG_H_
#define OWAN_UPDATE_INTENT_LOG_H_

#include <string>
#include <vector>

namespace owan::update {

// Write-ahead intent log of an update execution. The executor appends a
// record *before* acting on each decision; replaying a prefix of the log
// through the same state-transition code reconstructs the exact mid-update
// state, so a controller crash between any two records recovers to a
// consistent plant and deterministically finishes the update (checkpoint
// v3 carries the log, see control::Controller).
//
// Attempt outcomes are not logged: they are pure functions of
// (actuation seed, op, attempt), so kAttemptStart is enough to re-derive
// the failure/latency draw on replay. Completion records exist so a replay
// can apply plant effects without simulating time, and as an audit trail.
enum class IntentKind {
  kAttemptStart,  // op attempt starts at t (forward phase)
  kOpDone,        // op completed at t; its plant effect applied
  kOpFailed,      // op permanently failed at t (retries exhausted)
  kOpCancelled,   // op cancelled at t (plan repair)
  kForced,        // op forced past unmet deps at t (stall breaking)
  kStage,         // stage boundary checked at t
  kAbortBegin,    // safe-abort started at t; rollback follows
  kUndoStart,     // rollback undo of op, given attempt, starts at t
  kUndoDone,      // rollback undo of op completed at t
  kCommit,        // plan converged at t (terminal)
  kAbortDone,     // rollback finished at t, plant == pre-update (terminal)
};

std::string ToString(IntentKind k);

struct IntentRecord {
  IntentKind kind = IntentKind::kAttemptStart;
  int op = -1;
  int attempt = 0;
  double t = 0.0;

  bool operator==(const IntentRecord&) const = default;
};

struct IntentLog {
  std::vector<IntentRecord> records;

  bool operator==(const IntentLog&) const = default;

  // One record per line, doubles at max_digits10 (exact round-trip).
  std::string Serialize() const;
  // Inverse of Serialize; throws std::runtime_error on a corrupt line.
  static IntentLog Parse(const std::string& text);

  static std::string RecordToString(const IntentRecord& r);
  static IntentRecord RecordFromString(const std::string& line);

  // Test-only fault injection (owan_fuzz --inject-bug wal): Serialize
  // silently drops every Nth record, modelling a WAL writer that loses
  // entries. 0 disables. Process-global; tests must reset it.
  static void TestOnlySetDropEveryNth(int n);
};

}  // namespace owan::update

#endif  // OWAN_UPDATE_INTENT_LOG_H_
