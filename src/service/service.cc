#include "service/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "control/checkpoint_io.h"
#include "obs/obs.h"
#include "sim/progress.h"

namespace owan::service {

namespace {

// FNV-1a over the 8 bytes of `v`, little-end first. Byte-wise (not a single
// multiply) so the digest matches across platforms with the same doubles.
void Mix(uint64_t& acc, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    acc = (acc ^ ((v >> (8 * i)) & 0xffu)) * 1099511628211ULL;
  }
}

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

size_t Log2Bucket(size_t depth) {
  size_t b = 0;
  while (depth > 0 && b < 15) {
    depth >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

ControllerService::ControllerService(const topo::Wan* wan,
                                     std::unique_ptr<core::TeScheme> scheme,
                                     ServiceOptions options)
    : wan_(wan),
      scheme_(std::move(scheme)),
      options_(options),
      topology_(wan->default_topology),
      admission_(wan->default_topology.ToGraph(
                     wan->optical.wavelength_capacity()),
                 [&options] {
                   AdmissionOptions a = options.admission;
                   a.slot_seconds = options.slot_seconds;
                   return a;
                 }()) {
  if (!scheme_) throw std::invalid_argument("ControllerService: null scheme");
  if (options_.num_shards < 1) {
    throw std::invalid_argument("ControllerService: num_shards < 1");
  }
  options_.admission.slot_seconds = options_.slot_seconds;
  shards_.resize(static_cast<size_t>(options_.num_shards));
}

void ControllerService::AttachStream(const workload::StreamParams& params,
                                     uint64_t max_requests) {
  stream_.emplace(wan_->optical.NumSites(), params);
  stream_limit_ = max_requests;
  if (stream_resume_cursor_ > 0) {
    stream_->FastForward(stream_resume_cursor_);
    stream_consumed_ = stream_resume_cursor_;
  }
}

void ControllerService::Submit(const core::Request& r) {
  if (r.src == r.dst || r.size <= 0.0 || r.id < 0) {
    throw std::invalid_argument("ControllerService::Submit: bad request");
  }
  if (!queued_.empty() && r.arrival < queued_.back().arrival) {
    throw std::invalid_argument(
        "ControllerService::Submit: arrivals must be non-decreasing");
  }
  queued_.push_back(r);
}

ControllerService::Record* ControllerService::FindRecord(int id) {
  auto& records = ShardFor(id).records;
  auto it = records.find(id);
  return it == records.end() ? nullptr : &it->second;
}

void ControllerService::FinalizeDecision(Record& rec, Verdict v,
                                         double decision_time) {
  rec.verdict = v;
  rec.decided_at = decision_time;
  const double latency = decision_time - rec.request.arrival;
  const size_t bucket = std::min<size_t>(
      15, static_cast<size_t>(
              std::max(0.0, latency) / options_.slot_seconds + 1e-9));
  ++stats_.decision_latency_slots[bucket];
  OWAN_HISTO("service.decision_latency_s", ::owan::obs::Unit::kSimSeconds,
             std::max(0.0, latency));
  if (v == Verdict::kAdmitted) {
    ++stats_.admitted;
    OWAN_COUNT("service.admitted");
  } else {
    ++stats_.rejected;
    OWAN_COUNT("service.rejected");
  }
  Mix(fp_acc_, static_cast<uint64_t>(rec.request.id));
  Mix(fp_acc_, static_cast<uint64_t>(v));
  Mix(fp_acc_, Bits(decision_time));
}

void ControllerService::FinalizeCompletion(int id, Record& rec) {
  ++stats_.completed;
  stats_.makespan = std::max(stats_.makespan, rec.completed_at);
  OWAN_COUNT("service.transfers_completed");
  Mix(fp_acc_, static_cast<uint64_t>(id));
  Mix(fp_acc_, Bits(rec.completed_at));
  Mix(fp_acc_, Bits(rec.delivered));
  frozen_.erase(id);
  if (!options_.retain_records) ShardFor(id).records.erase(id);
}

void ControllerService::DecideAndActivate(const core::Request& r,
                                          double decision_time) {
  Record rec;
  rec.request = r;
  rec.remaining = r.size;
  auto [it, inserted] = ShardFor(r.id).records.emplace(r.id, std::move(rec));
  if (!inserted) {
    throw std::invalid_argument("ControllerService: duplicate request id " +
                                std::to_string(r.id));
  }
  if (options_.retain_records) submission_order_.push_back(r.id);
  Record& stored = it->second;

  if (options_.mode == ServiceMode::kPassthrough) {
    // Batch parity: the scheme's own Admit hook decides, and — exactly like
    // sim::RunSimulation — even rejected requests activate (Amoeba serves
    // them best-effort with leftover capacity).
    const bool ok = scheme_->Admit(r, decision_time);
    FinalizeDecision(stored, ok ? Verdict::kAdmitted : Verdict::kRejected,
                     decision_time);
    active_order_.push_back(r.id);
    ShardFor(r.id).demand_added += r.size;
    return;
  }

  const Admission a = admission_.Offer(r, decision_time);
  switch (a) {
    case Admission::kAdmitted:
      FinalizeDecision(stored, Verdict::kAdmitted, decision_time);
      active_order_.push_back(r.id);
      ShardFor(r.id).demand_added += r.size;
      break;
    case Admission::kPending:
      stored.verdict = Verdict::kPending;
      pending_.push_back(r.id);
      ++stats_.pending_enqueued;
      OWAN_COUNT("service.pending_enqueued");
      break;
    case Admission::kRejected:
      FinalizeDecision(stored, Verdict::kRejected, decision_time);
      if (!options_.retain_records) ShardFor(r.id).records.erase(r.id);
      break;
  }
}

void ControllerService::IngestArrivals() {
  for (;;) {
    const bool stream_has = stream_ && stream_consumed_ < stream_limit_;
    const bool queue_has = !queued_.empty();
    if (!stream_has && !queue_has) return;

    bool from_stream;
    if (stream_has && queue_has) {
      from_stream = stream_->Peek().arrival <= queued_.front().arrival;
    } else {
      from_stream = stream_has;
    }
    const double arrival =
        from_stream ? stream_->Peek().arrival : queued_.front().arrival;
    if (arrival > now_ + 1e-9) return;

    core::Request r;
    if (from_stream) {
      r = stream_->Next();
      ++stream_consumed_;
    } else {
      r = queued_.front();
      queued_.pop_front();
    }
    ++stats_.requests;
    OWAN_COUNT("service.requests");
    // Online decisions happen at the request's own arrival timestamp on the
    // virtual clock; passthrough decides at the slot boundary, exactly when
    // the batch simulator calls Admit.
    const double decision_time =
        options_.mode == ServiceMode::kOnline ? r.arrival : now_;
    DecideAndActivate(r, decision_time);
  }
}

void ControllerService::ExpireAndRetryPending() {
  if (options_.mode != ServiceMode::kOnline) return;
  admission_.GarbageCollect(now_);
  if (pending_.empty()) {
    admission_.ClearReleased();
    return;
  }

  const int64_t first_usable = static_cast<int64_t>(
      std::ceil((now_ - 1e-9) / options_.slot_seconds));
  std::deque<int> keep;
  for (int id : pending_) {
    Record* rec = FindRecord(id);
    const int64_t last =
        static_cast<int64_t>(
            std::floor(rec->request.deadline / options_.slot_seconds)) -
        1;
    if (last < first_usable) {
      // The deadline window closed while waiting — a firm reject.
      FinalizeDecision(*rec, Verdict::kRejected, now_);
      ++stats_.pending_rejected;
      OWAN_COUNT("service.pending_rejected");
      if (!options_.retain_records) ShardFor(id).records.erase(id);
    } else {
      keep.push_back(id);
    }
  }
  pending_ = std::move(keep);

  // Only a Release can turn a pending request admissible (windows only
  // shrink; residuals only grow when capacity comes back), so the queue is
  // re-offered exactly when that happened — never polled.
  if (admission_.capacity_released() && !pending_.empty()) {
    ++stats_.retry_rounds;
    std::deque<int> still;
    for (int id : pending_) {
      Record* rec = FindRecord(id);
      const Admission a = admission_.Offer(rec->request, now_);
      if (a == Admission::kAdmitted) {
        FinalizeDecision(*rec, Verdict::kAdmitted, now_);
        ++stats_.pending_admitted;
        OWAN_COUNT("service.pending_admitted");
        active_order_.push_back(id);
        ShardFor(id).demand_added += rec->request.size;
      } else if (a == Admission::kRejected) {
        FinalizeDecision(*rec, Verdict::kRejected, now_);
        ++stats_.pending_rejected;
        if (!options_.retain_records) ShardFor(id).records.erase(id);
      } else {
        still.push_back(id);
      }
    }
    pending_ = std::move(still);
  }
  admission_.ClearReleased();
}

bool ControllerService::ShouldRecompute() const {
  if (force_recompute_) return true;
  const int64_t slot = static_cast<int64_t>(
      std::floor((now_ + 1e-9) / options_.slot_seconds));
  if (slot - last_recompute_slot_ >=
      static_cast<int64_t>(options_.max_stale_slots)) {
    return true;
  }
  double added = 0.0;
  for (const Shard& s : shards_) added += s.demand_added;
  return added >
         options_.recompute_demand_frac *
             std::max(last_recompute_demand_, 1e-9);
}

void ControllerService::RecordQueueDepth() {
  ++stats_.queue_depth[Log2Bucket(pending_.size())];
  OWAN_HISTO("service.queue_depth", ::owan::obs::Unit::kOps,
             static_cast<double>(pending_.size()));
}

void ControllerService::ProgressSlot() {
  const double dur = options_.slot_seconds;

  core::TeInput input;
  input.topology = &topology_;
  input.optical = &wan_->optical;
  input.slot_seconds = options_.slot_seconds;
  input.now = now_;
  input.demands.reserve(active_order_.size());
  double total_demand = 0.0;
  for (int id : active_order_) {
    const Record* rec = FindRecord(id);
    core::TransferDemand d;
    d.id = id;
    d.src = rec->request.src;
    d.dst = rec->request.dst;
    d.remaining = rec->remaining;
    d.rate_cap = rec->remaining / options_.slot_seconds;
    d.deadline = rec->request.deadline;
    d.slots_waited = rec->slots_waited;
    input.demands.push_back(d);
    total_demand += rec->remaining;
  }

  const bool recompute =
      options_.mode == ServiceMode::kPassthrough || ShouldRecompute();
  core::TeOutput output;
  std::set<sim::LinkKey> changed;
  if (recompute) {
    OWAN_SPAN(span, "service", "recompute");
    span.AddArg("active", static_cast<double>(active_order_.size()));
    const auto t0 = std::chrono::steady_clock::now();
    output = scheme_->Compute(input);
    const double compute_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stats_.compute_seconds += compute_s;
    OWAN_HISTO("service.compute_seconds", ::owan::obs::Unit::kSeconds,
               compute_s);
    frozen_.clear();
    for (size_t i = 0;
         i < output.allocations.size() && i < input.demands.size(); ++i) {
      frozen_[input.demands[i].id] = output.allocations[i];
    }
    if (output.new_topology && !(*output.new_topology == topology_)) {
      changed = sim::ChangedLinks(topology_, *output.new_topology);
      stats_.topology_changes += topology_.DistanceTo(*output.new_topology);
      topology_ = *output.new_topology;
    }
    ++stats_.recomputes;
    OWAN_COUNT("service.recomputes");
    last_recompute_slot_ = static_cast<int64_t>(
        std::floor((now_ + 1e-9) / options_.slot_seconds));
    last_recompute_demand_ = total_demand;
    for (Shard& s : shards_) s.demand_added = 0.0;
    force_recompute_ = false;
  } else {
    // Coast: the data plane keeps the last computed rates; transfers that
    // arrived since then wait (their stall time is the price of staleness,
    // bounded by max_stale_slots).
    output.allocations.reserve(active_order_.size());
    for (int id : active_order_) {
      auto it = frozen_.find(id);
      core::TransferAllocation a;
      a.id = id;
      if (it != frozen_.end()) a = it->second;
      output.allocations.push_back(std::move(a));
    }
    ++stats_.coasts;
    OWAN_COUNT("service.coasts");
  }

  ++stats_.slots;
  double slot_rate = 0.0;
  for (const core::TransferAllocation& a : output.allocations) {
    slot_rate += a.TotalRate();
  }
  stats_.slot_throughput.emplace_back(now_, slot_rate);
  OWAN_HISTO("service.slot_rate_gbps", ::owan::obs::Unit::kGigabits,
             slot_rate);

  std::vector<int> still_active;
  still_active.reserve(active_order_.size());
  for (size_t ai = 0; ai < active_order_.size(); ++ai) {
    const int id = active_order_[ai];
    Record& rec = *FindRecord(id);
    const core::TransferAllocation& alloc =
        ai < output.allocations.size() ? output.allocations[ai]
                                       : core::TransferAllocation{};
    const sim::SlotProgress p = sim::ProgressTransfer(
        rec.request, rec.remaining, alloc, changed, now_, dur,
        options_.slot_seconds, options_.reconfig_penalty_s);

    if (rec.request.HasDeadline()) {
      rec.delivered_by_deadline += std::min(p.deadline_part, p.delivered);
    }
    rec.delivered += p.delivered;
    stats_.delivered_gigabits += p.delivered;

    if (p.finishes) {
      rec.completed = true;
      rec.completed_at = p.completed_at;
      if (options_.mode == ServiceMode::kOnline) {
        admission_.Release(id, now_);
      }
      FinalizeCompletion(id, rec);
    } else {
      rec.remaining -= p.delivered;
      rec.slots_waited = p.delivered > 1e-9 ? 0 : rec.slots_waited + 1;
      if (p.total_rate <= 1e-9) rec.stalled_s += dur;
      still_active.push_back(id);
    }
  }
  active_order_ = std::move(still_active);
  RecordQueueDepth();
  now_ += dur;
}

bool ControllerService::Step() {
  if (now_ >= options_.max_time_s) return false;

  ExpireAndRetryPending();
  IngestArrivals();

  if (active_order_.empty()) {
    const bool arrivals_left =
        (stream_ && stream_consumed_ < stream_limit_) || !queued_.empty();
    if (!arrivals_left && pending_.empty()) return false;
    // Jump to the slot containing the next arrival (same arithmetic as the
    // batch simulator's idle fast-forward); with only pending requests
    // left, step one slot at a time until their windows expire.
    double target = now_ + options_.slot_seconds;
    if (arrivals_left) {
      const double arr = stream_ && stream_consumed_ < stream_limit_ &&
                                 (queued_.empty() ||
                                  stream_->Peek().arrival <=
                                      queued_.front().arrival)
                             ? stream_->Peek().arrival
                             : queued_.front().arrival;
      const double slots_ahead = std::floor(arr / options_.slot_seconds);
      target = std::max(now_ + options_.slot_seconds,
                        slots_ahead * options_.slot_seconds);
    }
    now_ = target;
    return true;
  }

  ProgressSlot();
  return true;
}

void ControllerService::Run() {
  OWAN_SPAN(span, "service", "run");
  while (Step()) {
  }
}

void ControllerService::RunUntilIngested(uint64_t n) {
  while (stats_.requests < n && Step()) {
  }
}

uint64_t ControllerService::Fingerprint() const {
  uint64_t acc = fp_acc_;
  Mix(acc, Bits(now_));
  Mix(acc, stats_.slots);
  for (int id : active_order_) {
    const auto& records =
        shards_[static_cast<size_t>(id) % shards_.size()].records;
    auto it = records.find(id);
    Mix(acc, static_cast<uint64_t>(id));
    Mix(acc, Bits(it->second.remaining));
  }
  for (int id : pending_) Mix(acc, static_cast<uint64_t>(id));
  return acc;
}

sim::SimResult ControllerService::ToSimResult() const {
  if (!options_.retain_records) {
    throw std::logic_error(
        "ControllerService::ToSimResult needs retain_records");
  }
  sim::SimResult result;
  result.transfers.reserve(submission_order_.size());
  result.makespan = stats_.makespan;
  for (int id : submission_order_) {
    const auto& records =
        shards_[static_cast<size_t>(id) % shards_.size()].records;
    const Record& rec = records.at(id);
    sim::TransferRecord t;
    t.request = rec.request;
    t.admitted = rec.verdict == Verdict::kAdmitted;
    t.completed = rec.completed;
    t.completed_at = rec.completed_at;
    t.delivered = rec.delivered;
    t.delivered_by_deadline = rec.delivered_by_deadline;
    t.stalled_s = rec.stalled_s;
    if (!t.completed) {
      // The batch simulator counts every unfinished-but-served transfer as
      // completing at the cap. Online rejects/pendings never ran — they
      // keep completed_at = -1.
      const bool served = options_.mode == ServiceMode::kPassthrough ||
                          rec.verdict == Verdict::kAdmitted;
      if (served) {
        t.completed_at = options_.max_time_s;
        result.makespan = std::max(result.makespan, options_.max_time_s);
      }
    }
    result.transfers.push_back(std::move(t));
  }
  result.slots = static_cast<int>(stats_.slots);
  result.topology_changes = static_cast<int>(stats_.topology_changes);
  result.compute_seconds = stats_.compute_seconds;
  result.slot_throughput = stats_.slot_throughput;
  return result;
}

std::string ControllerService::Checkpoint() const {
  std::ostringstream os;
  os.precision(17);
  os << "owan-checkpoint v4\n";
  os << "now " << now_ << "\n";
  os << "mode " << static_cast<int>(options_.mode) << "\n";
  os << "svc-counters " << stats_.requests << " " << stats_.admitted << " "
     << stats_.rejected << " " << stats_.pending_enqueued << " "
     << stats_.pending_admitted << " " << stats_.pending_rejected << " "
     << stats_.completed << " " << stats_.slots << " " << stats_.recomputes
     << " " << stats_.coasts << " " << stats_.retry_rounds << " "
     << stats_.topology_changes << "\n";
  os << "svc-accum " << stats_.compute_seconds << " "
     << stats_.delivered_gigabits << " " << stats_.makespan << "\n";
  os << "svc-latency";
  for (uint64_t v : stats_.decision_latency_slots) os << " " << v;
  os << "\n";
  os << "svc-qdepth";
  for (uint64_t v : stats_.queue_depth) os << " " << v;
  os << "\n";
  double added = 0.0;
  for (const Shard& s : shards_) added += s.demand_added;
  os << "svc-clock " << last_recompute_slot_ << " " << added << " "
     << last_recompute_demand_ << " " << force_recompute_ << "\n";
  os << "fingerprint " << fp_acc_ << "\n";
  if (stream_) os << "stream " << stream_consumed_ << "\n";
  os << "topology " << topology_.NumSites() << "\n";
  for (const core::Link& l : topology_.Links()) {
    os << "slink " << l.u << " " << l.v << " " << l.units << "\n";
  }
  for (const core::Request& r : queued_) {
    os << "qreq " << r.id << " " << r.src << " " << r.dst << " " << r.size
       << " " << r.arrival << " " << r.deadline << "\n";
  }
  // Records in a deterministic order: submission order when retained,
  // ascending id otherwise (only live records exist then).
  std::vector<int> rec_order;
  if (options_.retain_records) {
    rec_order = submission_order_;
  } else {
    for (const Shard& s : shards_) {
      for (const auto& [id, rec] : s.records) rec_order.push_back(id);
    }
    std::sort(rec_order.begin(), rec_order.end());
  }
  for (int id : rec_order) {
    const Record& rec =
        shards_[static_cast<size_t>(id) % shards_.size()].records.at(id);
    os << "rec " << id << " " << rec.request.src << " " << rec.request.dst
       << " " << rec.request.size << " " << rec.request.arrival << " "
       << rec.request.deadline << " " << static_cast<int>(rec.verdict) << " "
       << rec.decided_at << " " << rec.remaining << " " << rec.delivered
       << " " << rec.delivered_by_deadline << " " << rec.stalled_s << " "
       << rec.slots_waited << " " << rec.completed << " " << rec.completed_at
       << "\n";
  }
  os << "active " << active_order_.size();
  for (int id : active_order_) os << " " << id;
  os << "\n";
  os << "pendq " << pending_.size();
  for (int id : pending_) os << " " << id;
  os << "\n";
  for (const auto& [t, rate] : stats_.slot_throughput) {
    os << "tp " << t << " " << rate << "\n";
  }
  for (const auto& [id, alloc] : frozen_) {
    os << "froute " << id << " " << alloc.paths.size() << "\n";
    control::WritePaths(os, "fpath", alloc.paths);
  }
  admission_.Checkpoint(os);
  return os.str();
}

ControllerService ControllerService::Restore(
    const topo::Wan* wan, std::unique_ptr<core::TeScheme> scheme,
    const std::string& checkpoint, ServiceOptions options) {
  std::istringstream is(checkpoint);
  std::string line;
  if (!std::getline(is, line) || line != "owan-checkpoint v4") {
    throw std::invalid_argument(
        "ControllerService::Restore: bad checkpoint header");
  }
  ControllerService c(wan, std::move(scheme), options);
  core::Topology topo;
  core::TransferAllocation* froute = nullptr;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "now") {
      ls >> c.now_;
    } else if (tag == "mode") {
      int m = 0;
      ls >> m;
      c.options_.mode = static_cast<ServiceMode>(m);
    } else if (tag == "svc-counters") {
      ls >> c.stats_.requests >> c.stats_.admitted >> c.stats_.rejected >>
          c.stats_.pending_enqueued >> c.stats_.pending_admitted >>
          c.stats_.pending_rejected >> c.stats_.completed >> c.stats_.slots >>
          c.stats_.recomputes >> c.stats_.coasts >> c.stats_.retry_rounds >>
          c.stats_.topology_changes;
    } else if (tag == "svc-accum") {
      ls >> c.stats_.compute_seconds >> c.stats_.delivered_gigabits >>
          c.stats_.makespan;
    } else if (tag == "svc-latency") {
      for (uint64_t& v : c.stats_.decision_latency_slots) ls >> v;
    } else if (tag == "svc-qdepth") {
      for (uint64_t& v : c.stats_.queue_depth) ls >> v;
    } else if (tag == "svc-clock") {
      double added = 0.0;
      ls >> c.last_recompute_slot_ >> added >> c.last_recompute_demand_ >>
          c.force_recompute_;
      if (!ls.fail()) c.shards_[0].demand_added = added;
    } else if (tag == "fingerprint") {
      ls >> c.fp_acc_;
    } else if (tag == "stream") {
      ls >> c.stream_resume_cursor_;
    } else if (tag == "topology") {
      int n = 0;
      ls >> n;
      topo = core::Topology(n);
    } else if (tag == "slink") {
      int u, v, units;
      ls >> u >> v >> units;
      if (!ls.fail()) topo.AddUnits(u, v, units);
    } else if (tag == "qreq") {
      core::Request r;
      ls >> r.id >> r.src >> r.dst >> r.size >> r.arrival >> r.deadline;
      if (!ls.fail()) c.queued_.push_back(r);
    } else if (tag == "rec") {
      Record rec;
      int id = -1, verdict = 0;
      ls >> id >> rec.request.src >> rec.request.dst >> rec.request.size >>
          rec.request.arrival >> rec.request.deadline >> verdict >>
          rec.decided_at >> rec.remaining >> rec.delivered >>
          rec.delivered_by_deadline >> rec.stalled_s >> rec.slots_waited >>
          rec.completed >> rec.completed_at;
      if (!ls.fail()) {
        rec.request.id = id;
        rec.verdict = static_cast<Verdict>(verdict);
        c.ShardFor(id).records.emplace(id, std::move(rec));
        if (c.options_.retain_records) c.submission_order_.push_back(id);
      }
    } else if (tag == "active") {
      size_t n = 0;
      ls >> n;
      for (size_t k = 0; k < n && !ls.fail(); ++k) {
        int id;
        ls >> id;
        c.active_order_.push_back(id);
      }
    } else if (tag == "pendq") {
      size_t n = 0;
      ls >> n;
      for (size_t k = 0; k < n && !ls.fail(); ++k) {
        int id;
        ls >> id;
        c.pending_.push_back(id);
      }
    } else if (tag == "tp") {
      double t = 0.0, rate = 0.0;
      ls >> t >> rate;
      if (!ls.fail()) c.stats_.slot_throughput.emplace_back(t, rate);
    } else if (tag == "froute") {
      int id = -1;
      size_t n = 0;
      ls >> id >> n;
      if (!ls.fail()) {
        core::TransferAllocation a;
        a.id = id;
        froute = &c.frozen_.emplace(id, std::move(a)).first->second;
      }
    } else if (tag == "fpath") {
      if (froute == nullptr) {
        throw std::invalid_argument(
            "ControllerService::Restore: fpath before froute");
      }
      core::PathAllocation pa;
      if (control::ReadPathBody(ls, pa)) {
        froute->paths.push_back(std::move(pa));
      }
    } else if (!c.admission_.RestoreLine(tag, ls)) {
      throw std::invalid_argument(
          "ControllerService::Restore: unknown tag: " + tag);
    }
    if (ls.fail()) {
      throw std::invalid_argument(
          "ControllerService::Restore: corrupt line: " + line);
    }
  }
  if (topo.NumSites() > 0) c.topology_ = topo;
  c.admission_.FinishRestore();
  return c;
}

}  // namespace owan::service
