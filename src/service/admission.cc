#include "service/admission.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "net/shortest_path.h"
#include "obs/obs.h"

namespace owan::service {

namespace {
constexpr double kEps = 1e-7;
}

AdmissionController::AdmissionController(const net::Graph& fixed_topology,
                                         AdmissionOptions options)
    : topo_(fixed_topology), options_(options) {}

int64_t AdmissionController::SlotIndex(double t) const {
  return static_cast<int64_t>(std::floor((t + 1e-9) / options_.slot_seconds));
}

std::vector<double>& AdmissionController::SlotResidual(int64_t slot) {
  auto it = residual_.find(slot);
  if (it == residual_.end()) {
    std::vector<double> caps(static_cast<size_t>(topo_.NumEdges()));
    for (net::EdgeId e = 0; e < topo_.NumEdges(); ++e) {
      caps[static_cast<size_t>(e)] =
          topo_.edge(e).capacity * options_.slot_seconds;
    }
    it = residual_.emplace(slot, std::move(caps)).first;
  }
  return it->second;
}

Admission AdmissionController::Offer(const core::Request& r, double now) {
  if (!r.HasDeadline()) {
    // Best-effort traffic is never gated — it rides leftover capacity.
    ++admitted_;
    return Admission::kAdmitted;
  }

  auto key = std::make_pair(r.src, r.dst);
  auto pit = path_cache_.find(key);
  if (pit == path_cache_.end()) {
    pit = path_cache_
              .emplace(key, net::KShortestPaths(topo_, r.src, r.dst,
                                                options_.k_paths))
              .first;
  }
  const std::vector<net::Path>& paths = pit->second;
  if (paths.empty()) {
    ++rejected_;
    return Admission::kRejected;
  }

  // The transfer can use the full slots between its first boundary at or
  // after `now` (it activates at a slot boundary) and its deadline.
  const int64_t first =
      static_cast<int64_t>(std::ceil((now - 1e-9) / options_.slot_seconds));
  const int64_t last =
      static_cast<int64_t>(std::floor(r.deadline / options_.slot_seconds)) -
      1;
  if (last < first) {
    ++rejected_;
    return Admission::kRejected;
  }

  double remaining = r.size;
  std::map<int64_t, std::vector<EdgeVolume>> plan;
  std::map<int64_t, std::vector<double>> tentative;

  for (int64_t s = first; s <= last && remaining > kEps; ++s) {
    std::vector<double>& res = SlotResidual(s);
    std::vector<double>& tent = tentative[s];
    if (tent.empty()) tent.assign(res.size(), 0.0);
    for (const net::Path& p : paths) {
      if (remaining <= kEps) break;
      double avail = remaining;
      for (net::EdgeId e : p.edges) {
        avail = std::min(avail, res[static_cast<size_t>(e)] -
                                    tent[static_cast<size_t>(e)]);
      }
      if (avail <= kEps) continue;
      for (net::EdgeId e : p.edges) tent[static_cast<size_t>(e)] += avail;
      plan[s].push_back(EdgeVolume{p.edges, avail});
      remaining -= avail;
    }
  }

  if (remaining > kEps) {
    // Not rejected outright: the window is open and a Release may free
    // enough future capacity. The caller queues it and re-offers.
    return Admission::kPending;
  }

  for (auto& [s, tent] : tentative) {
    std::vector<double>& res = SlotResidual(s);
    for (size_t e = 0; e < res.size(); ++e) res[e] -= tent[e];
  }
  reservations_[r.id] = std::move(plan);
  ++admitted_;
  OWAN_COUNT("service.admission_booked");
  return Admission::kAdmitted;
}

double AdmissionController::Release(int id, double now) {
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return 0.0;
  const int64_t current = SlotIndex(now);
  double released = 0.0;
  // The slot containing `now` (and everything before it) has already been
  // spent serving the transfer; only strictly-future slots come back. The
  // elapsed bookings stay in the table — the residual ledger still reflects
  // them, so dropping them here would make Audit() see phantom drift —
  // until GarbageCollect retires slot and ledger together.
  auto& slots = it->second;
  for (auto sit = slots.upper_bound(current); sit != slots.end();
       sit = slots.erase(sit)) {
    std::vector<double>& res = SlotResidual(sit->first);
    for (const EdgeVolume& ev : sit->second) {
      for (net::EdgeId e : ev.edges) res[static_cast<size_t>(e)] += ev.volume;
      released += ev.volume;
    }
  }
  if (slots.empty()) reservations_.erase(it);
  if (released > kEps) {
    capacity_released_ = true;
    OWAN_HISTO("service.released_gigabits", ::owan::obs::Unit::kGigabits,
               released);
  }
  return released;
}

void AdmissionController::GarbageCollect(double now) {
  const int64_t current = SlotIndex(now);
  residual_.erase(residual_.begin(), residual_.lower_bound(current));
  for (auto it = reservations_.begin(); it != reservations_.end();) {
    auto& slots = it->second;
    slots.erase(slots.begin(), slots.lower_bound(current));
    it = slots.empty() ? reservations_.erase(it) : std::next(it);
  }
}

std::vector<std::string> AdmissionController::Audit() const {
  std::vector<std::string> violations;
  // Reconstruct per-slot bookings from the reservation table and compare
  // with the ledger. Only slots with a residual entry are checkable (lazily
  // absent slots are at full capacity by construction).
  std::map<int64_t, std::vector<double>> booked;
  for (const auto& [id, slots] : reservations_) {
    for (const auto& [s, evs] : slots) {
      std::vector<double>& b = booked[s];
      if (b.empty()) b.assign(static_cast<size_t>(topo_.NumEdges()), 0.0);
      for (const EdgeVolume& ev : evs) {
        for (net::EdgeId e : ev.edges) b[static_cast<size_t>(e)] += ev.volume;
      }
    }
  }
  for (const auto& [s, res] : residual_) {
    for (net::EdgeId e = 0; e < topo_.NumEdges(); ++e) {
      const double cap = topo_.edge(e).capacity * options_.slot_seconds;
      const double used =
          booked.count(s) ? booked[s][static_cast<size_t>(e)] : 0.0;
      const double r = res[static_cast<size_t>(e)];
      if (r < -1e-6) {
        violations.push_back("slot " + std::to_string(s) + " edge " +
                             std::to_string(e) + " oversubscribed: residual " +
                             std::to_string(r));
      }
      if (std::abs(cap - used - r) > 1e-6 * std::max(1.0, cap)) {
        violations.push_back("slot " + std::to_string(s) + " edge " +
                             std::to_string(e) +
                             " ledger drift: cap-used=" +
                             std::to_string(cap - used) + " residual=" +
                             std::to_string(r));
      }
    }
  }
  for (const auto& [s, b] : booked) {
    if (residual_.count(s)) continue;
    // Bookings on a slot with no ledger entry means the ledger lost track.
    violations.push_back("slot " + std::to_string(s) +
                         " has bookings but no residual entry");
  }
  return violations;
}

void AdmissionController::Checkpoint(std::ostream& os) const {
  os << "adm " << admitted_ << " " << rejected_ << " " << capacity_released_
     << "\n";
  for (const auto& [id, slots] : reservations_) {
    os << "aresv " << id << " " << slots.size() << "\n";
    for (const auto& [s, evs] : slots) {
      os << "aslot " << s << " " << evs.size() << "\n";
      for (const EdgeVolume& ev : evs) {
        os << "abook " << ev.volume << " " << ev.edges.size();
        for (net::EdgeId e : ev.edges) os << " " << e;
        os << "\n";
      }
    }
  }
  // The residual ledger itself is not serialized: FinishRestore rebuilds it
  // from the reservations, and slots that carried bookings later fully
  // released are indistinguishable from lazily-created full slots.
}

bool AdmissionController::RestoreLine(const std::string& tag,
                                      std::istream& ls) {
  if (tag == "adm") {
    ls >> admitted_ >> rejected_ >> capacity_released_;
  } else if (tag == "aresv") {
    int id = 0;
    size_t nslots = 0;
    ls >> id >> nslots;
    if (!ls.fail()) {
      restore_resv_ = &reservations_[id];
      restore_slot_ = nullptr;
    }
  } else if (tag == "aslot") {
    int64_t s = 0;
    size_t n = 0;
    ls >> s >> n;
    if (!ls.fail() && restore_resv_ != nullptr) {
      restore_slot_ = &(*restore_resv_)[s];
    } else if (restore_resv_ == nullptr) {
      ls.setstate(std::ios::failbit);
    }
  } else if (tag == "abook") {
    EdgeVolume ev;
    size_t n = 0;
    ls >> ev.volume >> n;
    for (size_t k = 0; k < n && !ls.fail(); ++k) {
      net::EdgeId e;
      ls >> e;
      ev.edges.push_back(e);
    }
    if (restore_slot_ == nullptr) ls.setstate(std::ios::failbit);
    if (!ls.fail()) restore_slot_->push_back(std::move(ev));
  } else {
    return false;
  }
  return true;
}

void AdmissionController::FinishRestore() {
  residual_.clear();
  for (const auto& [id, slots] : reservations_) {
    for (const auto& [s, evs] : slots) {
      std::vector<double>& res = SlotResidual(s);
      for (const EdgeVolume& ev : evs) {
        for (net::EdgeId e : ev.edges) {
          res[static_cast<size_t>(e)] -= ev.volume;
        }
      }
    }
  }
  restore_resv_ = nullptr;
  restore_slot_ = nullptr;
}

}  // namespace owan::service
