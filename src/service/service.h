#ifndef OWAN_SERVICE_SERVICE_H_
#define OWAN_SERVICE_SERVICE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/te_scheme.h"
#include "core/topology.h"
#include "service/admission.h"
#include "sim/simulator.h"
#include "topo/topologies.h"
#include "workload/stream.h"

namespace owan::service {

// How the service makes admission decisions and paces recomputes.
enum class ServiceMode : uint8_t {
  // Batch parity: every arrival is admitted via the TE scheme's own Admit
  // hook at slot boundaries and every slot recomputes — the event loop then
  // reproduces sim::RunSimulation bit-for-bit (the nominal-parity anchor).
  kPassthrough = 0,
  // Streaming: the AdmissionController gates deadline traffic at arrival
  // time, rejected-for-now requests wait in the pending queue, and the TE
  // scheme only recomputes when the batched-staleness triggers fire.
  kOnline = 1,
};

struct ServiceOptions {
  double slot_seconds = 300.0;
  double reconfig_penalty_s = 0.0;
  double max_time_s = 72.0 * 3600.0;
  ServiceMode mode = ServiceMode::kOnline;

  // Per-transfer state is sharded by id — the staleness trigger reads only
  // the per-shard demand aggregates, never the records themselves.
  int num_shards = 8;

  AdmissionOptions admission;  // k_paths; slot_seconds is kept in sync

  // ---- bounded-staleness recompute triggers (kOnline) ----
  // Recompute when newly-admitted demand since the last recompute exceeds
  // this fraction of the demand the last recompute saw...
  double recompute_demand_frac = 0.25;
  // ...or when this many slots have been coasted on frozen allocations.
  int max_stale_slots = 4;

  // Keep per-request records after they finalize so ToSimResult() can
  // reconstruct a full sim::SimResult. Turn off for multi-million-request
  // soaks: finalized records fold into the fingerprint and aggregate stats,
  // then free their memory.
  bool retain_records = true;
};

// Aggregate outcome counters — everything the soak/bench path needs without
// retaining per-request records.
struct ServiceStats {
  uint64_t requests = 0;        // arrivals ingested
  uint64_t admitted = 0;        // includes pending later admitted
  uint64_t rejected = 0;        // includes pending later expired
  uint64_t pending_enqueued = 0;
  uint64_t pending_admitted = 0;  // resolved from the queue
  uint64_t pending_rejected = 0;  // expired in the queue
  uint64_t completed = 0;
  uint64_t slots = 0;
  uint64_t recomputes = 0;  // slots that ran scheme.Compute
  uint64_t coasts = 0;      // slots served from frozen allocations
  uint64_t retry_rounds = 0;
  int64_t topology_changes = 0;
  double compute_seconds = 0.0;  // wall-clock inside scheme.Compute
  double delivered_gigabits = 0.0;
  double makespan = 0.0;

  // Decision latency in whole slots from arrival to final verdict
  // (bucket 15 = 15+). Immediate decisions land in bucket 0.
  std::array<uint64_t, 16> decision_latency_slots{};
  // Pending-queue depth sampled once per progressed slot, log2 buckets:
  // 0, 1, 2-3, 4-7, ... (bucket 15 = 16384+).
  std::array<uint64_t, 16> queue_depth{};

  // Per-slot (start time, total allocated Gbps) — same series the batch
  // simulator records.
  std::vector<std::pair<double, double>> slot_throughput;
};

// The streaming controller service: a persistent event loop around a TE
// scheme that consumes a request stream on a deterministic virtual clock,
// gates arrivals through online admission control, aggregates admitted
// demand across shards, and recomputes the TE state in batches instead of
// every slot. Epoch snapshots ("owan-checkpoint v4") capture the entire
// request-stream state so a crashed service resumes bit-identically.
//
// No wall time enters any decision: arrivals, admissions, retries, and
// recomputes are all keyed to the virtual clock, so two runs with the same
// seed produce the same Fingerprint() — which is exactly what the CI soak
// asserts.
class ControllerService {
 public:
  ControllerService(const topo::Wan* wan,
                    std::unique_ptr<core::TeScheme> scheme,
                    ServiceOptions options = {});
  ControllerService(ControllerService&&) = default;

  // Attaches the seeded arrival stream; the loop pulls requests lazily as
  // the virtual clock reaches their arrival times, up to `max_requests`.
  // After Restore(), re-attach the same params/limit: the stream is
  // fast-forwarded to the checkpointed cursor.
  void AttachStream(const workload::StreamParams& params,
                    uint64_t max_requests);

  // Enqueues one explicit request (must be offered in non-decreasing
  // arrival order). Usable alongside or instead of a stream.
  void Submit(const core::Request& r);

  // Runs the event loop until all attached work is decided and drained, or
  // the virtual clock hits max_time_s. Resumable: more Submits (or a
  // Restore) followed by another Run continue the same timeline.
  void Run();
  // Runs until at least `n` requests have been ingested in total, then
  // stops at the next slot boundary — the crash-point hook for
  // checkpoint/restore tests. Run() continues afterwards.
  void RunUntilIngested(uint64_t n);

  const ServiceStats& stats() const { return stats_; }
  double now() const { return now_; }
  const core::Topology& topology() const { return topology_; }
  const AdmissionController& admission() const { return admission_; }
  uint64_t ingested() const { return stats_.requests; }
  int active_transfers() const { return static_cast<int>(active_order_.size()); }
  int pending_requests() const { return static_cast<int>(pending_.size()); }

  // Order-independent-of-wall-time digest of every decision and completion
  // plus the live in-flight state. Equal across a crash/restore boundary
  // and across same-seed reruns.
  uint64_t Fingerprint() const;

  // Rebuilds the batch simulator's result view (requires retain_records).
  // In kPassthrough mode this is bit-identical to sim::RunSimulation on the
  // same inputs.
  sim::SimResult ToSimResult() const;

  // Force the next progressed slot to recompute (the fault-event trigger).
  void ForceRecompute() { force_recompute_ = true; }

  // ---- epoch snapshots (checkpoint v4) ----
  std::string Checkpoint() const;
  static ControllerService Restore(const topo::Wan* wan,
                                   std::unique_ptr<core::TeScheme> scheme,
                                   const std::string& checkpoint,
                                   ServiceOptions options = {});

 private:
  enum class Verdict : uint8_t {
    kUndecided = 0,
    kAdmitted = 1,
    kPending = 2,
    kRejected = 3,
  };

  struct Record {
    core::Request request;
    Verdict verdict = Verdict::kUndecided;
    double decided_at = 0.0;
    double remaining = 0.0;
    double delivered = 0.0;
    double delivered_by_deadline = 0.0;
    double stalled_s = 0.0;
    int slots_waited = 0;
    bool completed = false;
    double completed_at = -1.0;
  };

  struct Shard {
    std::unordered_map<int, Record> records;
    // Demand admitted into this shard since the last recompute — the only
    // thing the staleness trigger reads.
    double demand_added = 0.0;
  };

  // One event-loop iteration (one slot, or one idle clock jump). Returns
  // false when all attached work is drained.
  bool Step();
  void IngestArrivals();
  void DecideAndActivate(const core::Request& r, double decision_time);
  void ExpireAndRetryPending();
  void ProgressSlot();
  bool ShouldRecompute() const;
  void FinalizeDecision(Record& rec, Verdict v, double decision_time);
  void FinalizeCompletion(int id, Record& rec);
  void RecordQueueDepth();

  Shard& ShardFor(int id) {
    return shards_[static_cast<size_t>(id) % shards_.size()];
  }
  Record* FindRecord(int id);

  const topo::Wan* wan_;
  std::unique_ptr<core::TeScheme> scheme_;
  ServiceOptions options_;

  core::Topology topology_;
  AdmissionController admission_;
  std::vector<Shard> shards_;

  // Arrival sources: the optional seeded stream plus the explicit queue.
  std::optional<workload::ArrivalStream> stream_;
  uint64_t stream_limit_ = 0;
  uint64_t stream_consumed_ = 0;
  // Cursor recovered from a v4 checkpoint before AttachStream is called.
  uint64_t stream_resume_cursor_ = 0;
  std::deque<core::Request> queued_;

  double now_ = 0.0;
  std::vector<int> active_order_;   // activation order — drives Compute
  std::deque<int> pending_;         // admission-pending, FIFO
  std::map<int, core::TransferAllocation> frozen_;  // last computed rates
  std::vector<int> submission_order_;  // all ids ever seen (retain only)

  int64_t last_recompute_slot_ = -(1 << 30);
  double last_recompute_demand_ = 0.0;
  bool force_recompute_ = false;

  ServiceStats stats_;
  uint64_t fp_acc_ = 14695981039346656037ULL;  // FNV-1a offset basis
};

}  // namespace owan::service

#endif  // OWAN_SERVICE_SERVICE_H_
