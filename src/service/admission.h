#ifndef OWAN_SERVICE_ADMISSION_H_
#define OWAN_SERVICE_ADMISSION_H_

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/transfer.h"
#include "net/graph.h"

namespace owan::service {

// Outcome of offering one request to the admission controller.
enum class Admission : uint8_t {
  kAdmitted = 0,  // volume fully booked before the deadline (or no deadline)
  kPending = 1,   // infeasible now, but the deadline window is still open —
                  // re-offer after a Release frees future capacity
  kRejected = 2,  // no usable window (deadline already past, or no path)
};

struct AdmissionOptions {
  double slot_seconds = 300.0;
  int k_paths = 3;
};

// The service's online admission gate: an Amoeba-style future-slot residual
// ledger over the WAN's fixed default topology (AmoebaTe in src/te/amoeba
// is the batch oracle for this logic). Offer() greedily packs the request's
// volume into the slots between its first usable boundary and its deadline
// along k shortest paths; if everything fits, the bookings stick and the
// request is admitted. The check is deliberately cheap — O(window × paths)
// against a per-slot per-edge array — so the service can decide at arrival
// time without running the TE scheme.
//
// The ledger is conservative, not exact: the recompute loop may deliver
// more than the reservation implies (topology reconfiguration) or less
// (contention with best-effort traffic). It bounds what admission promises,
// not what the scheme allocates.
class AdmissionController {
 public:
  AdmissionController(const net::Graph& fixed_topology,
                      AdmissionOptions options);

  // Decides `r` at virtual time `now` (normally the arrival timestamp).
  // Deadline-free requests are always admitted best-effort (no bookings).
  Admission Offer(const core::Request& r, double now);

  // Returns the not-yet-elapsed reserved volume of `id` to the ledger and
  // drops its reservations (transfer completed, possibly early). Returns
  // the gigabit-volume released; 0 for unknown/best-effort ids.
  double Release(int id, double now);

  // Drops ledger and reservation state for slots strictly before the slot
  // containing `now` — elapsed slots can never be packed again, so keeping
  // them only grows memory over a long stream.
  void GarbageCollect(double now);

  // True when a Release since the last ClearReleased() returned capacity —
  // the only event that can turn a pending request admissible, so the
  // service's retry loop keys off it.
  bool capacity_released() const { return capacity_released_; }
  void ClearReleased() { capacity_released_ = false; }

  int64_t admitted() const { return admitted_; }
  int64_t rejected() const { return rejected_; }
  int64_t live_reservations() const {
    return static_cast<int64_t>(reservations_.size());
  }

  // Consistency check for the fuzz oracle: every slot's residual must equal
  // full capacity minus the live bookings crossing each edge, and nothing
  // may be oversubscribed. Returns human-readable violations; empty = ok.
  std::vector<std::string> Audit() const;

  // ---- checkpoint v4 embedding ----
  // Emits "adm ..." / "aresv ..." / "aslot ..." lines; the service's
  // Checkpoint() calls this inside its own v4 body.
  void Checkpoint(std::ostream& os) const;
  // Consumes one line of the section (tag already extracted). Returns false
  // if the tag is not an admission tag. Call FinishRestore() once all lines
  // are in to rebuild the residual ledger from the reservations.
  bool RestoreLine(const std::string& tag, std::istream& ls);
  void FinishRestore();

 private:
  // Per-slot bookings of one request along one path (edges only — that is
  // all the ledger arithmetic needs).
  struct EdgeVolume {
    std::vector<net::EdgeId> edges;
    double volume = 0.0;
  };

  std::vector<double>& SlotResidual(int64_t slot);
  int64_t SlotIndex(double t) const;

  const net::Graph topo_;
  const AdmissionOptions options_;

  std::map<int64_t, std::vector<double>> residual_;  // slot -> per-edge Gb
  std::map<int, std::map<int64_t, std::vector<EdgeVolume>>> reservations_;
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<net::Path>>
      path_cache_;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  bool capacity_released_ = false;

  // Restore cursors: the reservation / slot currently being filled by
  // aresv/aslot/abook lines. Cleared by FinishRestore.
  std::map<int64_t, std::vector<EdgeVolume>>* restore_resv_ = nullptr;
  std::vector<EdgeVolume>* restore_slot_ = nullptr;
};

}  // namespace owan::service

#endif  // OWAN_SERVICE_ADMISSION_H_
