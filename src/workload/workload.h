#ifndef OWAN_WORKLOAD_WORKLOAD_H_
#define OWAN_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "core/transfer.h"
#include "topo/topologies.h"
#include "util/rng.h"

namespace owan::workload {

// Parameters of the §5.1 synthetic transfer model. Sizes are exponential;
// arrivals span `duration` seconds; site pairs are drawn subject to
// per-site traffic budgets derived from the (synthetic) demand matrix and
// scaled by the load factor lambda; deadlines (if enabled) are uniform in
// [T, sigma*T] after arrival where T is the slot length.
struct WorkloadParams {
  double duration_s = 2.0 * 3600.0;
  double mean_size = 4000.0;      // gigabits (500 GB)
  double load_factor = 1.0;       // lambda
  double deadline_factor = 0.0;   // sigma; <= 1 disables deadlines
  double slot_seconds = 300.0;    // T
  uint64_t seed = 42;
  bool hotspots = false;          // inter-DC "moving hotspot" behaviour
  double hotspot_period_s = 1800.0;
  double hotspot_bias = 0.5;      // chance a transfer originates at the spot
};

// Per-site traffic budgets standing in for the paper's router traffic
// counters: proportional to each site's attached capacity with a random
// site-specific factor, scaled by lambda.
std::vector<double> SiteBudgets(const topo::Wan& wan,
                                const WorkloadParams& params,
                                util::Rng& rng);

// Generates the full request stream, sorted by arrival time.
std::vector<core::Request> GenerateWorkload(const topo::Wan& wan,
                                            const WorkloadParams& params);

// Aggregate site-to-site demand (gigabits) of a request set; used by the
// greedy decoupled baseline to build a demand-proportional topology.
std::vector<std::vector<double>> DemandMatrix(int num_sites,
                                              const std::vector<core::Request>& reqs);

}  // namespace owan::workload

#endif  // OWAN_WORKLOAD_WORKLOAD_H_
