#include "workload/stream.h"

#include <cmath>
#include <stdexcept>

namespace owan::workload {

ArrivalStream::ArrivalStream(int num_sites, StreamParams params)
    : params_(params), num_sites_(num_sites), rng_(params.seed) {
  if (num_sites_ < 2) {
    throw std::invalid_argument("ArrivalStream: need at least 2 sites");
  }
  if (params_.arrivals_per_s <= 0.0) {
    throw std::invalid_argument("ArrivalStream: arrivals_per_s > 0");
  }
  if (params_.bursty) {
    // Start outside a burst; dwell times are exponential around the knobs.
    in_burst_ = false;
    next_flip_ = rng_.Exponential(params_.burst_off_s);
  }
}

const core::Request& ArrivalStream::Peek() {
  if (!peeked_) peeked_ = Generate();
  return *peeked_;
}

core::Request ArrivalStream::Next() {
  if (peeked_) {
    core::Request r = *peeked_;
    peeked_.reset();
    return r;
  }
  return Generate();
}

void ArrivalStream::FastForward(uint64_t n) {
  while (emitted_ < n) (void)Next();
}

core::Request ArrivalStream::Generate() {
  // Advance the arrival clock. Bursty mode is a two-state Markov-modulated
  // Poisson process: draws inside a burst come `burst_factor` times faster,
  // and the off-state rate is scaled so the long-run mean stays
  // arrivals_per_s regardless of the duty cycle.
  if (!params_.bursty) {
    now_ += rng_.Exponential(1.0 / params_.arrivals_per_s);
  } else {
    const double duty =
        params_.burst_on_s / (params_.burst_on_s + params_.burst_off_s);
    const double off_scale =
        (1.0 - duty * params_.burst_factor) / (1.0 - duty);
    const double off_rate =
        params_.arrivals_per_s * std::max(0.05, off_scale);
    const double on_rate = params_.arrivals_per_s * params_.burst_factor;
    for (;;) {
      const double rate = in_burst_ ? on_rate : off_rate;
      const double gap = rng_.Exponential(1.0 / rate);
      if (now_ + gap <= next_flip_) {
        now_ += gap;
        break;
      }
      now_ = next_flip_;
      in_burst_ = !in_burst_;
      next_flip_ = now_ + rng_.Exponential(in_burst_ ? params_.burst_on_s
                                                     : params_.burst_off_s);
    }
  }

  core::Request r;
  r.id = static_cast<int>(emitted_);
  r.arrival = now_;
  r.src = static_cast<net::NodeId>(rng_.Index(static_cast<size_t>(num_sites_)));
  // Uniform over the other sites, without rejection sampling: the draw
  // count per request stays fixed, which keeps FastForward cheap to reason
  // about (every request consumes the same RNG pattern).
  net::NodeId dst = static_cast<net::NodeId>(
      rng_.Index(static_cast<size_t>(num_sites_ - 1)));
  if (dst >= r.src) ++dst;
  r.dst = dst;

  if (rng_.Chance(params_.elephant_fraction)) {
    // Bounded Pareto by inversion: heavy tail capped at elephant_max so a
    // single draw cannot exceed what any schedule could ever deliver.
    const double a = params_.elephant_shape;
    const double lo = params_.elephant_min;
    const double hi = params_.elephant_max;
    const double u = rng_.Uniform();
    const double lo_a = std::pow(lo, a);
    const double hi_a = std::pow(hi, a);
    r.size = std::pow(-(u * hi_a - u * lo_a - hi_a) / (hi_a * lo_a),
                      -1.0 / a);
  } else {
    r.size = std::max(0.01, rng_.Exponential(params_.mice_mean));
  }

  if (rng_.Chance(params_.deadline_fraction)) {
    r.deadline =
        r.arrival + params_.slot_seconds *
                        rng_.Uniform(params_.laxity_min_slots,
                                     params_.laxity_max_slots);
  }
  ++emitted_;
  return r;
}

std::vector<core::Request> TakeStream(const topo::Wan& wan,
                                      const StreamParams& params, int count) {
  ArrivalStream stream(wan.optical.NumSites(), params);
  std::vector<core::Request> reqs;
  reqs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) reqs.push_back(stream.Next());
  return reqs;  // Next() emits in arrival order already
}

}  // namespace owan::workload
