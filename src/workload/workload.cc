#include "workload/workload.h"

#include <algorithm>
#include <cmath>

namespace owan::workload {

std::vector<double> SiteBudgets(const topo::Wan& wan,
                                const WorkloadParams& params,
                                util::Rng& rng) {
  const int n = wan.optical.NumSites();
  std::vector<double> budgets(static_cast<size_t>(n), 0.0);
  const double theta = wan.optical.wavelength_capacity();
  for (int v = 0; v < n; ++v) {
    // A site's traffic scales with its attached WAN capacity — the stand-in
    // for summing the site's trace counters (§5.1) — times a random
    // per-site factor, times lambda. The 0.25 utilisation factor keeps
    // lambda=1 demand around what the default topology can drain over the
    // run, so the load sweep crosses from underload to overload.
    const double ports = wan.optical.site(v).router_ports;
    const double site_factor = rng.Uniform(0.5, 1.5);
    budgets[static_cast<size_t>(v)] = params.load_factor * site_factor *
                                      ports * theta * params.duration_s *
                                      0.25;
  }
  return budgets;
}

std::vector<core::Request> GenerateWorkload(const topo::Wan& wan,
                                            const WorkloadParams& params) {
  util::Rng rng(params.seed);
  const int n = wan.optical.NumSites();
  std::vector<double> budget = SiteBudgets(wan, params, rng);

  std::vector<core::Request> reqs;
  int next_id = 0;
  // Hotspot schedule: one hot site per period (inter-DC §5.1).
  auto hotspot_at = [&](double t) {
    const auto period = static_cast<uint64_t>(t / params.hotspot_period_s);
    util::Rng hs(params.seed * 1315423911ULL + period);
    return static_cast<net::NodeId>(hs.Index(static_cast<size_t>(n)));
  };

  // Keep drawing transfers until the per-site budgets are exhausted (no
  // site pair has budget for an average transfer).
  const int kMaxFailures = 256;
  int consecutive_failures = 0;
  while (consecutive_failures < kMaxFailures) {
    const double arrival = rng.Uniform(0.0, params.duration_s);
    double size = rng.Exponential(params.mean_size);
    size = std::clamp(size, params.mean_size * 0.02, params.mean_size * 8.0);

    net::NodeId src;
    net::NodeId dst;
    bool hotspot_burst = false;
    if (params.hotspots && rng.Chance(params.hotspot_bias)) {
      // Hotspot bursts model a site suddenly generating lots of transfers
      // on top of its steady-state demand (§5.1 inter-DC behaviour), so
      // they are exempt from the source budget.
      src = hotspot_at(arrival);
      dst = static_cast<net::NodeId>(rng.Index(static_cast<size_t>(n)));
      hotspot_burst = true;
    } else {
      src = static_cast<net::NodeId>(rng.Index(static_cast<size_t>(n)));
      dst = static_cast<net::NodeId>(rng.Index(static_cast<size_t>(n)));
    }
    if (src == dst ||
        (!hotspot_burst && budget[static_cast<size_t>(src)] < size) ||
        budget[static_cast<size_t>(dst)] < size) {
      ++consecutive_failures;
      continue;
    }
    consecutive_failures = 0;
    if (!hotspot_burst) budget[static_cast<size_t>(src)] -= size;
    budget[static_cast<size_t>(dst)] -= size;

    core::Request r;
    r.id = next_id++;
    r.src = src;
    r.dst = dst;
    r.size = size;
    r.arrival = arrival;
    if (params.deadline_factor > 1.0) {
      r.deadline = arrival + rng.Uniform(params.slot_seconds,
                                         params.deadline_factor *
                                             params.slot_seconds);
    }
    reqs.push_back(r);
  }

  std::sort(reqs.begin(), reqs.end(),
            [](const core::Request& a, const core::Request& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });
  return reqs;
}

std::vector<std::vector<double>> DemandMatrix(
    int num_sites, const std::vector<core::Request>& reqs) {
  std::vector<std::vector<double>> m(
      static_cast<size_t>(num_sites),
      std::vector<double>(static_cast<size_t>(num_sites), 0.0));
  for (const core::Request& r : reqs) {
    m[static_cast<size_t>(r.src)][static_cast<size_t>(r.dst)] += r.size;
  }
  return m;
}

}  // namespace owan::workload
