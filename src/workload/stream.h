#ifndef OWAN_WORKLOAD_STREAM_H_
#define OWAN_WORKLOAD_STREAM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/transfer.h"
#include "topo/topologies.h"
#include "util/rng.h"

namespace owan::workload {

// Parameters of the streaming arrival model the controller service
// consumes: a continuous (optionally bursty) arrival process carrying a
// heavy-tailed mice+elephant size mix — the C-Share traffic shape — with
// deadline-laxity knobs. Everything is a pure function of `seed`, so the
// same stream can be replayed request-for-request by a restored service.
struct StreamParams {
  // Mean arrival rate in requests per second. With `bursty` the process is
  // Markov-modulated: rate * burst_factor inside bursts, rate scaled down
  // outside so the long-run mean stays `arrivals_per_s`.
  double arrivals_per_s = 0.05;
  bool bursty = false;
  double burst_factor = 8.0;     // rate multiplier inside a burst
  double burst_on_s = 120.0;     // mean burst duration
  double burst_off_s = 1080.0;   // mean gap between bursts

  // Size mix (gigabits): mice are exponential around mice_mean; elephants
  // (drawn with probability elephant_fraction) follow a bounded Pareto —
  // the heavy tail that dominates delivered bytes.
  double elephant_fraction = 0.05;
  double mice_mean = 8.0;          // ~1 GB
  double elephant_min = 800.0;     // ~100 GB
  double elephant_max = 80000.0;   // ~10 TB
  double elephant_shape = 1.2;     // bounded-Pareto alpha (heavier < 2)

  // Deadline laxity: a request carries a deadline with probability
  // deadline_fraction, drawn uniformly in
  //   arrival + [laxity_min_slots, laxity_max_slots] * slot_seconds.
  double deadline_fraction = 1.0;
  double laxity_min_slots = 1.0;
  double laxity_max_slots = 8.0;
  double slot_seconds = 300.0;

  uint64_t seed = 42;
};

// Lazy, resumable request stream over `num_sites` sites: Next() draws the
// next request (ids sequential from 0, arrivals non-decreasing, src != dst
// uniform over sites). The stream never ends — callers bound it by count
// or by arrival horizon. FastForward(n) regenerates and discards the first
// n requests, so a service restored from a checkpoint can resume the exact
// stream from its recorded cursor.
class ArrivalStream {
 public:
  ArrivalStream(int num_sites, StreamParams params);

  const core::Request& Peek();
  core::Request Next();

  uint64_t emitted() const { return emitted_; }
  uint64_t seed() const { return params_.seed; }
  const StreamParams& params() const { return params_; }

  // Regenerate-and-drop until `n` requests have been emitted (no-op if the
  // stream is already past n). O(n), deterministic.
  void FastForward(uint64_t n);

 private:
  core::Request Generate();

  StreamParams params_;
  int num_sites_;
  util::Rng rng_;
  double now_ = 0.0;          // arrival clock
  bool in_burst_ = false;
  double next_flip_ = 0.0;    // burst-state change time (bursty only)
  uint64_t emitted_ = 0;
  std::optional<core::Request> peeked_;
};

// Materialize the first `count` stream requests, sorted by arrival — the
// batch-simulator view of the same traffic (sim::RunSimulation takes a
// vector; the service takes the stream itself).
std::vector<core::Request> TakeStream(const topo::Wan& wan,
                                      const StreamParams& params, int count);

}  // namespace owan::workload

#endif  // OWAN_WORKLOAD_STREAM_H_
