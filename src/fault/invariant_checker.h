#ifndef OWAN_FAULT_INVARIANT_CHECKER_H_
#define OWAN_FAULT_INVARIANT_CHECKER_H_

#include <map>
#include <string>
#include <vector>

#include "core/topology.h"
#include "core/transfer.h"
#include "optical/optical_network.h"

namespace owan::fault {

// Post-slot validation of the cross-layer state the controller/simulator
// just committed (the §3.4 safety contract under failures):
//
//   * the topology never uses more ports than a site's surviving budget,
//   * every network-layer link the topology asks for is realizable on the
//     surviving plant with circuits that cross only live fibers/sites,
//   * allocations ride only links the topology carries, within capacity,
//   * each transfer's allocation connects its own endpoints,
//   * delivered bytes are monotone and never exceed the request size.
//
// Checks are read-only and report violations as human-readable strings
// (empty vector = clean) instead of asserting, so a production run can
// degrade gracefully while tests pin the list to empty.
class InvariantChecker {
 public:
  // Validates one committed slot. `plant` is the blank optical plant with
  // the current failure flags applied (no topology circuits provisioned) —
  // exactly what the scheme was shown. `demands` and `allocations` are
  // parallel; allocations beyond demands.size() are themselves a violation.
  static std::vector<std::string> CheckSlot(
      const core::Topology& topology, const optical::OpticalNetwork& plant,
      const std::vector<core::TransferDemand>& demands,
      const std::vector<core::TransferAllocation>& allocations);

  // Mid-update stage validation (the §4 consistency contract between
  // slots): `lit` is the set of network-layer links currently carrying
  // light — removed circuits already subtracted from the moment teardown
  // starts, added circuits included only once provisioning completed.
  // `installed` are the routes the routers currently hold, with the rates
  // they are actually allowed to push. Flags
  //   * blackholes: a positive-rate route crossing a link with no lit
  //     circuit (traffic sent into the dark), and
  //   * with `check_capacity`, per-link aggregate rate above lit capacity
  //     (the executor clamps rates during updates, so overshoot there is a
  //     logic bug; precomputed schedules skip this — the data plane
  //     rate-adapts, see TraceThroughput).
  static std::vector<std::string> CheckUpdateStage(
      const core::Topology& lit, double theta,
      const std::vector<core::TransferAllocation>& installed,
      bool check_capacity = true);

  // Streaming per-transfer check: call once per slot per transfer with the
  // cumulative delivered gigabits. Flags non-monotone delivery and
  // delivery beyond the request size.
  std::vector<std::string> ObserveTransfer(int id, double delivered,
                                           double size);

  void Reset() { last_delivered_.clear(); }

 private:
  std::map<int, double> last_delivered_;
};

}  // namespace owan::fault

#endif  // OWAN_FAULT_INVARIANT_CHECKER_H_
