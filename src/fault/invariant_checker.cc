#include "fault/invariant_checker.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/provisioned_state.h"

namespace owan::fault {

namespace {

constexpr double kRateEps = 1e-6;

std::string LinkName(net::NodeId u, net::NodeId v) {
  std::ostringstream os;
  os << "(" << u << "," << v << ")";
  return os.str();
}

}  // namespace

std::vector<std::string> InvariantChecker::CheckSlot(
    const core::Topology& topology, const optical::OpticalNetwork& plant,
    const std::vector<core::TransferDemand>& demands,
    const std::vector<core::TransferAllocation>& allocations) {
  std::vector<std::string> violations;
  auto flag = [&](std::string v) { violations.push_back(std::move(v)); };

  if (topology.NumSites() != plant.NumSites()) {
    flag("topology/plant site count mismatch");
    return violations;
  }

  // Port conservation against the surviving budget.
  for (net::NodeId v = 0; v < topology.NumSites(); ++v) {
    const int used = topology.PortsUsed(v);
    const int budget = plant.UsablePorts(v);
    if (used > budget) {
      std::ostringstream os;
      os << "site " << v << " uses " << used << " ports but only " << budget
         << " survive";
      flag(os.str());
    }
  }

  // Links must not terminate at failed sites, and the realization of the
  // topology on the surviving plant must use only live fibers (the plant's
  // own CheckInvariants rejects any circuit crossing a failed fiber/site).
  core::ProvisionedState state(plant);
  state.SyncTo(topology);
  std::string plant_error;
  if (!state.optical().CheckInvariants(&plant_error)) {
    flag("realized plant state corrupt: " + plant_error);
  }
  for (const core::Link& l : topology.Links()) {
    if (plant.SiteFailed(l.u) || plant.SiteFailed(l.v)) {
      flag("link " + LinkName(l.u, l.v) + " terminates at a failed site");
    }
  }

  // Allocations: per-link aggregate rate vs. installed capacity, and path
  // endpoints vs. the owning transfer.
  if (allocations.size() > demands.size()) {
    flag("more allocations than demands");
  }
  const double theta = plant.wavelength_capacity();
  std::map<std::pair<net::NodeId, net::NodeId>, double> link_rate;
  for (size_t i = 0; i < allocations.size(); ++i) {
    const core::TransferAllocation& a = allocations[i];
    for (const core::PathAllocation& pa : a.paths) {
      if (pa.rate < -kRateEps) {
        flag("negative rate on transfer " + std::to_string(a.id));
      }
      if (pa.rate <= kRateEps) continue;
      if (i < demands.size() && !pa.path.nodes.empty() &&
          (pa.path.src() != demands[i].src ||
           pa.path.dst() != demands[i].dst)) {
        flag("allocation path of transfer " + std::to_string(a.id) +
             " does not connect its endpoints");
      }
      for (size_t k = 0; k + 1 < pa.path.nodes.size(); ++k) {
        net::NodeId u = pa.path.nodes[k];
        net::NodeId v = pa.path.nodes[k + 1];
        if (u > v) std::swap(u, v);
        link_rate[{u, v}] += pa.rate;
      }
    }
  }
  for (const auto& [link, rate] : link_rate) {
    const int units = topology.Units(link.first, link.second);
    if (units <= 0) {
      flag("allocation on dead/absent link " +
           LinkName(link.first, link.second));
      continue;
    }
    // Under QoT the installed capacity is whatever the modulation table
    // granted the realized circuits, not units * theta. The freshly derived
    // `state` above is the same derivation the controller canonicalizes its
    // output against (ComputeNetworkState re-realizes under QoT), so the
    // comparison is exact, not a tolerance game.
    const double cap = plant.qot().enabled
                           ? state.RealizedCapacityGbps(link.first, link.second)
                           : units * theta;
    if (rate > cap * (1.0 + 1e-9) + kRateEps) {
      std::ostringstream os;
      os << "link " << LinkName(link.first, link.second) << " allocated "
         << rate << " Gbps over its " << cap << " Gbps capacity";
      flag(os.str());
    }
  }

  return violations;
}

std::vector<std::string> InvariantChecker::CheckUpdateStage(
    const core::Topology& lit, double theta,
    const std::vector<core::TransferAllocation>& installed,
    bool check_capacity) {
  std::vector<std::string> violations;
  std::map<std::pair<net::NodeId, net::NodeId>, double> link_rate;
  for (const core::TransferAllocation& a : installed) {
    for (const core::PathAllocation& pa : a.paths) {
      if (pa.rate <= kRateEps) continue;
      for (size_t k = 0; k + 1 < pa.path.nodes.size(); ++k) {
        net::NodeId u = pa.path.nodes[k];
        net::NodeId v = pa.path.nodes[k + 1];
        if (u > v) std::swap(u, v);
        if (lit.Units(u, v) <= 0) {
          std::ostringstream os;
          os << "blackhole: transfer " << a.id << " routes " << pa.rate
             << " Gbps over dark link " << LinkName(u, v);
          violations.push_back(os.str());
        }
        link_rate[{u, v}] += pa.rate;
      }
    }
  }
  if (check_capacity) {
    for (const auto& [link, rate] : link_rate) {
      const int units = lit.Units(link.first, link.second);
      const double cap = units > 0 ? units * theta : 0.0;
      if (rate > cap * (1.0 + 1e-9) + kRateEps) {
        std::ostringstream os;
        os << "update stage overshoots link "
           << LinkName(link.first, link.second) << ": " << rate
           << " Gbps over " << cap << " Gbps lit";
        violations.push_back(os.str());
      }
    }
  }
  return violations;
}

std::vector<std::string> InvariantChecker::ObserveTransfer(int id,
                                                           double delivered,
                                                           double size) {
  std::vector<std::string> violations;
  auto [it, inserted] = last_delivered_.emplace(id, delivered);
  if (!inserted) {
    if (delivered < it->second - kRateEps) {
      std::ostringstream os;
      os << "transfer " << id << " delivered bytes went backwards ("
         << it->second << " -> " << delivered << ")";
      violations.push_back(os.str());
    }
    it->second = delivered;
  }
  if (delivered > size * (1.0 + 1e-9) + kRateEps) {
    std::ostringstream os;
    os << "transfer " << id << " delivered " << delivered
       << " Gb of a " << size << " Gb request";
    violations.push_back(os.str());
  }
  return violations;
}

}  // namespace owan::fault
