#ifndef OWAN_FAULT_FAULT_INJECTOR_H_
#define OWAN_FAULT_FAULT_INJECTOR_H_

#include "core/topology.h"
#include "fault/fault_event.h"
#include "optical/optical_network.h"

namespace owan::fault {

// Applies one plant fault event to a live plant. Controller lifecycle
// events are ignored (callers track those themselves). Returns true when
// the plant actually changed — repeated faults and repairs of healthy
// components are no-ops (the optical layer guards them), so a schedule can
// safely carry redundant or out-of-order events.
bool ApplyPlantEvent(const FaultEvent& e, optical::OpticalNetwork& plant);

// Recomputes the network-layer topology after plant events, as §3.4
// prescribes: shrink to each site's surviving port budget, re-realize the
// remaining links over the surviving fibers (units with no feasible circuit
// drop out), and — when `repair_dark_ports` is set, i.e. a controller is
// alive to act — re-pair dark router ports into whatever feasible links
// remain. With a dead controller only the physical shrinkage applies.
core::Topology RecomputeTopology(const core::Topology& topology,
                                 const optical::OpticalNetwork& plant,
                                 bool repair_dark_ports);

}  // namespace owan::fault

#endif  // OWAN_FAULT_FAULT_INJECTOR_H_
