#include "fault/fault_injector.h"

#include <vector>

#include "core/provisioned_state.h"
#include "core/repair.h"
#include "obs/obs.h"

namespace owan::fault {

bool ApplyPlantEvent(const FaultEvent& e, optical::OpticalNetwork& plant) {
  OWAN_COUNT("fault.plant_events");
  switch (e.type) {
    case FaultType::kFiberCut: {
      // The raw cut is recorded even under a site outage (so the fiber
      // stays down after the site repairs), but only a cut of a live fiber
      // changes the operational plant.
      const bool was_dead = plant.FiberFailed(e.target);
      plant.FailFiber(e.target);
      return !was_dead;
    }
    case FaultType::kFiberRepair:
      return plant.RestoreFiber(e.target) && !plant.FiberFailed(e.target);
    case FaultType::kSiteFail: {
      const bool was_down = plant.SiteFailed(e.target);
      plant.FailSite(e.target);
      return !was_down;
    }
    case FaultType::kSiteRepair:
      return plant.RestoreSite(e.target);
    case FaultType::kTransceiverFail: {
      const int before = plant.FailedRegens(e.target);
      const int ports = plant.FailPorts(e.target, e.ports);
      plant.FailRegens(e.target, e.regens);
      return ports > 0 || plant.FailedRegens(e.target) != before;
    }
    case FaultType::kTransceiverRepair: {
      const int ports = plant.RestorePorts(e.target, e.ports);
      const int regens = plant.RestoreRegens(e.target, e.regens);
      return ports > 0 || regens > 0;
    }
    case FaultType::kSpanDegrade: {
      // The level is recorded on any plant (it rides into checkpoints), but
      // only a QoT-enabled plant changes operationally: legacy circuits
      // carry fixed theta regardless of signal quality.
      const bool changed = plant.FiberDegradationDb(e.target) != e.db;
      plant.DegradeFiber(e.target, e.db);
      return changed && plant.qot().enabled;
    }
    case FaultType::kSpanRepair:
      return plant.RepairFiberDegradation(e.target) && plant.qot().enabled;
    case FaultType::kControllerCrash:
    case FaultType::kControllerRecover:
      return false;
  }
  return false;
}

core::Topology RecomputeTopology(const core::Topology& topology,
                                 const optical::OpticalNetwork& plant,
                                 bool repair_dark_ports) {
  OWAN_SPAN(recompute_span, "fault", "recompute_topology");
  OWAN_COUNT("fault.topology_recomputes");
  std::vector<int> budget;
  budget.reserve(static_cast<size_t>(plant.NumSites()));
  for (net::NodeId v = 0; v < plant.NumSites(); ++v) {
    budget.push_back(plant.UsablePorts(v));
  }
  core::Topology shrunk = core::ShrinkToPortBudget(topology, budget);
  core::ProvisionedState state(plant);
  state.SyncTo(shrunk);
  if (!repair_dark_ports) return state.realized();
  return core::RepairDarkPorts(state.realized(), plant, budget);
}

}  // namespace owan::fault
