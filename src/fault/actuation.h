#ifndef OWAN_FAULT_ACTUATION_H_
#define OWAN_FAULT_ACTUATION_H_

#include <cstdint>

namespace owan::fault {

// Seeded model of reconfiguration-actuation behaviour: how long an
// individual update operation (router rule install, ROADM circuit
// provisioning/teardown) really takes and whether it fails outright.
// Open optical-switch measurements (Anazawa et al.) show heavy-tailed
// actuation latencies and occasional hard failures; this model gives the
// update executor a deterministic stand-in for that hardware.
//
// All probabilities are per attempt. A default-constructed model is the
// nominal plant: every op succeeds in exactly its nominal duration, which
// keeps the executor bit-identical to the precomputed schedule.
struct ActuationModel {
  uint64_t seed = 0;
  // Per-attempt hard-failure probability, split by op class: circuit ops
  // touch ROADMs along a path (flaky), route ops touch one router (rarely).
  double circuit_failure_prob = 0.0;
  double route_failure_prob = 0.0;
  // Multiplicative latency jitter: latency = nominal * (1 + cv * U) with
  // U uniform in [0, 1). 0 = exact nominal durations.
  double latency_cv = 0.0;
  // With this probability an attempt straggles: latency is additionally
  // multiplied by straggler_factor (it may then trip the executor's
  // timeout and be retried).
  double straggler_prob = 0.0;
  double straggler_factor = 8.0;

  bool enabled() const {
    return circuit_failure_prob > 0.0 || route_failure_prob > 0.0 ||
           latency_cv > 0.0 || straggler_prob > 0.0;
  }
};

// One sampled actuation attempt.
struct ActuationSample {
  double latency_s = 0.0;  // how long the attempt takes (uncapped)
  bool fails = false;      // hard failure: the op did not take effect
  bool straggler = false;  // latency drew the straggler multiplier
};

// Phase of execution an attempt belongs to; rollback undos get their own
// substream so a forward attempt and its undo never share a draw.
enum class ActuationPhase { kForward = 0, kRollback = 1 };

// Pure function of (model.seed, op_id, attempt, phase): the sample for a
// given attempt does not depend on execution order, so a run resumed from
// a write-ahead log re-draws exactly what the interrupted run drew.
// `circuit_op` selects the failure probability; `nominal_s` is the op's
// planned duration.
ActuationSample SampleActuation(const ActuationModel& model, int op_id,
                                int attempt, bool circuit_op,
                                double nominal_s,
                                ActuationPhase phase = ActuationPhase::kForward);

}  // namespace owan::fault

#endif  // OWAN_FAULT_ACTUATION_H_
