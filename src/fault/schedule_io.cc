#include "fault/schedule_io.h"

#include <sstream>
#include <stdexcept>

namespace owan::fault {

namespace {

[[noreturn]] void Bad(const std::string& line, const std::string& why) {
  throw std::invalid_argument("ParseFaultSchedule: " + why + ": \"" + line +
                              "\"");
}

}  // namespace

FaultSchedule ParseFaultSchedule(std::istream& in,
                                 const ParseOptions& options) {
  FaultSchedule schedule;
  std::string raw;
  double prev_t = -1.0;
  while (std::getline(in, raw)) {
    std::string line = raw.substr(0, raw.find('#'));
    std::istringstream ls(line);
    double t;
    std::string kind;
    if (!(ls >> t)) {
      std::istringstream probe(line);
      std::string any;
      if (probe >> any) Bad(raw, "expected a timestamp");
      continue;  // blank or comment-only line
    }
    if (!(ls >> kind)) Bad(raw, "missing event type");
    if (t < 0.0) Bad(raw, "negative timestamp");
    if (options.require_ordered && t < prev_t) {
      std::ostringstream why;
      why.precision(17);
      why << "out-of-order timestamp " << t << " after " << prev_t
          << " (require_ordered)";
      Bad(raw, why.str());
    }
    prev_t = t;

    int target = -1, ports = 0, regens = 0;
    auto need_target = [&] {
      if (!(ls >> target) || target < 0) Bad(raw, "bad component id");
    };
    if (kind == "fiber-cut") {
      need_target();
      schedule.Add(FaultEvent::FiberCut(t, target));
    } else if (kind == "fiber-repair") {
      need_target();
      schedule.Add(FaultEvent::FiberRepair(t, target));
    } else if (kind == "site-fail") {
      need_target();
      schedule.Add(FaultEvent::SiteFail(t, target));
    } else if (kind == "site-repair") {
      need_target();
      schedule.Add(FaultEvent::SiteRepair(t, target));
    } else if (kind == "xcvr-fail" || kind == "xcvr-repair") {
      need_target();
      if (!(ls >> ports >> regens) || ports < 0 || regens < 0) {
        Bad(raw, "xcvr events need non-negative <ports> <regens>");
      }
      schedule.Add(kind == "xcvr-fail"
                       ? FaultEvent::TransceiverFail(t, target, ports, regens)
                       : FaultEvent::TransceiverRepair(t, target, ports,
                                                       regens));
    } else if (kind == "span-degrade") {
      need_target();
      double db = 0.0;
      if (!(ls >> db) || db < 0.0) {
        Bad(raw, "span-degrade needs a non-negative <db>");
      }
      schedule.Add(FaultEvent::SpanDegrade(t, target, db));
    } else if (kind == "span-repair") {
      need_target();
      schedule.Add(FaultEvent::SpanRepair(t, target));
    } else if (kind == "controller-crash") {
      schedule.Add(FaultEvent::ControllerCrash(t));
    } else if (kind == "controller-recover") {
      schedule.Add(FaultEvent::ControllerRecover(t));
    } else {
      Bad(raw, "unknown event type \"" + kind + "\"");
    }
    std::string trailing;
    if (ls >> trailing) Bad(raw, "trailing tokens");
  }
  schedule.Normalize();
  return schedule;
}

FaultSchedule ParseFaultSchedule(const std::string& text,
                                 const ParseOptions& options) {
  std::istringstream is(text);
  return ParseFaultSchedule(is, options);
}

std::string FormatFaultSchedule(const FaultSchedule& schedule) {
  std::ostringstream os;
  for (const FaultEvent& e : schedule.events) os << ToString(e) << "\n";
  return os.str();
}

}  // namespace owan::fault
