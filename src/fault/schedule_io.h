#ifndef OWAN_FAULT_SCHEDULE_IO_H_
#define OWAN_FAULT_SCHEDULE_IO_H_

#include <iosfwd>
#include <string>

#include "fault/fault_event.h"

namespace owan::fault {

// Scripted fault schedules as line-oriented text, one event per line:
//
//   # fiber cut at t=450s, repaired at t=1200s
//   450 fiber-cut 3
//   1200 fiber-repair 3
//   600 site-fail 2
//   900 site-repair 2
//   300 xcvr-fail 1 2 1       # site 1 loses 2 ports and 1 regenerator
//   750 xcvr-repair 1 2 1
//   500 controller-crash
//   512 controller-recover
//
// Blank lines and '#' comments are ignored; events may appear in any order
// (the parsed schedule is normalized). Throws std::invalid_argument on a
// malformed line.
FaultSchedule ParseFaultSchedule(std::istream& in);
FaultSchedule ParseFaultSchedule(const std::string& text);

// Inverse of ParseFaultSchedule: round-trips exactly through the parser.
std::string FormatFaultSchedule(const FaultSchedule& schedule);

}  // namespace owan::fault

#endif  // OWAN_FAULT_SCHEDULE_IO_H_
