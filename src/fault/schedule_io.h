#ifndef OWAN_FAULT_SCHEDULE_IO_H_
#define OWAN_FAULT_SCHEDULE_IO_H_

#include <iosfwd>
#include <string>

#include "fault/fault_event.h"

namespace owan::fault {

// Scripted fault schedules as line-oriented text, one event per line:
//
//   # fiber cut at t=450s, repaired at t=1200s
//   450 fiber-cut 3
//   1200 fiber-repair 3
//   600 site-fail 2
//   900 site-repair 2
//   300 xcvr-fail 1 2 1       # site 1 loses 2 ports and 1 regenerator
//   750 xcvr-repair 1 2 1
//   500 controller-crash
//   512 controller-recover
//
// Blank lines and '#' comments are ignored; events may appear in any order
// (the parsed schedule is normalized). Throws std::invalid_argument on a
// malformed line.
struct ParseOptions {
  // When set, timestamps must be non-decreasing in file order; an
  // out-of-order line is rejected with an error naming both timestamps.
  // Off by default: hand-written schedules may group cut/repair pairs, and
  // Normalize() sorts them anyway. Machine-written schedules (FormatFault-
  // Schedule output, testkit replay files) are always ordered, so strict
  // parsing catches truncated or hand-mangled files early.
  bool require_ordered = false;
};
FaultSchedule ParseFaultSchedule(std::istream& in,
                                 const ParseOptions& options = {});
FaultSchedule ParseFaultSchedule(const std::string& text,
                                 const ParseOptions& options = {});

// Inverse of ParseFaultSchedule: round-trips exactly through the parser.
std::string FormatFaultSchedule(const FaultSchedule& schedule);

}  // namespace owan::fault

#endif  // OWAN_FAULT_SCHEDULE_IO_H_
