#ifndef OWAN_FAULT_FAULT_EVENT_H_
#define OWAN_FAULT_FAULT_EVENT_H_

#include <string>
#include <tuple>
#include <vector>

#include "net/graph.h"

namespace owan::fault {

// The unified fault model (§3.4): every disruption the paper's controller
// claims to survive, plus the matching repair, expressed as one timestamped
// event stream. Timestamps are absolute seconds and need not align with
// slot boundaries — the simulator interrupts the running slot, pro-rates
// delivered bytes, and recomputes immediately.
enum class FaultType {
  kFiberCut,           // target = fiber edge id
  kFiberRepair,        // target = fiber edge id
  kSiteFail,           // target = site id (ROADM outage: incident fibers die)
  kSiteRepair,         // target = site id
  kTransceiverFail,    // target = site id; ports/regens lost
  kTransceiverRepair,  // target = site id; ports/regens restored
  kControllerCrash,    // no target: recompute stops, last rates persist
  kControllerRecover,  // no target: failover completes, recompute resumes
  kSpanDegrade,        // target = fiber edge id; db = extra attenuation
  kSpanRepair,         // target = fiber edge id; degradation cleared
};

const char* ToString(FaultType t);

struct FaultEvent {
  double time = 0.0;
  FaultType type = FaultType::kFiberCut;
  int target = -1;  // fiber id or site id; -1 for controller events
  int ports = 0;    // transceiver events only
  int regens = 0;   // transceiver events only
  double db = 0.0;  // span-degrade only: extra attenuation (dB) on the fiber

  static FaultEvent FiberCut(double t, net::EdgeId fiber);
  static FaultEvent FiberRepair(double t, net::EdgeId fiber);
  static FaultEvent SiteFail(double t, net::NodeId site);
  static FaultEvent SiteRepair(double t, net::NodeId site);
  static FaultEvent TransceiverFail(double t, net::NodeId site, int ports,
                                    int regens);
  static FaultEvent TransceiverRepair(double t, net::NodeId site, int ports,
                                      int regens);
  static FaultEvent ControllerCrash(double t);
  static FaultEvent ControllerRecover(double t);
  // Span degradation: the fiber stays lit but loses `db` of SNR budget
  // (amplifier aging, a bent patch panel, a dirty connector). Under a
  // QoT-enabled plant, crossing circuits are re-graded; legacy plants only
  // record the level. SpanRepair clears it.
  static FaultEvent SpanDegrade(double t, net::EdgeId fiber, double db);
  static FaultEvent SpanRepair(double t, net::EdgeId fiber);

  // True for events that mutate the optical plant (everything except the
  // controller lifecycle events).
  bool IsPlantEvent() const;

  // Total order (time first), so normalized schedules are deterministic
  // regardless of generation or insertion order.
  friend bool operator<(const FaultEvent& a, const FaultEvent& b) {
    return std::tie(a.time, a.type, a.target, a.ports, a.regens, a.db) <
           std::tie(b.time, b.type, b.target, b.ports, b.regens, b.db);
  }
  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return std::tie(a.time, a.type, a.target, a.ports, a.regens, a.db) ==
           std::tie(b.time, b.type, b.target, b.ports, b.regens, b.db);
  }
};

std::string ToString(const FaultEvent& e);

// A time-ordered fault script. Build one by hand, load one from text
// (schedule_io.h), or draw one from the stochastic generator
// (fault_generator.h); consumers require Normalize() to have run (Add keeps
// the sorted flag, so a schedule built through Add alone is always ready).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  void Add(const FaultEvent& e);
  // Sorts events into the canonical total order.
  void Normalize();
  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  friend bool operator==(const FaultSchedule& a, const FaultSchedule& b) {
    return a.events == b.events;
  }
};

}  // namespace owan::fault

#endif  // OWAN_FAULT_FAULT_EVENT_H_
