#include "fault/actuation.h"

namespace owan::fault {

namespace {

// SplitMix64 finalizer (same mixing as fault_generator's per-component
// substreams): statistically independent outputs for related keys.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from a mixed key.
double UnitDouble(uint64_t key) {
  return static_cast<double>(Mix(key) >> 11) * 0x1.0p-53;
}

}  // namespace

ActuationSample SampleActuation(const ActuationModel& model, int op_id,
                                int attempt, bool circuit_op,
                                double nominal_s, ActuationPhase phase) {
  ActuationSample s;
  s.latency_s = nominal_s;
  if (!model.enabled()) return s;
  // Key the substream on (seed, op, attempt, phase); each draw within the
  // attempt gets its own lane so adding a knob never shifts another draw.
  const uint64_t base =
      Mix(model.seed ^ Mix(static_cast<uint64_t>(op_id) * 0x100000ULL +
                           static_cast<uint64_t>(attempt) * 0x10ULL +
                           static_cast<uint64_t>(phase)));
  const double fail_p =
      circuit_op ? model.circuit_failure_prob : model.route_failure_prob;
  s.fails = UnitDouble(base ^ 0x1ULL) < fail_p;
  if (model.latency_cv > 0.0) {
    s.latency_s = nominal_s * (1.0 + model.latency_cv * UnitDouble(base ^ 0x2ULL));
  }
  if (model.straggler_prob > 0.0 &&
      UnitDouble(base ^ 0x3ULL) < model.straggler_prob) {
    s.straggler = true;
    s.latency_s *= model.straggler_factor;
  }
  return s;
}

}  // namespace owan::fault
