#include "fault/fault_event.h"

#include <algorithm>
#include <sstream>

namespace owan::fault {

const char* ToString(FaultType t) {
  switch (t) {
    case FaultType::kFiberCut:
      return "fiber-cut";
    case FaultType::kFiberRepair:
      return "fiber-repair";
    case FaultType::kSiteFail:
      return "site-fail";
    case FaultType::kSiteRepair:
      return "site-repair";
    case FaultType::kTransceiverFail:
      return "xcvr-fail";
    case FaultType::kTransceiverRepair:
      return "xcvr-repair";
    case FaultType::kControllerCrash:
      return "controller-crash";
    case FaultType::kControllerRecover:
      return "controller-recover";
    case FaultType::kSpanDegrade:
      return "span-degrade";
    case FaultType::kSpanRepair:
      return "span-repair";
  }
  return "unknown";
}

FaultEvent FaultEvent::FiberCut(double t, net::EdgeId fiber) {
  return FaultEvent{t, FaultType::kFiberCut, fiber, 0, 0};
}
FaultEvent FaultEvent::FiberRepair(double t, net::EdgeId fiber) {
  return FaultEvent{t, FaultType::kFiberRepair, fiber, 0, 0};
}
FaultEvent FaultEvent::SiteFail(double t, net::NodeId site) {
  return FaultEvent{t, FaultType::kSiteFail, site, 0, 0};
}
FaultEvent FaultEvent::SiteRepair(double t, net::NodeId site) {
  return FaultEvent{t, FaultType::kSiteRepair, site, 0, 0};
}
FaultEvent FaultEvent::TransceiverFail(double t, net::NodeId site, int ports,
                                       int regens) {
  return FaultEvent{t, FaultType::kTransceiverFail, site, ports, regens};
}
FaultEvent FaultEvent::TransceiverRepair(double t, net::NodeId site,
                                         int ports, int regens) {
  return FaultEvent{t, FaultType::kTransceiverRepair, site, ports, regens};
}
FaultEvent FaultEvent::ControllerCrash(double t) {
  return FaultEvent{t, FaultType::kControllerCrash, -1, 0, 0};
}
FaultEvent FaultEvent::ControllerRecover(double t) {
  return FaultEvent{t, FaultType::kControllerRecover, -1, 0, 0};
}
FaultEvent FaultEvent::SpanDegrade(double t, net::EdgeId fiber, double db) {
  return FaultEvent{t, FaultType::kSpanDegrade, fiber, 0, 0, db};
}
FaultEvent FaultEvent::SpanRepair(double t, net::EdgeId fiber) {
  return FaultEvent{t, FaultType::kSpanRepair, fiber, 0, 0, 0.0};
}

bool FaultEvent::IsPlantEvent() const {
  return type != FaultType::kControllerCrash &&
         type != FaultType::kControllerRecover;
}

std::string ToString(const FaultEvent& e) {
  std::ostringstream os;
  os.precision(17);  // loss-free double round-trip through the parser
  os << e.time << " " << ToString(e.type);
  switch (e.type) {
    case FaultType::kFiberCut:
    case FaultType::kFiberRepair:
    case FaultType::kSiteFail:
    case FaultType::kSiteRepair:
      os << " " << e.target;
      break;
    case FaultType::kTransceiverFail:
    case FaultType::kTransceiverRepair:
      os << " " << e.target << " " << e.ports << " " << e.regens;
      break;
    case FaultType::kControllerCrash:
    case FaultType::kControllerRecover:
      break;
    case FaultType::kSpanDegrade:
      os << " " << e.target << " " << e.db;
      break;
    case FaultType::kSpanRepair:
      os << " " << e.target;
      break;
  }
  return os.str();
}

void FaultSchedule::Add(const FaultEvent& e) {
  events.push_back(e);
  if (events.size() > 1 && e < events[events.size() - 2]) Normalize();
}

void FaultSchedule::Normalize() { std::sort(events.begin(), events.end()); }

}  // namespace owan::fault
