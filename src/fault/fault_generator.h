#ifndef OWAN_FAULT_FAULT_GENERATOR_H_
#define OWAN_FAULT_FAULT_GENERATOR_H_

#include "fault/fault_event.h"
#include "optical/optical_network.h"

namespace owan::fault {

// Alternating-renewal failure model for one component class: up-times are
// exponential with mean mtbf_s, repair times exponential with mean mttr_s.
// mtbf_s <= 0 disables the class; mttr_s <= 0 means failures are permanent
// (no repair event is emitted).
struct ComponentFailureModel {
  double mtbf_s = 0.0;
  double mttr_s = 0.0;
};

struct FaultGeneratorOptions {
  uint64_t seed = 1;
  double horizon_s = 24.0 * 3600.0;

  ComponentFailureModel fiber;        // per fiber pair
  ComponentFailureModel site;         // per ROADM site
  ComponentFailureModel transceiver;  // per site's transceiver bank
  // Resources lost per transceiver failure event.
  int transceiver_ports = 1;
  int transceiver_regens = 0;
  ComponentFailureModel controller;   // crash + failover completion
};

// Draws a fault schedule for the given plant. Every component gets its own
// RNG stream derived from (seed, component class, component index), so the
// result is a pure function of (plant shape, options): bit-reproducible
// across invocations and stable under changes to other classes' rates.
FaultSchedule GenerateFaultSchedule(const optical::OpticalNetwork& plant,
                                    const FaultGeneratorOptions& options);

}  // namespace owan::fault

#endif  // OWAN_FAULT_FAULT_GENERATOR_H_
