#include "fault/fault_generator.h"

#include <functional>

#include "util/rng.h"

namespace owan::fault {

namespace {

// SplitMix64 finalizer: decorrelates the per-component seeds derived from
// (seed, class, index) so neighboring components do not share streams.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Walks one component's alternating up/down renewal process over the
// horizon, emitting fail/repair pairs through `emit`.
void WalkComponent(const ComponentFailureModel& model, double horizon_s,
                   util::Rng rng,
                   const std::function<void(double, bool)>& emit) {
  if (model.mtbf_s <= 0.0) return;
  double t = rng.Exponential(model.mtbf_s);
  while (t < horizon_s) {
    emit(t, /*fail=*/true);
    if (model.mttr_s <= 0.0) return;  // permanent failure
    const double down = rng.Exponential(model.mttr_s);
    if (t + down >= horizon_s) return;  // still down at the horizon
    t += down;
    emit(t, /*fail=*/false);
    t += rng.Exponential(model.mtbf_s);
  }
}

}  // namespace

FaultSchedule GenerateFaultSchedule(const optical::OpticalNetwork& plant,
                                    const FaultGeneratorOptions& options) {
  FaultSchedule schedule;
  enum : uint64_t { kFiber = 1, kSite = 2, kXcvr = 3, kController = 4 };
  auto rng_for = [&](uint64_t cls, uint64_t index) {
    return util::Rng(Mix(options.seed ^ Mix(cls * 0x10000000ULL + index)));
  };

  for (net::EdgeId f = 0; f < plant.NumFibers(); ++f) {
    WalkComponent(options.fiber, options.horizon_s,
                  rng_for(kFiber, static_cast<uint64_t>(f)),
                  [&](double t, bool fail) {
                    schedule.Add(fail ? FaultEvent::FiberCut(t, f)
                                      : FaultEvent::FiberRepair(t, f));
                  });
  }
  for (net::NodeId v = 0; v < plant.NumSites(); ++v) {
    WalkComponent(options.site, options.horizon_s,
                  rng_for(kSite, static_cast<uint64_t>(v)),
                  [&](double t, bool fail) {
                    schedule.Add(fail ? FaultEvent::SiteFail(t, v)
                                      : FaultEvent::SiteRepair(t, v));
                  });
    WalkComponent(options.transceiver, options.horizon_s,
                  rng_for(kXcvr, static_cast<uint64_t>(v)),
                  [&](double t, bool fail) {
                    schedule.Add(
                        fail ? FaultEvent::TransceiverFail(
                                   t, v, options.transceiver_ports,
                                   options.transceiver_regens)
                             : FaultEvent::TransceiverRepair(
                                   t, v, options.transceiver_ports,
                                   options.transceiver_regens));
                  });
  }
  WalkComponent(options.controller, options.horizon_s, rng_for(kController, 0),
                [&](double t, bool fail) {
                  schedule.Add(fail ? FaultEvent::ControllerCrash(t)
                                    : FaultEvent::ControllerRecover(t));
                });

  schedule.Normalize();
  return schedule;
}

}  // namespace owan::fault
