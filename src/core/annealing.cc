#include "core/annealing.h"

#include <cmath>
#include <utility>

namespace owan::core {

std::optional<Topology> ComputeNeighbor(const Topology& s, util::Rng& rng,
                                        const std::vector<int>* port_budget) {
  const std::vector<Link> links = s.Links();
  constexpr int kMaxTries = 32;

  // Re-home move: only available when dark ports exist.
  if (port_budget && !links.empty()) {
    std::vector<net::NodeId> free_sites;
    for (net::NodeId v = 0; v < s.NumSites(); ++v) {
      if (s.PortsUsed(v) < (*port_budget)[static_cast<size_t>(v)]) {
        free_sites.push_back(v);
      }
    }
    if (!free_sites.empty() && rng.Chance(0.5)) {
      for (int attempt = 0; attempt < kMaxTries; ++attempt) {
        const Link& l = links[rng.Index(links.size())];
        net::NodeId keep = l.u, drop = l.v;
        if (rng.Chance(0.5)) std::swap(keep, drop);
        const net::NodeId w = free_sites[rng.Index(free_sites.size())];
        if (w == keep || w == drop) continue;
        Topology t = s;
        t.AddUnits(keep, drop, -1);
        t.AddUnits(keep, w, +1);
        return t;
      }
    }
  }

  if (links.size() < 2) return std::nullopt;

  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    const size_t i = rng.Index(links.size());
    size_t j = rng.Index(links.size());
    if (i == j) continue;
    net::NodeId u = links[i].u, v = links[i].v;
    net::NodeId p = links[j].u, q = links[j].v;
    // Randomly flip one link's orientation so both pairings are reachable.
    if (rng.Chance(0.5)) std::swap(p, q);
    // New links (u,p) and (v,q) must not be self loops.
    if (u == p || v == q) {
      std::swap(p, q);
      if (u == p || v == q) continue;
    }
    Topology t = s;
    t.AddUnits(u, v, -1);
    t.AddUnits(p, q, -1);
    t.AddUnits(u, p, +1);
    t.AddUnits(v, q, +1);
    // Links sharing a node can make the rotation a no-op (e.g. removing
    // (u,v),(v,q) and adding them back); retry for a real move.
    if (t == s) continue;
    return t;
  }
  return std::nullopt;
}

AnnealResult ComputeNetworkState(const Topology& current,
                                 const optical::OpticalNetwork& blank_optical,
                                 const std::vector<TransferDemand>& demands,
                                 const AnnealOptions& options,
                                 util::Rng& rng) {
  std::vector<int> port_budget;
  port_budget.reserve(static_cast<size_t>(blank_optical.NumSites()));
  for (int v = 0; v < blank_optical.NumSites(); ++v) {
    port_budget.push_back(blank_optical.site(v).router_ports);
  }

  Topology start = current;
  if (!options.warm_start) {
    for (int i = 0; i < options.cold_start_moves; ++i) {
      auto t = ComputeNeighbor(start, rng, &port_budget);
      if (t) start = std::move(*t);
    }
  }

  ProvisionedState cur_state{blank_optical};
  cur_state.SyncTo(start);
  RoutingOutcome cur_routing = AssignRoutesAndRates(
      cur_state.CapacityGraph(), demands, options.routing);
  double cur_energy = cur_routing.throughput;

  const double start_energy = cur_energy;
  const ProvisionedState start_state = cur_state;
  const RoutingOutcome start_routing = cur_routing;

  AnnealResult best;
  best.best_topology = start;
  best.best_energy = cur_energy;
  best.state = cur_state;
  best.routing = cur_routing;

  Topology cur_topo = start;

  // Initial temperature = current throughput (Algorithm 1, line 4); guard
  // against an all-idle network.
  const double t0 = cur_energy > 0.0 ? cur_energy : 1.0;
  double temperature = t0;
  const double floor = t0 * options.epsilon_ratio;

  // Indices of transfers past the starvation threshold: the search treats
  // serving them as lexicographically more important than raw throughput.
  std::vector<size_t> starved;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].slots_waited >= options.routing.policy.starvation_slots) {
      starved.push_back(i);
    }
  }
  auto starved_served = [&starved](const RoutingOutcome& r) {
    int n = 0;
    for (size_t i : starved) {
      if (r.allocations[i].TotalRate() > 1e-9) ++n;
    }
    return n;
  };

  int iters = 0;
  int best_dist = best.best_topology.DistanceTo(current);
  int best_starved = starved_served(best.routing);
  while (temperature > floor && iters < options.max_iterations) {
    ++iters;
    auto neighbor = ComputeNeighbor(cur_topo, rng, &port_budget);
    if (!neighbor) break;
    if (options.max_distance > 0 &&
        neighbor->DistanceTo(current) > options.max_distance) {
      temperature *= options.alpha;
      continue;  // out of the allowed update radius
    }

    ProvisionedState nb_state = cur_state;
    nb_state.SyncTo(*neighbor);
    RoutingOutcome nb_routing = AssignRoutesAndRates(
        nb_state.CapacityGraph(), demands, options.routing);
    const double nb_energy = nb_routing.throughput;

    // Track the best state lexicographically: serve starved transfers
    // first, then throughput, then proximity to the current topology (so
    // updates stay incremental).
    const int nb_dist = neighbor->DistanceTo(current);
    const int nb_starved = starved_served(nb_routing);
    const bool better =
        nb_starved > best_starved ||
        (nb_starved == best_starved &&
         (nb_energy > best.best_energy + 1e-9 ||
          (nb_energy > best.best_energy - 1e-9 && nb_dist < best_dist)));
    if (better) {
      best.best_topology = *neighbor;
      best.best_energy = nb_energy;
      best.state = nb_state;
      best.routing = nb_routing;
      best_dist = nb_dist;
      best_starved = nb_starved;
    }

    // Accept uphill always; downhill with Boltzmann probability.
    bool accept = nb_energy >= cur_energy;
    if (!accept) {
      const double prob = std::exp((nb_energy - cur_energy) / temperature);
      accept = rng.Uniform() < prob;
    }
    if (accept) {
      cur_topo = std::move(*neighbor);
      cur_state = std::move(nb_state);
      cur_routing = std::move(nb_routing);
      cur_energy = nb_energy;
      ++best.accepted;
    }
    temperature *= options.alpha;
  }

  // Marginal improvements do not justify taking circuits dark: stick with
  // the starting topology unless the win clears the adoption threshold —
  // EXCEPT when the candidate rescues a starved transfer the current
  // topology cannot serve at all (the §3.2 starvation guard must be able
  // to force a reconfiguration, not just reorder transfers).
  const bool rescues_starved =
      starved_served(best.routing) > starved_served(start_routing);
  if (!rescues_starved &&
      best.best_energy <
          start_energy * (1.0 + options.min_adopt_gain) + 1e-9) {
    best.best_topology = start;
    best.best_energy = start_energy;
    best.state = start_state;
    best.routing = start_routing;
  }

  best.iterations = iters;
  best.circuit_changes = best.best_topology.DistanceTo(current);
  return best;
}

}  // namespace owan::core
