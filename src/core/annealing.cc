#include "core/annealing.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/energy_evaluator.h"
#include "obs/obs.h"
#include "util/thread_pool.h"

namespace owan::core {

std::optional<Topology> ComputeNeighbor(const Topology& s, util::Rng& rng,
                                        const std::vector<int>* port_budget) {
  const std::vector<Link> links = s.Links();
  constexpr int kMaxTries = 32;

  // Re-home move: only available when dark ports exist.
  std::vector<net::NodeId> free_sites;
  if (port_budget && !links.empty()) {
    for (net::NodeId v = 0; v < s.NumSites(); ++v) {
      if (s.PortsUsed(v) < (*port_budget)[static_cast<size_t>(v)]) {
        free_sites.push_back(v);
      }
    }
  }
  auto rehome = [&]() -> std::optional<Topology> {
    for (int attempt = 0; attempt < kMaxTries; ++attempt) {
      const Link& l = links[rng.Index(links.size())];
      net::NodeId keep = l.u, drop = l.v;
      if (rng.Chance(0.5)) std::swap(keep, drop);
      const net::NodeId w = free_sites[rng.Index(free_sites.size())];
      if (w == keep || w == drop) continue;
      Topology t = s;
      t.AddUnits(keep, drop, -1);
      t.AddUnits(keep, w, +1);
      return t;
    }
    return std::nullopt;
  };
  if (!free_sites.empty() && rng.Chance(0.5)) {
    if (auto t = rehome()) return t;
  }

  if (links.size() >= 2) {
    for (int attempt = 0; attempt < kMaxTries; ++attempt) {
      const size_t i = rng.Index(links.size());
      size_t j = rng.Index(links.size());
      if (i == j) continue;
      net::NodeId u = links[i].u, v = links[i].v;
      net::NodeId p = links[j].u, q = links[j].v;
      // Randomly flip one link's orientation so both pairings are reachable.
      if (rng.Chance(0.5)) std::swap(p, q);
      // New links (u,p) and (v,q) must not be self loops.
      if (u == p || v == q) {
        std::swap(p, q);
        if (u == p || v == q) continue;
      }
      Topology t = s;
      t.AddUnits(u, v, -1);
      t.AddUnits(p, q, -1);
      t.AddUnits(u, p, +1);
      t.AddUnits(v, q, +1);
      // Links sharing a node can make the rotation a no-op (e.g. removing
      // (u,v),(v,q) and adding them back); retry for a real move.
      if (t == s) continue;
      return t;
    }
  }
  // Rotation has no effective move on degenerate shapes (a lone link, a
  // triangle whose rotations map to itself). If dark ports remain —
  // typical right after failures — fall back to re-homing so the search
  // can still reshape the surviving topology instead of going inert.
  if (!free_sites.empty()) return rehome();
  return std::nullopt;
}

namespace {

// Outcome of one annealing chain, before the adoption guard. Carries the
// chain-start snapshot so the caller can apply the guard with the right
// baseline (the chain's own start for the classic single-chain path; the
// current topology for multi-chain selection).
struct ChainResult {
  Topology best_topology;
  double best_energy = 0.0;
  std::optional<ProvisionedState> state;
  RoutingOutcome routing;
  int iterations = 0;
  int accepted = 0;
  int best_dist = 0;
  int best_starved = 0;

  Topology start_topology;
  double start_energy = 0.0;
  std::optional<ProvisionedState> start_state;
  RoutingOutcome start_routing;
  int start_starved = 0;
};

int StarvedServed(const std::vector<size_t>& starved,
                  const RoutingOutcome& r) {
  int n = 0;
  for (size_t i : starved) {
    if (r.allocations[i].TotalRate() > 1e-9) ++n;
  }
  return n;
}

// Wall-clock compute budget (AnnealOptions::time_budget_s). Unset = no
// deadline; the clock is only ever consulted when a budget was requested,
// so default runs stay bit-reproducible.
using Deadline = std::optional<std::chrono::steady_clock::time_point>;

bool Expired(const Deadline& d) {
  return d.has_value() && std::chrono::steady_clock::now() >= *d;
}

// Serial chain (batch_size <= 1): the classic one-neighbor Metropolis walk,
// evaluated through the chain's EnergyEvaluator. The evaluator mutates one
// ProvisionedState in place (rolling back rejected moves exactly), reuses
// cached per-pair path sets across iterations, and short-circuits revisited
// topologies through its transposition table — while producing bit-for-bit
// the energies, RNG stream, and best-state snapshots of the old
// copy-everything loop (the PR 1 golden tests pin this).
ChainResult RunChainSerial(const Topology& current, Topology start,
                           const optical::OpticalNetwork& blank_optical,
                           const std::vector<TransferDemand>& demands,
                           const AnnealOptions& options,
                           const std::vector<int>& port_budget,
                           util::Rng& rng,
                           const std::vector<size_t>& starved,
                           EnergyEvaluator& eval, const Deadline& deadline) {
  const EnergyEvaluator::Stats stats_before = eval.stats();
  const EnergyEvaluator::Eval base =
      eval.Reset(blank_optical, start, demands, starved, options.routing,
                 options.reuse_slot_state);
  double cur_energy = base.energy;

  ChainResult out;
  out.start_topology = start;
  out.start_energy = cur_energy;
  out.start_state = eval.state();
  out.start_routing = eval.EnsureRouting();
  out.start_starved = base.starved_served;
  out.best_topology = start;
  out.best_energy = cur_energy;
  out.state = out.start_state;
  out.routing = out.start_routing;
  out.best_dist = start.DistanceTo(current);
  out.best_starved = out.start_starved;

  Topology cur_topo = std::move(start);

  // Initial temperature = current throughput (Algorithm 1, line 4); guard
  // against an all-idle network.
  const double t0 = cur_energy > 0.0 ? cur_energy : 1.0;
  double temperature = t0;
  const double floor = t0 * options.epsilon_ratio;

  int iters = 0;
  while (temperature > floor && iters < options.max_iterations &&
         !Expired(deadline)) {
    ++iters;
    auto neighbor = ComputeNeighbor(cur_topo, rng, &port_budget);
    if (!neighbor) break;
    if (options.max_distance > 0 &&
        neighbor->DistanceTo(current) > options.max_distance) {
      temperature *= options.alpha;
      continue;  // out of the allowed update radius
    }

    EnergyEvaluator::Eval ev;
    {
      OWAN_SPAN_DETAIL(eval_span, "core", "energy.eval");
      ev = eval.Apply(*neighbor);
    }
    const double nb_energy = ev.energy;

    // Track the best state lexicographically: serve starved transfers
    // first, then throughput, then proximity to the current topology (so
    // updates stay incremental). A memo hit can only land in here through
    // the 1e-9 energy band, in which case EnsureRouting re-runs the
    // allocator for the snapshot.
    const int dist = neighbor->DistanceTo(current);
    const bool better =
        ev.starved_served > out.best_starved ||
        (ev.starved_served == out.best_starved &&
         (nb_energy > out.best_energy + 1e-9 ||
          (nb_energy > out.best_energy - 1e-9 && dist < out.best_dist)));
    if (better) {
      out.best_topology = *neighbor;
      out.best_energy = nb_energy;
      out.state = eval.state();
      out.routing = eval.TakeRouting();
      out.best_dist = dist;
      out.best_starved = ev.starved_served;
    }

    // Accept uphill always; downhill with Boltzmann probability.
    bool accept = nb_energy >= cur_energy;
    if (!accept) {
      const double prob = std::exp((nb_energy - cur_energy) / temperature);
      accept = rng.Uniform() < prob;
    }
    if (accept) {
      eval.Accept();
      OWAN_HISTO("anneal.energy_delta", ::owan::obs::Unit::kGigabits,
                 nb_energy - cur_energy);
      cur_topo = std::move(*neighbor);
      cur_energy = nb_energy;
      ++out.accepted;
    } else {
      eval.Reject();
    }
    temperature *= options.alpha;
  }

  out.iterations = iters;

  // Evaluator totals accumulate across slots (the scratch is reused); the
  // registry gets this chain's delta so energy.* counters stay additive.
  const EnergyEvaluator::Stats stats_after = eval.stats();
  OWAN_COUNT_N("energy.evaluations", ::owan::obs::Unit::kOps,
               stats_after.evaluations - stats_before.evaluations);
  OWAN_COUNT_N("energy.memo_hits", ::owan::obs::Unit::kOps,
               stats_after.memo_hits - stats_before.memo_hits);
  OWAN_COUNT_N("energy.routing_runs", ::owan::obs::Unit::kOps,
               stats_after.routing_runs - stats_before.routing_runs);
  OWAN_COUNT_N("energy.pairs_enumerated", ::owan::obs::Unit::kOps,
               stats_after.pairs_enumerated - stats_before.pairs_enumerated);
  OWAN_COUNT_N("energy.pairs_reused", ::owan::obs::Unit::kOps,
               stats_after.pairs_reused - stats_before.pairs_reused);
  OWAN_COUNT_N("energy.graph_rebuilds", ::owan::obs::Unit::kOps,
               stats_after.graph_rebuilds - stats_before.graph_rebuilds);
  return out;
}

// Batched chain (batch_size = B > 1): each temperature step draws up to B
// candidate neighbors serially from the chain's RNG, evaluates them
// concurrently on `pool` (per-candidate state copies — candidates fork from
// the same current state, so in-place evaluation cannot be shared), and
// applies the Metropolis rule to the best of the batch. The RNG is only
// ever touched on the chain's own thread, so results are independent of
// scheduling.
ChainResult RunChainBatched(const Topology& current, Topology start,
                            const optical::OpticalNetwork& blank_optical,
                            const std::vector<TransferDemand>& demands,
                            const AnnealOptions& options,
                            const std::vector<int>& port_budget,
                            util::Rng& rng,
                            const std::vector<size_t>& starved,
                            util::ThreadPool* pool, const Deadline& deadline) {
  ProvisionedState cur_state{blank_optical};
  cur_state.SyncTo(start);
  RoutingOutcome cur_routing = AssignRoutesAndRates(
      cur_state.CapacityGraph(), demands, options.routing);
  double cur_energy = cur_routing.throughput;

  ChainResult out;
  out.start_topology = start;
  out.start_energy = cur_energy;
  out.start_state = cur_state;
  out.start_routing = cur_routing;
  out.start_starved = StarvedServed(starved, cur_routing);
  out.best_topology = start;
  out.best_energy = cur_energy;
  out.state = cur_state;
  out.routing = cur_routing;
  out.best_dist = start.DistanceTo(current);
  out.best_starved = out.start_starved;

  Topology cur_topo = std::move(start);

  const double t0 = cur_energy > 0.0 ? cur_energy : 1.0;
  double temperature = t0;
  const double floor = t0 * options.epsilon_ratio;
  const int batch = std::max(1, options.batch_size);

  // Per-step scratch, allocated once per chain rather than per step.
  std::vector<Topology> cand;
  std::vector<std::optional<ProvisionedState>> states;
  std::vector<RoutingOutcome> routings;
  cand.reserve(static_cast<size_t>(batch));
  states.reserve(static_cast<size_t>(batch));
  routings.reserve(static_cast<size_t>(batch));

  int iters = 0;
  while (temperature > floor && iters < options.max_iterations &&
         !Expired(deadline)) {
    // Draw up to `batch` candidates serially (every draw spends one
    // iteration of the budget), evaluate them concurrently.
    cand.clear();
    bool exhausted = false;
    while (static_cast<int>(cand.size()) < batch &&
           iters < options.max_iterations && temperature > floor) {
      ++iters;
      auto neighbor = ComputeNeighbor(cur_topo, rng, &port_budget);
      if (!neighbor) {
        exhausted = true;
        break;
      }
      if (options.max_distance > 0 &&
          neighbor->DistanceTo(current) > options.max_distance) {
        temperature *= options.alpha;  // mirrors the serial schedule
        continue;
      }
      cand.push_back(std::move(*neighbor));
    }
    if (cand.empty()) {
      if (exhausted) break;
      continue;
    }

    states.assign(cand.size(), std::nullopt);
    routings.assign(cand.size(), RoutingOutcome{});
    util::ParallelFor(pool, static_cast<int>(cand.size()), [&](int i) {
      const size_t k = static_cast<size_t>(i);
      ProvisionedState st = cur_state;
      st.SyncTo(cand[k]);
      routings[k] = AssignRoutesAndRates(st.CapacityGraph(), demands,
                                         options.routing);
      states[k] = std::move(st);
    });

    // Select deterministically in index order; Metropolis on the best.
    // Best-state comparisons run on scalars only; the winning candidate's
    // state/routing are materialized once afterwards (moved, not copied,
    // unless the accepted candidate is the same one).
    size_t pick = 0;
    int best_idx = -1;
    for (size_t i = 0; i < cand.size(); ++i) {
      const double energy = routings[i].throughput;
      const int dist = cand[i].DistanceTo(current);
      const int served = StarvedServed(starved, routings[i]);
      const bool better =
          served > out.best_starved ||
          (served == out.best_starved &&
           (energy > out.best_energy + 1e-9 ||
            (energy > out.best_energy - 1e-9 && dist < out.best_dist)));
      if (better) {
        out.best_energy = energy;
        out.best_dist = dist;
        out.best_starved = served;
        best_idx = static_cast<int>(i);
      }
      if (routings[i].throughput > routings[pick].throughput + 1e-12) {
        pick = i;
      }
    }
    const double nb_energy = routings[pick].throughput;
    bool accept = nb_energy >= cur_energy;
    if (!accept) {
      const double prob = std::exp((nb_energy - cur_energy) / temperature);
      accept = rng.Uniform() < prob;
    }
    if (best_idx >= 0) {
      const size_t b = static_cast<size_t>(best_idx);
      out.best_topology = cand[b];
      if (accept && pick == b) {
        out.state = *states[b];
        out.routing = routings[b];
      } else {
        out.state = std::move(*states[b]);
        out.routing = std::move(routings[b]);
      }
    }
    if (accept) {
      OWAN_HISTO("anneal.energy_delta", ::owan::obs::Unit::kGigabits,
                 nb_energy - cur_energy);
      cur_topo = std::move(cand[pick]);
      cur_state = std::move(*states[pick]);
      cur_routing = std::move(routings[pick]);
      cur_energy = nb_energy;
      ++out.accepted;
    }
    // One cooling step per evaluated candidate keeps the schedule aligned
    // with the serial search at equal iteration budgets.
    for (size_t i = 0; i < cand.size(); ++i) temperature *= options.alpha;
    if (exhausted) break;
  }

  out.iterations = iters;
  return out;
}

// One annealing chain (Algorithm 1 minus the adoption guard). With
// batch_size <= 1 this consumes the RNG stream in exactly the pre-parallel
// order, so chain 0 of a multi-chain run — and the whole of a default run —
// is bit-for-bit the classic search.
ChainResult RunChain(const Topology& current,
                     const optical::OpticalNetwork& blank_optical,
                     const std::vector<TransferDemand>& demands,
                     const AnnealOptions& options,
                     const std::vector<int>& port_budget,
                     const std::vector<size_t>& starved, int perturb_moves,
                     util::Rng& rng, util::ThreadPool* pool,
                     EnergyEvaluator& eval, const Deadline& deadline,
                     const Topology* start_override = nullptr) {
  Topology start = start_override != nullptr ? *start_override : current;
  for (int i = 0; i < perturb_moves; ++i) {
    auto t = ComputeNeighbor(start, rng, &port_budget);
    if (t) start = std::move(*t);
  }
  if (std::max(1, options.batch_size) == 1) {
    return RunChainSerial(current, std::move(start), blank_optical, demands,
                          options, port_budget, rng, starved, eval, deadline);
  }
  return RunChainBatched(current, std::move(start), blank_optical, demands,
                         options, port_budget, rng, starved, pool, deadline);
}

// RunChain plus the per-chain telemetry every caller wants: a
// "core"/"anneal.chain" span carrying the chain's index, iteration and
// acceptance counts, plus the global iteration/acceptance counters.
ChainResult RunChainTraced(int chain, const Topology& current,
                           const optical::OpticalNetwork& blank_optical,
                           const std::vector<TransferDemand>& demands,
                           const AnnealOptions& options,
                           const std::vector<int>& port_budget,
                           const std::vector<size_t>& starved,
                           int perturb_moves, util::Rng& rng,
                           util::ThreadPool* pool, EnergyEvaluator& eval,
                           const Deadline& deadline,
                           const Topology* start_override = nullptr) {
  OWAN_SPAN(chain_span, "core", "anneal.chain");
  ChainResult cr =
      RunChain(current, blank_optical, demands, options, port_budget, starved,
               perturb_moves, rng, pool, eval, deadline, start_override);
  chain_span.AddArg("chain", chain);
  chain_span.AddArg("iterations", cr.iterations);
  chain_span.AddArg("accepted", cr.accepted);
  chain_span.AddArg("best_energy", cr.best_energy);
  OWAN_COUNT_N("anneal.iterations", ::owan::obs::Unit::kOps, cr.iterations);
  OWAN_COUNT_N("anneal.accepted", ::owan::obs::Unit::kOps, cr.accepted);
  return cr;
}

// Marginal improvements do not justify taking circuits dark: stick with
// the baseline unless the win clears the adoption threshold — EXCEPT when
// the candidate rescues a starved transfer the baseline cannot serve at
// all (the §3.2 starvation guard must be able to force a reconfiguration,
// not just reorder transfers).
AnnealResult ApplyAdoptionGuard(ChainResult&& cr, const Topology& current,
                                const optical::OpticalNetwork& blank_optical,
                                const std::vector<TransferDemand>& demands,
                                const AnnealOptions& options,
                                const Topology& base_topology,
                                double base_energy,
                                std::optional<ProvisionedState>&& base_state,
                                RoutingOutcome&& base_routing,
                                int base_starved, int total_iterations,
                                int total_accepted) {
  AnnealResult best;
  // The walk's own verdict survives even when the guard keeps the baseline:
  // callers feed it back as the next slot's warm hint.
  best.searched_best = cr.best_topology;
  best.searched_energy = cr.best_energy;
  best.searched_starved = cr.best_starved;
  const bool rescues_starved = cr.best_starved > base_starved;
  if (!rescues_starved &&
      cr.best_energy <
          base_energy * (1.0 + options.min_adopt_gain) + 1e-9) {
    best.best_topology = base_topology;
    best.best_energy = base_energy;
    best.state = std::move(base_state);
    best.routing = std::move(base_routing);
  } else {
    OWAN_COUNT("anneal.adoptions");
    best.best_topology = std::move(cr.best_topology);
    best.best_energy = cr.best_energy;
    best.state = std::move(cr.state);
    best.routing = std::move(cr.routing);
  }
  best.iterations = total_iterations;
  best.accepted = total_accepted;
  // Under QoT the walk's state is history-dependent: incremental SyncTo
  // steps can realize different circuits (hence different per-link
  // capacities) than a cold derivation of the same topology. Canonicalize
  // the adopted output by re-realizing from a blank plant, so the installed
  // allocation is a pure function of (plant, topology, demands) — the same
  // derivation checkpoint restore and the invariant checker reproduce.
  // Legacy capacities depend only on unit counts, so this is QoT-only.
  if (blank_optical.qot().enabled) {
    ProvisionedState fresh{blank_optical};
    fresh.SyncTo(best.best_topology);
    best.routing =
        AssignRoutesAndRates(fresh.CapacityGraph(), demands, options.routing);
    best.best_energy = best.routing.throughput;
    best.state = std::move(fresh);
  }
  best.circuit_changes = best.best_topology.DistanceTo(current);
  OWAN_HISTO("anneal.circuit_changes", ::owan::obs::Unit::kOps,
             best.circuit_changes);
  return best;
}

}  // namespace

AnnealResult ComputeNetworkState(const Topology& current,
                                 const optical::OpticalNetwork& blank_optical,
                                 const std::vector<TransferDemand>& demands,
                                 const AnnealOptions& options,
                                 util::Rng& rng, util::ThreadPool* pool,
                                 AnnealScratch* scratch,
                                 const Topology* warm_hint) {
  if (current.NumSites() != blank_optical.NumSites()) {
    throw std::invalid_argument(
        "ComputeNetworkState: topology/plant site count mismatch");
  }
  OWAN_SPAN(anneal_span, "core", "anneal");
  anneal_span.AddArg("num_chains", std::max(1, options.num_chains));
  OWAN_COUNT("anneal.runs");
  Deadline deadline;
  if (options.time_budget_s > 0.0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(options.time_budget_s));
  }
  // Port budgets come from the surviving plant: transceiver failures and
  // site outages shrink what the search may wire up (§3.4).
  std::vector<int> port_budget;
  port_budget.reserve(static_cast<size_t>(blank_optical.NumSites()));
  for (int v = 0; v < blank_optical.NumSites(); ++v) {
    port_budget.push_back(blank_optical.UsablePorts(v));
  }

  // Indices of transfers past the starvation threshold: the search treats
  // serving them as lexicographically more important than raw throughput.
  std::vector<size_t> starved;
  for (size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].slots_waited >= options.routing.policy.starvation_slots) {
      starved.push_back(i);
    }
  }

  const int num_chains = std::max(1, options.num_chains);
  const int num_threads = std::max(1, options.num_threads);

  // Bare calls that ask for parallelism without supplying a reusable pool
  // get a transient one (num_threads total: the caller participates, so
  // the pool holds num_threads - 1 workers).
  std::unique_ptr<util::ThreadPool> local_pool;
  if (pool == nullptr && num_threads > 1 &&
      (num_chains > 1 || options.batch_size > 1)) {
    local_pool = std::make_unique<util::ThreadPool>(num_threads - 1);
    pool = local_pool.get();
  }

  // Chains evaluate through per-chain EnergyEvaluators. A caller-supplied
  // scratch (OwanTe owns one) carries their path caches across slots;
  // transient callers get call-local evaluators, which still amortize
  // within the chain.
  AnnealScratch local_scratch;
  AnnealScratch& scr = scratch ? *scratch : local_scratch;
  scr.Reserve(num_chains);

  if (num_chains == 1) {
    // Classic single-chain path: identical RNG stream and adoption guard
    // (relative to the chain's own — possibly cold — start) as the
    // pre-parallel implementation.
    ChainResult cr = RunChainTraced(
        0, current, blank_optical, demands, options, port_budget, starved,
        options.warm_start ? 0 : options.cold_start_moves, rng, pool,
        scr.ForChain(0), deadline);
    const int iters = cr.iterations;
    const int accepted = cr.accepted;
    Topology base_topology = cr.start_topology;
    double base_energy = cr.start_energy;
    std::optional<ProvisionedState> base_state = std::move(cr.start_state);
    RoutingOutcome base_routing = std::move(cr.start_routing);
    const int base_starved = cr.start_starved;
    return ApplyAdoptionGuard(std::move(cr), current, blank_optical, demands,
                              options, base_topology, base_energy,
                              std::move(base_state), std::move(base_routing),
                              base_starved, iters, accepted);
  }

  // Multi-chain: chain 0 replays the caller's RNG stream from a copy (so
  // the multi-chain best dominates the single-chain result on the same
  // seed); the caller's rng advances once per extra chain, which keeps
  // repeated invocations with the same seed exactly reproducible.
  std::vector<util::Rng> chain_rngs;
  chain_rngs.reserve(static_cast<size_t>(num_chains));
  chain_rngs.push_back(rng);
  for (int c = 1; c < num_chains; ++c) chain_rngs.push_back(rng.Fork());

  // Chain 0 honors warm_start; later chains explore from progressively
  // stronger perturbations of the current topology (capped at the cold
  // start's shuffle length). When the caller supplies a warm hint that
  // fits the current plant (site count and per-site port budgets), chain 1
  // starts from it unperturbed instead — temporal coherence makes the
  // previous slot's searched best a stronger opening than a random shake.
  std::vector<int> perturb(static_cast<size_t>(num_chains), 0);
  perturb[0] = options.warm_start ? 0 : options.cold_start_moves;
  for (int c = 1; c < num_chains; ++c) {
    perturb[static_cast<size_t>(c)] =
        std::min(options.cold_start_moves, 4 * c);
  }
  const Topology* hint_start = nullptr;
  if (warm_hint != nullptr && warm_hint->NumSites() == current.NumSites()) {
    bool fits = true;
    for (net::NodeId v = 0; v < warm_hint->NumSites(); ++v) {
      if (warm_hint->PortsUsed(v) > port_budget[static_cast<size_t>(v)]) {
        fits = false;
        break;
      }
    }
    if (fits) {
      hint_start = warm_hint;
      perturb[1] = 0;
    }
  }

  std::vector<std::optional<ChainResult>> results(
      static_cast<size_t>(num_chains));
  util::ParallelFor(pool, num_chains, [&](int c) {
    const size_t k = static_cast<size_t>(c);
    results[k] = RunChainTraced(c, current, blank_optical, demands, options,
                                port_budget, starved, perturb[k],
                                chain_rngs[k], pool, scr.ForChain(c),
                                deadline,
                                c == 1 ? hint_start : nullptr);
  });

  // The adoption guard for multi-chain selection is always measured
  // against the *current* topology: perturbed chains have meaningless
  // start energies of their own.
  Topology base_topology = current;
  double base_energy;
  std::optional<ProvisionedState> base_state;
  RoutingOutcome base_routing;
  int base_starved;
  if (options.warm_start) {
    base_energy = results[0]->start_energy;
    base_state = std::move(results[0]->start_state);
    base_routing = std::move(results[0]->start_routing);
    base_starved = results[0]->start_starved;
  } else {
    ProvisionedState s{blank_optical};
    s.SyncTo(current);
    base_routing =
        AssignRoutesAndRates(s.CapacityGraph(), demands, options.routing);
    base_energy = base_routing.throughput;
    base_starved = StarvedServed(starved, base_routing);
    base_state = std::move(s);
  }

  int pick = 0;
  int total_iterations = 0;
  int total_accepted = 0;
  for (int c = 0; c < num_chains; ++c) {
    const ChainResult& a = *results[static_cast<size_t>(c)];
    total_iterations += a.iterations;
    total_accepted += a.accepted;
    if (c == 0) continue;
    const ChainResult& b = *results[static_cast<size_t>(pick)];
    const bool better =
        a.best_starved > b.best_starved ||
        (a.best_starved == b.best_starved &&
         (a.best_energy > b.best_energy + 1e-9 ||
          (a.best_energy > b.best_energy - 1e-9 &&
           a.best_dist < b.best_dist)));
    if (better) pick = c;
  }

  return ApplyAdoptionGuard(std::move(*results[static_cast<size_t>(pick)]),
                            current, blank_optical, demands, options,
                            base_topology, base_energy, std::move(base_state),
                            std::move(base_routing), base_starved,
                            total_iterations, total_accepted);
}

}  // namespace owan::core
