#include "core/provisioned_state.h"

#include <algorithm>

namespace owan::core {

ProvisionedState::ProvisionedState(optical::OpticalNetwork optical)
    : optical_(std::move(optical)),
      requested_(optical_.NumSites()),
      realized_(optical_.NumSites()) {}

int ProvisionedState::SyncTo(const Topology& target, SyncUndo* undo) {
  if (undo) {
    undo->prev_requested = requested_;
    undo->prev_realized = realized_;
    undo->prev_next_id = optical_.next_circuit_id();
    undo->released.clear();
    undo->provisioned.clear();
  }

  // Release first so freed wavelengths/regenerators can serve the additions.
  auto [to_add, to_remove] = target.Diff(requested_);
  for (const Link& l : to_remove) {
    auto key = Key(l.u, l.v);
    auto& circuits = link_circuits_[key];
    for (int i = 0; i < l.units && !circuits.empty(); ++i) {
      if (undo) undo->released.push_back(optical_.circuit(circuits.back()));
      optical_.ReleaseCircuit(circuits.back());
      circuits.pop_back();
      realized_.AddUnits(l.u, l.v, -1);
    }
    if (circuits.empty()) link_circuits_.erase(key);
  }

  int failed_units = 0;
  for (const Link& l : to_add) {
    for (int i = 0; i < l.units; ++i) {
      auto id = optical_.ProvisionCircuit(l.u, l.v);
      if (id) {
        link_circuits_[Key(l.u, l.v)].push_back(*id);
        realized_.AddUnits(l.u, l.v, 1);
        if (undo) undo->provisioned.push_back(*id);
      } else {
        ++failed_units;
      }
    }
  }
  requested_ = target;
  return failed_units;
}

void ProvisionedState::Rollback(const SyncUndo& undo) {
  // Undo provisions first (they came last), newest first, so wavelengths
  // freed here are available again when the released circuits are restored.
  for (auto it = undo.provisioned.rbegin(); it != undo.provisioned.rend();
       ++it) {
    const optical::Circuit& c = optical_.circuit(*it);
    auto key = Key(c.src, c.dst);
    auto& circuits = link_circuits_[key];
    // Provisions append, so within a key the newest id is at the back.
    circuits.pop_back();
    if (circuits.empty()) link_circuits_.erase(key);
    optical_.ReleaseCircuit(*it);
  }
  // Restore released circuits verbatim, newest release first, which rebuilds
  // each link's circuit vector in its original order.
  for (auto it = undo.released.rbegin(); it != undo.released.rend(); ++it) {
    optical_.RestoreCircuit(*it);
    link_circuits_[Key(it->src, it->dst)].push_back(it->id);
  }
  optical_.RewindCircuitIds(undo.prev_next_id);
  requested_ = undo.prev_requested;
  realized_ = undo.prev_realized;
}

net::Graph ProvisionedState::CapacityGraph() const {
  net::Graph g = realized_.ToGraph(optical_.wavelength_capacity());
  if (!optical_.qot().enabled) return g;
  // ToGraph adds edges in canonical link order, so edge i is Links()[i].
  const std::vector<Link> links = realized_.Links();
  for (size_t i = 0; i < links.size(); ++i) {
    g.edge(static_cast<net::EdgeId>(i)).capacity =
        RealizedCapacityGbps(links[i].u, links[i].v);
  }
  return g;
}

double ProvisionedState::RealizedCapacityGbps(net::NodeId u,
                                              net::NodeId v) const {
  if (!optical_.qot().enabled) {
    return realized_.Units(u, v) * optical_.wavelength_capacity();
  }
  auto it = link_circuits_.find(Key(u, v));
  if (it == link_circuits_.end()) return 0.0;
  double cap = 0.0;
  for (optical::CircuitId id : it->second) {
    cap += optical_.circuit(id).capacity_gbps;
  }
  return cap;
}

std::vector<optical::CircuitId> ProvisionedState::LinkCircuits(
    net::NodeId u, net::NodeId v) const {
  auto it = link_circuits_.find(Key(u, v));
  if (it == link_circuits_.end()) return {};
  return it->second;
}

std::vector<Link> ProvisionedState::HandleFiberFailure(net::EdgeId fiber) {
  return DropCircuits(optical_.FailFiber(fiber));
}

std::vector<Link> ProvisionedState::HandleFiberDegradation(net::EdgeId fiber,
                                                           double db) {
  return DropCircuits(optical_.DegradeFiber(fiber, db));
}

std::vector<Link> ProvisionedState::DropCircuits(
    const std::vector<optical::CircuitId>& victims) {
  std::vector<Link> lost;
  for (optical::CircuitId id : victims) {
    for (auto& [key, circuits] : link_circuits_) {
      auto it = std::find(circuits.begin(), circuits.end(), id);
      if (it == circuits.end()) continue;
      circuits.erase(it);
      realized_.AddUnits(key.first, key.second, -1);
      bool merged = false;
      for (Link& l : lost) {
        if (Key(l.u, l.v) == key) {
          ++l.units;
          merged = true;
          break;
        }
      }
      if (!merged) lost.push_back(Link{key.first, key.second, 1});
      break;
    }
  }
  return lost;
}

}  // namespace owan::core
