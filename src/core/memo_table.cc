#include "core/memo_table.h"

namespace owan::core {

namespace {

// SplitMix64 finalizer: Topology::Hash() is accumulation-style, so spread
// its bits before slicing out stripe indices.
uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MemoTable::MemoTable(int log2_slots)
    : slots_(static_cast<size_t>(1)
             << (log2_slots < 4 ? 4 : (log2_slots > 24 ? 24 : log2_slots))) {
  for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
}

MemoTable::~MemoTable() {
  for (auto& s : slots_) delete s.load(std::memory_order_relaxed);
}

void MemoTable::BeginSlot() {
  for (auto& s : slots_) {
    delete s.load(std::memory_order_relaxed);
    s.store(nullptr, std::memory_order_relaxed);
  }
}

size_t MemoTable::StripeBase(const Topology& realized) const {
  const uint64_t h = MixBits(realized.Hash());
  return (static_cast<size_t>(h) & (slots_.size() - 1)) & ~(kStripe - 1);
}

const MemoTable::Entry* MemoTable::Find(const Topology& realized) const {
  const size_t base = StripeBase(realized);
  for (size_t i = 0; i < kStripe; ++i) {
    const Entry* e = slots_[base + i].load(std::memory_order_acquire);
    // Slots fill in order within a stripe, so the first null ends the probe.
    // A concurrent insert can make this read a stale null: that is a plain
    // miss — the caller recomputes the identical pure value.
    if (e == nullptr) return nullptr;
    if (e->realized == realized) return e;
  }
  return nullptr;
}

bool MemoTable::Insert(const Topology& realized, double energy,
                       int starved_served) {
  const size_t base = StripeBase(realized);
  Entry* mine = nullptr;
  for (size_t i = 0; i < kStripe; ++i) {
    std::atomic<Entry*>& slot = slots_[base + i];
    Entry* cur = slot.load(std::memory_order_acquire);
    if (cur == nullptr) {
      if (mine == nullptr) mine = new Entry{realized, energy, starved_served};
      if (slot.compare_exchange_strong(cur, mine, std::memory_order_release,
                                       std::memory_order_acquire)) {
        return true;
      }
      // Lost the race; `cur` now holds the winner — fall through to check it.
    }
    if (cur->realized == realized) {
      delete mine;
      return false;
    }
  }
  delete mine;  // stripe full: drop the insert, never block the hot loop
  return false;
}

int64_t MemoTable::LiveEntries() const {
  int64_t n = 0;
  for (const auto& s : slots_) {
    if (s.load(std::memory_order_relaxed) != nullptr) ++n;
  }
  return n;
}

}  // namespace owan::core
