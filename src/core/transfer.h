#ifndef OWAN_CORE_TRANSFER_H_
#define OWAN_CORE_TRANSFER_H_

#include <vector>

#include "net/graph.h"

namespace owan::core {

inline constexpr double kNoDeadline = -1.0;

// A bulk-transfer request as submitted by a client (paper §3.1): the tuple
// (src, dst, size, deadline). Sizes are in gigabits; times in seconds.
struct Request {
  int id = -1;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  double size = 0.0;          // gigabits
  double arrival = 0.0;       // seconds since experiment start
  double deadline = kNoDeadline;  // absolute time; kNoDeadline if none

  bool HasDeadline() const { return deadline > 0.0; }

  bool operator==(const Request&) const = default;
};

// A transfer as the controller sees it at scheduling time: its identity,
// how much is left, and its scheduling keys.
struct TransferDemand {
  int id = -1;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  double remaining = 0.0;     // gigabits still to deliver
  double rate_cap = 0.0;      // max useful rate this slot (remaining/slot)
  double deadline = kNoDeadline;  // absolute deadline, if any
  int slots_waited = 0;       // consecutive slots with zero allocation
};

// Rate assigned to one routing path of one transfer.
struct PathAllocation {
  net::Path path;
  double rate = 0.0;  // Gbps

  bool operator==(const PathAllocation& o) const {
    return path == o.path && rate == o.rate;
  }
};

// The routing configuration rc_f of a single transfer: its paths and the
// rate limit on each (Table 1).
struct TransferAllocation {
  int id = -1;
  std::vector<PathAllocation> paths;

  double TotalRate() const {
    double total = 0.0;
    for (const PathAllocation& p : paths) total += p.rate;
    return total;
  }

  bool operator==(const TransferAllocation& o) const {
    return id == o.id && paths == o.paths;
  }
};

}  // namespace owan::core

#endif  // OWAN_CORE_TRANSFER_H_
