#ifndef OWAN_CORE_OWAN_H_
#define OWAN_CORE_OWAN_H_

#include <memory>
#include <optional>
#include <string>

#include "core/annealing.h"
#include "core/coflow.h"
#include "core/te_scheme.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace owan::core {

// Which knobs Owan may turn — the Fig. 10c "breakdown of gains" ablation.
enum class ControlLevel {
  kRateOnly,          // fixed topology, fixed single path, rate control only
  kRateAndRouting,    // fixed topology, multi-path routing + rates
  kFull,              // topology + routing + rates (the real Owan)
};

struct OwanOptions {
  AnnealOptions anneal;
  ControlLevel control = ControlLevel::kFull;
  uint64_t seed = 1;
  // Optional group-transfer support (§3.4): when set, SJF ordering keys are
  // replaced with Smallest-Effective-Bottleneck-First keys so each group is
  // scheduled as a unit by its slowest member. Not owned.
  const CoflowRegistry* coflows = nullptr;
  // Stateless per-slot seeding (§3.4 failover): each Compute call draws
  // from a fresh RNG derived from (seed, input.now) instead of one stream
  // advancing across slots. A controller restored from a checkpoint then
  // makes exactly the decisions the crashed one would have, with no RNG
  // position to recover. Off by default — the default stream is pinned by
  // the PR 1/2 golden tests.
  bool slot_seeded = false;
};

// The Owan traffic-engineering scheme: per slot, search for a better
// network-layer topology with simulated annealing (jointly scoring circuit
// feasibility and routing/rate assignment), then emit the new topology and
// the transfer allocations on it.
class OwanTe : public TeScheme {
 public:
  explicit OwanTe(OwanOptions options);

  std::string name() const override;
  TeOutput Compute(const TeInput& input) override;

  // Statistics from the last Compute call (for microbenchmarks).
  const AnnealResult& last_anneal() const { return last_; }

  // Degraded-mode telemetry: slots where the annealing search failed (threw)
  // and Owan fell back to greedy multipath routing on the current topology.
  int degraded_slots() const { return degraded_slots_; }
  bool last_degraded() const { return last_degraded_; }

 private:
  TeOutput ComputeFixedTopology(const TeInput& input, bool multipath);

  OwanOptions options_;
  util::Rng rng_;
  AnnealResult last_;
  int degraded_slots_ = 0;
  bool last_degraded_ = false;
  // Reused across slots when options.anneal.num_threads > 1, so the
  // per-slot search never pays thread spawn/join costs. The pool holds
  // num_threads - 1 workers; the Compute thread participates.
  std::unique_ptr<util::ThreadPool> pool_;
  // Per-chain incremental evaluators, reused across slots so each chain's
  // path cache stays warm from one Compute call to the next.
  AnnealScratch scratch_;
  // Warm-start hint for multi-chain searches: the previous slot's searched
  // best topology (pre-adoption-guard). Passed to ComputeNetworkState as
  // warm_hint; cleared on degraded slots so a recovered search starts from
  // the plant's actual current topology alone.
  std::optional<Topology> hint_;
};

}  // namespace owan::core

#endif  // OWAN_CORE_OWAN_H_
