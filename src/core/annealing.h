#ifndef OWAN_CORE_ANNEALING_H_
#define OWAN_CORE_ANNEALING_H_

#include <optional>

#include "core/energy_evaluator.h"
#include "core/provisioned_state.h"
#include "core/routing.h"
#include "core/topology.h"
#include "core/transfer.h"
#include "util/rng.h"

namespace owan::util {
class ThreadPool;
}

namespace owan::core {

// Algorithm 2: one random neighbor move. Picks two links (u,v) and (p,q),
// removes one unit of capacity from each and adds one unit to (u,p) and
// (v,q) (or the mirrored pairing) — four link changes that leave every
// site's port usage unchanged. Returns nullopt if no valid move exists
// (fewer than two links, or every pairing would self-loop).
//
// When `port_budget` is given (ports per site from the optical plant) and
// some ports are dark — normally only after failures — the move set also
// includes re-homing one endpoint of a link onto a free port, so the search
// can recover capacity the strict rotation could never reach.
std::optional<Topology> ComputeNeighbor(
    const Topology& s, util::Rng& rng,
    const std::vector<int>* port_budget = nullptr);

struct AnnealOptions {
  // Geometric cooling factor (Algorithm 1, line 16).
  double alpha = 0.95;
  // Stop when T < epsilon_ratio * T0.
  double epsilon_ratio = 1e-3;
  // Hard iteration cap per chain (used by the Fig. 10d running-time sweep).
  int max_iterations = 400;
  // Paper default: start from the current topology. false = cold start from
  // a randomly shuffled topology (ablation).
  bool warm_start = true;
  int cold_start_moves = 64;
  // Reuse each chain evaluator's provisioned state across slots when the
  // blank plant is unchanged (certified by its mutation stamp; see
  // EnergyEvaluator::Reset): the next slot SyncTo-diffs from the previous
  // slot's final state instead of re-provisioning a fresh plant copy — the
  // cross-slot analogue of the in-chain apply/rollback evaluation. On
  // plants with spare wavelengths the warm state is identical to the cold
  // derivation; under heavy fragmentation both are valid provisionings and
  // same-seed reruns remain deterministic either way.
  bool reuse_slot_state = true;
  // Keep the current topology unless the best candidate beats it by this
  // relative margin. Reconfiguration is not free (circuits go dark for
  // seconds), so marginal wins are not worth the churn.
  double min_adopt_gain = 0.02;
  // If > 0, candidate states farther than this many circuit changes from
  // the current topology are never explored — a hard cap on per-slot
  // update size (keeps the Fig. 10b transition small and fast).
  int max_distance = 0;
  // If > 0, a wall-clock budget (seconds) for the whole search: chains stop
  // drawing candidates once it expires and the best state found so far
  // stands. With a warm start an expired budget degrades to the current
  // topology — the controller's graceful-degradation path under failures
  // (OwanTe then falls back to routing-only control for the slot). 0 = off;
  // the default search is never clock-dependent.
  double time_budget_s = 0.0;

  // ---- Parallel search (all default off: the defaults reproduce the
  // paper's single-chain search bit-for-bit, same RNG stream and all) ----
  //
  // Independent annealing chains run per slot: chain 0 replays the
  // single-chain search (warm start, caller's RNG stream); chains 1..K-1
  // start from progressively perturbed topologies with RNG streams forked
  // deterministically from the caller's seed. The lexicographically best
  // chain result (starved transfers served, then energy, then proximity to
  // the current topology) wins.
  int num_chains = 1;
  // Total concurrency used for chains and candidate batches. 1 = fully
  // inline. When ComputeNetworkState is given a ThreadPool it uses that
  // (the reusable path — OwanTe owns one); otherwise num_threads > 1
  // spins up a transient pool for the call.
  int num_threads = 1;
  // Candidate neighbors evaluated concurrently per temperature step within
  // a chain; the Metropolis rule is applied to the best of the batch. 1
  // reproduces the classic one-neighbor step exactly.
  int batch_size = 1;

  RoutingOptions routing;
};

struct AnnealResult {
  Topology best_topology;
  double best_energy = 0.0;
  std::optional<ProvisionedState> state;  // provisioned at best_topology
  RoutingOutcome routing;        // allocation on the realized topology
  int iterations = 0;            // neighbor evaluations across all chains
  int accepted = 0;              // moves accepted across all chains
  int circuit_changes = 0;       // DistanceTo(current) of the best topology

  // The search's own best, before the adoption guard possibly kept the
  // baseline. Consecutive demand matrices are temporally coherent, so a
  // candidate good enough to win the walk — but not good enough to justify
  // reconfiguring this slot — is a strong extra starting point next slot:
  // OwanTe feeds it back through ComputeNetworkState's warm_hint.
  Topology searched_best;
  double searched_energy = 0.0;
  int searched_starved = 0;
};

// Algorithm 1: simulated-annealing search for the next network state.
//
// `current` is this slot's topology; `blank_optical` is the optical plant
// with *no* topology circuits provisioned (the search re-provisions from
// scratch and keeps incremental deltas thereafter). Energy is the total
// throughput achievable for `demands` on the candidate topology.
//
// `pool` (optional) supplies reusable worker threads for multi-chain /
// batched search; with the default options it is never touched. Results
// are deterministic functions of (inputs, seed) — never of thread count
// or scheduling.
//
// `scratch` (optional) carries the per-chain EnergyEvaluators — and with
// them the per-pair path caches, the shared transposition table, and
// (with reuse_slot_state) the provisioned optical states — across calls,
// so slot k+1 starts from slot k's warm caches instead of enumerating the
// world again. Long-lived callers (OwanTe) should own one; results are
// identical with or without.
//
// `warm_hint` (optional) is a previous slot's searched-best topology. In a
// multi-chain search it replaces the first perturbed chain's start (chain
// 0 keeps replaying the classic walk), exploiting temporal coherence of
// consecutive demand matrices. Ignored for single-chain searches — those
// stay bit-for-bit the paper's walk — and whenever the hint does not fit
// the current plant (site count or port budgets).
AnnealResult ComputeNetworkState(const Topology& current,
                                 const optical::OpticalNetwork& blank_optical,
                                 const std::vector<TransferDemand>& demands,
                                 const AnnealOptions& options,
                                 util::Rng& rng,
                                 util::ThreadPool* pool = nullptr,
                                 AnnealScratch* scratch = nullptr,
                                 const Topology* warm_hint = nullptr);

}  // namespace owan::core

#endif  // OWAN_CORE_ANNEALING_H_
