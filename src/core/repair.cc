#include "core/repair.h"

#include <algorithm>
#include <limits>

#include "core/provisioned_state.h"

namespace owan::core {

Topology RepairDarkPorts(const Topology& topo,
                         const optical::OpticalNetwork& optical,
                         const std::vector<int>& port_budget) {
  Topology repaired = topo;
  const int n = repaired.NumSites();

  auto free_ports = [&](net::NodeId v) {
    return port_budget[static_cast<size_t>(v)] - repaired.PortsUsed(v);
  };

  // Candidate pairs ordered by fiber distance so repairs prefer short,
  // regeneration-free circuits.
  struct Cand {
    double dist;
    net::NodeId u, v;
  };
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<Cand> cands;
    for (net::NodeId u = 0; u < n; ++u) {
      if (free_ports(u) <= 0) continue;
      for (net::NodeId v = u + 1; v < n; ++v) {
        if (free_ports(v) <= 0) continue;
        const double d = optical.FiberDistanceKm(u, v);
        if (d == std::numeric_limits<double>::infinity()) continue;
        cands.push_back(Cand{d, u, v});
      }
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      if (a.u != b.u) return a.u < b.u;
      return a.v < b.v;
    });
    for (const Cand& c : cands) {
      Topology t = repaired;
      t.AddUnits(c.u, c.v, 1);
      ProvisionedState trial(optical);
      if (trial.SyncTo(t) == 0) {
        repaired = std::move(t);
        progress = true;
        break;
      }
    }
  }
  return repaired;
}

Topology ShrinkToPortBudget(const Topology& topo,
                            const std::vector<int>& port_budget) {
  Topology out = topo;
  for (net::NodeId v = 0; v < out.NumSites(); ++v) {
    while (out.PortsUsed(v) > port_budget[static_cast<size_t>(v)]) {
      net::NodeId peer = net::kInvalidNode;
      int peer_units = 0;
      for (const Link& l : out.Links()) {
        if (l.u != v && l.v != v) continue;
        const net::NodeId w = l.u == v ? l.v : l.u;
        if (l.units > peer_units ||
            (l.units == peer_units && (peer == net::kInvalidNode || w < peer))) {
          peer = w;
          peer_units = l.units;
        }
      }
      if (peer == net::kInvalidNode) break;  // budget < 0 with no links left
      out.AddUnits(v, peer, -1);
    }
  }
  return out;
}

}  // namespace owan::core
