#ifndef OWAN_CORE_ROUTING_H_
#define OWAN_CORE_ROUTING_H_

#include <vector>

#include "core/policy.h"
#include "core/transfer.h"
#include "net/graph.h"

namespace owan::core {

struct RoutingOptions {
  PolicyOptions policy;
  // Longest routing path considered (hop rounds l = 1..max_hops,
  // Algorithm 3 lines 17-25).
  int max_hops = 4;
  // Cap on enumerated simple paths per (src, dst) pair.
  size_t max_paths_per_pair = 24;
  // false (paper Algorithm 3): round l serves every transfer's l-hop paths
  // before anyone uses l+1 hops. true: each transfer exhausts all its path
  // lengths before the next transfer gets anything (the strict SJF of the
  // motivating example's Plan B).
  bool strict_priority = false;
};

struct RoutingOutcome {
  double throughput = 0.0;  // sum of allocated rates (the SA energy)
  std::vector<TransferAllocation> allocations;  // parallel to input demands
};

// Algorithm 3, step 2: assigns multi-path routes and rates over the given
// network-layer capacity graph. Transfers are ordered by the scheduling
// policy; round l considers only paths of exactly l hops, so higher-priority
// transfers claim short paths before anyone may use long ones.
RoutingOutcome AssignRoutesAndRates(const net::Graph& topo,
                                    const std::vector<TransferDemand>& demands,
                                    const RoutingOptions& options);

// Convenience: just the throughput (used as the annealing energy).
double ComputeThroughput(const net::Graph& topo,
                         const std::vector<TransferDemand>& demands,
                         const RoutingOptions& options);

}  // namespace owan::core

#endif  // OWAN_CORE_ROUTING_H_
