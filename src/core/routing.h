#ifndef OWAN_CORE_ROUTING_H_
#define OWAN_CORE_ROUTING_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "core/transfer.h"
#include "net/graph.h"

namespace owan::core {

struct RoutingOptions {
  PolicyOptions policy;
  // Longest routing path considered (hop rounds l = 1..max_hops,
  // Algorithm 3 lines 17-25).
  int max_hops = 4;
  // Cap on enumerated simple paths per (src, dst) pair.
  size_t max_paths_per_pair = 24;
  // false (paper Algorithm 3): round l serves every transfer's l-hop paths
  // before anyone uses l+1 hops. true: each transfer exhausts all its path
  // lengths before the next transfer gets anything (the strict SJF of the
  // motivating example's Plan B).
  bool strict_priority = false;
};

struct RoutingOutcome {
  double throughput = 0.0;  // sum of allocated rates (the SA energy)
  std::vector<TransferAllocation> allocations;  // parallel to input demands
};

// The enumerated path set of one (src, dst) pair, with the provenance bits
// the incremental evaluator's cache-invalidation rules need.
struct PairPaths {
  std::vector<net::Path> paths;
  // Paths came from the KShortestPaths fallback (PathsUpToHops found
  // nothing within max_hops): no hop bound applies, and the set depends on
  // global graph structure rather than only the links it traverses.
  bool fallback = false;
  // PathsUpToHops stopped at max_paths_per_pair: the set is an incomplete
  // sample, not the full bounded-hop path space.
  bool truncated = false;
};

// Supplies per-pair path sets to AssignRoutesAndRates. The default source
// enumerates fresh per call; the annealing evaluator substitutes a
// persistent cache with delta invalidation. Implementations must return
// exactly what EnumeratePairPaths would return on the same graph.
class PathSource {
 public:
  virtual ~PathSource() = default;
  virtual const PairPaths& PathsFor(net::NodeId src, net::NodeId dst) = 0;
};

// The canonical per-pair enumeration: bounded-hop simple paths, falling back
// to the 2 shortest unbounded paths when the pair is farther apart than
// max_hops (Algorithm 3's length rounds are unbounded; only the enumeration
// is capped for cost).
PairPaths EnumeratePairPaths(const net::Graph& topo, net::NodeId src,
                             net::NodeId dst, const RoutingOptions& options);

// Flat (SoA) working set for the greedy allocator, reusable across runs.
//
// The annealing hot loop runs the allocator hundreds of times per slot on
// graphs that differ by at most a few links. Keeping the working vectors
// (residual capacity, unmet demand, per-demand rates) plus a grant log and
// per-hop-round checkpoints in one arena-style struct buys two things:
//  - zero steady-state allocation: every vector is resized in place;
//  - incremental route repair: a later run whose graph differs only on a
//    known set of links restores the deepest checkpoint no dirty demand had
//    acted by and replays only the remaining hop rounds (see AllocateRates).
//
// The struct is plain data owned by the caller; AllocateRates and
// MaterializeOutcome are the only writers.
struct RoutingScratch {
  // One rate grant: `rate` on path index `path` of `demand`'s pair entry
  // (an index into PathsFor(src, dst).paths at the time of the run). The
  // log is the run's full routing output — RoutingOutcome materializes from
  // it on demand, so the hot loop never copies a Path.
  struct Grant {
    uint32_t demand = 0;
    uint32_t path = 0;
    double rate = 0.0;
  };

  // Allocator state snapshot after one stage (0 = the starvation pre-pass,
  // l >= 1 = hop round l). Stages ascend but need not be contiguous: a
  // replayed run records only the rounds it actually executed.
  struct Checkpoint {
    int stage = 0;
    std::vector<double> residual;  // per edge, in the run's edge-id space
    std::vector<double> unmet;     // per demand
    std::vector<double> rates;     // per demand
    double throughput = 0.0;
    size_t grant_count = 0;
  };

  // ---- last-run outputs (meaningful while run_valid) ----
  bool run_valid = false;
  double throughput = 0.0;
  std::vector<double> rates;  // per demand, == materialized TotalRate()
  std::vector<Grant> grants;  // global serve order
  // First hop round each demand can act in (its shortest path's hop count);
  // INT_MAX when it has no usable paths. Repair uses it to bound how early
  // a dirty demand's grants can start.
  std::vector<int> min_hop;

  // ---- replay support ----
  bool record_checkpoints = true;  // one-shot callers turn this off
  bool ckpt_valid = false;         // checkpoints describe the last run
  std::vector<Checkpoint> ckpts;   // ascending stage; [0] is stage 0
  // The last run's edge-id space: edge id -> canonical endpoints. Replay
  // across a graph rebuild rewrites kept checkpoints through this map.
  std::vector<std::pair<net::NodeId, net::NodeId>> ckpt_edges;

  // ---- cached schedule order (demand set + policy are per-slot stable) ----
  bool order_valid = false;
  std::vector<size_t> order;

  void Invalidate() {
    run_valid = false;
    ckpt_valid = false;
    order_valid = false;
  }

  // ---- internal temporaries (reused, never read across runs) ----
  std::vector<double> residual;
  std::vector<double> unmet;
  std::vector<uint32_t> cursor;
  std::vector<const PairPaths*> pair;
  std::unordered_map<uint64_t, int32_t> edge_remap;
};

// What changed since the run `RoutingScratch` describes — computed by the
// caller (the energy evaluator knows the topology diff and which path-cache
// entries it invalidated). All fields describe the CURRENT graph.
struct RepairHints {
  // Nothing changed: the previous run's outputs are the answer.
  bool no_changes = false;
  // Current-graph ids of edges whose capacity differs from the last run
  // (including edges that appeared). Restored checkpoints reset these to
  // full capacity: no clean-prefix grant ever touched them.
  std::vector<net::EdgeId> changed_edges;
  // Edge ids are unchanged from the last run (capacity-only diff); replay
  // skips the endpoint-keyed checkpoint rewrite.
  bool edge_ids_stable = false;
  // Minimum hop round any dirty demand (one whose path set or traversed
  // capacities changed) can act in. Grants in rounds before it — and the
  // stage-0 pre-pass — are bit-identical to a fresh run, so they are
  // restored from a checkpoint instead of recomputed.
  int restart_round = 1;
};

// The allocator core: Algorithm 3 step 2 over `paths`, writing rates, the
// grant log, and checkpoints into `s`; returns the throughput (the SA
// energy). With `repair` null (or no usable checkpoint) it runs from
// scratch — bit-for-bit the classic AssignRoutesAndRates serve order. With
// repair hints it restores the deepest checkpoint at a stage below
// restart_round and replays the remaining hop rounds, which is
// grant-identical: a clean demand's paths traverse no changed link, so the
// restored prefix equals the fresh run's, and every dirty demand's grants
// start at or after restart_round by construction.
double AllocateRates(const net::Graph& topo,
                     const std::vector<TransferDemand>& demands,
                     const RoutingOptions& options, PathSource& paths,
                     RoutingScratch& s, const RepairHints* repair = nullptr);

// Expands the grant log into the classic RoutingOutcome (Path copies and
// all). `paths` must still serve the path sets of the run that filled `s`.
RoutingOutcome MaterializeOutcome(const std::vector<TransferDemand>& demands,
                                  PathSource& paths, const RoutingScratch& s);

// Algorithm 3, step 2: assigns multi-path routes and rates over the given
// network-layer capacity graph. Transfers are ordered by the scheduling
// policy; round l considers only paths of exactly l hops, so higher-priority
// transfers claim short paths before anyone may use long ones. Convenience
// wrapper over AllocateRates + MaterializeOutcome with a one-shot scratch.
//
// `paths` (optional) overrides path enumeration; when null a fresh flat
// per-pair cache is built for the call.
RoutingOutcome AssignRoutesAndRates(const net::Graph& topo,
                                    const std::vector<TransferDemand>& demands,
                                    const RoutingOptions& options,
                                    PathSource* paths = nullptr);

// Convenience: just the throughput (used as the annealing energy).
double ComputeThroughput(const net::Graph& topo,
                         const std::vector<TransferDemand>& demands,
                         const RoutingOptions& options);

}  // namespace owan::core

#endif  // OWAN_CORE_ROUTING_H_
