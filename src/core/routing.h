#ifndef OWAN_CORE_ROUTING_H_
#define OWAN_CORE_ROUTING_H_

#include <vector>

#include "core/policy.h"
#include "core/transfer.h"
#include "net/graph.h"

namespace owan::core {

struct RoutingOptions {
  PolicyOptions policy;
  // Longest routing path considered (hop rounds l = 1..max_hops,
  // Algorithm 3 lines 17-25).
  int max_hops = 4;
  // Cap on enumerated simple paths per (src, dst) pair.
  size_t max_paths_per_pair = 24;
  // false (paper Algorithm 3): round l serves every transfer's l-hop paths
  // before anyone uses l+1 hops. true: each transfer exhausts all its path
  // lengths before the next transfer gets anything (the strict SJF of the
  // motivating example's Plan B).
  bool strict_priority = false;
};

struct RoutingOutcome {
  double throughput = 0.0;  // sum of allocated rates (the SA energy)
  std::vector<TransferAllocation> allocations;  // parallel to input demands
};

// The enumerated path set of one (src, dst) pair, with the provenance bits
// the incremental evaluator's cache-invalidation rules need.
struct PairPaths {
  std::vector<net::Path> paths;
  // Paths came from the KShortestPaths fallback (PathsUpToHops found
  // nothing within max_hops): no hop bound applies, and the set depends on
  // global graph structure rather than only the links it traverses.
  bool fallback = false;
  // PathsUpToHops stopped at max_paths_per_pair: the set is an incomplete
  // sample, not the full bounded-hop path space.
  bool truncated = false;
};

// Supplies per-pair path sets to AssignRoutesAndRates. The default source
// enumerates fresh per call; the annealing evaluator substitutes a
// persistent cache with delta invalidation. Implementations must return
// exactly what EnumeratePairPaths would return on the same graph.
class PathSource {
 public:
  virtual ~PathSource() = default;
  virtual const PairPaths& PathsFor(net::NodeId src, net::NodeId dst) = 0;
};

// The canonical per-pair enumeration: bounded-hop simple paths, falling back
// to the 2 shortest unbounded paths when the pair is farther apart than
// max_hops (Algorithm 3's length rounds are unbounded; only the enumeration
// is capped for cost).
//
// `expanded` (optional) receives the DFS-expanded node set (see
// net::PathsUpToHops) — the incremental evaluator's invalidation guard for
// truncated entries. Left empty on the fallback path.
PairPaths EnumeratePairPaths(const net::Graph& topo, net::NodeId src,
                             net::NodeId dst, const RoutingOptions& options,
                             std::vector<net::NodeId>* expanded = nullptr);

// Algorithm 3, step 2: assigns multi-path routes and rates over the given
// network-layer capacity graph. Transfers are ordered by the scheduling
// policy; round l considers only paths of exactly l hops, so higher-priority
// transfers claim short paths before anyone may use long ones.
//
// `paths` (optional) overrides path enumeration; when null a fresh flat
// per-pair cache is built for the call.
RoutingOutcome AssignRoutesAndRates(const net::Graph& topo,
                                    const std::vector<TransferDemand>& demands,
                                    const RoutingOptions& options,
                                    PathSource* paths = nullptr);

// Convenience: just the throughput (used as the annealing energy).
double ComputeThroughput(const net::Graph& topo,
                         const std::vector<TransferDemand>& demands,
                         const RoutingOptions& options);

}  // namespace owan::core

#endif  // OWAN_CORE_ROUTING_H_
