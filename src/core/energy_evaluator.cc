#include "core/energy_evaluator.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <stdexcept>

#include "net/shortest_path.h"

namespace owan::core {

namespace {
constexpr double kRateEps = 1e-9;

// Path-enumeration inputs that, when changed, make every cached entry
// meaningless (the cache must be dropped, not invalidated incrementally).
bool EnumerationOptionsDiffer(const RoutingOptions& a,
                              const RoutingOptions& b) {
  return a.max_hops != b.max_hops ||
         a.max_paths_per_pair != b.max_paths_per_pair;
}
}  // namespace

bool EnergyEvaluator::test_skip_appeared_invalidation_ = false;

void EnergyEvaluator::TestOnlySkipAppearedInvalidation(bool skip) {
  test_skip_appeared_invalidation_ = skip;
}

void EnergyEvaluator::AttachMemo(MemoTable* table) { memo_ = table; }

MemoTable& EnergyEvaluator::Memo() {
  if (memo_ != nullptr) return *memo_;
  if (!own_memo_) own_memo_ = std::make_unique<MemoTable>();
  return *own_memo_;
}

const EnergyEvaluator::Eval& EnergyEvaluator::Reset(
    const optical::OpticalNetwork& blank_optical, const Topology& start,
    const std::vector<TransferDemand>& demands,
    const std::vector<size_t>& starved, const RoutingOptions& options,
    bool reuse_state) {
  const int n = blank_optical.NumSites();
  const double theta = blank_optical.wavelength_capacity();
  if (n != n_ || theta != theta_ ||
      EnumerationOptionsDiffer(options, options_) ||
      blank_optical.qot() != qot_) {
    n_ = n;
    theta_ = theta;
    qot_ = blank_optical.qot();
    ClearPathCache();
  }
  options_ = options;
  demands_ = &demands;
  starved_ = &starved;
  // Energies depend on the slot's demand set. An attached (shared) table is
  // GC'd once by its owner between slots, not per evaluator.
  if (memo_ == nullptr && own_memo_) own_memo_->BeginSlot();
  // New demand set: schedule order, grant log, and checkpoints are stale.
  scratch_.Invalidate();

  // An unchanged mutation stamp certifies the blank plant is the exact
  // snapshot the current provisioned state was derived from, so SyncTo can
  // diff the previous slot's state to `start` instead of re-provisioning a
  // fresh copy of the plant from scratch.
  const bool warm = reuse_state && state_.has_value() && !pending_ &&
                    blank_stamp_ != 0 &&
                    blank_stamp_ == blank_optical.state_stamp();
  if (!warm) {
    // Same derivation a fresh chain performs: copy the blank plant, then
    // provision the start topology against it.
    state_.emplace(blank_optical);
    blank_stamp_ = blank_optical.state_stamp();
  }
  state_->SyncTo(start);
  pending_ = false;
  routing_valid_ = false;

  last_ = Eval{};
  RunRouting(/*memoize=*/true);
  return last_;
}

const EnergyEvaluator::Eval& EnergyEvaluator::Apply(const Topology& target) {
  assert(!pending_ && "Apply without Accept/Reject of the previous candidate");
  ++stats_.evaluations;
  ++apply_gen_;
  last_ = Eval{};
  last_.failed_units = state_->SyncTo(target, &undo_);
  pending_ = true;
  routing_valid_ = false;

  // No memo under QoT (see the qot_ member comment): the realized unit
  // topology no longer determines energy, and a hit would skip the cache
  // sync that keeps edge capacities current.
  if (!qot_.enabled) {
    const Topology& realized = state_->realized();
    if (const MemoTable::Entry* m = Memo().Find(realized)) {
      ++stats_.memo_hits;
      last_.energy = m->energy;
      last_.starved_served = m->starved_served;
      last_.memo_hit = true;
      return last_;
    }
  }
  RunRouting(/*memoize=*/true);
  return last_;
}

void EnergyEvaluator::Accept() { pending_ = false; }

void EnergyEvaluator::Reject() {
  assert(pending_ && "Reject without a pending Apply");
  state_->Rollback(undo_);
  pending_ = false;
  routing_valid_ = false;
  // Undo this candidate's cache sync (if one ran — a memo hit skips it and
  // leaves the cache already at the base): the next sync then diffs the
  // base against the next candidate directly instead of walking through the
  // rejected topology and invalidating its neighborhood a second time.
  if (cache_undo_.valid && cache_undo_.apply_gen == apply_gen_) {
    RestoreCache();
  }
}

const RoutingOutcome& EnergyEvaluator::EnsureRouting() {
  if (routing_valid_) return last_routing_;
  // The grant log in scratch_ may already describe the current realized
  // topology (the common case: the best-so-far candidate was just
  // evaluated); then the outcome is a pure expansion of the log and no
  // allocator run is needed. After memo hits or rollbacks moved the state,
  // rerun first.
  if (!scratch_.run_valid || !(cache_topo_ == state_->realized())) {
    RunRouting(/*memoize=*/false);
  }
  last_routing_ = MaterializeOutcome(*demands_, *this, scratch_);
  routing_valid_ = true;
  return last_routing_;
}

RoutingOutcome EnergyEvaluator::TakeRouting() {
  EnsureRouting();
  routing_valid_ = false;
  return std::move(last_routing_);
}

void EnergyEvaluator::RunRouting(bool memoize) {
  RepairHints hints;
  bool use_hints = false;
  SyncCache(&hints, &use_hints);
  ++stats_.routing_runs;
  AllocateRates(graph_, *demands_, options_, *this, scratch_,
                use_hints ? &hints : nullptr);
  routing_valid_ = false;  // grant log is fresh; outcome not materialized
  last_.energy = scratch_.throughput;
  last_.starved_served = CountStarvedServed();
  if (memoize && !qot_.enabled) {
    const Topology& realized = state_->realized();
    Memo().Insert(realized, last_.energy, last_.starved_served);
  }
}

int EnergyEvaluator::CountStarvedServed() const {
  int served = 0;
  for (size_t i : *starved_) {
    if (scratch_.rates[i] > kRateEps) ++served;
  }
  return served;
}

void EnergyEvaluator::ClearPathCache() {
  cache_topo_ = Topology(n_);
  graph_ = cache_topo_.ToGraph(theta_);
  pair_edge_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), -1);
  pair_slot_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), -1);
  entries_.clear();
  last_invalidated_.clear();
  cache_undo_.valid = false;
  scratch_.Invalidate();
}

void EnergyEvaluator::SyncCache(RepairHints* hints, bool* hints_usable) {
  if (hints_usable != nullptr) *hints_usable = false;
  const Topology& realized = state_->realized();
  if (cache_topo_ == realized) {
    if (hints != nullptr && hints_usable != nullptr && scratch_.run_valid) {
      hints->no_changes = true;
      *hints_usable = true;
    }
    return;
  }

  // Record the undo for this sync; Reject applies it (see RestoreCache).
  cache_undo_.valid = true;
  cache_undo_.apply_gen = apply_gen_;
  cache_undo_.fill_gen = ++fill_gen_;
  cache_undo_.structural = false;
  cache_undo_.capacities.clear();
  cache_undo_.stashed.clear();

  auto [to_add, to_remove] = realized.Diff(cache_topo_);
  // A link whose unit count changed but stayed > 0 only moves edge capacity;
  // the enumeration (hop-bounded DFS over unit-weight edges) cannot see it.
  std::vector<std::pair<net::NodeId, net::NodeId>> appeared;
  std::vector<std::pair<net::NodeId, net::NodeId>> disappeared_links;
  std::vector<size_t> disappeared;       // canonical link indices
  std::vector<size_t> cap_changed;       // units changed, > 0 on both sides
  for (const Link& l : to_add) {
    if (cache_topo_.Units(l.u, l.v) == 0) {
      appeared.emplace_back(l.u, l.v);
    } else {
      cap_changed.push_back(LinkIdx(l.u, l.v));
    }
  }
  for (const Link& l : to_remove) {
    if (realized.Units(l.u, l.v) == 0) {
      disappeared.push_back(LinkIdx(l.u, l.v));
      disappeared_links.emplace_back(l.u, l.v);
    } else {
      cap_changed.push_back(LinkIdx(l.u, l.v));
    }
  }
  std::sort(cap_changed.begin(), cap_changed.end());
  cap_changed.erase(std::unique(cap_changed.begin(), cap_changed.end()),
                    cap_changed.end());

  // Route-repair dirty analysis, shared by both sync branches. A demand is
  // dirty when its path set changed (entry invalidated) or one of its
  // traversed links changed capacity; every other demand's grants replay
  // verbatim up to the round the first dirty demand can act in. Runs after
  // invalidation, against the changed canonical links and the appeared-link
  // reach trees (hop lower bounds for re-enumerated pairs).
  auto derive_hints =
      [&](const std::vector<size_t>& changed_canon,
          const std::vector<std::pair<net::SpTree, net::SpTree>>* new_reach)
      -> bool {
    if (!scratch_.run_valid || options_.strict_priority) return false;
    if (scratch_.min_hop.size() != demands_->size()) return false;
    int restart = INT_MAX;
    for (size_t i = 0; i < demands_->size(); ++i) {
      const TransferDemand& d = (*demands_)[i];
      if (d.src == d.dst || d.src == net::kInvalidNode) continue;
      const int32_t slot = pair_slot_[DirIdx(d.src, d.dst)];
      if (slot < 0) return false;  // scratch can't describe a full run
      const CacheEntry& e = entries_[static_cast<size_t>(slot)];
      bool dirty = !e.valid;
      if (!dirty) {
        for (size_t li : changed_canon) {
          if (std::binary_search(e.used_links.begin(), e.used_links.end(),
                                 static_cast<int32_t>(li))) {
            dirty = true;
            break;
          }
        }
      }
      if (!dirty) continue;
      // A dirty transfer already starved by policy acts in the stage-0
      // pre-pass, which no checkpoint precedes: full rerun.
      if (d.slots_waited >= options_.policy.starvation_slots) return false;
      // Earliest round the demand can act in, old run or new: its old
      // shortest hop count, improvable only by a path through an appeared
      // link — lower-bounded by the BFS reach via that link.
      int bound = scratch_.min_hop[i];
      if (new_reach != nullptr) {
        for (const auto& [du, dv] : *new_reach) {
          const double a = du.dist[d.src] + 1.0 + dv.dist[d.dst];
          const double b = dv.dist[d.src] + 1.0 + du.dist[d.dst];
          const double m = std::min(a, b);
          if (m < static_cast<double>(bound)) bound = static_cast<int>(m);
        }
      }
      restart = std::min(restart, bound);
    }
    hints->restart_round = std::max(1, restart);
    return true;
  };

  if (appeared.empty() && disappeared.empty()) {
    // SyncTo only touches circuits on diff links, so diff links are the
    // only ones whose summed QoT capacity can have moved; legacy stays the
    // exact units * theta (RealizedCapacityGbps computes both).
    for (const Link& l : to_add) {
      const int32_t e = pair_edge_[LinkIdx(l.u, l.v)];
      cache_undo_.capacities.emplace_back(e, graph_.edge(e).capacity);
      graph_.edge(e).capacity = state_->RealizedCapacityGbps(l.u, l.v);
    }
    for (const Link& l : to_remove) {
      const int32_t e = pair_edge_[LinkIdx(l.u, l.v)];
      cache_undo_.capacities.emplace_back(e, graph_.edge(e).capacity);
      graph_.edge(e).capacity = state_->RealizedCapacityGbps(l.u, l.v);
    }
    cache_undo_.topo = std::move(cache_topo_);
    cache_topo_ = realized;
    if (hints != nullptr && hints_usable != nullptr &&
        derive_hints(cap_changed, nullptr)) {
      hints->edge_ids_stable = true;
      for (size_t li : cap_changed) {
        hints->changed_edges.push_back(pair_edge_[li]);
      }
      *hints_usable = true;
    }
    return;
  }

  // Hop distances from the endpoints of each disappeared link on the OLD
  // graph (graph_ still reflects cache_topo_ here) — the survival bound for
  // fallback entries below needs distances in the graph the link existed in.
  std::vector<std::pair<net::SpTree, net::SpTree>> old_reach;
  old_reach.reserve(disappeared_links.size());
  for (const auto& [u, v] : disappeared_links) {
    old_reach.emplace_back(net::BfsTree(graph_, u), net::BfsTree(graph_, v));
  }

  // Structural change: rebuild the canonical graph (same edge-id assignment
  // as Topology::ToGraph gives a fresh evaluation), then prune the cache.
  // The pre-sync graph and edge map move into the undo (old_reach above was
  // the last reader of the old graph).
  ++stats_.graph_rebuilds;
  cache_undo_.structural = true;
  // Rotate graph storage: the stale undo graph (one sync old, about to be
  // overwritten) donates its allocations to the new canonical graph.
  net::Graph recycled = std::move(cache_undo_.graph);
  cache_undo_.graph = std::move(graph_);
  std::vector<int32_t> recycled_pe = std::move(cache_undo_.pair_edge);
  cache_undo_.pair_edge = std::move(pair_edge_);
  realized.ToGraphInto(recycled, theta_);
  graph_ = std::move(recycled);
  recycled_pe.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), -1);
  pair_edge_ = std::move(recycled_pe);
  for (net::EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    const net::Edge& ed = graph_.edge(e);
    pair_edge_[LinkIdx(ed.u, ed.v)] = e;
  }
  if (qot_.enabled) {
    // Quality-graded capacities for the whole rebuilt graph (the undo holds
    // the entire pre-sync graph, so rollback stays exact).
    for (net::EdgeId e = 0; e < graph_.NumEdges(); ++e) {
      const net::Edge& ed = graph_.edge(e);
      graph_.edge(e).capacity = state_->RealizedCapacityGbps(ed.u, ed.v);
    }
  }

  std::sort(disappeared.begin(), disappeared.end());

  // Hop distances from the endpoints of each appeared link, on the NEW
  // graph: pair (s,d) can only gain a path within max_hops through new edge
  // (u,v) if min(d(s,u)+1+d(v,d), d(s,v)+1+d(u,d)) <= max_hops.
  std::vector<std::pair<net::SpTree, net::SpTree>> reach;
  reach.reserve(appeared.size());
  for (const auto& [u, v] : appeared) {
    reach.emplace_back(net::BfsTree(graph_, u), net::BfsTree(graph_, v));
  }

  last_invalidated_.clear();
  for (size_t slot = 0; slot < entries_.size(); ++slot) {
    CacheEntry& e = entries_[slot];
    if (!e.valid) continue;
    bool invalid = false;
    // A fallback set (the 2 shortest unbounded paths) depends on global
    // structure, but boundedly so: changing it requires opening or closing
    // some s-d path no longer than its longest member (len_last). A changed
    // link (p,q) admits such a path only if min(d(s,p)+1+d(q,d),
    // d(s,q)+1+d(p,d)) <= len_last, with BFS distances taken on the graph
    // the link exists in — NEW for appeared links, OLD for disappeared
    // ones. Entries holding fewer than two paths are invalidated by any
    // appeared link outright (a brand-new second path may have any
    // length). A truncated set is a discovery-order sample: a pure
    // function of the neighbor sequences of nodes within max_hops - 1
    // hops of the source (the DFS never iterates an incident list beyond
    // that ball), so it survives any move whose changed links have both
    // endpoints outside that ball — distances taken on the graph each
    // link exists in, like the fallback bound.
    if (e.pp.fallback) {
      const int len_last =
          e.pp.paths.empty() ? 0
                             : static_cast<int>(e.pp.paths.back().HopCount());
      if (!appeared.empty() && e.pp.paths.size() < 2) {
        invalid = true;
      }
      if (!invalid) {
        for (const auto& [du, dv] : reach) {
          const double a = du.dist[e.src] + 1.0 + dv.dist[e.dst];
          const double b = dv.dist[e.src] + 1.0 + du.dist[e.dst];
          if (std::min(a, b) <= static_cast<double>(len_last)) {
            invalid = true;
            break;
          }
        }
      }
      // Disappeared links are exact for fallback entries: the set is the
      // true 2-shortest (no hop bound), removal only shrinks the path
      // space, and the canonical graph has one edge per link — so the
      // stored selection changes iff a vanished link is on a stored path.
      if (!invalid) {
        for (size_t li : disappeared) {
          if (std::binary_search(e.used_links.begin(), e.used_links.end(),
                                 static_cast<int32_t>(li))) {
            invalid = true;
            break;
          }
        }
      }
    } else if (e.pp.truncated) {
      const double ball = static_cast<double>(options_.max_hops - 1);
      for (const auto& [du, dv] : reach) {
        if (std::min(du.dist[e.src], dv.dist[e.src]) <= ball) {
          invalid = true;
          break;
        }
      }
      if (!invalid) {
        for (const auto& [dp, dq] : old_reach) {
          if (std::min(dp.dist[e.src], dq.dist[e.src]) <= ball) {
            invalid = true;
            break;
          }
        }
      }
    } else {
      // Complete sets are canonical (sorted, all bounded-hop paths): they
      // change only if a traversed link vanished, or an appeared link put a
      // new path within the hop budget.
      for (size_t li : disappeared) {
        if (std::binary_search(e.used_links.begin(), e.used_links.end(),
                               static_cast<int32_t>(li))) {
          invalid = true;
          break;
        }
      }
      if (!invalid && !test_skip_appeared_invalidation_) {
        const int max_hops = options_.max_hops;
        for (const auto& [du, dv] : reach) {
          const double a = du.dist[e.src] + 1.0 + dv.dist[e.dst];
          const double b = dv.dist[e.src] + 1.0 + du.dist[e.dst];
          if (std::min(a, b) <= static_cast<double>(max_hops)) {
            invalid = true;
            break;
          }
        }
      }
    }
    if (invalid) {
      // The pre-sync value moves into the undo stash: if this candidate is
      // rejected, it is restored verbatim instead of being re-enumerated.
      cache_undo_.stashed.push_back({static_cast<int32_t>(slot),
                                     std::move(e.pp),
                                     std::move(e.used_links)});
      e.valid = false;
      e.pp = PairPaths{};
      e.used_links.clear();
      last_invalidated_.emplace_back(e.src, e.dst);
      continue;
    }
    // Survivors keep their node sequences; re-point edge ids at the rebuilt
    // graph (every traversed link still exists: complete and fallback
    // survivors passed the used-links test, and truncated survivors' whole
    // enumeration ball is untouched).
    for (net::Path& p : e.pp.paths) {
      for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        p.edges[i] = pair_edge_[LinkIdx(p.nodes[i], p.nodes[i + 1])];
      }
    }
  }
  cache_undo_.topo = std::move(cache_topo_);
  cache_topo_ = realized;

  if (hints != nullptr && hints_usable != nullptr) {
    std::vector<size_t> changed_canon = disappeared;  // sorted above
    changed_canon.insert(changed_canon.end(), cap_changed.begin(),
                         cap_changed.end());
    std::sort(changed_canon.begin(), changed_canon.end());
    if (derive_hints(changed_canon, &reach)) {
      hints->edge_ids_stable = false;
      for (const auto& [u, v] : appeared) {
        hints->changed_edges.push_back(pair_edge_[LinkIdx(u, v)]);
      }
      for (size_t li : cap_changed) {
        hints->changed_edges.push_back(pair_edge_[li]);
      }
      *hints_usable = true;
    }
  }
}

const PairPaths& EnergyEvaluator::PathsFor(net::NodeId src, net::NodeId dst) {
  const size_t idx = DirIdx(src, dst);
  int32_t slot = pair_slot_[idx];
  if (slot < 0) {
    entries_.emplace_back();
    slot = static_cast<int32_t>(entries_.size()) - 1;
    pair_slot_[idx] = slot;
    entries_[static_cast<size_t>(slot)].src = src;
    entries_[static_cast<size_t>(slot)].dst = dst;
  }
  CacheEntry& e = entries_[static_cast<size_t>(slot)];
  if (!e.valid) {
    ++stats_.pairs_enumerated;
    e.pp = PairPaths{};
    e.pp.paths = net::PathsUpToHops(graph_, src, dst, options_.max_hops,
                                    options_.max_paths_per_pair,
                                    &e.pp.truncated);
    if (e.pp.paths.empty()) {
      // Exactly the set EnumeratePairPaths's KShortestPaths(g, src, dst, 2)
      // fallback returns, via the hop-level specialization: fallback entries
      // re-derive on every structural move, so on sparse topologies (where
      // most pairs sit beyond max_hops) this is the hottest enumeration
      // path. The general Yen stays the fresh-evaluation reference the
      // differential tests compare against.
      e.pp.paths = net::TwoShortestPathsByHops(graph_, src, dst);
      e.pp.fallback = true;
      e.pp.truncated = false;
    }
    e.used_links.clear();
    for (const net::Path& p : e.pp.paths) {
      for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        e.used_links.push_back(
            static_cast<int32_t>(LinkIdx(p.nodes[i], p.nodes[i + 1])));
      }
    }
    std::sort(e.used_links.begin(), e.used_links.end());
    e.used_links.erase(std::unique(e.used_links.begin(), e.used_links.end()),
                       e.used_links.end());
    e.valid = true;
    e.fill_gen = fill_gen_;
  } else {
    ++stats_.pairs_reused;
  }
  return e.pp;
}

void EnergyEvaluator::RestoreCache() {
  cache_undo_.valid = false;
  cache_topo_ = std::move(cache_undo_.topo);
  if (cache_undo_.structural) {
    graph_ = std::move(cache_undo_.graph);
    pair_edge_ = std::move(cache_undo_.pair_edge);
    for (CacheEntry& e : entries_) {
      if (!e.valid) continue;
      if (e.fill_gen == cache_undo_.fill_gen) {
        // Enumerated against the rejected candidate's graph: worthless for
        // the restored base.
        e.valid = false;
        e.pp = PairPaths{};
        e.used_links.clear();
        continue;
      }
      // Survivor of the rejected sync: its node sequences are valid for the
      // base too (the survival rules are symmetric); re-point the edge ids
      // at the restored graph.
      for (net::Path& p : e.pp.paths) {
        for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
          p.edges[i] = pair_edge_[LinkIdx(p.nodes[i], p.nodes[i + 1])];
        }
      }
    }
  } else {
    // Capacity-only sync: structure unchanged, so candidate-filled entries
    // are exact for the base as well — only the capacities roll back.
    for (const auto& [e, cap] : cache_undo_.capacities) {
      graph_.edge(e).capacity = cap;
    }
  }
  for (CacheUndo::Stashed& s : cache_undo_.stashed) {
    CacheEntry& e = entries_[static_cast<size_t>(s.slot)];
    e.pp = std::move(s.pp);
    e.used_links = std::move(s.used_links);
    e.valid = true;
    e.fill_gen = 0;
  }
  cache_undo_.stashed.clear();
  // The grant log describes the rejected candidate's allocator run; it must
  // not seed repair hints against the restored base.
  scratch_.run_valid = false;
}

const PairPaths* EnergyEvaluator::CachedPaths(net::NodeId src,
                                              net::NodeId dst) const {
  if (n_ == 0) return nullptr;
  const int32_t slot = pair_slot_[DirIdx(src, dst)];
  if (slot < 0) return nullptr;
  const CacheEntry& e = entries_[static_cast<size_t>(slot)];
  return e.valid ? &e.pp : nullptr;
}

void AnnealScratch::Reserve(int num_chains) {
  while (static_cast<int>(evals_.size()) < num_chains) {
    evals_.push_back(std::make_unique<EnergyEvaluator>());
    evals_.back()->AttachMemo(&memo_);
  }
  // Single-threaded fence point between slots: no chain is running here.
  memo_.BeginSlot();
}

}  // namespace owan::core
