#include "core/energy_evaluator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "net/shortest_path.h"

namespace owan::core {

namespace {
constexpr double kRateEps = 1e-9;

// Path-enumeration inputs that, when changed, make every cached entry
// meaningless (the cache must be dropped, not invalidated incrementally).
bool EnumerationOptionsDiffer(const RoutingOptions& a,
                              const RoutingOptions& b) {
  return a.max_hops != b.max_hops ||
         a.max_paths_per_pair != b.max_paths_per_pair;
}
}  // namespace

bool EnergyEvaluator::test_skip_appeared_invalidation_ = false;

void EnergyEvaluator::TestOnlySkipAppearedInvalidation(bool skip) {
  test_skip_appeared_invalidation_ = skip;
}

const EnergyEvaluator::Eval& EnergyEvaluator::Reset(
    const optical::OpticalNetwork& blank_optical, const Topology& start,
    const std::vector<TransferDemand>& demands,
    const std::vector<size_t>& starved, const RoutingOptions& options) {
  const int n = blank_optical.NumSites();
  const double theta = blank_optical.wavelength_capacity();
  if (n != n_ || theta != theta_ ||
      EnumerationOptionsDiffer(options, options_)) {
    n_ = n;
    theta_ = theta;
    ClearPathCache();
  }
  options_ = options;
  demands_ = &demands;
  starved_ = &starved;
  memo_.clear();  // energies depend on the slot's demand set

  // Same derivation a fresh chain performs: copy the blank plant, then
  // provision the start topology against it.
  state_.emplace(blank_optical);
  state_->SyncTo(start);
  pending_ = false;
  routing_valid_ = false;

  last_ = Eval{};
  RunRouting(/*memoize=*/true);
  return last_;
}

const EnergyEvaluator::Eval& EnergyEvaluator::Apply(const Topology& target) {
  assert(!pending_ && "Apply without Accept/Reject of the previous candidate");
  ++stats_.evaluations;
  last_ = Eval{};
  last_.failed_units = state_->SyncTo(target, &undo_);
  pending_ = true;
  routing_valid_ = false;

  const Topology& realized = state_->realized();
  const auto it = memo_.find(realized.Hash());
  if (it != memo_.end()) {
    for (const MemoEntry& m : it->second) {
      if (m.realized == realized) {
        ++stats_.memo_hits;
        last_.energy = m.energy;
        last_.starved_served = m.starved_served;
        last_.memo_hit = true;
        return last_;
      }
    }
  }
  RunRouting(/*memoize=*/true);
  return last_;
}

void EnergyEvaluator::Accept() { pending_ = false; }

void EnergyEvaluator::Reject() {
  assert(pending_ && "Reject without a pending Apply");
  state_->Rollback(undo_);
  pending_ = false;
  routing_valid_ = false;
  // cache_topo_ may now be ahead of realized(); the next SyncCache diffs
  // back — the invalidation rules are symmetric in the direction of change.
}

const RoutingOutcome& EnergyEvaluator::EnsureRouting() {
  if (!routing_valid_) RunRouting(/*memoize=*/false);
  return last_routing_;
}

RoutingOutcome EnergyEvaluator::TakeRouting() {
  EnsureRouting();
  routing_valid_ = false;
  return std::move(last_routing_);
}

void EnergyEvaluator::RunRouting(bool memoize) {
  SyncCache();
  ++stats_.routing_runs;
  last_routing_ = AssignRoutesAndRates(graph_, *demands_, options_, this);
  routing_valid_ = true;
  last_.energy = last_routing_.throughput;
  last_.starved_served = CountStarvedServed();
  if (memoize) {
    const Topology& realized = state_->realized();
    memo_[realized.Hash()].push_back(
        MemoEntry{realized, last_.energy, last_.starved_served});
  }
}

int EnergyEvaluator::CountStarvedServed() const {
  int served = 0;
  for (size_t i : *starved_) {
    if (last_routing_.allocations[i].TotalRate() > kRateEps) ++served;
  }
  return served;
}

void EnergyEvaluator::ClearPathCache() {
  cache_topo_ = Topology(n_);
  graph_ = cache_topo_.ToGraph(theta_);
  pair_edge_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), -1);
  pair_slot_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), -1);
  entries_.clear();
  last_invalidated_.clear();
}

void EnergyEvaluator::SyncCache() {
  const Topology& realized = state_->realized();
  if (cache_topo_ == realized) return;

  auto [to_add, to_remove] = realized.Diff(cache_topo_);
  // A link whose unit count changed but stayed > 0 only moves edge capacity;
  // the enumeration (hop-bounded DFS over unit-weight edges) cannot see it.
  std::vector<std::pair<net::NodeId, net::NodeId>> appeared;
  std::vector<size_t> disappeared;       // canonical link indices
  std::vector<net::NodeId> touched;      // endpoints of structural changes
  for (const Link& l : to_add) {
    if (cache_topo_.Units(l.u, l.v) == 0) {
      appeared.emplace_back(l.u, l.v);
      touched.push_back(l.u);
      touched.push_back(l.v);
    }
  }
  for (const Link& l : to_remove) {
    if (realized.Units(l.u, l.v) == 0) {
      disappeared.push_back(LinkIdx(l.u, l.v));
      touched.push_back(l.u);
      touched.push_back(l.v);
    }
  }

  if (appeared.empty() && disappeared.empty()) {
    for (const Link& l : to_add) {
      const int32_t e = pair_edge_[LinkIdx(l.u, l.v)];
      graph_.edge(e).capacity = realized.Units(l.u, l.v) * theta_;
    }
    for (const Link& l : to_remove) {
      const int32_t e = pair_edge_[LinkIdx(l.u, l.v)];
      graph_.edge(e).capacity = realized.Units(l.u, l.v) * theta_;
    }
    cache_topo_ = realized;
    return;
  }

  // Structural change: rebuild the canonical graph (same edge-id assignment
  // as Topology::ToGraph gives a fresh evaluation), then prune the cache.
  ++stats_.graph_rebuilds;
  graph_ = realized.ToGraph(theta_);
  std::fill(pair_edge_.begin(), pair_edge_.end(), -1);
  for (net::EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    const net::Edge& ed = graph_.edge(e);
    pair_edge_[LinkIdx(ed.u, ed.v)] = e;
  }

  std::sort(disappeared.begin(), disappeared.end());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Hop distances from the endpoints of each appeared link, on the NEW
  // graph: pair (s,d) can only gain a path within max_hops through new edge
  // (u,v) if min(d(s,u)+1+d(v,d), d(s,v)+1+d(u,d)) <= max_hops.
  std::vector<std::pair<net::SpTree, net::SpTree>> reach;
  reach.reserve(appeared.size());
  for (const auto& [u, v] : appeared) {
    reach.emplace_back(net::BfsTree(graph_, u), net::BfsTree(graph_, v));
  }

  last_invalidated_.clear();
  for (CacheEntry& e : entries_) {
    if (!e.valid) continue;
    bool invalid = false;
    // Fallback sets depend on global structure (unbounded shortest paths)
    // and never survive a structural edit. A truncated set is a pure
    // function of its DFS-expanded nodes' neighbor sequences: it survives
    // exactly when no changed link touches an expanded node.
    if (e.pp.fallback) {
      invalid = true;
    } else if (e.pp.truncated) {
      for (net::NodeId v : touched) {
        if (std::binary_search(e.expanded.begin(), e.expanded.end(), v)) {
          invalid = true;
          break;
        }
      }
    } else {
      // Complete sets are canonical (sorted, all bounded-hop paths): they
      // change only if a traversed link vanished, or an appeared link put a
      // new path within the hop budget.
      for (size_t li : disappeared) {
        if (std::binary_search(e.used_links.begin(), e.used_links.end(),
                               static_cast<int32_t>(li))) {
          invalid = true;
          break;
        }
      }
      if (!invalid && !test_skip_appeared_invalidation_) {
        const int max_hops = options_.max_hops;
        for (const auto& [du, dv] : reach) {
          const double a = du.dist[e.src] + 1.0 + dv.dist[e.dst];
          const double b = dv.dist[e.src] + 1.0 + du.dist[e.dst];
          if (std::min(a, b) <= static_cast<double>(max_hops)) {
            invalid = true;
            break;
          }
        }
      }
    }
    if (invalid) {
      e.valid = false;
      e.pp = PairPaths{};
      e.used_links.clear();
      e.expanded.clear();
      last_invalidated_.emplace_back(e.src, e.dst);
      continue;
    }
    // Survivors keep their node sequences; re-point edge ids at the rebuilt
    // graph (every traversed link still exists, or the entry was pruned).
    for (net::Path& p : e.pp.paths) {
      for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        p.edges[i] = pair_edge_[LinkIdx(p.nodes[i], p.nodes[i + 1])];
      }
    }
  }
  cache_topo_ = realized;
}

const PairPaths& EnergyEvaluator::PathsFor(net::NodeId src, net::NodeId dst) {
  const size_t idx = DirIdx(src, dst);
  int32_t slot = pair_slot_[idx];
  if (slot < 0) {
    entries_.emplace_back();
    slot = static_cast<int32_t>(entries_.size()) - 1;
    pair_slot_[idx] = slot;
    entries_[static_cast<size_t>(slot)].src = src;
    entries_[static_cast<size_t>(slot)].dst = dst;
  }
  CacheEntry& e = entries_[static_cast<size_t>(slot)];
  if (!e.valid) {
    ++stats_.pairs_enumerated;
    e.pp = PairPaths{};
    e.pp.paths = net::PathsUpToHops(graph_, src, dst, options_.max_hops,
                                    options_.max_paths_per_pair,
                                    &e.pp.truncated, &e.expanded);
    if (e.pp.paths.empty()) {
      // Exactly the set EnumeratePairPaths's KShortestPaths(g, src, dst, 2)
      // fallback returns, via the hop-level specialization: fallback entries
      // re-derive on every structural move, so on sparse topologies (where
      // most pairs sit beyond max_hops) this is the hottest enumeration
      // path. The general Yen stays the fresh-evaluation reference the
      // differential tests compare against.
      e.pp.paths = net::TwoShortestPathsByHops(graph_, src, dst);
      e.pp.fallback = true;
      e.pp.truncated = false;
      e.expanded.clear();
    }
    e.used_links.clear();
    for (const net::Path& p : e.pp.paths) {
      for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
        e.used_links.push_back(
            static_cast<int32_t>(LinkIdx(p.nodes[i], p.nodes[i + 1])));
      }
    }
    std::sort(e.used_links.begin(), e.used_links.end());
    e.used_links.erase(std::unique(e.used_links.begin(), e.used_links.end()),
                       e.used_links.end());
    e.valid = true;
  } else {
    ++stats_.pairs_reused;
  }
  return e.pp;
}

const PairPaths* EnergyEvaluator::CachedPaths(net::NodeId src,
                                              net::NodeId dst) const {
  if (n_ == 0) return nullptr;
  const int32_t slot = pair_slot_[DirIdx(src, dst)];
  if (slot < 0) return nullptr;
  const CacheEntry& e = entries_[static_cast<size_t>(slot)];
  return e.valid ? &e.pp : nullptr;
}

void AnnealScratch::Reserve(int num_chains) {
  while (static_cast<int>(evals_.size()) < num_chains) {
    evals_.push_back(std::make_unique<EnergyEvaluator>());
  }
}

}  // namespace owan::core
