#ifndef OWAN_CORE_REPAIR_H_
#define OWAN_CORE_REPAIR_H_

#include <vector>

#include "core/topology.h"
#include "optical/optical_network.h"

namespace owan::core {

// Re-pairs "dark" router ports — ports the topology leaves unused, e.g.
// after a fiber failure killed circuits that could not re-route — into new
// feasible links (§3.4 failure handling: the controller recomputes the
// network state against the updated physical network).
//
// `port_budget[v]` is the number of WAN-facing ports at site v. Candidate
// links are tried shortest-fiber-distance first; a link is kept only if a
// circuit for it (on top of everything already in `topo`) can actually be
// provisioned on `optical`. Returns the repaired topology (a superset of
// `topo`).
Topology RepairDarkPorts(const Topology& topo,
                         const optical::OpticalNetwork& optical,
                         const std::vector<int>& port_budget);

// Drops units until every site fits its port budget — the counterpart of
// RepairDarkPorts for shrinking budgets (transceiver failures take ports
// away from a site whose links still use them). Units are removed from the
// over-budget site's fattest incident link first (ties: lowest peer id), so
// the surviving topology keeps as much edge diversity as possible and the
// result is deterministic.
Topology ShrinkToPortBudget(const Topology& topo,
                            const std::vector<int>& port_budget);

}  // namespace owan::core

#endif  // OWAN_CORE_REPAIR_H_
