#ifndef OWAN_CORE_REPAIR_H_
#define OWAN_CORE_REPAIR_H_

#include <vector>

#include "core/topology.h"
#include "optical/optical_network.h"

namespace owan::core {

// Re-pairs "dark" router ports — ports the topology leaves unused, e.g.
// after a fiber failure killed circuits that could not re-route — into new
// feasible links (§3.4 failure handling: the controller recomputes the
// network state against the updated physical network).
//
// `port_budget[v]` is the number of WAN-facing ports at site v. Candidate
// links are tried shortest-fiber-distance first; a link is kept only if a
// circuit for it (on top of everything already in `topo`) can actually be
// provisioned on `optical`. Returns the repaired topology (a superset of
// `topo`).
Topology RepairDarkPorts(const Topology& topo,
                         const optical::OpticalNetwork& optical,
                         const std::vector<int>& port_budget);

}  // namespace owan::core

#endif  // OWAN_CORE_REPAIR_H_
