#include "core/routing.h"

#include <algorithm>
#include <map>

#include "net/shortest_path.h"

namespace owan::core {

namespace {
constexpr double kRateEps = 1e-9;
}

RoutingOutcome AssignRoutesAndRates(const net::Graph& topo,
                                    const std::vector<TransferDemand>& demands,
                                    const RoutingOptions& options) {
  RoutingOutcome out;
  out.allocations.resize(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    out.allocations[i].id = demands[i].id;
  }

  std::vector<double> residual(static_cast<size_t>(topo.NumEdges()));
  for (net::EdgeId e = 0; e < topo.NumEdges(); ++e) {
    residual[static_cast<size_t>(e)] = topo.edge(e).capacity;
  }
  std::vector<double> unmet(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    unmet[i] = std::max(0.0, demands[i].rate_cap);
  }

  const std::vector<size_t> order = ScheduleOrder(demands, options.policy);

  // Cache enumerated paths per (src, dst) pair; several transfers often
  // share endpoints. Pairs farther apart than max_hops fall back to their
  // k shortest paths of any length — Algorithm 3's length rounds are
  // unbounded, only the enumeration is capped for cost.
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<net::Path>>
      path_cache;
  int longest_hops = options.max_hops;
  auto paths_for = [&](net::NodeId s,
                       net::NodeId d) -> const std::vector<net::Path>& {
    auto key = std::make_pair(s, d);
    auto it = path_cache.find(key);
    if (it == path_cache.end()) {
      std::vector<net::Path> paths = net::PathsUpToHops(
          topo, s, d, options.max_hops, options.max_paths_per_pair);
      if (paths.empty()) {
        paths = net::KShortestPaths(topo, s, d, 2);
        for (const net::Path& p : paths) {
          longest_hops =
              std::max(longest_hops, static_cast<int>(p.HopCount()));
        }
      }
      it = path_cache.emplace(key, std::move(paths)).first;
    }
    return it->second;
  };
  // Prime the cache so longest_hops covers every demand's fallback paths.
  for (const TransferDemand& d : demands) {
    if (d.src != d.dst && d.src != net::kInvalidNode) paths_for(d.src, d.dst);
  }

  // Serves one transfer across all of its paths (shortest first).
  auto serve_fully = [&](size_t oi) {
    const TransferDemand& d = demands[oi];
    if (d.src == d.dst || d.src == net::kInvalidNode) return;
    for (const net::Path& p : paths_for(d.src, d.dst)) {
      if (unmet[oi] <= kRateEps) break;
      double bottleneck = unmet[oi];
      for (net::EdgeId e : p.edges) {
        bottleneck = std::min(bottleneck, residual[static_cast<size_t>(e)]);
      }
      if (bottleneck <= kRateEps) continue;
      for (net::EdgeId e : p.edges) {
        residual[static_cast<size_t>(e)] -= bottleneck;
      }
      unmet[oi] -= bottleneck;
      out.throughput += bottleneck;
      out.allocations[oi].paths.push_back(PathAllocation{p, bottleneck});
    }
  };

  if (options.strict_priority) {
    for (size_t oi : order) serve_fully(oi);
    return out;
  }

  // Starvation pre-pass (§3.2 t-hat guard): a transfer unscheduled for
  // t-hat slots claims capacity across ALL its path lengths before the
  // round-based allocation starts — otherwise transfers whose shortest
  // path is long lose every round-l to shorter-path traffic forever.
  for (size_t oi : order) {
    if (demands[oi].slots_waited < options.policy.starvation_slots) break;
    serve_fully(oi);
  }

  for (int hops = 1; hops <= longest_hops; ++hops) {
    bool any_capacity = false;
    for (double r : residual) {
      if (r > kRateEps) {
        any_capacity = true;
        break;
      }
    }
    bool any_demand = false;
    for (double u : unmet) {
      if (u > kRateEps) {
        any_demand = true;
        break;
      }
    }
    if (!any_capacity || !any_demand) break;

    for (size_t oi : order) {
      if (unmet[oi] <= kRateEps) continue;
      const TransferDemand& d = demands[oi];
      if (d.src == d.dst || d.src == net::kInvalidNode) continue;
      for (const net::Path& p : paths_for(d.src, d.dst)) {
        if (static_cast<int>(p.HopCount()) != hops) continue;
        if (unmet[oi] <= kRateEps) break;
        double bottleneck = unmet[oi];
        for (net::EdgeId e : p.edges) {
          bottleneck = std::min(bottleneck, residual[static_cast<size_t>(e)]);
        }
        if (bottleneck <= kRateEps) continue;
        for (net::EdgeId e : p.edges) {
          residual[static_cast<size_t>(e)] -= bottleneck;
        }
        unmet[oi] -= bottleneck;
        out.throughput += bottleneck;
        out.allocations[oi].paths.push_back(PathAllocation{p, bottleneck});
      }
    }
  }
  return out;
}

double ComputeThroughput(const net::Graph& topo,
                         const std::vector<TransferDemand>& demands,
                         const RoutingOptions& options) {
  return AssignRoutesAndRates(topo, demands, options).throughput;
}

}  // namespace owan::core
