#include "core/routing.h"

#include <algorithm>
#include <climits>
#include <optional>

#include "net/shortest_path.h"

namespace owan::core {

namespace {
constexpr double kRateEps = 1e-9;

// Default PathSource: enumerates on first use, flat-indexed by src*n+dst.
// Replaces the old per-call std::map cache — the slot table is two vector
// allocations and O(1) lookups instead of a red-black tree rebuilt per
// evaluation.
class FreshPathSource : public PathSource {
 public:
  FreshPathSource(const net::Graph& topo, const RoutingOptions& options)
      : topo_(topo),
        options_(options),
        slot_(static_cast<size_t>(topo.NumNodes()) *
                  static_cast<size_t>(topo.NumNodes()),
              -1) {}

  const PairPaths& PathsFor(net::NodeId src, net::NodeId dst) override {
    const size_t idx = static_cast<size_t>(src) *
                           static_cast<size_t>(topo_.NumNodes()) +
                       static_cast<size_t>(dst);
    int32_t s = slot_[idx];
    if (s < 0) {
      entries_.push_back(EnumeratePairPaths(topo_, src, dst, options_));
      s = static_cast<int32_t>(entries_.size()) - 1;
      slot_[idx] = s;
    }
    return entries_[static_cast<size_t>(s)];
  }

 private:
  const net::Graph& topo_;
  const RoutingOptions& options_;
  std::vector<int32_t> slot_;
  std::vector<PairPaths> entries_;
};

uint64_t CanonicalPairKey(net::NodeId u, net::NodeId v) {
  const uint64_t a = static_cast<uint64_t>(static_cast<uint32_t>(u));
  const uint64_t b = static_cast<uint64_t>(static_cast<uint32_t>(v));
  return u < v ? (a << 32) | b : (b << 32) | a;
}

}  // namespace

PairPaths EnumeratePairPaths(const net::Graph& topo, net::NodeId src,
                             net::NodeId dst, const RoutingOptions& options) {
  PairPaths pp;
  pp.paths = net::PathsUpToHops(topo, src, dst, options.max_hops,
                                options.max_paths_per_pair, &pp.truncated);
  if (pp.paths.empty()) {
    pp.paths = net::KShortestPaths(topo, src, dst, 2);
    pp.fallback = true;
    pp.truncated = false;
  }
  return pp;
}

double AllocateRates(const net::Graph& topo,
                     const std::vector<TransferDemand>& demands,
                     const RoutingOptions& options, PathSource& paths,
                     RoutingScratch& s, const RepairHints* repair) {
  const size_t nd = demands.size();

  // Graph identical to the last run: its outputs are already the answer.
  if (repair != nullptr && repair->no_changes && s.run_valid) {
    return s.throughput;
  }

  if (!s.order_valid) {
    s.order = ScheduleOrder(demands, options.policy);
    s.order_valid = true;
  }

  // Prime the per-demand pair entries in two passes. Pass 1 forces every
  // entry into existence; a PathSource may create entries lazily and
  // invalidate earlier references while doing so. Pass 2 re-fetches the now
  // stable references and derives min_hop / longest_hops. longest_hops must
  // cover all fallback paths (pairs farther apart than max_hops route over
  // their unbounded k-shortest paths, which stretch the hop rounds).
  for (const TransferDemand& d : demands) {
    if (d.src == d.dst || d.src == net::kInvalidNode) continue;
    paths.PathsFor(d.src, d.dst);
  }
  s.pair.assign(nd, nullptr);
  s.min_hop.assign(nd, INT_MAX);
  int longest_hops = options.max_hops;
  for (size_t i = 0; i < nd; ++i) {
    const TransferDemand& d = demands[i];
    if (d.src == d.dst || d.src == net::kInvalidNode) continue;
    const PairPaths& pp = paths.PathsFor(d.src, d.dst);
    s.pair[i] = &pp;
    if (!pp.paths.empty()) {
      // PathsUpToHops output is sorted by hop count first, and the fallback
      // pair is length-sorted on a unit-weight round, so front() is minimal.
      s.min_hop[i] = static_cast<int>(pp.paths.front().HopCount());
      if (pp.fallback) {
        for (const net::Path& p : pp.paths) {
          longest_hops =
              std::max(longest_hops, static_cast<int>(p.HopCount()));
        }
      }
    }
  }

  double thr = 0.0;
  size_t nck = 0;        // checkpoints belonging to this run
  int start_round = 1;   // first hop round left to execute
  bool replayed = false;

  // ---- checkpoint restore (incremental route repair) ----
  //
  // Restores the deepest recorded stage no dirty demand had acted by, then
  // falls through to the ordinary round loop for the remaining rounds.
  // Re-executing a clean-only round from a restored state is exact, so the
  // result is bit-identical to a fresh run. Replay assumes the graph has at
  // most one edge per endpoint pair (true of Topology::ToGraph output); the
  // endpoint-keyed checkpoint rewrite would conflate parallel edges.
  const bool can_replay = repair != nullptr && !options.strict_priority &&
                          s.record_checkpoints && s.run_valid &&
                          s.ckpt_valid && !s.ckpts.empty();
  if (can_replay) {
    size_t keep = 0;  // number of checkpoints still valid for this run
    while (keep < s.ckpts.size() &&
           s.ckpts[keep].stage < repair->restart_round) {
      ++keep;
    }
    if (keep > 0) {
      if (!repair->edge_ids_stable) {
        // Edge ids changed (graph rebuild): rewrite each kept checkpoint's
        // residual vector into the new id space through canonical endpoint
        // pairs. Appeared edges start at full capacity; disappeared edges
        // drop (no clean-prefix grant ever touched either kind).
        s.edge_remap.clear();
        for (net::EdgeId e = 0; e < topo.NumEdges(); ++e) {
          const net::Edge& ed = topo.edge(e);
          s.edge_remap[CanonicalPairKey(ed.u, ed.v)] = e;
        }
        for (size_t i = 0; i < keep; ++i) {
          RoutingScratch::Checkpoint& c = s.ckpts[i];
          s.residual.resize(static_cast<size_t>(topo.NumEdges()));
          for (net::EdgeId e = 0; e < topo.NumEdges(); ++e) {
            s.residual[static_cast<size_t>(e)] = topo.edge(e).capacity;
          }
          const size_t old_edges =
              std::min(c.residual.size(), s.ckpt_edges.size());
          for (size_t oe = 0; oe < old_edges; ++oe) {
            const auto it = s.edge_remap.find(CanonicalPairKey(
                s.ckpt_edges[oe].first, s.ckpt_edges[oe].second));
            if (it != s.edge_remap.end()) {
              s.residual[static_cast<size_t>(it->second)] = c.residual[oe];
            }
          }
          c.residual = s.residual;
        }
      }
      // Changed edges carried no clean-prefix grants, so their fresh-run
      // residual at every kept stage is simply their new full capacity.
      for (size_t i = 0; i < keep; ++i) {
        for (net::EdgeId e : repair->changed_edges) {
          s.ckpts[i].residual[static_cast<size_t>(e)] = topo.edge(e).capacity;
        }
      }

      const RoutingScratch::Checkpoint& c = s.ckpts[keep - 1];
      s.residual = c.residual;
      s.unmet = c.unmet;
      s.rates = c.rates;
      thr = c.throughput;
      s.grants.resize(c.grant_count);
      start_round = c.stage + 1;
      nck = keep;
      replayed = true;
    }
  }

  if (!replayed) {
    s.residual.resize(static_cast<size_t>(topo.NumEdges()));
    for (net::EdgeId e = 0; e < topo.NumEdges(); ++e) {
      s.residual[static_cast<size_t>(e)] = topo.edge(e).capacity;
    }
    s.unmet.resize(nd);
    for (size_t i = 0; i < nd; ++i) {
      s.unmet[i] = std::max(0.0, demands[i].rate_cap);
    }
    s.rates.assign(nd, 0.0);
    s.grants.clear();
  }

  // Serves one transfer across all of its paths (shortest first).
  auto serve_fully = [&](size_t oi) {
    const PairPaths* pp = s.pair[oi];
    if (pp == nullptr) return;
    for (uint32_t pi = 0; pi < pp->paths.size(); ++pi) {
      if (s.unmet[oi] <= kRateEps) break;
      const net::Path& p = pp->paths[pi];
      double bottleneck = s.unmet[oi];
      for (net::EdgeId e : p.edges) {
        bottleneck = std::min(bottleneck, s.residual[static_cast<size_t>(e)]);
      }
      if (bottleneck <= kRateEps) continue;
      for (net::EdgeId e : p.edges) {
        s.residual[static_cast<size_t>(e)] -= bottleneck;
      }
      s.unmet[oi] -= bottleneck;
      s.rates[oi] += bottleneck;
      thr += bottleneck;
      s.grants.push_back(
          RoutingScratch::Grant{static_cast<uint32_t>(oi), pi, bottleneck});
    }
  };

  auto finish = [&]() {
    s.throughput = thr;
    s.run_valid = true;
    if (s.record_checkpoints && !options.strict_priority) {
      s.ckpts.resize(nck);
      s.ckpt_valid = true;
      s.ckpt_edges.resize(static_cast<size_t>(topo.NumEdges()));
      for (net::EdgeId e = 0; e < topo.NumEdges(); ++e) {
        const net::Edge& ed = topo.edge(e);
        s.ckpt_edges[static_cast<size_t>(e)] = {ed.u, ed.v};
      }
    } else {
      s.ckpt_valid = false;
    }
    return thr;
  };

  if (options.strict_priority) {
    for (size_t oi : s.order) serve_fully(oi);
    return finish();
  }

  auto record = [&](int stage) {
    if (!s.record_checkpoints) return;
    if (s.ckpts.size() <= nck) s.ckpts.emplace_back();
    RoutingScratch::Checkpoint& c = s.ckpts[nck++];
    c.stage = stage;
    c.residual = s.residual;
    c.unmet = s.unmet;
    c.rates = s.rates;
    c.throughput = thr;
    c.grant_count = s.grants.size();
  };

  if (!replayed) {
    // Starvation pre-pass (§3.2 t-hat guard): a transfer unscheduled for
    // t-hat slots claims capacity across ALL its path lengths before the
    // round-based allocation starts — otherwise transfers whose shortest
    // path is long lose every round-l to shorter-path traffic forever.
    for (size_t oi : s.order) {
      if (demands[oi].slots_waited < options.policy.starvation_slots) break;
      serve_fully(oi);
    }
    record(0);
  }

  s.cursor.assign(nd, 0);
  for (int hops = start_round; hops <= longest_hops; ++hops) {
    bool any_capacity = false;
    for (double r : s.residual) {
      if (r > kRateEps) {
        any_capacity = true;
        break;
      }
    }
    bool any_demand = false;
    for (double u : s.unmet) {
      if (u > kRateEps) {
        any_demand = true;
        break;
      }
    }
    if (!any_capacity || !any_demand) break;

    for (size_t oi : s.order) {
      if (s.unmet[oi] <= kRateEps) continue;
      const PairPaths* pp = s.pair[oi];
      if (pp == nullptr) continue;
      const std::vector<net::Path>& ps = pp->paths;
      // Paths are hop-sorted, so a cursor replaces the per-round scan over
      // the full path list: skip shorter rounds' paths, serve this round's.
      uint32_t& cur = s.cursor[oi];
      while (cur < ps.size() &&
             static_cast<int>(ps[cur].HopCount()) < hops) {
        ++cur;
      }
      while (cur < ps.size() &&
             static_cast<int>(ps[cur].HopCount()) == hops) {
        if (s.unmet[oi] <= kRateEps) break;
        const net::Path& p = ps[cur];
        double bottleneck = s.unmet[oi];
        for (net::EdgeId e : p.edges) {
          bottleneck =
              std::min(bottleneck, s.residual[static_cast<size_t>(e)]);
        }
        if (bottleneck <= kRateEps) {
          ++cur;
          continue;
        }
        for (net::EdgeId e : p.edges) {
          s.residual[static_cast<size_t>(e)] -= bottleneck;
        }
        s.unmet[oi] -= bottleneck;
        s.rates[oi] += bottleneck;
        thr += bottleneck;
        s.grants.push_back(
            RoutingScratch::Grant{static_cast<uint32_t>(oi), cur, bottleneck});
        ++cur;
      }
    }
    record(hops);
  }
  return finish();
}

RoutingOutcome MaterializeOutcome(const std::vector<TransferDemand>& demands,
                                  PathSource& paths, const RoutingScratch& s) {
  RoutingOutcome out;
  out.throughput = s.throughput;
  out.allocations.resize(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    out.allocations[i].id = demands[i].id;
  }
  for (const RoutingScratch::Grant& g : s.grants) {
    const TransferDemand& d = demands[g.demand];
    const PairPaths& pp = paths.PathsFor(d.src, d.dst);
    out.allocations[g.demand].paths.push_back(
        PathAllocation{pp.paths[g.path], g.rate});
  }
  return out;
}

RoutingOutcome AssignRoutesAndRates(const net::Graph& topo,
                                    const std::vector<TransferDemand>& demands,
                                    const RoutingOptions& options,
                                    PathSource* paths) {
  std::optional<FreshPathSource> fresh;
  if (paths == nullptr) {
    fresh.emplace(topo, options);
    paths = &*fresh;
  }
  RoutingScratch s;
  s.record_checkpoints = false;
  AllocateRates(topo, demands, options, *paths, s);
  return MaterializeOutcome(demands, *paths, s);
}

double ComputeThroughput(const net::Graph& topo,
                         const std::vector<TransferDemand>& demands,
                         const RoutingOptions& options) {
  FreshPathSource fresh(topo, options);
  RoutingScratch s;
  s.record_checkpoints = false;
  return AllocateRates(topo, demands, options, fresh, s);
}

}  // namespace owan::core
