#include "core/routing.h"

#include <algorithm>
#include <optional>

#include "net/shortest_path.h"

namespace owan::core {

namespace {
constexpr double kRateEps = 1e-9;

// Default PathSource: enumerates on first use, flat-indexed by src*n+dst.
// Replaces the old per-call std::map cache — the slot table is two vector
// allocations and O(1) lookups instead of a red-black tree rebuilt per
// evaluation.
class FreshPathSource : public PathSource {
 public:
  FreshPathSource(const net::Graph& topo, const RoutingOptions& options)
      : topo_(topo),
        options_(options),
        slot_(static_cast<size_t>(topo.NumNodes()) *
                  static_cast<size_t>(topo.NumNodes()),
              -1) {}

  const PairPaths& PathsFor(net::NodeId src, net::NodeId dst) override {
    const size_t idx = static_cast<size_t>(src) *
                           static_cast<size_t>(topo_.NumNodes()) +
                       static_cast<size_t>(dst);
    int32_t s = slot_[idx];
    if (s < 0) {
      entries_.push_back(EnumeratePairPaths(topo_, src, dst, options_));
      s = static_cast<int32_t>(entries_.size()) - 1;
      slot_[idx] = s;
    }
    return entries_[static_cast<size_t>(s)];
  }

 private:
  const net::Graph& topo_;
  const RoutingOptions& options_;
  std::vector<int32_t> slot_;
  std::vector<PairPaths> entries_;
};

}  // namespace

PairPaths EnumeratePairPaths(const net::Graph& topo, net::NodeId src,
                             net::NodeId dst, const RoutingOptions& options,
                             std::vector<net::NodeId>* expanded) {
  PairPaths pp;
  pp.paths =
      net::PathsUpToHops(topo, src, dst, options.max_hops,
                         options.max_paths_per_pair, &pp.truncated, expanded);
  if (pp.paths.empty()) {
    pp.paths = net::KShortestPaths(topo, src, dst, 2);
    pp.fallback = true;
    pp.truncated = false;
    if (expanded) expanded->clear();
  }
  return pp;
}

RoutingOutcome AssignRoutesAndRates(const net::Graph& topo,
                                    const std::vector<TransferDemand>& demands,
                                    const RoutingOptions& options,
                                    PathSource* paths) {
  RoutingOutcome out;
  out.allocations.resize(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    out.allocations[i].id = demands[i].id;
  }

  std::vector<double> residual(static_cast<size_t>(topo.NumEdges()));
  for (net::EdgeId e = 0; e < topo.NumEdges(); ++e) {
    residual[static_cast<size_t>(e)] = topo.edge(e).capacity;
  }
  std::vector<double> unmet(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    unmet[i] = std::max(0.0, demands[i].rate_cap);
  }

  const std::vector<size_t> order = ScheduleOrder(demands, options.policy);

  std::optional<FreshPathSource> fresh;
  if (paths == nullptr) {
    fresh.emplace(topo, options);
    paths = &*fresh;
  }

  // Prime every demand's pair so longest_hops covers all fallback paths
  // (pairs farther apart than max_hops route over their unbounded k-shortest
  // paths, which stretch the hop rounds).
  int longest_hops = options.max_hops;
  for (const TransferDemand& d : demands) {
    if (d.src == d.dst || d.src == net::kInvalidNode) continue;
    const PairPaths& pp = paths->PathsFor(d.src, d.dst);
    if (pp.fallback) {
      for (const net::Path& p : pp.paths) {
        longest_hops = std::max(longest_hops, static_cast<int>(p.HopCount()));
      }
    }
  }

  // Serves one transfer across all of its paths (shortest first).
  auto serve_fully = [&](size_t oi) {
    const TransferDemand& d = demands[oi];
    if (d.src == d.dst || d.src == net::kInvalidNode) return;
    for (const net::Path& p : paths->PathsFor(d.src, d.dst).paths) {
      if (unmet[oi] <= kRateEps) break;
      double bottleneck = unmet[oi];
      for (net::EdgeId e : p.edges) {
        bottleneck = std::min(bottleneck, residual[static_cast<size_t>(e)]);
      }
      if (bottleneck <= kRateEps) continue;
      for (net::EdgeId e : p.edges) {
        residual[static_cast<size_t>(e)] -= bottleneck;
      }
      unmet[oi] -= bottleneck;
      out.throughput += bottleneck;
      out.allocations[oi].paths.push_back(PathAllocation{p, bottleneck});
    }
  };

  if (options.strict_priority) {
    for (size_t oi : order) serve_fully(oi);
    return out;
  }

  // Starvation pre-pass (§3.2 t-hat guard): a transfer unscheduled for
  // t-hat slots claims capacity across ALL its path lengths before the
  // round-based allocation starts — otherwise transfers whose shortest
  // path is long lose every round-l to shorter-path traffic forever.
  for (size_t oi : order) {
    if (demands[oi].slots_waited < options.policy.starvation_slots) break;
    serve_fully(oi);
  }

  for (int hops = 1; hops <= longest_hops; ++hops) {
    bool any_capacity = false;
    for (double r : residual) {
      if (r > kRateEps) {
        any_capacity = true;
        break;
      }
    }
    bool any_demand = false;
    for (double u : unmet) {
      if (u > kRateEps) {
        any_demand = true;
        break;
      }
    }
    if (!any_capacity || !any_demand) break;

    for (size_t oi : order) {
      if (unmet[oi] <= kRateEps) continue;
      const TransferDemand& d = demands[oi];
      if (d.src == d.dst || d.src == net::kInvalidNode) continue;
      for (const net::Path& p : paths->PathsFor(d.src, d.dst).paths) {
        if (static_cast<int>(p.HopCount()) != hops) continue;
        if (unmet[oi] <= kRateEps) break;
        double bottleneck = unmet[oi];
        for (net::EdgeId e : p.edges) {
          bottleneck = std::min(bottleneck, residual[static_cast<size_t>(e)]);
        }
        if (bottleneck <= kRateEps) continue;
        for (net::EdgeId e : p.edges) {
          residual[static_cast<size_t>(e)] -= bottleneck;
        }
        unmet[oi] -= bottleneck;
        out.throughput += bottleneck;
        out.allocations[oi].paths.push_back(PathAllocation{p, bottleneck});
      }
    }
  }
  return out;
}

double ComputeThroughput(const net::Graph& topo,
                         const std::vector<TransferDemand>& demands,
                         const RoutingOptions& options) {
  return AssignRoutesAndRates(topo, demands, options).throughput;
}

}  // namespace owan::core
