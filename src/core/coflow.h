#ifndef OWAN_CORE_COFLOW_H_
#define OWAN_CORE_COFLOW_H_

#include <map>
#include <vector>

#include "core/transfer.h"

namespace owan::core {

// Group transfers (§3.4): some applications push the same data to multiple
// destinations and only the LAST completion matters — the WAN analogue of
// the coflow abstraction. Owan can either treat members as independent
// transfers or order them with Smallest-Effective-Bottleneck-First (SEBF,
// Varys): groups whose slowest member finishes soonest go first, which
// minimizes average group completion time the same way SJF does for single
// transfers.

inline constexpr int kNoGroup = -1;

// A group of member transfer requests sharing a group id.
struct TransferGroup {
  int group_id = kNoGroup;
  std::vector<int> member_ids;
};

// Registry mapping transfers to their groups and computing SEBF keys.
class CoflowRegistry {
 public:
  // Registers `request_id` as a member of `group_id` (creating the group).
  void AddMember(int group_id, int request_id);

  int GroupOf(int request_id) const;  // kNoGroup if ungrouped
  const std::vector<int>& Members(int group_id) const;
  int NumGroups() const { return static_cast<int>(groups_.size()); }

  // SEBF key per demand: the group's effective bottleneck — the largest
  // remaining member volume in the group (an ungrouped transfer is its own
  // group). Demands sharing a group share a key, so the whole group is
  // scheduled as one unit ordered by its slowest member.
  std::map<int, double> SebfKeys(
      const std::vector<TransferDemand>& demands) const;

  // Rewrites each demand's `remaining` scheduling key to its group's SEBF
  // key so the standard SJF policy (Algorithm 3 ordering) becomes SEBF.
  // Returns the rewritten demand vector; rate caps are untouched.
  std::vector<TransferDemand> ApplySebf(
      const std::vector<TransferDemand>& demands) const;

 private:
  std::map<int, int> member_to_group_;
  std::map<int, std::vector<int>> groups_;
};

// Group completion statistics over finished transfers: a group's
// completion time is its last member's.
struct GroupCompletion {
  int group_id = kNoGroup;
  double completion_time = 0.0;  // relative to the earliest member arrival
  bool complete = false;
};

std::vector<GroupCompletion> GroupCompletions(
    const CoflowRegistry& registry,
    const std::vector<int>& request_ids,
    const std::vector<double>& arrivals,
    const std::vector<double>& completed_at);

}  // namespace owan::core

#endif  // OWAN_CORE_COFLOW_H_
