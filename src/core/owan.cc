#include "core/owan.h"

#include <algorithm>
#include <cstring>
#include <exception>

#include "net/shortest_path.h"
#include "obs/obs.h"

namespace owan::core {

namespace {

// SplitMix64 — derives a well-mixed per-slot seed from (seed, now bits).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

OwanTe::OwanTe(OwanOptions options)
    : options_(options), rng_(options.seed) {
  if (options_.anneal.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        options_.anneal.num_threads - 1);
  }
}

std::string OwanTe::name() const {
  switch (options_.control) {
    case ControlLevel::kRateOnly:
      return "Owan(rate)";
    case ControlLevel::kRateAndRouting:
      return "Owan(rate+routing)";
    case ControlLevel::kFull:
      return "Owan";
  }
  return "Owan";
}

TeOutput OwanTe::ComputeFixedTopology(const TeInput& input, bool multipath) {
  TeOutput out;
  // Legacy plants carry theta per unit by construction; under QoT the
  // fixed topology must still be realized to learn what the modulation
  // table actually grants each link.
  net::Graph g;
  if (input.optical->qot().enabled) {
    ProvisionedState state(*input.optical);
    state.SyncTo(*input.topology);
    g = state.CapacityGraph();
  } else {
    g = input.topology->ToGraph(input.optical->wavelength_capacity());
  }
  if (multipath) {
    RoutingOutcome r =
        AssignRoutesAndRates(g, input.demands, options_.anneal.routing);
    out.allocations = std::move(r.allocations);
    return out;
  }

  // Rate-only control: every transfer is pinned to its single shortest path
  // (by hops); the controller can only pick sending rates in policy order.
  out.allocations.resize(input.demands.size());
  std::vector<double> residual(static_cast<size_t>(g.NumEdges()));
  for (net::EdgeId e = 0; e < g.NumEdges(); ++e) {
    residual[static_cast<size_t>(e)] = g.edge(e).capacity;
  }
  const std::vector<size_t> order =
      ScheduleOrder(input.demands, options_.anneal.routing.policy);
  for (size_t oi : order) {
    const TransferDemand& d = input.demands[oi];
    out.allocations[oi].id = d.id;
    if (d.src == d.dst) continue;
    auto path = net::ShortestPath(g, d.src, d.dst);
    if (!path || path->edges.empty()) continue;
    double bottleneck = std::max(0.0, d.rate_cap);
    for (net::EdgeId e : path->edges) {
      bottleneck = std::min(bottleneck, residual[static_cast<size_t>(e)]);
    }
    if (bottleneck <= 0.0) continue;
    for (net::EdgeId e : path->edges) {
      residual[static_cast<size_t>(e)] -= bottleneck;
    }
    out.allocations[oi].paths.push_back(PathAllocation{*path, bottleneck});
  }
  return out;
}

TeOutput OwanTe::Compute(const TeInput& input) {
  OWAN_SPAN(compute_span, "core", "owan.compute");
  OWAN_TIMER(compute_timer, "owan.compute_seconds");
  OWAN_COUNT("owan.slots");
  // Let EDF ordering see the clock so expired deadlines are demoted.
  options_.anneal.routing.policy.now = input.now;
  // Group transfers: swap SJF keys for SEBF keys (§3.4).
  TeInput sebf_input;
  const TeInput* effective = &input;
  if (options_.coflows != nullptr) {
    sebf_input = input;
    sebf_input.demands = options_.coflows->ApplySebf(input.demands);
    effective = &sebf_input;
  }
  const TeInput& in = *effective;
  switch (options_.control) {
    case ControlLevel::kRateOnly:
      return ComputeFixedTopology(in, /*multipath=*/false);
    case ControlLevel::kRateAndRouting:
      return ComputeFixedTopology(in, /*multipath=*/true);
    case ControlLevel::kFull:
      break;
  }

  // Stateless per-slot seeding: the RNG is a pure function of (seed, slot
  // time), so a failover replacement reproduces the crashed controller's
  // stream without replaying history.
  util::Rng slot_rng(0);
  util::Rng* rng = &rng_;
  if (options_.slot_seeded) {
    uint64_t now_bits = 0;
    static_assert(sizeof(now_bits) == sizeof(input.now));
    std::memcpy(&now_bits, &input.now, sizeof(now_bits));
    slot_rng = util::Rng(Mix(options_.seed ^ Mix(now_bits)));
    rng = &slot_rng;
  }

  last_degraded_ = false;
  try {
    last_ = ComputeNetworkState(*in.topology, *in.optical, in.demands,
                                options_.anneal, *rng, pool_.get(),
                                &scratch_, hint_ ? &*hint_ : nullptr);
    // Warm-start the next slot's search from this slot's searched best
    // (pre-guard): demand sets are temporally coherent across slots, so the
    // previous optimum is usually a strong starting point even when the
    // adoption guard kept the wire topology unchanged.
    hint_ = last_.searched_best;
  } catch (const std::exception&) {
    // Graceful degradation (§3.4): if the topology search cannot run at
    // all, keep the current topology and fall back to greedy multipath
    // routing on it — rate/routing control never goes dark with the
    // optical layer.
    last_degraded_ = true;
    hint_.reset();
    ++degraded_slots_;
    OWAN_COUNT("owan.degraded_slots");
    OWAN_INSTANT("core", "owan.degraded");
    return ComputeFixedTopology(in, /*multipath=*/true);
  }
  TeOutput out;
  out.allocations = last_.routing.allocations;
  out.new_topology = last_.best_topology;
  return out;
}

}  // namespace owan::core
