#include "core/coflow.h"

#include <algorithm>
#include <stdexcept>

namespace owan::core {

void CoflowRegistry::AddMember(int group_id, int request_id) {
  if (group_id == kNoGroup) {
    throw std::invalid_argument("CoflowRegistry: invalid group id");
  }
  auto [it, inserted] = member_to_group_.emplace(request_id, group_id);
  if (!inserted) {
    throw std::invalid_argument("CoflowRegistry: transfer already grouped");
  }
  groups_[group_id].push_back(request_id);
}

int CoflowRegistry::GroupOf(int request_id) const {
  auto it = member_to_group_.find(request_id);
  return it == member_to_group_.end() ? kNoGroup : it->second;
}

const std::vector<int>& CoflowRegistry::Members(int group_id) const {
  static const std::vector<int> kEmpty;
  auto it = groups_.find(group_id);
  return it == groups_.end() ? kEmpty : it->second;
}

std::map<int, double> CoflowRegistry::SebfKeys(
    const std::vector<TransferDemand>& demands) const {
  // Bottleneck = max remaining volume among a group's live members.
  std::map<int, double> group_bottleneck;
  for (const TransferDemand& d : demands) {
    const int g = GroupOf(d.id);
    if (g == kNoGroup) continue;
    double& b = group_bottleneck[g];
    b = std::max(b, d.remaining);
  }
  std::map<int, double> keys;
  for (const TransferDemand& d : demands) {
    const int g = GroupOf(d.id);
    keys[d.id] = g == kNoGroup ? d.remaining : group_bottleneck[g];
  }
  return keys;
}

std::vector<TransferDemand> CoflowRegistry::ApplySebf(
    const std::vector<TransferDemand>& demands) const {
  const auto keys = SebfKeys(demands);
  std::vector<TransferDemand> out = demands;
  for (TransferDemand& d : out) {
    d.remaining = keys.at(d.id);
  }
  return out;
}

std::vector<GroupCompletion> GroupCompletions(
    const CoflowRegistry& registry, const std::vector<int>& request_ids,
    const std::vector<double>& arrivals,
    const std::vector<double>& completed_at) {
  std::map<int, GroupCompletion> acc;
  std::map<int, double> earliest_arrival;
  std::map<int, double> last_completion;
  std::map<int, size_t> seen_members;

  for (size_t i = 0; i < request_ids.size(); ++i) {
    const int g = registry.GroupOf(request_ids[i]);
    if (g == kNoGroup) continue;
    auto [ait, a_new] = earliest_arrival.emplace(g, arrivals[i]);
    if (!a_new) ait->second = std::min(ait->second, arrivals[i]);
    auto [cit, c_new] = last_completion.emplace(g, completed_at[i]);
    if (!c_new) cit->second = std::max(cit->second, completed_at[i]);
    ++seen_members[g];
  }

  std::vector<GroupCompletion> out;
  for (const auto& [g, n] : seen_members) {
    GroupCompletion gc;
    gc.group_id = g;
    gc.complete = n == registry.Members(g).size();
    gc.completion_time = last_completion[g] - earliest_arrival[g];
    out.push_back(gc);
  }
  return out;
}

}  // namespace owan::core
