#ifndef OWAN_CORE_TOPOLOGY_H_
#define OWAN_CORE_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "net/graph.h"

namespace owan::core {

// A network-layer link: an unordered site pair carrying `units` parallel
// circuits of one wavelength (theta Gbps) each.
struct Link {
  net::NodeId u = net::kInvalidNode;
  net::NodeId v = net::kInvalidNode;
  int units = 0;
};

// The network-layer topology expressed in integral wavelength units — the
// state variable of the simulated-annealing search (paper §3.2). Each unit
// of capacity on link (u,v) consumes one WAN-facing router port at u and one
// at v and is implemented by one optical circuit.
class Topology {
 public:
  Topology() = default;
  explicit Topology(int num_sites) : n_(num_sites) {}

  int NumSites() const { return n_; }

  int Units(net::NodeId u, net::NodeId v) const;
  void AddUnits(net::NodeId u, net::NodeId v, int delta);
  void SetUnits(net::NodeId u, net::NodeId v, int units);

  // Total ports used at site v (sum of incident units). The neighbor move
  // keeps this invariant per site.
  int PortsUsed(net::NodeId v) const;

  // All links with units > 0, canonical (u < v) order.
  std::vector<Link> Links() const;
  int NumLinks() const;
  int TotalUnits() const;

  // Network-layer capacity graph: one edge per link, capacity units*theta,
  // weight 1 (so shortest paths count hops).
  net::Graph ToGraph(double theta) const;

  bool operator==(const Topology& o) const {
    return n_ == o.n_ && units_ == o.units_;
  }

  // Links present in `this` but with more units than in `other`, i.e. what
  // must be provisioned when moving other -> this, and vice versa.
  // Returns (to_add, to_remove) as (u,v,delta_units) triples.
  std::pair<std::vector<Link>, std::vector<Link>> Diff(
      const Topology& other) const;

  // Number of single-circuit changes between two topologies.
  int DistanceTo(const Topology& other) const;

  std::string DebugString() const;

  uint64_t Hash() const;

 private:
  static std::pair<net::NodeId, net::NodeId> Key(net::NodeId u,
                                                 net::NodeId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }

  int n_ = 0;
  std::map<std::pair<net::NodeId, net::NodeId>, int> units_;
};

}  // namespace owan::core

#endif  // OWAN_CORE_TOPOLOGY_H_
