#ifndef OWAN_CORE_TOPOLOGY_H_
#define OWAN_CORE_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "net/graph.h"

namespace owan::core {

// A network-layer link: an unordered site pair carrying `units` parallel
// circuits of one wavelength (theta Gbps) each.
struct Link {
  net::NodeId u = net::kInvalidNode;
  net::NodeId v = net::kInvalidNode;
  int units = 0;
};

// The network-layer topology expressed in integral wavelength units — the
// state variable of the simulated-annealing search (paper §3.2). Each unit
// of capacity on link (u,v) consumes one WAN-facing router port at u and one
// at v and is implemented by one optical circuit.
//
// Storage is a sorted flat vector keyed by the canonical (u < v) pair: the
// annealing hot loop copies topologies constantly (every neighbor move and
// undo snapshot), and a contiguous vector copy is a memcpy where the old
// std::map was a node-by-node allocation storm. Iteration order is the same
// sorted key order the map had, so ToGraph/Hash/Diff/DebugString output is
// unchanged.
class Topology {
 public:
  Topology() = default;
  explicit Topology(int num_sites) : n_(num_sites) {}

  int NumSites() const { return n_; }

  int Units(net::NodeId u, net::NodeId v) const;
  void AddUnits(net::NodeId u, net::NodeId v, int delta);
  void SetUnits(net::NodeId u, net::NodeId v, int units);

  // Total ports used at site v (sum of incident units). The neighbor move
  // keeps this invariant per site.
  int PortsUsed(net::NodeId v) const;

  // All links with units > 0, canonical (u < v) order.
  std::vector<Link> Links() const;
  int NumLinks() const { return static_cast<int>(units_.size()); }
  int TotalUnits() const;

  // Network-layer capacity graph: one edge per link, capacity units*theta,
  // weight 1 (so shortest paths count hops). Edges are added in canonical
  // link order, so edge ids are a deterministic function of the topology.
  net::Graph ToGraph(double theta) const;

  // ToGraph into an existing graph object, recycling its storage. Produces
  // exactly ToGraph(theta); `g` is Reset() first, so prior contents are
  // irrelevant.
  void ToGraphInto(net::Graph& g, double theta) const;

  bool operator==(const Topology& o) const {
    return n_ == o.n_ && units_ == o.units_;
  }

  // Links present in `this` but with more units than in `other`, i.e. what
  // must be provisioned when moving other -> this, and vice versa.
  // Returns (to_add, to_remove) as (u,v,delta_units) triples.
  std::pair<std::vector<Link>, std::vector<Link>> Diff(
      const Topology& other) const;

  // Number of single-circuit changes between two topologies.
  int DistanceTo(const Topology& other) const;

  std::string DebugString() const;

  // Order-independent-free fingerprint of (num_sites, sorted link multiset).
  // Equal topologies always hash equal; unequal topologies may collide, so
  // hash-keyed tables must guard with operator==. Cached until the next
  // mutation — the evaluator hashes the same realized topology for the
  // transposition-table probe and the insert.
  uint64_t Hash() const;

 private:
  using PairKey = std::pair<net::NodeId, net::NodeId>;

  static PairKey Key(net::NodeId u, net::NodeId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }

  // Iterator to the entry with key >= key (sorted order).
  std::vector<std::pair<PairKey, int>>::const_iterator Find(
      const PairKey& key) const;

  int n_ = 0;
  // Sorted by key; entries always have units > 0.
  std::vector<std::pair<PairKey, int>> units_;
  mutable uint64_t hash_cache_ = 0;
  mutable bool hash_valid_ = false;
};

}  // namespace owan::core

#endif  // OWAN_CORE_TOPOLOGY_H_
