#ifndef OWAN_CORE_PROVISIONED_STATE_H_
#define OWAN_CORE_PROVISIONED_STATE_H_

#include <map>
#include <utility>
#include <vector>

#include "core/topology.h"
#include "optical/optical_network.h"

namespace owan::core {

// A network-layer topology together with the optical circuits that realise
// it (Algorithm 3, step 1).
//
// The class owns its optical network. SyncTo releases circuits only for
// links losing units and provisions circuits only for links gaining units,
// which keeps one SA iteration proportional to the size of the move (4 link
// changes), not the size of the network. The annealing evaluator goes one
// step further: instead of cloning the whole state per candidate, it applies
// SyncTo in place with a SyncUndo record and rolls back rejected moves
// exactly (same circuit ids, wavelengths, and regen counters).
//
// `realized()` may fall short of the requested topology when wavelengths or
// regenerators run out (Algorithm 3, lines 13-14): the missing units simply
// do not appear in the realized capacity.
class ProvisionedState {
 public:
  // Everything one SyncTo changed, in application order. Rollback() replays
  // it backwards; the vectors are reusable scratch (SyncTo clears them).
  struct SyncUndo {
    Topology prev_requested;
    Topology prev_realized;
    optical::CircuitId prev_next_id = 0;
    // Circuits torn down, in release order. Each circuit's (src, dst) names
    // the link it implemented, so no separate key list is needed.
    std::vector<optical::Circuit> released;
    // Ids of circuits brought up, in provision order.
    std::vector<optical::CircuitId> provisioned;
  };

  explicit ProvisionedState(optical::OpticalNetwork optical);

  // Adjusts circuits so the realized topology approaches `target`.
  // Returns the number of units that could not be provisioned. When `undo`
  // is given, records everything needed for an exact Rollback.
  int SyncTo(const Topology& target, SyncUndo* undo = nullptr);

  // Exactly reverses the SyncTo that produced `undo`. Must be called before
  // any other mutation; afterwards the state (including the optical
  // network's internal counters) is bit-for-bit what it was before.
  void Rollback(const SyncUndo& undo);

  const Topology& requested() const { return requested_; }
  const Topology& realized() const { return realized_; }
  const optical::OpticalNetwork& optical() const { return optical_; }

  // Capacity graph of the realized topology (one edge per link). Legacy
  // mode: units * theta per link. QoT mode: the sum of the implementing
  // circuits' modulation-tier capacities, which vary with path quality.
  net::Graph CapacityGraph() const;

  // Deliverable rate on link (u, v): units * theta in legacy mode (kept as
  // a single multiply for bit-stable goldens), summed per-circuit tier
  // capacities under QoT.
  double RealizedCapacityGbps(net::NodeId u, net::NodeId v) const;

  // Circuits currently implementing link (u, v).
  std::vector<optical::CircuitId> LinkCircuits(net::NodeId u,
                                               net::NodeId v) const;

  // Tears down circuits crossing a failed fiber and shrinks the realized
  // topology accordingly; returns affected (u,v,units_lost) links.
  std::vector<Link> HandleFiberFailure(net::EdgeId fiber);

  // Span degradation: sets the fiber's extra attenuation. Under QoT the
  // crossing circuits are re-graded (their link capacities shift) and any
  // that no longer close are torn down like a cut — the returned links are
  // those lost units. Legacy mode records the level and returns empty.
  std::vector<Link> HandleFiberDegradation(net::EdgeId fiber, double db);

 private:
  // Maps torn-down circuits to (u,v,units_lost) links and shrinks realized_.
  std::vector<Link> DropCircuits(const std::vector<optical::CircuitId>& victims);
  static std::pair<net::NodeId, net::NodeId> Key(net::NodeId u,
                                                 net::NodeId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }

  optical::OpticalNetwork optical_;
  Topology requested_;
  Topology realized_;
  std::map<std::pair<net::NodeId, net::NodeId>,
           std::vector<optical::CircuitId>>
      link_circuits_;
};

}  // namespace owan::core

#endif  // OWAN_CORE_PROVISIONED_STATE_H_
