#ifndef OWAN_CORE_ENERGY_EVALUATOR_H_
#define OWAN_CORE_ENERGY_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/memo_table.h"
#include "core/provisioned_state.h"
#include "core/routing.h"
#include "core/topology.h"
#include "core/transfer.h"

namespace owan::core {

// Incremental energy evaluation for the annealing hot loop.
//
// The classic search pays, per candidate neighbor: a deep copy of the whole
// ProvisionedState (optical network included), a fresh capacity graph, a
// from-scratch enumeration of every (src,dst) path set, and a full greedy
// allocation — even though a neighbor move changes at most 4 links. One
// EnergyEvaluator per chain replaces that with:
//
//  1. Apply/rollback evaluation: the chain's single ProvisionedState is
//     mutated in place (Topology::Diff-sized work) and rolled back exactly
//     on rejection via ProvisionedState::SyncUndo — no per-candidate copy.
//  2. A persistent path cache with delta invalidation: path sets survive
//     across iterations and slots; a move invalidates only the pairs whose
//     cached paths traverse a vanished link, pairs within hop reach of a
//     new link, and the truncated/fallback entries whose sets depend on
//     global structure. Capacity-only moves (all four links keep units > 0)
//     invalidate nothing.
//  3. A transposition table keyed on Topology::Hash() of the *realized*
//     topology (guarded by exact equality — energy is a pure function of
//     the realized graph and the slot's demands) that lets the Metropolis
//     walk skip the routing run entirely on revisits.
//
// Every result is bit-for-bit what the copy-everything pattern produces:
// the differential tests pin evaluator-vs-fresh equality on randomized move
// sequences, and the PR 1 golden determinism tests pin the default search.
//
// Not thread-safe; chains own disjoint evaluators (see AnnealScratch).
// Between Reset and the end of the chain the evaluator borrows the demand
// and starved-index vectors — they must outlive the slot.
class EnergyEvaluator : public PathSource {
 public:
  struct Eval {
    double energy = 0.0;     // routing throughput on the realized topology
    int starved_served = 0;  // starved transfers with a non-zero allocation
    bool memo_hit = false;   // true: routing skipped, values from the memo
    int failed_units = 0;    // units SyncTo could not realize
  };

  struct Stats {
    int64_t evaluations = 0;      // Apply calls
    int64_t memo_hits = 0;        // Apply calls resolved from the memo
    int64_t routing_runs = 0;     // full allocator executions
    int64_t pairs_enumerated = 0; // per-pair path enumerations
    int64_t pairs_reused = 0;     // cache hits inside the allocator
    int64_t graph_rebuilds = 0;   // structural moves (edge set changed)
  };

  EnergyEvaluator() = default;

  // Starts a slot: derives the provisioned state from the blank optical
  // plant exactly as a fresh chain would (copy + SyncTo(start)), recomputes
  // the base energy, and begins a new memo-table slot (energies depend on
  // the demand set). The path cache persists across slots; stale entries
  // are invalidated against the realized-topology diff.
  //
  // With reuse_state set, and when the blank plant is certifiably the one
  // the evaluator's state was derived from (its mutation stamp is
  // unchanged — see OpticalNetwork::state_stamp), the previous slot's
  // provisioned state is kept and SyncTo diffs it to `start` instead of
  // re-provisioning the whole topology from a fresh copy. On plants with
  // spare wavelengths the warm state is identical to the cold one; under
  // heavy fragmentation the realized sets can differ (both remain valid
  // provisionings, and same-seed reruns stay deterministic either way).
  const Eval& Reset(const optical::OpticalNetwork& blank_optical,
                    const Topology& start,
                    const std::vector<TransferDemand>& demands,
                    const std::vector<size_t>& starved,
                    const RoutingOptions& options, bool reuse_state = false);

  // Shares `table` as the transposition table (e.g. across the chains of
  // one slot; see MemoTable for the concurrency contract). The caller owns
  // the table, keeps it alive past the evaluator's last use, and is
  // responsible for MemoTable::BeginSlot between demand sets — Reset only
  // clears the private default table. Pass nullptr to detach.
  void AttachMemo(MemoTable* table);

  // Applies `target` to the provisioned state in place and evaluates it.
  // Exactly one of Accept()/Reject() must follow before the next Apply. On
  // a memo hit the routing run is skipped; call EnsureRouting() first if
  // the full outcome is needed.
  const Eval& Apply(const Topology& target);

  // Keeps the applied candidate as the chain's current state.
  void Accept();

  // Exactly reverses the last Apply (the optical network, circuit ids and
  // all, returns to its prior state).
  void Reject();

  // Routing outcome of the last Apply/Reset, running the allocator if it
  // was skipped (memo hit or moved out). Valid until the next Apply.
  const RoutingOutcome& EnsureRouting();

  // Moves the last routing outcome out (best-state snapshots take it
  // instead of copying); a later EnsureRouting recomputes.
  RoutingOutcome TakeRouting();

  const ProvisionedState& state() const { return *state_; }
  const Eval& last() const { return last_; }
  const Stats& stats() const { return stats_; }

  // PathSource: path set for (src, dst) on the current realized graph,
  // re-enumerating only invalidated entries. Used by the allocator.
  const PairPaths& PathsFor(net::NodeId src, net::NodeId dst) override;

  // ---- introspection (tests / bench) ----

  // Cached paths for (src, dst) if present AND valid, else nullptr.
  const PairPaths* CachedPaths(net::NodeId src, net::NodeId dst) const;
  // Pairs invalidated by the most recent cache sync, in cache order.
  const std::vector<std::pair<net::NodeId, net::NodeId>>& LastInvalidated()
      const {
    return last_invalidated_;
  }

  // Deliberate-bug switch for the testkit's oracle demo (owan_fuzz
  // --inject-bug cache): when set, SyncCache skips the appeared-link reach
  // invalidation, so complete cached path sets survive moves that open a
  // shorter path — a memory-safe but energy-wrong cache, exactly the class
  // of defect the differential oracle exists to catch. Never set outside
  // tests; affects every evaluator (the flag is process-global).
  static void TestOnlySkipAppearedInvalidation(bool skip);

 private:
  struct CacheEntry {
    net::NodeId src = net::kInvalidNode;
    net::NodeId dst = net::kInvalidNode;
    bool valid = false;
    PairPaths pp;
    // Canonical link indices (min*n+max) its paths traverse, sorted unique.
    std::vector<int32_t> used_links;
    // Sync generation that last (re)enumerated this entry — the rejection
    // undo below uses it to spot values computed for a candidate topology.
    uint64_t fill_gen = 0;
  };

  // One-generation undo of SyncCache, applied when the candidate that
  // triggered the sync is rejected. The annealer rejects most candidates;
  // without the undo the cache follows each rejected candidate and the next
  // sync diffs through it, invalidating (and re-enumerating) the rejected
  // move's neighborhood a second time on the way back. Restoring the cache
  // to the pre-Apply topology makes each candidate pay only for its own
  // move. Values restored from the stash are the exact pre-sync sets, so
  // energies stay bit-identical to a fresh evaluation.
  struct CacheUndo {
    bool valid = false;
    uint64_t apply_gen = 0;   // Apply this sync belongs to (guards memo hits)
    uint64_t fill_gen = 0;    // entries with this fill_gen hold candidate data
    bool structural = false;  // graph_/pair_edge_ were swapped out
    Topology topo;            // cache_topo_ before the sync
    net::Graph graph;         // pre-sync graph (structural only)
    std::vector<int32_t> pair_edge;  // pre-sync edge map (structural only)
    // Edge capacities overwritten by a capacity-only sync.
    std::vector<std::pair<net::EdgeId, double>> capacities;
    // Entries invalidated by the sync, with their pre-sync values.
    struct Stashed {
      int32_t slot;
      PairPaths pp;
      std::vector<int32_t> used_links;
    };
    std::vector<Stashed> stashed;
  };

  size_t LinkIdx(net::NodeId u, net::NodeId v) const {
    const auto [a, b] = std::minmax(u, v);
    return static_cast<size_t>(a) * static_cast<size_t>(n_) +
           static_cast<size_t>(b);
  }
  size_t DirIdx(net::NodeId s, net::NodeId d) const {
    return static_cast<size_t>(s) * static_cast<size_t>(n_) +
           static_cast<size_t>(d);
  }

  void ClearPathCache();
  // Brings graph_/path cache in line with state_->realized(): updates edge
  // capacities in place for capacity-only diffs, otherwise rebuilds the
  // canonical graph, applies the invalidation rules, and remaps surviving
  // cached paths onto the new edge ids. When the routing scratch still
  // describes the previous graph, also derives repair hints (which demands
  // are dirty, which edges changed, the earliest round a dirty demand can
  // act in) so the allocator can replay its clean prefix; *hints_usable is
  // set accordingly.
  void SyncCache(RepairHints* hints, bool* hints_usable);
  // Applies cache_undo_: restores cache_topo_/graph_/pair_edge_, drops
  // candidate-computed entries, re-points surviving paths at the restored
  // edge ids, and un-stashes the invalidated values.
  void RestoreCache();
  // SyncCache + allocator; records energy/served and optionally memoizes.
  void RunRouting(bool memoize);
  int CountStarvedServed() const;
  MemoTable& Memo();

  // ---- chain state ----
  std::optional<ProvisionedState> state_;
  ProvisionedState::SyncUndo undo_;
  bool pending_ = false;  // an Apply awaits Accept/Reject

  // ---- slot bindings ----
  const std::vector<TransferDemand>* demands_ = nullptr;
  const std::vector<size_t>* starved_ = nullptr;
  RoutingOptions options_;

  // ---- persistent path cache ----
  int n_ = 0;
  double theta_ = 0.0;
  // QoT model of the blank plant this cache was built for. When enabled,
  // edge capacities come from the state's per-circuit tier sums instead of
  // units * theta, and the transposition table is disabled: energy is then
  // a function of the concrete circuits (provisioning history), not of the
  // realized unit topology the memo keys on — and a memo hit would skip
  // SyncCache, letting cached capacities go stale across an A->B->A walk.
  optical::QotOptions qot_;
  Topology cache_topo_;            // realized topology graph_ reflects
  net::Graph graph_;               // == cache_topo_.ToGraph(theta_)
  std::vector<int32_t> pair_edge_; // link index -> EdgeId in graph_, -1 none
  std::vector<int32_t> pair_slot_; // dir index -> entries_ slot, -1 none
  std::vector<CacheEntry> entries_;
  std::vector<std::pair<net::NodeId, net::NodeId>> last_invalidated_;
  CacheUndo cache_undo_;
  uint64_t apply_gen_ = 0;  // bumped per Apply
  uint64_t fill_gen_ = 0;   // bumped per structural/capacity sync

  // ---- transposition table (per slot) ----
  // Shared table when attached, else the lazily-created private one.
  MemoTable* memo_ = nullptr;
  std::unique_ptr<MemoTable> own_memo_;

  // ---- routing scratch (grant log, checkpoints; see RoutingScratch) ----
  // Invariant: while scratch_.run_valid, its last run was computed on
  // cache_topo_'s graph (every AllocateRates immediately follows a
  // SyncCache). EnsureRouting compares cache_topo_ against
  // state_->realized() to tell whether the grant log still describes the
  // current state after memo hits and rollbacks skipped allocator runs.
  RoutingScratch scratch_;

  // ---- warm slot reuse ----
  uint64_t blank_stamp_ = 0;  // 0 = state_ not derived from a live blank

  // ---- last evaluation ----
  Eval last_;
  RoutingOutcome last_routing_;   // materialized outcome (EnsureRouting)
  bool routing_valid_ = false;    // last_routing_ matches current realized

  Stats stats_;

  static bool test_skip_appeared_invalidation_;
};

// Reusable cross-slot scratch for ComputeNetworkState: one evaluator per
// chain, so each chain's path cache persists across slots, plus one shared
// transposition table so parallel chains stop recomputing each other's
// energies. Reserve() must run before chains execute concurrently — it
// also begins a fresh memo slot (single-threaded GC of the shared table);
// ForChain then hands out disjoint evaluators without synchronization.
class AnnealScratch {
 public:
  void Reserve(int num_chains);
  EnergyEvaluator& ForChain(int chain) { return *evals_[chain]; }
  const MemoTable& memo() const { return memo_; }

 private:
  std::vector<std::unique_ptr<EnergyEvaluator>> evals_;
  MemoTable memo_;
};

}  // namespace owan::core

#endif  // OWAN_CORE_ENERGY_EVALUATOR_H_
