#ifndef OWAN_CORE_ENERGY_EVALUATOR_H_
#define OWAN_CORE_ENERGY_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/provisioned_state.h"
#include "core/routing.h"
#include "core/topology.h"
#include "core/transfer.h"

namespace owan::core {

// Incremental energy evaluation for the annealing hot loop.
//
// The classic search pays, per candidate neighbor: a deep copy of the whole
// ProvisionedState (optical network included), a fresh capacity graph, a
// from-scratch enumeration of every (src,dst) path set, and a full greedy
// allocation — even though a neighbor move changes at most 4 links. One
// EnergyEvaluator per chain replaces that with:
//
//  1. Apply/rollback evaluation: the chain's single ProvisionedState is
//     mutated in place (Topology::Diff-sized work) and rolled back exactly
//     on rejection via ProvisionedState::SyncUndo — no per-candidate copy.
//  2. A persistent path cache with delta invalidation: path sets survive
//     across iterations and slots; a move invalidates only the pairs whose
//     cached paths traverse a vanished link, pairs within hop reach of a
//     new link, and the truncated/fallback entries whose sets depend on
//     global structure. Capacity-only moves (all four links keep units > 0)
//     invalidate nothing.
//  3. A transposition table keyed on Topology::Hash() of the *realized*
//     topology (guarded by exact equality — energy is a pure function of
//     the realized graph and the slot's demands) that lets the Metropolis
//     walk skip the routing run entirely on revisits.
//
// Every result is bit-for-bit what the copy-everything pattern produces:
// the differential tests pin evaluator-vs-fresh equality on randomized move
// sequences, and the PR 1 golden determinism tests pin the default search.
//
// Not thread-safe; chains own disjoint evaluators (see AnnealScratch).
// Between Reset and the end of the chain the evaluator borrows the demand
// and starved-index vectors — they must outlive the slot.
class EnergyEvaluator : public PathSource {
 public:
  struct Eval {
    double energy = 0.0;     // routing throughput on the realized topology
    int starved_served = 0;  // starved transfers with a non-zero allocation
    bool memo_hit = false;   // true: routing skipped, values from the memo
    int failed_units = 0;    // units SyncTo could not realize
  };

  struct Stats {
    int64_t evaluations = 0;      // Apply calls
    int64_t memo_hits = 0;        // Apply calls resolved from the memo
    int64_t routing_runs = 0;     // full allocator executions
    int64_t pairs_enumerated = 0; // per-pair path enumerations
    int64_t pairs_reused = 0;     // cache hits inside the allocator
    int64_t graph_rebuilds = 0;   // structural moves (edge set changed)
  };

  EnergyEvaluator() = default;

  // Starts a slot: re-derives the provisioned state from the blank optical
  // plant exactly as a fresh chain would (copy + SyncTo(start)), recomputes
  // the base energy, and clears the memo table (energies depend on the
  // demand set). The path cache persists across slots; stale entries are
  // invalidated against the realized-topology diff.
  const Eval& Reset(const optical::OpticalNetwork& blank_optical,
                    const Topology& start,
                    const std::vector<TransferDemand>& demands,
                    const std::vector<size_t>& starved,
                    const RoutingOptions& options);

  // Applies `target` to the provisioned state in place and evaluates it.
  // Exactly one of Accept()/Reject() must follow before the next Apply. On
  // a memo hit the routing run is skipped; call EnsureRouting() first if
  // the full outcome is needed.
  const Eval& Apply(const Topology& target);

  // Keeps the applied candidate as the chain's current state.
  void Accept();

  // Exactly reverses the last Apply (the optical network, circuit ids and
  // all, returns to its prior state).
  void Reject();

  // Routing outcome of the last Apply/Reset, running the allocator if it
  // was skipped (memo hit or moved out). Valid until the next Apply.
  const RoutingOutcome& EnsureRouting();

  // Moves the last routing outcome out (best-state snapshots take it
  // instead of copying); a later EnsureRouting recomputes.
  RoutingOutcome TakeRouting();

  const ProvisionedState& state() const { return *state_; }
  const Eval& last() const { return last_; }
  const Stats& stats() const { return stats_; }

  // PathSource: path set for (src, dst) on the current realized graph,
  // re-enumerating only invalidated entries. Used by the allocator.
  const PairPaths& PathsFor(net::NodeId src, net::NodeId dst) override;

  // ---- introspection (tests / bench) ----

  // Cached paths for (src, dst) if present AND valid, else nullptr.
  const PairPaths* CachedPaths(net::NodeId src, net::NodeId dst) const;
  // Pairs invalidated by the most recent cache sync, in cache order.
  const std::vector<std::pair<net::NodeId, net::NodeId>>& LastInvalidated()
      const {
    return last_invalidated_;
  }

  // Deliberate-bug switch for the testkit's oracle demo (owan_fuzz
  // --inject-bug cache): when set, SyncCache skips the appeared-link reach
  // invalidation, so complete cached path sets survive moves that open a
  // shorter path — a memory-safe but energy-wrong cache, exactly the class
  // of defect the differential oracle exists to catch. Never set outside
  // tests; affects every evaluator (the flag is process-global).
  static void TestOnlySkipAppearedInvalidation(bool skip);

 private:
  struct CacheEntry {
    net::NodeId src = net::kInvalidNode;
    net::NodeId dst = net::kInvalidNode;
    bool valid = false;
    PairPaths pp;
    // Canonical link indices (min*n+max) its paths traverse, sorted unique.
    std::vector<int32_t> used_links;
    // Nodes the enumeration DFS expanded, ascending (see PathsUpToHops):
    // the exactness guard for truncated entries — the sample survives any
    // structural move whose changed links touch none of these nodes.
    std::vector<net::NodeId> expanded;
  };

  struct MemoEntry {
    Topology realized;  // exact-equality guard against hash collisions
    double energy = 0.0;
    int starved_served = 0;
  };

  size_t LinkIdx(net::NodeId u, net::NodeId v) const {
    const auto [a, b] = std::minmax(u, v);
    return static_cast<size_t>(a) * static_cast<size_t>(n_) +
           static_cast<size_t>(b);
  }
  size_t DirIdx(net::NodeId s, net::NodeId d) const {
    return static_cast<size_t>(s) * static_cast<size_t>(n_) +
           static_cast<size_t>(d);
  }

  void ClearPathCache();
  // Brings graph_/path cache in line with state_->realized(): updates edge
  // capacities in place for capacity-only diffs, otherwise rebuilds the
  // canonical graph, applies the invalidation rules, and remaps surviving
  // cached paths onto the new edge ids.
  void SyncCache();
  // SyncCache + allocator; records energy/served and optionally memoizes.
  void RunRouting(bool memoize);
  int CountStarvedServed() const;

  // ---- chain state ----
  std::optional<ProvisionedState> state_;
  ProvisionedState::SyncUndo undo_;
  bool pending_ = false;  // an Apply awaits Accept/Reject

  // ---- slot bindings ----
  const std::vector<TransferDemand>* demands_ = nullptr;
  const std::vector<size_t>* starved_ = nullptr;
  RoutingOptions options_;

  // ---- persistent path cache ----
  int n_ = 0;
  double theta_ = 0.0;
  Topology cache_topo_;            // realized topology graph_ reflects
  net::Graph graph_;               // == cache_topo_.ToGraph(theta_)
  std::vector<int32_t> pair_edge_; // link index -> EdgeId in graph_, -1 none
  std::vector<int32_t> pair_slot_; // dir index -> entries_ slot, -1 none
  std::vector<CacheEntry> entries_;
  std::vector<std::pair<net::NodeId, net::NodeId>> last_invalidated_;

  // ---- transposition table (per slot) ----
  std::unordered_map<uint64_t, std::vector<MemoEntry>> memo_;

  // ---- last evaluation ----
  Eval last_;
  RoutingOutcome last_routing_;
  bool routing_valid_ = false;

  Stats stats_;

  static bool test_skip_appeared_invalidation_;
};

// Reusable cross-slot scratch for ComputeNetworkState: one evaluator per
// chain, so each chain's path cache persists across slots. Reserve() must
// run before chains execute concurrently; ForChain then hands out disjoint
// evaluators without synchronization.
class AnnealScratch {
 public:
  void Reserve(int num_chains);
  EnergyEvaluator& ForChain(int chain) { return *evals_[chain]; }

 private:
  std::vector<std::unique_ptr<EnergyEvaluator>> evals_;
};

}  // namespace owan::core

#endif  // OWAN_CORE_ENERGY_EVALUATOR_H_
