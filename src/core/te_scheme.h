#ifndef OWAN_CORE_TE_SCHEME_H_
#define OWAN_CORE_TE_SCHEME_H_

#include <optional>
#include <string>
#include <vector>

#include "core/topology.h"
#include "core/transfer.h"
#include "optical/optical_network.h"

namespace owan::core {

// Everything a traffic-engineering scheme sees at the start of a time slot.
struct TeInput {
  // Current network-layer topology (in wavelength units).
  const Topology* topology = nullptr;
  // The optical plant with no topology circuits provisioned. Only
  // optical-aware schemes (Owan) use it; network-layer-only baselines treat
  // the topology as fixed, exactly as in the paper's comparison.
  const optical::OpticalNetwork* optical = nullptr;
  // Active transfers with remaining demand.
  std::vector<TransferDemand> demands;
  double slot_seconds = 300.0;
  double now = 0.0;  // absolute time at slot start
};

struct TeOutput {
  // One allocation per input demand (same order).
  std::vector<TransferAllocation> allocations;
  // Set only by schemes that reconfigure the optical layer.
  std::optional<Topology> new_topology;
};

// Interface implemented by Owan and every baseline (§5.1 list).
class TeScheme {
 public:
  virtual ~TeScheme() = default;
  virtual std::string name() const = 0;
  virtual TeOutput Compute(const TeInput& input) = 0;

  // Called by the simulator when a new request enters the system; only
  // admission-control schemes (Amoeba) care.
  virtual bool Admit(const Request& request, double now) {
    (void)request;
    (void)now;
    return true;
  }
};

}  // namespace owan::core

#endif  // OWAN_CORE_TE_SCHEME_H_
