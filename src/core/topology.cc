#include "core/topology.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace owan::core {

namespace {

struct KeyLess {
  bool operator()(const std::pair<std::pair<net::NodeId, net::NodeId>, int>& a,
                  const std::pair<net::NodeId, net::NodeId>& key) const {
    return a.first < key;
  }
};

}  // namespace

std::vector<std::pair<Topology::PairKey, int>>::const_iterator Topology::Find(
    const PairKey& key) const {
  return std::lower_bound(units_.begin(), units_.end(), key, KeyLess{});
}

int Topology::Units(net::NodeId u, net::NodeId v) const {
  const PairKey key = Key(u, v);
  auto it = Find(key);
  return (it == units_.end() || it->first != key) ? 0 : it->second;
}

void Topology::AddUnits(net::NodeId u, net::NodeId v, int delta) {
  if (u == v) throw std::invalid_argument("Topology: self link");
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("Topology: site out of range");
  }
  const PairKey key = Key(u, v);
  auto it = units_.begin() + (Find(key) - units_.begin());
  if (it == units_.end() || it->first != key) {
    if (delta < 0) throw std::logic_error("Topology: negative units on link");
    if (delta == 0) return;
    hash_valid_ = false;
    units_.insert(it, {key, delta});
    return;
  }
  hash_valid_ = false;
  it->second += delta;
  if (it->second < 0) {
    throw std::logic_error("Topology: negative units on link");
  }
  if (it->second == 0) units_.erase(it);
}

void Topology::SetUnits(net::NodeId u, net::NodeId v, int units) {
  AddUnits(u, v, units - Units(u, v));
}

int Topology::PortsUsed(net::NodeId v) const {
  int total = 0;
  for (const auto& [key, units] : units_) {
    if (key.first == v || key.second == v) total += units;
  }
  return total;
}

std::vector<Link> Topology::Links() const {
  std::vector<Link> out;
  out.reserve(units_.size());
  for (const auto& [key, units] : units_) {
    out.push_back(Link{key.first, key.second, units});
  }
  return out;
}

int Topology::TotalUnits() const {
  int total = 0;
  for (const auto& [key, units] : units_) {
    (void)key;
    total += units;
  }
  return total;
}

net::Graph Topology::ToGraph(double theta) const {
  net::Graph g(n_);
  for (const auto& [key, units] : units_) {
    g.AddEdge(key.first, key.second, 1.0, units * theta);
  }
  return g;
}

void Topology::ToGraphInto(net::Graph& g, double theta) const {
  g.Reset(n_);
  for (const auto& [key, units] : units_) {
    g.AddEdge(key.first, key.second, 1.0, units * theta);
  }
}

std::pair<std::vector<Link>, std::vector<Link>> Topology::Diff(
    const Topology& other) const {
  std::vector<Link> to_add;
  std::vector<Link> to_remove;
  // Both vectors are sorted by key: one merge pass instead of a lookup per
  // link (Diff runs once per annealing candidate).
  auto a = units_.begin();
  auto b = other.units_.begin();
  while (a != units_.end() || b != other.units_.end()) {
    if (b == other.units_.end() || (a != units_.end() && a->first < b->first)) {
      to_add.push_back(Link{a->first.first, a->first.second, a->second});
      ++a;
    } else if (a == units_.end() || b->first < a->first) {
      to_remove.push_back(Link{b->first.first, b->first.second, b->second});
      ++b;
    } else {
      const int delta = a->second - b->second;
      if (delta > 0) {
        to_add.push_back(Link{a->first.first, a->first.second, delta});
      } else if (delta < 0) {
        to_remove.push_back(Link{b->first.first, b->first.second, -delta});
      }
      ++a;
      ++b;
    }
  }
  return {to_add, to_remove};
}

int Topology::DistanceTo(const Topology& other) const {
  auto [add, remove] = Diff(other);
  int d = 0;
  for (const Link& l : add) d += l.units;
  for (const Link& l : remove) d += l.units;
  return d;
}

std::string Topology::DebugString() const {
  std::ostringstream os;
  os << "Topology(" << n_ << " sites:";
  for (const auto& [key, units] : units_) {
    os << " " << key.first << "-" << key.second << "x" << units;
  }
  os << ")";
  return os.str();
}

uint64_t Topology::Hash() const {
  if (hash_valid_) return hash_cache_;
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(n_));
  for (const auto& [key, units] : units_) {
    mix(static_cast<uint64_t>(key.first) << 32 |
        static_cast<uint32_t>(key.second));
    mix(static_cast<uint64_t>(units));
  }
  hash_cache_ = h;
  hash_valid_ = true;
  return h;
}

}  // namespace owan::core
