#ifndef OWAN_CORE_MEMO_TABLE_H_
#define OWAN_CORE_MEMO_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/topology.h"

namespace owan::core {

// Lock-free transposition table shared by the annealing chains of one slot.
//
// Energy is a pure function of (realized topology, slot demand set), so any
// chain may consume any chain's published result: once one chain has routed
// a candidate topology, every other chain revisiting it skips its allocator
// run. The table is a fixed power-of-two array of atomic Entry pointers.
// A key hashes to an aligned stripe of kStripe consecutive slots (one cache
// line of pointers); probes stay inside the stripe, so a lookup touches at
// most one line of the slot array. Writers CAS a heap-allocated entry into
// the first empty slot; a full stripe silently drops the insert (the value
// is recomputed on the next miss — correctness never depends on residency).
//
// Concurrency contract:
//  - Find/Insert may race freely across threads during a slot. Entries are
//    published with release stores and read with acquire loads, and are
//    immutable after publication, so readers always see fully-constructed
//    values. A reader may miss an entry that is being inserted concurrently
//    (stale null) — that is a memo miss, and the caller recomputes the same
//    pure value, so results are timing-independent even though hit *counts*
//    are not.
//  - BeginSlot (GC of every entry) is single-threaded, between slots, while
//    no chain is running. Values memoized for one demand set are meaningless
//    for the next, exactly like the per-evaluator table it replaces.
class MemoTable {
 public:
  struct Entry {
    Topology realized;  // exact-equality guard against hash collisions
    double energy = 0.0;
    int starved_served = 0;
  };

  // 2^log2_slots pointer slots; the default (8192 slots, 64 KiB of
  // pointers) comfortably covers a 400-iteration walk per chain across 16
  // chains without stripe pressure.
  explicit MemoTable(int log2_slots = 13);
  ~MemoTable();
  MemoTable(const MemoTable&) = delete;
  MemoTable& operator=(const MemoTable&) = delete;

  // Deletes every entry. Single-threaded: callers must fence chain
  // execution around it (AnnealScratch calls it between slots).
  void BeginSlot();

  // The published entry equal to `realized`, or nullptr. Safe under
  // concurrent Insert.
  const Entry* Find(const Topology& realized) const;

  // Publishes (realized, energy, starved_served). Returns false when an
  // equal entry already exists or the stripe is full; the table is
  // unchanged either way. Safe under concurrent Find/Insert.
  bool Insert(const Topology& realized, double energy, int starved_served);

  size_t Capacity() const { return slots_.size(); }
  // Entries currently resident. Single-threaded (tests/telemetry only).
  int64_t LiveEntries() const;

 private:
  // One 64-byte cache line of Entry pointers per probe window.
  static constexpr size_t kStripe = 8;

  size_t StripeBase(const Topology& realized) const;

  std::vector<std::atomic<Entry*>> slots_;
};

}  // namespace owan::core

#endif  // OWAN_CORE_MEMO_TABLE_H_
