#ifndef OWAN_CORE_POLICY_H_
#define OWAN_CORE_POLICY_H_

#include <algorithm>
#include <vector>

#include "core/transfer.h"

namespace owan::core {

// Transfer ordering used by the routing/rate assignment step of the energy
// function (Algorithm 3, line 16).
enum class SchedulingPolicy {
  kShortestJobFirst,    // order by remaining size (completion-time runs)
  kEarliestDeadlineFirst,  // order by absolute deadline (deadline runs)
};

struct PolicyOptions {
  SchedulingPolicy policy = SchedulingPolicy::kShortestJobFirst;
  // Starvation guard t-hat (§3.2): a transfer unscheduled for this many
  // consecutive slots jumps to the front of the order.
  int starvation_slots = 3;
  // Current time; under EDF, transfers whose deadline already passed are
  // demoted to the back (they cannot meet it anymore, so they only soak up
  // leftover capacity instead of cascading more misses).
  double now = 0.0;
};

// Returns indices into `demands` in scheduling order: starved transfers
// first (FIFO by how long they starved), then by the policy key, with id as
// the final deterministic tie break.
inline std::vector<size_t> ScheduleOrder(
    const std::vector<TransferDemand>& demands, const PolicyOptions& opt) {
  std::vector<size_t> order(demands.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto key_less = [&](size_t a, size_t b) {
    const TransferDemand& da = demands[a];
    const TransferDemand& db = demands[b];
    const bool sa = da.slots_waited >= opt.starvation_slots;
    const bool sb = db.slots_waited >= opt.starvation_slots;
    if (sa != sb) return sa;  // starved transfers first
    if (sa && sb && da.slots_waited != db.slots_waited) {
      return da.slots_waited > db.slots_waited;
    }
    double ka, kb;
    if (opt.policy == SchedulingPolicy::kShortestJobFirst) {
      ka = da.remaining;
      kb = db.remaining;
    } else {
      auto edf_key = [&opt](const TransferDemand& d) {
        if (d.deadline <= 0) return 1e300;       // no deadline: last
        if (d.deadline < opt.now) return 1e200 + d.deadline;  // expired
        return d.deadline;
      };
      ka = edf_key(da);
      kb = edf_key(db);
    }
    if (ka != kb) return ka < kb;
    return da.id < db.id;
  };
  std::sort(order.begin(), order.end(), key_less);
  return order;
}

}  // namespace owan::core

#endif  // OWAN_CORE_POLICY_H_
