#ifndef OWAN_OBS_TRACE_H_
#define OWAN_OBS_TRACE_H_

// Span tracing with a Chrome-tracing/Perfetto-compatible JSON exporter and
// a JSONL event log.
//
// Spans are RAII (obs::Span, or the OWAN_SPAN macro in obs/obs.h): the
// constructor stamps the start, the destructor appends one complete event
// to the calling thread's buffer. Nesting falls out of timestamp
// containment per thread — Perfetto renders slot -> anneal -> chain ->
// energy-eval stacks without explicit parent links. Buffers are
// per-thread (one uncontended mutex each, locked only while the tracer is
// active), so tracing the multi-chain search costs the hot loop nothing
// when off and a few nanoseconds per *span* (not per iteration) when on.
//
// The tracer is off by default. Start(detail) begins a session: buffers
// clear, the epoch resets, and spans whose min_detail exceeds `detail`
// stay no-ops (fine-grained instrumentation opts in via min_detail = 2).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace owan::obs {

// Numeric key/value attached to an event. Keys must be string literals
// (or otherwise outlive the tracer session) — events store the pointer.
struct TraceArg {
  const char* key;
  double value;
};

struct TraceEvent {
  static constexpr int kMaxArgs = 4;

  const char* name = "";  // string literal, by convention
  const char* cat = "";
  int64_t ts_ns = 0;      // nanoseconds since the session epoch
  int64_t dur_ns = -1;    // < 0: instant event
  int tid = 0;            // small dense thread index, assigned on first use
  int num_args = 0;
  TraceArg args[kMaxArgs];

  bool IsInstant() const { return dur_ns < 0; }
};

class Tracer {
 public:
  static Tracer& Global();

  // Starts a capture session: clears every buffer and resets the epoch.
  // `detail` gates fine-grained spans (Span's min_detail).
  void Start(int detail = 1);
  void Stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }
  int detail() const { return detail_.load(std::memory_order_relaxed); }

  // Drops all recorded events (registrations survive).
  void Clear();

  // Merged view of every thread's events, sorted by (ts, tid). Call after
  // concurrent regions have joined (buffers are locked per-event, so a
  // mid-flight snapshot is consistent but possibly partial).
  std::vector<TraceEvent> Events() const;

  // Chrome-tracing JSON ({"traceEvents":[...]}) — loads in Perfetto and
  // chrome://tracing. Returns false if the file cannot be written.
  bool ExportChromeTrace(const std::string& path) const;
  void WriteChromeTrace(std::ostream& os) const;

  // JSONL event log: one JSON object per line, in timestamp order.
  bool ExportJsonl(const std::string& path) const;
  void WriteJsonl(std::ostream& os) const;

  // Zero-duration marker (fault interrupts, adoption decisions, ...).
  void Instant(const char* cat, const char* name,
               std::initializer_list<TraceArg> args = {});

  int64_t NowNs() const;

 private:
  friend class Span;

  struct ThreadBuffer {
    std::mutex mu;
    int tid = 0;
    std::vector<TraceEvent> events;
  };

  Tracer() = default;
  ThreadBuffer& BufferForThisThread();
  void Record(TraceEvent e);

  std::atomic<bool> active_{false};
  std::atomic<int> detail_{1};
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  mutable std::mutex mu_;  // guards buffers_ (registration + snapshot)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 0;
};

// RAII span. When the tracer is inactive (or its detail level is below
// min_detail at construction), every member is a no-op costing one relaxed
// atomic load.
class Span {
 public:
  Span(const char* cat, const char* name, int min_detail = 1);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a numeric arg (capped at TraceEvent::kMaxArgs; extras drop).
  void AddArg(const char* key, double value);

  bool recording() const { return recording_; }

 private:
  bool recording_ = false;
  TraceEvent event_;
};

// No-op stand-in used by the OWAN_SPAN macro when OWAN_OBS_LEVEL == 0.
struct NoopSpan {
  void AddArg(const char*, double) {}
  bool recording() const { return false; }
};

}  // namespace owan::obs

#endif  // OWAN_OBS_TRACE_H_
