#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace owan::obs {

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ts/dur in microseconds with nanosecond precision — the unit Chrome
// tracing expects.
std::string FmtUs(int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1000.0);
  return buf;
}

void AppendArgsJson(const TraceEvent& e, std::string& out) {
  out += "{";
  for (int i = 0; i < e.num_args; ++i) {
    if (i) out += ", ";
    out += "\"";
    out += e.args[i].key;
    out += "\": " + FmtDouble(e.args[i].value);
  }
  out += "}";
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start(int detail) {
  Clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_ = std::chrono::steady_clock::now();
  }
  detail_.store(detail, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { active_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
  }
}

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  // The shared_ptr keeps a buffer alive past its thread's exit, so events
  // from joined pool workers survive until export.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::Record(TraceEvent e) {
  ThreadBuffer& buf = BufferForThisThread();
  e.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(e);
}

void Tracer::Instant(const char* cat, const char* name,
                     std::initializer_list<TraceArg> args) {
  if (!active()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = NowNs();
  e.dur_ns = -1;
  for (const TraceArg& a : args) {
    if (e.num_args >= TraceEvent::kMaxArgs) break;
    e.args[e.num_args++] = a;
  }
  Record(e);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> bl(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });
  return out;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = Events();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::string line = "{\"name\": \"";
    line += e.name;
    line += "\", \"cat\": \"";
    line += e.cat;
    line += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
            ", \"ts\": " + FmtUs(e.ts_ns);
    if (e.IsInstant()) {
      line += ", \"ph\": \"i\", \"s\": \"t\"";
    } else {
      line += ", \"ph\": \"X\", \"dur\": " + FmtUs(e.dur_ns);
    }
    if (e.num_args > 0) {
      line += ", \"args\": ";
      AppendArgsJson(e, line);
    }
    line += "}";
    if (i + 1 < events.size()) line += ",";
    os << line << "\n";
  }
  os << "]}\n";
}

bool Tracer::ExportChromeTrace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  WriteChromeTrace(f);
  return static_cast<bool>(f);
}

void Tracer::WriteJsonl(std::ostream& os) const {
  for (const TraceEvent& e : Events()) {
    std::string line = "{\"name\": \"";
    line += e.name;
    line += "\", \"cat\": \"";
    line += e.cat;
    line += "\", \"tid\": " + std::to_string(e.tid) +
            ", \"ts_ns\": " + std::to_string(e.ts_ns);
    if (!e.IsInstant()) {
      line += ", \"dur_ns\": " + std::to_string(e.dur_ns);
    }
    if (e.num_args > 0) {
      line += ", \"args\": ";
      AppendArgsJson(e, line);
    }
    line += "}";
    os << line << "\n";
  }
}

bool Tracer::ExportJsonl(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  WriteJsonl(f);
  return static_cast<bool>(f);
}

Span::Span(const char* cat, const char* name, int min_detail) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.active() || tracer.detail() < min_detail) return;
  recording_ = true;
  event_.name = name;
  event_.cat = cat;
  event_.ts_ns = tracer.NowNs();
}

Span::~Span() {
  if (!recording_) return;
  Tracer& tracer = Tracer::Global();
  event_.dur_ns = tracer.NowNs() - event_.ts_ns;
  if (event_.dur_ns < 0) event_.dur_ns = 0;
  tracer.Record(event_);
}

void Span::AddArg(const char* key, double value) {
  if (!recording_ || event_.num_args >= TraceEvent::kMaxArgs) return;
  event_.args[event_.num_args++] = TraceArg{key, value};
}

}  // namespace owan::obs
