#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <mutex>

namespace owan::obs {

namespace {

std::atomic<bool> g_metrics_enabled{[] {
  const char* env = std::getenv("OWAN_METRICS");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

// %.17g — round-trips doubles exactly (the fingerprint and JSON export
// both depend on it).
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kNone:
      return "";
    case Unit::kOps:
      return "ops";
    case Unit::kGigabits:
      return "Gb";
    case Unit::kSimSeconds:
      return "sim_s";
    case Unit::kSeconds:
      return "s";
  }
  return "";
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

void AtomicAdd(std::atomic<double>& slot, double delta) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& slot, double value) {
  double cur = slot.load(std::memory_order_relaxed);
  while (value < cur && !slot.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& slot, double value) {
  double cur = slot.load(std::memory_order_relaxed);
  while (value > cur && !slot.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kShards);
  return shard;
}

}  // namespace internal

// ---- Counter ----

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const internal::CounterShard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::CounterShard& s : shards_) {
    s.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Histogram ----

int Histogram::BucketIndex(double v) {
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;  // <=0, NaN, underflow
  if (v >= std::ldexp(1.0, kMaxExp + 1)) return kNumBuckets - 1;
  const int e = std::ilogb(v);
  // frac in [0, 1): position within the power-of-two decade.
  const double frac = std::ldexp(v, -e) - 1.0;
  int sub = static_cast<int>(frac * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + (e - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp + 1);
  const int i = index - 1;
  const int e = kMinExp + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, e);
}

double Histogram::BucketUpperBound(int index) {
  if (index <= 0) return std::ldexp(1.0, kMinExp);
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp + 2);
  return BucketLowerBound(index + 1);
}

void Histogram::Record(double v) {
  Shard& s = shards_[internal::ThisThreadShard()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(s.sum, v);
  internal::AtomicMin(s.min, v);
  internal::AtomicMax(s.max, v);
  s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    for (std::atomic<int64_t>& b : s.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
  }
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

// ---- snapshots ----

double HistogramSnapshot::Mean() const {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double HistogramSnapshot::Percentile(double pct) const {
  if (count <= 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(pct / 100.0 *
                                        static_cast<double>(count))));
  int64_t seen = 0;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (seen >= target) {
      const double lo = Histogram::BucketLowerBound(index);
      const double hi = Histogram::BucketUpperBound(index);
      return std::clamp(0.5 * (lo + hi), min, max);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  std::vector<std::pair<int, int64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"owan_metrics\": 1,\n \"counters\": [";
  bool first = true;
  for (const CounterSnapshot& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + c.name + "\", \"unit\": \"" +
           UnitName(c.unit) + "\", \"value\": " + std::to_string(c.value) +
           "}";
  }
  out += "],\n \"gauges\": [";
  first = true;
  for (const GaugeSnapshot& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + g.name + "\", \"unit\": \"" +
           UnitName(g.unit) + "\", \"value\": " + FmtDouble(g.value) + "}";
  }
  out += "],\n \"histograms\": [";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"" + h.name + "\", \"unit\": \"" +
           UnitName(h.unit) + "\", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + FmtDouble(h.sum) +
           ", \"min\": " + FmtDouble(h.min) +
           ", \"max\": " + FmtDouble(h.max) +
           ", \"p50\": " + FmtDouble(h.Percentile(50)) +
           ", \"p95\": " + FmtDouble(h.Percentile(95)) +
           ", \"p99\": " + FmtDouble(h.Percentile(99)) + ", \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ", ";
      out += "[" + std::to_string(h.buckets[i].first) + ", " +
             std::to_string(h.buckets[i].second) + "]";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

std::string MetricsSnapshot::DeterministicFingerprint() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    if (c.unit == Unit::kSeconds) continue;
    out += "c " + c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    if (g.unit == Unit::kSeconds) continue;
    out += "g " + g.name + " " + FmtDouble(g.value) + "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    if (h.unit == Unit::kSeconds) continue;
    out += "h " + h.name + " " + std::to_string(h.count) + " " +
           FmtDouble(h.sum) + " " + FmtDouble(h.min) + " " +
           FmtDouble(h.max);
    for (const auto& [index, n] : h.buckets) {
      out += " " + std::to_string(index) + ":" + std::to_string(n);
    }
    out += "\n";
  }
  return out;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  auto merge_into = [](auto& mine, const auto& theirs, auto combine) {
    for (const auto& t : theirs) {
      auto it = std::lower_bound(
          mine.begin(), mine.end(), t,
          [](const auto& a, const auto& b) { return a.name < b.name; });
      if (it != mine.end() && it->name == t.name) {
        combine(*it, t);
      } else {
        mine.insert(it, t);
      }
    }
  };
  merge_into(counters, other.counters,
             [](CounterSnapshot& a, const CounterSnapshot& b) {
               a.value += b.value;
             });
  merge_into(gauges, other.gauges,
             [](GaugeSnapshot& a, const GaugeSnapshot& b) {
               a.value = b.value;
             });
  merge_into(histograms, other.histograms,
             [](HistogramSnapshot& a, const HistogramSnapshot& b) {
               a.Merge(b);
             });
}

// ---- MetricsRegistry ----

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // deques: stable element addresses under growth (handles are cached).
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*, std::less<>> counter_index;
  std::map<std::string, Gauge*, std::less<>> gauge_index;
  std::map<std::string, Histogram*, std::less<>> histogram_index;
};

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: usable during static teardown
  return *impl;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, Unit unit) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counter_index.find(name);
  if (it != im.counter_index.end()) return *it->second;
  Counter& c = im.counters.emplace_back(std::string(name), unit);
  im.counter_index.emplace(c.name(), &c);
  return c;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, Unit unit) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauge_index.find(name);
  if (it != im.gauge_index.end()) return *it->second;
  Gauge& g = im.gauges.emplace_back(std::string(name), unit);
  im.gauge_index.emplace(g.name(), &g);
  return g;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name, Unit unit) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histogram_index.find(name);
  if (it != im.histogram_index.end()) return *it->second;
  Histogram& h =
      im.histograms.emplace_back(std::string(name), unit);
  im.histogram_index.emplace(h.name(), &h);
  return h;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  MetricsSnapshot snap;
  snap.counters.reserve(im.counter_index.size());
  for (const auto& [name, c] : im.counter_index) {
    snap.counters.push_back(CounterSnapshot{name, c->unit(), c->Value()});
  }
  snap.gauges.reserve(im.gauge_index.size());
  for (const auto& [name, g] : im.gauge_index) {
    snap.gauges.push_back(GaugeSnapshot{name, g->unit(), g->Value()});
  }
  snap.histograms.reserve(im.histogram_index.size());
  for (const auto& [name, h] : im.histogram_index) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.unit = h->unit();
    int64_t merged_buckets[Histogram::kNumBuckets] = {};
    bool any = false;
    for (const Histogram::Shard& s : h->shards_) {
      const int64_t n = s.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      hs.count += n;
      hs.sum += s.sum.load(std::memory_order_relaxed);
      const double lo = s.min.load(std::memory_order_relaxed);
      const double hi = s.max.load(std::memory_order_relaxed);
      if (!any) {
        hs.min = lo;
        hs.max = hi;
        any = true;
      } else {
        hs.min = std::min(hs.min, lo);
        hs.max = std::max(hs.max, hi);
      }
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        merged_buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (merged_buckets[b] != 0) {
        hs.buckets.emplace_back(b, merged_buckets[b]);
      }
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (Counter& c : im.counters) c.Reset();
  for (Gauge& g : im.gauges) g.Reset();
  for (Histogram& h : im.histograms) h.Reset();
}

}  // namespace owan::obs
