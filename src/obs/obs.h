#ifndef OWAN_OBS_OBS_H_
#define OWAN_OBS_OBS_H_

// Umbrella header for instrumentation call sites: the OWAN_* macros wrap
// obs::MetricsRegistry and obs::Tracer so that
//   * OWAN_OBS_LEVEL=0 compiles every macro to nothing,
//   * name lookup happens once per call site (function-local static),
//   * the runtime kill switches (SetMetricsEnabled, Tracer::Start/Stop)
//     cost one relaxed atomic load when off.
//
// Metric-name convention: "<layer>.<what>" (anneal.iterations,
// sim.fault_events, update.ops). Span convention: category = layer,
// name = stage ("control"/"tick", "core"/"anneal", "sim"/"slot").

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace owan::obs {

// Adds elapsed wall-clock seconds to a histogram at scope exit. A null
// histogram makes it a no-op (the OWAN_TIMER macro passes null when
// metrics are disabled).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ == nullptr) return;
    h_->Record(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace owan::obs

#if OWAN_OBS_LEVEL >= 1

// Counter += n. `unit` is only consulted on first registration.
#define OWAN_COUNT_N(metric_name, metric_unit, n)                           \
  do {                                                                      \
    if (::owan::obs::MetricsEnabled()) {                                    \
      static ::owan::obs::Counter& owan_obs_counter_ =                      \
          ::owan::obs::MetricsRegistry::Global().GetCounter(                \
              (metric_name), (metric_unit));                                \
      owan_obs_counter_.Add(static_cast<int64_t>(n));                       \
    }                                                                       \
  } while (0)

#define OWAN_COUNT(metric_name) \
  OWAN_COUNT_N(metric_name, ::owan::obs::Unit::kOps, 1)

#define OWAN_GAUGE_SET(metric_name, metric_unit, v)                         \
  do {                                                                      \
    if (::owan::obs::MetricsEnabled()) {                                    \
      static ::owan::obs::Gauge& owan_obs_gauge_ =                          \
          ::owan::obs::MetricsRegistry::Global().GetGauge(                  \
              (metric_name), (metric_unit));                                \
      owan_obs_gauge_.Set(static_cast<double>(v));                          \
    }                                                                       \
  } while (0)

#define OWAN_HISTO(metric_name, metric_unit, v)                             \
  do {                                                                      \
    if (::owan::obs::MetricsEnabled()) {                                    \
      static ::owan::obs::Histogram& owan_obs_histogram_ =                  \
          ::owan::obs::MetricsRegistry::Global().GetHistogram(              \
              (metric_name), (metric_unit));                                \
      owan_obs_histogram_.Record(static_cast<double>(v));                   \
    }                                                                       \
  } while (0)

// Wall-clock scope timer recording into a kSeconds histogram named
// `metric_name`. Declares a local named `var`.
#define OWAN_TIMER(var, metric_name)                                        \
  static ::owan::obs::Histogram& owan_obs_timer_hist_##var =                \
      ::owan::obs::MetricsRegistry::Global().GetHistogram(                  \
          (metric_name), ::owan::obs::Unit::kSeconds);                      \
  ::owan::obs::ScopedTimer var(::owan::obs::MetricsEnabled()                \
                                   ? &owan_obs_timer_hist_##var             \
                                   : nullptr)

// Trace span for the enclosing scope; `var` allows AddArg calls.
#define OWAN_SPAN(var, span_cat, span_name) \
  ::owan::obs::Span var((span_cat), (span_name))

// Fine-grained span: only records when the tracer session's detail >= 2
// (and only exists at all when OWAN_OBS_LEVEL >= 2).
#if OWAN_OBS_LEVEL >= 2
#define OWAN_SPAN_DETAIL(var, span_cat, span_name) \
  ::owan::obs::Span var((span_cat), (span_name), /*min_detail=*/2)
#else
#define OWAN_SPAN_DETAIL(var, span_cat, span_name) \
  [[maybe_unused]] ::owan::obs::NoopSpan var
#endif

#define OWAN_INSTANT(span_cat, span_name, ...)                              \
  do {                                                                      \
    if (::owan::obs::Tracer::Global().active()) {                           \
      ::owan::obs::Tracer::Global().Instant((span_cat), (span_name),        \
                                            {__VA_ARGS__});                 \
    }                                                                       \
  } while (0)

#else  // OWAN_OBS_LEVEL == 0

#define OWAN_COUNT_N(metric_name, metric_unit, n) \
  do {                                            \
  } while (0)
#define OWAN_COUNT(metric_name) \
  do {                          \
  } while (0)
#define OWAN_GAUGE_SET(metric_name, metric_unit, v) \
  do {                                              \
  } while (0)
#define OWAN_HISTO(metric_name, metric_unit, v) \
  do {                                          \
  } while (0)
#define OWAN_TIMER(var, metric_name) \
  [[maybe_unused]] ::owan::obs::ScopedTimer var(nullptr)
#define OWAN_SPAN(var, span_cat, span_name) \
  [[maybe_unused]] ::owan::obs::NoopSpan var
#define OWAN_SPAN_DETAIL(var, span_cat, span_name) \
  [[maybe_unused]] ::owan::obs::NoopSpan var
#define OWAN_INSTANT(span_cat, span_name, ...) \
  do {                                         \
  } while (0)

#endif  // OWAN_OBS_LEVEL

#endif  // OWAN_OBS_OBS_H_
