#ifndef OWAN_OBS_METRICS_H_
#define OWAN_OBS_METRICS_H_

// Low-overhead metrics registry: named counters, gauges, and log-linear
// histograms, safe inside the multi-chain annealing hot loop.
//
// Writers touch a per-thread shard (one cache line each) with relaxed
// atomics — no locks, no contention between chains — and readers merge the
// shards on demand. Handles returned by the registry are stable for the
// process lifetime, so call sites cache them in function-local statics (the
// OWAN_* macros in obs/obs.h do this), paying the name lookup exactly once.
//
// Determinism contract: metrics measuring *simulated* quantities (counts,
// gigabits, Unit::kSimSeconds) are pure functions of (inputs, seed) and are
// bit-identical across same-seed runs; only Unit::kSeconds (wall clock)
// metrics vary, and MetricsSnapshot::DeterministicFingerprint() excludes
// exactly those.

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace owan::obs {

// Compile-time instrumentation ceiling (see obs/obs.h for the macros):
//   0 — every OWAN_* macro compiles to nothing;
//   1 — (default) counters/gauges/histograms plus coarse spans;
//   2 — adds fine-grained spans (per-candidate energy evaluations).
#ifndef OWAN_OBS_LEVEL
#define OWAN_OBS_LEVEL 1
#endif

enum class Unit : uint8_t {
  kNone,        // dimensionless
  kOps,         // events / operations
  kGigabits,    // traffic volume or rate
  kSimSeconds,  // simulated time — deterministic for a fixed seed
  kSeconds,     // wall-clock time — never deterministic
};
const char* UnitName(Unit unit);

// Runtime on/off for every metric write (handles stay valid either way).
// Defaults to on; the environment variable OWAN_METRICS=0 turns it off
// before main for binaries that want a zero-telemetry run.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {

inline constexpr int kShards = 8;

struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

// Portable lock-free accumulation for doubles (fetch_add on
// atomic<double> is C++20 but not universally lowered to hardware).
void AtomicAdd(std::atomic<double>& slot, double delta);
void AtomicMin(std::atomic<double>& slot, double value);
void AtomicMax(std::atomic<double>& slot, double value);

// Stable small shard index for the calling thread.
uint32_t ThisThreadShard();

}  // namespace internal

class MetricsRegistry;

class Counter {
 public:
  // Construct through MetricsRegistry::GetCounter; public only so the
  // registry's container can build elements in place.
  Counter(std::string name, Unit unit)
      : name_(std::move(name)), unit_(unit) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t n) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t Value() const;  // merge-on-read across shards
  void Reset();

  const std::string& name() const { return name_; }
  Unit unit() const { return unit_; }

 private:
  std::string name_;
  Unit unit_;
  internal::CounterShard shards_[internal::kShards];
};

// Last-writer-wins scalar (no sharding: gauges are set, not accumulated).
class Gauge {
 public:
  Gauge(std::string name, Unit unit) : name_(std::move(name)), unit_(unit) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

  const std::string& name() const { return name_; }
  Unit unit() const { return unit_; }

 private:
  std::string name_;
  Unit unit_;
  std::atomic<double> value_{0.0};
};

// Log-linear histogram: 4 linear sub-buckets per power of two, spanning
// 2^-30 .. 2^41 (≈1e-9 .. 2e12), plus underflow (incl. v <= 0) and
// overflow buckets. Relative bucket width is 25%, so percentile estimates
// are exact to within a quarter of the value — plenty for latency tables.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 41;
  static constexpr int kNumBuckets =
      (kMaxExp - kMinExp + 1) * kSubBuckets + 2;

  Histogram(std::string name, Unit unit)
      : name_(std::move(name)), unit_(unit) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double v);
  void Reset();

  // Index of the bucket `v` lands in, and the value range of a bucket
  // (used by snapshots to estimate percentiles).
  static int BucketIndex(double v);
  static double BucketLowerBound(int index);
  static double BucketUpperBound(int index);

  int64_t Count() const;

  const std::string& name() const { return name_; }
  Unit unit() const { return unit_; }

 private:
  friend class MetricsRegistry;  // Snapshot() merges shards directly.

  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    // Extremes start at +/-inf so the first sample always wins; snapshots
    // skip empty shards, so the sentinels never leak out.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<int64_t> buckets[kNumBuckets]{};
  };

  std::string name_;
  Unit unit_;
  Shard shards_[internal::kShards];
};

// ---- snapshots (plain data, safe to merge/serialize/compare) ----

struct CounterSnapshot {
  std::string name;
  Unit unit = Unit::kNone;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Unit unit = Unit::kNone;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  Unit unit = Unit::kNone;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // (bucket index, count), ascending by index, zero counts omitted.
  std::vector<std::pair<int, int64_t>> buckets;

  double Mean() const;
  // Percentile in [0, 100], estimated at bucket midpoints and clamped to
  // the observed [min, max].
  double Percentile(double pct) const;
  void Merge(const HistogramSnapshot& other);
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      // each section sorted by name
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Rendered as one JSON object ({"owan_metrics":1, "counters":[...],...}).
  std::string ToJson() const;

  // Line-oriented digest of every deterministic value: all counters and
  // gauges plus histograms whose unit is not kSeconds (bucket counts, sums,
  // extremes included). Two same-seed runs produce identical fingerprints.
  std::string DeterministicFingerprint() const;

  // Element-wise merge (counters add, gauges last-wins, histograms merge);
  // metrics present in only one side are kept.
  void Merge(const MetricsSnapshot& other);
};

// Process-global registry. Get* registers on first use and returns a
// reference that stays valid forever (Reset zeroes values, never removes
// registrations, so cached handles survive).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, Unit unit = Unit::kOps);
  Gauge& GetGauge(std::string_view name, Unit unit = Unit::kNone);
  Histogram& GetHistogram(std::string_view name, Unit unit = Unit::kNone);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  MetricsRegistry() = default;

  struct Impl;
  Impl& impl() const;
};

}  // namespace owan::obs

#endif  // OWAN_OBS_METRICS_H_
