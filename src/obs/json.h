#ifndef OWAN_OBS_JSON_H_
#define OWAN_OBS_JSON_H_

// Minimal JSON reader for the telemetry the subsystem itself emits
// (Chrome-trace exports, metrics snapshots, bench --json files). Strict
// enough for round-trip tests, small enough to avoid a dependency; not a
// general-purpose validator (no \uXXXX surrogate handling beyond BMP
// passthrough, doubles only).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace owan::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  // Insertion-ordered; duplicate keys keep the last occurrence on Find.
  std::vector<std::pair<std::string, Value>> object;

  bool IsNull() const { return type == Type::kNull; }
  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
  double NumberOr(double fallback) const {
    return IsNumber() ? number : fallback;
  }
  const std::string& StringOr(const std::string& fallback) const {
    return IsString() ? string : fallback;
  }
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
// On failure returns false and, when `error` is non-null, a one-line
// message with the byte offset.
bool Parse(std::string_view text, Value* out, std::string* error = nullptr);

// Reads and parses a whole file; distinguishes I/O from syntax in `error`.
bool ParseFile(const std::string& path, Value* out,
               std::string* error = nullptr);

// JSON string escaping for emitters.
std::string Escape(std::string_view s);

}  // namespace owan::obs::json

#endif  // OWAN_OBS_JSON_H_
