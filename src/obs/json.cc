#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace owan::obs::json {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->string);
      case 't':
        return ParseLiteral("true", out, Value::Type::kBool, true);
      case 'f':
        return ParseLiteral("false", out, Value::Type::kBool, false);
      case 'n':
        return ParseLiteral("null", out, Value::Type::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(std::string_view word, Value* out, Value::Type type,
                    bool boolean) {
    if (text.substr(pos, word.size()) != word) return Fail("bad literal");
    pos += word.size();
    out->type = type;
    out->boolean = boolean;
    return true;
  }

  bool ParseNumber(Value* out) {
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos < text.size() && std::isdigit(
                                      static_cast<unsigned char>(text[pos]))) {
        ++pos;
        digits = true;
      }
    };
    eat_digits();
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      eat_digits();
    }
    if (digits && pos < text.size() &&
        (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
      eat_digits();
    }
    if (!digits) return Fail("invalid number");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    out->type = Value::Type::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected '\"'");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs pass through as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(Value* out, int depth) {
    ++pos;  // '['
    out->type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      Value element;
      if (!ParseValue(&element, depth + 1)) return false;
      out->array.push_back(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(Value* out, int depth) {
    ++pos;  // '{'
    out->type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      Value member;
      if (!ParseValue(&member, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }
};

}  // namespace

const Value* Value::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const Value* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

bool Parse(std::string_view text, Value* out, std::string* error) {
  Parser p;
  p.text = text;
  Value result;
  if (!p.ParseValue(&result, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.SkipWhitespace();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return false;
  }
  *out = std::move(result);
  return true;
}

bool ParseFile(const std::string& path, Value* out, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  if (!Parse(text, out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace owan::obs::json
