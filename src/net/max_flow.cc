#include "net/max_flow.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace owan::net {

namespace {
constexpr double kEps = 1e-9;
}

MaxFlow::MaxFlow(int num_nodes) : adj_(num_nodes) {}

int MaxFlow::AddArc(NodeId u, NodeId v, double capacity) {
  if (u < 0 || v < 0 || u >= NumNodes() || v >= NumNodes()) {
    throw std::out_of_range("MaxFlow::AddArc: node out of range");
  }
  const int fwd_slot = static_cast<int>(adj_[u].size());
  const int bwd_slot = static_cast<int>(adj_[v].size());
  adj_[u].push_back(Arc{v, capacity, capacity, bwd_slot});
  adj_[v].push_back(Arc{u, 0.0, 0.0, fwd_slot});
  arc_index_.emplace_back(u, fwd_slot);
  return static_cast<int>(arc_index_.size()) - 1;
}

void MaxFlow::AddUndirected(NodeId u, NodeId v, double capacity) {
  AddArc(u, v, capacity);
  AddArc(v, u, capacity);
}

bool MaxFlow::Bfs(NodeId s, NodeId t) {
  level_.assign(NumNodes(), -1);
  std::queue<NodeId> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Arc& a : adj_[u]) {
      if (a.cap > kEps && level_[a.to] < 0) {
        level_[a.to] = level_[u] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

double MaxFlow::Dfs(NodeId u, NodeId t, double pushed) {
  if (u == t) return pushed;
  for (size_t& i = iter_[u]; i < adj_[u].size(); ++i) {
    Arc& a = adj_[u][i];
    if (a.cap > kEps && level_[a.to] == level_[u] + 1) {
      const double got = Dfs(a.to, t, std::min(pushed, a.cap));
      if (got > kEps) {
        a.cap -= got;
        adj_[a.to][a.rev].cap += got;
        return got;
      }
    }
  }
  return 0.0;
}

double MaxFlow::Solve(NodeId s, NodeId t) {
  if (s == t) return 0.0;
  double flow = 0.0;
  while (Bfs(s, t)) {
    iter_.assign(NumNodes(), 0);
    while (true) {
      const double got =
          Dfs(s, t, std::numeric_limits<double>::infinity());
      if (got <= kEps) break;
      flow += got;
    }
  }
  return flow;
}

double MaxFlow::FlowOn(int arc_id) const {
  const auto [node, slot] = arc_index_.at(static_cast<size_t>(arc_id));
  const Arc& a = adj_[node][slot];
  return a.orig - a.cap;
}

double MinCut(const Graph& g, NodeId s, NodeId t) {
  MaxFlow mf(g.NumNodes());
  for (const Edge& e : g.edges()) {
    mf.AddUndirected(e.u, e.v, e.capacity);
  }
  return mf.Solve(s, t);
}

}  // namespace owan::net
