#include "net/graph.h"

#include <queue>
#include <sstream>
#include <stdexcept>

namespace owan::net {

std::string ToString(const Path& p) {
  std::ostringstream os;
  for (size_t i = 0; i < p.nodes.size(); ++i) {
    if (i) os << "-";
    os << p.nodes[i];
  }
  return os.str();
}

NodeId Graph::AddNode() {
  incident_.emplace_back();
  arcs_valid_ = false;
  return static_cast<NodeId>(incident_.size()) - 1;
}

EdgeId Graph::AddEdge(NodeId u, NodeId v, double weight, double capacity) {
  if (u < 0 || v < 0 || u >= NumNodes() || v >= NumNodes()) {
    throw std::out_of_range("Graph::AddEdge: node id out of range");
  }
  if (u == v) {
    throw std::invalid_argument("Graph::AddEdge: self loops not supported");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, weight, capacity});
  incident_[u].push_back(id);
  incident_[v].push_back(id);
  arcs_valid_ = false;
  return id;
}

void Graph::Reset(int num_nodes) {
  edges_.clear();
  const size_t n = static_cast<size_t>(num_nodes);
  if (incident_.size() > n) incident_.resize(n);
  for (auto& inc : incident_) inc.clear();
  incident_.resize(n);
  arcs_valid_ = false;
}

void Graph::BuildArcs() const {
  const size_t n = incident_.size();
  arc_start_.assign(n + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    arc_start_[i] = static_cast<int>(total);
    total += incident_[i].size();
  }
  arc_start_[n] = static_cast<int>(total);
  arcs_.resize(total);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const EdgeId e : incident_[i]) {
      arcs_[k++] = Arc{edges_[e].Other(static_cast<NodeId>(i)), e};
    }
  }
  arcs_valid_ = true;
}

std::vector<NodeId> Graph::Neighbors(NodeId n) const {
  std::vector<NodeId> out;
  out.reserve(incident_[n].size());
  for (EdgeId e : incident_[n]) out.push_back(edges_[e].Other(n));
  return out;
}

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  for (EdgeId e : incident_[u]) {
    if (edges_[e].Other(u) == v) return e;
  }
  return kInvalidEdge;
}

std::vector<EdgeId> Graph::FindEdges(NodeId u, NodeId v) const {
  std::vector<EdgeId> out;
  for (EdgeId e : incident_[u]) {
    if (edges_[e].Other(u) == v) out.push_back(e);
  }
  return out;
}

bool Graph::IsConnected() const {
  if (NumNodes() == 0) return true;
  std::vector<bool> seen(NumNodes(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  int visited = 1;
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (EdgeId e : incident_[n]) {
      const NodeId m = edges_[e].Other(n);
      if (!seen[m]) {
        seen[m] = true;
        ++visited;
        q.push(m);
      }
    }
  }
  return visited == NumNodes();
}

double Graph::TotalCapacity() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.capacity;
  return total;
}

}  // namespace owan::net
