#ifndef OWAN_NET_GRAPH_H_
#define OWAN_NET_GRAPH_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace owan::net {

using NodeId = int;
using EdgeId = int;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

// An undirected (multi-)edge with a weight (e.g. fiber length in km) and a
// capacity (e.g. Gbps). Parallel edges between the same endpoints are
// allowed; they model parallel fibers or parallel circuits.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double weight = 1.0;
  double capacity = 0.0;

  NodeId Other(NodeId n) const { return n == u ? v : u; }
};

// A simple path through the graph: the node sequence plus the edge ids used
// between consecutive nodes (edges.size() == nodes.size() - 1).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double length = 0.0;  // sum of edge weights

  size_t HopCount() const { return edges.size(); }
  bool empty() const { return nodes.empty(); }
  NodeId src() const { return nodes.empty() ? kInvalidNode : nodes.front(); }
  NodeId dst() const { return nodes.empty() ? kInvalidNode : nodes.back(); }
  bool operator==(const Path& o) const { return nodes == o.nodes; }
};

std::string ToString(const Path& p);

// Undirected capacitated multigraph with stable edge ids.
//
// This is the shared substrate for the optical layer (fiber plant), the
// network layer (router adjacencies), and the regenerator graph. Nodes are
// dense integers [0, NumNodes()).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes) : incident_(num_nodes) {}

  int NumNodes() const { return static_cast<int>(incident_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  NodeId AddNode();
  EdgeId AddEdge(NodeId u, NodeId v, double weight = 1.0,
                 double capacity = 0.0);

  // Reinitialize to `num_nodes` nodes and no edges, keeping allocated
  // storage (edge table, per-node incidence lists, arc array) for reuse.
  // Equivalent to *this = Graph(num_nodes) minus the allocation churn —
  // for callers that rebuild a same-sized graph every iteration.
  void Reset(int num_nodes);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  Edge& edge(EdgeId e) { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Edge ids incident to `n` (both endpoints).
  const std::vector<EdgeId>& Incident(NodeId n) const { return incident_[n]; }

  // One outgoing arc of the flattened adjacency: the far endpoint plus the
  // edge id, so traversal kernels touch one contiguous array instead of
  // chasing Incident() ids through the edge table.
  struct Arc {
    NodeId to;
    EdgeId e;
  };

  // Flat (CSR) adjacency run for `n`, in Incident() order. Built lazily on
  // first use after a structural mutation; weight/capacity edits keep it
  // valid. The lazy build is NOT thread-safe — reserve Arcs() for kernels
  // running on a graph their thread exclusively owns (the evaluator's
  // canonical graph, scratch graphs), and keep shared read-only graphs on
  // Incident().
  std::span<const Arc> Arcs(NodeId n) const {
    if (!arcs_valid_) BuildArcs();
    return {arcs_.data() + arc_start_[static_cast<size_t>(n)],
            arcs_.data() + arc_start_[static_cast<size_t>(n) + 1]};
  }

  // Neighbor node ids of `n` (duplicates possible for parallel edges).
  std::vector<NodeId> Neighbors(NodeId n) const;

  // First edge between u and v, or kInvalidEdge.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  // All edges between u and v.
  std::vector<EdgeId> FindEdges(NodeId u, NodeId v) const;

  // Degree counting parallel edges.
  int Degree(NodeId n) const { return static_cast<int>(incident_[n].size()); }

  bool IsConnected() const;

  // Sum of capacities over all edges.
  double TotalCapacity() const;

 private:
  void BuildArcs() const;

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
  mutable std::vector<Arc> arcs_;
  mutable std::vector<int> arc_start_;
  mutable bool arcs_valid_ = false;
};

}  // namespace owan::net

#endif  // OWAN_NET_GRAPH_H_
