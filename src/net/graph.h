#ifndef OWAN_NET_GRAPH_H_
#define OWAN_NET_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace owan::net {

using NodeId = int;
using EdgeId = int;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

// An undirected (multi-)edge with a weight (e.g. fiber length in km) and a
// capacity (e.g. Gbps). Parallel edges between the same endpoints are
// allowed; they model parallel fibers or parallel circuits.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double weight = 1.0;
  double capacity = 0.0;

  NodeId Other(NodeId n) const { return n == u ? v : u; }
};

// A simple path through the graph: the node sequence plus the edge ids used
// between consecutive nodes (edges.size() == nodes.size() - 1).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double length = 0.0;  // sum of edge weights

  size_t HopCount() const { return edges.size(); }
  bool empty() const { return nodes.empty(); }
  NodeId src() const { return nodes.empty() ? kInvalidNode : nodes.front(); }
  NodeId dst() const { return nodes.empty() ? kInvalidNode : nodes.back(); }
  bool operator==(const Path& o) const { return nodes == o.nodes; }
};

std::string ToString(const Path& p);

// Undirected capacitated multigraph with stable edge ids.
//
// This is the shared substrate for the optical layer (fiber plant), the
// network layer (router adjacencies), and the regenerator graph. Nodes are
// dense integers [0, NumNodes()).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes) : incident_(num_nodes) {}

  int NumNodes() const { return static_cast<int>(incident_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  NodeId AddNode();
  EdgeId AddEdge(NodeId u, NodeId v, double weight = 1.0,
                 double capacity = 0.0);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  Edge& edge(EdgeId e) { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Edge ids incident to `n` (both endpoints).
  const std::vector<EdgeId>& Incident(NodeId n) const { return incident_[n]; }

  // Neighbor node ids of `n` (duplicates possible for parallel edges).
  std::vector<NodeId> Neighbors(NodeId n) const;

  // First edge between u and v, or kInvalidEdge.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  // All edges between u and v.
  std::vector<EdgeId> FindEdges(NodeId u, NodeId v) const;

  // Degree counting parallel edges.
  int Degree(NodeId n) const { return static_cast<int>(incident_[n].size()); }

  bool IsConnected() const;

  // Sum of capacities over all edges.
  double TotalCapacity() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
};

}  // namespace owan::net

#endif  // OWAN_NET_GRAPH_H_
