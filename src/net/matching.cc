#include "net/matching.h"

#include <algorithm>
#include <queue>

namespace owan::net {

namespace {

// Classic O(V^3) blossom implementation. Adjacency is materialised as a
// boolean matrix since matching instances here are small (ports per site).
class Blossom {
 public:
  explicit Blossom(const Graph& g) : n_(g.NumNodes()), adj_(n_) {
    for (const Edge& e : g.edges()) {
      adj_[e.u].push_back(e.v);
      adj_[e.v].push_back(e.u);
    }
    mate_.assign(n_, -1);
    for (int v = 0; v < n_; ++v) {
      std::sort(adj_[v].begin(), adj_[v].end());
      adj_[v].erase(std::unique(adj_[v].begin(), adj_[v].end()),
                    adj_[v].end());
    }
  }

  std::vector<NodeId> Solve() {
    for (int v = 0; v < n_; ++v) {
      if (mate_[v] == -1) Augment(v);
    }
    return mate_;
  }

 private:
  int Lca(int a, int b) {
    std::vector<bool> used(n_, false);
    for (;;) {
      a = base_[a];
      used[a] = true;
      if (mate_[a] == -1) break;
      a = parent_[mate_[a]];
    }
    for (;;) {
      b = base_[b];
      if (used[b]) return b;
      b = parent_[mate_[b]];
    }
  }

  void MarkPath(int v, int b, int child, std::vector<bool>& blossom) {
    while (base_[v] != b) {
      blossom[base_[v]] = true;
      blossom[base_[mate_[v]]] = true;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  void Augment(int root) {
    parent_.assign(n_, -1);
    base_.resize(n_);
    for (int i = 0; i < n_; ++i) base_[i] = i;
    std::vector<bool> used(n_, false);
    std::queue<int> q;
    used[root] = true;
    q.push(root);
    int finish = -1;
    while (!q.empty() && finish == -1) {
      const int v = q.front();
      q.pop();
      for (int to : adj_[v]) {
        if (base_[v] == base_[to] || mate_[v] == to) continue;
        if (to == root || (mate_[to] != -1 && parent_[mate_[to]] != -1)) {
          // Found a blossom; contract it.
          const int cur_base = Lca(v, to);
          std::vector<bool> blossom(n_, false);
          MarkPath(v, cur_base, to, blossom);
          MarkPath(to, cur_base, v, blossom);
          for (int i = 0; i < n_; ++i) {
            if (blossom[base_[i]]) {
              base_[i] = cur_base;
              if (!used[i]) {
                used[i] = true;
                q.push(i);
              }
            }
          }
        } else if (parent_[to] == -1) {
          parent_[to] = v;
          if (mate_[to] == -1) {
            finish = to;
            break;
          }
          used[mate_[to]] = true;
          q.push(mate_[to]);
        }
      }
    }
    if (finish == -1) return;
    // Flip matching along the augmenting path.
    int v = finish;
    while (v != -1) {
      const int pv = parent_[v];
      const int ppv = mate_[pv];
      mate_[v] = pv;
      mate_[pv] = v;
      v = ppv;
    }
  }

  int n_;
  std::vector<std::vector<int>> adj_;
  std::vector<NodeId> mate_;
  std::vector<int> parent_;
  std::vector<int> base_;
};

}  // namespace

std::vector<NodeId> MaximumMatching(const Graph& g) {
  return Blossom(g).Solve();
}

int MatchingSize(const std::vector<NodeId>& mate) {
  int matched = 0;
  for (NodeId m : mate) {
    if (m != kInvalidNode) ++matched;
  }
  return matched / 2;
}

bool IsValidMatching(const Graph& g, const std::vector<NodeId>& mate) {
  if (static_cast<int>(mate.size()) != g.NumNodes()) return false;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const NodeId m = mate[v];
    if (m == kInvalidNode) continue;
    if (m < 0 || m >= g.NumNodes()) return false;
    if (mate[m] != v) return false;
    if (g.FindEdge(v, m) == kInvalidEdge) return false;
  }
  return true;
}

}  // namespace owan::net
