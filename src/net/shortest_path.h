#ifndef OWAN_NET_SHORTEST_PATH_H_
#define OWAN_NET_SHORTEST_PATH_H_

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "net/graph.h"

namespace owan::net {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

// Predicate deciding whether an edge may be traversed; used by Yen's
// algorithm to mask edges and by the circuit provisioner to skip fibers with
// no free wavelengths.
using EdgeFilter = std::function<bool(EdgeId)>;

// Result of a single-source shortest-path computation.
struct SpTree {
  std::vector<double> dist;       // dist[n] == kInfDist if unreachable
  std::vector<NodeId> parent;     // parent node on shortest path, or -1
  std::vector<EdgeId> parent_edge;  // edge used to reach n, or -1

  bool Reachable(NodeId n) const { return dist[n] < kInfDist; }
  // Reconstruct the path from the tree root to `dst`; empty if unreachable.
  Path Extract(NodeId dst) const;
};

// Dijkstra by edge weight from `src`. Edges failing `filter` (if given) are
// ignored. Weights must be non-negative.
SpTree Dijkstra(const Graph& g, NodeId src, const EdgeFilter& filter = {});

// Breadth-first shortest path by hop count.
SpTree BfsTree(const Graph& g, NodeId src, const EdgeFilter& filter = {});

// Convenience: the single shortest (by weight) path src->dst, if any.
std::optional<Path> ShortestPath(const Graph& g, NodeId src, NodeId dst,
                                 const EdgeFilter& filter = {});

// Yen's algorithm: up to k loopless shortest paths by weight, ascending.
std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 int k, const EdgeFilter& filter = {});

// Exact drop-in for KShortestPaths(g, src, dst, 2) on graphs whose edges
// all have weight 1 and no parallel edges (network-layer capacity graphs
// from Topology::ToGraph). Dijkstra's queue pops ascending (dist, node), so
// on such graphs its parent choices reduce to "lowest-id neighbor one hop
// level down" — which plain BFS level fields reproduce without a heap. The
// annealing evaluator's path cache re-derives fallback pairs through this
// on every structural move, so the constant factor matters.
std::vector<Path> TwoShortestPathsByHops(const Graph& g, NodeId src,
                                         NodeId dst);

// All loopless paths from src to dst with at most `max_hops` hops, sorted by
// hop count then weight. Exponential in general; intended for the small
// per-link path sets the energy function iterates over.
//
// When `truncated` is given it is set to true iff the enumeration stopped at
// `max_paths` before exhausting the search space — i.e. the result may be an
// incomplete (DFS-order, not rank-order) subset. Callers that cache path
// sets across graph edits need this: a complete set stays valid under edits
// that touch none of its links, a truncated one does not.
//
// The DFS is pruned by a reverse hop-BFS from dst (branches that cannot
// return to dst within the budget are skipped); the pruning is invisible in
// the output — the emitted path sequence, the cap behavior, and `truncated`
// match the exhaustive enumeration exactly. The output is a pure function
// of the neighbor sequences of nodes within max_hops - 1 hops of src, the
// bound truncated-set cache invalidation relies on.
std::vector<Path> PathsUpToHops(const Graph& g, NodeId src, NodeId dst,
                                int max_hops, size_t max_paths = 64,
                                bool* truncated = nullptr);

}  // namespace owan::net

#endif  // OWAN_NET_SHORTEST_PATH_H_
