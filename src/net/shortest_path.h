#ifndef OWAN_NET_SHORTEST_PATH_H_
#define OWAN_NET_SHORTEST_PATH_H_

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "net/graph.h"

namespace owan::net {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

// Predicate deciding whether an edge may be traversed; used by Yen's
// algorithm to mask edges and by the circuit provisioner to skip fibers with
// no free wavelengths.
using EdgeFilter = std::function<bool(EdgeId)>;

// Result of a single-source shortest-path computation.
struct SpTree {
  std::vector<double> dist;       // dist[n] == kInfDist if unreachable
  std::vector<NodeId> parent;     // parent node on shortest path, or -1
  std::vector<EdgeId> parent_edge;  // edge used to reach n, or -1

  bool Reachable(NodeId n) const { return dist[n] < kInfDist; }
  // Reconstruct the path from the tree root to `dst`; empty if unreachable.
  Path Extract(NodeId dst) const;
};

// Dijkstra by edge weight from `src`. Edges failing `filter` (if given) are
// ignored. Weights must be non-negative.
SpTree Dijkstra(const Graph& g, NodeId src, const EdgeFilter& filter = {});

// Breadth-first shortest path by hop count.
SpTree BfsTree(const Graph& g, NodeId src, const EdgeFilter& filter = {});

// Convenience: the single shortest (by weight) path src->dst, if any.
std::optional<Path> ShortestPath(const Graph& g, NodeId src, NodeId dst,
                                 const EdgeFilter& filter = {});

// Yen's algorithm: up to k loopless shortest paths by weight, ascending.
std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 int k, const EdgeFilter& filter = {});

// All loopless paths from src to dst with at most `max_hops` hops, sorted by
// hop count then weight. Exponential in general; intended for the small
// per-link path sets the energy function iterates over.
std::vector<Path> PathsUpToHops(const Graph& g, NodeId src, NodeId dst,
                                int max_hops, size_t max_paths = 64);

}  // namespace owan::net

#endif  // OWAN_NET_SHORTEST_PATH_H_
