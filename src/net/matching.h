#ifndef OWAN_NET_MATCHING_H_
#define OWAN_NET_MATCHING_H_

#include <vector>

#include "net/graph.h"

namespace owan::net {

// Maximum-cardinality matching in a general (non-bipartite) graph using
// Edmonds' blossom algorithm (O(V^3)).
//
// The Owan controller uses this when synthesising feasible network-layer
// topologies: free router ports at different sites form the nodes and
// candidate adjacencies form the edges; a maximum matching pairs up as many
// ports as possible (paper §4.2 cites the blossom algorithm for exactly this
// purpose).
//
// Returns mate[n] = matched partner of n, or kInvalidNode if unmatched.
std::vector<NodeId> MaximumMatching(const Graph& g);

// Number of matched pairs in a mate vector.
int MatchingSize(const std::vector<NodeId>& mate);

// Checks that `mate` is a valid matching for `g` (symmetric, edges exist).
bool IsValidMatching(const Graph& g, const std::vector<NodeId>& mate);

}  // namespace owan::net

#endif  // OWAN_NET_MATCHING_H_
