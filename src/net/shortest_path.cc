#include "net/shortest_path.h"

#include <algorithm>
#include <queue>
#include <set>

namespace owan::net {

Path SpTree::Extract(NodeId dst) const {
  Path p;
  if (dst < 0 || dst >= static_cast<NodeId>(dist.size()) || !Reachable(dst)) {
    return p;
  }
  NodeId cur = dst;
  while (cur != -1) {
    p.nodes.push_back(cur);
    const EdgeId pe = parent_edge[cur];
    if (pe != kInvalidEdge) p.edges.push_back(pe);
    cur = parent[cur];
  }
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  p.length = dist[dst];
  return p;
}

SpTree Dijkstra(const Graph& g, NodeId src, const EdgeFilter& filter) {
  const int n = g.NumNodes();
  SpTree t;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, -1);
  t.parent_edge.assign(n, kInvalidEdge);
  if (src < 0 || src >= n) return t;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.dist[u]) continue;
    for (EdgeId e : g.Incident(u)) {
      if (filter && !filter(e)) continue;
      const Edge& edge = g.edge(e);
      const NodeId v = edge.Other(u);
      const double nd = d + edge.weight;
      if (nd < t.dist[v]) {
        t.dist[v] = nd;
        t.parent[v] = u;
        t.parent_edge[v] = e;
        pq.emplace(nd, v);
      }
    }
  }
  return t;
}

SpTree BfsTree(const Graph& g, NodeId src, const EdgeFilter& filter) {
  const int n = g.NumNodes();
  SpTree t;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, -1);
  t.parent_edge.assign(n, kInvalidEdge);
  if (src < 0 || src >= n) return t;
  std::queue<NodeId> q;
  t.dist[src] = 0.0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (EdgeId e : g.Incident(u)) {
      if (filter && !filter(e)) continue;
      const NodeId v = g.edge(e).Other(u);
      if (t.dist[v] == kInfDist) {
        t.dist[v] = t.dist[u] + 1.0;
        t.parent[v] = u;
        t.parent_edge[v] = e;
        q.push(v);
      }
    }
  }
  return t;
}

std::optional<Path> ShortestPath(const Graph& g, NodeId src, NodeId dst,
                                 const EdgeFilter& filter) {
  if (src == dst) {
    Path p;
    p.nodes = {src};
    return p;
  }
  const SpTree t = Dijkstra(g, src, filter);
  if (!t.Reachable(dst)) return std::nullopt;
  return t.Extract(dst);
}

namespace {

// Orders candidate paths in Yen's algorithm: by length, then lexicographic
// node sequence for determinism.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.length != b.length) return a.length < b.length;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 int k, const EdgeFilter& filter) {
  std::vector<Path> result;
  if (k <= 0) return result;
  auto first = ShortestPath(g, src, dst, filter);
  if (!first) return result;
  result.push_back(*first);

  std::set<Path, PathLess> candidates;
  std::set<std::vector<NodeId>> known;
  known.insert(first->nodes);

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    // For each node in the previous path except the last, branch off.
    for (size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur = prev.nodes[i];
      // Root: prev.nodes[0..i].
      std::vector<NodeId> root(prev.nodes.begin(),
                               prev.nodes.begin() + static_cast<long>(i) + 1);
      std::vector<EdgeId> root_edges(
          prev.edges.begin(), prev.edges.begin() + static_cast<long>(i));

      // Mask edges that would recreate an already-known path sharing this
      // root, and mask root nodes (except the spur) to keep paths loopless.
      std::set<EdgeId> banned_edges;
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(root.begin(), root.end(), p.nodes.begin())) {
          banned_edges.insert(p.edges[i]);
        }
      }
      std::set<NodeId> banned_nodes(root.begin(), root.end());
      banned_nodes.erase(spur);

      EdgeFilter spur_filter = [&](EdgeId e) {
        if (filter && !filter(e)) return false;
        if (banned_edges.count(e)) return false;
        const Edge& edge = g.edge(e);
        if (banned_nodes.count(edge.u) || banned_nodes.count(edge.v)) {
          return false;
        }
        return true;
      };

      auto spur_path = ShortestPath(g, spur, dst, spur_filter);
      if (!spur_path) continue;

      Path total;
      total.nodes = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      total.edges = root_edges;
      total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                         spur_path->edges.end());
      total.length = 0.0;
      for (EdgeId e : total.edges) total.length += g.edge(e).weight;
      if (!known.count(total.nodes)) {
        known.insert(total.nodes);
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

namespace {

// Hop levels from `src` under the Yen spur mask; dist[v] == -1 if not
// reached. Level fields are order-independent, so a plain frontier BFS
// matches what the filtered Dijkstra computes on unit-weight edges. Stops
// once the level containing `stop_at` completes: every node at distance
// <= dist[stop_at] is labeled by then, which is all the canonical
// backward walk ever queries.
void HopLevels(const Graph& g, NodeId src, NodeId stop_at, EdgeId banned_edge,
               const std::vector<char>& banned_node, std::vector<int>& dist) {
  dist.assign(static_cast<size_t>(g.NumNodes()), -1);
  std::vector<NodeId> frontier{src};
  std::vector<NodeId> next;
  dist[static_cast<size_t>(src)] = 0;
  int level = 0;
  while (!frontier.empty()) {
    next.clear();
    ++level;
    for (NodeId u : frontier) {
      for (EdgeId e : g.Incident(u)) {
        if (e == banned_edge) continue;
        const Edge& edge = g.edge(e);
        if (banned_node[static_cast<size_t>(edge.u)] ||
            banned_node[static_cast<size_t>(edge.v)]) {
          continue;
        }
        const NodeId v = edge.Other(u);
        if (dist[static_cast<size_t>(v)] == -1) {
          dist[static_cast<size_t>(v)] = level;
          next.push_back(v);
        }
      }
    }
    if (dist[static_cast<size_t>(stop_at)] != -1) return;
    frontier.swap(next);
  }
}

// Canonical shortest path from the level field, replicating the filtered
// Dijkstra's tie-breaking: pops ascend (dist, node), and a node's dist is
// only ever set once on unit-weight edges, so parent[v] is the lowest-id
// masked neighbor one level down and parent_edge[v] is the first qualifying
// edge in that parent's incident list.
std::optional<Path> ExtractByLevels(const Graph& g, NodeId dst,
                                    EdgeId banned_edge,
                                    const std::vector<char>& banned_node,
                                    const std::vector<int>& dist) {
  const int d = dist[static_cast<size_t>(dst)];
  if (d < 0) return std::nullopt;
  Path p;
  p.nodes.assign(static_cast<size_t>(d) + 1, -1);
  p.edges.assign(static_cast<size_t>(d), kInvalidEdge);
  p.length = static_cast<double>(d);
  NodeId cur = dst;
  for (int lvl = d; lvl > 0; --lvl) {
    p.nodes[static_cast<size_t>(lvl)] = cur;
    NodeId parent = -1;
    for (EdgeId e : g.Incident(cur)) {
      if (e == banned_edge) continue;
      const Edge& edge = g.edge(e);
      if (banned_node[static_cast<size_t>(edge.u)] ||
          banned_node[static_cast<size_t>(edge.v)]) {
        continue;
      }
      const NodeId v = edge.Other(cur);
      if (dist[static_cast<size_t>(v)] == lvl - 1 &&
          (parent == -1 || v < parent)) {
        parent = v;
      }
    }
    for (EdgeId e : g.Incident(parent)) {
      if (e == banned_edge) continue;
      const Edge& edge = g.edge(e);
      if (banned_node[static_cast<size_t>(edge.u)] ||
          banned_node[static_cast<size_t>(edge.v)]) {
        continue;
      }
      if (edge.Other(parent) == cur) {
        p.edges[static_cast<size_t>(lvl) - 1] = e;
        break;
      }
    }
    cur = parent;
  }
  p.nodes[0] = cur;
  return p;
}

}  // namespace

std::vector<Path> TwoShortestPathsByHops(const Graph& g, NodeId src,
                                         NodeId dst) {
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (g.edge(e).weight != 1.0) return KShortestPaths(g, src, dst, 2);
  }
  std::vector<Path> result;
  if (src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes()) {
    return result;
  }
  if (src == dst) {
    Path p;
    p.nodes = {src};
    result.push_back(std::move(p));
    return result;
  }
  std::vector<char> banned_node(static_cast<size_t>(g.NumNodes()), 0);
  std::vector<int> dist;
  HopLevels(g, src, dst, kInvalidEdge, banned_node, dist);
  auto first = ExtractByLevels(g, dst, kInvalidEdge, banned_node, dist);
  if (!first) return result;
  result.push_back(*first);

  // Yen's single deviation round: candidates are ordered by (length, node
  // sequence) and spurs are visited root-first, so tracking the strictly
  // smallest candidate reproduces the candidate set's begin() — including
  // which parallel-edge variant survives on equal node sequences.
  const Path& prev = result.front();
  std::optional<Path> best;
  for (size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
    const NodeId spur = prev.nodes[i];
    if (i > 0) banned_node[static_cast<size_t>(prev.nodes[i - 1])] = 1;
    const EdgeId banned_edge = prev.edges[i];
    HopLevels(g, spur, dst, banned_edge, banned_node, dist);
    auto spur_path = ExtractByLevels(g, dst, banned_edge, banned_node, dist);
    if (!spur_path) continue;
    Path total;
    total.nodes.assign(prev.nodes.begin(),
                       prev.nodes.begin() + static_cast<long>(i));
    total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(),
                       spur_path->nodes.end());
    if (total.nodes == prev.nodes) continue;  // Yen's known-path mask
    total.edges.assign(prev.edges.begin(),
                       prev.edges.begin() + static_cast<long>(i));
    total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                       spur_path->edges.end());
    total.length = static_cast<double>(total.edges.size());
    const bool better =
        !best || total.length < best->length ||
        (total.length == best->length && total.nodes < best->nodes);
    if (better) best = std::move(total);
  }
  if (best) result.push_back(std::move(*best));
  return result;
}

namespace {

void PathsDfs(const Graph& g, NodeId cur, NodeId dst, int max_hops,
              size_t max_paths, std::vector<NodeId>& nodes,
              std::vector<EdgeId>& edges, std::vector<bool>& visited,
              double length, std::vector<Path>& out,
              std::vector<bool>* expanded) {
  if (out.size() >= max_paths) return;
  if (cur == dst) {
    Path p;
    p.nodes = nodes;
    p.edges = edges;
    p.length = length;
    out.push_back(std::move(p));
    return;
  }
  if (static_cast<int>(edges.size()) >= max_hops) return;
  if (expanded) (*expanded)[cur] = true;
  for (EdgeId e : g.Incident(cur)) {
    const NodeId nxt = g.edge(e).Other(cur);
    if (visited[nxt]) continue;
    visited[nxt] = true;
    nodes.push_back(nxt);
    edges.push_back(e);
    PathsDfs(g, nxt, dst, max_hops, max_paths, nodes, edges, visited,
             length + g.edge(e).weight, out, expanded);
    edges.pop_back();
    nodes.pop_back();
    visited[nxt] = false;
  }
}

}  // namespace

std::vector<Path> PathsUpToHops(const Graph& g, NodeId src, NodeId dst,
                                int max_hops, size_t max_paths,
                                bool* truncated,
                                std::vector<NodeId>* expanded) {
  std::vector<Path> out;
  if (truncated) *truncated = false;
  if (expanded) expanded->clear();
  if (src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes()) {
    return out;
  }
  std::vector<bool> visited(g.NumNodes(), false);
  std::vector<NodeId> nodes{src};
  std::vector<EdgeId> edges;
  visited[src] = true;
  std::vector<bool> expanded_mark;
  if (expanded) expanded_mark.assign(g.NumNodes(), false);
  PathsDfs(g, src, dst, max_hops, max_paths, nodes, edges, visited, 0.0, out,
           expanded ? &expanded_mark : nullptr);
  if (expanded) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (expanded_mark[v]) expanded->push_back(v);
    }
  }
  // Hitting the cap means the DFS may have abandoned unexplored branches;
  // the set is then a discovery-order sample rather than the full space.
  if (truncated) *truncated = out.size() >= max_paths;
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    if (a.HopCount() != b.HopCount()) return a.HopCount() < b.HopCount();
    if (a.length != b.length) return a.length < b.length;
    return a.nodes < b.nodes;
  });
  return out;
}

}  // namespace owan::net
