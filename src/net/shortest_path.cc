#include "net/shortest_path.h"

#include <algorithm>
#include <queue>
#include <set>

namespace owan::net {

Path SpTree::Extract(NodeId dst) const {
  Path p;
  if (dst < 0 || dst >= static_cast<NodeId>(dist.size()) || !Reachable(dst)) {
    return p;
  }
  NodeId cur = dst;
  while (cur != -1) {
    p.nodes.push_back(cur);
    const EdgeId pe = parent_edge[cur];
    if (pe != kInvalidEdge) p.edges.push_back(pe);
    cur = parent[cur];
  }
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  p.length = dist[dst];
  return p;
}

SpTree Dijkstra(const Graph& g, NodeId src, const EdgeFilter& filter) {
  const int n = g.NumNodes();
  SpTree t;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, -1);
  t.parent_edge.assign(n, kInvalidEdge);
  if (src < 0 || src >= n) return t;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.dist[u]) continue;
    for (EdgeId e : g.Incident(u)) {
      if (filter && !filter(e)) continue;
      const Edge& edge = g.edge(e);
      const NodeId v = edge.Other(u);
      const double nd = d + edge.weight;
      if (nd < t.dist[v]) {
        t.dist[v] = nd;
        t.parent[v] = u;
        t.parent_edge[v] = e;
        pq.emplace(nd, v);
      }
    }
  }
  return t;
}

SpTree BfsTree(const Graph& g, NodeId src, const EdgeFilter& filter) {
  const int n = g.NumNodes();
  SpTree t;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, -1);
  t.parent_edge.assign(n, kInvalidEdge);
  if (src < 0 || src >= n) return t;
  std::queue<NodeId> q;
  t.dist[src] = 0.0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (EdgeId e : g.Incident(u)) {
      if (filter && !filter(e)) continue;
      const NodeId v = g.edge(e).Other(u);
      if (t.dist[v] == kInfDist) {
        t.dist[v] = t.dist[u] + 1.0;
        t.parent[v] = u;
        t.parent_edge[v] = e;
        q.push(v);
      }
    }
  }
  return t;
}

std::optional<Path> ShortestPath(const Graph& g, NodeId src, NodeId dst,
                                 const EdgeFilter& filter) {
  if (src == dst) {
    Path p;
    p.nodes = {src};
    return p;
  }
  const SpTree t = Dijkstra(g, src, filter);
  if (!t.Reachable(dst)) return std::nullopt;
  return t.Extract(dst);
}

namespace {

// Orders candidate paths in Yen's algorithm: by length, then lexicographic
// node sequence for determinism.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.length != b.length) return a.length < b.length;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 int k, const EdgeFilter& filter) {
  std::vector<Path> result;
  if (k <= 0) return result;
  auto first = ShortestPath(g, src, dst, filter);
  if (!first) return result;
  result.push_back(*first);

  std::set<Path, PathLess> candidates;
  std::set<std::vector<NodeId>> known;
  known.insert(first->nodes);

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    // For each node in the previous path except the last, branch off.
    for (size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur = prev.nodes[i];
      // Root: prev.nodes[0..i].
      std::vector<NodeId> root(prev.nodes.begin(),
                               prev.nodes.begin() + static_cast<long>(i) + 1);
      std::vector<EdgeId> root_edges(
          prev.edges.begin(), prev.edges.begin() + static_cast<long>(i));

      // Mask edges that would recreate an already-known path sharing this
      // root, and mask root nodes (except the spur) to keep paths loopless.
      std::set<EdgeId> banned_edges;
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(root.begin(), root.end(), p.nodes.begin())) {
          banned_edges.insert(p.edges[i]);
        }
      }
      std::set<NodeId> banned_nodes(root.begin(), root.end());
      banned_nodes.erase(spur);

      EdgeFilter spur_filter = [&](EdgeId e) {
        if (filter && !filter(e)) return false;
        if (banned_edges.count(e)) return false;
        const Edge& edge = g.edge(e);
        if (banned_nodes.count(edge.u) || banned_nodes.count(edge.v)) {
          return false;
        }
        return true;
      };

      auto spur_path = ShortestPath(g, spur, dst, spur_filter);
      if (!spur_path) continue;

      Path total;
      total.nodes = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      total.edges = root_edges;
      total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                         spur_path->edges.end());
      total.length = 0.0;
      for (EdgeId e : total.edges) total.length += g.edge(e).weight;
      if (!known.count(total.nodes)) {
        known.insert(total.nodes);
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

namespace {

void PathsDfs(const Graph& g, NodeId cur, NodeId dst, int max_hops,
              size_t max_paths, std::vector<NodeId>& nodes,
              std::vector<EdgeId>& edges, std::vector<bool>& visited,
              double length, std::vector<Path>& out) {
  if (out.size() >= max_paths) return;
  if (cur == dst) {
    Path p;
    p.nodes = nodes;
    p.edges = edges;
    p.length = length;
    out.push_back(std::move(p));
    return;
  }
  if (static_cast<int>(edges.size()) >= max_hops) return;
  for (EdgeId e : g.Incident(cur)) {
    const NodeId nxt = g.edge(e).Other(cur);
    if (visited[nxt]) continue;
    visited[nxt] = true;
    nodes.push_back(nxt);
    edges.push_back(e);
    PathsDfs(g, nxt, dst, max_hops, max_paths, nodes, edges, visited,
             length + g.edge(e).weight, out);
    edges.pop_back();
    nodes.pop_back();
    visited[nxt] = false;
  }
}

}  // namespace

std::vector<Path> PathsUpToHops(const Graph& g, NodeId src, NodeId dst,
                                int max_hops, size_t max_paths) {
  std::vector<Path> out;
  if (src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes()) {
    return out;
  }
  std::vector<bool> visited(g.NumNodes(), false);
  std::vector<NodeId> nodes{src};
  std::vector<EdgeId> edges;
  visited[src] = true;
  PathsDfs(g, src, dst, max_hops, max_paths, nodes, edges, visited, 0.0, out);
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    if (a.HopCount() != b.HopCount()) return a.HopCount() < b.HopCount();
    if (a.length != b.length) return a.length < b.length;
    return a.nodes < b.nodes;
  });
  return out;
}

}  // namespace owan::net
