#include "net/shortest_path.h"

#include <algorithm>
#include <climits>
#include <queue>
#include <set>

namespace owan::net {

Path SpTree::Extract(NodeId dst) const {
  Path p;
  if (dst < 0 || dst >= static_cast<NodeId>(dist.size()) || !Reachable(dst)) {
    return p;
  }
  NodeId cur = dst;
  while (cur != -1) {
    p.nodes.push_back(cur);
    const EdgeId pe = parent_edge[cur];
    if (pe != kInvalidEdge) p.edges.push_back(pe);
    cur = parent[cur];
  }
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  p.length = dist[dst];
  return p;
}

SpTree Dijkstra(const Graph& g, NodeId src, const EdgeFilter& filter) {
  const int n = g.NumNodes();
  SpTree t;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, -1);
  t.parent_edge.assign(n, kInvalidEdge);
  if (src < 0 || src >= n) return t;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > t.dist[u]) continue;
    for (EdgeId e : g.Incident(u)) {
      if (filter && !filter(e)) continue;
      const Edge& edge = g.edge(e);
      const NodeId v = edge.Other(u);
      const double nd = d + edge.weight;
      if (nd < t.dist[v]) {
        t.dist[v] = nd;
        t.parent[v] = u;
        t.parent_edge[v] = e;
        pq.emplace(nd, v);
      }
    }
  }
  return t;
}

SpTree BfsTree(const Graph& g, NodeId src, const EdgeFilter& filter) {
  const int n = g.NumNodes();
  SpTree t;
  t.dist.assign(n, kInfDist);
  t.parent.assign(n, -1);
  t.parent_edge.assign(n, kInvalidEdge);
  if (src < 0 || src >= n) return t;
  if (!filter) {
    // Unfiltered hot path (cache invalidation bounds run this per changed
    // link per candidate): level-frontier sweep over the flat arc array.
    // Frontier order equals FIFO-queue discovery order, so the parent tree
    // is bit-identical to the general loop below.
    thread_local std::vector<NodeId> frontier;
    thread_local std::vector<NodeId> next;
    frontier.assign(1, src);
    t.dist[src] = 0.0;
    double d = 0.0;
    while (!frontier.empty()) {
      next.clear();
      d += 1.0;
      for (const NodeId u : frontier) {
        for (const Graph::Arc& a : g.Arcs(u)) {
          if (t.dist[a.to] == kInfDist) {
            t.dist[a.to] = d;
            t.parent[a.to] = u;
            t.parent_edge[a.to] = a.e;
            next.push_back(a.to);
          }
        }
      }
      frontier.swap(next);
    }
    return t;
  }
  std::queue<NodeId> q;
  t.dist[src] = 0.0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (EdgeId e : g.Incident(u)) {
      if (filter && !filter(e)) continue;
      const NodeId v = g.edge(e).Other(u);
      if (t.dist[v] == kInfDist) {
        t.dist[v] = t.dist[u] + 1.0;
        t.parent[v] = u;
        t.parent_edge[v] = e;
        q.push(v);
      }
    }
  }
  return t;
}

std::optional<Path> ShortestPath(const Graph& g, NodeId src, NodeId dst,
                                 const EdgeFilter& filter) {
  if (src == dst) {
    Path p;
    p.nodes = {src};
    return p;
  }
  const SpTree t = Dijkstra(g, src, filter);
  if (!t.Reachable(dst)) return std::nullopt;
  return t.Extract(dst);
}

namespace {

// Orders candidate paths in Yen's algorithm: by length, then lexicographic
// node sequence for determinism.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.length != b.length) return a.length < b.length;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> KShortestPaths(const Graph& g, NodeId src, NodeId dst,
                                 int k, const EdgeFilter& filter) {
  std::vector<Path> result;
  if (k <= 0) return result;
  auto first = ShortestPath(g, src, dst, filter);
  if (!first) return result;
  result.push_back(*first);

  std::set<Path, PathLess> candidates;
  std::set<std::vector<NodeId>> known;
  known.insert(first->nodes);

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    // For each node in the previous path except the last, branch off.
    for (size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur = prev.nodes[i];
      // Root: prev.nodes[0..i].
      std::vector<NodeId> root(prev.nodes.begin(),
                               prev.nodes.begin() + static_cast<long>(i) + 1);
      std::vector<EdgeId> root_edges(
          prev.edges.begin(), prev.edges.begin() + static_cast<long>(i));

      // Mask edges that would recreate an already-known path sharing this
      // root, and mask root nodes (except the spur) to keep paths loopless.
      std::set<EdgeId> banned_edges;
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(root.begin(), root.end(), p.nodes.begin())) {
          banned_edges.insert(p.edges[i]);
        }
      }
      std::set<NodeId> banned_nodes(root.begin(), root.end());
      banned_nodes.erase(spur);

      EdgeFilter spur_filter = [&](EdgeId e) {
        if (filter && !filter(e)) return false;
        if (banned_edges.count(e)) return false;
        const Edge& edge = g.edge(e);
        if (banned_nodes.count(edge.u) || banned_nodes.count(edge.v)) {
          return false;
        }
        return true;
      };

      auto spur_path = ShortestPath(g, spur, dst, spur_filter);
      if (!spur_path) continue;

      Path total;
      total.nodes = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      total.edges = root_edges;
      total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                         spur_path->edges.end());
      total.length = 0.0;
      for (EdgeId e : total.edges) total.length += g.edge(e).weight;
      if (!known.count(total.nodes)) {
        known.insert(total.nodes);
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

namespace {

// Hop levels from `src` under the Yen spur mask; dist[v] == -1 if not
// reached. Level fields are order-independent, so a plain frontier BFS
// matches what the filtered Dijkstra computes on unit-weight edges. Stops
// once the level containing `stop_at` completes: every node at distance
// <= dist[stop_at] is labeled by then, which is all the canonical
// backward walk ever queries. `max_level` additionally abandons the sweep
// once all of level max_level is labeled without reaching stop_at —
// callers pass it when a deeper stop_at could not matter anyway.
void HopLevels(const Graph& g, NodeId src, NodeId stop_at, EdgeId banned_edge,
               const std::vector<char>& banned_node, std::vector<int>& dist,
               int max_level = INT_MAX) {
  dist.assign(static_cast<size_t>(g.NumNodes()), -1);
  // Leaf routine on the evaluator's hottest path: keep the frontier
  // buffers per-thread instead of reallocating them per call.
  static thread_local std::vector<NodeId> frontier;
  static thread_local std::vector<NodeId> next;
  frontier.assign(1, src);
  dist[static_cast<size_t>(src)] = 0;
  int level = 0;
  while (!frontier.empty()) {
    next.clear();
    ++level;
    for (NodeId u : frontier) {
      // Frontier nodes are never banned (the source is a spur node, and
      // banned endpoints are filtered before enqueueing), so only the far
      // endpoint needs the mask check.
      for (const Graph::Arc& a : g.Arcs(u)) {
        if (a.e == banned_edge) continue;
        const NodeId v = a.to;
        if (banned_node[static_cast<size_t>(v)]) continue;
        if (dist[static_cast<size_t>(v)] == -1) {
          dist[static_cast<size_t>(v)] = level;
          next.push_back(v);
        }
      }
    }
    if (dist[static_cast<size_t>(stop_at)] != -1) return;
    if (level >= max_level) return;
    frontier.swap(next);
  }
}

// Canonical shortest path from the level field, replicating the filtered
// Dijkstra's tie-breaking: pops ascend (dist, node), and a node's dist is
// only ever set once on unit-weight edges, so parent[v] is the lowest-id
// masked neighbor one level down and parent_edge[v] is the first qualifying
// edge in that parent's incident list.
std::optional<Path> ExtractByLevels(const Graph& g, NodeId dst,
                                    EdgeId banned_edge,
                                    const std::vector<char>& banned_node,
                                    const std::vector<int>& dist) {
  const int d = dist[static_cast<size_t>(dst)];
  if (d < 0) return std::nullopt;
  Path p;
  p.nodes.assign(static_cast<size_t>(d) + 1, -1);
  p.edges.assign(static_cast<size_t>(d), kInvalidEdge);
  p.length = static_cast<double>(d);
  NodeId cur = dst;
  for (int lvl = d; lvl > 0; --lvl) {
    p.nodes[static_cast<size_t>(lvl)] = cur;
    NodeId parent = -1;
    // cur is on the canonical path and parents carry a dist label, so
    // neither is ever banned — only the candidate endpoint needs the check.
    for (const Graph::Arc& a : g.Arcs(cur)) {
      if (a.e == banned_edge) continue;
      const NodeId v = a.to;
      if (banned_node[static_cast<size_t>(v)]) continue;
      if (dist[static_cast<size_t>(v)] == lvl - 1 &&
          (parent == -1 || v < parent)) {
        parent = v;
      }
    }
    for (const Graph::Arc& a : g.Arcs(parent)) {
      if (a.e == banned_edge) continue;
      if (banned_node[static_cast<size_t>(a.to)]) continue;
      if (a.to == cur) {
        p.edges[static_cast<size_t>(lvl) - 1] = a.e;
        break;
      }
    }
    cur = parent;
  }
  p.nodes[0] = cur;
  return p;
}

}  // namespace

std::vector<Path> TwoShortestPathsByHops(const Graph& g, NodeId src,
                                         NodeId dst) {
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (g.edge(e).weight != 1.0) return KShortestPaths(g, src, dst, 2);
  }
  std::vector<Path> result;
  if (src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes()) {
    return result;
  }
  if (src == dst) {
    Path p;
    p.nodes = {src};
    result.push_back(std::move(p));
    return result;
  }
  static thread_local std::vector<char> banned_node;
  static thread_local std::vector<int> dist;
  banned_node.assign(static_cast<size_t>(g.NumNodes()), 0);
  HopLevels(g, src, dst, kInvalidEdge, banned_node, dist);
  auto first = ExtractByLevels(g, dst, kInvalidEdge, banned_node, dist);
  if (!first) return result;
  result.push_back(*first);

  // Yen's single deviation round: candidates are ordered by (length, node
  // sequence) and spurs are visited root-first, so tracking the strictly
  // smallest candidate reproduces the candidate set's begin() — including
  // which parallel-edge variant survives on equal node sequences.
  const Path& prev = result.front();
  std::optional<Path> best;
  for (size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
    const NodeId spur = prev.nodes[i];
    if (i > 0) banned_node[static_cast<size_t>(prev.nodes[i - 1])] = 1;
    const EdgeId banned_edge = prev.edges[i];
    // A candidate from this spur is i + spur-segment hops long; it can only
    // displace `best` at <= best->length total, so the spur BFS may stop at
    // that depth. Once even a 1-hop segment is too long, no later spur
    // (larger i, same bound) can produce a winner either.
    int cap = INT_MAX;
    if (best) {
      cap = static_cast<int>(best->length) - static_cast<int>(i);
      if (cap < 1) break;
    }
    HopLevels(g, spur, dst, banned_edge, banned_node, dist, cap);
    auto spur_path = ExtractByLevels(g, dst, banned_edge, banned_node, dist);
    if (!spur_path) continue;
    Path total;
    total.nodes.assign(prev.nodes.begin(),
                       prev.nodes.begin() + static_cast<long>(i));
    total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(),
                       spur_path->nodes.end());
    if (total.nodes == prev.nodes) continue;  // Yen's known-path mask
    total.edges.assign(prev.edges.begin(),
                       prev.edges.begin() + static_cast<long>(i));
    total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                       spur_path->edges.end());
    total.length = static_cast<double>(total.edges.size());
    const bool better =
        !best || total.length < best->length ||
        (total.length == best->length && total.nodes < best->nodes);
    if (better) best = std::move(total);
  }
  if (best) result.push_back(std::move(*best));
  return result;
}

namespace {

// `to_dst[v]` is the hop-BFS distance from v to dst (INT_MAX if farther
// than the budget): a lower bound on the remaining hops of ANY simple
// path v -> dst, so branches that cannot make it back within the budget
// are skipped. Pruned subtrees contain no emitted path, which keeps the
// discovery order — and therefore the output, the cap behavior, and the
// `truncated` flag — bit-identical to the unpruned enumeration.
void PathsDfs(const Graph& g, NodeId cur, NodeId dst, int max_hops,
              size_t max_paths, std::vector<NodeId>& nodes,
              std::vector<EdgeId>& edges, std::vector<bool>& visited,
              double length, const std::vector<int>& to_dst,
              std::vector<Path>& out) {
  if (out.size() >= max_paths) return;
  if (cur == dst) {
    Path p;
    p.nodes = nodes;
    p.edges = edges;
    p.length = length;
    out.push_back(std::move(p));
    return;
  }
  if (static_cast<int>(edges.size()) >= max_hops) return;
  const int remaining = max_hops - static_cast<int>(edges.size()) - 1;
  for (const Graph::Arc& a : g.Arcs(cur)) {
    const NodeId nxt = a.to;
    if (visited[nxt]) continue;
    if (to_dst[static_cast<size_t>(nxt)] > remaining) continue;
    visited[nxt] = true;
    nodes.push_back(nxt);
    edges.push_back(a.e);
    PathsDfs(g, nxt, dst, max_hops, max_paths, nodes, edges, visited,
             length + g.edge(a.e).weight, to_dst, out);
    edges.pop_back();
    nodes.pop_back();
    visited[nxt] = false;
  }
}

}  // namespace

std::vector<Path> PathsUpToHops(const Graph& g, NodeId src, NodeId dst,
                                int max_hops, size_t max_paths,
                                bool* truncated) {
  std::vector<Path> out;
  if (truncated) *truncated = false;
  if (src < 0 || dst < 0 || src >= g.NumNodes() || dst >= g.NumNodes()) {
    return out;
  }
  // Bounded reverse BFS from dst feeds the DFS prune. Pairs farther apart
  // than the hop budget — the common case on sparse plants, where the
  // caller falls back to the unbounded two-shortest set — exit here for
  // the cost of one BFS ball instead of exploring every simple walk.
  static thread_local std::vector<int> to_dst;
  static thread_local std::vector<NodeId> frontier;
  static thread_local std::vector<NodeId> next;
  to_dst.assign(static_cast<size_t>(g.NumNodes()), INT_MAX);
  to_dst[static_cast<size_t>(dst)] = 0;
  frontier.assign(1, dst);
  for (int level = 1; level <= max_hops && !frontier.empty(); ++level) {
    next.clear();
    for (NodeId u : frontier) {
      for (const Graph::Arc& a : g.Arcs(u)) {
        if (to_dst[static_cast<size_t>(a.to)] == INT_MAX) {
          to_dst[static_cast<size_t>(a.to)] = level;
          next.push_back(a.to);
        }
      }
    }
    frontier.swap(next);
  }
  if (to_dst[static_cast<size_t>(src)] > max_hops) return out;
  std::vector<bool> visited(g.NumNodes(), false);
  std::vector<NodeId> nodes{src};
  std::vector<EdgeId> edges;
  visited[src] = true;
  PathsDfs(g, src, dst, max_hops, max_paths, nodes, edges, visited, 0.0,
           to_dst, out);
  // Hitting the cap means the DFS may have abandoned unexplored branches;
  // the set is then a discovery-order sample rather than the full space.
  if (truncated) *truncated = out.size() >= max_paths;
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    if (a.HopCount() != b.HopCount()) return a.HopCount() < b.HopCount();
    if (a.length != b.length) return a.length < b.length;
    return a.nodes < b.nodes;
  });
  return out;
}

}  // namespace owan::net
