#ifndef OWAN_NET_DISJOINT_PATHS_H_
#define OWAN_NET_DISJOINT_PATHS_H_

#include <optional>
#include <utility>

#include "net/graph.h"
#include "net/shortest_path.h"

namespace owan::net {

// Suurballe/Bhandari: a pair of edge-disjoint paths between src and dst
// with minimum total weight, computed as two augmentations of a unit-cost
// flow (the second augmentation may traverse first-path edges backwards,
// which "untangles" into two disjoint paths).
//
// Used by the optical layer to provision 1+1 protected circuits whose
// working and backup paths share no fiber (cf. the diverse-circuit
// provisioning systems the paper builds on, Xu et al. [14]).
//
// Returns nullopt if no two edge-disjoint paths exist. The pair is ordered
// by weight (first is the shorter).
std::optional<std::pair<Path, Path>> EdgeDisjointPair(
    const Graph& g, NodeId src, NodeId dst, const EdgeFilter& filter = {});

}  // namespace owan::net

#endif  // OWAN_NET_DISJOINT_PATHS_H_
