#ifndef OWAN_NET_UNION_FIND_H_
#define OWAN_NET_UNION_FIND_H_

#include <numeric>
#include <vector>

namespace owan::net {

// Disjoint-set forest with path compression and union by size. Used by the
// topology generators to keep synthesised meshes connected.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Returns true if the two sets were merged (were previously disjoint).
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool Same(int a, int b) { return Find(a) == Find(b); }
  int SizeOf(int x) { return size_[Find(x)]; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace owan::net

#endif  // OWAN_NET_UNION_FIND_H_
