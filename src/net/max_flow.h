#ifndef OWAN_NET_MAX_FLOW_H_
#define OWAN_NET_MAX_FLOW_H_

#include <vector>

#include "net/graph.h"

namespace owan::net {

// Dinic's maximum-flow algorithm over a directed flow network.
//
// Used as a reference oracle in tests (e.g. checking that the energy
// function never exceeds the min-cut between a source and sink) and by the
// Amoeba baseline's admission check.
class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes);

  // Adds a directed arc u->v with the given capacity. Returns an arc id that
  // can be used to query flow afterwards.
  int AddArc(NodeId u, NodeId v, double capacity);

  // Adds both directions with the same capacity (an undirected link).
  void AddUndirected(NodeId u, NodeId v, double capacity);

  // Computes the max flow from s to t. Can be called repeatedly after adding
  // more arcs; flow accumulates.
  double Solve(NodeId s, NodeId t);

  // Flow currently routed on arc `arc_id` (as returned by AddArc).
  double FlowOn(int arc_id) const;

  int NumNodes() const { return static_cast<int>(adj_.size()); }

 private:
  struct Arc {
    NodeId to;
    double cap;     // residual capacity
    double orig;    // original capacity
    int rev;        // index of reverse arc in adj_[to]
  };

  bool Bfs(NodeId s, NodeId t);
  double Dfs(NodeId u, NodeId t, double pushed);

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::pair<NodeId, int>> arc_index_;  // arc id -> (node, slot)
  std::vector<int> level_;
  std::vector<size_t> iter_;
};

// Min-cut capacity between s and t treating every edge of `g` as an
// undirected link with its `capacity` field.
double MinCut(const Graph& g, NodeId s, NodeId t);

}  // namespace owan::net

#endif  // OWAN_NET_MAX_FLOW_H_
