#include "net/disjoint_paths.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

namespace owan::net {

namespace {

struct Arc {
  NodeId from;
  NodeId to;
  double cost;
  EdgeId edge;
};

}  // namespace

std::optional<std::pair<Path, Path>> EdgeDisjointPair(
    const Graph& g, NodeId src, NodeId dst, const EdgeFilter& filter) {
  if (src == dst || src < 0 || dst < 0 || src >= g.NumNodes() ||
      dst >= g.NumNodes()) {
    return std::nullopt;
  }

  // First path: plain shortest path.
  auto p1 = ShortestPath(g, src, dst, filter);
  if (!p1 || p1->edges.empty()) return std::nullopt;

  // Direction in which P1 traverses each of its edges.
  std::map<EdgeId, std::pair<NodeId, NodeId>> p1_dir;
  for (size_t i = 0; i < p1->edges.size(); ++i) {
    p1_dir[p1->edges[i]] = {p1->nodes[i], p1->nodes[i + 1]};
  }

  // Residual arcs (Bhandari's variant: P1 edges only backwards at negative
  // cost, everything else in both directions).
  std::vector<Arc> arcs;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (filter && !filter(e)) continue;
    const Edge& edge = g.edge(e);
    auto it = p1_dir.find(e);
    if (it != p1_dir.end()) {
      arcs.push_back(Arc{it->second.second, it->second.first, -edge.weight,
                         e});
    } else {
      arcs.push_back(Arc{edge.u, edge.v, edge.weight, e});
      arcs.push_back(Arc{edge.v, edge.u, edge.weight, e});
    }
  }

  // Bellman-Ford (negative arcs, no negative cycles by construction).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<size_t>(g.NumNodes()), kInf);
  std::vector<int> parent_arc(static_cast<size_t>(g.NumNodes()), -1);
  dist[static_cast<size_t>(src)] = 0.0;
  for (int round = 0; round < g.NumNodes(); ++round) {
    bool changed = false;
    for (size_t ai = 0; ai < arcs.size(); ++ai) {
      const Arc& a = arcs[ai];
      if (dist[static_cast<size_t>(a.from)] == kInf) continue;
      const double nd = dist[static_cast<size_t>(a.from)] + a.cost;
      if (nd < dist[static_cast<size_t>(a.to)] - 1e-12) {
        dist[static_cast<size_t>(a.to)] = nd;
        parent_arc[static_cast<size_t>(a.to)] = static_cast<int>(ai);
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[static_cast<size_t>(dst)] == kInf) return std::nullopt;

  // Arcs of P2 (reverse walk along parents).
  std::vector<Arc> p2_arcs;
  for (NodeId cur = dst; cur != src;) {
    const int ai = parent_arc[static_cast<size_t>(cur)];
    if (ai < 0) return std::nullopt;  // defensive
    p2_arcs.push_back(arcs[static_cast<size_t>(ai)]);
    cur = arcs[static_cast<size_t>(ai)].from;
  }

  // Combine: P1 forward arcs plus P2 arcs, cancelling opposite pairs on the
  // same edge.
  struct DirArc {
    NodeId from;
    NodeId to;
    EdgeId edge;
  };
  std::vector<DirArc> pool;
  for (size_t i = 0; i < p1->edges.size(); ++i) {
    pool.push_back(DirArc{p1->nodes[i], p1->nodes[i + 1], p1->edges[i]});
  }
  for (const Arc& a : p2_arcs) {
    // Cancellation: P2 traversing edge e backwards against P1 removes it.
    auto it = std::find_if(pool.begin(), pool.end(), [&a](const DirArc& d) {
      return d.edge == a.edge && d.from == a.to && d.to == a.from;
    });
    if (it != pool.end()) {
      pool.erase(it);
    } else {
      pool.push_back(DirArc{a.from, a.to, a.edge});
    }
  }

  // The pool now decomposes into exactly two arc-disjoint src->dst paths.
  auto extract = [&pool, &g, src, dst]() -> std::optional<Path> {
    Path p;
    p.nodes.push_back(src);
    NodeId cur = src;
    std::set<NodeId> visited{src};
    while (cur != dst) {
      auto it = std::find_if(pool.begin(), pool.end(),
                             [cur](const DirArc& d) { return d.from == cur; });
      if (it == pool.end()) return std::nullopt;
      p.edges.push_back(it->edge);
      p.length += g.edge(it->edge).weight;
      cur = it->to;
      if (visited.count(cur) && cur != dst) return std::nullopt;  // defensive
      visited.insert(cur);
      p.nodes.push_back(cur);
      pool.erase(it);
    }
    return p;
  };

  auto a = extract();
  auto b = extract();
  if (!a || !b) return std::nullopt;
  if (b->length < a->length) std::swap(*a, *b);
  return std::make_pair(std::move(*a), std::move(*b));
}

}  // namespace owan::net
