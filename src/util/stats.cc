#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace owan::util {

void Summary::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

void Summary::Merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty");
  EnsureSorted();
  return sorted_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty");
  EnsureSorted();
  return sorted_.back();
}

double Summary::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::Variance() const {
  if (samples_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return acc / static_cast<double>(samples_.size() - 1);
}

double Summary::Stddev() const { return std::sqrt(Variance()); }

double Summary::Percentile(double pct) const {
  if (samples_.empty()) throw std::logic_error("Summary::Percentile on empty");
  if (pct < 0.0) pct = 0.0;
  if (pct > 100.0) pct = 100.0;
  EnsureSorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = pct / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Summary::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  EnsureSorted();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    const size_t idx = std::min(
        sorted_.size() - 1,
        static_cast<size_t>(frac * static_cast<double>(sorted_.size())));
    out.emplace_back(sorted_[idx], frac);
  }
  return out;
}

}  // namespace owan::util
