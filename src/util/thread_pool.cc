#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace owan::util {

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping so every future is satisfied.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

// Shared between the caller and the helper tasks of one ParallelFor call;
// kept alive by shared_ptr because helpers may outlive the call (a helper
// queued behind long tasks can run after the caller already finished every
// iteration and returned).
struct ForState {
  explicit ForState(int total) : n(total) {}
  const int n;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception wins, guarded by mu
};

void RunIterations(const std::shared_ptr<ForState>& st,
                   const std::function<void(int)>& fn) {
  for (;;) {
    const int i = st->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st->n) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st->mu);
      if (!st->error) st->error = std::current_exception();
    }
    if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->n) {
      std::lock_guard<std::mutex> lock(st->mu);
      st->cv.notify_all();
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr || pool->size() == 0 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  auto st = std::make_shared<ForState>(n);
  const int helpers = pool->size() < n - 1 ? pool->size() : n - 1;
  for (int h = 0; h < helpers; ++h) {
    // Fire-and-forget: completion is tracked via st->done, never the
    // future, so a helper that starts late (or never grabs an index) is
    // harmless.
    pool->Submit([st, fn] { RunIterations(st, fn); });
  }
  RunIterations(st, fn);

  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&] {
    return st->done.load(std::memory_order_acquire) >= st->n;
  });
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace owan::util
