#ifndef OWAN_UTIL_THREAD_POOL_H_
#define OWAN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace owan::util {

// Fixed-size reusable worker pool. Constructed once (e.g. per OwanTe
// instance) and reused across many submissions — per-slot annealing must
// not pay thread spawn/join costs every five-minute reconfiguration.
//
// Submit() returns a std::future; exceptions thrown by the task propagate
// through the future. The destructor drains every task already queued
// before joining, so futures obtained from a live pool are always
// satisfied.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0) .. fn(n-1), spreading iterations over the pool's workers
// while the *calling thread also executes iterations*. Completion is
// tracked by an iteration counter, not task futures, so the call never
// blocks on queue position: if every worker is busy (including the nested
// case where ParallelFor is called from inside a pool task), the caller
// simply runs all n iterations inline. This makes nesting deadlock-free by
// construction — parallelism degrades, correctness does not.
//
// The first exception thrown by any iteration is rethrown in the caller
// after all iterations finish. With a null/empty pool or n <= 1 the loop
// runs serially inline.
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn);

}  // namespace owan::util

#endif  // OWAN_UTIL_THREAD_POOL_H_
