#ifndef OWAN_UTIL_UNITS_H_
#define OWAN_UTIL_UNITS_H_

namespace owan::util {

// The library measures data in gigabits (Gb), rates in gigabits per second
// (Gbps), time in seconds, and fiber distance in kilometers. These helpers
// exist so call sites read like the paper ("500 GB transfers", "40 Gbps
// wavelengths") without unit mistakes.

constexpr double kBitsPerByte = 8.0;

constexpr double GB(double gigabytes) { return gigabytes * kBitsPerByte; }
constexpr double TB(double terabytes) { return terabytes * 1000.0 * kBitsPerByte; }
constexpr double Gb(double gigabits) { return gigabits; }

constexpr double Gbps(double r) { return r; }

constexpr double Seconds(double s) { return s; }
constexpr double Minutes(double m) { return m * 60.0; }
constexpr double Hours(double h) { return h * 3600.0; }

constexpr double Km(double km) { return km; }

}  // namespace owan::util

#endif  // OWAN_UTIL_UNITS_H_
