#ifndef OWAN_UTIL_RNG_H_
#define OWAN_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace owan::util {

// Deterministic pseudo-random source used throughout the library.
//
// Every stochastic component (workload generation, simulated annealing,
// failure injection) takes an explicit Rng so that experiments are exactly
// reproducible from a seed and unit tests can pin behaviour.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform();
  }

  // Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  // Uniform index in [0, n).
  size_t Index(size_t n) {
    std::uniform_int_distribution<size_t> d(0, n - 1);
    return d(engine_);
  }

  // Exponential with the given mean (mean > 0).
  double Exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  // Poisson-process inter-arrival gap with the given rate (events per unit
  // time).
  double InterArrival(double rate) { return Exponential(1.0 / rate); }

  // Normal distribution.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  // Bernoulli trial.
  bool Chance(double p) { return Uniform() < p; }

  // Fork an independent stream (stable derivation from current state).
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace owan::util

#endif  // OWAN_UTIL_RNG_H_
