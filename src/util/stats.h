#ifndef OWAN_UTIL_STATS_H_
#define OWAN_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace owan::util {

// Online and batch summary statistics over a sample of doubles.
//
// Used by the simulator's metrics collection (completion times, deadline
// slack, throughput series) and by the benchmark harness to print the
// rows/series the paper reports.
class Summary {
 public:
  Summary() = default;

  void Add(double x);
  void Merge(const Summary& other);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double Variance() const;
  double Stddev() const;

  // Percentile in [0, 100]; linear interpolation between order statistics.
  double Percentile(double pct) const;
  double Median() const { return Percentile(50.0); }

  // Empirical CDF sampled at `points` evenly spaced quantiles; each entry is
  // (value, cumulative_fraction).
  std::vector<std::pair<double, double>> Cdf(size_t points = 100) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = true;
  double sum_ = 0.0;
};

}  // namespace owan::util

#endif  // OWAN_UTIL_STATS_H_
