#include "control/checkpoint_io.h"

namespace owan::control {

void WritePaths(std::ostream& os, const char* path_tag,
                const std::vector<core::PathAllocation>& paths) {
  for (const core::PathAllocation& pa : paths) {
    os << path_tag << " " << pa.rate << " " << pa.path.nodes.size();
    for (net::NodeId n : pa.path.nodes) os << " " << n;
    os << "\n";
  }
}

bool ReadPathBody(std::istream& ls, core::PathAllocation& pa) {
  size_t len = 0;
  ls >> pa.rate >> len;
  for (size_t k = 0; k < len && !ls.fail(); ++k) {
    net::NodeId n;
    ls >> n;
    pa.path.nodes.push_back(n);
  }
  return !ls.fail();
}

}  // namespace owan::control
