#include "control/controller.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "control/checkpoint_io.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"

namespace owan::control {

Controller::Controller(const topo::Wan* wan,
                       std::unique_ptr<core::TeScheme> scheme,
                       ControllerOptions options)
    : wan_(wan),
      scheme_(std::move(scheme)),
      options_(options),
      topology_(wan->default_topology),
      optical_(wan->optical) {
  if (!scheme_) throw std::invalid_argument("Controller: null scheme");
}

int Controller::Submit(net::NodeId src, net::NodeId dst,
                       double size_gigabits, double deadline) {
  if (src == dst || size_gigabits <= 0.0) {
    throw std::invalid_argument("Controller::Submit: bad request");
  }
  core::Request r;
  r.id = next_id_++;
  r.src = src;
  r.dst = dst;
  r.size = size_gigabits;
  r.arrival = now_;
  r.deadline = deadline;

  TrackedTransfer t;
  t.request = r;
  t.remaining = size_gigabits;
  transfers_.emplace(r.id, t);
  scheme_->Admit(r, now_);
  return r.id;
}

int Controller::ActiveTransfers() const {
  int n = 0;
  for (const auto& [id, t] : transfers_) {
    (void)id;
    if (!t.completed) ++n;
  }
  return n;
}

std::vector<int> Controller::ActiveIds() const {
  std::vector<int> ids;
  for (const auto& [id, t] : transfers_) {
    if (!t.completed) ids.push_back(id);
  }
  return ids;
}

std::vector<int> Controller::SparePorts() const {
  std::vector<int> spare(static_cast<size_t>(optical_.NumSites()), 0);
  for (net::NodeId v = 0; v < optical_.NumSites(); ++v) {
    spare[static_cast<size_t>(v)] =
        std::max(0, optical_.UsablePorts(v) - topology_.PortsUsed(v));
  }
  return spare;
}

void Controller::Tick() {
  // A crash hook may have left the previous slot's update in flight; an
  // in-process caller (no failover) just finishes it now.
  if (pending_update_) FinishInterruptedUpdate();

  OWAN_SPAN(tick_span, "control", "tick");
  tick_span.AddArg("now", now_);
  OWAN_COUNT("controller.ticks");
  // Build the demand set.
  core::TeInput input;
  input.topology = &topology_;
  input.optical = &optical_;
  input.slot_seconds = options_.slot_seconds;
  input.now = now_;
  const std::vector<int> ids = ActiveIds();
  for (int id : ids) {
    const TrackedTransfer& t = transfers_.at(id);
    core::TransferDemand d;
    d.id = id;
    d.src = t.request.src;
    d.dst = t.request.dst;
    d.remaining = t.remaining;
    d.rate_cap = t.remaining / options_.slot_seconds;
    d.deadline = t.request.deadline;
    d.slots_waited = t.slots_waited;
    input.demands.push_back(d);
  }

  core::TeOutput output;
  {
    OWAN_SPAN(compute_span, "control", "compute");
    compute_span.AddArg("demands", static_cast<double>(input.demands.size()));
    output = scheme_->Compute(input);
  }

  // Plan and execute the cross-layer update.
  std::set<std::pair<net::NodeId, net::NodeId>> changed;
  if (output.new_topology && !(*output.new_topology == topology_)) {
    OWAN_SPAN(plan_span, "control", "update.plan");
    last_plan_ = update::BuildUpdatePlan(topology_, *output.new_topology,
                                         last_allocations_,
                                         output.allocations,
                                         options_.durations);
    plan_span.AddArg("ops", static_cast<double>(last_plan_.ops.size()));
    if (options_.execute_updates) {
      update::ExecutorInput ein;
      ein.from = topology_;
      ein.plan = last_plan_;
      ein.old_routes = last_allocations_;
      ein.new_routes = output.allocations;
      ein.spare_ports = SparePorts();
      update::UpdateExecutor ex(std::move(ein), options_.exec);
      const int cap = options_.crash_after_wal_records;
      while (!ex.done() &&
             (cap < 0 || static_cast<int>(ex.log().records.size()) < cap)) {
        ex.Step();
      }
      if (!ex.done()) {
        // "Crash": the slot stops mid-update. topology_, transfers and the
        // clock keep their pre-update values; only the WAL (and the inputs
        // needed to rebuild the executor) survive into the checkpoint.
        pending_update_ = true;
        pending_target_ = *output.new_topology;
        pending_old_routes_ = last_allocations_;
        pending_new_routes_ = output.allocations;
        pending_wal_ = ex.log();
        return;
      }
      ApplyExecResult(ex.Finish(), ids);
      return;
    }
    last_schedule_ = update::ScheduleConsistent(last_plan_);
    plan_span.AddArg("makespan_s", last_schedule_.makespan);
    auto [add, remove] = output.new_topology->Diff(topology_);
    auto key = [](net::NodeId a, net::NodeId b) {
      return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    };
    for (const core::Link& l : add) changed.insert(key(l.u, l.v));
    for (const core::Link& l : remove) changed.insert(key(l.u, l.v));
    topology_ = *output.new_topology;
  } else {
    last_plan_ = {};
    last_schedule_ = {};
    last_exec_ = {};
  }
  last_allocations_ = output.allocations;
  ProgressAndAdvance(ids, output.allocations, changed,
                     last_schedule_.makespan);
}

void Controller::ApplyExecResult(update::ExecResult res,
                                 const std::vector<int>& ids) {
  last_schedule_ = res.schedule;
  std::set<std::pair<net::NodeId, net::NodeId>> changed;
  if (res.outcome == update::ExecOutcome::kConverged) {
    auto key = [](net::NodeId a, net::NodeId b) {
      return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    };
    auto [add, remove] = res.final_topology.Diff(topology_);
    for (const core::Link& l : add) changed.insert(key(l.u, l.v));
    for (const core::Link& l : remove) changed.insert(key(l.u, l.v));
    topology_ = res.final_topology;
    last_allocations_ = res.final_routes;
    last_exec_ = std::move(res);
    // final_routes is positional with the slot's new allocations (one
    // entry per transfer the TE scheme allocated, rates as realized).
    ProgressAndAdvance(ids, last_allocations_, changed,
                       last_exec_.makespan);
    return;
  }
  // Aborted: the plant is back to the pre-update state; transfers keep
  // last slot's routes (matched by id — the old allocation vector indexes
  // a previous, possibly different, transfer set).
  OWAN_COUNT("controller.update_aborts");
  std::vector<core::TransferAllocation> by_id(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    by_id[i].id = ids[i];
    for (const core::TransferAllocation& a : res.final_routes) {
      if (a.id == ids[i]) {
        by_id[i] = a;
        break;
      }
    }
  }
  last_allocations_ = res.final_routes;
  last_exec_ = std::move(res);
  ProgressAndAdvance(ids, by_id, changed, 0.0);
}

void Controller::FinishInterruptedUpdate() {
  pending_update_ = false;
  // The plan is a pure function of checkpointed state; the executor then
  // replays the persisted WAL and finishes the run — bit-identical to the
  // execution the crash interrupted.
  last_plan_ =
      update::BuildUpdatePlan(topology_, pending_target_, pending_old_routes_,
                              pending_new_routes_, options_.durations);
  update::ExecutorInput ein;
  ein.from = topology_;
  ein.plan = last_plan_;
  ein.old_routes = pending_old_routes_;
  ein.new_routes = pending_new_routes_;
  ein.spare_ports = SparePorts();
  update::UpdateExecutor ex(std::move(ein), options_.exec);
  ex.Replay(pending_wal_);
  OWAN_COUNT("controller.update_recoveries");
  ApplyExecResult(ex.Finish(), ActiveIds());
  pending_target_ = {};
  pending_old_routes_.clear();
  pending_new_routes_.clear();
  pending_wal_ = {};
}

void Controller::ProgressAndAdvance(
    const std::vector<int>& ids,
    const std::vector<core::TransferAllocation>& allocations,
    const std::set<std::pair<net::NodeId, net::NodeId>>& changed,
    double update_makespan) {
  // Progress transfers. Transfers whose paths cross a reconfigured link
  // start transmitting after the update makespan (consistent updates are
  // hitless for everyone else — Fig. 10b).
  const double update_cost =
      options_.hitless_updates ? 0.0 : update_makespan;
  for (size_t i = 0; i < ids.size(); ++i) {
    TrackedTransfer& t = transfers_[ids[i]];
    const core::TransferAllocation& alloc =
        i < allocations.size() ? allocations[i]
                               : core::TransferAllocation{};
    const double rate = alloc.TotalRate();
    bool crosses_changed = false;
    for (const core::PathAllocation& pa : alloc.paths) {
      for (size_t k = 0; k + 1 < pa.path.nodes.size(); ++k) {
        auto lk = pa.path.nodes[k] < pa.path.nodes[k + 1]
                      ? std::make_pair(pa.path.nodes[k], pa.path.nodes[k + 1])
                      : std::make_pair(pa.path.nodes[k + 1],
                                       pa.path.nodes[k]);
        if (changed.count(lk)) {
          crosses_changed = true;
          break;
        }
      }
      if (crosses_changed) break;
    }
    const double penalty = crosses_changed ? update_cost : 0.0;
    const double eff_seconds =
        std::max(0.0, options_.slot_seconds - penalty);
    const double delivered = std::min(t.remaining, rate * eff_seconds);
    const bool finishes =
        rate > 0.0 &&
        (t.remaining - delivered <= 1e-3 ||
         penalty + t.remaining / rate <= options_.slot_seconds + 1e-9);
    if (finishes) {
      t.completed = true;
      t.completed_at =
          now_ + std::min(options_.slot_seconds,
                          penalty + t.remaining / rate);
      t.remaining = 0.0;
      t.slots_waited = 0;
    } else {
      t.remaining -= delivered;
      t.slots_waited = delivered > 1e-9 ? 0 : t.slots_waited + 1;
    }
  }

  now_ += options_.slot_seconds;
}

std::string Controller::Checkpoint() const {
  // Line-oriented text snapshot: clock, topology links, transfers, plant
  // failure state. max_digits10 precision so restored doubles are
  // bit-identical — failover equivalence depends on it.
  std::ostringstream os;
  os.precision(17);
  // v3 only when an update is actually in flight: idle snapshots keep the
  // v2 header so pre-executor readers (and pinned tests) still work. v5
  // (fiber-degraded lines present) is likewise emitted only when some
  // fiber actually carries extra attenuation — an undegraded plant
  // round-trips through the very bytes older readers understand.
  if (optical_.AnyFiberDegraded()) {
    os << "owan-checkpoint v5\n";
  } else {
    os << (pending_update_ ? "owan-checkpoint v3\n" : "owan-checkpoint v2\n");
  }
  os << "now " << now_ << "\n";
  os << "next_id " << next_id_ << "\n";
  os << "topology " << topology_.NumSites() << "\n";
  for (const core::Link& l : topology_.Links()) {
    os << "link " << l.u << " " << l.v << " " << l.units << "\n";
  }
  for (const auto& [id, t] : transfers_) {
    os << "transfer " << id << " " << t.request.src << " " << t.request.dst
       << " " << t.request.size << " " << t.request.arrival << " "
       << t.request.deadline << " " << t.remaining << " " << t.completed
       << " " << t.completed_at << " " << t.slots_waited << "\n";
  }
  for (net::EdgeId e = 0; e < optical_.NumFibers(); ++e) {
    if (optical_.FiberCut(e)) os << "fiber-failed " << e << "\n";
  }
  for (net::EdgeId e = 0; e < optical_.NumFibers(); ++e) {
    if (optical_.FiberDegradationDb(e) > 0.0) {
      os << "fiber-degraded " << e << " " << optical_.FiberDegradationDb(e)
         << "\n";
    }
  }
  for (net::NodeId v = 0; v < optical_.NumSites(); ++v) {
    if (optical_.SiteFailed(v)) os << "site-failed " << v << "\n";
    if (optical_.FailedPorts(v) > 0) {
      os << "ports-failed " << v << " " << optical_.FailedPorts(v) << "\n";
    }
    if (optical_.FailedRegens(v) > 0) {
      os << "regens-failed " << v << " " << optical_.FailedRegens(v) << "\n";
    }
  }
  if (pending_update_) {
    // The interrupted update: target topology, the route sets the plan was
    // built from, and the write-ahead intent log. Everything else the
    // executor needs is a pure function of these plus the v2 body.
    os << "update-pending\n";
    os << "update-target " << pending_target_.NumSites() << "\n";
    for (const core::Link& l : pending_target_.Links()) {
      os << "utlink " << l.u << " " << l.v << " " << l.units << "\n";
    }
    auto emit_routes = [&os](const char* side,
                             const std::vector<core::TransferAllocation>& rs) {
      for (const core::TransferAllocation& a : rs) {
        os << "uroute " << side << " " << a.id << "\n";
        WritePaths(os, "upath", a.paths);
      }
    };
    emit_routes("old", pending_old_routes_);
    emit_routes("new", pending_new_routes_);
    for (const update::IntentRecord& r : pending_wal_.records) {
      os << "uwal " << update::IntentLog::RecordToString(r) << "\n";
    }
  }
  return os.str();
}

Controller Controller::Restore(const topo::Wan* wan,
                               std::unique_ptr<core::TeScheme> scheme,
                               const std::string& checkpoint,
                               ControllerOptions options) {
  Controller c(wan, std::move(scheme), options);
  std::istringstream is(checkpoint);
  std::string line;
  if (!std::getline(is, line) ||
      (line != "owan-checkpoint v1" && line != "owan-checkpoint v2" &&
       line != "owan-checkpoint v3" && line != "owan-checkpoint v5")) {
    throw std::invalid_argument("Controller::Restore: bad checkpoint header");
  }
  core::Topology topo;
  // Route list currently being filled by uroute/upath lines (v3 only).
  std::vector<core::TransferAllocation>* uroutes = nullptr;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "now") {
      ls >> c.now_;
    } else if (tag == "next_id") {
      ls >> c.next_id_;
    } else if (tag == "topology") {
      int n = 0;
      ls >> n;
      topo = core::Topology(n);
    } else if (tag == "link") {
      int u, v, units;
      ls >> u >> v >> units;
      topo.AddUnits(u, v, units);
    } else if (tag == "transfer") {
      TrackedTransfer t;
      int id;
      ls >> id >> t.request.src >> t.request.dst >> t.request.size >>
          t.request.arrival >> t.request.deadline >> t.remaining >>
          t.completed >> t.completed_at >> t.slots_waited;
      t.request.id = id;
      c.transfers_.emplace(id, t);
    } else if (tag == "fiber-failed") {
      net::EdgeId e;
      ls >> e;
      if (!ls.fail()) c.optical_.FailFiber(e);
    } else if (tag == "fiber-degraded") {
      net::EdgeId e;
      double db = 0.0;
      ls >> e >> db;
      if (!ls.fail()) c.optical_.DegradeFiber(e, db);
    } else if (tag == "site-failed") {
      net::NodeId v;
      ls >> v;
      if (!ls.fail()) c.optical_.FailSite(v);
    } else if (tag == "ports-failed") {
      net::NodeId v;
      int k;
      ls >> v >> k;
      if (!ls.fail()) c.optical_.FailPorts(v, k);
    } else if (tag == "regens-failed") {
      net::NodeId v;
      int k;
      ls >> v >> k;
      if (!ls.fail()) c.optical_.FailRegens(v, k);
    } else if (tag == "update-pending") {
      c.pending_update_ = true;
    } else if (tag == "update-target") {
      int n = 0;
      ls >> n;
      if (!ls.fail()) c.pending_target_ = core::Topology(n);
    } else if (tag == "utlink") {
      int u, v, units;
      ls >> u >> v >> units;
      if (!ls.fail()) c.pending_target_.AddUnits(u, v, units);
    } else if (tag == "uroute") {
      std::string side;
      int id = -1;
      ls >> side >> id;
      if (!ls.fail()) {
        uroutes = side == "old" ? &c.pending_old_routes_
                                : &c.pending_new_routes_;
        core::TransferAllocation a;
        a.id = id;
        uroutes->push_back(a);
      }
    } else if (tag == "upath") {
      if (!uroutes || uroutes->empty()) {
        throw std::invalid_argument(
            "Controller::Restore: upath before uroute");
      }
      core::PathAllocation pa;
      if (ReadPathBody(ls, pa)) uroutes->back().paths.push_back(std::move(pa));
    } else if (tag == "uwal") {
      std::string rest;
      std::getline(ls, rest);
      c.pending_wal_.records.push_back(
          update::IntentLog::RecordFromString(rest));
    }
    if (ls.fail()) {
      throw std::invalid_argument("Controller::Restore: corrupt line: " +
                                  line);
    }
  }
  if (topo.NumSites() > 0) c.topology_ = topo;
  // Finish the interrupted update now: the restored standby completes the
  // crashed slot before accepting new work, so it is indistinguishable
  // from a controller that never crashed.
  if (c.pending_update_) c.FinishInterruptedUpdate();
  return c;
}

void Controller::ReactToPlantChange() {
  // Re-realise the current topology over the surviving plant: circuits
  // whose resources died are re-provisioned along alternate routes where
  // the optical layer allows; units with no feasible alternate circuit
  // drop out, and their (surviving) router ports get re-paired into
  // whatever feasible links remain — possibly different neighbors (§3.4).
  topology_ =
      fault::RecomputeTopology(topology_, optical_, /*repair_dark_ports=*/true);
}

void Controller::ReportFiberFailure(net::EdgeId fiber) {
  optical_.FailFiber(fiber);
  ReactToPlantChange();
}

void Controller::ReportFiberRepair(net::EdgeId fiber) {
  optical_.RestoreFiber(fiber);
  ReactToPlantChange();
}

void Controller::ReportSiteFailure(net::NodeId site) {
  optical_.FailSite(site);
  ReactToPlantChange();
}

void Controller::ReportSiteRepair(net::NodeId site) {
  optical_.RestoreSite(site);
  ReactToPlantChange();
}

void Controller::ReportTransceiverFailure(net::NodeId site, int ports,
                                          int regens) {
  optical_.FailPorts(site, ports);
  optical_.FailRegens(site, regens);
  ReactToPlantChange();
}

void Controller::ReportTransceiverRepair(net::NodeId site, int ports,
                                         int regens) {
  optical_.RestorePorts(site, ports);
  optical_.RestoreRegens(site, regens);
  ReactToPlantChange();
}

void Controller::ReportSpanDegradation(net::EdgeId fiber, double db) {
  const bool changed = optical_.FiberDegradationDb(fiber) != db;
  optical_.DegradeFiber(fiber, db);
  if (changed && optical_.qot().enabled) ReactToPlantChange();
}

void Controller::ReportSpanRepair(net::EdgeId fiber) {
  if (optical_.RepairFiberDegradation(fiber) && optical_.qot().enabled) {
    ReactToPlantChange();
  }
}

}  // namespace owan::control
