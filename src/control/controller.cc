#include "control/controller.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fault/fault_injector.h"
#include "obs/obs.h"

namespace owan::control {

Controller::Controller(const topo::Wan* wan,
                       std::unique_ptr<core::TeScheme> scheme,
                       ControllerOptions options)
    : wan_(wan),
      scheme_(std::move(scheme)),
      options_(options),
      topology_(wan->default_topology),
      optical_(wan->optical) {
  if (!scheme_) throw std::invalid_argument("Controller: null scheme");
}

int Controller::Submit(net::NodeId src, net::NodeId dst,
                       double size_gigabits, double deadline) {
  if (src == dst || size_gigabits <= 0.0) {
    throw std::invalid_argument("Controller::Submit: bad request");
  }
  core::Request r;
  r.id = next_id_++;
  r.src = src;
  r.dst = dst;
  r.size = size_gigabits;
  r.arrival = now_;
  r.deadline = deadline;

  TrackedTransfer t;
  t.request = r;
  t.remaining = size_gigabits;
  transfers_.emplace(r.id, t);
  scheme_->Admit(r, now_);
  return r.id;
}

int Controller::ActiveTransfers() const {
  int n = 0;
  for (const auto& [id, t] : transfers_) {
    (void)id;
    if (!t.completed) ++n;
  }
  return n;
}

void Controller::Tick() {
  OWAN_SPAN(tick_span, "control", "tick");
  tick_span.AddArg("now", now_);
  OWAN_COUNT("controller.ticks");
  // Build the demand set.
  core::TeInput input;
  input.topology = &topology_;
  input.optical = &optical_;
  input.slot_seconds = options_.slot_seconds;
  input.now = now_;
  std::vector<int> ids;
  for (const auto& [id, t] : transfers_) {
    if (t.completed) continue;
    core::TransferDemand d;
    d.id = id;
    d.src = t.request.src;
    d.dst = t.request.dst;
    d.remaining = t.remaining;
    d.rate_cap = t.remaining / options_.slot_seconds;
    d.deadline = t.request.deadline;
    d.slots_waited = t.slots_waited;
    input.demands.push_back(d);
    ids.push_back(id);
  }

  core::TeOutput output;
  {
    OWAN_SPAN(compute_span, "control", "compute");
    compute_span.AddArg("demands", static_cast<double>(input.demands.size()));
    output = scheme_->Compute(input);
  }

  // Plan and "execute" the cross-layer update.
  std::set<std::pair<net::NodeId, net::NodeId>> changed;
  if (output.new_topology && !(*output.new_topology == topology_)) {
    OWAN_SPAN(plan_span, "control", "update.plan");
    last_plan_ = update::BuildUpdatePlan(topology_, *output.new_topology,
                                         last_allocations_,
                                         output.allocations,
                                         options_.durations);
    last_schedule_ = update::ScheduleConsistent(last_plan_);
    plan_span.AddArg("ops", static_cast<double>(last_plan_.ops.size()));
    plan_span.AddArg("makespan_s", last_schedule_.makespan);
    auto [add, remove] = output.new_topology->Diff(topology_);
    auto key = [](net::NodeId a, net::NodeId b) {
      return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    };
    for (const core::Link& l : add) changed.insert(key(l.u, l.v));
    for (const core::Link& l : remove) changed.insert(key(l.u, l.v));
    topology_ = *output.new_topology;
  } else {
    last_plan_ = {};
    last_schedule_ = {};
  }
  last_allocations_ = output.allocations;

  // Progress transfers. Transfers whose paths cross a reconfigured link
  // start transmitting after the update makespan (consistent updates are
  // hitless for everyone else — Fig. 10b).
  const double update_cost =
      options_.hitless_updates ? 0.0 : last_schedule_.makespan;
  for (size_t i = 0; i < ids.size(); ++i) {
    TrackedTransfer& t = transfers_[ids[i]];
    const core::TransferAllocation& alloc =
        i < output.allocations.size() ? output.allocations[i]
                                      : core::TransferAllocation{};
    const double rate = alloc.TotalRate();
    bool crosses_changed = false;
    for (const core::PathAllocation& pa : alloc.paths) {
      for (size_t k = 0; k + 1 < pa.path.nodes.size(); ++k) {
        auto lk = pa.path.nodes[k] < pa.path.nodes[k + 1]
                      ? std::make_pair(pa.path.nodes[k], pa.path.nodes[k + 1])
                      : std::make_pair(pa.path.nodes[k + 1],
                                       pa.path.nodes[k]);
        if (changed.count(lk)) {
          crosses_changed = true;
          break;
        }
      }
      if (crosses_changed) break;
    }
    const double penalty = crosses_changed ? update_cost : 0.0;
    const double eff_seconds =
        std::max(0.0, options_.slot_seconds - penalty);
    const double delivered = std::min(t.remaining, rate * eff_seconds);
    const bool finishes =
        rate > 0.0 &&
        (t.remaining - delivered <= 1e-3 ||
         penalty + t.remaining / rate <= options_.slot_seconds + 1e-9);
    if (finishes) {
      t.completed = true;
      t.completed_at =
          now_ + std::min(options_.slot_seconds,
                          penalty + t.remaining / rate);
      t.remaining = 0.0;
      t.slots_waited = 0;
    } else {
      t.remaining -= delivered;
      t.slots_waited = delivered > 1e-9 ? 0 : t.slots_waited + 1;
    }
  }

  now_ += options_.slot_seconds;
}

std::string Controller::Checkpoint() const {
  // Line-oriented text snapshot: clock, topology links, transfers, plant
  // failure state. max_digits10 precision so restored doubles are
  // bit-identical — failover equivalence depends on it.
  std::ostringstream os;
  os.precision(17);
  os << "owan-checkpoint v2\n";
  os << "now " << now_ << "\n";
  os << "next_id " << next_id_ << "\n";
  os << "topology " << topology_.NumSites() << "\n";
  for (const core::Link& l : topology_.Links()) {
    os << "link " << l.u << " " << l.v << " " << l.units << "\n";
  }
  for (const auto& [id, t] : transfers_) {
    os << "transfer " << id << " " << t.request.src << " " << t.request.dst
       << " " << t.request.size << " " << t.request.arrival << " "
       << t.request.deadline << " " << t.remaining << " " << t.completed
       << " " << t.completed_at << " " << t.slots_waited << "\n";
  }
  for (net::EdgeId e = 0; e < optical_.NumFibers(); ++e) {
    if (optical_.FiberCut(e)) os << "fiber-failed " << e << "\n";
  }
  for (net::NodeId v = 0; v < optical_.NumSites(); ++v) {
    if (optical_.SiteFailed(v)) os << "site-failed " << v << "\n";
    if (optical_.FailedPorts(v) > 0) {
      os << "ports-failed " << v << " " << optical_.FailedPorts(v) << "\n";
    }
    if (optical_.FailedRegens(v) > 0) {
      os << "regens-failed " << v << " " << optical_.FailedRegens(v) << "\n";
    }
  }
  return os.str();
}

Controller Controller::Restore(const topo::Wan* wan,
                               std::unique_ptr<core::TeScheme> scheme,
                               const std::string& checkpoint,
                               ControllerOptions options) {
  Controller c(wan, std::move(scheme), options);
  std::istringstream is(checkpoint);
  std::string line;
  if (!std::getline(is, line) ||
      (line != "owan-checkpoint v1" && line != "owan-checkpoint v2")) {
    throw std::invalid_argument("Controller::Restore: bad checkpoint header");
  }
  core::Topology topo;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "now") {
      ls >> c.now_;
    } else if (tag == "next_id") {
      ls >> c.next_id_;
    } else if (tag == "topology") {
      int n = 0;
      ls >> n;
      topo = core::Topology(n);
    } else if (tag == "link") {
      int u, v, units;
      ls >> u >> v >> units;
      topo.AddUnits(u, v, units);
    } else if (tag == "transfer") {
      TrackedTransfer t;
      int id;
      ls >> id >> t.request.src >> t.request.dst >> t.request.size >>
          t.request.arrival >> t.request.deadline >> t.remaining >>
          t.completed >> t.completed_at >> t.slots_waited;
      t.request.id = id;
      c.transfers_.emplace(id, t);
    } else if (tag == "fiber-failed") {
      net::EdgeId e;
      ls >> e;
      if (!ls.fail()) c.optical_.FailFiber(e);
    } else if (tag == "site-failed") {
      net::NodeId v;
      ls >> v;
      if (!ls.fail()) c.optical_.FailSite(v);
    } else if (tag == "ports-failed") {
      net::NodeId v;
      int k;
      ls >> v >> k;
      if (!ls.fail()) c.optical_.FailPorts(v, k);
    } else if (tag == "regens-failed") {
      net::NodeId v;
      int k;
      ls >> v >> k;
      if (!ls.fail()) c.optical_.FailRegens(v, k);
    }
    if (ls.fail()) {
      throw std::invalid_argument("Controller::Restore: corrupt line: " +
                                  line);
    }
  }
  if (topo.NumSites() > 0) c.topology_ = topo;
  return c;
}

void Controller::ReactToPlantChange() {
  // Re-realise the current topology over the surviving plant: circuits
  // whose resources died are re-provisioned along alternate routes where
  // the optical layer allows; units with no feasible alternate circuit
  // drop out, and their (surviving) router ports get re-paired into
  // whatever feasible links remain — possibly different neighbors (§3.4).
  topology_ =
      fault::RecomputeTopology(topology_, optical_, /*repair_dark_ports=*/true);
}

void Controller::ReportFiberFailure(net::EdgeId fiber) {
  optical_.FailFiber(fiber);
  ReactToPlantChange();
}

void Controller::ReportFiberRepair(net::EdgeId fiber) {
  optical_.RestoreFiber(fiber);
  ReactToPlantChange();
}

void Controller::ReportSiteFailure(net::NodeId site) {
  optical_.FailSite(site);
  ReactToPlantChange();
}

void Controller::ReportSiteRepair(net::NodeId site) {
  optical_.RestoreSite(site);
  ReactToPlantChange();
}

void Controller::ReportTransceiverFailure(net::NodeId site, int ports,
                                          int regens) {
  optical_.FailPorts(site, ports);
  optical_.FailRegens(site, regens);
  ReactToPlantChange();
}

void Controller::ReportTransceiverRepair(net::NodeId site, int ports,
                                         int regens) {
  optical_.RestorePorts(site, ports);
  optical_.RestoreRegens(site, regens);
  ReactToPlantChange();
}

}  // namespace owan::control
