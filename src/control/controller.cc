#include "control/controller.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/provisioned_state.h"
#include "core/repair.h"

namespace owan::control {

Controller::Controller(const topo::Wan* wan,
                       std::unique_ptr<core::TeScheme> scheme,
                       ControllerOptions options)
    : wan_(wan),
      scheme_(std::move(scheme)),
      options_(options),
      topology_(wan->default_topology),
      optical_(wan->optical) {
  if (!scheme_) throw std::invalid_argument("Controller: null scheme");
}

int Controller::Submit(net::NodeId src, net::NodeId dst,
                       double size_gigabits, double deadline) {
  if (src == dst || size_gigabits <= 0.0) {
    throw std::invalid_argument("Controller::Submit: bad request");
  }
  core::Request r;
  r.id = next_id_++;
  r.src = src;
  r.dst = dst;
  r.size = size_gigabits;
  r.arrival = now_;
  r.deadline = deadline;

  TrackedTransfer t;
  t.request = r;
  t.remaining = size_gigabits;
  transfers_.emplace(r.id, t);
  scheme_->Admit(r, now_);
  return r.id;
}

int Controller::ActiveTransfers() const {
  int n = 0;
  for (const auto& [id, t] : transfers_) {
    (void)id;
    if (!t.completed) ++n;
  }
  return n;
}

void Controller::Tick() {
  // Build the demand set.
  core::TeInput input;
  input.topology = &topology_;
  input.optical = &optical_;
  input.slot_seconds = options_.slot_seconds;
  input.now = now_;
  std::vector<int> ids;
  for (const auto& [id, t] : transfers_) {
    if (t.completed) continue;
    core::TransferDemand d;
    d.id = id;
    d.src = t.request.src;
    d.dst = t.request.dst;
    d.remaining = t.remaining;
    d.rate_cap = t.remaining / options_.slot_seconds;
    d.deadline = t.request.deadline;
    d.slots_waited = t.slots_waited;
    input.demands.push_back(d);
    ids.push_back(id);
  }

  core::TeOutput output = scheme_->Compute(input);

  // Plan and "execute" the cross-layer update.
  std::set<std::pair<net::NodeId, net::NodeId>> changed;
  if (output.new_topology && !(*output.new_topology == topology_)) {
    last_plan_ = update::BuildUpdatePlan(topology_, *output.new_topology,
                                         last_allocations_,
                                         output.allocations,
                                         options_.durations);
    last_schedule_ = update::ScheduleConsistent(last_plan_);
    auto [add, remove] = output.new_topology->Diff(topology_);
    auto key = [](net::NodeId a, net::NodeId b) {
      return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    };
    for (const core::Link& l : add) changed.insert(key(l.u, l.v));
    for (const core::Link& l : remove) changed.insert(key(l.u, l.v));
    topology_ = *output.new_topology;
  } else {
    last_plan_ = {};
    last_schedule_ = {};
  }
  last_allocations_ = output.allocations;

  // Progress transfers. Transfers whose paths cross a reconfigured link
  // start transmitting after the update makespan (consistent updates are
  // hitless for everyone else — Fig. 10b).
  const double update_cost =
      options_.hitless_updates ? 0.0 : last_schedule_.makespan;
  for (size_t i = 0; i < ids.size(); ++i) {
    TrackedTransfer& t = transfers_[ids[i]];
    const core::TransferAllocation& alloc =
        i < output.allocations.size() ? output.allocations[i]
                                      : core::TransferAllocation{};
    const double rate = alloc.TotalRate();
    bool crosses_changed = false;
    for (const core::PathAllocation& pa : alloc.paths) {
      for (size_t k = 0; k + 1 < pa.path.nodes.size(); ++k) {
        auto lk = pa.path.nodes[k] < pa.path.nodes[k + 1]
                      ? std::make_pair(pa.path.nodes[k], pa.path.nodes[k + 1])
                      : std::make_pair(pa.path.nodes[k + 1],
                                       pa.path.nodes[k]);
        if (changed.count(lk)) {
          crosses_changed = true;
          break;
        }
      }
      if (crosses_changed) break;
    }
    const double penalty = crosses_changed ? update_cost : 0.0;
    const double eff_seconds =
        std::max(0.0, options_.slot_seconds - penalty);
    const double delivered = std::min(t.remaining, rate * eff_seconds);
    const bool finishes =
        rate > 0.0 &&
        (t.remaining - delivered <= 1e-3 ||
         penalty + t.remaining / rate <= options_.slot_seconds + 1e-9);
    if (finishes) {
      t.completed = true;
      t.completed_at =
          now_ + std::min(options_.slot_seconds,
                          penalty + t.remaining / rate);
      t.remaining = 0.0;
      t.slots_waited = 0;
    } else {
      t.remaining -= delivered;
      t.slots_waited = delivered > 1e-9 ? 0 : t.slots_waited + 1;
    }
  }

  now_ += options_.slot_seconds;
}

std::string Controller::Checkpoint() const {
  // Line-oriented text snapshot: clock, topology links, transfers.
  std::ostringstream os;
  os << "owan-checkpoint v1\n";
  os << "now " << now_ << "\n";
  os << "next_id " << next_id_ << "\n";
  os << "topology " << topology_.NumSites() << "\n";
  for (const core::Link& l : topology_.Links()) {
    os << "link " << l.u << " " << l.v << " " << l.units << "\n";
  }
  for (const auto& [id, t] : transfers_) {
    os << "transfer " << id << " " << t.request.src << " " << t.request.dst
       << " " << t.request.size << " " << t.request.arrival << " "
       << t.request.deadline << " " << t.remaining << " " << t.completed
       << " " << t.completed_at << " " << t.slots_waited << "\n";
  }
  return os.str();
}

Controller Controller::Restore(const topo::Wan* wan,
                               std::unique_ptr<core::TeScheme> scheme,
                               const std::string& checkpoint,
                               ControllerOptions options) {
  Controller c(wan, std::move(scheme), options);
  std::istringstream is(checkpoint);
  std::string line;
  if (!std::getline(is, line) || line != "owan-checkpoint v1") {
    throw std::invalid_argument("Controller::Restore: bad checkpoint header");
  }
  core::Topology topo;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "now") {
      ls >> c.now_;
    } else if (tag == "next_id") {
      ls >> c.next_id_;
    } else if (tag == "topology") {
      int n = 0;
      ls >> n;
      topo = core::Topology(n);
    } else if (tag == "link") {
      int u, v, units;
      ls >> u >> v >> units;
      topo.AddUnits(u, v, units);
    } else if (tag == "transfer") {
      TrackedTransfer t;
      int id;
      ls >> id >> t.request.src >> t.request.dst >> t.request.size >>
          t.request.arrival >> t.request.deadline >> t.remaining >>
          t.completed >> t.completed_at >> t.slots_waited;
      t.request.id = id;
      c.transfers_.emplace(id, t);
    }
    if (ls.fail()) {
      throw std::invalid_argument("Controller::Restore: corrupt line: " +
                                  line);
    }
  }
  if (topo.NumSites() > 0) c.topology_ = topo;
  return c;
}

void Controller::ReportFiberFailure(net::EdgeId fiber) {
  // Fail the fiber in the plant view, then try to realise the current
  // topology over the surviving fibers: circuits whose fiber path died are
  // re-provisioned along alternate routes where the optical layer allows.
  // Only units with no feasible alternate circuit drop out of the topology
  // (their router ports stay dark until the fiber is repaired).
  optical_.FailFiber(fiber);
  core::ProvisionedState state(optical_);
  state.SyncTo(topology_);
  // Units that could not re-route leave router ports dark; re-pair them
  // into whatever feasible links remain (possibly different neighbors).
  std::vector<int> ports;
  ports.reserve(static_cast<size_t>(optical_.NumSites()));
  for (int v = 0; v < optical_.NumSites(); ++v) {
    ports.push_back(optical_.site(v).router_ports);
  }
  topology_ = core::RepairDarkPorts(state.realized(), optical_, ports);
}

}  // namespace owan::control
