#ifndef OWAN_CONTROL_CONTROLLER_H_
#define OWAN_CONTROL_CONTROLLER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/te_scheme.h"
#include "core/topology.h"
#include "topo/topologies.h"
#include "update/scheduler.h"

namespace owan::control {

struct ControllerOptions {
  double slot_seconds = 300.0;
  update::UpdateDurations durations;
  // Consistent staged updates keep traffic flowing (Fig. 10b), so by
  // default the update makespan does not eat into transfers' slots. Set
  // false to charge transfers crossing reconfigured links the makespan
  // (one-shot-style disruption).
  bool hitless_updates = true;
};

// State of one transfer as tracked by the controller.
struct TrackedTransfer {
  core::Request request;
  double remaining = 0.0;
  bool completed = false;
  double completed_at = -1.0;
  int slots_waited = 0;
};

// The centralized Owan controller (§3.1): accepts transfer requests,
// invokes the TE scheme each time slot, turns topology deltas into a
// consistent cross-layer update schedule, and feeds rate allocations back
// to clients. All scheduling state needed to survive a failover is
// serializable through Checkpoint()/Restore() (§3.4: the algorithm itself
// is stateless, so topology + transfers suffice).
class Controller {
 public:
  Controller(const topo::Wan* wan, std::unique_ptr<core::TeScheme> scheme,
             ControllerOptions options = {});

  // Submits a request; returns its id.
  int Submit(net::NodeId src, net::NodeId dst, double size_gigabits,
             double deadline = core::kNoDeadline);

  // Runs one time slot: compute state -> schedule updates -> progress
  // transfers by their allocated rates.
  void Tick();

  double now() const { return now_; }
  const core::Topology& topology() const { return topology_; }
  const std::vector<core::TransferAllocation>& last_allocations() const {
    return last_allocations_;
  }
  const update::Schedule& last_update_schedule() const {
    return last_schedule_;
  }
  const update::UpdatePlan& last_update_plan() const { return last_plan_; }

  const std::map<int, TrackedTransfer>& transfers() const {
    return transfers_;
  }
  int ActiveTransfers() const;

  // ---- failover (§3.4) ----
  // Writes "owan-checkpoint v2": clock, topology, transfers, and the plant
  // failure state (cut fibers, down sites, failed ports/regens), so a
  // standby restored mid-incident sees the same degraded plant.
  std::string Checkpoint() const;
  // Rebuilds a controller from a checkpoint (v1 or v2); the new instance
  // resumes at the next time slot with the stored topology, transfer set,
  // and failure flags.
  static Controller Restore(const topo::Wan* wan,
                            std::unique_ptr<core::TeScheme> scheme,
                            const std::string& checkpoint,
                            ControllerOptions options = {});

  // ---- failure handling (§3.4) ----
  // Failure/repair notifications from the optical plant. Each one updates
  // the controller's plant view, re-realises the current topology over the
  // surviving resources, and re-pairs any dark router ports; the next Tick
  // recomputes traffic engineering around the result. All are idempotent —
  // a repeated or stale report is a no-op (the optical layer guards it).
  void ReportFiberFailure(net::EdgeId fiber);
  void ReportFiberRepair(net::EdgeId fiber);
  void ReportSiteFailure(net::NodeId site);
  void ReportSiteRepair(net::NodeId site);
  void ReportTransceiverFailure(net::NodeId site, int ports, int regens);
  void ReportTransceiverRepair(net::NodeId site, int ports, int regens);

  // The controller's plant view with all reported failures applied.
  const optical::OpticalNetwork& plant() const { return optical_; }

 private:
  // Common tail of every failure/repair report: shrink the topology to the
  // surviving port budget, drop unrealizable units, re-pair dark ports.
  void ReactToPlantChange();

  const topo::Wan* wan_;
  std::unique_ptr<core::TeScheme> scheme_;
  ControllerOptions options_;

  core::Topology topology_;
  optical::OpticalNetwork optical_;  // plant view with failures applied
  std::map<int, TrackedTransfer> transfers_;
  int next_id_ = 0;
  double now_ = 0.0;

  std::vector<core::TransferAllocation> last_allocations_;
  update::UpdatePlan last_plan_;
  update::Schedule last_schedule_;
};

}  // namespace owan::control

#endif  // OWAN_CONTROL_CONTROLLER_H_
