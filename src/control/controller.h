#ifndef OWAN_CONTROL_CONTROLLER_H_
#define OWAN_CONTROL_CONTROLLER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/te_scheme.h"
#include "core/topology.h"
#include "topo/topologies.h"
#include "update/executor.h"
#include "update/scheduler.h"

namespace owan::control {

struct ControllerOptions {
  double slot_seconds = 300.0;
  update::UpdateDurations durations;
  // Consistent staged updates keep traffic flowing (Fig. 10b), so by
  // default the update makespan does not eat into transfers' slots. Set
  // false to charge transfers crossing reconfigured links the makespan
  // (one-shot-style disruption).
  bool hitless_updates = true;
  // Run each slot's reconfiguration through the update execution engine
  // instead of assuming the precomputed schedule lands as planned. With
  // the default (disabled) actuation model the engine reproduces
  // ScheduleConsistent exactly, so behaviour only changes under faults:
  // the controller keeps whatever topology/routes the plant actually
  // reached, and an aborted update leaves the previous slot's state.
  bool execute_updates = false;
  update::ExecutorOptions exec;
  // Test hook: "crash" the controller once the in-flight update's intent
  // log reaches this many records — Tick() returns with the update
  // pending (clock not advanced, transfers untouched). Checkpoint() then
  // emits v3 carrying the WAL; Restore() finishes the interrupted slot.
  // Negative = never crash.
  int crash_after_wal_records = -1;
};

// State of one transfer as tracked by the controller.
struct TrackedTransfer {
  core::Request request;
  double remaining = 0.0;
  bool completed = false;
  double completed_at = -1.0;
  int slots_waited = 0;
};

// The centralized Owan controller (§3.1): accepts transfer requests,
// invokes the TE scheme each time slot, turns topology deltas into a
// consistent cross-layer update schedule, and feeds rate allocations back
// to clients. All scheduling state needed to survive a failover is
// serializable through Checkpoint()/Restore() (§3.4: the algorithm itself
// is stateless, so topology + transfers suffice).
class Controller {
 public:
  Controller(const topo::Wan* wan, std::unique_ptr<core::TeScheme> scheme,
             ControllerOptions options = {});

  // Submits a request; returns its id.
  int Submit(net::NodeId src, net::NodeId dst, double size_gigabits,
             double deadline = core::kNoDeadline);

  // Runs one time slot: compute state -> schedule updates -> progress
  // transfers by their allocated rates.
  void Tick();

  double now() const { return now_; }
  const core::Topology& topology() const { return topology_; }
  const std::vector<core::TransferAllocation>& last_allocations() const {
    return last_allocations_;
  }
  const update::Schedule& last_update_schedule() const {
    return last_schedule_;
  }
  const update::UpdatePlan& last_update_plan() const { return last_plan_; }
  // Result of the last executed update (execute_updates only).
  const update::ExecResult& last_exec_result() const { return last_exec_; }
  // True when a crash interrupted an update mid-flight (crash hook fired):
  // the slot is unfinished and Checkpoint() will emit v3 with the WAL.
  bool HasPendingUpdate() const { return pending_update_; }

  const std::map<int, TrackedTransfer>& transfers() const {
    return transfers_;
  }
  int ActiveTransfers() const;

  // ---- failover (§3.4) ----
  // Writes "owan-checkpoint v2": clock, topology, transfers, and the plant
  // failure state (cut fibers, down sites, failed ports/regens), so a
  // standby restored mid-incident sees the same degraded plant. If an
  // update is in flight (crash hook fired mid-Tick) the snapshot is
  // "owan-checkpoint v3": the v2 body plus the update's target topology,
  // old/new routes, and write-ahead intent log.
  std::string Checkpoint() const;
  // Rebuilds a controller from a checkpoint (v1, v2 or v3); the new
  // instance resumes at the next time slot with the stored topology,
  // transfer set, and failure flags. A v3 checkpoint's interrupted update
  // is replayed from its intent log and finished before Restore returns,
  // so the restored controller is bit-identical to one that never crashed.
  static Controller Restore(const topo::Wan* wan,
                            std::unique_ptr<core::TeScheme> scheme,
                            const std::string& checkpoint,
                            ControllerOptions options = {});

  // ---- failure handling (§3.4) ----
  // Failure/repair notifications from the optical plant. Each one updates
  // the controller's plant view, re-realises the current topology over the
  // surviving resources, and re-pairs any dark router ports; the next Tick
  // recomputes traffic engineering around the result. All are idempotent —
  // a repeated or stale report is a no-op (the optical layer guards it).
  void ReportFiberFailure(net::EdgeId fiber);
  void ReportFiberRepair(net::EdgeId fiber);
  void ReportSiteFailure(net::NodeId site);
  void ReportSiteRepair(net::NodeId site);
  void ReportTransceiverFailure(net::NodeId site, int ports, int regens);
  void ReportTransceiverRepair(net::NodeId site, int ports, int regens);
  // Span degradation: the fiber stays lit but loses `db` of SNR budget.
  // On a QoT-enabled plant the topology is re-realised (capacity tiers may
  // shrink, unreachable circuits re-route); a legacy plant only records
  // the level so it still rides into checkpoints.
  void ReportSpanDegradation(net::EdgeId fiber, double db);
  void ReportSpanRepair(net::EdgeId fiber);

  // The controller's plant view with all reported failures applied.
  const optical::OpticalNetwork& plant() const { return optical_; }

 private:
  // Common tail of every failure/repair report: shrink the topology to the
  // surviving port budget, drop unrealizable units, re-pair dark ports.
  void ReactToPlantChange();

  // Applies a finished update's outcome and completes the slot: commit or
  // keep the pre-update state, progress transfers against the realized
  // allocations, advance the clock.
  void ApplyExecResult(update::ExecResult res,
                       const std::vector<int>& ids);
  // Replays a v3 checkpoint's WAL through a fresh executor, runs the
  // update to completion, and finishes the interrupted slot.
  void FinishInterruptedUpdate();
  // Slot tail shared by all paths: per-transfer progress (with the
  // update-disruption penalty for transfers crossing changed links) and
  // clock advance.
  void ProgressAndAdvance(
      const std::vector<int>& ids,
      const std::vector<core::TransferAllocation>& allocations,
      const std::set<std::pair<net::NodeId, net::NodeId>>& changed,
      double update_makespan);
  std::vector<int> ActiveIds() const;
  // Per-site spare ports for the executor: the plant's usable budget minus
  // what the current (pre-update) topology consumes. A pure function of
  // checkpointed state, so crash and resume compute the same budget.
  std::vector<int> SparePorts() const;

  const topo::Wan* wan_;
  std::unique_ptr<core::TeScheme> scheme_;
  ControllerOptions options_;

  core::Topology topology_;
  optical::OpticalNetwork optical_;  // plant view with failures applied
  std::map<int, TrackedTransfer> transfers_;
  int next_id_ = 0;
  double now_ = 0.0;

  std::vector<core::TransferAllocation> last_allocations_;
  update::UpdatePlan last_plan_;
  update::Schedule last_schedule_;
  update::ExecResult last_exec_;

  // In-flight update interrupted by the crash hook (topology_ still holds
  // the pre-update state until the update lands).
  bool pending_update_ = false;
  core::Topology pending_target_;
  std::vector<core::TransferAllocation> pending_old_routes_;
  std::vector<core::TransferAllocation> pending_new_routes_;
  update::IntentLog pending_wal_;
};

}  // namespace owan::control

#endif  // OWAN_CONTROL_CONTROLLER_H_
