#ifndef OWAN_CONTROL_CHECKPOINT_IO_H_
#define OWAN_CONTROL_CHECKPOINT_IO_H_

#include <istream>
#include <ostream>
#include <vector>

#include "core/transfer.h"

namespace owan::control {

// Shared serialization for the path lists embedded in line-oriented
// checkpoints: one "<path_tag> <rate> <n> <node...>" line per path. Used by
// the controller's v3 interrupted-update section and the service's v4
// frozen-route section, so both speak the same dialect. The caller is
// responsible for stream precision (checkpoints use max_digits10).
void WritePaths(std::ostream& os, const char* path_tag,
                const std::vector<core::PathAllocation>& paths);

// Parses the body of one path line (stream positioned just past the tag)
// into `pa`. Returns false and sets the stream's fail state on malformed
// input. Only node sequences are stored — edge ids and lengths are
// derivable from the topology when needed, and the progress arithmetic
// consumes nodes alone.
bool ReadPathBody(std::istream& ls, core::PathAllocation& pa);

}  // namespace owan::control

#endif  // OWAN_CONTROL_CHECKPOINT_IO_H_
