#include "control/client.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace owan::control {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(rate), burst_(burst), tokens_(burst) {
  if (rate < 0.0 || burst < 0.0) {
    throw std::invalid_argument("TokenBucket: negative rate or burst");
  }
}

double TokenBucket::available(double now) const {
  const double dt = std::max(0.0, now - last_refill_);
  return std::min(burst_, tokens_ + rate_ * dt);
}

double TokenBucket::Consume(double want, double now) {
  if (now > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_refill_));
    last_refill_ = now;
  }
  const double granted = std::min(want, tokens_);
  tokens_ -= granted;
  return granted;
}

double TokenBucket::ConsumeWindow(double want, double now, double duration) {
  if (now > last_refill_) {
    tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_refill_));
    last_refill_ = now;
  }
  duration = std::max(0.0, duration);
  // A sender transmitting throughout the window sees its opening tokens
  // plus everything minted while it sends.
  const double capacity = tokens_ + rate_ * duration;
  const double granted = std::min(want, capacity);
  tokens_ = std::min(burst_, capacity - granted);
  last_refill_ = now + duration;
  return granted;
}

FlowAssignment SplitByPrefix(const core::TransferAllocation& alloc,
                             int num_flows) {
  FlowAssignment out;
  const size_t n = alloc.paths.size();
  out.flows_per_path.assign(n, 0);
  out.achieved_rates.assign(n, 0.0);
  const double total = alloc.TotalRate();
  if (n == 0 || total <= 0.0 || num_flows <= 0) return out;

  // Largest-remainder apportionment of flows to paths by rate share.
  std::vector<double> exact(n);
  int assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    exact[i] = alloc.paths[i].rate / total * num_flows;
    out.flows_per_path[i] = static_cast<int>(exact[i]);
    assigned += out.flows_per_path[i];
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&exact, &out](size_t a, size_t b) {
    const double ra = exact[a] - out.flows_per_path[a];
    const double rb = exact[b] - out.flows_per_path[b];
    if (ra != rb) return ra > rb;
    return a < b;
  });
  for (size_t k = 0; assigned < num_flows; ++k) {
    ++out.flows_per_path[order[k % n]];
    ++assigned;
  }

  // Each flow carries an equal share of the transfer's aggregate rate; a
  // path's achieved rate is its flow count times that share (this is the
  // quantization the paper measured against the simulator).
  const double per_flow = total / num_flows;
  for (size_t i = 0; i < n; ++i) {
    out.achieved_rates[i] = out.flows_per_path[i] * per_flow;
    out.total_achieved += out.achieved_rates[i];
  }
  return out;
}

ClientEndpoint::ClientEndpoint(const core::TransferAllocation& alloc,
                               int num_flows, double burst_seconds) {
  const FlowAssignment split = SplitByPrefix(alloc, num_flows);
  for (size_t i = 0; i < alloc.paths.size(); ++i) {
    const double rate = split.achieved_rates[i];
    buckets_.emplace_back(rate, rate * burst_seconds);
  }
}

double ClientEndpoint::ConfiguredRate() const {
  double total = 0.0;
  for (const TokenBucket& b : buckets_) total += b.rate();
  return total;
}

double ClientEndpoint::Transmit(double now, double duration, double backlog) {
  double delivered = 0.0;
  for (TokenBucket& b : buckets_) {
    if (backlog - delivered <= 0.0) break;
    delivered += b.ConsumeWindow(backlog - delivered, now, duration);
  }
  return std::min(delivered, backlog);
}

}  // namespace owan::control
