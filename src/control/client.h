#ifndef OWAN_CONTROL_CLIENT_H_
#define OWAN_CONTROL_CLIENT_H_

#include <vector>

#include "core/transfer.h"

namespace owan::control {

// End-host machinery of the paper's client module (§4.2): the controller
// hands each client a per-path rate allocation; the client enforces it with
// token buckets (Linux tc in the prototype) and implements multi-path
// routing by splitting the transfer into flows assigned to paths by prefix
// ("prefix splitting"). Both mechanisms are imperfect in exactly the ways
// the paper blames for its <10% testbed/simulator gap: token buckets allow
// short bursts, and prefix splitting quantizes rates to whole flows.

// Token-bucket rate limiter. Rates in Gbps, time in seconds, volume in
// gigabits.
class TokenBucket {
 public:
  // `rate` tokens/second refill, up to `burst` tokens capacity.
  TokenBucket(double rate, double burst);

  // Advances the clock and returns how much of `want` gigabits may be sent.
  double Consume(double want, double now);

  // Continuous sending over [now, now + duration]: grants up to the tokens
  // on hand plus everything minted during the window.
  double ConsumeWindow(double want, double now, double duration);

  double rate() const { return rate_; }
  double available(double now) const;

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
};

// Splits a transfer into `num_flows` equal flows and assigns them to paths
// so the per-path flow counts approximate the allocated rate ratios (the
// prototype hashes destination-prefix buckets; equal flows is the same
// model). Quantization error shrinks as 1/num_flows.
struct FlowAssignment {
  std::vector<int> flows_per_path;     // parallel to the allocation's paths
  std::vector<double> achieved_rates;  // rate actually carried per path
  double total_achieved = 0.0;
};

FlowAssignment SplitByPrefix(const core::TransferAllocation& alloc,
                             int num_flows);

// One end host executing an allocation: a token bucket per path at the
// granted rate. Transmit() advances time and returns delivered gigabits.
class ClientEndpoint {
 public:
  ClientEndpoint(const core::TransferAllocation& alloc, int num_flows = 16,
                 double burst_seconds = 0.1);

  // Sends for `duration` seconds starting at `now`; never delivers more
  // than `backlog` gigabits. Returns the delivered volume.
  double Transmit(double now, double duration, double backlog);

  double ConfiguredRate() const;  // sum of enforced per-path rates

 private:
  std::vector<TokenBucket> buckets_;
};

}  // namespace owan::control

#endif  // OWAN_CONTROL_CLIENT_H_
