#ifndef OWAN_CONTROL_RESERVATION_H_
#define OWAN_CONTROL_RESERVATION_H_

#include <map>
#include <optional>
#include <vector>

#include "core/topology.h"
#include "core/transfer.h"
#include "net/shortest_path.h"
#include "optical/optical_network.h"

namespace owan::control {

// Bandwidth reservations (the paper's §6 future-work direction): clients
// book a guaranteed rate between two sites over a time window, the WAN
// analogue of cloud bandwidth guarantees. Admission is checked against a
// per-slot capacity ledger over the network-layer topology; when the fixed
// topology cannot host a request, the service optionally asks the optical
// layer whether an extra circuit could be lit for the window — the
// "reconfigurability improves reservations" idea the paper sketches.
struct Reservation {
  int id = -1;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  double rate = 0.0;     // Gbps guaranteed
  double start = 0.0;    // absolute seconds, inclusive
  double end = 0.0;      // absolute seconds, exclusive
  // Paths carrying the guarantee (with per-path rates), as admitted.
  std::vector<core::PathAllocation> paths;
  // True when admission required lighting an extra circuit.
  bool used_extra_circuit = false;
};

struct ReservationOptions {
  double slot_seconds = 300.0;
  // Guarantees may need genuinely disjoint alternates, which sit deeper in
  // the k-shortest list than TE's working paths do.
  int k_paths = 6;
  // Allow admission to claim a spare optical circuit (one wavelength)
  // between the endpoints when the packet topology is full.
  bool allow_optical_boost = true;
};

class ReservationService {
 public:
  // `topology` is the network-layer topology whose capacity backs the
  // guarantees; `optical` is consulted (copy-on-admit) for boosts.
  ReservationService(const core::Topology& topology,
                     const optical::OpticalNetwork& optical,
                     ReservationOptions options = {});

  // Attempts to admit a reservation; returns it (with chosen paths) or
  // nullopt if the window cannot be guaranteed.
  std::optional<Reservation> Request(net::NodeId src, net::NodeId dst,
                                     double rate, double start, double end);

  // Releases an admitted reservation's capacity.
  void Release(int reservation_id);

  // Guaranteed rate still available between src and dst over the window
  // (along the single best path set, ignoring optical boosts).
  double AvailableRate(net::NodeId src, net::NodeId dst, double start,
                       double end) const;

  const std::map<int, Reservation>& reservations() const {
    return reservations_;
  }
  int BoostCircuits() const { return boost_circuits_; }

 private:
  // Shared admission guard: real endpoints, positive finite rate, and a
  // non-empty window that does not start in the past.
  bool ValidWindow(net::NodeId src, net::NodeId dst, double rate,
                   double start, double end) const;
  // Residual capacity per edge for one slot (lazily at full capacity).
  std::vector<double>& SlotResidual(int64_t slot);
  double Residual(int64_t slot, net::EdgeId e) const;

  int64_t FirstSlot(double start) const {
    return static_cast<int64_t>(start / options_.slot_seconds);
  }
  int64_t LastSlot(double end) const {
    // A window covers every slot it overlaps.
    return static_cast<int64_t>((end - 1e-9) / options_.slot_seconds);
  }

  core::Topology topology_;
  net::Graph graph_;
  optical::OpticalNetwork optical_;
  ReservationOptions options_;

  std::map<int64_t, std::vector<double>> residual_;  // slot -> per-edge Gbps
  std::map<int, Reservation> reservations_;
  int next_id_ = 0;
  int boost_circuits_ = 0;
};

}  // namespace owan::control

#endif  // OWAN_CONTROL_RESERVATION_H_
