#include "control/reservation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/provisioned_state.h"

namespace owan::control {

namespace {
constexpr double kEps = 1e-9;
}

ReservationService::ReservationService(const core::Topology& topology,
                                       const optical::OpticalNetwork& optical,
                                       ReservationOptions options)
    : topology_(topology),
      graph_(topology.ToGraph(optical.wavelength_capacity())),
      optical_(optical),
      options_(options) {
  if (options_.slot_seconds <= 0.0) {
    throw std::invalid_argument("ReservationService: slot_seconds > 0");
  }
  // Claim the plant's view of the current topology so boosts only use
  // genuinely spare optical resources.
  core::ProvisionedState seed(optical_);
  seed.SyncTo(topology_);
  optical_ = seed.optical();
}

std::vector<double>& ReservationService::SlotResidual(int64_t slot) {
  auto it = residual_.find(slot);
  if (it == residual_.end()) {
    std::vector<double> caps(static_cast<size_t>(graph_.NumEdges()));
    for (net::EdgeId e = 0; e < graph_.NumEdges(); ++e) {
      caps[static_cast<size_t>(e)] = graph_.edge(e).capacity;
    }
    it = residual_.emplace(slot, std::move(caps)).first;
  }
  return it->second;
}

double ReservationService::Residual(int64_t slot, net::EdgeId e) const {
  auto it = residual_.find(slot);
  if (it == residual_.end()) return graph_.edge(e).capacity;
  return it->second[static_cast<size_t>(e)];
}

bool ReservationService::ValidWindow(net::NodeId src, net::NodeId dst,
                                     double rate, double start,
                                     double end) const {
  // A window starting in the past would book ledger slots that can never be
  // served (FirstSlot truncates toward zero, so negative starts silently
  // alias onto slot 0 or book negative slot keys); NaN/inf anywhere would
  // poison every residual comparison after it.
  return src != dst && src >= 0 && dst >= 0 && src < graph_.NumNodes() &&
         dst < graph_.NumNodes() && std::isfinite(rate) && rate > 0.0 &&
         std::isfinite(start) && start >= 0.0 && std::isfinite(end) &&
         end > start;
}

std::optional<Reservation> ReservationService::Request(
    net::NodeId src, net::NodeId dst, double rate, double start,
    double end) {
  if (!ValidWindow(src, dst, rate, start, end)) return std::nullopt;

  const int64_t first = FirstSlot(start);
  const int64_t last = LastSlot(end);
  const auto paths =
      net::KShortestPaths(graph_, src, dst, options_.k_paths);

  // Per-path rate: the minimum residual across every slot of the window.
  std::vector<double> path_rate(paths.size(), 0.0);
  for (size_t pi = 0; pi < paths.size(); ++pi) {
    double r = rate;
    for (int64_t s = first; s <= last && r > kEps; ++s) {
      for (net::EdgeId e : paths[pi].edges) {
        r = std::min(r, Residual(s, e));
      }
    }
    path_rate[pi] = std::max(0.0, r);
  }

  // Greedy split over paths (shortest first), respecting shared edges by
  // committing tentatively slot by slot.
  Reservation res;
  res.id = next_id_;
  res.src = src;
  res.dst = dst;
  res.rate = rate;
  res.start = start;
  res.end = end;

  double remaining = rate;
  std::map<int64_t, std::vector<double>> tentative;
  for (size_t pi = 0; pi < paths.size() && remaining > kEps; ++pi) {
    double take = std::min(remaining, path_rate[pi]);
    // Re-check against tentative bookings on shared edges.
    for (int64_t s = first; s <= last && take > kEps; ++s) {
      auto& tent = tentative[s];
      if (tent.empty()) {
        tent.assign(static_cast<size_t>(graph_.NumEdges()), 0.0);
      }
      for (net::EdgeId e : paths[pi].edges) {
        take = std::min(take,
                        Residual(s, e) - tent[static_cast<size_t>(e)]);
      }
    }
    take = std::max(0.0, take);
    if (take <= kEps) continue;
    for (int64_t s = first; s <= last; ++s) {
      auto& tent = tentative[s];
      for (net::EdgeId e : paths[pi].edges) {
        tent[static_cast<size_t>(e)] += take;
      }
    }
    res.paths.push_back(core::PathAllocation{paths[pi], take});
    remaining -= take;
  }

  // Optical boost: if the packet topology cannot host the leftover, see
  // whether a spare circuit (one wavelength) between the endpoints could —
  // this requires spare ROADM-side resources AND a leftover router port on
  // each end.
  if (remaining > kEps && options_.allow_optical_boost &&
      remaining <= optical_.wavelength_capacity() + kEps) {
    const bool ports_free =
        topology_.PortsUsed(src) < optical_.site(src).router_ports &&
        topology_.PortsUsed(dst) < optical_.site(dst).router_ports;
    if (ports_free) {
      auto circuit = optical_.ProvisionCircuit(src, dst);
      if (circuit) {
        ++boost_circuits_;
        res.used_extra_circuit = true;
        topology_.AddUnits(src, dst, 1);
        const net::EdgeId e =
            graph_.AddEdge(src, dst, 1.0, optical_.wavelength_capacity());
        // Older slots' residual vectors must grow to cover the new edge.
        for (auto& [slot, caps] : residual_) {
          (void)slot;
          caps.push_back(optical_.wavelength_capacity());
        }
        net::Path direct;
        direct.nodes = {src, dst};
        direct.edges = {e};
        direct.length = 1.0;
        for (int64_t s = first; s <= last; ++s) {
          auto& tent = tentative[s];
          tent.resize(static_cast<size_t>(graph_.NumEdges()), 0.0);
          tent[static_cast<size_t>(e)] += remaining;
        }
        res.paths.push_back(core::PathAllocation{direct, remaining});
        remaining = 0.0;
      }
    }
  }

  if (remaining > kEps) return std::nullopt;  // cannot guarantee

  // Commit.
  for (auto& [s, tent] : tentative) {
    auto& caps = SlotResidual(s);
    caps.resize(tent.size(), optical_.wavelength_capacity());
    for (size_t e = 0; e < tent.size(); ++e) caps[e] -= tent[e];
  }
  ++next_id_;
  reservations_.emplace(res.id, res);
  return res;
}

void ReservationService::Release(int reservation_id) {
  auto it = reservations_.find(reservation_id);
  if (it == reservations_.end()) {
    throw std::invalid_argument("ReservationService: unknown reservation");
  }
  const Reservation& res = it->second;
  for (int64_t s = FirstSlot(res.start); s <= LastSlot(res.end); ++s) {
    auto& caps = SlotResidual(s);
    for (const core::PathAllocation& pa : res.paths) {
      for (net::EdgeId e : pa.path.edges) {
        caps[static_cast<size_t>(e)] += pa.rate;
      }
    }
  }
  // Note: boost circuits stay lit until released topology-side; keeping
  // them is harmless for correctness (capacity only grows).
  reservations_.erase(it);
}

double ReservationService::AvailableRate(net::NodeId src, net::NodeId dst,
                                         double start, double end) const {
  // Mirror Request's guards (a probe rate of 1.0 stands in for "any"):
  // src == dst or a degenerate window can obtain nothing, not "the k
  // shortest self-loops' worth of capacity".
  if (!ValidWindow(src, dst, 1.0, start, end)) return 0.0;
  const auto paths = net::KShortestPaths(graph_, src, dst, options_.k_paths);
  // Greedy commit over a scratch ledger — the same procedure admission
  // uses, so the answer is exactly what a Request could obtain.
  std::map<net::EdgeId, double> scratch;  // window-min residual per edge
  auto window_min = [&](net::EdgeId e) {
    auto it = scratch.find(e);
    if (it != scratch.end()) return it->second;
    double r = graph_.edge(e).capacity;
    for (int64_t s = FirstSlot(start); s <= LastSlot(end); ++s) {
      r = std::min(r, Residual(s, e));
    }
    scratch[e] = r;
    return r;
  };
  double total = 0.0;
  for (const net::Path& p : paths) {
    double r = 1e18;
    for (net::EdgeId e : p.edges) r = std::min(r, window_min(e));
    if (r >= 1e18 || r <= 0.0) continue;
    for (net::EdgeId e : p.edges) scratch[e] -= r;
    total += r;
  }
  return total;
}

}  // namespace owan::control
