#include "testkit/property.h"

#include <exception>

#include "testkit/shrink.h"

namespace owan::testkit {

std::optional<Failure> EvalProperty(const Property& property,
                                    const FuzzCase& c) {
  try {
    return property(c);
  } catch (const std::exception& e) {
    return Failure{"exception", e.what()};
  }
}

CheckResult CheckProperty(const Property& property,
                          const CheckOptions& options) {
  CheckResult result;
  for (int t = 0; t < options.trials; ++t) {
    const uint64_t case_seed = options.seed + static_cast<uint64_t>(t);
    FuzzCase c = GenFuzzCase(case_seed, options.gen);
    ++result.trials_run;
    std::optional<Failure> f = EvalProperty(property, c);
    if (!f) continue;

    result.ok = false;
    result.failing_seed = case_seed;
    result.failure = *f;
    result.original = c;
    result.shrunk = c;
    if (options.shrink) {
      ShrinkResult sr =
          Shrink(c, *f, property, ShrinkOptions{options.max_shrink_evals});
      result.shrunk = std::move(sr.best);
      result.failure = std::move(sr.failure);
      result.shrink_evals = sr.evals;
      result.shrink_steps = sr.steps;
    }
    return result;
  }
  return result;
}

}  // namespace owan::testkit
