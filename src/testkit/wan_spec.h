#ifndef OWAN_TESTKIT_WAN_SPEC_H_
#define OWAN_TESTKIT_WAN_SPEC_H_

#include <string>
#include <vector>

#include "topo/topologies.h"

namespace owan::testkit {

// A WAN described as plain data, so the shrinker can delete sites and
// fibers (and halve ports, regens, or wavelengths) with ordinary vector
// edits and rebuild the real optical plant afterwards. The named factory
// WANs (topo::Make*) construct their OpticalNetwork imperatively; this is
// the declarative mirror the testkit generates, mutates, serializes, and
// turns into a topo::Wan on demand.
struct SiteSpec {
  int router_ports = 0;
  int regenerators = 0;

  bool operator==(const SiteSpec&) const = default;
};

struct FiberSpec {
  int u = 0;
  int v = 0;
  double length_km = 0.0;
  int num_wavelengths = 0;

  bool operator==(const FiberSpec&) const = default;
};

struct WanSpec {
  double wavelength_gbps = 10.0;  // theta
  double reach_km = 2000.0;       // eta
  std::vector<SiteSpec> sites;
  std::vector<FiberSpec> fibers;

  int NumSites() const { return static_cast<int>(sites.size()); }
  int NumFibers() const { return static_cast<int>(fibers.size()); }

  // Builds the optical plant plus a deterministic default topology: greedy
  // rounds over the fiber list, adding one unit per fiber-adjacent pair
  // while both endpoints have free ports and the direct fiber has a
  // wavelength per unit — a dense, provisionable starting point analogous
  // to the factory WANs' use-every-port defaults.
  topo::Wan Build() const;

  // Structural sanity independent of any property: endpoints in range,
  // positive lengths/wavelengths/theta/reach, no self-loop fibers.
  // Violations are returned as messages (empty = well-formed).
  std::vector<std::string> Validate() const;

  bool operator==(const WanSpec&) const = default;
};

}  // namespace owan::testkit

#endif  // OWAN_TESTKIT_WAN_SPEC_H_
