#ifndef OWAN_TESTKIT_SHRINK_H_
#define OWAN_TESTKIT_SHRINK_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "testkit/property.h"

namespace owan::testkit {

// Structure-aware shrink moves. Every move returns a case that is strictly
// smaller under the (sites, fibers, transfers, events, magnitudes) order,
// with all cross-references repaired: deleting a site drops its fibers and
// transfers and renumbers everything above it; deleting a fiber drops and
// renumbers the fault events that target fibers.
FuzzCase RemoveTransfers(const FuzzCase& c, size_t begin, size_t count);
FuzzCase RemoveEvents(const FuzzCase& c, size_t begin, size_t count);
FuzzCase RemoveFiber(const FuzzCase& c, size_t fiber);
// nullopt when fewer than 3 sites remain (a WAN needs at least 2).
std::optional<FuzzCase> RemoveSite(const FuzzCase& c, int site);

// One-step shrink candidates in decreasing order of aggressiveness:
// transfer/event chunk deletion, single deletions, site and fiber
// deletion, then value halving (sizes, wavelengths, ports, regens,
// annealing iterations, horizon).
std::vector<FuzzCase> ShrinkCandidates(const FuzzCase& c);

struct ShrinkOptions {
  int max_evals = 500;
};

struct ShrinkResult {
  FuzzCase best;
  Failure failure;  // how `best` fails (may differ from the original mode)
  int evals = 0;
  int steps = 0;
};

// Greedy minimization: repeatedly adopt the first shrink candidate that
// still fails `property` (any failure counts — a shrink that turns a wrong
// energy into a crash is still a smaller repro), until no candidate fails
// or the evaluation budget runs out.
ShrinkResult Shrink(const FuzzCase& failing, const Failure& original_failure,
                    const Property& property, const ShrinkOptions& options);

}  // namespace owan::testkit

#endif  // OWAN_TESTKIT_SHRINK_H_
