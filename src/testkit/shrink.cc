#include "testkit/shrink.h"

#include <algorithm>

namespace owan::testkit {

namespace {

bool IsFiberEvent(const fault::FaultEvent& e) {
  return e.type == fault::FaultType::kFiberCut ||
         e.type == fault::FaultType::kFiberRepair;
}

bool IsSiteEvent(const fault::FaultEvent& e) {
  return e.type == fault::FaultType::kSiteFail ||
         e.type == fault::FaultType::kSiteRepair ||
         e.type == fault::FaultType::kTransceiverFail ||
         e.type == fault::FaultType::kTransceiverRepair;
}

}  // namespace

FuzzCase RemoveTransfers(const FuzzCase& c, size_t begin, size_t count) {
  FuzzCase out = c;
  const size_t end = std::min(begin + count, out.transfers.size());
  out.transfers.erase(out.transfers.begin() + static_cast<long>(begin),
                      out.transfers.begin() + static_cast<long>(end));
  return out;
}

FuzzCase RemoveEvents(const FuzzCase& c, size_t begin, size_t count) {
  FuzzCase out = c;
  const size_t end = std::min(begin + count, out.faults.events.size());
  out.faults.events.erase(
      out.faults.events.begin() + static_cast<long>(begin),
      out.faults.events.begin() + static_cast<long>(end));
  return out;
}

FuzzCase RemoveFiber(const FuzzCase& c, size_t fiber) {
  FuzzCase out = c;
  out.wan.fibers.erase(out.wan.fibers.begin() + static_cast<long>(fiber));
  std::vector<fault::FaultEvent> kept;
  kept.reserve(out.faults.events.size());
  for (fault::FaultEvent e : out.faults.events) {
    if (IsFiberEvent(e)) {
      if (e.target == static_cast<int>(fiber)) continue;
      if (e.target > static_cast<int>(fiber)) --e.target;
    }
    kept.push_back(e);
  }
  out.faults.events = std::move(kept);
  return out;
}

std::optional<FuzzCase> RemoveSite(const FuzzCase& c, int site) {
  if (c.wan.NumSites() <= 2) return std::nullopt;
  FuzzCase out = c;
  out.wan.sites.erase(out.wan.sites.begin() + site);

  // Fibers: drop those touching the site; remember old->new indices for
  // the fault-event remap, then renumber surviving endpoints.
  std::vector<int> fiber_map(c.wan.fibers.size(), -1);
  std::vector<FiberSpec> fibers;
  fibers.reserve(c.wan.fibers.size());
  for (size_t i = 0; i < c.wan.fibers.size(); ++i) {
    FiberSpec f = c.wan.fibers[i];
    if (f.u == site || f.v == site) continue;
    if (f.u > site) --f.u;
    if (f.v > site) --f.v;
    fiber_map[i] = static_cast<int>(fibers.size());
    fibers.push_back(f);
  }
  out.wan.fibers = std::move(fibers);

  std::vector<core::Request> transfers;
  transfers.reserve(c.transfers.size());
  for (core::Request r : c.transfers) {
    if (r.src == site || r.dst == site) continue;
    if (r.src > site) --r.src;
    if (r.dst > site) --r.dst;
    transfers.push_back(r);
  }
  out.transfers = std::move(transfers);

  std::vector<fault::FaultEvent> kept;
  kept.reserve(c.faults.events.size());
  for (fault::FaultEvent e : c.faults.events) {
    if (IsFiberEvent(e)) {
      if (e.target < 0 ||
          e.target >= static_cast<int>(fiber_map.size()) ||
          fiber_map[static_cast<size_t>(e.target)] < 0) {
        continue;
      }
      e.target = fiber_map[static_cast<size_t>(e.target)];
    } else if (IsSiteEvent(e)) {
      if (e.target == site) continue;
      if (e.target > site) --e.target;
    }
    kept.push_back(e);
  }
  out.faults.events = std::move(kept);
  return out;
}

std::vector<FuzzCase> ShrinkCandidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;

  // Chunk deletion first: halving the transfer or event list in one step
  // is what gets a 10-transfer case down to 3 in a few evaluations.
  const size_t nt = c.transfers.size();
  if (nt >= 2) {
    out.push_back(RemoveTransfers(c, 0, nt / 2));
    out.push_back(RemoveTransfers(c, nt / 2, nt - nt / 2));
  }
  const size_t ne = c.faults.events.size();
  if (ne >= 2) {
    out.push_back(RemoveEvents(c, 0, ne / 2));
    out.push_back(RemoveEvents(c, ne / 2, ne - ne / 2));
  }

  for (size_t i = 0; i < nt; ++i) out.push_back(RemoveTransfers(c, i, 1));
  for (size_t i = 0; i < ne; ++i) out.push_back(RemoveEvents(c, i, 1));
  for (int s = 0; s < c.wan.NumSites(); ++s) {
    if (auto cand = RemoveSite(c, s)) out.push_back(std::move(*cand));
  }
  for (size_t f = 0; f < c.wan.fibers.size(); ++f) {
    out.push_back(RemoveFiber(c, f));
  }

  // Value halving: keeps the structure, shrinks the magnitudes.
  for (size_t i = 0; i < nt; ++i) {
    if (c.transfers[i].size > 1.0) {
      FuzzCase cand = c;
      cand.transfers[i].size /= 2.0;
      out.push_back(std::move(cand));
    }
  }
  for (size_t f = 0; f < c.wan.fibers.size(); ++f) {
    if (c.wan.fibers[f].num_wavelengths > 1) {
      FuzzCase cand = c;
      cand.wan.fibers[f].num_wavelengths /= 2;
      out.push_back(std::move(cand));
    }
  }
  for (size_t s = 0; s < c.wan.sites.size(); ++s) {
    if (c.wan.sites[s].router_ports > 1) {
      FuzzCase cand = c;
      cand.wan.sites[s].router_ports /= 2;
      out.push_back(std::move(cand));
    }
    if (c.wan.sites[s].regenerators > 0) {
      FuzzCase cand = c;
      cand.wan.sites[s].regenerators /= 2;
      out.push_back(std::move(cand));
    }
  }
  if (c.anneal_iterations > 8) {
    FuzzCase cand = c;
    cand.anneal_iterations /= 2;
    out.push_back(std::move(cand));
  }
  if (c.horizon_s > 1200.0) {
    FuzzCase cand = c;
    cand.horizon_s /= 2.0;
    out.push_back(std::move(cand));
  }
  return out;
}

ShrinkResult Shrink(const FuzzCase& failing, const Failure& original_failure,
                    const Property& property, const ShrinkOptions& options) {
  ShrinkResult result;
  result.best = failing;
  result.failure = original_failure;
  bool improved = true;
  while (improved && result.evals < options.max_evals) {
    improved = false;
    for (FuzzCase& cand : ShrinkCandidates(result.best)) {
      if (result.evals >= options.max_evals) break;
      ++result.evals;
      if (std::optional<Failure> f = EvalProperty(property, cand)) {
        result.best = std::move(cand);
        result.failure = std::move(*f);
        ++result.steps;
        improved = true;
        break;  // re-enumerate moves from the smaller case
      }
    }
  }
  return result;
}

}  // namespace owan::testkit
