#include "testkit/wan_spec.h"

#include <string>
#include <utility>

#include "core/provisioned_state.h"

namespace owan::testkit {

topo::Wan WanSpec::Build() const {
  std::vector<optical::SiteInfo> infos;
  infos.reserve(sites.size());
  std::vector<std::string> names;
  names.reserve(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    optical::SiteInfo s;
    s.name = "s" + std::to_string(i);
    s.router_ports = sites[i].router_ports;
    s.regenerators = sites[i].regenerators;
    infos.push_back(s);
    names.push_back(s.name);
  }

  // Greedy default topology: repeat passes over the fiber list, each pass
  // adding one unit to every fiber-adjacent pair that still has free ports
  // on both ends and a direct wavelength per unit. Fibers longer than the
  // reach are skipped — no single-segment circuit can cross them, and
  // requesting such units would make the default only partially
  // provisionable. The loop is a pure function of the spec.
  core::Topology t(NumSites());
  std::vector<int> ports_left(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    ports_left[i] = sites[i].router_ports;
  }
  std::vector<int> fiber_wl_left(fibers.size());
  for (size_t i = 0; i < fibers.size(); ++i) {
    fiber_wl_left[i] = fibers[i].num_wavelengths;
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < fibers.size(); ++i) {
      const FiberSpec& f = fibers[i];
      if (f.u == f.v || f.length_km > reach_km) continue;
      if (ports_left[static_cast<size_t>(f.u)] <= 0 ||
          ports_left[static_cast<size_t>(f.v)] <= 0 ||
          fiber_wl_left[i] <= 0) {
        continue;
      }
      t.AddUnits(f.u, f.v, 1);
      --ports_left[static_cast<size_t>(f.u)];
      --ports_left[static_cast<size_t>(f.v)];
      --fiber_wl_left[i];
      progress = true;
    }
  }

  topo::Wan wan{
      "testkit",
      optical::OpticalNetwork(std::move(infos), reach_km, wavelength_gbps),
      std::move(t), std::move(names)};
  for (const FiberSpec& f : fibers) {
    wan.optical.AddFiber(f.u, f.v, f.length_km, f.num_wavelengths);
  }

  // The per-fiber budgets above do not model everything the provisioner
  // checks (e.g. regeneration when a circuit must detour), so drive the
  // default to a provisioning fixed point: re-request the realized
  // topology until a blank plant realizes it fully. Each round can only
  // drop units, so this terminates, and the result makes
  // "SyncTo(default_topology) == 0 on a fresh plant" an invariant every
  // consumer may rely on.
  for (;;) {
    core::ProvisionedState state(wan.optical);
    if (state.SyncTo(wan.default_topology) == 0) break;
    wan.default_topology = state.realized();
  }
  return wan;
}

std::vector<std::string> WanSpec::Validate() const {
  std::vector<std::string> problems;
  if (wavelength_gbps <= 0.0) problems.push_back("non-positive theta");
  if (reach_km <= 0.0) problems.push_back("non-positive reach");
  if (sites.size() < 2) problems.push_back("fewer than 2 sites");
  for (size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].router_ports < 0 || sites[i].regenerators < 0) {
      problems.push_back("site " + std::to_string(i) +
                         " has negative resources");
    }
  }
  for (size_t i = 0; i < fibers.size(); ++i) {
    const FiberSpec& f = fibers[i];
    if (f.u < 0 || f.v < 0 || f.u >= NumSites() || f.v >= NumSites()) {
      problems.push_back("fiber " + std::to_string(i) +
                         " endpoint out of range");
    } else if (f.u == f.v) {
      problems.push_back("fiber " + std::to_string(i) + " is a self-loop");
    }
    if (f.length_km <= 0.0 || f.num_wavelengths <= 0) {
      problems.push_back("fiber " + std::to_string(i) +
                         " has non-positive length or wavelengths");
    }
  }
  return problems;
}

}  // namespace owan::testkit
