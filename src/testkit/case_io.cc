#include "testkit/case_io.h"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "fault/schedule_io.h"

namespace owan::testkit {

namespace {

[[noreturn]] void Bad(const std::string& line, const std::string& why) {
  throw std::invalid_argument("ParseFuzzCase: " + why + ": \"" + line + "\"");
}

// Next line with content, comments ('#' to end of line) stripped.
bool NextLine(std::istream& in, std::string* out) {
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = raw.substr(0, raw.find('#'));
    std::istringstream probe(line);
    std::string any;
    if (probe >> any) {
      *out = line;
      return true;
    }
  }
  return false;
}

template <typename T>
T Field(std::istringstream& ls, const std::string& line,
        const std::string& what) {
  T value{};
  if (!(ls >> value)) Bad(line, "expected " + what);
  return value;
}

void NoTrailing(std::istringstream& ls, const std::string& line) {
  std::string rest;
  if (ls >> rest) Bad(line, "trailing tokens");
}

// A line that must start with `key`, returning the rest-of-line stream.
std::istringstream Expect(std::istream& in, const std::string& key) {
  std::string line;
  if (!NextLine(in, &line)) {
    throw std::invalid_argument("ParseFuzzCase: unexpected end of input, "
                                "expected \"" +
                                key + "\"");
  }
  std::istringstream ls(line);
  std::string got;
  ls >> got;
  if (got != key) Bad(line, "expected \"" + key + "\"");
  return ls;
}

}  // namespace

std::string FormatFuzzCase(const FuzzCase& c) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "# owan_fuzz case (seed " << c.seed << ")\n";
  os << "seed " << c.seed << "\n";
  os << "horizon " << c.horizon_s << "\n";
  os << "anneal " << c.anneal_iterations << "\n";
  os << "theta " << c.wan.wavelength_gbps << "\n";
  os << "reach " << c.wan.reach_km << "\n";
  os << "sites " << c.wan.sites.size() << "\n";
  for (const SiteSpec& s : c.wan.sites) {
    os << "site " << s.router_ports << " " << s.regenerators << "\n";
  }
  os << "fibers " << c.wan.fibers.size() << "\n";
  for (const FiberSpec& f : c.wan.fibers) {
    os << "fiber " << f.u << " " << f.v << " " << f.length_km << " "
       << f.num_wavelengths << "\n";
  }
  os << "transfers " << c.transfers.size() << "\n";
  for (const core::Request& r : c.transfers) {
    os << "transfer " << r.id << " " << r.src << " " << r.dst << " " << r.size
       << " " << r.arrival << " " << r.deadline << "\n";
  }
  os << "faults " << c.faults.size() << "\n";
  for (const fault::FaultEvent& e : c.faults.events) {
    os << fault::ToString(e) << "\n";
  }
  return os.str();
}

FuzzCase ParseFuzzCase(std::istream& in) {
  FuzzCase c;
  {
    std::istringstream ls = Expect(in, "seed");
    c.seed = Field<uint64_t>(ls, "seed", "a seed");
    NoTrailing(ls, "seed");
  }
  {
    std::istringstream ls = Expect(in, "horizon");
    c.horizon_s = Field<double>(ls, "horizon", "a horizon");
    if (c.horizon_s <= 0.0) Bad("horizon", "non-positive horizon");
  }
  {
    std::istringstream ls = Expect(in, "anneal");
    c.anneal_iterations = Field<int>(ls, "anneal", "an iteration count");
    if (c.anneal_iterations < 0) Bad("anneal", "negative iteration count");
  }
  {
    std::istringstream ls = Expect(in, "theta");
    c.wan.wavelength_gbps = Field<double>(ls, "theta", "a capacity");
  }
  {
    std::istringstream ls = Expect(in, "reach");
    c.wan.reach_km = Field<double>(ls, "reach", "a reach");
  }
  {
    std::istringstream ls = Expect(in, "sites");
    const size_t n = Field<size_t>(ls, "sites", "a site count");
    for (size_t i = 0; i < n; ++i) {
      std::istringstream sl = Expect(in, "site");
      SiteSpec s;
      s.router_ports = Field<int>(sl, "site", "router ports");
      s.regenerators = Field<int>(sl, "site", "regenerators");
      NoTrailing(sl, "site");
      c.wan.sites.push_back(s);
    }
  }
  {
    std::istringstream ls = Expect(in, "fibers");
    const size_t n = Field<size_t>(ls, "fibers", "a fiber count");
    for (size_t i = 0; i < n; ++i) {
      std::istringstream fl = Expect(in, "fiber");
      FiberSpec f;
      f.u = Field<int>(fl, "fiber", "endpoint u");
      f.v = Field<int>(fl, "fiber", "endpoint v");
      f.length_km = Field<double>(fl, "fiber", "a length");
      f.num_wavelengths = Field<int>(fl, "fiber", "a wavelength count");
      NoTrailing(fl, "fiber");
      c.wan.fibers.push_back(f);
    }
  }
  {
    std::istringstream ls = Expect(in, "transfers");
    const size_t n = Field<size_t>(ls, "transfers", "a transfer count");
    for (size_t i = 0; i < n; ++i) {
      std::istringstream tl = Expect(in, "transfer");
      core::Request r;
      r.id = Field<int>(tl, "transfer", "an id");
      r.src = Field<int>(tl, "transfer", "a source");
      r.dst = Field<int>(tl, "transfer", "a destination");
      r.size = Field<double>(tl, "transfer", "a size");
      r.arrival = Field<double>(tl, "transfer", "an arrival");
      r.deadline = Field<double>(tl, "transfer", "a deadline");
      NoTrailing(tl, "transfer");
      c.transfers.push_back(r);
    }
  }
  {
    std::istringstream ls = Expect(in, "faults");
    const size_t n = Field<size_t>(ls, "faults", "an event count");
    std::ostringstream events;
    for (size_t i = 0; i < n; ++i) {
      std::string line;
      if (!NextLine(in, &line)) {
        throw std::invalid_argument(
            "ParseFuzzCase: unexpected end of input inside fault events");
      }
      events << line << "\n";
    }
    c.faults = fault::ParseFaultSchedule(events.str());
    if (c.faults.size() != n) {
      throw std::invalid_argument(
          "ParseFuzzCase: fault event count does not match header");
    }
  }
  const std::vector<std::string> problems = c.wan.Validate();
  if (!problems.empty()) {
    throw std::invalid_argument("ParseFuzzCase: invalid wan: " +
                                problems.front());
  }
  return c;
}

FuzzCase ParseFuzzCase(const std::string& text) {
  std::istringstream is(text);
  return ParseFuzzCase(is);
}

}  // namespace owan::testkit
