#ifndef OWAN_TESTKIT_GENERATORS_H_
#define OWAN_TESTKIT_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/transfer.h"
#include "fault/fault_event.h"
#include "testkit/wan_spec.h"
#include "util/rng.h"

namespace owan::testkit {

// One complete randomized scenario — the unit every oracle checks and the
// shrinker minimizes. A FuzzCase is plain data: it can be generated from a
// seed, edited field-by-field during shrinking, and round-tripped through
// text (case_io.h) for replay files.
struct FuzzCase {
  uint64_t seed = 0;  // provenance: the seed that generated (or shrank) it
  WanSpec wan;
  std::vector<core::Request> transfers;
  fault::FaultSchedule faults;
  double horizon_s = 4.0 * 3600.0;  // fault/transfer window; sim runs longer
  int anneal_iterations = 60;

  bool operator==(const FuzzCase&) const = default;
};

struct GenOptions {
  int min_sites = 3;
  int max_sites = 9;
  int min_transfers = 1;
  int max_transfers = 10;
  double horizon_s = 4.0 * 3600.0;
  int anneal_iterations = 60;
  // Probability that a case carries a stochastic fault schedule at all
  // (fault-free cases keep the oracles honest on the clean path too).
  double fault_chance = 0.7;
};

// Random connected fiber plant: spanning tree plus extra chords, per-site
// port/regen budgets, per-fiber wavelength counts, and a reach short enough
// that some circuits need regeneration.
WanSpec GenWanSpec(util::Rng& rng, const GenOptions& options = {});

// Random transfer requests over the spec's sites, arriving in the first
// half of the horizon.
std::vector<core::Request> GenRequests(const WanSpec& spec, util::Rng& rng,
                                       const GenOptions& options = {});

// Stochastic fault schedule over the spec's plant (MTBF/MTTR renewal per
// component, see fault::GenerateFaultSchedule), scaled to the horizon.
fault::FaultSchedule GenFaults(const WanSpec& spec, util::Rng& rng,
                               const GenOptions& options = {});

// The composite generator: everything an oracle run needs, derived
// deterministically from one seed. Equal seeds give equal cases.
FuzzCase GenFuzzCase(uint64_t seed, const GenOptions& options = {});

// ---- helpers shared with the gtest property sweeps ----

// Named factory WANs by string key ("internet2", "isp", "interdc",
// anything else = the motivating example) — the parameterized property
// tests sweep over these alongside generated plants.
topo::Wan WanByName(const std::string& name);

// Seeded per-slot demand set over an arbitrary WAN: distinct endpoints,
// rates up to the wavelength capacity. The single generator implementation
// behind tests/property and the testkit oracles.
std::vector<core::TransferDemand> RandomDemands(const topo::Wan& wan,
                                                uint64_t seed, int count);

// Demands as the controller would derive them at slot start: everything
// has arrived, remaining = size, rate capped at remaining / slot.
std::vector<core::TransferDemand> DemandsFromRequests(
    const std::vector<core::Request>& requests, double slot_seconds);

}  // namespace owan::testkit

#endif  // OWAN_TESTKIT_GENERATORS_H_
