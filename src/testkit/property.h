#ifndef OWAN_TESTKIT_PROPERTY_H_
#define OWAN_TESTKIT_PROPERTY_H_

#include <functional>
#include <optional>
#include <string>

#include "testkit/generators.h"

namespace owan::testkit {

// A failed property check: which oracle fired and why. Oracles return
// nullopt when the case passes.
struct Failure {
  std::string oracle;
  std::string message;
};

// A property is any predicate over a FuzzCase. The testkit's oracles
// (oracles.h) are the canonical ones; tests compose their own freely.
using Property = std::function<std::optional<Failure>(const FuzzCase&)>;

// Runs `property`, converting a thrown std::exception into a Failure —
// during fuzzing and shrinking an exception IS a finding, not an abort.
std::optional<Failure> EvalProperty(const Property& property,
                                    const FuzzCase& c);

struct CheckOptions {
  int trials = 100;
  // Trial t checks the case generated from seed + t, so a failure is
  // reproducible with `--seed <failing_seed> --trials 1`.
  uint64_t seed = 1;
  GenOptions gen;
  bool shrink = true;
  int max_shrink_evals = 500;
};

struct CheckResult {
  bool ok = true;
  int trials_run = 0;
  // Populated on failure:
  uint64_t failing_seed = 0;
  Failure failure;        // the (re-checked) failure of the shrunk case
  FuzzCase original;      // the case as generated
  FuzzCase shrunk;        // the minimized case (== original when !shrink)
  int shrink_evals = 0;   // property evaluations the shrinker spent
  int shrink_steps = 0;   // accepted shrink moves
};

// The property-based test driver: generates `trials` seeded cases, checks
// each, and on the first failure minimizes the counterexample by greedy
// shrinking (shrink.h) before returning. Deterministic for fixed options.
CheckResult CheckProperty(const Property& property,
                          const CheckOptions& options = {});

}  // namespace owan::testkit

#endif  // OWAN_TESTKIT_PROPERTY_H_
