#ifndef OWAN_TESTKIT_ORACLES_H_
#define OWAN_TESTKIT_ORACLES_H_

#include <optional>
#include <string>

#include "sim/simulator.h"
#include "testkit/property.h"

namespace owan::testkit {

struct OracleOptions {
  // Relative tolerance for LP-vs-greedy comparisons (simplex and greedy
  // round differently).
  double tol = 1e-6;
  // The incremental evaluator is specified to match a fresh evaluation to
  // within double rounding; the differential oracle holds it to that.
  double exact_tol = 1e-9;
  // Candidate topologies the differential walk evaluates per case.
  int walk_steps = 40;
  double slot_seconds = 300.0;
  // Whether the invariant bundle runs each simulation twice and requires
  // bit-identical outcomes (the §3.4 failover-determinism contract).
  bool check_reproducibility = true;
};

// (a) LP bound oracle: degrade the plant with the case's fault prefix, run
// the full Owan search for one slot, then require the achieved allocation
// to be feasible on the realized topology, to stay under the exact
// node-arc MCF optimum (lp/arc_mcf.h), and to be positive whenever the LP
// optimum is (the lower-bound sanity floor: if anything can be delivered,
// the greedy delivers something).
std::optional<Failure> LpBoundOracle(const FuzzCase& c,
                                     const OracleOptions& options = {});

// (b) Brute-force differential oracle: drive EnergyEvaluator through a
// seeded accept/reject walk of neighbor candidates and re-derive every
// answer the expensive way — fresh ProvisionedState copy, full SyncTo,
// from-scratch path enumeration and allocation, no caches — requiring
// exact agreement on energy, failed units, and realized topology, plus
// clean optical invariants along the way.
std::optional<Failure> DifferentialOracle(const FuzzCase& c,
                                          const OracleOptions& options = {});

// (c) Invariant bundle: run the full simulator over the case's transfers
// and fault schedule (fault::InvariantChecker validates every committed
// interval) and require zero violations, in-bounds delivery, and — when
// check_reproducibility — a bit-identical second run.
std::optional<Failure> InvariantOracle(const FuzzCase& c,
                                       const OracleOptions& options = {});

// (d) Update-execution oracle: derive one slot reconfiguration from the
// case (degrade the plant with the fault prefix, route on the pre-update
// topology, anneal a target), then push it through the update executor
// three ways. Nominal actuation must converge to exactly the planned
// target with no retries and clean stage invariants. Seeded actuation
// faults must end in convergence or a rollback that restores the
// pre-update (topology, routes) pair bit-for-bit, stay invariant-clean
// throughout, and be reproducible run-to-run. Finally the run is crashed
// at half its intent log: the prefix is serialized, parsed back, and
// replayed into a fresh executor, which must finish bit-identically to
// the uninterrupted run (a lossy WAL writer fails here).
std::optional<Failure> UpdateExecOracle(const FuzzCase& c,
                                        const OracleOptions& options = {});

// (e) Admission oracle: derive a deadline-carrying request stream from the
// case (seeded deadline assignment over the case's transfers) and drive the
// streaming controller service (src/service) through it online. Checks:
// the admission ledger audits clean mid-run and at the end; every request
// reaches a final verdict (no transfer left undecided or stuck pending);
// no deadline transfer is admitted into an empty slot window (plan-level
// deadline feasibility); a same-input rerun is bit-identical (fingerprint
// and full result view); and a run crashed at half its stream, restored
// from the v4 checkpoint text alone, finishes bit-identically to the
// uninterrupted run.
std::optional<Failure> AdmissionOracle(const FuzzCase& c,
                                       const OracleOptions& options = {});

// (f) QoT physics oracle: re-derive every provisioned circuit's segment
// SNR with an independent reimplementation of the span model (own span
// layout, own noise accumulation) and require agreement with the plant's
// stored values; require stored capacities to be consistent with the
// modulation table (theta-capped tier of the stored SNR, positive, minimum
// over segments); require physics monotonicity (extending a route never
// raises SNR; a regenerated circuit never carries less than the same
// route graded as one unregenerated segment); require degradation
// monotonicity (extra span attenuation never raises any surviving
// circuit's capacity, and the plant invariants stay clean); and require
// legacy equivalence (a plant carrying disabled QoT options anneals to
// bit-identical energy, topology, and circuits as one that never saw
// them). QoT parameters are derived deterministically from the case seed,
// so the case format is unchanged and shrinking works as-is.
std::optional<Failure> QotOracle(const FuzzCase& c,
                                 const OracleOptions& options = {});

// The enabled oracles in sequence (cheapest first); the first failure
// wins. Any subset can be disabled for focused fuzzing.
Property MakeOracleProperty(bool lp, bool differential, bool invariant,
                            const OracleOptions& options = {},
                            bool update_exec = false,
                            bool admission = false,
                            bool qot = false);
inline Property AllOracles(const OracleOptions& options = {}) {
  return MakeOracleProperty(true, true, true, options);
}
// Focused property for `owan_fuzz --suite admission`.
Property MakeAdmissionProperty(const OracleOptions& options = {});
// Focused property for `owan_fuzz --suite qot`.
Property MakeQotProperty(const OracleOptions& options = {});

// Field-by-field equality of two simulation outcomes (transfer records,
// throughput series, availability metrics, update-execution metrics). On
// mismatch returns false and names the first difference in `why`. Shared
// by the invariant oracle and tools/fault_stress.
bool SameSimResult(const sim::SimResult& a, const sim::SimResult& b,
                   std::string* why);

}  // namespace owan::testkit

#endif  // OWAN_TESTKIT_ORACLES_H_
