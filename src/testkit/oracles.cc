#include "testkit/oracles.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <algorithm>

#include "core/annealing.h"
#include "core/energy_evaluator.h"
#include "core/owan.h"
#include "core/provisioned_state.h"
#include "core/routing.h"
#include "fault/fault_injector.h"
#include "lp/arc_mcf.h"
#include "service/service.h"
#include "te/greedy.h"
#include "update/executor.h"
#include "util/rng.h"

namespace owan::testkit {

namespace {

std::string Describe(const FuzzCase& c) {
  std::ostringstream os;
  os << "[seed " << c.seed << ", " << c.wan.NumSites() << " sites, "
     << c.wan.NumFibers() << " fibers, " << c.transfers.size()
     << " transfers, " << c.faults.size() << " fault events]";
  return os.str();
}

// Checks that an allocation set is feasible on the graph it was computed
// for: every path connects its transfer's endpoints over existing edges,
// no edge carries more than its capacity, no transfer exceeds its cap.
std::optional<std::string> CheckAllocationFeasible(
    const net::Graph& g, const std::vector<core::TransferDemand>& demands,
    const std::vector<core::TransferAllocation>& allocations, double tol) {
  if (allocations.size() != demands.size()) {
    return "allocation count " + std::to_string(allocations.size()) +
           " != demand count " + std::to_string(demands.size());
  }
  std::vector<double> used(static_cast<size_t>(g.NumEdges()), 0.0);
  for (size_t i = 0; i < allocations.size(); ++i) {
    const core::TransferAllocation& a = allocations[i];
    for (const core::PathAllocation& pa : a.paths) {
      if (pa.rate < 0.0) {
        return "negative rate on transfer " + std::to_string(demands[i].id);
      }
      if (pa.path.src() != demands[i].src || pa.path.dst() != demands[i].dst) {
        return "path of transfer " + std::to_string(demands[i].id) +
               " does not connect its endpoints";
      }
      for (size_t h = 0; h < pa.path.edges.size(); ++h) {
        const net::EdgeId e = pa.path.edges[h];
        if (e < 0 || e >= g.NumEdges()) {
          return "transfer " + std::to_string(demands[i].id) +
                 " rides a nonexistent edge";
        }
        used[static_cast<size_t>(e)] += pa.rate;
      }
    }
    if (a.TotalRate() > demands[i].rate_cap + tol) {
      return "transfer " + std::to_string(demands[i].id) +
             " exceeds its rate cap";
    }
  }
  for (net::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (used[static_cast<size_t>(e)] > g.edge(e).capacity + tol) {
      return "edge " + std::to_string(e) + " over capacity (" +
             std::to_string(used[static_cast<size_t>(e)]) + " > " +
             std::to_string(g.edge(e).capacity) + ")";
    }
  }
  return std::nullopt;
}

// Field-by-field equality of two executor outcomes; returns the name of
// the first differing field, nullopt when bit-identical.
std::optional<std::string> SameExecResult(const update::ExecResult& a,
                                          const update::ExecResult& b) {
  if (a.outcome != b.outcome) return "outcome";
  if (a.makespan != b.makespan) return "makespan";
  if (!(a.final_topology == b.final_topology)) return "final topology";
  if (!(a.final_routes == b.final_routes)) return "final routes";
  if (!(a.stats == b.stats)) return "stats";
  if (!(a.log == b.log)) return "intent log";
  return std::nullopt;
}

}  // namespace

std::optional<Failure> LpBoundOracle(const FuzzCase& c,
                                     const OracleOptions& options) {
  topo::Wan wan = c.wan.Build();
  const std::vector<core::TransferDemand> demands =
      DemandsFromRequests(c.transfers, options.slot_seconds);
  if (demands.empty()) return std::nullopt;

  // Degrade the plant with the first half of the fault window, so the
  // bound is also exercised on shrunken, post-failure topologies.
  optical::OpticalNetwork plant = wan.optical;
  for (const fault::FaultEvent& e : c.faults.events) {
    if (e.time > c.horizon_s * 0.5) break;
    fault::ApplyPlantEvent(e, plant);
  }
  const core::Topology start =
      fault::RecomputeTopology(wan.default_topology, plant,
                               /*repair_dark_ports=*/true);

  core::AnnealOptions ao;
  ao.max_iterations = c.anneal_iterations;
  util::Rng rng(c.seed * 2654435761ULL + 1);
  const core::AnnealResult res =
      core::ComputeNetworkState(start, plant, demands, ao, rng);
  if (!res.state.has_value()) {
    return Failure{"lp", "annealing returned no provisioned state " +
                             Describe(c)};
  }
  const net::Graph g = res.state->CapacityGraph();
  const double achieved = res.routing.throughput;

  if (auto bad =
          CheckAllocationFeasible(g, demands, res.routing.allocations,
                                  options.tol)) {
    return Failure{"lp", "infeasible allocation: " + *bad + " " +
                             Describe(c)};
  }

  std::vector<lp::Commodity> commodities;
  commodities.reserve(demands.size());
  for (const core::TransferDemand& d : demands) {
    commodities.push_back({d.src, d.dst, d.rate_cap});
  }
  const lp::ArcMcfResult bound = lp::ArcMcfMaxThroughput(g, commodities);
  if (bound.status != lp::LpStatus::kOptimal) {
    return Failure{"lp", "arc MCF did not solve to optimality " +
                             Describe(c)};
  }
  const double slack = options.tol * (1.0 + std::abs(bound.throughput));
  if (achieved > bound.throughput + slack) {
    std::ostringstream os;
    os << "greedy throughput " << achieved << " exceeds LP max-flow bound "
       << bound.throughput << " " << Describe(c);
    return Failure{"lp", os.str()};
  }
  if (bound.throughput > options.tol && achieved <= 0.0) {
    std::ostringstream os;
    os << "LP optimum is " << bound.throughput
       << " but the greedy delivered nothing " << Describe(c);
    return Failure{"lp", os.str()};
  }
  return std::nullopt;
}

std::optional<Failure> DifferentialOracle(const FuzzCase& c,
                                          const OracleOptions& options) {
  topo::Wan wan = c.wan.Build();
  const std::vector<core::TransferDemand> demands =
      DemandsFromRequests(c.transfers, options.slot_seconds);
  if (demands.empty()) return std::nullopt;
  static const std::vector<size_t> kNoStarved;
  const core::RoutingOptions ropt;

  core::EnergyEvaluator eval;
  const auto& base = eval.Reset(wan.optical, wan.default_topology, demands,
                                kNoStarved, ropt);

  core::ProvisionedState cur(wan.optical);
  cur.SyncTo(wan.default_topology);
  {
    const core::RoutingOutcome ro =
        core::AssignRoutesAndRates(cur.CapacityGraph(), demands, ropt);
    if (std::abs(base.energy - ro.throughput) > options.exact_tol) {
      std::ostringstream os;
      os << "base energy " << base.energy << " != fresh " << ro.throughput
         << " " << Describe(c);
      return Failure{"differential", os.str()};
    }
  }

  core::Topology cur_topo = wan.default_topology;
  util::Rng rng(c.seed ^ 0xd1ffe7e7ULL);
  for (int step = 0; step < options.walk_steps; ++step) {
    const std::optional<core::Topology> nb =
        core::ComputeNeighbor(cur_topo, rng);
    if (!nb.has_value()) break;  // too few links to move

    const auto& ev = eval.Apply(*nb);
    core::ProvisionedState fresh = cur;
    const int fresh_failed = fresh.SyncTo(*nb);
    const core::RoutingOutcome ro =
        core::AssignRoutesAndRates(fresh.CapacityGraph(), demands, ropt);

    if (std::abs(ev.energy - ro.throughput) > options.exact_tol) {
      std::ostringstream os;
      os << "step " << step << ": incremental energy " << ev.energy
         << " != brute-force " << ro.throughput
         << (ev.memo_hit ? " (memo hit)" : "") << " " << Describe(c);
      return Failure{"differential", os.str()};
    }
    if (ev.failed_units != fresh_failed) {
      std::ostringstream os;
      os << "step " << step << ": failed units " << ev.failed_units
         << " != brute-force " << fresh_failed << " " << Describe(c);
      return Failure{"differential", os.str()};
    }
    if (!(eval.state().realized() == fresh.realized())) {
      return Failure{"differential",
                     "step " + std::to_string(step) +
                         ": realized topology diverged from brute-force " +
                         Describe(c)};
    }

    if (rng.Chance(0.5)) {
      eval.Accept();
      cur = std::move(fresh);
      cur_topo = *nb;
    } else {
      eval.Reject();
      if (!(eval.state().realized() == cur.realized())) {
        return Failure{"differential",
                       "step " + std::to_string(step) +
                           ": rollback did not restore the prior state " +
                           Describe(c)};
      }
    }
    if (step % 8 == 7) {
      std::string err;
      if (!eval.state().optical().CheckInvariants(&err)) {
        return Failure{"differential",
                       "step " + std::to_string(step) +
                           ": optical invariants violated: " + err + " " +
                           Describe(c)};
      }
    }
  }
  return std::nullopt;
}

std::optional<Failure> InvariantOracle(const FuzzCase& c,
                                       const OracleOptions& options) {
  if (c.transfers.empty()) return std::nullopt;
  topo::Wan wan = c.wan.Build();

  core::OwanOptions oo;
  oo.seed = c.seed;
  oo.slot_seeded = true;  // failover-stateless: required for replayability
  oo.anneal.max_iterations = c.anneal_iterations;

  sim::SimOptions so;
  so.slot_seconds = options.slot_seconds;
  so.faults = c.faults;
  so.max_time_s = c.horizon_s + 12.0 * 3600.0;
  so.check_invariants = true;

  core::OwanTe te(oo);
  const sim::SimResult a = sim::RunSimulation(wan, c.transfers, te, so);
  if (!a.invariant_violations.empty()) {
    return Failure{"invariant",
                   std::to_string(a.invariant_violations.size()) +
                       " violation(s), first: " +
                       a.invariant_violations.front() + " " + Describe(c)};
  }
  for (const sim::TransferRecord& t : a.transfers) {
    if (t.delivered > t.request.size + options.tol) {
      return Failure{"invariant",
                     "transfer " + std::to_string(t.request.id) +
                         " delivered more than its size " + Describe(c)};
    }
  }
  if (options.check_reproducibility) {
    core::OwanTe te2(oo);
    const sim::SimResult b = sim::RunSimulation(wan, c.transfers, te2, so);
    std::string why;
    if (!SameSimResult(a, b, &why)) {
      return Failure{"invariant",
                     "run not bit-reproducible: " + why + " " + Describe(c)};
    }
  }
  return std::nullopt;
}

std::optional<Failure> UpdateExecOracle(const FuzzCase& c,
                                        const OracleOptions& options) {
  topo::Wan wan = c.wan.Build();
  const std::vector<core::TransferDemand> demands =
      DemandsFromRequests(c.transfers, options.slot_seconds);
  if (demands.empty()) return std::nullopt;

  // One slot reconfiguration, derived like the LP oracle: degrade the
  // plant with the first half of the fault window, route the demands on
  // the surviving topology (the routes "in force" before the update),
  // then anneal a target for the same demands.
  optical::OpticalNetwork plant = wan.optical;
  for (const fault::FaultEvent& e : c.faults.events) {
    if (e.time > c.horizon_s * 0.5) break;
    fault::ApplyPlantEvent(e, plant);
  }
  const core::Topology from =
      fault::RecomputeTopology(wan.default_topology, plant,
                               /*repair_dark_ports=*/true);

  const core::RoutingOptions ropt;
  core::ProvisionedState pre(plant);
  pre.SyncTo(from);
  const core::RoutingOutcome pre_ro =
      core::AssignRoutesAndRates(pre.CapacityGraph(), demands, ropt);

  core::AnnealOptions ao;
  ao.max_iterations = c.anneal_iterations;
  util::Rng rng(c.seed * 2654435761ULL + 17);
  const core::AnnealResult res =
      core::ComputeNetworkState(from, plant, demands, ao, rng);
  if (!res.state.has_value()) {
    return Failure{"update",
                   "annealing returned no provisioned state " + Describe(c)};
  }
  const core::Topology to = res.state->realized();

  update::ExecutorInput base;
  base.from = from;
  base.plan =
      update::BuildUpdatePlan(from, to, pre_ro.allocations,
                              res.routing.allocations);
  base.old_routes = pre_ro.allocations;
  base.new_routes = res.routing.allocations;
  base.spare_ports.assign(static_cast<size_t>(plant.NumSites()), 0);
  for (net::NodeId v = 0; v < plant.NumSites(); ++v) {
    base.spare_ports[static_cast<size_t>(v)] =
        std::max(0, plant.UsablePorts(v) - from.PortsUsed(v));
  }
  update::ExecutorOptions eopts;
  eopts.theta = wan.optical.wavelength_capacity();

  // (1) Nominal actuation lands the plan exactly as scheduled.
  {
    const update::ExecResult r =
        update::UpdateExecutor::ExecutePlan(base, eopts);
    if (r.outcome != update::ExecOutcome::kConverged) {
      return Failure{"update", "nominal execution aborted " + Describe(c)};
    }
    if (!(r.final_topology == to)) {
      return Failure{"update",
                     "nominal run missed the target topology " + Describe(c)};
    }
    if (!r.invariant_violations.empty()) {
      return Failure{"update", "nominal stage violation: " +
                                   r.invariant_violations.front() + " " +
                                   Describe(c)};
    }
    if (r.stats.retries != 0 || r.stats.failed_ops != 0) {
      return Failure{"update",
                     "nominal run retried or failed ops " + Describe(c)};
    }
  }

  // (2) Seeded actuation faults: converge or roll back cleanly, with
  // every intermediate stage invariant-clean, reproducibly.
  update::ExecutorOptions fopts = eopts;
  fopts.actuation.seed = c.seed ^ 0xac7a710ULL;
  fopts.actuation.circuit_failure_prob = 0.15;
  fopts.actuation.route_failure_prob = 0.05;
  fopts.actuation.latency_cv = 0.3;
  fopts.actuation.straggler_prob = 0.05;
  const update::ExecResult f1 =
      update::UpdateExecutor::ExecutePlan(base, fopts);
  if (!f1.invariant_violations.empty()) {
    return Failure{"update", "stage violation under faults: " +
                                 f1.invariant_violations.front() + " " +
                                 Describe(c)};
  }
  if (f1.outcome == update::ExecOutcome::kAborted) {
    if (!(f1.final_topology == base.from)) {
      return Failure{"update",
                     "abort did not restore the pre-update topology " +
                         Describe(c)};
    }
    if (!(f1.final_routes == base.old_routes)) {
      return Failure{"update",
                     "abort did not restore the pre-update routes " +
                         Describe(c)};
    }
  }
  const update::ExecResult f2 =
      update::UpdateExecutor::ExecutePlan(base, fopts);
  if (auto d = SameExecResult(f1, f2)) {
    return Failure{"update",
                   "faulty rerun not bit-identical: " + *d + " " +
                       Describe(c)};
  }

  // (3) Crash mid-update: persist the first half of the intent log the
  // way the controller checkpoint does (Serialize -> Parse), replay it
  // into a fresh executor, and finish. A WAL writer that loses records
  // (--inject-bug wal) breaks the round-trip and diverges here.
  update::IntentLog prefix;
  prefix.records.assign(f1.log.records.begin(),
                        f1.log.records.begin() +
                            static_cast<long>(f1.log.records.size() / 2));
  const update::IntentLog persisted =
      update::IntentLog::Parse(prefix.Serialize());
  update::UpdateExecutor resumed(base, fopts);
  resumed.Replay(persisted);
  update::ExecResult f3 = resumed.Finish();
  if (auto d = SameExecResult(f1, f3)) {
    return Failure{"update",
                   "crash-resume diverged from the uninterrupted run: " +
                       *d + " " + Describe(c)};
  }
  return std::nullopt;
}

std::optional<Failure> AdmissionOracle(const FuzzCase& c,
                                       const OracleOptions& options) {
  const topo::Wan wan = c.wan.Build();
  auto fail = [&](const std::string& msg) {
    return Failure{"admission", msg + " " + Describe(c)};
  };

  // The case's transfers become the request stream; a seeded pass assigns
  // most of them deadlines so the admission path (window math, pending
  // queue, bookings) actually exercises. Ids are renumbered after the
  // arrival sort so shrunk cases can never alias two records.
  std::vector<core::Request> reqs = c.transfers;
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const core::Request& a, const core::Request& b) {
                     return a.arrival < b.arrival;
                   });
  util::Rng rng(c.seed * 0x9e3779b97f4a7c15ULL + 0xada);
  for (size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].id = static_cast<int>(i);
    if (rng.Chance(0.7)) {
      reqs[i].deadline =
          reqs[i].arrival +
          options.slot_seconds * static_cast<double>(rng.UniformInt(1, 8));
    }
  }

  service::ServiceOptions sopt;
  sopt.slot_seconds = options.slot_seconds;
  sopt.mode = service::ServiceMode::kOnline;
  const auto build = [&] {
    service::ControllerService svc(
        &wan, std::make_unique<te::GreedyOwanTe>(), sopt);
    for (const core::Request& r : reqs) svc.Submit(r);
    return svc;
  };
  const uint64_t half = (reqs.size() + 1) / 2;

  // (1) Full run; the reservation ledger must audit clean both mid-run and
  // after the queue drains, and every request must reach a final verdict.
  service::ControllerService a = build();
  a.RunUntilIngested(half);
  if (auto v = a.admission().Audit(); !v.empty()) {
    return fail("mid-run ledger drift: " + v.front());
  }
  a.Run();
  if (auto v = a.admission().Audit(); !v.empty()) {
    return fail("final ledger drift: " + v.front());
  }
  if (a.stats().requests != reqs.size()) {
    return fail("ingested " + std::to_string(a.stats().requests) + " of " +
                std::to_string(reqs.size()) + " requests");
  }
  if (a.stats().admitted + a.stats().rejected != reqs.size() ||
      a.pending_requests() != 0) {
    return fail("requests left undecided after the stream drained");
  }

  // (2) Plan-level deadline feasibility: admission must never book a
  // deadline transfer whose window holds no whole slot.
  const sim::SimResult result = a.ToSimResult();
  for (const sim::TransferRecord& t : result.transfers) {
    if (!t.request.HasDeadline() || !t.admitted) continue;
    const int64_t first = static_cast<int64_t>(
        std::ceil((t.request.arrival - 1e-9) / options.slot_seconds));
    const int64_t last =
        static_cast<int64_t>(
            std::floor(t.request.deadline / options.slot_seconds)) -
        1;
    if (last < first) {
      return fail("transfer " + std::to_string(t.request.id) +
                  " admitted into an empty deadline window");
    }
  }

  // (3) Bit-reproducible decisions: a second run over the same stream must
  // match fingerprint and the full per-transfer outcome view.
  service::ControllerService b = build();
  b.Run();
  std::string why;
  if (a.Fingerprint() != b.Fingerprint()) {
    return fail("same-input rerun changed the decision fingerprint");
  }
  if (!SameSimResult(result, b.ToSimResult(), &why)) {
    return fail("same-input rerun diverged: " + why);
  }

  // (4) Crash/resume: snapshot at half the stream, restore from the
  // checkpoint text alone, and finish — bit-identical to the uninterrupted
  // run (this is what makes the v4 epoch snapshots trustworthy).
  service::ControllerService crashed = build();
  crashed.RunUntilIngested(half);
  const std::string snapshot = crashed.Checkpoint();
  service::ControllerService resumed = service::ControllerService::Restore(
      &wan, std::make_unique<te::GreedyOwanTe>(), snapshot, sopt);
  if (resumed.Fingerprint() != crashed.Fingerprint()) {
    return fail("restore changed the live fingerprint");
  }
  resumed.Run();
  if (resumed.Fingerprint() != a.Fingerprint()) {
    return fail("crash/restore run changed the decision fingerprint");
  }
  if (!SameSimResult(result, resumed.ToSimResult(), &why)) {
    return fail("crash/restore run diverged: " + why);
  }
  return std::nullopt;
}

namespace {

// ---- QoT oracle: independent reference physics ----
// A second implementation of the documented span model (docs/DESIGN.md,
// optical/qot.h): full spans of span_km plus a remainder, per-span OSNR
// 58 + tx - loss*len - extra - NF, linear inverse-OSNR accumulation,
// margin-adjusted SNR. Deliberately NOT calling optical::FiberInverseOsnr —
// the whole point is to catch a production implementation that drifts from
// the spec (e.g. an injected skip of one span's noise).
double RefSpanOsnrDb(double span_len_km, double extra_db,
                     const optical::QotOptions& q) {
  return 58.0 + q.tx_power_dbm - q.fiber_loss_db_per_km * span_len_km -
         extra_db - q.amp_noise_figure_db;
}

double RefPathSnrDb(const optical::OpticalNetwork& plant,
                    const std::vector<net::EdgeId>& fibers,
                    const optical::QotOptions& q) {
  double inv = 0.0;
  for (net::EdgeId f : fibers) {
    const double len = plant.fiber(f).length_km;
    const int full = static_cast<int>(len / q.span_km);
    const double rem = len - full * q.span_km;
    const int spans = full + (rem > 1e-9 ? 1 : 0);
    const double extra =
        spans > 0 ? plant.FiberDegradationDb(f) / spans : 0.0;
    for (int i = 0; i < full; ++i) {
      inv += std::pow(10.0, -RefSpanOsnrDb(q.span_km, extra, q) / 10.0);
    }
    if (rem > 1e-9) {
      inv += std::pow(10.0, -RefSpanOsnrDb(rem, extra, q) / 10.0);
    }
  }
  if (inv <= 0.0) return std::numeric_limits<double>::infinity();
  return -10.0 * std::log10(inv) - q.snr_margin_db;
}

// QoT parameters as a pure function of the case seed: the case format (and
// with it case_io and the shrinker) stays untouched, yet fuzzing still
// sweeps span lengths, margins, and loss coefficients.
optical::QotOptions DeriveQot(uint64_t seed) {
  optical::QotOptions q;
  q.enabled = true;
  q.span_km = 60.0 + 20.0 * static_cast<double>(seed % 3);
  q.snr_margin_db = 1.0 + 0.5 * static_cast<double>((seed / 3) % 3);
  q.fiber_loss_db_per_km =
      0.22 + 0.015 * static_cast<double>((seed / 9) % 3);
  return q;
}

}  // namespace

std::optional<Failure> QotOracle(const FuzzCase& c,
                                 const OracleOptions& options) {
  topo::Wan wan = c.wan.Build();
  auto fail = [&](const std::string& m) {
    return Failure{"qot", m + " " + Describe(c)};
  };
  const optical::QotOptions q = DeriveQot(c.seed);
  const std::vector<core::TransferDemand> demands =
      DemandsFromRequests(c.transfers, options.slot_seconds);

  // (1) Legacy equivalence: a plant tagged with *disabled* QoT options must
  // be byte-invisible — same annealed energy, topology, and circuits as a
  // plant that never saw them.
  if (!demands.empty()) {
    optical::OpticalNetwork tagged = wan.optical;
    optical::QotOptions off = q;
    off.enabled = false;
    tagged.set_qot(off);
    core::AnnealOptions ao;
    ao.max_iterations = c.anneal_iterations;
    util::Rng rng_plain(c.seed * 2654435761ULL + 7);
    util::Rng rng_tagged(c.seed * 2654435761ULL + 7);
    const core::AnnealResult plain = core::ComputeNetworkState(
        wan.default_topology, wan.optical, demands, ao, rng_plain);
    const core::AnnealResult with_tag = core::ComputeNetworkState(
        wan.default_topology, tagged, demands, ao, rng_tagged);
    if (plain.best_energy != with_tag.best_energy) {
      return fail("disabled QoT changed annealed energy");
    }
    if (!(plain.best_topology == with_tag.best_topology)) {
      return fail("disabled QoT changed the adopted topology");
    }
    if (plain.state.has_value() != with_tag.state.has_value()) {
      return fail("disabled QoT changed state presence");
    }
    if (plain.state.has_value()) {
      const auto& ca = plain.state->optical().circuits();
      const auto& cb = with_tag.state->optical().circuits();
      if (ca.size() != cb.size()) {
        return fail("disabled QoT changed the circuit count");
      }
      auto ib = cb.begin();
      for (auto ia = ca.begin(); ia != ca.end(); ++ia, ++ib) {
        if (ia->first != ib->first ||
            ToString(ia->second) != ToString(ib->second) ||
            ia->second.capacity_gbps != ib->second.capacity_gbps) {
          return fail("disabled QoT changed circuit " +
                      std::to_string(ia->first));
        }
      }
    }
  }

  // Build the QoT-enabled plant, degrade it with the case's fault prefix
  // (mirroring the LP oracle), and realize the default topology on it.
  optical::OpticalNetwork qplant = wan.optical;
  qplant.set_qot(q);
  for (const fault::FaultEvent& e : c.faults.events) {
    if (e.time > c.horizon_s * 0.5) break;
    fault::ApplyPlantEvent(e, qplant);
  }
  core::ProvisionedState st(qplant);
  st.SyncTo(fault::RecomputeTopology(wan.default_topology, qplant,
                                     /*repair_dark_ports=*/true));
  const optical::OpticalNetwork& plant = st.optical();
  std::string err;
  if (!plant.CheckInvariants(&err)) {
    return fail("QoT plant invariants broken after realization: " + err);
  }
  const double theta = plant.wavelength_capacity();

  for (const auto& [id, circuit] : plant.circuits()) {
    // (2) Reference physics: stored per-segment SNR must match the
    // independent span-model reimplementation.
    double min_tier = theta;
    for (const optical::Segment& s : circuit.segments) {
      const double ref = RefPathSnrDb(plant, s.fibers, q);
      const bool both_inf = std::isinf(ref) && std::isinf(s.snr_db);
      if (!both_inf &&
          !(std::abs(ref - s.snr_db) <=
            1e-9 * std::max(1.0, std::abs(ref)))) {
        std::ostringstream os;
        os << "segment SNR of circuit " << id
           << " disagrees with reference physics (stored " << s.snr_db
           << " dB, reference " << ref << " dB)";
        return fail(os.str());
      }
      min_tier =
          std::min(min_tier, optical::CapacityForSnrGbps(s.snr_db, q));
    }
    // (3) Tier consistency: capacity is the theta-capped minimum tier over
    // the segments, and a live circuit never carries zero.
    if (circuit.capacity_gbps != min_tier) {
      return fail("capacity of circuit " + std::to_string(id) +
                  " is out of step with the modulation table");
    }
    if (circuit.capacity_gbps <= 0.0) {
      return fail("zero-capacity circuit " + std::to_string(id) +
                  " left live");
    }
    // (4) Span monotonicity: SNR along every route prefix never rises as
    // fibers are appended.
    for (const optical::Segment& s : circuit.segments) {
      std::vector<net::EdgeId> prefix;
      double prev = std::numeric_limits<double>::infinity();
      for (net::EdgeId f : s.fibers) {
        prefix.push_back(f);
        const double snr = plant.PathSnrDb(prefix);
        if (snr > prev) {
          return fail("appending fiber " + std::to_string(f) +
                      " raised SNR on circuit " + std::to_string(id));
        }
        prev = snr;
      }
    }
    // (5) Regen monotonicity: grading the concatenated route as one
    // segment can never beat the regenerated circuit (each regen resets
    // the accumulated noise).
    if (circuit.segments.size() > 1) {
      std::vector<net::EdgeId> all;
      for (const optical::Segment& s : circuit.segments) {
        all.insert(all.end(), s.fibers.begin(), s.fibers.end());
      }
      const double unsplit = std::min(
          theta, optical::CapacityForSnrGbps(plant.PathSnrDb(all), q));
      if (unsplit > circuit.capacity_gbps) {
        return fail("regeneration lowered capacity on circuit " +
                    std::to_string(id));
      }
    }
  }

  // (6) Degradation monotonicity: extra attenuation on a crossed fiber
  // never raises any surviving circuit's capacity, torn-down victims are
  // exactly the zero-tier circuits, and the invariants stay clean.
  if (!plant.circuits().empty()) {
    const net::EdgeId victim_fiber =
        plant.circuits().begin()->second.segments.front().fibers.front();
    const double db = 3.0 + static_cast<double>(c.seed % 5);
    std::map<optical::CircuitId, double> before;
    for (const auto& [id, circuit] : plant.circuits()) {
      before.emplace(id, circuit.capacity_gbps);
    }
    optical::OpticalNetwork degraded = plant;
    const std::vector<optical::CircuitId> victims =
        degraded.DegradeFiber(victim_fiber, db);
    if (!degraded.CheckInvariants(&err)) {
      return fail("plant invariants broken after span degradation: " + err);
    }
    for (const auto& [id, circuit] : degraded.circuits()) {
      if (circuit.capacity_gbps > before.at(id)) {
        return fail("span degradation raised capacity of circuit " +
                    std::to_string(id));
      }
    }
    for (optical::CircuitId v : victims) {
      if (degraded.circuits().count(v)) {
        return fail("torn-down circuit " + std::to_string(v) +
                    " still live after degradation");
      }
      if (!before.count(v)) {
        return fail("degradation reported an unknown victim circuit " +
                    std::to_string(v));
      }
    }
  }

  return std::nullopt;
}

Property MakeOracleProperty(bool lp, bool differential, bool invariant,
                            const OracleOptions& options, bool update_exec,
                            bool admission, bool qot) {
  return [=](const FuzzCase& c) -> std::optional<Failure> {
    if (differential) {
      if (auto f = DifferentialOracle(c, options)) return f;
    }
    if (lp) {
      if (auto f = LpBoundOracle(c, options)) return f;
    }
    if (invariant) {
      if (auto f = InvariantOracle(c, options)) return f;
    }
    if (qot) {
      if (auto f = QotOracle(c, options)) return f;
    }
    if (update_exec) {
      if (auto f = UpdateExecOracle(c, options)) return f;
    }
    if (admission) {
      if (auto f = AdmissionOracle(c, options)) return f;
    }
    return std::nullopt;
  };
}

Property MakeAdmissionProperty(const OracleOptions& options) {
  return MakeOracleProperty(false, false, false, options, false, true);
}

Property MakeQotProperty(const OracleOptions& options) {
  return [=](const FuzzCase& c) -> std::optional<Failure> {
    return QotOracle(c, options);
  };
}

bool SameSimResult(const sim::SimResult& a, const sim::SimResult& b,
                   std::string* why) {
  if (a.transfers.size() != b.transfers.size()) {
    *why = "transfer count differs";
    return false;
  }
  for (size_t i = 0; i < a.transfers.size(); ++i) {
    const sim::TransferRecord& x = a.transfers[i];
    const sim::TransferRecord& y = b.transfers[i];
    if (x.completed != y.completed || x.completed_at != y.completed_at ||
        x.delivered != y.delivered || x.stalled_s != y.stalled_s) {
      *why = "transfer " + std::to_string(x.request.id) + " outcome differs";
      return false;
    }
  }
  if (a.slot_throughput != b.slot_throughput) {
    *why = "slot throughput series differs";
    return false;
  }
  if (a.recovery_seconds != b.recovery_seconds ||
      a.fault_events != b.fault_events ||
      a.gigabits_lost_to_faults != b.gigabits_lost_to_faults) {
    *why = "availability metrics differ";
    return false;
  }
  if (a.updates_executed != b.updates_executed ||
      a.update_aborts != b.update_aborts ||
      a.update_retries != b.update_retries ||
      a.update_forced_ops != b.update_forced_ops ||
      a.update_exec_seconds != b.update_exec_seconds) {
    *why = "update execution metrics differ";
    return false;
  }
  return true;
}

}  // namespace owan::testkit
