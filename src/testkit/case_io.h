#ifndef OWAN_TESTKIT_CASE_IO_H_
#define OWAN_TESTKIT_CASE_IO_H_

#include <iosfwd>
#include <string>

#include "testkit/generators.h"

namespace owan::testkit {

// FuzzCase as line-oriented text, in the same spirit (and with the same
// fault-event grammar) as fault::schedule_io:
//
//   # owan_fuzz case (seed 42)
//   seed 42
//   horizon 14400
//   anneal 60
//   theta 10
//   reach 2000
//   sites 5
//   site 4 2                  # router_ports regenerators
//   ...
//   fibers 6
//   fiber 0 1 350.5 8         # u v length_km num_wavelengths
//   ...
//   transfers 2
//   transfer 0 1 4 1234.5 600 -1   # id src dst size arrival deadline
//   ...
//   faults 3
//   450 fiber-cut 3           # schedule_io event lines
//   ...
//
// Doubles are written with max_digits10 so Parse(Format(c)) == c exactly.
// Parse throws std::invalid_argument on malformed input.
std::string FormatFuzzCase(const FuzzCase& c);
FuzzCase ParseFuzzCase(std::istream& in);
FuzzCase ParseFuzzCase(const std::string& text);

}  // namespace owan::testkit

#endif  // OWAN_TESTKIT_CASE_IO_H_
