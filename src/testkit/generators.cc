#include "testkit/generators.h"

#include <algorithm>

#include "fault/fault_generator.h"

namespace owan::testkit {

WanSpec GenWanSpec(util::Rng& rng, const GenOptions& options) {
  WanSpec spec;
  const int n = rng.UniformInt(options.min_sites, options.max_sites);
  spec.wavelength_gbps = 10.0;
  // Short enough that some multi-hop circuits need a regeneration stop.
  spec.reach_km = rng.Uniform(900.0, 2400.0);
  spec.sites.resize(static_cast<size_t>(n));
  for (SiteSpec& s : spec.sites) {
    s.router_ports = 2 + static_cast<int>(rng.Index(5));   // 2..6
    s.regenerators = static_cast<int>(rng.Index(5));       // 0..4
  }
  // Connected by construction: spanning tree first, then random chords.
  for (int v = 1; v < n; ++v) {
    FiberSpec f;
    f.u = static_cast<int>(rng.Index(static_cast<size_t>(v)));
    f.v = v;
    f.length_km = rng.Uniform(80.0, 1200.0);
    f.num_wavelengths = 4 + static_cast<int>(rng.Index(9));  // 4..12
    spec.fibers.push_back(f);
  }
  const int chords = static_cast<int>(rng.Index(static_cast<size_t>(n + 1)));
  for (int c = 0; c < chords; ++c) {
    FiberSpec f;
    f.u = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    f.v = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    if (f.u == f.v) continue;  // skip rather than reroll: keeps draws fixed
    f.length_km = rng.Uniform(80.0, 1200.0);
    f.num_wavelengths = 4 + static_cast<int>(rng.Index(9));
    spec.fibers.push_back(f);
  }
  return spec;
}

std::vector<core::Request> GenRequests(const WanSpec& spec, util::Rng& rng,
                                       const GenOptions& options) {
  const int n = spec.NumSites();
  const int count =
      rng.UniformInt(options.min_transfers, options.max_transfers);
  std::vector<core::Request> reqs;
  reqs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::Request r;
    r.id = i;
    r.src = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    r.dst = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    if (r.dst == r.src) r.dst = (r.dst + 1) % n;
    r.size = rng.Uniform(500.0, 20000.0);
    const int slots = std::max(1, static_cast<int>(options.horizon_s / 600.0));
    r.arrival = 300.0 * static_cast<double>(rng.Index(
                            static_cast<size_t>(slots)));
    reqs.push_back(r);
  }
  return reqs;
}

fault::FaultSchedule GenFaults(const WanSpec& spec, util::Rng& rng,
                               const GenOptions& options) {
  fault::FaultGeneratorOptions fg;
  fg.seed = rng.engine()();
  fg.horizon_s = options.horizon_s;
  fg.fiber = {options.horizon_s * rng.Uniform(0.5, 2.0), 900.0};
  fg.site = {options.horizon_s * rng.Uniform(2.0, 6.0), 1200.0};
  fg.transceiver = {options.horizon_s * rng.Uniform(1.0, 4.0), 600.0};
  fg.transceiver_ports = 1;
  fg.transceiver_regens = 1;
  fg.controller = {options.horizon_s * rng.Uniform(2.0, 6.0), 240.0};
  // The generator only reads the plant's shape (site/fiber counts), so a
  // throwaway build is cheap at these sizes.
  return fault::GenerateFaultSchedule(spec.Build().optical, fg);
}

FuzzCase GenFuzzCase(uint64_t seed, const GenOptions& options) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);
  FuzzCase c;
  c.seed = seed;
  c.horizon_s = options.horizon_s;
  c.anneal_iterations = options.anneal_iterations;
  c.wan = GenWanSpec(rng, options);
  c.transfers = GenRequests(c.wan, rng, options);
  if (rng.Chance(options.fault_chance)) {
    c.faults = GenFaults(c.wan, rng, options);
  }
  return c;
}

topo::Wan WanByName(const std::string& name) {
  if (name == "internet2") return topo::MakeInternet2();
  if (name == "isp") return topo::MakeIspBackbone();
  if (name == "interdc") return topo::MakeInterDc();
  return topo::MakeMotivatingExample();
}

std::vector<core::TransferDemand> RandomDemands(const topo::Wan& wan,
                                                uint64_t seed, int count) {
  util::Rng rng(seed);
  std::vector<core::TransferDemand> out;
  out.reserve(static_cast<size_t>(count));
  const int n = wan.optical.NumSites();
  for (int i = 0; i < count; ++i) {
    core::TransferDemand d;
    d.id = i;
    d.src = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    d.dst = static_cast<int>(rng.Index(static_cast<size_t>(n)));
    if (d.dst == d.src) d.dst = (d.dst + 1) % n;
    d.rate_cap = rng.Uniform(1.0, wan.optical.wavelength_capacity());
    d.remaining = d.rate_cap * 300.0;
    out.push_back(d);
  }
  return out;
}

std::vector<core::TransferDemand> DemandsFromRequests(
    const std::vector<core::Request>& requests, double slot_seconds) {
  std::vector<core::TransferDemand> demands;
  demands.reserve(requests.size());
  for (const core::Request& r : requests) {
    core::TransferDemand d;
    d.id = r.id;
    d.src = r.src;
    d.dst = r.dst;
    d.remaining = r.size;
    d.rate_cap = r.size / slot_seconds;
    d.deadline = r.deadline;
    demands.push_back(d);
  }
  return demands;
}

}  // namespace owan::testkit
