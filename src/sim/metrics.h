#ifndef OWAN_SIM_METRICS_H_
#define OWAN_SIM_METRICS_H_

#include <array>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/stats.h"

namespace owan::sim {

// Completion-time statistics of a run (only completed-or-capped transfers).
util::Summary CompletionTimes(const SimResult& result);

// The paper buckets transfers into thirds by size: small / middle / large
// (Fig. 7b etc.). Index 0 = small, 1 = middle, 2 = large.
std::array<util::Summary, 3> CompletionTimesBySizeBin(const SimResult& r);

// Deadline-met fraction per size bin (Fig. 9c).
std::array<double, 3> DeadlineMetBySizeBin(const SimResult& r);

// "Factor of improvement" of `baseline` over `owan` (baseline time divided
// by Owan time) on a statistic of completion time.
double ImprovementFactor(double baseline_value, double owan_value);

// Formats a (value, fraction) CDF as TSV rows for plotting.
std::string CdfToTsv(const util::Summary& s, size_t points = 50);

}  // namespace owan::sim

#endif  // OWAN_SIM_METRICS_H_
