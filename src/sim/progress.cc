#include "sim/progress.h"

#include <algorithm>

namespace owan::sim {

std::set<LinkKey> ChangedLinks(const core::Topology& a,
                               const core::Topology& b) {
  std::set<LinkKey> changed;
  auto [add, remove] = a.Diff(b);
  for (const core::Link& l : add) changed.insert(MakeLinkKey(l.u, l.v));
  for (const core::Link& l : remove) changed.insert(MakeLinkKey(l.u, l.v));
  return changed;
}

SlotProgress ProgressTransfer(const core::Request& r, double remaining,
                              const core::TransferAllocation& alloc,
                              const std::set<LinkKey>& changed, double now,
                              double dur, double slot_seconds,
                              double reconfig_penalty_s) {
  SlotProgress out;
  double delivered = 0.0;
  for (const core::PathAllocation& pa : alloc.paths) {
    // Paths crossing a reconfigured link lose the reconfig window.
    bool crosses_changed = false;
    for (size_t i = 0; i + 1 < pa.path.nodes.size(); ++i) {
      if (changed.count(MakeLinkKey(pa.path.nodes[i], pa.path.nodes[i + 1]))) {
        crosses_changed = true;
        break;
      }
    }
    const double penalty = crosses_changed ? reconfig_penalty_s : 0.0;
    const double eff = std::max(0.0, dur - penalty);
    out.penalty_max = std::max(out.penalty_max, penalty);
    delivered += pa.rate * eff;
    out.full_delivered += pa.rate * std::max(0.0, slot_seconds - penalty);
    out.total_rate += pa.rate;
    if (r.HasDeadline() && r.deadline > now) {
      const double usable = std::min(
          eff,
          std::max(0.0, r.deadline - now -
                            (crosses_changed ? reconfig_penalty_s : 0.0)));
      out.deadline_part += pa.rate * usable;
    }
  }

  out.delivered = std::min(delivered, remaining);

  // A transfer is complete once less than a megabit is outstanding; without
  // this epsilon the reconfiguration penalty can shave a geometrically
  // vanishing sliver forever.
  constexpr double kResidualEps = 1e-3;
  out.finishes =
      out.total_rate > 0.0 &&
      (remaining - out.delivered <= kResidualEps ||
       out.penalty_max + remaining / out.total_rate <= dur + 1e-9);
  if (out.finishes) {
    // Transmission starts after the reconfiguration window, so the penalty
    // shifts the finish time within the slot instead of spilling a sliver
    // into the next one.
    out.completed_at =
        now + std::min(dur, out.penalty_max + remaining / out.total_rate);
  }
  return out;
}

}  // namespace owan::sim
