#ifndef OWAN_SIM_SIMULATOR_H_
#define OWAN_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "core/te_scheme.h"
#include "core/topology.h"
#include "core/transfer.h"
#include "fault/actuation.h"
#include "fault/fault_event.h"
#include "topo/topologies.h"
#include "update/executor.h"

namespace owan::sim {

struct SimOptions {
  double slot_seconds = 300.0;  // paper: reconfiguration every five minutes
  // Capacity on links whose circuits change is unavailable for this long at
  // the start of the slot (the §5.4 three-to-five-second circuit time).
  // Defaults to 0 because Owan's consistent update scheduling is hitless
  // (Fig. 10b) — raise it to model one-shot updates or slower optics.
  double reconfig_penalty_s = 0.0;
  // Safety cap on simulated time.
  double max_time_s = 72.0 * 3600.0;
  // Fiber cuts injected during the run: (absolute time, fiber edge id).
  // Legacy shorthand — merged into `faults` as kFiberCut events.
  std::vector<std::pair<double, net::EdgeId>> fiber_failures;
  // The unified fault script (§3.4): fiber cuts and repairs, site/ROADM
  // outages, transceiver/regenerator failures, controller crashes. Event
  // timestamps need not align with slot boundaries — an event interrupts
  // the running slot (delivered bytes are pro-rated over the truncated
  // interval) and triggers an immediate recompute rather than waiting for
  // the next boundary. While the controller is crashed the data plane
  // keeps forwarding at the last installed rates (minus whatever physical
  // failures kill), and recompute resumes at kControllerRecover.
  fault::FaultSchedule faults;
  // Post-interval invariant checking (fault::InvariantChecker): violations
  // are collected into SimResult::invariant_violations instead of
  // asserting. Read-only; disable for timing-critical sweeps.
  bool check_invariants = true;
  // Run each slot's reconfiguration through the update execution engine
  // (update::UpdateExecutor) instead of assuming it lands instantly: ops
  // draw latency/failure from `actuation`, retry per `retry`, and the slot
  // keeps whatever topology/routes the plant actually reached. A fault
  // event that truncates the interval mid-update safe-aborts the update
  // (stage-by-stage rollback) before the fault is processed. Off by
  // default — goldens and legacy comparisons are unchanged.
  bool execute_updates = false;
  fault::ActuationModel actuation;
  update::RetryPolicy retry;
  int update_wave_size = 4;
};

// Outcome for one transfer after the run.
struct TransferRecord {
  core::Request request;
  bool admitted = true;
  bool completed = false;
  double completed_at = -1.0;       // absolute seconds
  double delivered = 0.0;           // gigabits delivered in total
  double delivered_by_deadline = 0.0;
  // Time spent admitted-but-unallocated (rate 0 while active) — the
  // per-transfer stall caused by congestion or failures.
  double stalled_s = 0.0;

  double CompletionTime() const { return completed_at - request.arrival; }
  bool MetDeadline() const {
    return request.HasDeadline() && completed &&
           completed_at <= request.deadline + 1e-6;
  }
};

struct SimResult {
  std::vector<TransferRecord> transfers;
  double makespan = 0.0;  // time the last transfer finished
  int slots = 0;
  int topology_changes = 0;  // total circuit changes across the run
  // Wall-clock seconds the scheme spent in Compute across all slots — the
  // controller's decision latency, isolated from simulator bookkeeping
  // (Fig. 10d measures exactly this budget).
  double compute_seconds = 0.0;
  // Per-slot (start_time, total allocated Gbps) series — the Fig. 10a
  // throughput-over-time view. Fault interrupts add sub-slot entries.
  std::vector<std::pair<double, double>> slot_throughput;

  // ---- availability metrics (fault runs) ----
  // Events consumed from the schedule (including no-op repeats).
  int fault_events = 0;
  // Gigabits the pre-fault allocation would still have delivered in the
  // interrupted remainder of its slot — the work each fault invalidated.
  double gigabits_lost_to_faults = 0.0;
  // One entry per fault batch that hit a live transfer set: seconds until
  // total allocated rate recovered to its pre-fault level (or the affected
  // transfers drained). Episodes still open when the run ends close at the
  // final simulated time.
  std::vector<double> recovery_seconds;
  double MeanTimeToRecover() const;
  // Violations found by the post-interval InvariantChecker; empty = every
  // interval of the run was consistent.
  std::vector<std::string> invariant_violations;

  // ---- update execution metrics (execute_updates runs) ----
  int updates_executed = 0;   // slots whose reconfiguration ran the engine
  int update_aborts = 0;      // updates that safe-aborted (rolled back)
  int update_retries = 0;     // actuation attempts retried across the run
  int update_forced_ops = 0;  // stall-broken ops across the run
  double update_exec_seconds = 0.0;  // total realized update makespan (sim s)

  // Deadline metrics (only meaningful for deadline workloads).
  double FractionMeetingDeadline() const;
  double FractionBytesByDeadline() const;
};

// Runs the discrete-time flow-based simulation: per slot the scheme sees
// the active transfers and emits allocations (and, for optical-aware
// schemes, a new topology); transfers progress at their allocated rates,
// minus the reconfiguration penalty on links whose circuits changed.
// Faults from `options.faults` interrupt slots as described above.
SimResult RunSimulation(const topo::Wan& wan,
                        const std::vector<core::Request>& requests,
                        core::TeScheme& scheme, const SimOptions& options = {});

}  // namespace owan::sim

#endif  // OWAN_SIM_SIMULATOR_H_
