#ifndef OWAN_SIM_SIMULATOR_H_
#define OWAN_SIM_SIMULATOR_H_

#include <vector>

#include "core/te_scheme.h"
#include "core/topology.h"
#include "core/transfer.h"
#include "topo/topologies.h"

namespace owan::sim {

struct SimOptions {
  double slot_seconds = 300.0;  // paper: reconfiguration every five minutes
  // Capacity on links whose circuits change is unavailable for this long at
  // the start of the slot (the §5.4 three-to-five-second circuit time).
  // Defaults to 0 because Owan's consistent update scheduling is hitless
  // (Fig. 10b) — raise it to model one-shot updates or slower optics.
  double reconfig_penalty_s = 0.0;
  // Safety cap on simulated time.
  double max_time_s = 72.0 * 3600.0;
  // Fiber cuts injected during the run: (absolute time, fiber edge id).
  // Applied at the start of the first slot at or after the given time;
  // circuits re-route where the plant allows and dark ports are re-paired
  // (§3.4 failure handling).
  std::vector<std::pair<double, net::EdgeId>> fiber_failures;
};

// Outcome for one transfer after the run.
struct TransferRecord {
  core::Request request;
  bool admitted = true;
  bool completed = false;
  double completed_at = -1.0;       // absolute seconds
  double delivered = 0.0;           // gigabits delivered in total
  double delivered_by_deadline = 0.0;

  double CompletionTime() const { return completed_at - request.arrival; }
  bool MetDeadline() const {
    return request.HasDeadline() && completed &&
           completed_at <= request.deadline + 1e-6;
  }
};

struct SimResult {
  std::vector<TransferRecord> transfers;
  double makespan = 0.0;  // time the last transfer finished
  int slots = 0;
  int topology_changes = 0;  // total circuit changes across the run
  // Wall-clock seconds the scheme spent in Compute across all slots — the
  // controller's decision latency, isolated from simulator bookkeeping
  // (Fig. 10d measures exactly this budget).
  double compute_seconds = 0.0;
  // Per-slot (start_time, total allocated Gbps) series — the Fig. 10a
  // throughput-over-time view.
  std::vector<std::pair<double, double>> slot_throughput;

  // Deadline metrics (only meaningful for deadline workloads).
  double FractionMeetingDeadline() const;
  double FractionBytesByDeadline() const;
};

// Runs the discrete-time flow-based simulation: per slot the scheme sees
// the active transfers and emits allocations (and, for optical-aware
// schemes, a new topology); transfers progress at their allocated rates,
// minus the reconfiguration penalty on links whose circuits changed.
SimResult RunSimulation(const topo::Wan& wan,
                        const std::vector<core::Request>& requests,
                        core::TeScheme& scheme, const SimOptions& options = {});

}  // namespace owan::sim

#endif  // OWAN_SIM_SIMULATOR_H_
