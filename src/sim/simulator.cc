#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>

#include "core/provisioned_state.h"
#include "core/repair.h"

namespace owan::sim {

namespace {

using LinkKey = std::pair<net::NodeId, net::NodeId>;

LinkKey Key(net::NodeId a, net::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

// Links whose unit counts differ between two topologies.
std::set<LinkKey> ChangedLinks(const core::Topology& a,
                               const core::Topology& b) {
  std::set<LinkKey> changed;
  auto [add, remove] = a.Diff(b);
  for (const core::Link& l : add) changed.insert(Key(l.u, l.v));
  for (const core::Link& l : remove) changed.insert(Key(l.u, l.v));
  return changed;
}

}  // namespace

double SimResult::FractionMeetingDeadline() const {
  int with_deadline = 0;
  int met = 0;
  for (const TransferRecord& t : transfers) {
    if (!t.request.HasDeadline()) continue;
    ++with_deadline;
    if (t.MetDeadline()) ++met;
  }
  return with_deadline == 0
             ? 0.0
             : static_cast<double>(met) / static_cast<double>(with_deadline);
}

double SimResult::FractionBytesByDeadline() const {
  double total = 0.0;
  double by_deadline = 0.0;
  for (const TransferRecord& t : transfers) {
    if (!t.request.HasDeadline()) continue;
    total += t.request.size;
    by_deadline += t.delivered_by_deadline;
  }
  return total == 0.0 ? 0.0 : by_deadline / total;
}

SimResult RunSimulation(const topo::Wan& wan,
                        const std::vector<core::Request>& requests,
                        core::TeScheme& scheme, const SimOptions& options) {
  SimResult result;
  result.transfers.reserve(requests.size());
  for (const core::Request& r : requests) {
    TransferRecord rec;
    rec.request = r;
    result.transfers.push_back(rec);
  }

  struct Active {
    size_t index;       // into result.transfers
    double remaining;   // gigabits
    int slots_waited = 0;
  };
  std::vector<Active> active;
  size_t next_arrival = 0;

  core::Topology topology = wan.default_topology;
  // Mutable plant view so injected fiber failures can be applied.
  optical::OpticalNetwork plant = wan.optical;
  std::vector<std::pair<double, net::EdgeId>> pending_failures =
      options.fiber_failures;
  std::sort(pending_failures.begin(), pending_failures.end());
  std::vector<int> port_budget;
  for (int v = 0; v < plant.NumSites(); ++v) {
    port_budget.push_back(plant.site(v).router_ports);
  }

  double now = 0.0;
  while (now < options.max_time_s) {
    // Apply due fiber cuts: re-route what the plant still supports and
    // re-pair any ports that went dark.
    bool failed_any = false;
    while (!pending_failures.empty() &&
           pending_failures.front().first <= now + 1e-9) {
      plant.FailFiber(pending_failures.front().second);
      pending_failures.erase(pending_failures.begin());
      failed_any = true;
    }
    if (failed_any) {
      core::ProvisionedState state(plant);
      state.SyncTo(topology);
      topology = core::RepairDarkPorts(state.realized(), plant, port_budget);
    }
    // Admit transfers that have arrived by the start of this slot.
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now + 1e-9) {
      const core::Request& r = requests[next_arrival];
      TransferRecord& rec = result.transfers[next_arrival];
      rec.admitted = scheme.Admit(r, now);
      active.push_back(Active{next_arrival, r.size});
      ++next_arrival;
    }

    if (active.empty()) {
      if (next_arrival >= requests.size()) break;  // drained everything
      // Jump to the slot containing the next arrival.
      const double arr = requests[next_arrival].arrival;
      const double slots_ahead =
          std::floor(arr / options.slot_seconds);
      now = std::max(now + options.slot_seconds,
                     slots_ahead * options.slot_seconds);
      continue;
    }

    // Build the controller's view.
    core::TeInput input;
    input.topology = &topology;
    input.optical = &plant;
    input.slot_seconds = options.slot_seconds;
    input.now = now;
    input.demands.reserve(active.size());
    for (const Active& a : active) {
      const core::Request& r = result.transfers[a.index].request;
      core::TransferDemand d;
      d.id = r.id;
      d.src = r.src;
      d.dst = r.dst;
      d.remaining = a.remaining;
      d.rate_cap = a.remaining / options.slot_seconds;
      d.deadline = r.deadline;
      d.slots_waited = a.slots_waited;
      input.demands.push_back(d);
    }

    const auto compute_start = std::chrono::steady_clock::now();
    core::TeOutput output = scheme.Compute(input);
    result.compute_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      compute_start)
            .count();

    // Apply topology change and its reconfiguration penalty.
    std::set<LinkKey> changed;
    if (output.new_topology) {
      changed = ChangedLinks(topology, *output.new_topology);
      result.topology_changes += topology.DistanceTo(*output.new_topology);
      topology = *output.new_topology;
    }

    // Progress transfers.
    ++result.slots;
    double slot_rate = 0.0;
    for (const core::TransferAllocation& a : output.allocations) {
      slot_rate += a.TotalRate();
    }
    result.slot_throughput.emplace_back(now, slot_rate);
    std::vector<Active> still_active;
    still_active.reserve(active.size());
    for (size_t ai = 0; ai < active.size(); ++ai) {
      Active a = active[ai];
      TransferRecord& rec = result.transfers[a.index];
      const core::TransferAllocation& alloc =
          ai < output.allocations.size() ? output.allocations[ai]
                                         : core::TransferAllocation{};

      double delivered = 0.0;
      double total_rate = 0.0;
      double deadline_part = 0.0;
      double penalty_max = 0.0;
      const core::Request& r = rec.request;
      for (const core::PathAllocation& pa : alloc.paths) {
        // Paths crossing a reconfigured link lose the reconfig window.
        bool crosses_changed = false;
        for (size_t i = 0; i + 1 < pa.path.nodes.size(); ++i) {
          if (changed.count(Key(pa.path.nodes[i], pa.path.nodes[i + 1]))) {
            crosses_changed = true;
            break;
          }
        }
        const double penalty =
            crosses_changed ? options.reconfig_penalty_s : 0.0;
        const double eff = options.slot_seconds - penalty;
        penalty_max = std::max(penalty_max, penalty);
        delivered += pa.rate * eff;
        total_rate += pa.rate;
        if (r.HasDeadline() && r.deadline > now) {
          const double usable = std::min(
              eff, std::max(0.0, r.deadline - now -
                                     (crosses_changed
                                          ? options.reconfig_penalty_s
                                          : 0.0)));
          deadline_part += pa.rate * usable;
        }
      }

      delivered = std::min(delivered, a.remaining);
      if (r.HasDeadline()) {
        rec.delivered_by_deadline += std::min(deadline_part, delivered);
      }
      rec.delivered += delivered;

      // A transfer is complete once less than a megabit is outstanding;
      // without this epsilon the reconfiguration penalty can shave a
      // geometrically vanishing sliver forever.
      constexpr double kResidualEps = 1e-3;
      const bool finishes =
          total_rate > 0.0 &&
          (a.remaining - delivered <= kResidualEps ||
           penalty_max + a.remaining / total_rate <=
               options.slot_seconds + 1e-9);
      if (finishes) {
        rec.completed = true;
        // Transmission starts after the reconfiguration window, so the
        // penalty shifts the finish time within the slot instead of
        // spilling a sliver into the next one.
        rec.completed_at =
            now + std::min(options.slot_seconds,
                           penalty_max + a.remaining / total_rate);
        result.makespan = std::max(result.makespan, rec.completed_at);
      } else {
        a.remaining -= delivered;
        a.slots_waited = delivered > 1e-9 ? 0 : a.slots_waited + 1;
        still_active.push_back(a);
      }
    }
    active = std::move(still_active);
    now += options.slot_seconds;
  }

  // Anything still unfinished at the cap counts as completing at the cap
  // (pessimistic, applied identically to every scheme).
  for (TransferRecord& rec : result.transfers) {
    if (!rec.completed) {
      rec.completed_at = options.max_time_s;
      result.makespan = std::max(result.makespan, options.max_time_s);
    }
  }
  return result;
}

}  // namespace owan::sim
