#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>

#include "core/provisioned_state.h"
#include "core/repair.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "obs/obs.h"
#include "sim/progress.h"
#include "update/update_plan.h"

namespace owan::sim {

namespace {

// While the controller is down the data plane keeps forwarding the last
// installed rates, but a plant fault can physically shrink the topology
// underneath them. Drop paths riding links that no longer exist, then scale
// the survivors so no shrunken link is oversubscribed (each path takes the
// worst cap/aggregate ratio across its links — one pass suffices because
// every contribution to a link shrinks by at least that link's ratio).
void PruneFrozenAllocations(std::map<int, core::TransferAllocation>& frozen,
                            const core::Topology& topology, double theta) {
  for (auto& [id, alloc] : frozen) {
    std::vector<core::PathAllocation> kept;
    kept.reserve(alloc.paths.size());
    for (core::PathAllocation& pa : alloc.paths) {
      bool alive = true;
      for (size_t i = 0; i + 1 < pa.path.nodes.size(); ++i) {
        if (topology.Units(pa.path.nodes[i], pa.path.nodes[i + 1]) <= 0) {
          alive = false;
          break;
        }
      }
      if (alive) kept.push_back(std::move(pa));
    }
    alloc.paths = std::move(kept);
  }
  std::map<LinkKey, double> link_rate;
  for (const auto& [id, alloc] : frozen) {
    for (const core::PathAllocation& pa : alloc.paths) {
      for (size_t i = 0; i + 1 < pa.path.nodes.size(); ++i) {
        link_rate[MakeLinkKey(pa.path.nodes[i], pa.path.nodes[i + 1])] += pa.rate;
      }
    }
  }
  for (auto& [id, alloc] : frozen) {
    for (core::PathAllocation& pa : alloc.paths) {
      double scale = 1.0;
      for (size_t i = 0; i + 1 < pa.path.nodes.size(); ++i) {
        const LinkKey k = MakeLinkKey(pa.path.nodes[i], pa.path.nodes[i + 1]);
        const double cap =
            topology.Units(k.first, k.second) * theta;
        const double sum = link_rate[k];
        if (sum > cap && sum > 0.0) scale = std::min(scale, cap / sum);
      }
      pa.rate *= scale;
    }
  }
}

}  // namespace

double SimResult::MeanTimeToRecover() const {
  if (recovery_seconds.empty()) return 0.0;
  double total = 0.0;
  for (double s : recovery_seconds) total += s;
  return total / static_cast<double>(recovery_seconds.size());
}

double SimResult::FractionMeetingDeadline() const {
  int with_deadline = 0;
  int met = 0;
  for (const TransferRecord& t : transfers) {
    if (!t.request.HasDeadline()) continue;
    ++with_deadline;
    if (t.MetDeadline()) ++met;
  }
  return with_deadline == 0
             ? 0.0
             : static_cast<double>(met) / static_cast<double>(with_deadline);
}

double SimResult::FractionBytesByDeadline() const {
  double total = 0.0;
  double by_deadline = 0.0;
  for (const TransferRecord& t : transfers) {
    if (!t.request.HasDeadline()) continue;
    total += t.request.size;
    by_deadline += t.delivered_by_deadline;
  }
  return total == 0.0 ? 0.0 : by_deadline / total;
}

SimResult RunSimulation(const topo::Wan& wan,
                        const std::vector<core::Request>& requests,
                        core::TeScheme& scheme, const SimOptions& options) {
  OWAN_SPAN(run_span, "sim", "run");
  run_span.AddArg("requests", static_cast<double>(requests.size()));
  SimResult result;
  result.transfers.reserve(requests.size());
  for (const core::Request& r : requests) {
    TransferRecord rec;
    rec.request = r;
    result.transfers.push_back(rec);
  }

  struct Active {
    size_t index;       // into result.transfers
    double remaining;   // gigabits
    int slots_waited = 0;
  };
  std::vector<Active> active;
  size_t next_arrival = 0;

  core::Topology topology = wan.default_topology;
  // Mutable plant view so injected faults can be applied.
  optical::OpticalNetwork plant = wan.optical;
  const double theta = plant.wavelength_capacity();

  // One unified schedule: legacy fiber_failures fold in as cut events, and
  // a cursor drains it (erasing from the front was quadratic).
  fault::FaultSchedule schedule = options.faults;
  for (const auto& [t, fiber] : options.fiber_failures) {
    schedule.Add(fault::FaultEvent::FiberCut(t, fiber));
  }
  schedule.Normalize();
  size_t next_event = 0;

  bool controller_up = true;
  // Last rates the controller installed, by transfer id — what the data
  // plane keeps forwarding while the controller is down.
  std::map<int, core::TransferAllocation> frozen;
  // Routes actually in force on the plant — the executed-update path uses
  // them as the old routes the next update plan must drain from.
  std::vector<core::TransferAllocation> installed;

  fault::InvariantChecker checker;

  // Recovery episode: opened when a fault batch lands on live transfers,
  // closed when allocated rate regains its pre-fault level or the affected
  // transfers drain.
  bool recovering = false;
  double recover_start = 0.0;
  double recover_baseline = 0.0;
  double last_slot_rate = 0.0;

  double now = 0.0;
  while (now < options.max_time_s) {
    // Apply due fault events: the plant shrinks immediately; the topology
    // recomputes on whatever survives (with dark-port repair only if a
    // controller is alive to do it — §3.4).
    bool plant_changed = false;
    bool any_event = false;
    while (next_event < schedule.events.size() &&
           schedule.events[next_event].time <= now + 1e-9) {
      const fault::FaultEvent& e = schedule.events[next_event];
      ++next_event;
      ++result.fault_events;
      OWAN_COUNT("sim.fault_events");
      OWAN_INSTANT("sim", "fault.interrupt",
                   ::owan::obs::TraceArg{"time", e.time},
                   ::owan::obs::TraceArg{"type", static_cast<double>(e.type)});
      any_event = true;
      if (e.type == fault::FaultType::kControllerCrash) {
        controller_up = false;
      } else if (e.type == fault::FaultType::kControllerRecover) {
        controller_up = true;
      } else {
        plant_changed |= fault::ApplyPlantEvent(e, plant);
      }
    }
    if (plant_changed) {
      topology = fault::RecomputeTopology(topology, plant, controller_up);
      if (!controller_up) PruneFrozenAllocations(frozen, topology, theta);
    }
    if (any_event && !recovering && !active.empty()) {
      recovering = true;
      recover_start = now;
      recover_baseline = last_slot_rate;
    }

    // Admit transfers that have arrived by the start of this interval.
    // Admission is a controller action, so arrivals queue while it is down.
    while (controller_up && next_arrival < requests.size() &&
           requests[next_arrival].arrival <= now + 1e-9) {
      const core::Request& r = requests[next_arrival];
      TransferRecord& rec = result.transfers[next_arrival];
      rec.admitted = scheme.Admit(r, now);
      active.push_back(Active{next_arrival, r.size});
      ++next_arrival;
    }

    if (active.empty()) {
      const bool arrivals_left = next_arrival < requests.size();
      const bool events_left = next_event < schedule.events.size();
      if (!arrivals_left && !events_left) break;  // drained everything
      // Jump to the slot containing the next arrival, but never past a
      // pending fault event (a controller recovery may unblock admission).
      double target = now + options.slot_seconds;
      if (arrivals_left) {
        const double arr = requests[next_arrival].arrival;
        const double slots_ahead = std::floor(arr / options.slot_seconds);
        target = std::max(now + options.slot_seconds,
                          slots_ahead * options.slot_seconds);
      }
      if (events_left) {
        target = std::min(target, schedule.events[next_event].time);
      }
      now = target;
      continue;
    }

    OWAN_SPAN(slot_span, "sim", "slot");
    slot_span.AddArg("now", now);
    slot_span.AddArg("active", static_cast<double>(active.size()));

    // The interval runs to the slot boundary unless a fault event lands
    // first — then it ends early, delivered bytes pro-rate over the
    // truncated interval, and the next loop iteration recomputes.
    double dur = options.slot_seconds;
    if (next_event < schedule.events.size()) {
      const double te = schedule.events[next_event].time;
      if (te < now + dur - 1e-9) dur = te - now;
    }

    // Build the controller's view (also the invariant checker's).
    core::TeInput input;
    input.topology = &topology;
    input.optical = &plant;
    input.slot_seconds = options.slot_seconds;
    input.now = now;
    input.demands.reserve(active.size());
    for (const Active& a : active) {
      const core::Request& r = result.transfers[a.index].request;
      core::TransferDemand d;
      d.id = r.id;
      d.src = r.src;
      d.dst = r.dst;
      d.remaining = a.remaining;
      d.rate_cap = a.remaining / options.slot_seconds;
      d.deadline = r.deadline;
      d.slots_waited = a.slots_waited;
      input.demands.push_back(d);
    }

    core::TeOutput output;
    if (controller_up) {
      const auto compute_start = std::chrono::steady_clock::now();
      output = scheme.Compute(input);
      const double compute_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        compute_start)
              .count();
      result.compute_seconds += compute_s;
      OWAN_HISTO("sim.compute_seconds", ::owan::obs::Unit::kSeconds,
                 compute_s);
      frozen.clear();
      for (size_t i = 0;
           i < output.allocations.size() && i < input.demands.size(); ++i) {
        frozen[input.demands[i].id] = output.allocations[i];
      }
    } else {
      // Controller down: the data plane keeps the last installed rates for
      // transfers that still have them; everyone else waits.
      output.allocations.reserve(active.size());
      for (const Active& a : active) {
        auto it = frozen.find(result.transfers[a.index].request.id);
        output.allocations.push_back(it != frozen.end()
                                         ? it->second
                                         : core::TransferAllocation{});
      }
    }

    // Apply topology change and its reconfiguration penalty.
    std::set<LinkKey> changed;
    if (output.new_topology && options.execute_updates && controller_up &&
        !(*output.new_topology == topology)) {
      // Actuate the reconfiguration through the update execution engine.
      // The plan starts at the interval head; if a fault event truncates
      // the interval before the update converges, the plant changed under
      // the update and it safe-aborts (rollback to the pre-update state)
      // before the fault is processed next iteration.
      update::ExecutorInput ein;
      ein.from = topology;
      ein.plan = update::BuildUpdatePlan(topology, *output.new_topology,
                                         installed, output.allocations);
      ein.old_routes = installed;
      ein.new_routes = output.allocations;
      ein.spare_ports.assign(static_cast<size_t>(plant.NumSites()), 0);
      for (net::NodeId s = 0; s < plant.NumSites(); ++s) {
        ein.spare_ports[static_cast<size_t>(s)] =
            std::max(0, plant.UsablePorts(s) - topology.PortsUsed(s));
      }
      update::ExecutorOptions eopts;
      eopts.actuation = options.actuation;
      eopts.retry = options.retry;
      eopts.wave_size = options.update_wave_size;
      eopts.theta = theta;
      update::UpdateExecutor ex(std::move(ein), eopts);
      if (!ex.StepUntil(dur)) ex.RequestAbort();
      update::ExecResult res = ex.Finish();
      ++result.updates_executed;
      result.update_retries += res.stats.retries;
      result.update_forced_ops += res.stats.forced_ops;
      result.update_exec_seconds += res.makespan;
      for (const std::string& v : res.invariant_violations) {
        result.invariant_violations.push_back(
            "update at t=" + std::to_string(now) + ": " + v);
      }
      if (res.outcome == update::ExecOutcome::kConverged) {
        changed = ChangedLinks(topology, res.final_topology);
        result.topology_changes += topology.DistanceTo(res.final_topology);
        topology = res.final_topology;
        // The realized routes (positional with this slot's allocations)
        // are what the data plane actually carries.
        output.allocations = res.final_routes;
      } else {
        ++result.update_aborts;
        OWAN_COUNT("sim.update_aborts");
        // Rolled back: the slot keeps the pre-update routes, matched to
        // the live demand set by transfer id.
        std::vector<core::TransferAllocation> reverted(input.demands.size());
        for (size_t i = 0; i < input.demands.size(); ++i) {
          reverted[i].id = input.demands[i].id;
          for (const core::TransferAllocation& a : res.final_routes) {
            if (a.id == input.demands[i].id) {
              reverted[i] = a;
              break;
            }
          }
        }
        output.allocations = std::move(reverted);
      }
      // Refresh the data plane's frozen view with the realized rates.
      frozen.clear();
      for (size_t i = 0;
           i < output.allocations.size() && i < input.demands.size(); ++i) {
        frozen[input.demands[i].id] = output.allocations[i];
      }
    } else if (output.new_topology) {
      changed = ChangedLinks(topology, *output.new_topology);
      result.topology_changes += topology.DistanceTo(*output.new_topology);
      topology = *output.new_topology;
    }
    if (controller_up) installed = output.allocations;

    // Progress transfers.
    ++result.slots;
    OWAN_COUNT("sim.slots");
    double slot_rate = 0.0;
    for (const core::TransferAllocation& a : output.allocations) {
      slot_rate += a.TotalRate();
    }
    result.slot_throughput.emplace_back(now, slot_rate);
    OWAN_HISTO("sim.slot_rate_gbps", ::owan::obs::Unit::kGigabits, slot_rate);
    if (recovering && slot_rate + 1e-9 >= recover_baseline) {
      result.recovery_seconds.push_back(now - recover_start);
      OWAN_HISTO("sim.recovery_seconds", ::owan::obs::Unit::kSimSeconds,
                 now - recover_start);
      recovering = false;
    }
    last_slot_rate = slot_rate;

    if (options.check_invariants) {
      std::vector<std::string> v = fault::InvariantChecker::CheckSlot(
          topology, plant, input.demands, output.allocations);
      OWAN_COUNT_N("sim.invariant_violations", ::owan::obs::Unit::kOps,
                   v.size());
      result.invariant_violations.insert(result.invariant_violations.end(),
                                         v.begin(), v.end());
    }

    const bool truncated = dur < options.slot_seconds - 1e-9;
    std::vector<Active> still_active;
    still_active.reserve(active.size());
    for (size_t ai = 0; ai < active.size(); ++ai) {
      Active a = active[ai];
      TransferRecord& rec = result.transfers[a.index];
      const core::TransferAllocation& alloc =
          ai < output.allocations.size() ? output.allocations[ai]
                                         : core::TransferAllocation{};

      const core::Request& r = rec.request;
      const SlotProgress p =
          ProgressTransfer(r, a.remaining, alloc, changed, now, dur,
                           options.slot_seconds, options.reconfig_penalty_s);

      if (r.HasDeadline()) {
        rec.delivered_by_deadline += std::min(p.deadline_part, p.delivered);
      }
      rec.delivered += p.delivered;
      OWAN_HISTO("sim.delivered_gigabits", ::owan::obs::Unit::kGigabits,
                 p.delivered);
      if (truncated) {
        const double lost = std::max(
            0.0, std::min(p.full_delivered, a.remaining) - p.delivered);
        result.gigabits_lost_to_faults += lost;
        OWAN_HISTO("sim.invalidated_gigabits", ::owan::obs::Unit::kGigabits,
                   lost);
      }

      if (options.check_invariants) {
        std::vector<std::string> v =
            checker.ObserveTransfer(r.id, rec.delivered, r.size);
        OWAN_COUNT_N("sim.invariant_violations", ::owan::obs::Unit::kOps,
                     v.size());
        result.invariant_violations.insert(result.invariant_violations.end(),
                                           v.begin(), v.end());
      }

      if (p.finishes) {
        rec.completed = true;
        OWAN_COUNT("sim.transfers_completed");
        rec.completed_at = p.completed_at;
        result.makespan = std::max(result.makespan, rec.completed_at);
      } else {
        a.remaining -= p.delivered;
        a.slots_waited = p.delivered > 1e-9 ? 0 : a.slots_waited + 1;
        if (p.total_rate <= 1e-9) rec.stalled_s += dur;
        still_active.push_back(a);
      }
    }
    active = std::move(still_active);
    if (recovering && active.empty()) {
      result.recovery_seconds.push_back(now + dur - recover_start);
      OWAN_HISTO("sim.recovery_seconds", ::owan::obs::Unit::kSimSeconds,
                 now + dur - recover_start);
      recovering = false;
    }
    now += dur;
  }

  if (recovering) {
    result.recovery_seconds.push_back(now - recover_start);
    OWAN_HISTO("sim.recovery_seconds", ::owan::obs::Unit::kSimSeconds,
               now - recover_start);
  }

  // Anything still unfinished at the cap counts as completing at the cap
  // (pessimistic, applied identically to every scheme).
  for (TransferRecord& rec : result.transfers) {
    if (!rec.completed) {
      rec.completed_at = options.max_time_s;
      result.makespan = std::max(result.makespan, options.max_time_s);
    }
  }
  return result;
}

}  // namespace owan::sim
