#include "sim/metrics.h"

#include <algorithm>
#include <sstream>

namespace owan::sim {

util::Summary CompletionTimes(const SimResult& result) {
  util::Summary s;
  for (const TransferRecord& t : result.transfers) {
    if (t.completed_at >= 0.0) s.Add(t.CompletionTime());
  }
  return s;
}

namespace {

// Thresholds splitting the transfer population into thirds by size.
std::pair<double, double> SizeTerciles(const SimResult& r) {
  std::vector<double> sizes;
  sizes.reserve(r.transfers.size());
  for (const TransferRecord& t : r.transfers) sizes.push_back(t.request.size);
  std::sort(sizes.begin(), sizes.end());
  if (sizes.empty()) return {0.0, 0.0};
  const double lo = sizes[sizes.size() / 3];
  const double hi = sizes[2 * sizes.size() / 3];
  return {lo, hi};
}

int BinOf(double size, const std::pair<double, double>& cuts) {
  if (size < cuts.first) return 0;
  if (size < cuts.second) return 1;
  return 2;
}

}  // namespace

std::array<util::Summary, 3> CompletionTimesBySizeBin(const SimResult& r) {
  std::array<util::Summary, 3> bins;
  const auto cuts = SizeTerciles(r);
  for (const TransferRecord& t : r.transfers) {
    if (t.completed_at < 0.0) continue;
    bins[static_cast<size_t>(BinOf(t.request.size, cuts))].Add(
        t.CompletionTime());
  }
  return bins;
}

std::array<double, 3> DeadlineMetBySizeBin(const SimResult& r) {
  std::array<int, 3> total{0, 0, 0};
  std::array<int, 3> met{0, 0, 0};
  const auto cuts = SizeTerciles(r);
  for (const TransferRecord& t : r.transfers) {
    if (!t.request.HasDeadline()) continue;
    const int b = BinOf(t.request.size, cuts);
    ++total[static_cast<size_t>(b)];
    if (t.MetDeadline()) ++met[static_cast<size_t>(b)];
  }
  std::array<double, 3> out{0.0, 0.0, 0.0};
  for (size_t b = 0; b < 3; ++b) {
    out[b] = total[b] == 0 ? 0.0
                           : static_cast<double>(met[b]) /
                                 static_cast<double>(total[b]);
  }
  return out;
}

double ImprovementFactor(double baseline_value, double owan_value) {
  if (owan_value <= 0.0) return 0.0;
  return baseline_value / owan_value;
}

std::string CdfToTsv(const util::Summary& s, size_t points) {
  std::ostringstream os;
  for (const auto& [value, frac] : s.Cdf(points)) {
    os << value << "\t" << frac << "\n";
  }
  return os.str();
}

}  // namespace owan::sim
