#ifndef OWAN_SIM_PROGRESS_H_
#define OWAN_SIM_PROGRESS_H_

#include <set>
#include <utility>

#include "core/topology.h"
#include "core/transfer.h"

namespace owan::sim {

// Canonical (min, max) site pair used for "did this path cross a
// reconfigured link" checks.
using LinkKey = std::pair<net::NodeId, net::NodeId>;

inline LinkKey MakeLinkKey(net::NodeId a, net::NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

// Links whose unit counts differ between two topologies.
std::set<LinkKey> ChangedLinks(const core::Topology& a,
                               const core::Topology& b);

// Outcome of progressing one transfer over one interval.
struct SlotProgress {
  double delivered = 0.0;       // gigabits credited (clamped to remaining)
  double full_delivered = 0.0;  // uninterrupted-slot delivery, unclamped
  double deadline_part = 0.0;   // deadline-usable delivery, unclamped
  double total_rate = 0.0;      // Gbps summed over paths
  double penalty_max = 0.0;     // worst reconfiguration penalty across paths
  bool finishes = false;
  double completed_at = 0.0;    // absolute seconds; valid when finishes
};

// The per-transfer progress arithmetic shared by the batch simulator and
// the streaming controller service: path-by-path delivery with the
// reconfiguration penalty on paths crossing a changed link, the megabit
// completion epsilon, and the within-slot finish time. Exact
// floating-point operation order matters here — the service's
// nominal-parity contract (bit-identical outcomes to sim::RunSimulation)
// holds because both run THIS function, not two copies of it.
SlotProgress ProgressTransfer(const core::Request& r, double remaining,
                              const core::TransferAllocation& alloc,
                              const std::set<LinkKey>& changed, double now,
                              double dur, double slot_seconds,
                              double reconfig_penalty_s);

}  // namespace owan::sim

#endif  // OWAN_SIM_PROGRESS_H_
