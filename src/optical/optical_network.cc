#include "optical/optical_network.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "net/disjoint_paths.h"
#include "net/shortest_path.h"
#include "optical/regen_graph.h"

namespace owan::optical {

namespace {
// How many regenerator-site sequences and how many alternate fiber paths per
// segment the provisioner tries before giving up.
constexpr int kMaxSequences = 8;
constexpr int kMaxFiberPathsPerSegment = 4;
}  // namespace

// Stamp 0 is reserved for "never stamped"; fresh constructions start at 1.
std::atomic<uint64_t> OpticalNetwork::next_stamp_{1};

std::string ToString(const Circuit& c) {
  std::ostringstream os;
  os << "circuit#" << c.id << " " << c.src << "->" << c.dst << " via [";
  for (size_t i = 0; i < c.regen_sites.size(); ++i) {
    if (i) os << ",";
    os << c.regen_sites[i];
  }
  os << "] segments=" << c.segments.size()
     << " length=" << c.TotalLengthKm() << "km";
  return os.str();
}

OpticalNetwork::OpticalNetwork(std::vector<SiteInfo> sites, double reach_km,
                               double wavelength_capacity)
    : sites_(std::move(sites)),
      fiber_graph_(static_cast<int>(sites_.size())),
      reach_km_(reach_km),
      wavelength_capacity_(wavelength_capacity),
      effective_reach_km_(reach_km) {
  if (reach_km_ <= 0.0 || wavelength_capacity_ <= 0.0) {
    throw std::invalid_argument("OpticalNetwork: reach and capacity > 0");
  }
  regens_free_.reserve(sites_.size());
  for (const SiteInfo& s : sites_) regens_free_.push_back(s.regenerators);
  site_failed_.assign(sites_.size(), false);
  ports_failed_.assign(sites_.size(), 0);
  regens_failed_.assign(sites_.size(), 0);
  BumpStamp();
}

net::EdgeId OpticalNetwork::AddFiber(net::NodeId u, net::NodeId v,
                                     double length_km, int num_wavelengths) {
  if (length_km <= 0.0 || num_wavelengths <= 0) {
    throw std::invalid_argument("AddFiber: bad length or wavelength count");
  }
  const net::EdgeId id = fiber_graph_.AddEdge(u, v, length_km);
  BumpStamp();
  fiber_cache_.Clear();
  fibers_.push_back(FiberInfo{length_km, num_wavelengths});
  lambda_used_.emplace_back(num_wavelengths, false);
  if (static_cast<int>(lambda_usage_.size()) < num_wavelengths) {
    lambda_usage_.resize(static_cast<size_t>(num_wavelengths), 0);
  }
  fiber_failed_.push_back(false);
  fiber_degrade_db_.push_back(0.0);
  return id;
}

void OpticalNetwork::set_qot(const QotOptions& q) {
  if (!circuits_.empty()) {
    throw std::logic_error("set_qot: plant already has live circuits");
  }
  qot_ = q;
  effective_reach_km_ =
      qot_.enabled ? std::min(EffectiveQotReachKm(qot_), 1e7) : reach_km_;
  BumpStamp();
}

double OpticalNetwork::PathSnrDb(
    const std::vector<net::EdgeId>& fibers) const {
  if (!qot_.enabled) return std::numeric_limits<double>::infinity();
  double inv = 0.0;
  for (net::EdgeId f : fibers) {
    inv += FiberInverseOsnr(fibers_[f].length_km, fiber_degrade_db_[f], qot_);
  }
  return SnrDbFromInverseOsnr(inv, qot_);
}

void OpticalNetwork::GradeCircuit(Circuit& c) const {
  if (!qot_.enabled) {
    for (Segment& s : c.segments) {
      s.snr_db = std::numeric_limits<double>::infinity();
    }
    c.capacity_gbps = wavelength_capacity_;
    return;
  }
  // theta remains the transceiver line-rate ceiling: the modulation table
  // decides how much of it the signal quality sustains, never more. This
  // keeps units * theta a sound upper bound wherever the plant is out of
  // reach (update-stage checks, fixed-topology baselines).
  double cap = wavelength_capacity_;
  for (Segment& s : c.segments) {
    s.snr_db = PathSnrDb(s.fibers);
    cap = std::min(cap, CapacityForSnrGbps(s.snr_db, qot_));
  }
  c.capacity_gbps = c.segments.empty() ? 0.0 : cap;
}

std::vector<CircuitId> OpticalNetwork::DegradeFiber(net::EdgeId fiber,
                                                    double db) {
  if (db < 0.0) throw std::invalid_argument("DegradeFiber: negative dB");
  if (fiber_degrade_db_[fiber] == db) return {};  // unchanged level: no-op
  BumpStamp();
  fiber_degrade_db_[fiber] = db;
  if (!qot_.enabled) return {};  // recorded for checkpoints only
  // Re-grade every circuit crossing the fiber; tear down those that no
  // longer close at any modulation tier (deterministic id order).
  std::vector<CircuitId> victims;
  for (auto& [id, c] : circuits_) {
    bool crosses = false;
    for (const Segment& s : c.segments) {
      if (std::find(s.fibers.begin(), s.fibers.end(), fiber) !=
          s.fibers.end()) {
        crosses = true;
        break;
      }
    }
    if (!crosses) continue;
    GradeCircuit(c);
    if (c.capacity_gbps <= 0.0) victims.push_back(id);
  }
  for (CircuitId id : victims) ReleaseCircuit(id);
  return victims;
}

bool OpticalNetwork::RepairFiberDegradation(net::EdgeId fiber) {
  if (fiber_degrade_db_[fiber] == 0.0) return false;  // nothing set: no-op
  DegradeFiber(fiber, 0.0);  // repair only raises SNR; never tears down
  return true;
}

bool OpticalNetwork::AnyFiberDegraded() const {
  for (double db : fiber_degrade_db_) {
    if (db != 0.0) return true;
  }
  return false;
}

int OpticalNetwork::FreeWavelengths(net::EdgeId fiber) const {
  if (FiberDead(fiber)) return 0;
  int free = 0;
  for (bool used : lambda_used_[fiber]) {
    if (!used) ++free;
  }
  return free;
}

std::vector<int> OpticalNetwork::WavelengthOrder(int grid) const {
  std::vector<int> order(static_cast<size_t>(grid));
  for (int i = 0; i < grid; ++i) order[static_cast<size_t>(i)] = i;
  if (lambda_policy_ == WavelengthPolicy::kFirstFit) return order;
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    const int ua = lambda_usage_[static_cast<size_t>(a)];
    const int ub = lambda_usage_[static_cast<size_t>(b)];
    if (ua != ub) {
      return lambda_policy_ == WavelengthPolicy::kMostUsed ? ua > ub
                                                           : ua < ub;
    }
    return a < b;
  });
  return order;
}

int OpticalNetwork::FindCommonWavelength(
    const std::vector<net::EdgeId>& fibers) const {
  if (fibers.empty()) return -1;
  int min_grid = fibers_[fibers[0]].num_wavelengths;
  for (net::EdgeId f : fibers) {
    if (FiberDead(f)) return -1;
    min_grid = std::min(min_grid, fibers_[f].num_wavelengths);
  }
  for (int lambda : WavelengthOrder(min_grid)) {
    bool ok = true;
    for (net::EdgeId f : fibers) {
      if (lambda_used_[f][lambda]) {
        ok = false;
        break;
      }
    }
    if (ok) return lambda;
  }
  return -1;
}

double OpticalNetwork::FiberDistanceKm(net::NodeId u, net::NodeId v) const {
  return FiberTree(u).dist[v];
}

const net::SpTree& OpticalNetwork::FiberTree(net::NodeId u) const {
  auto& trees = fiber_cache_.trees;
  if (trees.size() != sites_.size()) trees.assign(sites_.size(), std::nullopt);
  auto& slot = trees[static_cast<size_t>(u)];
  if (!slot) {
    slot = net::Dijkstra(fiber_graph_, u,
                         [this](net::EdgeId e) { return !FiberDead(e); });
  }
  return *slot;
}

const std::vector<net::Path>& OpticalNetwork::SegmentRoutes(
    net::NodeId a, net::NodeId b) const {
  auto& routes = fiber_cache_.routes;
  const size_t n = sites_.size();
  if (routes.size() != n * n) routes.assign(n * n, std::nullopt);
  auto& slot = routes[static_cast<size_t>(a) * n + static_cast<size_t>(b)];
  if (!slot) {
    slot = net::KShortestPaths(
        fiber_graph_, a, b, kMaxFiberPathsPerSegment,
        [this](net::EdgeId e) { return !FiberDead(e); });
  }
  return *slot;
}

std::optional<Circuit> OpticalNetwork::RealizeSequence(
    const std::vector<net::NodeId>& seq) const {
  Circuit c;
  c.src = seq.front();
  c.dst = seq.back();
  c.regen_sites.assign(seq.begin() + 1, seq.end() - 1);

  // Tentative wavelength bookings (fiber -> lambdas) so that two segments of
  // the same circuit never double-book a wavelength.
  std::map<net::EdgeId, std::set<int>> tentative;

  for (size_t i = 0; i + 1 < seq.size(); ++i) {
    const net::NodeId a = seq[i];
    const net::NodeId b = seq[i + 1];
    // Candidate fiber routes for this segment. Legacy: first route within
    // reach that has a free common wavelength. QoT: SNR-graded — among the
    // routes that close at some modulation tier and have a free wavelength,
    // the highest-capacity one wins (ties to the shorter route; the
    // candidate list is sorted ascending by length).
    const auto& routes = SegmentRoutes(a, b);
    bool segment_done = false;
    const net::Path* best_route = nullptr;
    int best_lambda = -1;
    double best_snr = 0.0;
    double best_cap = 0.0;
    for (const net::Path& route : routes) {
      double snr = 0.0;
      double cap = 0.0;
      if (qot_.enabled) {
        snr = PathSnrDb(route.edges);
        cap = CapacityForSnrGbps(snr, qot_);
        if (cap <= 0.0) continue;  // longer routes may still close: keep going
        if (cap <= best_cap) continue;
      } else if (route.length > reach_km_) {
        break;  // sorted ascending; none fit
      }
      // Smallest wavelength free on every fiber of the route, also
      // excluding this circuit's own tentative bookings.
      int min_grid = fibers_[route.edges.front()].num_wavelengths;
      for (net::EdgeId f : route.edges) {
        min_grid = std::min(min_grid, fibers_[f].num_wavelengths);
      }
      int chosen = -1;
      for (int lambda : WavelengthOrder(min_grid)) {
        bool ok = true;
        for (net::EdgeId f : route.edges) {
          if (lambda_used_[f][lambda]) {
            ok = false;
            break;
          }
          auto it = tentative.find(f);
          if (it != tentative.end() && it->second.count(lambda)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          chosen = lambda;
          break;
        }
      }
      if (chosen < 0) continue;
      if (qot_.enabled) {
        best_route = &route;
        best_lambda = chosen;
        best_snr = snr;
        best_cap = cap;
        continue;
      }
      Segment s;
      s.fibers = route.edges;
      s.wavelength = chosen;
      s.length_km = route.length;
      for (net::EdgeId f : s.fibers) tentative[f].insert(chosen);
      c.segments.push_back(std::move(s));
      segment_done = true;
      break;
    }
    if (qot_.enabled && best_route != nullptr) {
      Segment s;
      s.fibers = best_route->edges;
      s.wavelength = best_lambda;
      s.length_km = best_route->length;
      s.snr_db = best_snr;
      for (net::EdgeId f : s.fibers) tentative[f].insert(best_lambda);
      c.segments.push_back(std::move(s));
      segment_done = true;
    }
    if (!segment_done) return std::nullopt;
  }
  GradeCircuit(c);
  return c;
}

void OpticalNetwork::Commit(Circuit& c) {
  BumpStamp();
  c.id = next_circuit_id_++;
  for (const Segment& s : c.segments) {
    for (net::EdgeId f : s.fibers) {
      lambda_used_[f][s.wavelength] = true;
      ++lambda_usage_[static_cast<size_t>(s.wavelength)];
    }
  }
  for (net::NodeId r : c.regen_sites) {
    --regens_free_[r];
  }
  circuits_.emplace(c.id, c);
}

std::optional<CircuitId> OpticalNetwork::ProvisionCircuit(net::NodeId src,
                                                          net::NodeId dst) {
  if (src == dst || src < 0 || dst < 0 || src >= NumSites() ||
      dst >= NumSites()) {
    return std::nullopt;
  }
  if (site_failed_[src] || site_failed_[dst]) return std::nullopt;
  const RegenGraph rg(*this, src, dst, balance_regens_);
  // QoT mode: every candidate sequence is realized and the highest-capacity
  // circuit wins (capacity = min tier over segments; a regen resets the SNR
  // budget, so more regens can mean more capacity). Ties keep the earliest
  // candidate, which the regen graph orders by fewest regens then shortest
  // fiber distance. Legacy mode commits the first realizable sequence.
  std::optional<Circuit> best;
  for (const auto& seq : rg.CandidateSequences(kMaxSequences)) {
    // Every interior site consumes a regenerator; check availability (the
    // regen graph only contains sites with >= 1 free, but a sequence might
    // not be realisable if it revisits constraints another way).
    bool regens_ok = true;
    std::map<net::NodeId, int> needed;
    for (size_t i = 1; i + 1 < seq.size(); ++i) ++needed[seq[i]];
    for (const auto& [site, cnt] : needed) {
      if (regens_free_[site] < cnt) {
        regens_ok = false;
        break;
      }
    }
    if (!regens_ok) continue;
    auto circuit = RealizeSequence(seq);
    if (!circuit) continue;
    if (!qot_.enabled) {
      Commit(*circuit);
      return circuit->id;
    }
    if (circuit->capacity_gbps <= 0.0) continue;
    if (!best || circuit->capacity_gbps > best->capacity_gbps) {
      best = std::move(circuit);
    }
  }
  if (best) {
    Commit(*best);
    return best->id;
  }
  return std::nullopt;
}

std::optional<CircuitId> OpticalNetwork::ProvisionCircuitAlongRoute(
    const net::Path& route) {
  if (route.edges.empty()) return std::nullopt;
  for (net::EdgeId f : route.edges) {
    if (FiberDead(f)) return std::nullopt;
  }

  // Min-regenerator segmentation along the route: BFS over breakpoint
  // indices, where hop i->j is allowed if the fiber distance fits the
  // optical reach and interior breakpoints have a free regenerator.
  const size_t m = route.nodes.size();
  std::vector<double> prefix(m, 0.0);
  for (size_t i = 1; i < m; ++i) {
    prefix[i] = prefix[i - 1] + fibers_[route.edges[i - 1]].length_km;
  }
  std::vector<int> hops(m, -1);
  std::vector<size_t> back(m, 0);
  hops[0] = 0;
  for (size_t i = 0; i < m; ++i) {
    if (hops[i] < 0) continue;
    if (i > 0 && i + 1 < m && regens_free_[route.nodes[i]] <= 0) continue;
    for (size_t j = i + 1; j < m; ++j) {
      if (prefix[j] - prefix[i] > effective_reach_km_ + 1e-9) break;
      if (hops[j] < 0 || hops[j] > hops[i] + 1) {
        hops[j] = hops[i] + 1;
        back[j] = i;
      }
    }
  }
  if (hops[m - 1] < 0) return std::nullopt;

  std::vector<size_t> breakpoints;
  for (size_t cur = m - 1; cur != 0; cur = back[cur]) {
    breakpoints.push_back(cur);
  }
  breakpoints.push_back(0);
  std::reverse(breakpoints.begin(), breakpoints.end());

  Circuit c;
  c.src = route.nodes.front();
  c.dst = route.nodes.back();
  std::map<net::EdgeId, std::set<int>> tentative;
  for (size_t bi = 0; bi + 1 < breakpoints.size(); ++bi) {
    const size_t a = breakpoints[bi];
    const size_t b = breakpoints[bi + 1];
    Segment s;
    s.fibers.assign(route.edges.begin() + static_cast<long>(a),
                    route.edges.begin() + static_cast<long>(b));
    s.length_km = prefix[b] - prefix[a];
    int min_grid = fibers_[s.fibers.front()].num_wavelengths;
    for (net::EdgeId f : s.fibers) {
      min_grid = std::min(min_grid, fibers_[f].num_wavelengths);
    }
    int chosen = -1;
    for (int lambda : WavelengthOrder(min_grid)) {
      bool ok = true;
      for (net::EdgeId f : s.fibers) {
        if (lambda_used_[f][lambda] ||
            (tentative.count(f) && tentative[f].count(lambda))) {
          ok = false;
          break;
        }
      }
      if (ok) {
        chosen = lambda;
        break;
      }
    }
    if (chosen < 0) return std::nullopt;
    s.wavelength = chosen;
    for (net::EdgeId f : s.fibers) tentative[f].insert(chosen);
    c.segments.push_back(std::move(s));
    if (bi + 2 < breakpoints.size()) {
      c.regen_sites.push_back(route.nodes[b]);
    }
  }
  GradeCircuit(c);
  // The effective-reach segmentation bound is contiguous-fiber; a segment
  // stitched from several fibers (extra remainder spans) can still miss
  // every tier, which is authoritative.
  if (qot_.enabled && c.capacity_gbps <= 0.0) return std::nullopt;
  Commit(c);
  return c.id;
}

std::optional<std::pair<CircuitId, CircuitId>>
OpticalNetwork::ProvisionProtectedPair(net::NodeId src, net::NodeId dst) {
  auto pair = net::EdgeDisjointPair(
      fiber_graph_, src, dst,
      [this](net::EdgeId e) { return !FiberDead(e); });
  if (!pair) return std::nullopt;
  auto working = ProvisionCircuitAlongRoute(pair->first);
  if (!working) return std::nullopt;
  auto backup = ProvisionCircuitAlongRoute(pair->second);
  if (!backup) {
    ReleaseCircuit(*working);
    return std::nullopt;
  }
  return std::make_pair(*working, *backup);
}

void OpticalNetwork::ReleaseCircuit(CircuitId id) {
  auto it = circuits_.find(id);
  if (it == circuits_.end()) {
    throw std::invalid_argument("ReleaseCircuit: unknown circuit");
  }
  BumpStamp();
  const Circuit& c = it->second;
  for (const Segment& s : c.segments) {
    for (net::EdgeId f : s.fibers) {
      lambda_used_[f][s.wavelength] = false;
      --lambda_usage_[static_cast<size_t>(s.wavelength)];
    }
  }
  for (net::NodeId r : c.regen_sites) ++regens_free_[r];
  circuits_.erase(it);
}

void OpticalNetwork::RestoreCircuit(const Circuit& c) {
  if (c.id == kInvalidCircuit || circuits_.count(c.id)) {
    throw std::invalid_argument("RestoreCircuit: id invalid or live");
  }
  for (const Segment& s : c.segments) {
    for (net::EdgeId f : s.fibers) {
      if (lambda_used_[f][s.wavelength]) {
        throw std::logic_error("RestoreCircuit: wavelength occupied");
      }
    }
  }
  BumpStamp();
  for (const Segment& s : c.segments) {
    for (net::EdgeId f : s.fibers) {
      lambda_used_[f][s.wavelength] = true;
      ++lambda_usage_[static_cast<size_t>(s.wavelength)];
    }
  }
  for (net::NodeId r : c.regen_sites) --regens_free_[r];
  // Re-grade rather than trust the caller's copy: quality is a pure
  // function of the plant, so for a genuine rollback this reproduces the
  // stored values exactly, while hand-built circuits get consistent ones.
  Circuit copy = c;
  GradeCircuit(copy);
  circuits_.emplace(c.id, std::move(copy));
}

void OpticalNetwork::RewindCircuitIds(CircuitId id) {
  if (id > next_circuit_id_ ||
      (!circuits_.empty() && id <= circuits_.rbegin()->first)) {
    throw std::invalid_argument("RewindCircuitIds: id out of range");
  }
  BumpStamp();
  next_circuit_id_ = id;
}

std::vector<CircuitId> OpticalNetwork::CircuitsBetween(net::NodeId u,
                                                       net::NodeId v) const {
  std::vector<CircuitId> out;
  for (const auto& [id, c] : circuits_) {
    if ((c.src == u && c.dst == v) || (c.src == v && c.dst == u)) {
      out.push_back(id);
    }
  }
  return out;
}

bool OpticalNetwork::CheckInvariants(std::string* error) const {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  // Recompute wavelength occupancy and regen usage from circuits.
  std::vector<std::vector<bool>> lam(lambda_used_.size());
  for (size_t f = 0; f < lambda_used_.size(); ++f) {
    lam[f].assign(lambda_used_[f].size(), false);
  }
  std::vector<int> regen_used(sites_.size(), 0);
  for (const auto& [id, c] : circuits_) {
    (void)id;
    if (c.segments.size() != c.regen_sites.size() + 1) {
      return fail("segment/regen count mismatch in " + ToString(c));
    }
    double regraded_cap = wavelength_capacity_;  // theta caps every tier
    for (const Segment& s : c.segments) {
      if (qot_.enabled) {
        // QoT mode: signal quality, not the hard reach bound, governs
        // feasibility. Stored SNR must match a recomputation against the
        // current plant (same deterministic code path, so exactly).
        const double snr = PathSnrDb(s.fibers);
        if (snr != s.snr_db) {
          return fail("stale segment SNR in " + ToString(c));
        }
        regraded_cap = std::min(regraded_cap, CapacityForSnrGbps(snr, qot_));
      } else if (s.length_km > reach_km_ + 1e-6) {
        return fail("segment exceeds optical reach in " + ToString(c));
      }
      for (net::EdgeId f : s.fibers) {
        if (FiberDead(f)) {
          return fail("live circuit crosses a failed fiber/site in " +
                      ToString(c));
        }
        if (s.wavelength < 0 ||
            s.wavelength >= fibers_[f].num_wavelengths) {
          return fail("wavelength out of grid in " + ToString(c));
        }
        if (lam[f][s.wavelength]) {
          return fail("wavelength double-booked in " + ToString(c));
        }
        lam[f][s.wavelength] = true;
      }
    }
    if (qot_.enabled) {
      if (c.segments.empty()) regraded_cap = 0.0;
      if (c.capacity_gbps != regraded_cap) {
        return fail("capacity out of step with modulation table in " +
                    ToString(c));
      }
      if (c.capacity_gbps <= 0.0) {
        return fail("zero-capacity circuit left live: " + ToString(c));
      }
    } else if (c.capacity_gbps != wavelength_capacity_) {
      return fail("legacy circuit capacity != theta in " + ToString(c));
    }
    for (net::NodeId r : c.regen_sites) ++regen_used[r];
  }
  for (size_t f = 0; f < lambda_used_.size(); ++f) {
    if (lam[f] != lambda_used_[f]) {
      return fail("wavelength occupancy bitmap out of sync on fiber " +
                  std::to_string(f));
    }
  }
  // Global per-wavelength usage counters must match occupancy.
  std::vector<int> usage(lambda_usage_.size(), 0);
  for (size_t f = 0; f < lam.size(); ++f) {
    for (size_t l = 0; l < lam[f].size(); ++l) {
      if (lam[f][l]) ++usage[l];
    }
  }
  if (usage != lambda_usage_) {
    return fail("wavelength usage counters out of sync");
  }
  for (size_t v = 0; v < sites_.size(); ++v) {
    if (regens_free_[v] + regen_used[v] + regens_failed_[v] !=
        sites_[v].regenerators) {
      return fail("regenerator accounting broken at site " +
                  std::to_string(v));
    }
    if (regens_free_[v] < 0) {
      return fail("negative free regens at site " + std::to_string(v));
    }
    if (regens_failed_[v] < 0 ||
        regens_failed_[v] > sites_[v].regenerators) {
      return fail("failed-regen count out of range at site " +
                  std::to_string(v));
    }
    if (ports_failed_[v] < 0 || ports_failed_[v] > sites_[v].router_ports) {
      return fail("failed-port count out of range at site " +
                  std::to_string(v));
    }
  }
  return true;
}

bool OpticalNetwork::FiberDead(net::EdgeId fiber) const {
  if (fiber_failed_[fiber]) return true;
  const net::Edge& e = fiber_graph_.edge(fiber);
  return site_failed_[e.u] || site_failed_[e.v];
}

bool OpticalNetwork::FiberFailed(net::EdgeId fiber) const {
  return FiberDead(fiber);
}

std::vector<CircuitId> OpticalNetwork::FailFiber(net::EdgeId fiber) {
  if (fiber_failed_[fiber]) return {};  // repeated cut: no-op
  BumpStamp();
  std::vector<CircuitId> victims;
  for (const auto& [id, c] : circuits_) {
    for (const Segment& s : c.segments) {
      if (std::find(s.fibers.begin(), s.fibers.end(), fiber) !=
          s.fibers.end()) {
        victims.push_back(id);
        break;
      }
    }
  }
  for (CircuitId id : victims) ReleaseCircuit(id);
  fiber_failed_[fiber] = true;
  fiber_cache_.Clear();
  return victims;
}

bool OpticalNetwork::RestoreFiber(net::EdgeId fiber) {
  if (!fiber_failed_[fiber]) return false;  // repair of a live fiber: no-op
  BumpStamp();
  fiber_failed_[fiber] = false;
  fiber_cache_.Clear();
  return true;
}

std::vector<CircuitId> OpticalNetwork::FailSite(net::NodeId v) {
  if (site_failed_[v]) return {};  // repeated outage: no-op
  BumpStamp();
  // Every circuit touching the site dies: terminating there, regenerating
  // there, or routed over an incident fiber.
  std::vector<CircuitId> victims;
  for (const auto& [id, c] : circuits_) {
    bool touches = c.src == v || c.dst == v ||
                   std::find(c.regen_sites.begin(), c.regen_sites.end(), v) !=
                       c.regen_sites.end();
    for (size_t si = 0; !touches && si < c.segments.size(); ++si) {
      for (net::EdgeId f : c.segments[si].fibers) {
        const net::Edge& e = fiber_graph_.edge(f);
        if (e.u == v || e.v == v) {
          touches = true;
          break;
        }
      }
    }
    if (touches) victims.push_back(id);
  }
  for (CircuitId id : victims) ReleaseCircuit(id);
  site_failed_[v] = true;
  fiber_cache_.Clear();
  return victims;
}

bool OpticalNetwork::RestoreSite(net::NodeId v) {
  if (!site_failed_[v]) return false;
  BumpStamp();
  site_failed_[v] = false;
  fiber_cache_.Clear();
  return true;
}

int OpticalNetwork::UsablePorts(net::NodeId v) const {
  if (site_failed_[v]) return 0;
  return sites_[v].router_ports - ports_failed_[v];
}

int OpticalNetwork::FailPorts(net::NodeId v, int count) {
  const int lost =
      std::clamp(count, 0, sites_[v].router_ports - ports_failed_[v]);
  if (lost > 0) BumpStamp();
  ports_failed_[v] += lost;
  return lost;
}

int OpticalNetwork::RestorePorts(net::NodeId v, int count) {
  const int restored = std::clamp(count, 0, ports_failed_[v]);
  if (restored > 0) BumpStamp();
  ports_failed_[v] -= restored;
  return restored;
}

std::vector<CircuitId> OpticalNetwork::FailRegens(net::NodeId v, int count) {
  const int take =
      std::clamp(count, 0, sites_[v].regenerators - regens_failed_[v]);
  if (take > 0) BumpStamp();
  int need = take;
  std::vector<CircuitId> victims;
  auto drain_free = [&] {
    const int from_free = std::min(need, regens_free_[v]);
    regens_free_[v] -= from_free;
    need -= from_free;
  };
  drain_free();
  while (need > 0) {
    // Free pool exhausted: tear down the lowest-id circuit regenerating at
    // v; its release returns regens to the pool for the next drain.
    CircuitId victim = kInvalidCircuit;
    for (const auto& [id, c] : circuits_) {
      if (std::find(c.regen_sites.begin(), c.regen_sites.end(), v) !=
          c.regen_sites.end()) {
        victim = id;
        break;
      }
    }
    if (victim == kInvalidCircuit) break;  // accounting says this can't happen
    ReleaseCircuit(victim);
    victims.push_back(victim);
    drain_free();
  }
  regens_failed_[v] += take - need;
  return victims;
}

int OpticalNetwork::RestoreRegens(net::NodeId v, int count) {
  const int restored = std::clamp(count, 0, regens_failed_[v]);
  if (restored > 0) BumpStamp();
  regens_failed_[v] -= restored;
  regens_free_[v] += restored;
  return restored;
}

}  // namespace owan::optical
