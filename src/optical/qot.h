#ifndef OWAN_OPTICAL_QOT_H_
#define OWAN_OPTICAL_QOT_H_

#include <vector>

namespace owan::optical {

// One row of the modulation table: the minimum SNR (dB) at which the
// format still closes, and the per-wavelength capacity it then carries.
// An SNR exactly at min_snr_db qualifies for the tier.
struct ModulationTier {
  double min_snr_db = 0.0;
  double capacity_gbps = 0.0;
};
bool operator==(const ModulationTier& a, const ModulationTier& b);
inline bool operator!=(const ModulationTier& a, const ModulationTier& b) {
  return !(a == b);
}

// Default four-tier table (PM-QPSK .. PM-16QAM flavored). With the default
// span parameters a single amplified 80 km span yields 33 dB OSNR / 31 dB
// SNR, so the tiers grade out at roughly 630 / 1260 / 2530 / 5050 km of
// contiguous fiber for 200 / 150 / 100 / 50 G.
std::vector<ModulationTier> DefaultModulationTiers();

// Physical-layer model knobs. Disabled by default: the plant then keeps the
// legacy hard-reach semantics (reach_km cutoff, fixed theta per wavelength)
// bit-for-bit. Enabling switches provisioning to quality-graded capacity.
struct QotOptions {
  bool enabled = false;
  // Amplifier spacing: a fiber of length L is modeled as floor(L/span_km)
  // full spans plus one remainder span (not an equal division), each
  // followed by an EDFA that contributes ASE noise.
  double span_km = 80.0;
  double fiber_loss_db_per_km = 0.25;
  double amp_noise_figure_db = 5.0;
  double tx_power_dbm = 0.0;
  // Flat margin subtracted from accumulated OSNR to get the SNR that is
  // matched against the modulation table (filtering/aging allowance).
  double snr_margin_db = 2.0;
  std::vector<ModulationTier> tiers = DefaultModulationTiers();
};
bool operator==(const QotOptions& a, const QotOptions& b);
inline bool operator!=(const QotOptions& a, const QotOptions& b) {
  return !(a == b);
}

// 10*log10(P_tx / P_ase-floor) reference used by the per-span OSNR formula:
// OSNR_span = kOsnrRefDb + tx_power_dbm - loss_db - noise_figure_db.
// (58 dB folds the usual 10log10(h*nu*B_ref) = -58 dBm at 0.1 nm.)
inline constexpr double kOsnrRefDb = 58.0;

// Amplified-span layout of one fiber: floor(length/span_km) full spans plus
// the remainder (omitted when zero). Empty for non-positive lengths.
std::vector<double> SpanLengthsKm(double length_km, double span_km);

// OSNR (dB) of a single amplified span of the given length, with
// `extra_loss_db` of additional attenuation (degradation) lumped onto it.
// A zero-length span still costs amplifier noise: kOsnrRefDb + tx - nf.
double SpanOsnrDb(double span_len_km, double extra_loss_db,
                  const QotOptions& q);

// Sum of linear inverse OSNR over the spans of one fiber. Degradation
// (`extra_loss_db`, absolute dB for the whole fiber) is spread uniformly
// across its spans. Zero for a zero-length fiber (no spans, no noise).
// Strictly increasing and continuous in length_km, which makes the reach
// bisection below valid.
double FiberInverseOsnr(double length_km, double extra_loss_db,
                        const QotOptions& q);

// Convert accumulated inverse OSNR to margin-adjusted SNR (dB). An empty
// path (inverse OSNR 0) has infinite SNR.
double SnrDbFromInverseOsnr(double inverse_osnr, const QotOptions& q);

// Highest-capacity tier whose min_snr_db the given SNR meets (>=, so a
// value exactly at threshold qualifies); 0 when below every tier.
double CapacityForSnrGbps(double snr_db, const QotOptions& q);

// Largest single contiguous fiber length that still yields nonzero
// capacity. Heuristic pruning/segmentation bound only: splitting the same
// total length across several fibers can land either above or below this,
// so per-segment SNR remains the authoritative feasibility check.
double EffectiveQotReachKm(const QotOptions& q);

// Seeded-defect hook for `owan_fuzz --inject-bug qot`: when enabled,
// FiberInverseOsnr silently drops the first span's noise contribution of
// every fiber, the classic off-by-one in span accumulation. The QoT oracle
// must catch this via its independent reference implementation.
void TestOnlySkipFirstSpanNoise(bool on);
bool TestOnlySkipFirstSpanNoiseEnabled();

}  // namespace owan::optical

#endif  // OWAN_OPTICAL_QOT_H_
