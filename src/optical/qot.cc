#include "optical/qot.h"

#include <cmath>
#include <limits>

namespace owan::optical {

namespace {
bool g_skip_first_span_noise = false;
}  // namespace

bool operator==(const ModulationTier& a, const ModulationTier& b) {
  return a.min_snr_db == b.min_snr_db && a.capacity_gbps == b.capacity_gbps;
}

std::vector<ModulationTier> DefaultModulationTiers() {
  return {{13.0, 50.0}, {16.0, 100.0}, {19.0, 150.0}, {22.0, 200.0}};
}

bool operator==(const QotOptions& a, const QotOptions& b) {
  return a.enabled == b.enabled && a.span_km == b.span_km &&
         a.fiber_loss_db_per_km == b.fiber_loss_db_per_km &&
         a.amp_noise_figure_db == b.amp_noise_figure_db &&
         a.tx_power_dbm == b.tx_power_dbm &&
         a.snr_margin_db == b.snr_margin_db && a.tiers == b.tiers;
}

std::vector<double> SpanLengthsKm(double length_km, double span_km) {
  std::vector<double> spans;
  if (length_km <= 0.0 || span_km <= 0.0) return spans;
  const int full = static_cast<int>(length_km / span_km);
  spans.reserve(full + 1);
  for (int i = 0; i < full; ++i) spans.push_back(span_km);
  const double rem = length_km - full * span_km;
  if (rem > 1e-9) spans.push_back(rem);
  return spans;
}

double SpanOsnrDb(double span_len_km, double extra_loss_db,
                  const QotOptions& q) {
  return kOsnrRefDb + q.tx_power_dbm - q.fiber_loss_db_per_km * span_len_km -
         extra_loss_db - q.amp_noise_figure_db;
}

double FiberInverseOsnr(double length_km, double extra_loss_db,
                        const QotOptions& q) {
  const std::vector<double> spans = SpanLengthsKm(length_km, q.span_km);
  if (spans.empty()) return 0.0;
  const double per_span_extra = extra_loss_db / spans.size();
  double inv = 0.0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i == 0 && g_skip_first_span_noise) continue;
    inv += std::pow(10.0, -SpanOsnrDb(spans[i], per_span_extra, q) / 10.0);
  }
  return inv;
}

double SnrDbFromInverseOsnr(double inverse_osnr, const QotOptions& q) {
  if (inverse_osnr <= 0.0) return std::numeric_limits<double>::infinity();
  return -10.0 * std::log10(inverse_osnr) - q.snr_margin_db;
}

double CapacityForSnrGbps(double snr_db, const QotOptions& q) {
  double best = 0.0;
  for (const ModulationTier& t : q.tiers) {
    if (snr_db >= t.min_snr_db && t.capacity_gbps > best) {
      best = t.capacity_gbps;
    }
  }
  return best;
}

double EffectiveQotReachKm(const QotOptions& q) {
  const auto feasible = [&q](double len) {
    return CapacityForSnrGbps(
               SnrDbFromInverseOsnr(FiberInverseOsnr(len, 0.0, q), q), q) > 0.0;
  };
  double lo = 0.0;
  if (!feasible(q.span_km)) {
    // Even one clean span fails the lowest tier; probe shorter lengths.
    double hi = q.span_km;
    for (int i = 0; i < 80; ++i) {
      const double mid = 0.5 * (lo + hi);
      (feasible(mid) ? lo : hi) = mid;
    }
    return lo;
  }
  lo = q.span_km;
  double hi = q.span_km;
  while (feasible(hi) && hi < 1e7) hi *= 2.0;
  if (hi >= 1e7) return hi;  // effectively unlimited
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    (feasible(mid) ? lo : hi) = mid;
  }
  return lo;
}

void TestOnlySkipFirstSpanNoise(bool on) { g_skip_first_span_noise = on; }
bool TestOnlySkipFirstSpanNoiseEnabled() { return g_skip_first_span_noise; }

}  // namespace owan::optical
