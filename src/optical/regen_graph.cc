#include "optical/regen_graph.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "net/shortest_path.h"

namespace owan::optical {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Lexicographic combination: regen-balance weight dominates, fiber distance
// breaks ties. Node weights are <= 1 and distances are < 1e6 km, so 1e9
// keeps the two scales disjoint.
constexpr double kWeightScale = 1e9;

// Minimal directed graph used for the transformed graph of Fig. 5(b).
struct DiGraph {
  explicit DiGraph(int n) : adj(n) {}
  // adj[u] = list of (v, arc_weight)
  std::vector<std::vector<std::pair<int, double>>> adj;

  int NumNodes() const { return static_cast<int>(adj.size()); }
};

struct DiPath {
  std::vector<int> nodes;
  double cost = 0.0;
};

// Dijkstra over the directed transformed graph with banned nodes/arcs
// (for Yen's spur computation).
DiPath DirectedShortest(const DiGraph& g, int src, int dst,
                        const std::vector<bool>& banned_node,
                        const std::set<std::pair<int, int>>& banned_arc) {
  const int n = g.NumNodes();
  std::vector<double> dist(n, kInf);
  std::vector<int> parent(n, -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const auto& [v, w] : g.adj[u]) {
      if (banned_node[v]) continue;
      if (banned_arc.count({u, v})) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  DiPath p;
  if (dist[dst] == kInf) return p;
  p.cost = dist[dst];
  for (int cur = dst; cur != -1; cur = parent[cur]) p.nodes.push_back(cur);
  std::reverse(p.nodes.begin(), p.nodes.end());
  return p;
}

// Yen's k-shortest loopless paths on the directed graph.
std::vector<DiPath> DirectedKShortest(const DiGraph& g, int src, int dst,
                                      int k) {
  std::vector<DiPath> result;
  std::vector<bool> no_ban(g.NumNodes(), false);
  DiPath first = DirectedShortest(g, src, dst, no_ban, {});
  if (first.nodes.empty()) return result;
  result.push_back(std::move(first));

  auto cmp = [](const DiPath& a, const DiPath& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  };
  std::set<DiPath, decltype(cmp)> candidates(cmp);
  std::set<std::vector<int>> known;
  known.insert(result[0].nodes);

  while (static_cast<int>(result.size()) < k) {
    const DiPath& prev = result.back();
    for (size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const int spur = prev.nodes[i];
      std::set<std::pair<int, int>> banned_arc;
      for (const DiPath& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(prev.nodes.begin(),
                       prev.nodes.begin() + static_cast<long>(i) + 1,
                       p.nodes.begin())) {
          banned_arc.insert({p.nodes[i], p.nodes[i + 1]});
        }
      }
      std::vector<bool> banned_node(g.NumNodes(), false);
      for (size_t j = 0; j < i; ++j) banned_node[prev.nodes[j]] = true;

      DiPath spur_path =
          DirectedShortest(g, spur, dst, banned_node, banned_arc);
      if (spur_path.nodes.empty()) continue;

      DiPath total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<long>(i));
      total.nodes.insert(total.nodes.end(), spur_path.nodes.begin(),
                         spur_path.nodes.end());
      // Recompute cost over arcs.
      total.cost = 0.0;
      bool valid = true;
      for (size_t j = 0; j + 1 < total.nodes.size(); ++j) {
        const int u = total.nodes[j];
        const int v = total.nodes[j + 1];
        double w = kInf;
        for (const auto& [to, aw] : g.adj[u]) {
          if (to == v) {
            w = aw;
            break;
          }
        }
        if (w == kInf) {
          valid = false;
          break;
        }
        total.cost += w;
      }
      if (valid && !known.count(total.nodes)) {
        known.insert(total.nodes);
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace

RegenGraph::RegenGraph(const OpticalNetwork& on, net::NodeId src,
                       net::NodeId dst, bool balance)
    : on_(on), src_(src), dst_(dst), graph_(on.NumSites()) {
  const int n = on.NumSites();
  node_weight_.assign(n, kInf);
  participates_.assign(n, false);

  for (net::NodeId v = 0; v < n; ++v) {
    if (v == src || v == dst) {
      participates_[v] = true;
      node_weight_[v] = 0.0;
    } else if (on.FreeRegens(v) > 0) {
      participates_[v] = true;
      node_weight_[v] =
          balance ? 1.0 / static_cast<double>(on.FreeRegens(v)) : 1.0;
    }
  }

  // Edge between participants whose shortest fiber distance is within reach.
  hop_dist_km_.assign(n, std::vector<double>(n, kInf));
  for (net::NodeId u = 0; u < n; ++u) {
    if (!participates_[u]) continue;
    // Shortest fiber distances from u, skipping failed fibers (cached in
    // the network — a regen graph is built per provisioned circuit, and
    // the fiber plant doesn't change under circuit churn).
    const net::SpTree& tree = on.FiberTree(u);
    for (net::NodeId v = u + 1; v < n; ++v) {
      if (!participates_[v]) continue;
      if (!tree.Reachable(v)) continue;
      const double d = tree.dist[v];
      // Effective reach: the hard eta in legacy mode, the QoT
      // contiguous-fiber bound when impairments are modeled (heuristic —
      // RealizeSequence still grades each concrete route's SNR).
      if (d <= on.EffectiveReachKm()) {
        graph_.AddEdge(u, v, d);
        hop_dist_km_[u][v] = hop_dist_km_[v][u] = d;
      }
    }
  }
}

double RegenGraph::SequenceWeight(
    const std::vector<net::NodeId>& seq) const {
  double w = 0.0;
  for (size_t i = 1; i + 1 < seq.size(); ++i) w += node_weight_[seq[i]];
  return w;
}

std::vector<std::vector<net::NodeId>> RegenGraph::CandidateSequences(
    int k) const {
  std::vector<std::vector<net::NodeId>> out;
  if (src_ == dst_) return out;

  // Transformed graph (Fig. 5b): each undirected regen edge (u,v) becomes
  // arcs u->v weighted by node_weight(v) and v->u weighted by
  // node_weight(u); fiber distance breaks ties lexicographically.
  DiGraph tg(graph_.NumNodes());
  for (const net::Edge& e : graph_.edges()) {
    tg.adj[e.u].emplace_back(e.v,
                             node_weight_[e.v] * kWeightScale + e.weight);
    tg.adj[e.v].emplace_back(e.u,
                             node_weight_[e.u] * kWeightScale + e.weight);
  }

  for (DiPath& p : DirectedKShortest(tg, src_, dst_, k)) {
    out.emplace_back(p.nodes.begin(), p.nodes.end());
  }
  return out;
}

}  // namespace owan::optical
