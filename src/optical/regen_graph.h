#ifndef OWAN_OPTICAL_REGEN_GRAPH_H_
#define OWAN_OPTICAL_REGEN_GRAPH_H_

#include <vector>

#include "net/graph.h"
#include "optical/optical_network.h"

namespace owan::optical {

// Regenerator-graph machinery (paper Fig. 5).
//
// Nodes are the circuit's source, destination, and every site that still has
// free regenerators. An edge connects two nodes whose shortest fiber
// distance is within the optical reach eta. Each node carries a weight equal
// to the inverse of its remaining regenerators (src/dst weigh 0) so the path
// search balances regenerator consumption across sites. The min-node-weight
// path problem is solved on a *transformed* directed graph where each
// undirected edge becomes two arcs weighted by the node they point at.
class RegenGraph {
 public:
  // Builds the regenerator graph for a circuit src -> dst over the current
  // resource state of `on`. With `balance` (the paper's design) node
  // weights are the inverse of remaining regenerators; without it every
  // regen site weighs the same and the search just minimizes regen count +
  // distance (the ablation baseline).
  RegenGraph(const OpticalNetwork& on, net::NodeId src, net::NodeId dst,
             bool balance = true);

  // The underlying undirected regen graph; node ids here are *site* ids
  // (only a subset of sites participate; non-participants are isolated).
  const net::Graph& graph() const { return graph_; }

  double NodeWeight(net::NodeId site) const { return node_weight_[site]; }
  bool Participates(net::NodeId site) const { return participates_[site]; }

  // Up to k site sequences from src to dst ordered by (total interior node
  // weight, then total fiber distance). Each sequence is directly usable as
  // a circuit's regeneration-site chain. Computed via shortest-path search
  // on the transformed directed graph.
  std::vector<std::vector<net::NodeId>> CandidateSequences(int k) const;

  // Total interior node weight of a site sequence.
  double SequenceWeight(const std::vector<net::NodeId>& seq) const;

 private:
  const OpticalNetwork& on_;
  net::NodeId src_;
  net::NodeId dst_;
  net::Graph graph_;
  std::vector<double> node_weight_;
  std::vector<bool> participates_;
  std::vector<std::vector<double>> hop_dist_km_;  // fiber km per regen edge
};

}  // namespace owan::optical

#endif  // OWAN_OPTICAL_REGEN_GRAPH_H_
