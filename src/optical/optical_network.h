#ifndef OWAN_OPTICAL_OPTICAL_NETWORK_H_
#define OWAN_OPTICAL_OPTICAL_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/graph.h"
#include "net/shortest_path.h"
#include "optical/circuit.h"
#include "optical/qot.h"

namespace owan::optical {

// Static description of one WAN site: the ROADM co-located with (at most)
// one router, the number of WAN-facing router ports connected to the ROADM
// (fp_v in the paper), and the number of pre-deployed regenerators (rg_v).
struct SiteInfo {
  std::string name;
  int router_ports = 0;
  int regenerators = 0;
  bool has_router = true;
};

// Static description of one fiber pair between two ROADMs.
struct FiberInfo {
  double length_km = 0.0;
  int num_wavelengths = 0;  // phi in the paper
};

// How a circuit picks among the wavelengths free along its segment.
// kFirstFit is the classic default; kMostUsed packs popular wavelengths to
// fight fragmentation (better for long-haul continuity); kLeastUsed spreads
// load (fewer collisions on short-lived circuits).
enum class WavelengthPolicy { kFirstFit, kMostUsed, kLeastUsed };

// The optical layer: ROADM sites connected by fibers, plus the dynamic
// resource state (which wavelengths each fiber carries, how many
// regenerators each site has left) and the set of provisioned circuits.
//
// The class is copyable by design: the simulated-annealing energy function
// provisions circuits against a scratch copy when scoring candidate
// topologies, leaving the live network untouched.
class OpticalNetwork {
 public:
  // reach_km is the optical reach (eta); wavelength capacity is theta (Gbps).
  OpticalNetwork(std::vector<SiteInfo> sites, double reach_km,
                 double wavelength_capacity);

  // Adds a fiber pair between sites u and v. Returns the fiber's edge id.
  net::EdgeId AddFiber(net::NodeId u, net::NodeId v, double length_km,
                       int num_wavelengths);

  int NumSites() const { return static_cast<int>(sites_.size()); }
  const SiteInfo& site(net::NodeId v) const { return sites_[v]; }
  const net::Graph& fiber_graph() const { return fiber_graph_; }
  const FiberInfo& fiber(net::EdgeId e) const { return fibers_[e]; }
  int NumFibers() const { return static_cast<int>(fibers_.size()); }

  double reach_km() const { return reach_km_; }
  double wavelength_capacity() const { return wavelength_capacity_; }

  // ---- physical-layer QoT model (optical/qot.h) ----

  const QotOptions& qot() const { return qot_; }
  // Installs the QoT model. Only legal on a plant with no live circuits
  // (existing circuits would carry stale quality); throws otherwise.
  // Disabled options keep legacy hard-reach semantics bit-for-bit.
  void set_qot(const QotOptions& q);

  // Segmentation/pruning reach bound: reach_km() in legacy mode, the
  // single-contiguous-fiber QoT reach when the model is enabled. Heuristic
  // in QoT mode — per-segment SNR stays the authoritative feasibility test.
  double EffectiveReachKm() const { return effective_reach_km_; }

  // Margin-adjusted SNR (dB) of a wavelength-continuous run over `fibers`,
  // including each fiber's current degradation. +inf when QoT is disabled
  // or the run is empty.
  double PathSnrDb(const std::vector<net::EdgeId>& fibers) const;

  // ---- fiber degradation (SNR loss without a cut) ----
  //
  // Sets the fiber's extra attenuation to `db` (absolute level, spread
  // uniformly over its amplified spans). In QoT mode every circuit crossing
  // the fiber is re-graded: capacities shrink or grow with the new SNR, and
  // circuits that no longer close at any tier are torn down (ids returned).
  // Legacy mode records the level (for checkpointing) but changes nothing
  // operationally. No-op (empty return) when the level is unchanged.
  std::vector<CircuitId> DegradeFiber(net::EdgeId fiber, double db);
  // Clears the fiber's degradation; returns false (no-op) if none was set.
  bool RepairFiberDegradation(net::EdgeId fiber);
  double FiberDegradationDb(net::EdgeId fiber) const {
    return fiber_degrade_db_[fiber];
  }
  bool AnyFiberDegraded() const;

  WavelengthPolicy wavelength_policy() const { return lambda_policy_; }
  void set_wavelength_policy(WavelengthPolicy p) {
    lambda_policy_ = p;
    BumpStamp();
  }

  // Regenerator-balancing ablation: when disabled, circuit search ignores
  // how many regens a site has left (DESIGN.md §4).
  bool balance_regens() const { return balance_regens_; }
  void set_balance_regens(bool b) {
    balance_regens_ = b;
    BumpStamp();
  }

  // Mutation stamp. Every state-changing call (fiber plant edits, circuit
  // lifecycle, policy toggles, failure events) moves the stamp to a fresh
  // process-globally-unique value; copies KEEP the source's stamp. Hence
  // two networks with equal stamps are semantically identical (copies of
  // the same snapshot with no mutations since), which is what the warm
  // slot-reuse path in the energy evaluator needs to certify that the
  // blank plant it derived its state from has not changed underneath it.
  // Equal state does NOT imply equal stamps — this is an identity token,
  // not a content hash.
  uint64_t state_stamp() const { return state_stamp_; }

  // Wavelength indices 0..grid-1 in the order the current policy tries
  // them (ties broken by index for determinism).
  std::vector<int> WavelengthOrder(int grid) const;

  // ---- dynamic resource state ----

  int FreeRegens(net::NodeId v) const { return regens_free_[v]; }
  int FreeWavelengths(net::EdgeId fiber) const;
  bool WavelengthUsed(net::EdgeId fiber, int lambda) const {
    return lambda_used_[fiber][lambda];
  }

  // Lowest-index wavelength free on every fiber of `fibers`, or -1.
  int FindCommonWavelength(const std::vector<net::EdgeId>& fibers) const;

  // ---- circuit lifecycle ----

  // Attempts to provision a circuit between src and dst under the reach,
  // wavelength, and regenerator constraints (Algorithm 3, lines 2-14 of the
  // paper). Returns the circuit id, or nullopt if no feasible circuit
  // exists with the current resources.
  std::optional<CircuitId> ProvisionCircuit(net::NodeId src, net::NodeId dst);

  // Provisions a circuit constrained to an explicit fiber route (node
  // sequence over the fiber graph): regeneration points are chosen along
  // the route by a min-regenerator segmentation, then each segment gets a
  // wavelength free on all its fibers. Used for protection paths.
  std::optional<CircuitId> ProvisionCircuitAlongRoute(
      const net::Path& fiber_route);

  // 1+1 protection: provisions a working and a backup circuit on
  // fiber-disjoint routes (Suurballe pair over the fiber plant), so a
  // single fiber cut never kills both. Returns (working, backup).
  std::optional<std::pair<CircuitId, CircuitId>> ProvisionProtectedPair(
      net::NodeId src, net::NodeId dst);

  // Releases a circuit, freeing its wavelengths and regenerators.
  void ReleaseCircuit(CircuitId id);

  // ---- rollback hooks (annealing evaluator) ----
  //
  // The incremental energy evaluator mutates one live OpticalNetwork per
  // chain and must be able to undo a candidate move exactly — same circuit
  // ids, same wavelength bits, same regen counters — so a rolled-back
  // evaluation leaves no trace that could steer later provisioning.

  // Re-commits a previously released circuit verbatim (keeping its id).
  // Throws if the id is live or any of its wavelengths is occupied.
  void RestoreCircuit(const Circuit& c);

  // Id the next provisioned circuit will take.
  CircuitId next_circuit_id() const { return next_circuit_id_; }

  // Rewinds the id counter after rolled-back provisioning so re-running the
  // same provisioning sequence reassigns identical ids. `id` must not be
  // lower than any live circuit's id.
  void RewindCircuitIds(CircuitId id);

  const Circuit& circuit(CircuitId id) const { return circuits_.at(id); }
  const std::map<CircuitId, Circuit>& circuits() const { return circuits_; }
  int NumCircuits() const { return static_cast<int>(circuits_.size()); }

  // All circuits between the given site pair (either direction).
  std::vector<CircuitId> CircuitsBetween(net::NodeId u, net::NodeId v) const;

  // Validates internal resource accounting (used by property tests): every
  // in-use wavelength belongs to exactly one circuit, regen counts add up,
  // every segment respects the optical reach.
  bool CheckInvariants(std::string* error = nullptr) const;

  // Shortest fiber distance (km) between two sites, ignoring resources.
  double FiberDistanceKm(net::NodeId u, net::NodeId v) const;

  // Shortest-path tree over the live fiber plant from `u` — exactly
  // Dijkstra(fiber_graph(), u, !FiberFailed). Served from a lazily-built
  // cache: the tree depends only on the fiber plant and the failure flags,
  // which circuit churn never touches, so the annealing hot loop (which
  // consults fiber distances for every provisioned circuit) reuses it
  // across thousands of provisions. Invalidated by AddFiber / FailFiber /
  // RestoreFiber; a copied network starts with a cold cache (chains run
  // concurrently on their own copies and must not share one lazily).
  const net::SpTree& FiberTree(net::NodeId u) const;

  // ---- failure handling (§3.4) ----
  //
  // All fail/restore calls are idempotent: failing an already-failed
  // component (or restoring a live one) is a no-op with an empty/false
  // return, so repeated or out-of-order fault events never corrupt state.

  // Marks a fiber as failed: existing circuits crossing it are torn down
  // (their ids are returned) and no new circuit may use it. No-op (empty
  // return) if the fiber is already failed.
  std::vector<CircuitId> FailFiber(net::EdgeId fiber);
  // Returns false (no-op) if the fiber was not failed. Restoring a fiber
  // does not resurrect the circuits the failure tore down.
  bool RestoreFiber(net::EdgeId fiber);
  // True when the fiber is unusable — failed directly, or dark because an
  // endpoint site is down.
  bool FiberFailed(net::EdgeId fiber) const;
  // Raw per-fiber failure flag, independent of endpoint site state.
  // Checkpoint serialization needs the distinction: a fiber that is merely
  // dark under a site outage must not be recorded as cut.
  bool FiberCut(net::EdgeId fiber) const { return fiber_failed_[fiber]; }

  // Site/ROADM outage: every circuit touching the site is torn down (the
  // ids are returned) and all incident fibers go dark until RestoreSite.
  // No-op (empty return) if the site is already failed.
  std::vector<CircuitId> FailSite(net::NodeId v);
  // Returns false (no-op) if the site was not failed. Fibers that were
  // independently failed stay failed.
  bool RestoreSite(net::NodeId v);
  bool SiteFailed(net::NodeId v) const { return site_failed_[v]; }

  // Transceiver failures: `count` WAN-facing router ports at `v` stop
  // working (clamped to what is left). Returns how many actually failed.
  // Port accounting is network-layer only — callers shrink the topology to
  // the surviving UsablePorts budget.
  int FailPorts(net::NodeId v, int count);
  int RestorePorts(net::NodeId v, int count);
  // router_ports minus failed ports; 0 while the site itself is down.
  int UsablePorts(net::NodeId v) const;
  int FailedPorts(net::NodeId v) const { return ports_failed_[v]; }

  // Regenerator failures: `count` regens at `v` are lost (clamped). Failed
  // regens come out of the free pool first; if that is not enough, live
  // circuits regenerating at `v` are torn down (lowest id first) until the
  // budget is met. Returns the torn-down circuit ids.
  std::vector<CircuitId> FailRegens(net::NodeId v, int count);
  int RestoreRegens(net::NodeId v, int count);
  int FailedRegens(net::NodeId v) const { return regens_failed_[v]; }

 private:
  friend class RegenGraphBuilder;

  // Fiber unusable for routing: failed directly or endpoint site down.
  bool FiberDead(net::EdgeId fiber) const;

  // Fills per-segment snr_db and the circuit's capacity_gbps from the
  // current plant state (theta / +inf in legacy mode, per-span accumulation
  // with degradation in QoT mode).
  void GradeCircuit(Circuit& c) const;

  // Tries to realise the given site sequence as a circuit; returns nullopt
  // if some segment lacks fiber path, reach, or a common free wavelength.
  std::optional<Circuit> RealizeSequence(
      const std::vector<net::NodeId>& sites) const;

  // Candidate fiber routes for one circuit segment a->b (the k-shortest
  // loopless paths over non-failed fibers), cached like FiberTree: the
  // route list depends on the plant and failure flags only — wavelength
  // occupancy merely decides which of them gets used.
  const std::vector<net::Path>& SegmentRoutes(net::NodeId a,
                                              net::NodeId b) const;

  void Commit(Circuit& c);

  // Advances state_stamp_ to a fresh globally-unique value (see
  // state_stamp()). Called by every mutator after its idempotent
  // early-outs, so no-op calls leave the stamp alone.
  void BumpStamp() {
    state_stamp_ = next_stamp_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<SiteInfo> sites_;
  net::Graph fiber_graph_;  // edge weight = fiber length (km)
  std::vector<FiberInfo> fibers_;
  double reach_km_;
  double wavelength_capacity_;
  QotOptions qot_;
  double effective_reach_km_;
  std::vector<double> fiber_degrade_db_;  // extra attenuation per fiber (dB)

  std::vector<std::vector<bool>> lambda_used_;  // [fiber][wavelength]
  std::vector<int> lambda_usage_;  // global per-index usage (policy input)
  WavelengthPolicy lambda_policy_ = WavelengthPolicy::kFirstFit;
  bool balance_regens_ = true;
  std::vector<bool> fiber_failed_;
  std::vector<bool> site_failed_;
  std::vector<int> ports_failed_;
  std::vector<int> regens_failed_;
  std::vector<int> regens_free_;
  std::map<CircuitId, Circuit> circuits_;
  CircuitId next_circuit_id_ = 0;

  // Lazily-built derived state over the static fiber plant (see FiberTree).
  // Copies start cold on purpose: annealing chains copy the blank network
  // and run concurrently, so sharing a lazily-filled cache would race.
  struct FiberPlantCache {
    std::vector<std::optional<net::SpTree>> trees;              // [site]
    std::vector<std::optional<std::vector<net::Path>>> routes;  // [a*n+b]
    FiberPlantCache() = default;
    FiberPlantCache(const FiberPlantCache&) {}
    FiberPlantCache& operator=(const FiberPlantCache&) {
      Clear();
      return *this;
    }
    FiberPlantCache(FiberPlantCache&&) = default;
    FiberPlantCache& operator=(FiberPlantCache&&) = default;
    void Clear() {
      trees.clear();
      routes.clear();
    }
  };
  mutable FiberPlantCache fiber_cache_;

  static std::atomic<uint64_t> next_stamp_;
  uint64_t state_stamp_ = 0;
};

}  // namespace owan::optical

#endif  // OWAN_OPTICAL_OPTICAL_NETWORK_H_
