#ifndef OWAN_OPTICAL_CIRCUIT_H_
#define OWAN_OPTICAL_CIRCUIT_H_

#include <string>
#include <vector>

#include "net/graph.h"

namespace owan::optical {

using CircuitId = int;
inline constexpr CircuitId kInvalidCircuit = -1;

// One regeneration segment of an optical circuit: a contiguous run of fibers
// carrying the same wavelength. Wavelength continuity must hold within a
// segment; a regenerator at the segment boundary may shift the signal to a
// different wavelength (paper §3.2, constraint 3).
struct Segment {
  std::vector<net::EdgeId> fibers;  // fiber edge ids in traversal order
  int wavelength = -1;              // index into the fiber's wavelength grid
  double length_km = 0.0;
  // Margin-adjusted SNR of this segment under the plant's QoT model; +inf
  // when QoT is disabled (legacy hard-reach mode tracks no signal quality).
  double snr_db = 0.0;
};

// An end-to-end optical circuit implementing one network-layer link. The
// circuit occupies one wavelength on every fiber it crosses and one
// regenerator at every interior regen site.
struct Circuit {
  CircuitId id = kInvalidCircuit;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  std::vector<net::NodeId> regen_sites;  // interior regeneration points
  std::vector<Segment> segments;         // regen_sites.size() + 1 segments
  // Deliverable rate of the circuit. Legacy mode: the plant's fixed theta.
  // QoT mode: the minimum modulation-tier capacity over the segments (each
  // regen resets the SNR budget, so quality is per segment).
  double capacity_gbps = 0.0;

  double TotalLengthKm() const {
    double total = 0.0;
    for (const Segment& s : segments) total += s.length_km;
    return total;
  }

  // Full site sequence src, [regens...], dst.
  std::vector<net::NodeId> SiteSequence() const {
    std::vector<net::NodeId> seq{src};
    seq.insert(seq.end(), regen_sites.begin(), regen_sites.end());
    seq.push_back(dst);
    return seq;
  }
};

std::string ToString(const Circuit& c);

}  // namespace owan::optical

#endif  // OWAN_OPTICAL_CIRCUIT_H_
