#ifndef OWAN_TE_GREEDY_H_
#define OWAN_TE_GREEDY_H_

#include <string>

#include "core/routing.h"
#include "core/te_scheme.h"

namespace owan::te {

// The decoupled "greedy" comparison of §5.4 / Fig. 10a: first build a
// network-layer topology purely from the pairwise demand matrix (most
// demanding pair gets the next wavelength, no joint consideration of
// routing), then provision circuits for it, then run the same routing/rate
// routine as Owan. It optimizes the optical layer and the network layer
// separately and makes no attempt to minimize topology churn.
class GreedyOwanTe : public core::TeScheme {
 public:
  explicit GreedyOwanTe(core::RoutingOptions routing = {})
      : routing_(routing) {}

  std::string name() const override { return "Greedy"; }
  core::TeOutput Compute(const core::TeInput& input) override;

 private:
  core::RoutingOptions routing_;
};

}  // namespace owan::te

#endif  // OWAN_TE_GREEDY_H_
