#include "te/greedy.h"

#include <algorithm>
#include <map>
#include <vector>

#include "core/provisioned_state.h"
#include "net/union_find.h"

namespace owan::te {

core::TeOutput GreedyOwanTe::Compute(const core::TeInput& input) {
  const int n = input.topology->NumSites();
  const double theta = input.optical->wavelength_capacity();

  // Port budget per site comes from the current topology (every WAN port is
  // in use by invariant).
  std::vector<int> ports(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    ports[static_cast<size_t>(v)] = input.topology->PortsUsed(v);
  }

  // Unserved demand per unordered pair, in rate units for this slot.
  std::map<std::pair<int, int>, double> demand;
  for (const core::TransferDemand& d : input.demands) {
    if (d.src == d.dst) continue;
    auto key = d.src < d.dst ? std::make_pair(d.src, d.dst)
                             : std::make_pair(d.dst, d.src);
    demand[key] += d.rate_cap;
  }

  core::Topology topo(n);
  std::vector<int> free = ports;
  for (;;) {
    std::pair<int, int> best{-1, -1};
    double best_demand = 0.0;
    for (const auto& [key, dem] : demand) {
      if (dem > best_demand && free[static_cast<size_t>(key.first)] > 0 &&
          free[static_cast<size_t>(key.second)] > 0) {
        best_demand = dem;
        best = key;
      }
    }
    if (best.first < 0) break;
    topo.AddUnits(best.first, best.second, 1);
    --free[static_cast<size_t>(best.first)];
    --free[static_cast<size_t>(best.second)];
    demand[best] -= theta;
  }

  // Connectivity pass: join disconnected components along the current
  // topology's links where ports remain, so demand-chasing does not strand
  // whole sites.
  {
    net::UnionFind uf(n);
    for (const core::Link& l : topo.Links()) uf.Union(l.u, l.v);
    for (const core::Link& l : input.topology->Links()) {
      if (free[static_cast<size_t>(l.u)] > 0 &&
          free[static_cast<size_t>(l.v)] > 0 && uf.Union(l.u, l.v)) {
        topo.AddUnits(l.u, l.v, 1);
        --free[static_cast<size_t>(l.u)];
        --free[static_cast<size_t>(l.v)];
      }
    }
    // Last resort: bridge any remaining components over free ports.
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (free[static_cast<size_t>(u)] > 0 &&
            free[static_cast<size_t>(v)] > 0 && uf.Union(u, v)) {
          topo.AddUnits(u, v, 1);
          --free[static_cast<size_t>(u)];
          --free[static_cast<size_t>(v)];
        }
      }
    }
  }

  // Leftover ports: reproduce the current topology's links where possible
  // so the network stays connected for multi-hop traffic.
  for (const core::Link& l : input.topology->Links()) {
    for (int i = 0; i < l.units; ++i) {
      if (free[static_cast<size_t>(l.u)] > 0 &&
          free[static_cast<size_t>(l.v)] > 0) {
        topo.AddUnits(l.u, l.v, 1);
        --free[static_cast<size_t>(l.u)];
        --free[static_cast<size_t>(l.v)];
      }
    }
  }

  // Provision circuits for the chosen topology, then route on whatever was
  // realisable.
  core::ProvisionedState state(*input.optical);
  state.SyncTo(topo);
  core::RoutingOutcome r =
      core::AssignRoutesAndRates(state.CapacityGraph(), input.demands,
                                 routing_);

  core::TeOutput out;
  out.allocations = std::move(r.allocations);
  out.new_topology = state.realized();
  return out;
}

}  // namespace owan::te
