#ifndef OWAN_TE_AMOEBA_H_
#define OWAN_TE_AMOEBA_H_

#include <map>
#include <string>
#include <vector>

#include "core/te_scheme.h"
#include "net/shortest_path.h"

namespace owan::te {

// "Amoeba" baseline (Zhang et al., EuroSys'15): deadline-guaranteed
// admission control with future-slot reservations over a fixed topology.
//
// On arrival, the transfer's volume is greedily packed into the earliest
// slots before its deadline along k shortest paths; if the whole volume
// fits, the transfer is admitted and the reservations are kept, otherwise
// it is rejected (and later served best-effort with leftover capacity).
class AmoebaTe : public core::TeScheme {
 public:
  AmoebaTe(const net::Graph& fixed_topology, double slot_seconds,
           int k_paths = 3);

  std::string name() const override { return "Amoeba"; }
  bool Admit(const core::Request& request, double now) override;
  core::TeOutput Compute(const core::TeInput& input) override;

  int admitted() const { return admitted_; }
  int rejected() const { return rejected_; }

 private:
  // Residual edge capacity (gigabits of volume) for a future slot; lazily
  // created at full capacity.
  std::vector<double>& SlotResidual(int64_t slot);

  const net::Graph topo_;
  const double slot_seconds_;
  const int k_paths_;

  std::map<int64_t, std::vector<double>> residual_;  // slot -> per-edge Gb
  // request id -> slot -> (path, volume Gb) reservations
  struct PathVolume {
    net::Path path;
    double volume;
  };
  std::map<int, std::map<int64_t, std::vector<PathVolume>>> reservations_;
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<net::Path>>
      path_cache_;
  int admitted_ = 0;
  int rejected_ = 0;
};

}  // namespace owan::te

#endif  // OWAN_TE_AMOEBA_H_
