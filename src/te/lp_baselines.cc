#include "te/lp_baselines.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "lp/simplex.h"

namespace owan::te {

namespace {
constexpr double kEps = 1e-7;
}

std::vector<lp::Commodity> LpTeBase::ToCommodities(
    const std::vector<core::TransferDemand>& demands,
    const std::vector<double>& rate_caps) {
  std::vector<lp::Commodity> out;
  out.reserve(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    out.push_back(lp::Commodity{demands[i].src, demands[i].dst,
                                std::max(0.0, rate_caps[i])});
  }
  return out;
}

std::vector<core::TransferAllocation> LpTeBase::Extract(
    const lp::McfBuilder& mcf, const lp::LpSolution& sol,
    const std::vector<core::TransferDemand>& demands) {
  std::vector<core::TransferAllocation> allocs(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) {
    allocs[i].id = demands[i].id;
    if (!sol.ok()) continue;
    const auto& paths = mcf.PathsFor(static_cast<int>(i));
    const std::vector<double> rates =
        mcf.PathRates(static_cast<int>(i), sol);
    for (size_t j = 0; j < paths.size(); ++j) {
      if (rates[j] > kEps) {
        allocs[i].paths.push_back(core::PathAllocation{paths[j], rates[j]});
      }
    }
  }
  return allocs;
}

LpTeBase::Aggregated LpTeBase::Aggregate(
    const std::vector<core::TransferDemand>& demands,
    const std::vector<double>& targets) {
  Aggregated agg;
  std::map<std::pair<net::NodeId, net::NodeId>, size_t> index;
  for (size_t i = 0; i < demands.size(); ++i) {
    const auto key = std::make_pair(demands[i].src, demands[i].dst);
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, agg.pair_demands.size()).first;
      core::TransferDemand pd;
      pd.id = static_cast<int>(agg.pair_demands.size());
      pd.src = demands[i].src;
      pd.dst = demands[i].dst;
      agg.pair_demands.push_back(pd);
      agg.pair_targets.push_back(0.0);
      agg.members.emplace_back();
      agg.weights.emplace_back();
    }
    const size_t p = it->second;
    agg.pair_demands[p].rate_cap += demands[i].rate_cap;
    agg.pair_demands[p].remaining += demands[i].remaining;
    agg.pair_targets[p] += targets[i];
    agg.members[p].push_back(i);
    agg.weights[p].push_back(targets[i]);
  }
  // Normalize member weights within each pair (fall back to equal split
  // when every target is zero).
  for (size_t p = 0; p < agg.weights.size(); ++p) {
    double total = 0.0;
    for (double w : agg.weights[p]) total += w;
    for (double& w : agg.weights[p]) {
      w = total > kEps ? w / total
                       : 1.0 / static_cast<double>(agg.weights[p].size());
    }
  }
  return agg;
}

std::vector<core::TransferAllocation> LpTeBase::Expand(
    const Aggregated& agg,
    const std::vector<core::TransferAllocation>& pair_allocs,
    const std::vector<core::TransferDemand>& demands) {
  std::vector<core::TransferAllocation> out(demands.size());
  for (size_t i = 0; i < demands.size(); ++i) out[i].id = demands[i].id;
  for (size_t p = 0; p < agg.members.size(); ++p) {
    if (p >= pair_allocs.size()) break;
    for (size_t mi = 0; mi < agg.members[p].size(); ++mi) {
      const size_t di = agg.members[p][mi];
      const double w = agg.weights[p][mi];
      if (w <= kEps) continue;
      for (const core::PathAllocation& pa : pair_allocs[p].paths) {
        if (pa.rate * w > kEps) {
          out[di].paths.push_back(
              core::PathAllocation{pa.path, pa.rate * w});
        }
      }
    }
  }
  return out;
}

core::TeOutput MaxFlowTe::Compute(const core::TeInput& input) {
  core::TeOutput out;
  const net::Graph g =
      input.topology->ToGraph(input.optical->wavelength_capacity());
  std::vector<double> caps;
  caps.reserve(input.demands.size());
  for (const auto& d : input.demands) caps.push_back(d.rate_cap);
  const Aggregated agg = Aggregate(input.demands, caps);

  lp::McfBuilder mcf(g, ToCommodities(agg.pair_demands, agg.pair_targets),
                     options_.k_paths);
  mcf.ObjectiveMaxThroughput();
  const lp::LpSolution sol = lp::Solve(mcf.lp());
  out.allocations =
      Expand(agg, Extract(mcf, sol, agg.pair_demands), input.demands);
  return out;
}

namespace {

// Shared two-phase solve used by MaxMinFract and Tempus: maximize the
// common fraction t of each transfer's `targets` rate, then re-solve for
// concrete path rates. With `cap_at_fraction` every transfer is held at
// exactly t (the paper's naive MaxMinFract, which wastes capacity whenever
// bottlenecks differ); without it the second phase maximizes throughput
// subject to everyone keeping fraction t (Tempus' byte-maximization step).
core::TeOutput MaxMinThenThroughput(
    const net::Graph& g, const std::vector<core::TransferDemand>& demands,
    const std::vector<double>& targets, int k_paths, bool cap_at_fraction) {
  core::TeOutput out;

  // Phase 1: maximize t with sum(rates_i) >= t * target_i.
  double t_star = 0.0;
  {
    lp::McfBuilder mcf(g, LpTeBase::ToCommodities(demands, targets), k_paths);
    lp::LpProblem& p = mcf.lp();
    const int t_var = p.AddVariable(0.0, 1.0, 1.0, "t");
    p.SetMaximize(true);
    for (int i = 0; i < mcf.NumCommodities(); ++i) {
      if (mcf.PathsFor(i).empty()) continue;
      const double target = targets[static_cast<size_t>(i)];
      if (target <= kEps) continue;
      std::vector<std::pair<int, double>> terms;
      for (size_t j = 0; j < mcf.PathsFor(i).size(); ++j) {
        terms.emplace_back(mcf.RateVar(i, static_cast<int>(j)), 1.0);
      }
      terms.emplace_back(t_var, -target);
      p.AddConstraint(std::move(terms), lp::Relation::kGe, 0.0);
    }
    const lp::LpSolution sol = lp::Solve(p);
    if (sol.ok()) t_star = sol.values[static_cast<size_t>(t_var)];
  }

  // Phase 2: throughput max subject to every transfer keeping fraction
  // t_star of its target (slightly relaxed for numerical headroom). Unless
  // the caller pins everyone to the fraction, transfers may exceed their
  // target up to their full per-slot demand — this is Tempus' "then
  // maximize total bytes" step.
  {
    std::vector<double> caps(demands.size());
    for (size_t i = 0; i < demands.size(); ++i) {
      caps[i] = cap_at_fraction ? targets[i]
                                : std::max(targets[i], demands[i].rate_cap);
    }
    lp::McfBuilder mcf(g, LpTeBase::ToCommodities(demands, caps), k_paths);
    lp::LpProblem& p = mcf.lp();
    for (int i = 0; i < mcf.NumCommodities(); ++i) {
      if (mcf.PathsFor(i).empty()) continue;
      const double target = targets[static_cast<size_t>(i)];
      if (target <= kEps) continue;
      std::vector<std::pair<int, double>> terms;
      for (size_t j = 0; j < mcf.PathsFor(i).size(); ++j) {
        terms.emplace_back(mcf.RateVar(i, static_cast<int>(j)), 1.0);
      }
      auto ge_terms = terms;
      p.AddConstraint(std::move(ge_terms), lp::Relation::kGe,
                      0.999 * t_star * target);
      if (cap_at_fraction) {
        p.AddConstraint(std::move(terms), lp::Relation::kLe,
                        t_star * target + 1e-9);
      }
    }
    mcf.ObjectiveMaxThroughput();
    const lp::LpSolution sol = lp::Solve(p);
    out.allocations = LpTeBase::Extract(mcf, sol, demands);
  }
  return out;
}

}  // namespace

core::TeOutput MaxMinFractTe::Compute(const core::TeInput& input) {
  const net::Graph g =
      input.topology->ToGraph(input.optical->wavelength_capacity());
  std::vector<double> targets;
  targets.reserve(input.demands.size());
  for (const auto& d : input.demands) targets.push_back(d.rate_cap);
  const Aggregated agg = Aggregate(input.demands, targets);
  core::TeOutput pair_out =
      MaxMinThenThroughput(g, agg.pair_demands, agg.pair_targets,
                           options_.k_paths, /*cap_at_fraction=*/true);
  core::TeOutput out;
  out.allocations = Expand(agg, pair_out.allocations, input.demands);
  return out;
}

core::TeOutput TempusTe::Compute(const core::TeInput& input) {
  const net::Graph g =
      input.topology->ToGraph(input.optical->wavelength_capacity());
  // Tempus paces each transfer evenly across the slots remaining until its
  // deadline: the fraction target is remaining/(slots_left), so a transfer
  // far from its deadline asks for less now.
  std::vector<double> targets;
  targets.reserve(input.demands.size());
  for (const auto& d : input.demands) {
    if (d.deadline > 0.0) {
      const double time_left =
          std::max(d.deadline - input.now, input.slot_seconds);
      targets.push_back(
          std::min(d.rate_cap, d.remaining / time_left));
    } else {
      targets.push_back(d.rate_cap);
    }
  }
  const Aggregated agg = Aggregate(input.demands, targets);
  core::TeOutput pair_out =
      MaxMinThenThroughput(g, agg.pair_demands, agg.pair_targets,
                           options_.k_paths, /*cap_at_fraction=*/false);
  core::TeOutput out;
  out.allocations = Expand(agg, pair_out.allocations, input.demands);
  return out;
}

core::TeOutput SwanTe::Compute(const core::TeInput& input) {
  core::TeOutput out;
  const net::Graph g =
      input.topology->ToGraph(input.optical->wavelength_capacity());
  std::vector<double> orig_caps;
  orig_caps.reserve(input.demands.size());
  for (const auto& d : input.demands) orig_caps.push_back(d.rate_cap);
  const Aggregated agg = Aggregate(input.demands, orig_caps);
  const std::vector<core::TransferDemand>& demands = agg.pair_demands;
  const size_t n = demands.size();

  // Iterative max-min with freezing: repeatedly maximize the common
  // fraction t of unfrozen transfers; transfers that cannot grow past t
  // (every path crosses a saturated edge) freeze at t, and the rest
  // continue. A final pass maximizes throughput with the frozen shares as
  // lower bounds — SWAN's "max-min fair then high utilization" behaviour.
  std::vector<double> frozen_rate(n, -1.0);  // -1 = not frozen
  std::vector<double> caps(n);
  for (size_t i = 0; i < n; ++i) caps[i] = demands[i].rate_cap;

  for (int round = 0; round < options_.max_fairness_rounds; ++round) {
    bool any_unfrozen = false;
    for (size_t i = 0; i < n; ++i) {
      if (frozen_rate[i] < 0.0 && caps[i] > kEps) any_unfrozen = true;
    }
    if (!any_unfrozen) break;

    lp::McfBuilder mcf(g, LpTeBase::ToCommodities(demands, caps),
                       options_.k_paths);
    lp::LpProblem& p = mcf.lp();
    const int t_var = p.AddVariable(0.0, 1.0, 1.0, "t");
    p.SetMaximize(true);
    for (size_t i = 0; i < n; ++i) {
      if (mcf.PathsFor(static_cast<int>(i)).empty() || caps[i] <= kEps) {
        continue;
      }
      std::vector<std::pair<int, double>> terms;
      for (size_t j = 0; j < mcf.PathsFor(static_cast<int>(i)).size(); ++j) {
        terms.emplace_back(
            mcf.RateVar(static_cast<int>(i), static_cast<int>(j)), 1.0);
      }
      if (frozen_rate[i] >= 0.0) {
        // Frozen transfers keep exactly their share.
        p.AddConstraint(std::move(terms), lp::Relation::kGe,
                        0.999 * frozen_rate[i]);
      } else {
        terms.emplace_back(t_var, -caps[i]);
        p.AddConstraint(std::move(terms), lp::Relation::kGe, 0.0);
      }
    }
    const lp::LpSolution sol = lp::Solve(p);
    if (!sol.ok()) break;
    const double t = sol.values[static_cast<size_t>(t_var)];
    if (t >= 1.0 - 1e-6) {
      // Everyone fully served.
      for (size_t i = 0; i < n; ++i) {
        if (frozen_rate[i] < 0.0) frozen_rate[i] = caps[i];
      }
      break;
    }

    // Saturated edges at this solution.
    std::vector<double> used(static_cast<size_t>(g.NumEdges()), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const auto rates = mcf.PathRates(static_cast<int>(i), sol);
      const auto& paths = mcf.PathsFor(static_cast<int>(i));
      for (size_t j = 0; j < paths.size(); ++j) {
        for (net::EdgeId e : paths[j].edges) {
          used[static_cast<size_t>(e)] += rates[j];
        }
      }
    }
    auto edge_saturated = [&](net::EdgeId e) {
      return used[static_cast<size_t>(e)] >=
             g.edge(e).capacity * (1.0 - 1e-6) - kEps;
    };

    bool froze_any = false;
    for (size_t i = 0; i < n; ++i) {
      if (frozen_rate[i] >= 0.0 || caps[i] <= kEps) continue;
      const auto& paths = mcf.PathsFor(static_cast<int>(i));
      if (paths.empty()) continue;
      bool all_paths_blocked = true;
      for (const net::Path& path : paths) {
        bool blocked = false;
        for (net::EdgeId e : path.edges) {
          if (edge_saturated(e)) {
            blocked = true;
            break;
          }
        }
        if (!blocked) {
          all_paths_blocked = false;
          break;
        }
      }
      if (all_paths_blocked) {
        frozen_rate[i] = t * caps[i];
        froze_any = true;
      }
    }
    if (!froze_any) {
      // Avoid stalling: freeze everyone at the common fraction.
      for (size_t i = 0; i < n; ++i) {
        if (frozen_rate[i] < 0.0) frozen_rate[i] = t * caps[i];
      }
      break;
    }
  }

  // Final throughput maximization with fair shares as lower bounds.
  lp::McfBuilder mcf(g, LpTeBase::ToCommodities(demands, caps),
                     options_.k_paths);
  lp::LpProblem& p = mcf.lp();
  for (size_t i = 0; i < n; ++i) {
    if (mcf.PathsFor(static_cast<int>(i)).empty()) continue;
    if (frozen_rate[i] <= kEps) continue;
    std::vector<std::pair<int, double>> terms;
    for (size_t j = 0; j < mcf.PathsFor(static_cast<int>(i)).size(); ++j) {
      terms.emplace_back(
          mcf.RateVar(static_cast<int>(i), static_cast<int>(j)), 1.0);
    }
    p.AddConstraint(std::move(terms), lp::Relation::kGe,
                    0.995 * frozen_rate[i]);
  }
  mcf.ObjectiveMaxThroughput();
  const lp::LpSolution sol = lp::Solve(p);
  out.allocations = Expand(agg, Extract(mcf, sol, demands), input.demands);
  return out;
}

}  // namespace owan::te
