#ifndef OWAN_TE_LP_BASELINES_H_
#define OWAN_TE_LP_BASELINES_H_

#include <string>
#include <vector>

#include "core/te_scheme.h"
#include "lp/mcf.h"

namespace owan::te {

struct LpTeOptions {
  int k_paths = 3;
  // SWAN's fairness-approximation rounds (each round is one LP solve; 4
  // captures nearly all of the fairness at a quarter of the cost).
  int max_fairness_rounds = 4;
};

// Shared machinery for the network-layer-only LP baselines: builds the
// path-based MCF over the *fixed* topology and converts solutions into
// per-transfer allocations.
class LpTeBase : public core::TeScheme {
 public:
  explicit LpTeBase(LpTeOptions options) : options_(options) {}

  // Demands -> commodities with the given per-transfer rate ceilings.
  static std::vector<lp::Commodity> ToCommodities(
      const std::vector<core::TransferDemand>& demands,
      const std::vector<double>& rate_caps);

  // Builds allocations (parallel to demands) from a solved MCF.
  static std::vector<core::TransferAllocation> Extract(
      const lp::McfBuilder& mcf, const lp::LpSolution& sol,
      const std::vector<core::TransferDemand>& demands);

  // Transfers sharing (src, dst) are interchangeable inside a rate LP, so
  // the baselines solve one commodity per distinct pair and split the
  // pair's path rates back over members proportionally to their targets.
  // This keeps the LP size bounded by the number of site pairs instead of
  // the number of transfers.
  struct Aggregated {
    std::vector<core::TransferDemand> pair_demands;
    std::vector<double> pair_targets;
    std::vector<std::vector<size_t>> members;   // per pair: demand indices
    std::vector<std::vector<double>> weights;   // per pair: member shares
  };
  static Aggregated Aggregate(const std::vector<core::TransferDemand>& demands,
                              const std::vector<double>& targets);
  static std::vector<core::TransferAllocation> Expand(
      const Aggregated& agg,
      const std::vector<core::TransferAllocation>& pair_allocs,
      const std::vector<core::TransferDemand>& demands);

 protected:
  LpTeOptions options_;
};

// "MaxFlow" baseline (§5.1): per slot, maximize total throughput.
class MaxFlowTe : public LpTeBase {
 public:
  explicit MaxFlowTe(LpTeOptions options = {}) : LpTeBase(options) {}
  std::string name() const override { return "MaxFlow"; }
  core::TeOutput Compute(const core::TeInput& input) override;
};

// "MaxMinFract" baseline: maximize the minimum served fraction, then
// maximize throughput subject to that fraction.
class MaxMinFractTe : public LpTeBase {
 public:
  explicit MaxMinFractTe(LpTeOptions options = {}) : LpTeBase(options) {}
  std::string name() const override { return "MaxMinFract"; }
  core::TeOutput Compute(const core::TeInput& input) override;
};

// "SWAN" baseline: approximate max-min fairness via iterative freezing,
// then throughput maximization (Hong et al., SIGCOMM'13).
class SwanTe : public LpTeBase {
 public:
  explicit SwanTe(LpTeOptions options = {}) : LpTeBase(options) {}
  std::string name() const override { return "SWAN"; }
  core::TeOutput Compute(const core::TeInput& input) override;
};

// "Tempus" baseline for deadline traffic: spread each transfer evenly
// toward its deadline — maximize the minimum fraction of the
// deadline-feasible rate, then total bytes. (Per-slot approximation of the
// all-slots LP in Kandula et al., SIGCOMM'14; see DESIGN.md.)
class TempusTe : public LpTeBase {
 public:
  explicit TempusTe(LpTeOptions options = {}) : LpTeBase(options) {}
  std::string name() const override { return "Tempus"; }
  core::TeOutput Compute(const core::TeInput& input) override;
};

}  // namespace owan::te

#endif  // OWAN_TE_LP_BASELINES_H_
