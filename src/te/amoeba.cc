#include "te/amoeba.h"

#include <algorithm>
#include <cmath>

namespace owan::te {

namespace {
constexpr double kEps = 1e-7;
}

AmoebaTe::AmoebaTe(const net::Graph& fixed_topology, double slot_seconds,
                   int k_paths)
    : topo_(fixed_topology),
      slot_seconds_(slot_seconds),
      k_paths_(k_paths) {}

std::vector<double>& AmoebaTe::SlotResidual(int64_t slot) {
  auto it = residual_.find(slot);
  if (it == residual_.end()) {
    std::vector<double> caps(static_cast<size_t>(topo_.NumEdges()));
    for (net::EdgeId e = 0; e < topo_.NumEdges(); ++e) {
      caps[static_cast<size_t>(e)] = topo_.edge(e).capacity * slot_seconds_;
    }
    it = residual_.emplace(slot, std::move(caps)).first;
  }
  return it->second;
}

bool AmoebaTe::Admit(const core::Request& request, double now) {
  if (!request.HasDeadline()) return true;  // only deadline traffic managed

  auto key = std::make_pair(request.src, request.dst);
  auto pit = path_cache_.find(key);
  if (pit == path_cache_.end()) {
    pit = path_cache_
              .emplace(key, net::KShortestPaths(topo_, request.src,
                                                request.dst, k_paths_))
              .first;
  }
  const std::vector<net::Path>& paths = pit->second;
  if (paths.empty()) {
    ++rejected_;
    return false;
  }

  // The transfer can use slots [first, last]: it arrives during slot
  // `first` and must finish by its deadline.
  const int64_t first = static_cast<int64_t>(now / slot_seconds_);
  const int64_t last =
      static_cast<int64_t>(std::floor(request.deadline / slot_seconds_)) - 1;
  if (last < first) {
    ++rejected_;
    return false;
  }

  double remaining = request.size;
  std::map<int64_t, std::vector<PathVolume>> plan;
  // Tentative bookings so we can roll back on rejection.
  std::map<int64_t, std::vector<double>> tentative;

  for (int64_t s = first; s <= last && remaining > kEps; ++s) {
    std::vector<double>& res = SlotResidual(s);
    std::vector<double>& tent = tentative[s];
    if (tent.empty()) tent.assign(res.size(), 0.0);
    for (const net::Path& p : paths) {
      if (remaining <= kEps) break;
      double avail = remaining;
      for (net::EdgeId e : p.edges) {
        avail = std::min(avail, res[static_cast<size_t>(e)] -
                                    tent[static_cast<size_t>(e)]);
      }
      if (avail <= kEps) continue;
      for (net::EdgeId e : p.edges) tent[static_cast<size_t>(e)] += avail;
      plan[s].push_back(PathVolume{p, avail});
      remaining -= avail;
    }
  }

  if (remaining > kEps) {
    ++rejected_;
    return false;
  }

  // Commit.
  for (auto& [s, tent] : tentative) {
    std::vector<double>& res = SlotResidual(s);
    for (size_t e = 0; e < res.size(); ++e) res[e] -= tent[e];
  }
  reservations_[request.id] = std::move(plan);
  ++admitted_;
  return true;
}

core::TeOutput AmoebaTe::Compute(const core::TeInput& input) {
  core::TeOutput out;
  out.allocations.resize(input.demands.size());
  const int64_t slot = static_cast<int64_t>(
      (input.now + slot_seconds_ * 0.5) / slot_seconds_);

  // Residual rate for best-effort traffic this slot.
  std::vector<double> be_residual(static_cast<size_t>(topo_.NumEdges()));
  for (net::EdgeId e = 0; e < topo_.NumEdges(); ++e) {
    be_residual[static_cast<size_t>(e)] = topo_.edge(e).capacity;
  }

  for (size_t i = 0; i < input.demands.size(); ++i) {
    const core::TransferDemand& d = input.demands[i];
    out.allocations[i].id = d.id;
    auto rit = reservations_.find(d.id);
    if (rit == reservations_.end()) continue;
    auto sit = rit->second.find(slot);
    if (sit == rit->second.end()) continue;
    for (const PathVolume& pv : sit->second) {
      const double rate = pv.volume / slot_seconds_;
      out.allocations[i].paths.push_back(core::PathAllocation{pv.path, rate});
      for (net::EdgeId e : pv.path.edges) {
        be_residual[static_cast<size_t>(e)] =
            std::max(0.0, be_residual[static_cast<size_t>(e)] - rate);
      }
    }
  }

  // Best-effort pass for unadmitted transfers: earliest deadline first over
  // whatever capacity the reservations left behind.
  std::vector<size_t> order;
  for (size_t i = 0; i < input.demands.size(); ++i) {
    if (!reservations_.count(input.demands[i].id)) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&input](size_t a, size_t b) {
    const double da = input.demands[a].deadline;
    const double db = input.demands[b].deadline;
    if (da != db) return da < db;
    return input.demands[a].id < input.demands[b].id;
  });
  for (size_t i : order) {
    const core::TransferDemand& d = input.demands[i];
    auto key = std::make_pair(d.src, d.dst);
    auto pit = path_cache_.find(key);
    if (pit == path_cache_.end()) {
      pit = path_cache_
                .emplace(key,
                         net::KShortestPaths(topo_, d.src, d.dst, k_paths_))
                .first;
    }
    double want = d.rate_cap;
    for (const net::Path& p : pit->second) {
      if (want <= kEps) break;
      double avail = want;
      for (net::EdgeId e : p.edges) {
        avail = std::min(avail, be_residual[static_cast<size_t>(e)]);
      }
      if (avail <= kEps) continue;
      for (net::EdgeId e : p.edges) {
        be_residual[static_cast<size_t>(e)] -= avail;
      }
      out.allocations[i].paths.push_back(core::PathAllocation{p, avail});
      want -= avail;
    }
  }
  return out;
}

}  // namespace owan::te
