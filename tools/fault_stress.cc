// Randomized fault-injection stress driver for CI: generates seeded
// stochastic fault schedules, runs the full control loop through them
// (twice per seed), and fails loudly if any run reports an invariant
// violation or the two runs disagree bit-for-bit. Meant to run under
// ASan/UBSan with a per-CI-run base seed so coverage accumulates across
// builds while any failure stays reproducible from the printed seed.
//
// Usage: fault_stress [--seed S] [--runs N] [--horizon-hours H]
//                      [--actuation-fail P]
//
// --actuation-fail P turns on flaky-actuation mode: every slot
// reconfiguration runs through the update execution engine with per-op
// circuit failure probability P (route failures at P/4, latency jitter,
// stragglers), so the chaos job also covers retries, plan repair, and
// safe-abort under a crashing controller.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/owan.h"
#include "fault/fault_generator.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "testkit/oracles.h"
#include "topo/topologies.h"

using namespace owan;

namespace {

std::vector<core::Request> StressRequests(const topo::Wan& wan,
                                          uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Request> reqs;
  const int n = wan.default_topology.NumSites();
  const int count = 4 + static_cast<int>(rng.Index(5));
  for (int i = 0; i < count; ++i) {
    core::Request r;
    r.id = i;
    r.src = rng.UniformInt(0, n - 1);
    do {
      r.dst = rng.UniformInt(0, n - 1);
    } while (r.dst == r.src);
    r.size = rng.Uniform(3000.0, 24000.0);
    r.arrival = 300.0 * static_cast<double>(rng.Index(8));
    reqs.push_back(r);
  }
  return reqs;
}

// Shared run setup so the telemetry replay below uses exactly the inputs
// of the failing run.
struct SeedRun {
  sim::SimOptions opt;
  std::vector<core::Request> reqs;
  core::OwanOptions oo;
};

SeedRun MakeSeedRun(const topo::Wan& wan, uint64_t seed, double horizon_s,
                    double actuation_fail) {
  fault::FaultGeneratorOptions fg;
  fg.seed = seed;
  fg.horizon_s = horizon_s;
  fg.fiber = {2.0 * 3600.0, 1200.0};
  fg.site = {12.0 * 3600.0, 1500.0};
  fg.transceiver = {6.0 * 3600.0, 900.0};
  fg.controller = {8.0 * 3600.0, 300.0};

  SeedRun run;
  run.opt.max_time_s = horizon_s + 12.0 * 3600.0;
  run.opt.faults = fault::GenerateFaultSchedule(wan.optical, fg);
  run.reqs = StressRequests(wan, seed ^ 0x5eedULL);
  run.oo.seed = seed;
  run.oo.anneal.max_iterations = 150;
  run.oo.slot_seeded = true;
  if (actuation_fail > 0.0) {
    run.opt.execute_updates = true;
    run.opt.actuation.seed = seed ^ 0xac7a710ULL;
    run.opt.actuation.circuit_failure_prob = actuation_fail;
    run.opt.actuation.route_failure_prob = actuation_fail / 4.0;
    run.opt.actuation.latency_cv = 0.3;
    run.opt.actuation.straggler_prob = 0.05;
  }
  return run;
}

// Replays the failing seed with the tracer at full detail and dumps a
// Chrome trace plus a JSONL event log into the working directory, so a
// CI failure ships the evidence along with a one-line repro command.
void DumpTelemetry(const topo::Wan& wan, uint64_t seed, double horizon_s,
                   double actuation_fail) {
  SeedRun run = MakeSeedRun(wan, seed, horizon_s, actuation_fail);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start(/*detail=*/2);
  core::OwanTe te(run.oo);
  (void)sim::RunSimulation(wan, run.reqs, te, run.opt);
  tracer.Stop();
  const std::string stem = "fault_stress_seed_" + std::to_string(seed);
  const std::string trace_path = stem + ".trace.json";
  const std::string events_path = stem + ".events.jsonl";
  if (!tracer.ExportChromeTrace(trace_path) ||
      !tracer.ExportJsonl(events_path)) {
    std::fprintf(stderr, "[seed %llu] could not write telemetry dumps\n",
                 (unsigned long long)seed);
    return;
  }
  std::fprintf(stderr,
               "[seed %llu] telemetry: %s %s; repro: fault_stress --seed "
               "%llu --runs 1 --horizon-hours %g\n",
               (unsigned long long)seed, trace_path.c_str(),
               events_path.c_str(), (unsigned long long)seed,
               horizon_s / 3600.0);
}

int RunOneSeed(const topo::Wan& wan, uint64_t seed, double horizon_s,
               double actuation_fail) {
  const SeedRun run = MakeSeedRun(wan, seed, horizon_s, actuation_fail);

  core::OwanTe te1(run.oo);
  const sim::SimResult a = sim::RunSimulation(wan, run.reqs, te1, run.opt);
  core::OwanTe te2(run.oo);
  const sim::SimResult b = sim::RunSimulation(wan, run.reqs, te2, run.opt);

  int failures = 0;
  if (!a.invariant_violations.empty()) {
    std::fprintf(stderr, "[seed %llu] %zu invariant violations, first: %s\n",
                 (unsigned long long)seed, a.invariant_violations.size(),
                 a.invariant_violations.front().c_str());
    ++failures;
  }
  std::string why;
  if (!testkit::SameSimResult(a, b, &why)) {
    std::fprintf(stderr, "[seed %llu] not reproducible: %s\n",
                 (unsigned long long)seed, why.c_str());
    ++failures;
  }
  std::printf(
      "[seed %llu] %s: %d fault events, %d slots, %zu recoveries, "
      "%.1f Gb invalidated, %d updates (%d aborted, %d retries)%s\n",
      (unsigned long long)seed, wan.name.c_str(), a.fault_events, a.slots,
      a.recovery_seconds.size(), a.gigabits_lost_to_faults,
      a.updates_executed, a.update_aborts, a.update_retries,
      failures ? "  ** FAILED **" : "");
  if (failures > 0) DumpTelemetry(wan, seed, horizon_s, actuation_fail);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int runs = 10;
  double horizon_hours = 2.0;
  double actuation_fail = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--runs") && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--horizon-hours") && i + 1 < argc) {
      horizon_hours = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--actuation-fail") && i + 1 < argc) {
      actuation_fail = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--runs N] [--horizon-hours H] "
                   "[--actuation-fail P]\n",
                   argv[0]);
      return 2;
    }
  }

  const topo::Wan topologies[] = {topo::MakeInternet2(),
                                  topo::MakeMotivatingExample()};
  int failures = 0;
  for (int i = 0; i < runs; ++i) {
    const topo::Wan& wan = topologies[i % 2];
    failures += RunOneSeed(wan, seed + static_cast<uint64_t>(i),
                           horizon_hours * 3600.0, actuation_fail);
  }
  if (failures) {
    std::fprintf(stderr, "fault_stress: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("fault_stress: all %d runs clean\n", runs);
  return 0;
}
