// owan_service — drives the streaming controller service (src/service) over
// a seeded arrival trace on the deterministic virtual clock and prints the
// run's admission/recompute statistics plus its decision fingerprint.
//
// The fingerprint folds every admission verdict, completion, and the final
// in-flight state, so two invocations with the same flags must print the
// same value: the CI soak runs this binary twice (and once more through a
// checkpoint/restore crash at --crash-restore-at) and diffs the lines.
//
// Usage: owan_service [--topo internet2|isp|interdc|motivating] [--seed S]
//                     [--requests N] [--rate ARRIVALS_PER_S] [--bursty]
//                     [--deadline-fraction F] [--mode online|passthrough]
//                     [--scheme greedy|amoeba] [--k-paths K]
//                     [--stale-slots N] [--demand-frac F] [--slot-seconds S]
//                     [--max-hours H] [--no-retain]
//                     [--crash-restore-at N] [--checkpoint-out FILE]
//
// Exit status: 0 success, 1 run error, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>

#include "service/service.h"
#include "te/amoeba.h"
#include "te/greedy.h"
#include "topo/topologies.h"
#include "workload/stream.h"

using namespace owan;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--topo internet2|isp|interdc|motivating] [--seed S]\n"
      "          [--requests N] [--rate ARRIVALS_PER_S] [--bursty]\n"
      "          [--deadline-fraction F] [--mode online|passthrough]\n"
      "          [--scheme greedy|amoeba] [--k-paths K] [--stale-slots N]\n"
      "          [--demand-frac F] [--slot-seconds S] [--max-hours H]\n"
      "          [--no-retain] [--crash-restore-at N] "
      "[--checkpoint-out FILE]\n",
      argv0);
  return 2;
}

std::unique_ptr<core::TeScheme> MakeScheme(const std::string& name,
                                           const topo::Wan& wan,
                                           double slot_seconds, int k_paths) {
  if (name == "greedy") return std::make_unique<te::GreedyOwanTe>();
  if (name == "amoeba") {
    return std::make_unique<te::AmoebaTe>(
        wan.default_topology.ToGraph(wan.optical.wavelength_capacity()),
        slot_seconds, k_paths);
  }
  return nullptr;
}

void PrintRun(const service::ControllerService& svc) {
  const service::ServiceStats& s = svc.stats();
  std::printf("requests %llu\n", (unsigned long long)s.requests);
  std::printf("admitted %llu\n", (unsigned long long)s.admitted);
  std::printf("rejected %llu\n", (unsigned long long)s.rejected);
  std::printf("pending_enqueued %llu\n", (unsigned long long)s.pending_enqueued);
  std::printf("pending_admitted %llu\n", (unsigned long long)s.pending_admitted);
  std::printf("pending_rejected %llu\n", (unsigned long long)s.pending_rejected);
  std::printf("completed %llu\n", (unsigned long long)s.completed);
  std::printf("slots %llu\n", (unsigned long long)s.slots);
  std::printf("recomputes %llu\n", (unsigned long long)s.recomputes);
  std::printf("coasts %llu\n", (unsigned long long)s.coasts);
  std::printf("retry_rounds %llu\n", (unsigned long long)s.retry_rounds);
  std::printf("delivered_gigabits %.6f\n", s.delivered_gigabits);
  std::printf("makespan %.6f\n", s.makespan);
  std::printf("compute_seconds %.3f\n", s.compute_seconds);
  std::printf("fingerprint %016llx\n", (unsigned long long)svc.Fingerprint());
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo_name = "internet2";
  std::string scheme_name = "greedy";
  uint64_t requests = 10000;
  uint64_t crash_restore_at = 0;
  std::string checkpoint_out;
  workload::StreamParams params;
  params.arrivals_per_s = 0.05;
  service::ServiceOptions opt;
  opt.retain_records = false;  // traces can be millions of requests

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--topo")) {
      topo_name = next("--topo");
    } else if (!std::strcmp(argv[i], "--seed")) {
      params.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--requests")) {
      requests = std::strtoull(next("--requests"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--rate")) {
      params.arrivals_per_s = std::atof(next("--rate"));
    } else if (!std::strcmp(argv[i], "--bursty")) {
      params.bursty = true;
    } else if (!std::strcmp(argv[i], "--deadline-fraction")) {
      params.deadline_fraction = std::atof(next("--deadline-fraction"));
    } else if (!std::strcmp(argv[i], "--mode")) {
      const std::string m = next("--mode");
      if (m == "online") {
        opt.mode = service::ServiceMode::kOnline;
      } else if (m == "passthrough") {
        opt.mode = service::ServiceMode::kPassthrough;
      } else {
        return Usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--scheme")) {
      scheme_name = next("--scheme");
    } else if (!std::strcmp(argv[i], "--k-paths")) {
      opt.admission.k_paths = std::atoi(next("--k-paths"));
    } else if (!std::strcmp(argv[i], "--stale-slots")) {
      opt.max_stale_slots = std::atoi(next("--stale-slots"));
    } else if (!std::strcmp(argv[i], "--demand-frac")) {
      opt.recompute_demand_frac = std::atof(next("--demand-frac"));
    } else if (!std::strcmp(argv[i], "--slot-seconds")) {
      opt.slot_seconds = std::atof(next("--slot-seconds"));
      params.slot_seconds = opt.slot_seconds;
    } else if (!std::strcmp(argv[i], "--max-hours")) {
      opt.max_time_s = std::atof(next("--max-hours")) * 3600.0;
    } else if (!std::strcmp(argv[i], "--no-retain")) {
      opt.retain_records = false;
    } else if (!std::strcmp(argv[i], "--crash-restore-at")) {
      crash_restore_at = std::strtoull(next("--crash-restore-at"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoint-out")) {
      checkpoint_out = next("--checkpoint-out");
    } else {
      return Usage(argv[0]);
    }
  }

  try {
    const topo::Wan wan = topo::MakeByName(topo_name);
    auto scheme =
        MakeScheme(scheme_name, wan, opt.slot_seconds, opt.admission.k_paths);
    if (!scheme) return Usage(argv[0]);

    service::ControllerService svc(&wan, std::move(scheme), opt);
    svc.AttachStream(params, requests);

    if (crash_restore_at > 0) {
      // Simulated crash: snapshot mid-run, abandon the process state, and
      // resume a fresh service from the checkpoint text alone. The printed
      // stats/fingerprint must match an uninterrupted run bit-for-bit.
      svc.RunUntilIngested(crash_restore_at);
      const std::string snapshot = svc.Checkpoint();
      if (!checkpoint_out.empty()) {
        std::ofstream out(checkpoint_out);
        out << snapshot;
      }
      auto scheme2 = MakeScheme(scheme_name, wan, opt.slot_seconds,
                                opt.admission.k_paths);
      service::ControllerService resumed = service::ControllerService::Restore(
          &wan, std::move(scheme2), snapshot, opt);
      resumed.AttachStream(params, requests);
      resumed.Run();
      PrintRun(resumed);
      return 0;
    }

    svc.Run();
    if (!checkpoint_out.empty()) {
      std::ofstream out(checkpoint_out);
      out << svc.Checkpoint();
    }
    PrintRun(svc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "owan_service: %s\n", e.what());
    return 1;
  }
  return 0;
}
