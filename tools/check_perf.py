#!/usr/bin/env python3
"""Perf-regression gate for the annealing hot loop.

Compares a fresh bench_anneal_eval --json run against the committed
baseline (BENCH_anneal.json) and exits non-zero when the incremental
evaluator's per-candidate cost on the gate topology regressed.

Shared CI runners are noisy, so the raw us/candidate is never compared
directly: the fresh (copy-everything) walk runs the same workload in the
same process, and its cost ratio current/baseline calibrates the machine.
The gated quantity is

    incr_cur / (incr_base * fresh_cur / fresh_base)

i.e. "incremental cost, in units of what this machine's fresh walk says
a candidate costs". That cancels CPU-generation and turbo noise while
still catching real structural regressions (which change the incremental
cost but not the fresh reference).

Independent of timing, any summary record with max_energy_diff != 0 is a
hard failure: the incremental evaluator diverged from the from-scratch
oracle, which is a correctness bug no amount of speed excuses.

Usage: check_perf.py BASELINE.json CURRENT.json
           [--topo isp40] [--threshold 0.20]
Exit codes: 0 ok, 1 regression/divergence, 2 missing records.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("records", [])


def find(records, scheme, legacy=None):
    """The record for `scheme`, accepting the pre-sweep name as fallback."""
    for r in records:
        if r.get("scheme") == scheme:
            return r
    if legacy is not None:
        for r in records:
            if r.get("scheme") == legacy:
                return r
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--topo", default="isp40",
                    help="gate topology (default: isp40)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed relative regression (default: 0.20)")
    args = ap.parse_args()

    base = load_records(args.baseline)
    cur = load_records(args.current)

    failures = []

    # Correctness first: every sweep point must have a zero energy diff.
    for r in cur:
        if str(r.get("scheme", "")).startswith("summary"):
            diff = r.get("max_energy_diff", 0.0)
            if diff != 0.0:
                failures.append(
                    f"{r['scheme']}: max_energy_diff = {diff!r} (must be 0; "
                    "incremental evaluator diverged from the oracle)")
            # Provenance: the committed baseline was measured with the
            # legacy reach model, so a run graded by the QoT digital twin
            # is not comparable. The bench stamps every summary record;
            # a missing stamp means a stale binary that cannot prove it.
            qot = r.get("qot_enabled")
            if qot is None:
                failures.append(
                    f"{r['scheme']}: no qot_enabled stamp (rebuild "
                    "bench_anneal_eval; the gate requires proof that the "
                    "QoT model was off)")
            elif qot != 0.0:
                failures.append(
                    f"{r['scheme']}: qot_enabled = {qot!r} (the perf gate "
                    "must run the legacy reach model)")

    names = {
        "fresh": (f"fresh@{args.topo}", "fresh"),
        "incremental": (f"incremental@{args.topo}", "incremental"),
    }
    vals = {}
    for kind, (scheme, legacy) in names.items():
        b = find(base, scheme, legacy)
        c = find(cur, scheme, legacy)
        if b is None or c is None:
            where = args.baseline if b is None else args.current
            print(f"error: no '{scheme}' record in {where}", file=sys.stderr)
            return 2
        vals[kind] = (b["us_per_candidate"], c["us_per_candidate"])

    fresh_b, fresh_c = vals["fresh"]
    incr_b, incr_c = vals["incremental"]
    calib = fresh_c / fresh_b
    expected = incr_b * calib
    ratio = incr_c / expected

    print(f"perf gate ({args.topo}, threshold +{args.threshold:.0%}):")
    print(f"  fresh       {fresh_b:10.1f} -> {fresh_c:10.1f} us/cand "
          f"(machine calibration x{calib:.3f})")
    print(f"  incremental {incr_b:10.1f} -> {incr_c:10.1f} us/cand "
          f"(calibrated expectation {expected:.1f})")
    print(f"  calibrated ratio {ratio:.3f} "
          f"({'+' if ratio >= 1 else ''}{(ratio - 1):.1%})")

    if ratio > 1.0 + args.threshold:
        failures.append(
            f"incremental@{args.topo} regressed {(ratio - 1):.1%} "
            f"(calibrated, threshold {args.threshold:.0%})")
    elif ratio < 1.0 - args.threshold:
        print(f"  note: {(1 - ratio):.1%} faster than baseline — consider "
              "refreshing BENCH_anneal.json to tighten the gate")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
