// owan_report — turns the telemetry files the repo's binaries emit into
// human-readable summary tables:
//
//   * metrics snapshots  (bench --json "metrics" section, or a bare
//     {"owan_metrics":1,...} object): counters/gauges tables plus
//     histogram percentile rows (count, mean, p50/p95/p99, min, max);
//   * Chrome traces      (--trace exports, fault_stress dumps): per-stage
//     latency percentiles, per-chain accept-rate / energy stats from the
//     anneal.chain span args, and update-plan step counts;
//   * JSONL event logs   (--events exports): same stage table, parsed one
//     event per line.
//
// File kinds are sniffed from content, so `owan_report perf/*.json` just
// works. Exits non-zero if any input fails to parse.
//
// Usage: owan_report <file>...
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

using owan::obs::json::Value;

namespace {

// Exact percentile over a sorted sample set (nearest-rank).
double Pct(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct StageStats {
  std::vector<double> durations_us;
  double total_us = 0.0;
};

struct ChainStats {
  double iterations = 0.0;
  double accepted = 0.0;
  double best_energy = 0.0;
};

// Accumulated view over every trace/event-log input.
struct TraceReport {
  std::map<std::string, StageStats> stages;       // "cat/name" -> durations
  std::map<int, ChainStats> chains;               // chain index -> last stats
  double update_ops = 0.0;                        // update.schedule "ops" sum
  int update_plans = 0;
  int instants = 0;
};

void AddTraceEvent(TraceReport* rep, const std::string& cat,
                   const std::string& name, double dur_us,
                   const std::map<std::string, double>& args) {
  if (dur_us < 0.0) {
    ++rep->instants;
    return;
  }
  StageStats& st = rep->stages[cat + "/" + name];
  st.durations_us.push_back(dur_us);
  st.total_us += dur_us;
  if (name == "anneal.chain") {
    auto it = args.find("chain");
    if (it != args.end()) {
      ChainStats& c = rep->chains[static_cast<int>(it->second)];
      auto get = [&](const char* k, double fallback) {
        auto a = args.find(k);
        return a == args.end() ? fallback : a->second;
      };
      c.iterations += get("iterations", 0.0);
      c.accepted += get("accepted", 0.0);
      c.best_energy = get("best_energy", c.best_energy);
    }
  }
  if (name == "update.schedule") {
    ++rep->update_plans;
    auto it = args.find("ops");
    if (it != args.end()) rep->update_ops += it->second;
  }
}

void AddChromeEvent(TraceReport* rep, const Value& ev) {
  const Value* name = ev.Find("name");
  const Value* cat = ev.Find("cat");
  const Value* ph = ev.Find("ph");
  if (name == nullptr || cat == nullptr) return;
  double dur_us = -1.0;
  if (ph == nullptr || ph->StringOr("X") == "X") {
    const Value* dur = ev.Find("dur");
    if (dur != nullptr) dur_us = dur->NumberOr(-1.0);
  }
  std::map<std::string, double> args;
  if (const Value* a = ev.Find("args"); a != nullptr && a->IsObject()) {
    for (const auto& [k, v] : a->object) {
      if (v.IsNumber()) args[k] = v.number;
    }
  }
  AddTraceEvent(rep, cat->StringOr(""), name->StringOr(""), dur_us, args);
}

void PrintTraceReport(const TraceReport& rep) {
  std::printf("\n-- stage latency (per span, microseconds) --\n");
  std::printf("%-28s %8s %12s %10s %10s %10s\n", "stage", "count",
              "total_ms", "p50_us", "p95_us", "p99_us");
  for (auto& [stage, st] : rep.stages) {
    std::vector<double> d = st.durations_us;
    std::sort(d.begin(), d.end());
    std::printf("%-28s %8zu %12.2f %10.1f %10.1f %10.1f\n", stage.c_str(),
                d.size(), st.total_us / 1000.0, Pct(d, 50), Pct(d, 95),
                Pct(d, 99));
  }
  if (!rep.chains.empty()) {
    std::printf("\n-- annealing chains --\n");
    std::printf("%-8s %12s %12s %12s %14s\n", "chain", "iterations",
                "accepted", "accept_rate", "best_energy");
    for (auto& [chain, c] : rep.chains) {
      std::printf("%-8d %12.0f %12.0f %11.1f%% %14.2f\n", chain,
                  c.iterations, c.accepted,
                  c.iterations > 0 ? 100.0 * c.accepted / c.iterations : 0.0,
                  c.best_energy);
    }
  }
  if (rep.update_plans > 0) {
    std::printf("\n-- update plans --\n");
    std::printf("plans %d, total ops %.0f, mean ops/plan %.1f\n",
                rep.update_plans, rep.update_ops,
                rep.update_ops / rep.update_plans);
  }
  if (rep.instants > 0) {
    std::printf("\ninstant events (fault interrupts, markers): %d\n",
                rep.instants);
  }
}

// Admission summary over the streaming controller service's metrics
// (service.* counters + histograms): accept/reject/pending rates, the
// recompute-batching ratio, time-to-decision percentiles, and the sampled
// pending-queue depth. Prints nothing when the snapshot has no service
// metrics, so reports over other binaries are unchanged.
void PrintAdmissionSummary(const Value& counters, const Value& histograms) {
  std::map<std::string, double> c;
  for (const Value& v : counters.array) {
    if (const Value* n = v.Find("name"); n != nullptr) {
      c[n->StringOr("")] = v.Find("value") ? v.Find("value")->NumberOr(0.0)
                                           : 0.0;
    }
  }
  const double admitted = c["service.admitted"];
  const double rejected = c["service.rejected"];
  const double decided = admitted + rejected;
  if (decided <= 0.0) return;

  std::printf("\n-- admission summary --\n");
  std::printf("decided %.0f: %.0f admitted (%.1f%%), %.0f rejected (%.1f%%)\n",
              decided, admitted, 100.0 * admitted / decided, rejected,
              100.0 * rejected / decided);
  const double enq = c["service.pending_enqueued"];
  if (enq > 0.0) {
    std::printf(
        "pending queue: %.0f enqueued, %.0f later admitted, %.0f expired\n",
        enq, c["service.pending_admitted"], c["service.pending_rejected"]);
  }
  const double recomputes = c["service.recomputes"];
  const double coasts = c["service.coasts"];
  if (recomputes > 0.0) {
    std::printf(
        "recomputes %.0f vs %.0f requests (%.1fx batched), %.0f coasted "
        "slots (%.0f%%)\n",
        recomputes, c["service.requests"],
        c["service.requests"] / recomputes, coasts,
        recomputes + coasts > 0 ? 100.0 * coasts / (recomputes + coasts)
                                : 0.0);
  }
  for (const Value& h : histograms.array) {
    const std::string name =
        h.Find("name") ? h.Find("name")->StringOr("") : "";
    auto num = [&](const char* k) {
      const Value* v = h.Find(k);
      return v ? v->NumberOr(0.0) : 0.0;
    };
    if (name == "service.decision_latency_s") {
      std::printf(
          "time to decision (sim s): p50 %.4g  p95 %.4g  p99 %.4g  max "
          "%.4g\n",
          num("p50"), num("p95"), num("p99"), num("max"));
    } else if (name == "service.queue_depth") {
      const double count = num("count");
      std::printf(
          "queue depth (per slot): mean %.2f  p50 %.4g  p95 %.4g  max "
          "%.4g\n",
          count > 0 ? num("sum") / count : 0.0, num("p50"), num("p95"),
          num("max"));
    }
  }
}

void PrintMetricsReport(const Value& m) {
  const Value* counters = m.Find("counters");
  const Value* gauges = m.Find("gauges");
  const Value* histograms = m.Find("histograms");
  if (counters != nullptr && !counters->array.empty()) {
    std::printf("\n-- counters --\n");
    std::printf("%-32s %10s %16s\n", "name", "unit", "value");
    for (const Value& c : counters->array) {
      std::printf("%-32s %10s %16.0f\n",
                  c.Find("name") ? c.Find("name")->StringOr("?").c_str()
                                 : "?",
                  c.Find("unit") ? c.Find("unit")->StringOr("").c_str() : "",
                  c.Find("value") ? c.Find("value")->NumberOr(0.0) : 0.0);
    }
  }
  if (gauges != nullptr && !gauges->array.empty()) {
    std::printf("\n-- gauges --\n");
    std::printf("%-32s %10s %16s\n", "name", "unit", "value");
    for (const Value& g : gauges->array) {
      std::printf("%-32s %10s %16.4g\n",
                  g.Find("name") ? g.Find("name")->StringOr("?").c_str()
                                 : "?",
                  g.Find("unit") ? g.Find("unit")->StringOr("").c_str() : "",
                  g.Find("value") ? g.Find("value")->NumberOr(0.0) : 0.0);
    }
  }
  if (histograms != nullptr && !histograms->array.empty()) {
    std::printf("\n-- histograms --\n");
    std::printf("%-28s %8s %12s %12s %12s %12s %12s %12s\n", "name", "count",
                "mean", "p50", "p95", "p99", "min", "max");
    double delivered = 0.0, invalidated = 0.0;
    bool saw_delivery = false;
    for (const Value& h : histograms->array) {
      auto num = [&](const char* k) {
        const Value* v = h.Find(k);
        return v ? v->NumberOr(0.0) : 0.0;
      };
      const std::string name =
          h.Find("name") ? h.Find("name")->StringOr("?") : "?";
      const double count = num("count");
      std::printf("%-28s %8.0f %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g\n",
                  name.c_str(), count,
                  count > 0 ? num("sum") / count : 0.0, num("p50"),
                  num("p95"), num("p99"), num("min"), num("max"));
      if (name == "sim.delivered_gigabits") {
        delivered = num("sum");
        saw_delivery = true;
      }
      if (name == "sim.invalidated_gigabits") {
        invalidated = num("sum");
        saw_delivery = true;
      }
    }
    if (saw_delivery) {
      std::printf(
          "\ndelivered %.1f Gb vs invalidated-by-faults %.1f Gb (%.2f%% "
          "lost)\n",
          delivered, invalidated,
          delivered + invalidated > 0
              ? 100.0 * invalidated / (delivered + invalidated)
              : 0.0);
    }
  }
  if (counters != nullptr && histograms != nullptr) {
    PrintAdmissionSummary(*counters, *histograms);
  } else if (counters != nullptr) {
    PrintAdmissionSummary(*counters, Value{});
  }
}

void PrintBenchRecords(const Value& records) {
  if (records.array.empty()) return;
  std::printf("\n-- bench records --\n");
  for (const Value& r : records.array) {
    std::string line;
    for (const auto& [k, v] : r.object) {
      if (!line.empty()) line += "  ";
      char buf[96];
      if (v.IsString()) {
        std::snprintf(buf, sizeof(buf), "%s=%s", k.c_str(),
                      v.string.c_str());
      } else {
        std::snprintf(buf, sizeof(buf), "%s=%.6g", k.c_str(),
                      v.NumberOr(0.0));
      }
      line += buf;
    }
    std::printf("  %s\n", line.c_str());
  }
}

bool ReportJsonl(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "owan_report: cannot open %s\n", path.c_str());
    return false;
  }
  TraceReport rep;
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    Value ev;
    std::string err;
    if (!owan::obs::json::Parse(line, &ev, &err)) {
      std::fprintf(stderr, "owan_report: %s:%d: %s\n", path.c_str(), lineno,
                   err.c_str());
      return false;
    }
    const Value* name = ev.Find("name");
    const Value* cat = ev.Find("cat");
    if (name == nullptr || cat == nullptr) continue;
    const Value* dur = ev.Find("dur_ns");
    const double dur_us =
        dur != nullptr && dur->NumberOr(-1.0) >= 0.0
            ? dur->NumberOr(0.0) / 1000.0
            : -1.0;
    std::map<std::string, double> args;
    if (const Value* a = ev.Find("args"); a != nullptr && a->IsObject()) {
      for (const auto& [k, v] : a->object) {
        if (v.IsNumber()) args[k] = v.number;
      }
    }
    AddTraceEvent(&rep, cat->StringOr(""), name->StringOr(""), dur_us, args);
  }
  PrintTraceReport(rep);
  return true;
}

bool ReportFile(const std::string& path) {
  const size_t dot = path.rfind('.');
  if (dot != std::string::npos && path.substr(dot) == ".jsonl") {
    std::printf("==== %s (event log) ====\n", path.c_str());
    return ReportJsonl(path);
  }

  Value root;
  std::string err;
  if (!owan::obs::json::ParseFile(path, &root, &err)) {
    std::fprintf(stderr, "owan_report: %s\n", err.c_str());
    return false;
  }

  if (const Value* events = root.Find("traceEvents");
      events != nullptr && events->IsArray()) {
    std::printf("==== %s (chrome trace) ====\n", path.c_str());
    TraceReport rep;
    for (const Value& ev : events->array) AddChromeEvent(&rep, ev);
    PrintTraceReport(rep);
    return true;
  }
  if (root.Find("owan_metrics") != nullptr) {
    std::printf("==== %s (metrics snapshot) ====\n", path.c_str());
    PrintMetricsReport(root);
    return true;
  }
  if (const Value* records = root.Find("records");
      records != nullptr && records->IsArray()) {
    std::printf("==== %s (bench output) ====\n", path.c_str());
    PrintBenchRecords(*records);
    if (const Value* metrics = root.Find("metrics");
        metrics != nullptr && metrics->IsObject()) {
      PrintMetricsReport(*metrics);
    }
    return true;
  }
  std::fprintf(stderr, "owan_report: %s: unrecognized telemetry format\n",
               path.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || !std::strcmp(argv[1], "--help") ||
      !std::strcmp(argv[1], "-h")) {
    std::fprintf(stderr,
                 "usage: %s <file>...\n"
                 "  summarizes metrics snapshots, bench --json outputs,\n"
                 "  Chrome traces (--trace) and JSONL event logs (--events)\n",
                 argc > 0 ? argv[0] : "owan_report");
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) std::printf("\n");
    ok = ReportFile(argv[i]) && ok;
  }
  return ok ? 0 : 1;
}
