// Property-based fuzz driver over the testkit oracles: generates N seeded
// scenarios (random WAN + transfers + fault schedule), checks each against
// the LP-bound, differential, and invariant oracles, and on the first
// failure shrinks the counterexample to a minimal repro. Failures print a
// one-line repro command (fault_stress convention: trial t reruns with
// --seed base+t --trials 1) and write the shrunk case to a replay file that
// --replay re-checks byte-for-byte.
//
// Usage: owan_fuzz [--trials N] [--seed S]
//                  [--suite all|lp|diff|invariant|update|admission|qot]
//                  [--replay FILE] [--shrink-out FILE] [--no-shrink]
//                  [--max-shrink-evals N] [--inject-bug cache|wal|qot]
//
// Exit status: 0 all trials clean, 1 property failure, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/energy_evaluator.h"
#include "optical/qot.h"
#include "testkit/case_io.h"
#include "update/intent_log.h"
#include "testkit/oracles.h"
#include "testkit/property.h"

using namespace owan;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials N] [--seed S] "
               "[--suite all|lp|diff|invariant|update|admission|qot] "
               "[--replay FILE] "
               "[--shrink-out FILE] [--no-shrink] [--max-shrink-evals N] "
               "[--inject-bug cache|wal|qot]\n",
               argv0);
  return 2;
}

void PrintCaseSize(const char* tag, const testkit::FuzzCase& c) {
  std::printf("%s: %d sites, %d fibers, %zu transfers, %zu fault events\n",
              tag, c.wan.NumSites(), c.wan.NumFibers(), c.transfers.size(),
              c.faults.size());
}

}  // namespace

int main(int argc, char** argv) {
  testkit::CheckOptions check;
  check.trials = 100;
  check.seed = 1;
  std::string suite = "all";
  std::string replay_path;
  std::string shrink_out;
  std::string inject;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
      check.trials = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      check.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--suite") && i + 1 < argc) {
      suite = argv[++i];
    } else if (!std::strcmp(argv[i], "--replay") && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--shrink-out") && i + 1 < argc) {
      shrink_out = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      check.shrink = false;
    } else if (!std::strcmp(argv[i], "--max-shrink-evals") && i + 1 < argc) {
      check.max_shrink_evals = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--inject-bug") && i + 1 < argc) {
      inject = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  const bool lp = suite == "all" || suite == "lp";
  const bool diff = suite == "all" || suite == "diff";
  const bool invariant = suite == "all" || suite == "invariant";
  const bool update_exec = suite == "all" || suite == "update";
  const bool admission = suite == "all" || suite == "admission";
  const bool qot = suite == "all" || suite == "qot";
  if (!lp && !diff && !invariant && !update_exec && !admission && !qot) {
    return Usage(argv[0]);
  }

  if (!inject.empty()) {
    if (inject == "cache") {
      core::EnergyEvaluator::TestOnlySkipAppearedInvalidation(true);
      std::printf(
          "owan_fuzz: injected bug: SyncCache skips appeared-link "
          "invalidation\n");
    } else if (inject == "wal") {
      update::IntentLog::TestOnlySetDropEveryNth(5);
      std::printf(
          "owan_fuzz: injected bug: WAL writer drops every 5th intent "
          "record\n");
    } else if (inject == "qot") {
      optical::TestOnlySkipFirstSpanNoise(true);
      std::printf(
          "owan_fuzz: injected bug: QoT accumulation skips the first "
          "span's noise on every fiber\n");
    } else {
      std::fprintf(stderr, "owan_fuzz: unknown --inject-bug \"%s\"\n",
                   inject.c_str());
      return 2;
    }
  }

  const testkit::Property property =
      testkit::MakeOracleProperty(lp, diff, invariant, {}, update_exec,
                                  admission, qot);

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "owan_fuzz: cannot open %s\n",
                   replay_path.c_str());
      return 2;
    }
    testkit::FuzzCase c;
    try {
      c = testkit::ParseFuzzCase(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "owan_fuzz: bad case file %s: %s\n",
                   replay_path.c_str(), e.what());
      return 2;
    }
    PrintCaseSize("replay", c);
    if (auto f = testkit::EvalProperty(property, c)) {
      std::fprintf(stderr, "owan_fuzz: [%s] %s\n", f->oracle.c_str(),
                   f->message.c_str());
      return 1;
    }
    std::printf("owan_fuzz: replay of %s passes suite %s\n",
                replay_path.c_str(), suite.c_str());
    return 0;
  }

  const testkit::CheckResult result =
      testkit::CheckProperty(property, check);
  if (result.ok) {
    std::printf("owan_fuzz: all %d trials clean (suite %s, seeds %llu..%llu)\n",
                result.trials_run, suite.c_str(),
                (unsigned long long)check.seed,
                (unsigned long long)(check.seed + check.trials - 1));
    return 0;
  }

  std::fprintf(stderr, "owan_fuzz: [%s] %s\n", result.failure.oracle.c_str(),
               result.failure.message.c_str());
  PrintCaseSize("original", result.original);
  if (check.shrink) {
    PrintCaseSize("shrunk", result.shrunk);
    std::printf("shrink: %d steps in %d evaluations\n", result.shrink_steps,
                result.shrink_evals);
  }

  std::string out = shrink_out;
  if (out.empty()) {
    out = "owan_fuzz_seed_" + std::to_string(result.failing_seed) + ".case";
  }
  {
    std::ofstream os(out);
    os << testkit::FormatFuzzCase(result.shrunk);
    if (!os) {
      std::fprintf(stderr, "owan_fuzz: could not write %s\n", out.c_str());
    } else {
      std::printf("shrunk case written to %s\n", out.c_str());
    }
  }
  const std::string inject_flag =
      inject.empty() ? "" : " --inject-bug " + inject;
  std::printf("repro: owan_fuzz --seed %llu --trials 1 --suite %s%s\n",
              (unsigned long long)result.failing_seed, suite.c_str(),
              inject_flag.c_str());
  std::printf("repro: owan_fuzz --replay %s --suite %s%s\n", out.c_str(),
              suite.c_str(), inject_flag.c_str());
  return 1;
}
