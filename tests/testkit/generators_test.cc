#include "testkit/generators.h"

#include <gtest/gtest.h>

#include "core/provisioned_state.h"
#include "testkit/wan_spec.h"

namespace owan::testkit {
namespace {

TEST(GeneratorsTest, SameSeedSameCase) {
  const FuzzCase a = GenFuzzCase(42);
  const FuzzCase b = GenFuzzCase(42);
  EXPECT_EQ(a, b);
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  // Not guaranteed in principle, but at these ranges two identical draws
  // would indicate a seeding bug.
  EXPECT_NE(GenFuzzCase(1), GenFuzzCase(2));
}

TEST(GeneratorsTest, GeneratedCasesAreWellFormed) {
  GenOptions opt;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const FuzzCase c = GenFuzzCase(seed, opt);
    EXPECT_TRUE(c.wan.Validate().empty()) << "seed " << seed;
    EXPECT_GE(c.wan.NumSites(), opt.min_sites);
    EXPECT_LE(c.wan.NumSites(), opt.max_sites);
    EXPECT_GE(static_cast<int>(c.transfers.size()), opt.min_transfers);
    EXPECT_LE(static_cast<int>(c.transfers.size()), opt.max_transfers);
    for (const core::Request& r : c.transfers) {
      EXPECT_GE(r.src, 0);
      EXPECT_LT(r.src, c.wan.NumSites());
      EXPECT_GE(r.dst, 0);
      EXPECT_LT(r.dst, c.wan.NumSites());
      EXPECT_NE(r.src, r.dst);
      EXPECT_GT(r.size, 0.0);
      EXPECT_GE(r.arrival, 0.0);
    }
  }
}

TEST(GeneratorsTest, SpecBuildsUsablePlant) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzCase c = GenFuzzCase(seed);
    topo::Wan wan = c.wan.Build();
    ASSERT_EQ(wan.optical.NumSites(), c.wan.NumSites());
    ASSERT_EQ(wan.optical.NumFibers(), c.wan.NumFibers());
    std::string err;
    EXPECT_TRUE(wan.optical.CheckInvariants(&err)) << err;
    // The greedy default topology must be provisionable on its own plant.
    core::ProvisionedState state(wan.optical);
    EXPECT_EQ(state.SyncTo(wan.default_topology), 0) << "seed " << seed;
    // And respect port budgets.
    for (int v = 0; v < wan.optical.NumSites(); ++v) {
      EXPECT_LE(wan.default_topology.PortsUsed(v),
                wan.optical.site(v).router_ports);
    }
  }
}

TEST(GeneratorsTest, FaultChanceZeroMeansNoFaults) {
  GenOptions opt;
  opt.fault_chance = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_TRUE(GenFuzzCase(seed, opt).faults.empty());
  }
}

TEST(GeneratorsTest, FaultTargetsInRange) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzCase c = GenFuzzCase(seed);
    for (const fault::FaultEvent& e : c.faults.events) {
      switch (e.type) {
        case fault::FaultType::kFiberCut:
        case fault::FaultType::kFiberRepair:
          EXPECT_GE(e.target, 0);
          EXPECT_LT(e.target, c.wan.NumFibers());
          break;
        case fault::FaultType::kSiteFail:
        case fault::FaultType::kSiteRepair:
        case fault::FaultType::kTransceiverFail:
        case fault::FaultType::kTransceiverRepair:
          EXPECT_GE(e.target, 0);
          EXPECT_LT(e.target, c.wan.NumSites());
          break;
        default:
          break;  // controller events carry no target
      }
    }
  }
}

TEST(GeneratorsTest, ValidateCatchesBrokenSpecs) {
  WanSpec spec;
  EXPECT_FALSE(spec.Validate().empty());  // no sites at all

  spec.sites = {{4, 1}, {4, 1}, {4, 1}};
  spec.fibers = {{0, 1, 100.0, 4}, {1, 2, 100.0, 4}};
  EXPECT_TRUE(spec.Validate().empty());

  WanSpec self_loop = spec;
  self_loop.fibers.push_back({2, 2, 100.0, 4});
  EXPECT_FALSE(self_loop.Validate().empty());

  WanSpec out_of_range = spec;
  out_of_range.fibers.push_back({0, 7, 100.0, 4});
  EXPECT_FALSE(out_of_range.Validate().empty());

  WanSpec bad_length = spec;
  bad_length.fibers[0].length_km = -1.0;
  EXPECT_FALSE(bad_length.Validate().empty());

  WanSpec bad_theta = spec;
  bad_theta.wavelength_gbps = 0.0;
  EXPECT_FALSE(bad_theta.Validate().empty());
}

TEST(GeneratorsTest, WanByNameMatchesFactories) {
  EXPECT_EQ(WanByName("internet2").name, topo::MakeInternet2().name);
  EXPECT_EQ(WanByName("isp").name, topo::MakeIspBackbone().name);
  EXPECT_EQ(WanByName("interdc").name, topo::MakeInterDc().name);
  EXPECT_EQ(WanByName("anything-else").name,
            topo::MakeMotivatingExample().name);
}

TEST(GeneratorsTest, RandomDemandsDeterministicAndInRange) {
  const topo::Wan wan = WanByName("internet2");
  const auto a = RandomDemands(wan, 7, 24);
  const auto b = RandomDemands(wan, 7, 24);
  ASSERT_EQ(a.size(), 24u);
  const int n = wan.optical.NumSites();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].rate_cap, b[i].rate_cap);
    EXPECT_NE(a[i].src, a[i].dst);
    EXPECT_LT(a[i].src, n);
    EXPECT_LT(a[i].dst, n);
    EXPECT_GT(a[i].rate_cap, 0.0);
  }
}

TEST(GeneratorsTest, DemandsFromRequestsMirrorsControllerDerivation) {
  std::vector<core::Request> reqs(2);
  reqs[0].id = 5;
  reqs[0].src = 0;
  reqs[0].dst = 3;
  reqs[0].size = 900.0;
  reqs[1].id = 9;
  reqs[1].src = 2;
  reqs[1].dst = 1;
  reqs[1].size = 150.0;
  reqs[1].deadline = 3600.0;
  const auto demands = DemandsFromRequests(reqs, 300.0);
  ASSERT_EQ(demands.size(), 2u);
  EXPECT_EQ(demands[0].id, 5);
  EXPECT_EQ(demands[0].src, 0);
  EXPECT_EQ(demands[0].dst, 3);
  EXPECT_EQ(demands[0].remaining, 900.0);
  EXPECT_EQ(demands[0].rate_cap, 3.0);  // 900 Gb / 300 s
  EXPECT_EQ(demands[1].deadline, 3600.0);
}

}  // namespace
}  // namespace owan::testkit
