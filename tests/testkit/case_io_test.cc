#include "testkit/case_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "testkit/generators.h"

namespace owan::testkit {
namespace {

TEST(CaseIoTest, GeneratedCasesRoundTripExactly) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const FuzzCase c = GenFuzzCase(seed);
    const FuzzCase round = ParseFuzzCase(FormatFuzzCase(c));
    EXPECT_EQ(round, c) << "seed " << seed;
  }
}

TEST(CaseIoTest, PathologicalDoublesRoundTrip) {
  FuzzCase c = GenFuzzCase(3);
  c.horizon_s = 1.0 / 3.0 * 1e7;
  c.wan.reach_km = std::nextafter(2000.0, 2001.0);
  c.wan.fibers[0].length_km = 1e-9;
  c.transfers[0].size = 9.0071992547409925e15;
  c.transfers[0].arrival = std::nextafter(300.0, 299.0);
  const FuzzCase round = ParseFuzzCase(FormatFuzzCase(c));
  EXPECT_EQ(round.horizon_s, c.horizon_s);
  EXPECT_EQ(round.wan.reach_km, c.wan.reach_km);
  EXPECT_EQ(round.wan.fibers[0].length_km, c.wan.fibers[0].length_km);
  EXPECT_EQ(round.transfers[0].size, c.transfers[0].size);
  EXPECT_EQ(round.transfers[0].arrival, c.transfers[0].arrival);
  EXPECT_EQ(round, c);
}

TEST(CaseIoTest, StreamAndStringOverloadsAgree) {
  const std::string text = FormatFuzzCase(GenFuzzCase(11));
  std::istringstream is(text);
  EXPECT_EQ(ParseFuzzCase(is), ParseFuzzCase(text));
}

TEST(CaseIoTest, CommentsAndBlankLinesIgnored) {
  std::string text = FormatFuzzCase(GenFuzzCase(5));
  // Sprinkle comments and blank lines between every original line.
  std::string sprinkled;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    sprinkled += "# noise\n\n" + line + "   # trailing comment\n";
  }
  EXPECT_EQ(ParseFuzzCase(sprinkled), ParseFuzzCase(text));
}

TEST(CaseIoTest, MalformedInputsThrow) {
  const FuzzCase c = GenFuzzCase(4);
  const std::string good = FormatFuzzCase(c);

  EXPECT_THROW(ParseFuzzCase(""), std::invalid_argument);
  EXPECT_THROW(ParseFuzzCase("seed notanumber\n"), std::invalid_argument);
  // Truncation is an error, never a silent partial case.
  for (size_t cut : {good.size() / 4, good.size() / 2, 3 * good.size() / 4}) {
    EXPECT_THROW(ParseFuzzCase(good.substr(0, cut)), std::invalid_argument)
        << "cut at " << cut;
  }
  // Wrong section order.
  EXPECT_THROW(ParseFuzzCase("horizon 100\nseed 1\n"),
               std::invalid_argument);
}

TEST(CaseIoTest, InvalidWanRejectedAtParse) {
  FuzzCase c = GenFuzzCase(6);
  c.wan.fibers[0].v = c.wan.fibers[0].u;  // self-loop
  EXPECT_THROW(ParseFuzzCase(FormatFuzzCase(c)), std::invalid_argument);
}

TEST(CaseIoTest, FaultCountMustMatchHeader) {
  FuzzCase c = GenFuzzCase(2);
  std::string text = FormatFuzzCase(c);
  // Claim one more event than the file carries.
  const std::string needle = "faults " + std::to_string(c.faults.size());
  const size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(),
               "faults " + std::to_string(c.faults.size() + 1));
  EXPECT_THROW(ParseFuzzCase(text), std::invalid_argument);
}

}  // namespace
}  // namespace owan::testkit
