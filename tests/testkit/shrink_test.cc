#include "testkit/shrink.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testkit/generators.h"

namespace owan::testkit {
namespace {

// A case with every cross-reference kind populated, so remap bugs can't
// hide: fibers before and after the removed index, transfers and fault
// events targeting sites/fibers on both sides of it.
FuzzCase ReferenceCase() {
  FuzzCase c;
  c.seed = 99;
  c.wan.sites = {{4, 1}, {4, 1}, {4, 1}, {4, 1}, {4, 1}};
  c.wan.fibers = {{0, 1, 100.0, 8},
                  {1, 2, 100.0, 8},
                  {2, 3, 100.0, 8},
                  {3, 4, 100.0, 8},
                  {0, 4, 100.0, 8}};
  core::Request r;
  r.size = 1000.0;
  r.id = 0, r.src = 0, r.dst = 1;
  c.transfers.push_back(r);
  r.id = 1, r.src = 2, r.dst = 4;
  c.transfers.push_back(r);
  r.id = 2, r.src = 3, r.dst = 0;
  c.transfers.push_back(r);
  c.faults.Add(fault::FaultEvent::FiberCut(100.0, 1));
  c.faults.Add(fault::FaultEvent::FiberCut(200.0, 3));
  c.faults.Add(fault::FaultEvent::SiteFail(300.0, 2));
  c.faults.Add(fault::FaultEvent::SiteFail(400.0, 4));
  c.faults.Add(fault::FaultEvent::TransceiverFail(500.0, 3, 1, 0));
  c.faults.Add(fault::FaultEvent::ControllerCrash(600.0));
  c.faults.Normalize();
  return c;
}

TEST(ShrinkMovesTest, RemoveTransfersDeletesRange) {
  const FuzzCase c = ReferenceCase();
  const FuzzCase out = RemoveTransfers(c, 1, 2);
  ASSERT_EQ(out.transfers.size(), 1u);
  EXPECT_EQ(out.transfers[0].id, 0);
  EXPECT_EQ(out.wan, c.wan);  // nothing else moves
}

TEST(ShrinkMovesTest, RemoveSiteRemapsEverything) {
  const FuzzCase c = ReferenceCase();
  const auto out = RemoveSite(c, 2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->wan.NumSites(), 4);
  // Fibers (1,2) and (2,3) die; (3,4) and (0,4) renumber to (2,3), (0,3).
  ASSERT_EQ(out->wan.NumFibers(), 3);
  EXPECT_EQ(out->wan.fibers[0], (FiberSpec{0, 1, 100.0, 8}));
  EXPECT_EQ(out->wan.fibers[1], (FiberSpec{2, 3, 100.0, 8}));
  EXPECT_EQ(out->wan.fibers[2], (FiberSpec{0, 3, 100.0, 8}));
  // Transfer 1 (2->4) dies; transfer 2 (3->0) renumbers to (2->0).
  ASSERT_EQ(out->transfers.size(), 2u);
  EXPECT_EQ(out->transfers[0].src, 0);
  EXPECT_EQ(out->transfers[0].dst, 1);
  EXPECT_EQ(out->transfers[1].src, 2);
  EXPECT_EQ(out->transfers[1].dst, 0);
  // Fiber events: cut of fiber 1 dies with it, cut of fiber 3 follows its
  // fiber to index 1. Site events: fail of site 2 dies, fail of site 4 and
  // the transceiver event renumber; the controller event survives as-is.
  ASSERT_EQ(out->faults.size(), 4u);
  EXPECT_EQ(out->faults.events[0], fault::FaultEvent::FiberCut(200.0, 1));
  EXPECT_EQ(out->faults.events[1], fault::FaultEvent::SiteFail(400.0, 3));
  EXPECT_EQ(out->faults.events[2],
            fault::FaultEvent::TransceiverFail(500.0, 2, 1, 0));
  EXPECT_EQ(out->faults.events[3], fault::FaultEvent::ControllerCrash(600.0));
  // A well-formed case stays well-formed under every move.
  EXPECT_TRUE(out->wan.Validate().empty());
}

TEST(ShrinkMovesTest, RemoveSiteRefusesBelowTwoSites) {
  FuzzCase c;
  c.wan.sites = {{2, 0}, {2, 0}};
  c.wan.fibers = {{0, 1, 100.0, 4}};
  EXPECT_FALSE(RemoveSite(c, 0).has_value());
}

TEST(ShrinkMovesTest, RemoveFiberRemapsFiberEvents) {
  const FuzzCase c = ReferenceCase();
  const FuzzCase out = RemoveFiber(c, 1);
  ASSERT_EQ(out.wan.NumFibers(), 4);
  // The cut of fiber 1 dies; the cut of fiber 3 now targets fiber 2.
  int fiber_cuts = 0;
  for (const auto& e : out.faults.events) {
    if (e.type == fault::FaultType::kFiberCut) {
      ++fiber_cuts;
      EXPECT_EQ(e.target, 2);
    }
  }
  EXPECT_EQ(fiber_cuts, 1);
}

TEST(ShrinkMovesTest, CandidatesAreStrictlySmallerAndWellFormed) {
  const FuzzCase c = GenFuzzCase(13);
  for (const FuzzCase& cand : ShrinkCandidates(c)) {
    EXPECT_NE(cand, c);
    EXPECT_TRUE(cand.wan.Validate().empty());
  }
}

TEST(ShrinkTest, ConvergesToMinimalCounterexample) {
  // Property: "no transfer between sites 0 and 1 with size > 100". The
  // minimal counterexample is one such transfer; everything else —
  // unrelated transfers, fault events, extra sites — must shrink away.
  const Property property = [](const FuzzCase& c) -> std::optional<Failure> {
    for (const core::Request& r : c.transfers) {
      if (((r.src == 0 && r.dst == 1) || (r.src == 1 && r.dst == 0)) &&
          r.size > 100.0) {
        return Failure{"toy", "offending transfer present"};
      }
    }
    return std::nullopt;
  };

  FuzzCase c = ReferenceCase();
  const auto original = EvalProperty(property, c);
  ASSERT_TRUE(original.has_value());

  const ShrinkResult result = Shrink(c, *original, property, {});
  EXPECT_EQ(result.best.transfers.size(), 1u);
  EXPECT_TRUE(result.best.faults.empty());
  EXPECT_LE(result.best.wan.NumSites(), 3);
  // Size halves until one more halving would dip under the threshold.
  EXPECT_GT(result.best.transfers[0].size, 100.0);
  EXPECT_LE(result.best.transfers[0].size, 250.0);
  EXPECT_GT(result.steps, 0);
  EXPECT_LE(result.evals, 500);
  // The minimized case still fails.
  EXPECT_TRUE(EvalProperty(property, result.best).has_value());
}

TEST(ShrinkTest, RespectsEvalBudget) {
  const Property never_passes = [](const FuzzCase&) {
    return std::optional<Failure>{Failure{"toy", "always"}};
  };
  FuzzCase c = GenFuzzCase(8);
  ShrinkOptions opt;
  opt.max_evals = 7;
  const ShrinkResult result =
      Shrink(c, Failure{"toy", "always"}, never_passes, opt);
  EXPECT_LE(result.evals, 7);
}

TEST(ShrinkTest, CheckPropertyShrinksOnFailure) {
  // End-to-end through CheckProperty: a property that rejects any case
  // with >= 2 transfers must come back shrunk to exactly 2.
  const Property property = [](const FuzzCase& c) -> std::optional<Failure> {
    if (c.transfers.size() >= 2) return Failure{"toy", "too many transfers"};
    return std::nullopt;
  };
  CheckOptions opt;
  opt.trials = 20;
  opt.seed = 1;
  const CheckResult result = CheckProperty(property, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.shrunk.transfers.size(), 2u);
  EXPECT_LE(result.shrunk.transfers.size(), result.original.transfers.size());
  EXPECT_EQ(result.failure.oracle, "toy");
}

TEST(ShrinkTest, CheckPropertyPassesCleanProperty) {
  const Property always_passes = [](const FuzzCase&) {
    return std::optional<Failure>{};
  };
  CheckOptions opt;
  opt.trials = 10;
  const CheckResult result = CheckProperty(always_passes, opt);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.trials_run, 10);
}

TEST(ShrinkTest, ExceptionIsAFinding) {
  const Property throws = [](const FuzzCase&) -> std::optional<Failure> {
    throw std::runtime_error("boom");
  };
  const auto f = EvalProperty(throws, GenFuzzCase(1));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "exception");
  EXPECT_EQ(f->message, "boom");
}

}  // namespace
}  // namespace owan::testkit
